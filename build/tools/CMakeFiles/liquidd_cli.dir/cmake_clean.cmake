file(REMOVE_RECURSE
  "CMakeFiles/liquidd_cli.dir/liquidd_cli.cpp.o"
  "CMakeFiles/liquidd_cli.dir/liquidd_cli.cpp.o.d"
  "liquidd"
  "liquidd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquidd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
