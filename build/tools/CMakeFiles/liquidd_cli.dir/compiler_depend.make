# Empty compiler generated dependencies file for liquidd_cli.
# This may be replaced when dependencies are built.
