# Empty dependencies file for dao_governance.
# This may be replaced when dependencies are built.
