file(REMOVE_RECURSE
  "CMakeFiles/dao_governance.dir/dao_governance.cpp.o"
  "CMakeFiles/dao_governance.dir/dao_governance.cpp.o.d"
  "dao_governance"
  "dao_governance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dao_governance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
