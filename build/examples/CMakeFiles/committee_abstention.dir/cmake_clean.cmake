file(REMOVE_RECURSE
  "CMakeFiles/committee_abstention.dir/committee_abstention.cpp.o"
  "CMakeFiles/committee_abstention.dir/committee_abstention.cpp.o.d"
  "committee_abstention"
  "committee_abstention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/committee_abstention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
