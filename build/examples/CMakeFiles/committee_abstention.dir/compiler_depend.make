# Empty compiler generated dependencies file for committee_abstention.
# This may be replaced when dependencies are built.
