
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_approval_instance.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_approval_instance.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_approval_instance.cpp.o.d"
  "/root/repo/tests/test_bounds.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_bounds.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_bounds.cpp.o.d"
  "/root/repo/tests/test_brute_force.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_brute_force.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_brute_force.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_competency.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_competency.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_competency.cpp.o.d"
  "/root/repo/tests/test_competency_gen.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_competency_gen.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_competency_gen.cpp.o.d"
  "/root/repo/tests/test_concentration_io.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_concentration_io.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_concentration_io.cpp.o.d"
  "/root/repo/tests/test_decorrelation.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_decorrelation.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_decorrelation.cpp.o.d"
  "/root/repo/tests/test_delegation.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_delegation.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_delegation.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_digraph.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_digraph.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_digraph.cpp.o.d"
  "/root/repo/tests/test_dnh_theory.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_dnh_theory.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_dnh_theory.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_game.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_game.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_game.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_io.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_graph_io.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_graph_io.cpp.o.d"
  "/root/repo/tests/test_harness_workloads.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_harness_workloads.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_harness_workloads.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_mechanisms.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_mechanisms.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_mechanisms.cpp.o.d"
  "/root/repo/tests/test_more_properties.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_more_properties.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_more_properties.cpp.o.d"
  "/root/repo/tests/test_normal.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_normal.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_normal.cpp.o.d"
  "/root/repo/tests/test_parallel_approx.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_parallel_approx.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_parallel_approx.cpp.o.d"
  "/root/repo/tests/test_poisson_binomial.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_poisson_binomial.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_poisson_binomial.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_rank_proportional.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_rank_proportional.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_rank_proportional.cpp.o.d"
  "/root/repo/tests/test_recycle.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_recycle.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_recycle.cpp.o.d"
  "/root/repo/tests/test_restrictions.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_restrictions.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_restrictions.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_tally_evaluator.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_tally_evaluator.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_tally_evaluator.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_weighted_bernoulli.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_weighted_bernoulli.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_weighted_bernoulli.cpp.o.d"
  "/root/repo/tests/test_weighted_delegates.cpp" "tests/CMakeFiles/liquidd_tests.dir/test_weighted_delegates.cpp.o" "gcc" "tests/CMakeFiles/liquidd_tests.dir/test_weighted_delegates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/liquidd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
