# Empty compiler generated dependencies file for liquidd_tests.
# This may be replaced when dependencies are built.
