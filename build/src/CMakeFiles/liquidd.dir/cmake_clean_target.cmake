file(REMOVE_RECURSE
  "libliquidd.a"
)
