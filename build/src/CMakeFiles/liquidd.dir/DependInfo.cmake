
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/liquidd.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/liquidd.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/liquidd.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/liquidd.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/CMakeFiles/liquidd.dir/graph/properties.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/graph/properties.cpp.o.d"
  "/root/repo/src/graph/restrictions.cpp" "src/CMakeFiles/liquidd.dir/graph/restrictions.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/graph/restrictions.cpp.o.d"
  "/root/repo/src/ld/cli/runner.cpp" "src/CMakeFiles/liquidd.dir/ld/cli/runner.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/cli/runner.cpp.o.d"
  "/root/repo/src/ld/cli/specs.cpp" "src/CMakeFiles/liquidd.dir/ld/cli/specs.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/cli/specs.cpp.o.d"
  "/root/repo/src/ld/delegation/concentration.cpp" "src/CMakeFiles/liquidd.dir/ld/delegation/concentration.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/delegation/concentration.cpp.o.d"
  "/root/repo/src/ld/delegation/delegation_graph.cpp" "src/CMakeFiles/liquidd.dir/ld/delegation/delegation_graph.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/delegation/delegation_graph.cpp.o.d"
  "/root/repo/src/ld/delegation/realize.cpp" "src/CMakeFiles/liquidd.dir/ld/delegation/realize.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/delegation/realize.cpp.o.d"
  "/root/repo/src/ld/dnh/conditions.cpp" "src/CMakeFiles/liquidd.dir/ld/dnh/conditions.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/dnh/conditions.cpp.o.d"
  "/root/repo/src/ld/dnh/verdicts.cpp" "src/CMakeFiles/liquidd.dir/ld/dnh/verdicts.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/dnh/verdicts.cpp.o.d"
  "/root/repo/src/ld/election/brute_force.cpp" "src/CMakeFiles/liquidd.dir/ld/election/brute_force.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/election/brute_force.cpp.o.d"
  "/root/repo/src/ld/election/distributional.cpp" "src/CMakeFiles/liquidd.dir/ld/election/distributional.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/election/distributional.cpp.o.d"
  "/root/repo/src/ld/election/engine.cpp" "src/CMakeFiles/liquidd.dir/ld/election/engine.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/election/engine.cpp.o.d"
  "/root/repo/src/ld/election/evaluator.cpp" "src/CMakeFiles/liquidd.dir/ld/election/evaluator.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/election/evaluator.cpp.o.d"
  "/root/repo/src/ld/election/tally.cpp" "src/CMakeFiles/liquidd.dir/ld/election/tally.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/election/tally.cpp.o.d"
  "/root/repo/src/ld/experiments/adversarial.cpp" "src/CMakeFiles/liquidd.dir/ld/experiments/adversarial.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/experiments/adversarial.cpp.o.d"
  "/root/repo/src/ld/experiments/harness.cpp" "src/CMakeFiles/liquidd.dir/ld/experiments/harness.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/experiments/harness.cpp.o.d"
  "/root/repo/src/ld/experiments/workloads.cpp" "src/CMakeFiles/liquidd.dir/ld/experiments/workloads.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/experiments/workloads.cpp.o.d"
  "/root/repo/src/ld/game/delegation_game.cpp" "src/CMakeFiles/liquidd.dir/ld/game/delegation_game.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/game/delegation_game.cpp.o.d"
  "/root/repo/src/ld/mech/abstaining.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/abstaining.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/abstaining.cpp.o.d"
  "/root/repo/src/ld/mech/approval_size_threshold.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/approval_size_threshold.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/approval_size_threshold.cpp.o.d"
  "/root/repo/src/ld/mech/best_neighbour.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/best_neighbour.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/best_neighbour.cpp.o.d"
  "/root/repo/src/ld/mech/capped_target.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/capped_target.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/capped_target.cpp.o.d"
  "/root/repo/src/ld/mech/complete_graph_threshold.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/complete_graph_threshold.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/complete_graph_threshold.cpp.o.d"
  "/root/repo/src/ld/mech/d_out_sampling.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/d_out_sampling.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/d_out_sampling.cpp.o.d"
  "/root/repo/src/ld/mech/direct.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/direct.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/direct.cpp.o.d"
  "/root/repo/src/ld/mech/fraction_approved.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/fraction_approved.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/fraction_approved.cpp.o.d"
  "/root/repo/src/ld/mech/mechanism.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/mechanism.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/mechanism.cpp.o.d"
  "/root/repo/src/ld/mech/multi_delegate.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/multi_delegate.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/multi_delegate.cpp.o.d"
  "/root/repo/src/ld/mech/noisy_threshold.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/noisy_threshold.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/noisy_threshold.cpp.o.d"
  "/root/repo/src/ld/mech/rank_proportional.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/rank_proportional.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/rank_proportional.cpp.o.d"
  "/root/repo/src/ld/mech/unrestricted_abstaining.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/unrestricted_abstaining.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/unrestricted_abstaining.cpp.o.d"
  "/root/repo/src/ld/mech/weighted_delegates.cpp" "src/CMakeFiles/liquidd.dir/ld/mech/weighted_delegates.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/mech/weighted_delegates.cpp.o.d"
  "/root/repo/src/ld/model/approval.cpp" "src/CMakeFiles/liquidd.dir/ld/model/approval.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/model/approval.cpp.o.d"
  "/root/repo/src/ld/model/competency.cpp" "src/CMakeFiles/liquidd.dir/ld/model/competency.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/model/competency.cpp.o.d"
  "/root/repo/src/ld/model/competency_gen.cpp" "src/CMakeFiles/liquidd.dir/ld/model/competency_gen.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/model/competency_gen.cpp.o.d"
  "/root/repo/src/ld/model/instance.cpp" "src/CMakeFiles/liquidd.dir/ld/model/instance.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/model/instance.cpp.o.d"
  "/root/repo/src/ld/model/instance_io.cpp" "src/CMakeFiles/liquidd.dir/ld/model/instance_io.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/model/instance_io.cpp.o.d"
  "/root/repo/src/ld/recycle/bounds.cpp" "src/CMakeFiles/liquidd.dir/ld/recycle/bounds.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/recycle/bounds.cpp.o.d"
  "/root/repo/src/ld/recycle/recycle_graph.cpp" "src/CMakeFiles/liquidd.dir/ld/recycle/recycle_graph.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/recycle/recycle_graph.cpp.o.d"
  "/root/repo/src/ld/recycle/sampler.cpp" "src/CMakeFiles/liquidd.dir/ld/recycle/sampler.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/recycle/sampler.cpp.o.d"
  "/root/repo/src/ld/theory/theorems.cpp" "src/CMakeFiles/liquidd.dir/ld/theory/theorems.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/ld/theory/theorems.cpp.o.d"
  "/root/repo/src/prob/bounds.cpp" "src/CMakeFiles/liquidd.dir/prob/bounds.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/prob/bounds.cpp.o.d"
  "/root/repo/src/prob/normal.cpp" "src/CMakeFiles/liquidd.dir/prob/normal.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/prob/normal.cpp.o.d"
  "/root/repo/src/prob/poisson_binomial.cpp" "src/CMakeFiles/liquidd.dir/prob/poisson_binomial.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/prob/poisson_binomial.cpp.o.d"
  "/root/repo/src/prob/weighted_bernoulli_sum.cpp" "src/CMakeFiles/liquidd.dir/prob/weighted_bernoulli_sum.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/prob/weighted_bernoulli_sum.cpp.o.d"
  "/root/repo/src/rng/rng.cpp" "src/CMakeFiles/liquidd.dir/rng/rng.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/rng/rng.cpp.o.d"
  "/root/repo/src/rng/sampling.cpp" "src/CMakeFiles/liquidd.dir/rng/sampling.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/rng/sampling.cpp.o.d"
  "/root/repo/src/stats/confidence.cpp" "src/CMakeFiles/liquidd.dir/stats/confidence.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/stats/confidence.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/CMakeFiles/liquidd.dir/stats/ecdf.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/stats/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/liquidd.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/running_stats.cpp" "src/CMakeFiles/liquidd.dir/stats/running_stats.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/stats/running_stats.cpp.o.d"
  "/root/repo/src/support/csv_writer.cpp" "src/CMakeFiles/liquidd.dir/support/csv_writer.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/support/csv_writer.cpp.o.d"
  "/root/repo/src/support/expect.cpp" "src/CMakeFiles/liquidd.dir/support/expect.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/support/expect.cpp.o.d"
  "/root/repo/src/support/stopwatch.cpp" "src/CMakeFiles/liquidd.dir/support/stopwatch.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/support/stopwatch.cpp.o.d"
  "/root/repo/src/support/table_printer.cpp" "src/CMakeFiles/liquidd.dir/support/table_printer.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/support/table_printer.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/CMakeFiles/liquidd.dir/support/thread_pool.cpp.o" "gcc" "src/CMakeFiles/liquidd.dir/support/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
