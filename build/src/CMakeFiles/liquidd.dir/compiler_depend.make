# Empty compiler generated dependencies file for liquidd.
# This may be replaced when dependencies are built.
