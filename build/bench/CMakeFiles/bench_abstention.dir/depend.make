# Empty dependencies file for bench_abstention.
# This may be replaced when dependencies are built.
