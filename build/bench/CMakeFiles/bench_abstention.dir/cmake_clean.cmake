file(REMOVE_RECURSE
  "CMakeFiles/bench_abstention.dir/bench_abstention.cpp.o"
  "CMakeFiles/bench_abstention.dir/bench_abstention.cpp.o.d"
  "bench_abstention"
  "bench_abstention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abstention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
