# Empty dependencies file for bench_realworld_topology.
# This may be replaced when dependencies are built.
