file(REMOVE_RECURSE
  "CMakeFiles/bench_realworld_topology.dir/bench_realworld_topology.cpp.o"
  "CMakeFiles/bench_realworld_topology.dir/bench_realworld_topology.cpp.o.d"
  "bench_realworld_topology"
  "bench_realworld_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_realworld_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
