file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_star.dir/bench_fig1_star.cpp.o"
  "CMakeFiles/bench_fig1_star.dir/bench_fig1_star.cpp.o.d"
  "bench_fig1_star"
  "bench_fig1_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
