file(REMOVE_RECURSE
  "CMakeFiles/bench_distributional.dir/bench_distributional.cpp.o"
  "CMakeFiles/bench_distributional.dir/bench_distributional.cpp.o.d"
  "bench_distributional"
  "bench_distributional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
