# Empty dependencies file for bench_distributional.
# This may be replaced when dependencies are built.
