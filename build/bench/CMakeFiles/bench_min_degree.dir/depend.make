# Empty dependencies file for bench_min_degree.
# This may be replaced when dependencies are built.
