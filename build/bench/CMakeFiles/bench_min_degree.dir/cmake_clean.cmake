file(REMOVE_RECURSE
  "CMakeFiles/bench_min_degree.dir/bench_min_degree.cpp.o"
  "CMakeFiles/bench_min_degree.dir/bench_min_degree.cpp.o.d"
  "bench_min_degree"
  "bench_min_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_min_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
