file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma3_anticoncentration.dir/bench_lemma3_anticoncentration.cpp.o"
  "CMakeFiles/bench_lemma3_anticoncentration.dir/bench_lemma3_anticoncentration.cpp.o.d"
  "bench_lemma3_anticoncentration"
  "bench_lemma3_anticoncentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma3_anticoncentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
