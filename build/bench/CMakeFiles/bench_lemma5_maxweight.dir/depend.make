# Empty dependencies file for bench_lemma5_maxweight.
# This may be replaced when dependencies are built.
