file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma5_maxweight.dir/bench_lemma5_maxweight.cpp.o"
  "CMakeFiles/bench_lemma5_maxweight.dir/bench_lemma5_maxweight.cpp.o.d"
  "bench_lemma5_maxweight"
  "bench_lemma5_maxweight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma5_maxweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
