file(REMOVE_RECURSE
  "CMakeFiles/bench_variance_manipulation.dir/bench_variance_manipulation.cpp.o"
  "CMakeFiles/bench_variance_manipulation.dir/bench_variance_manipulation.cpp.o.d"
  "bench_variance_manipulation"
  "bench_variance_manipulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variance_manipulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
