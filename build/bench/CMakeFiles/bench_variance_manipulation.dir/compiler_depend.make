# Empty compiler generated dependencies file for bench_variance_manipulation.
# This may be replaced when dependencies are built.
