# Empty dependencies file for bench_token_weights.
# This may be replaced when dependencies are built.
