file(REMOVE_RECURSE
  "CMakeFiles/bench_token_weights.dir/bench_token_weights.cpp.o"
  "CMakeFiles/bench_token_weights.dir/bench_token_weights.cpp.o.d"
  "bench_token_weights"
  "bench_token_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_token_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
