file(REMOVE_RECURSE
  "CMakeFiles/bench_bounded_degree.dir/bench_bounded_degree.cpp.o"
  "CMakeFiles/bench_bounded_degree.dir/bench_bounded_degree.cpp.o.d"
  "bench_bounded_degree"
  "bench_bounded_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounded_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
