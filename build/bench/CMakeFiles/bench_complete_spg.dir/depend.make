# Empty dependencies file for bench_complete_spg.
# This may be replaced when dependencies are built.
