file(REMOVE_RECURSE
  "CMakeFiles/bench_complete_spg.dir/bench_complete_spg.cpp.o"
  "CMakeFiles/bench_complete_spg.dir/bench_complete_spg.cpp.o.d"
  "bench_complete_spg"
  "bench_complete_spg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complete_spg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
