# Empty dependencies file for bench_recycle_concentration.
# This may be replaced when dependencies are built.
