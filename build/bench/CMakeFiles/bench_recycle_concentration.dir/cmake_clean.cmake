file(REMOVE_RECURSE
  "CMakeFiles/bench_recycle_concentration.dir/bench_recycle_concentration.cpp.o"
  "CMakeFiles/bench_recycle_concentration.dir/bench_recycle_concentration.cpp.o.d"
  "bench_recycle_concentration"
  "bench_recycle_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recycle_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
