# Empty compiler generated dependencies file for bench_multi_delegate.
# This may be replaced when dependencies are built.
