file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_delegate.dir/bench_multi_delegate.cpp.o"
  "CMakeFiles/bench_multi_delegate.dir/bench_multi_delegate.cpp.o.d"
  "bench_multi_delegate"
  "bench_multi_delegate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_delegate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
