# Empty dependencies file for bench_dregular_spg.
# This may be replaced when dependencies are built.
