file(REMOVE_RECURSE
  "CMakeFiles/bench_dregular_spg.dir/bench_dregular_spg.cpp.o"
  "CMakeFiles/bench_dregular_spg.dir/bench_dregular_spg.cpp.o.d"
  "bench_dregular_spg"
  "bench_dregular_spg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dregular_spg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
