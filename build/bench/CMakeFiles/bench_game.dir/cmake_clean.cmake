file(REMOVE_RECURSE
  "CMakeFiles/bench_game.dir/bench_game.cpp.o"
  "CMakeFiles/bench_game.dir/bench_game.cpp.o.d"
  "bench_game"
  "bench_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
