# Empty dependencies file for bench_noisy_approval.
# This may be replaced when dependencies are built.
