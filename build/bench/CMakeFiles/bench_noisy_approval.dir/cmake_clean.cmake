file(REMOVE_RECURSE
  "CMakeFiles/bench_noisy_approval.dir/bench_noisy_approval.cpp.o"
  "CMakeFiles/bench_noisy_approval.dir/bench_noisy_approval.cpp.o.d"
  "bench_noisy_approval"
  "bench_noisy_approval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noisy_approval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
