// Corporate-committee example: abstention and multi-delegation (§6
// extensions) in a realistic review-board setting.
//
// Scenario: a 180-person engineering organisation votes on a go/no-go
// release decision.  Everyone knows everyone (complete graph).  Many
// engineers are decision-agnostic: if they trust a colleague's judgement
// they would rather abstain or delegate than study the question.  We
// compare:
//   * direct voting,
//   * single delegation (Example 1),
//   * delegation with 50% abstention among would-be delegators (§6),
//   * delegation to a 3-member personal "advisory panel" whose majority
//     decides the voter's ballot (§6 weighted-majority extension).

#include <iostream>

#include "graph/generators.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/mech/abstaining.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/direct.hpp"
#include "ld/mech/multi_delegate.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/table_printer.hpp"

int main() {
    using namespace ld;
    rng::Rng rng(99);

    constexpr std::size_t kStaff = 180;
    constexpr double kAlpha = 0.05;
    // Release decisions are hard: expertise is centred slightly below a
    // coin flip for the median engineer, with a long right tail of people
    // close to the problem.
    auto expertise = model::truncated_normal_competencies(rng, kStaff, 0.48, 0.12,
                                                          0.10, 0.90);
    const model::Instance org(graph::make_complete(kStaff), std::move(expertise),
                              kAlpha);
    std::cout << "Committee vote: " << org.describe() << "\n\n";

    const mech::DirectVoting direct;
    const mech::ApprovalSizeThreshold single(3);
    const mech::Abstaining abstaining(single, 0.5);
    const mech::MultiDelegate panel(3, 3);

    support::TablePrinter table({"policy", "P[correct]", "gain_vs_direct"}, 4);
    election::EvalOptions opts;
    opts.replications = 120;
    opts.inner_samples = 16;

    const double pd = election::exact_direct_probability(org);
    table.add_row({direct.name(), pd, 0.0});
    for (const mech::Mechanism* policy :
         std::initializer_list<const mech::Mechanism*>{&single, &abstaining, &panel}) {
        const auto report = election::estimate_gain(*policy, org, rng, opts);
        table.add_row({policy->name(), report.pm.value, report.gain});
    }
    table.print(std::cout);

    std::cout << "\nReading: all three delegation policies beat direct voting on\n"
                 "this hard decision; abstention trades a little gain for lower\n"
                 "participation cost, and the 3-member advisory panel (weighted\n"
                 "majority, section 6 of the paper) is the strongest variant.\n";
    return 0;
}
