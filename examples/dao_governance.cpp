// DAO governance example: applying the paper's Lemma 5 condition to keep a
// token-holder vote safe from weight concentration.
//
// Scenario: a DAO of 2,000 token holders votes on a technical proposal with
// a correct answer.  Members only delegate to wallets they follow (a
// Barabási–Albert "influencer" social graph).  Governance wants liquid
// democracy for participation, but worries about the empirical finding the
// paper cites — voting power in real DAOs concentrates on a few whales.
//
// We compare three policies and audit each with the paper's conditions:
//   1. direct voting only,
//   2. unrestricted liquid democracy (threshold-1 delegation),
//   3. liquid democracy + Lemma 5 weight cap, by re-running the vote with a
//      max-delegates-per-wallet mechanism.

#include <iostream>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/dnh/conditions.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/capped_target.hpp"
#include "ld/mech/direct.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/table_printer.hpp"



using namespace ld;

int main() {
    rng::Rng rng(2024);
    constexpr std::size_t kHolders = 2000;
    constexpr double kAlpha = 0.05;

    // Influencer-shaped social graph; expertise varies widely but nobody
    // is an oracle (bounded competency, as Lemma 3 requires).  The
    // question is genuinely hard: median expertise sits at a coin flip.
    auto social = graph::make_barabasi_albert(rng, kHolders, 6);
    auto expertise = model::beta_competencies(rng, kHolders, 8.0, 8.3);
    const model::Instance dao(std::move(social), std::move(expertise), kAlpha);

    std::cout << "DAO vote: " << dao.describe() << "\n\n";

    const mech::DirectVoting direct;
    const mech::ApprovalSizeThreshold unrestricted(1);
    const ld::mech::CappedTarget capped(40);

    support::TablePrinter table(
        {"policy", "P[correct]", "gain", "max_weight", "margin/sigma", "lemma5_ok"}, 3);

    election::EvalOptions opts;
    opts.replications = 60;
    for (const mech::Mechanism* policy :
         std::initializer_list<const mech::Mechanism*>{&direct, &unrestricted, &capped}) {
        const auto report = election::estimate_gain(*policy, dao, rng, opts);
        const auto audit = dnh::audit_lemma5(dao, *policy, rng, 0.2, 2.0, 24);
        table.add_row({policy->name(), report.pm.value, report.gain,
                       audit.mean_max_weight,
                       audit.mean_sigma > 0 ? audit.mean_margin / audit.mean_sigma : 99.0,
                       std::string(audit.weight_small_enough ? "yes" : "NO")});
    }
    table.print(std::cout);

    std::cout << "\nReading: unrestricted delegation routes votes towards whales\n"
                 "(max sink weight an order of magnitude above the capped policy —\n"
                 "the concentration the paper and the DAO studies it cites warn\n"
                 "about).  The Lemma 5 cap bounds every wallet's weight while\n"
                 "keeping essentially all of the gain over direct voting.\n";
    return 0;
}
