// Social-network example: when should a community switch on liquid
// democracy?
//
// Scenario: a 1,500-member online community decides factual questions
// (moderation: "is this claim misinformation?").  Members know only their
// friends; friendships follow a small-world (Watts–Strogatz) pattern.
// Using the library's desiderata checkers we answer, for this concrete
// network: does delegation (a) never harm and (b) actually help — i.e. do
// the paper's DNH and SPG hold empirically here?

#include <iostream>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "ld/dnh/verdicts.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/table_printer.hpp"

int main() {
    using namespace ld;
    rng::Rng rng(7);

    // Instance family: small-world friendships, expertise uniform around
    // 1/2 (hard questions — exactly the paper's PC regime, where the
    // outcome is changeable).
    const dnh::InstanceFamily community = [](std::size_t n, rng::Rng& r) {
        auto g = graph::make_watts_strogatz(r, n, 12, 0.2);
        auto p = model::pc_competencies(r, n, 0.02, 0.25);
        return model::Instance(std::move(g), std::move(p), 0.05);
    };

    const mech::ApprovalSizeThreshold mechanism(2);

    dnh::VerdictOptions opts;
    opts.eval.replications = 60;
    opts.dnh_tolerance = 0.02;

    const std::vector<std::size_t> sizes{100, 200, 400, 800, 1500};
    std::cout << "Checking DNH and SPG for a small-world community...\n\n";
    const auto dnh_verdict = dnh::check_dnh(community, mechanism, sizes, rng, opts);
    const auto spg_verdict = dnh::check_spg(community, mechanism, sizes, rng, opts);

    support::TablePrinter table({"n", "P^D", "P^M", "gain", "delegators", "max_weight"}, 3);
    for (const auto& pt : dnh_verdict.sweep) {
        table.add_row({static_cast<long long>(pt.n), pt.pd, pt.pm, pt.gain,
                       pt.mean_delegators, pt.mean_max_weight});
    }
    table.print(std::cout);

    std::cout << '\n'
              << dnh_verdict.detail << '\n'
              << spg_verdict.detail << '\n';
    if (spg_verdict.satisfied) {
        std::cout << "\n=> liquid democracy is worth switching on for this network:\n"
                     "   certified empirical gain gamma = "
                  << spg_verdict.gamma << " across all tested sizes.\n";
    } else {
        std::cout << "\n=> keep direct voting: no uniform gain certified.\n";
    }

    // Structural sanity: a small-world graph has no dangerous hubs.
    const auto g = graph::make_watts_strogatz(rng, 1500, 12, 0.2);
    const auto stats = graph::degree_stats(g);
    std::cout << "\ndegree asymmetry (max/mean): " << stats.asymmetry
              << "  (paper: low asymmetry => good liquid-democracy topology)\n";
    return 0;
}
