// Quickstart: the 60-second tour of liquidd.
//
// Build a complete-graph instance with "plausibly changeable" competencies,
// run the paper's Algorithm 1, and compare liquid democracy against direct
// voting.

#include <iostream>

#include "ld/election/evaluator.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/complete_graph_threshold.hpp"

int main() {
    // 1. A reproducible random stream.
    ld::rng::Rng rng(42);

    // 2. A problem instance: 200 voters who all know each other (K_n),
    //    competencies clustered around 0.6 (PC = 0.1), approval margin 0.05.
    const auto instance =
        ld::experiments::complete_pc_instance(rng, /*n=*/200, /*alpha=*/0.05,
                                              /*a=*/0.1, /*spread=*/0.25);
    std::cout << instance.describe() << "\n";

    // 3. The paper's Algorithm 1 with threshold j(n) = ceil(sqrt n).
    const auto mechanism = ld::mech::CompleteGraphThreshold::with_sqrt_threshold();

    // 4. Estimate P^M, and get P^D exactly.
    ld::election::EvalOptions opts;
    opts.replications = 400;
    const auto report = ld::election::estimate_gain(mechanism, instance, rng, opts);

    std::cout << "mechanism          : " << mechanism.name() << "\n"
              << "P^D (direct, exact): " << report.pd << "\n"
              << "P^M (delegated)    : " << report.pm.value << " +- "
              << report.pm.std_error << "\n"
              << "gain               : " << report.gain << "  [" << report.gain_ci.lo
              << ", " << report.gain_ci.hi << "]\n"
              << "mean delegators    : " << report.mean_delegators << "\n"
              << "mean max weight    : " << report.mean_max_weight << "\n";
    return 0;
}
