// Tests for graph property computations on graphs with known answers.

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "rng/rng.hpp"

namespace {

namespace g = ld::graph;
using ld::graph::Graph;
using ld::graph::GraphBuilder;

TEST(DegreeStats, StarIsMaximallyAsymmetric) {
    const auto stats = g::degree_stats(g::make_star(11));
    EXPECT_EQ(stats.min, 1u);
    EXPECT_EQ(stats.max, 10u);
    EXPECT_NEAR(stats.mean, 20.0 / 11.0, 1e-12);
    EXPECT_GT(stats.asymmetry, 5.0);
}

TEST(DegreeStats, RegularGraphHasZeroVariance) {
    const auto stats = g::degree_stats(g::make_cycle(10));
    EXPECT_EQ(stats.min, 2u);
    EXPECT_EQ(stats.max, 2u);
    EXPECT_NEAR(stats.variance, 0.0, 1e-12);
    EXPECT_NEAR(stats.asymmetry, 1.0, 1e-12);
}

TEST(DegreeStats, EmptyGraphIsSafe) {
    const auto stats = g::degree_stats(Graph::empty(0));
    EXPECT_EQ(stats.max, 0u);
    EXPECT_EQ(stats.mean, 0.0);
}

TEST(Bfs, DistancesOnPath) {
    const auto dist = g::bfs_distances(g::make_path(5), 0);
    for (std::size_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableVerticesAreMarked) {
    GraphBuilder b(4);
    b.add_edge(0, 1);
    const auto dist = g::bfs_distances(b.build(), 0);
    EXPECT_EQ(dist[1], 1u);
    EXPECT_EQ(dist[2], std::numeric_limits<std::size_t>::max());
    EXPECT_EQ(dist[3], std::numeric_limits<std::size_t>::max());
}

TEST(Components, CountsAndLabels) {
    GraphBuilder b(6);
    b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
    const Graph graph = b.build();
    EXPECT_EQ(g::component_count(graph), 3u);
    const auto comp = g::connected_components(graph);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[2], comp[3]);
    EXPECT_EQ(comp[3], comp[4]);
    EXPECT_NE(comp[0], comp[2]);
    EXPECT_NE(comp[2], comp[5]);
    EXPECT_FALSE(g::is_connected(graph));
}

TEST(Components, CompleteGraphIsConnected) {
    EXPECT_TRUE(g::is_connected(g::make_complete(10)));
    EXPECT_TRUE(g::is_connected(Graph::empty(1)));
    EXPECT_TRUE(g::is_connected(Graph::empty(0)));
}

TEST(Diameter, KnownValues) {
    EXPECT_EQ(g::diameter(g::make_path(7)), 6u);
    EXPECT_EQ(g::diameter(g::make_cycle(8)), 4u);
    EXPECT_EQ(g::diameter(g::make_complete(9)), 1u);
    EXPECT_EQ(g::diameter(g::make_star(20)), 2u);
    EXPECT_EQ(g::diameter(Graph::empty(1)), 0u);
}

TEST(Diameter, ThrowsOnDisconnected) {
    GraphBuilder b(3);
    b.add_edge(0, 1);
    EXPECT_THROW(g::diameter(b.build()), std::invalid_argument);
}

TEST(Triangles, KnownCounts) {
    EXPECT_EQ(g::triangle_count(g::make_complete(4)), 4u);
    EXPECT_EQ(g::triangle_count(g::make_complete(5)), 10u);
    EXPECT_EQ(g::triangle_count(g::make_cycle(5)), 0u);
    EXPECT_EQ(g::triangle_count(g::make_star(10)), 0u);
}

TEST(Clustering, CompleteGraphIsOne) {
    EXPECT_NEAR(g::global_clustering_coefficient(g::make_complete(6)), 1.0, 1e-12);
}

TEST(Clustering, TriangleFreeGraphIsZero) {
    EXPECT_NEAR(g::global_clustering_coefficient(g::make_cycle(6)), 0.0, 1e-12);
    EXPECT_NEAR(g::global_clustering_coefficient(g::make_star(6)), 0.0, 1e-12);
}

TEST(Clustering, PaperExampleValue) {
    // Triangle with a pendant vertex: 1 triangle, open triads:
    // degrees 2,2,3,1 → 1 + 1 + 3 + 0 = 5 triads; coefficient 3/5.
    GraphBuilder b(4);
    b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2).add_edge(2, 3);
    EXPECT_NEAR(g::global_clustering_coefficient(b.build()), 0.6, 1e-12);
}

}  // namespace
