// Tests for approval sets and the Instance wrapper (paper §2.1).

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/model/approval.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/model/instance.hpp"
#include "support/expect.hpp"

namespace {

namespace g = ld::graph;
namespace model = ld::model;
using ld::model::CompetencyVector;
using ld::model::Instance;
using ld::support::ContractViolation;

TEST(Approval, RequiresStrictMarginAlpha) {
    const CompetencyVector p({0.5, 0.55, 0.6});
    // p_0 + 0.05 <= p_1 holds with equality.
    EXPECT_TRUE(model::approves(p, 0, 1, 0.05));
    EXPECT_FALSE(model::approves(p, 0, 1, 0.051));
    EXPECT_TRUE(model::approves(p, 0, 2, 0.1));
    EXPECT_FALSE(model::approves(p, 2, 0, 0.01));  // never approve less competent
    EXPECT_THROW(model::approves(p, 0, 1, 0.0), ContractViolation);
}

TEST(Approval, NeighbourhoodFiltering) {
    // Star: centre 0 (p = 0.9); leaves see only the centre.
    const auto star = g::make_star(5);
    const CompetencyVector p({0.9, 0.5, 0.5, 0.89, 0.2});
    const auto leaf1 = model::approved_neighbours(star, p, 1, 0.05);
    ASSERT_EQ(leaf1.size(), 1u);
    EXPECT_EQ(leaf1[0], 0u);
    // Leaf 3 (p=0.89) does not approve the centre at alpha 0.05.
    EXPECT_TRUE(model::approved_neighbours(star, p, 3, 0.05).empty());
    // The centre approves nobody (it is the best).
    EXPECT_TRUE(model::approved_neighbours(star, p, 0, 0.05).empty());
}

TEST(Approval, CountsMatchPerVertexQueries) {
    ld::rng::Rng rng(1);
    const auto graph = g::make_erdos_renyi_gnp(rng, 60, 0.2);
    const auto p = model::uniform_competencies(rng, 60, 0.1, 0.9);
    const auto counts = model::approved_neighbour_counts(graph, p, 0.05);
    for (g::Vertex v = 0; v < 60; ++v) {
        EXPECT_EQ(counts[v], model::approved_neighbours(graph, p, v, 0.05).size());
    }
}

TEST(Approval, GlobalSetIgnoresTopology) {
    const CompetencyVector p({0.2, 0.5, 0.8, 0.9});
    const auto j0 = model::global_approval_set(p, 0, 0.1);
    EXPECT_EQ(j0, (std::vector<std::size_t>{1, 2, 3}));
    const auto j3 = model::global_approval_set(p, 3, 0.1);
    EXPECT_TRUE(j3.empty());
}

TEST(Instance, ValidatesConstruction) {
    EXPECT_THROW(Instance(g::make_complete(3), CompetencyVector({0.5, 0.5}), 0.1),
                 ContractViolation);
    EXPECT_THROW(Instance(g::make_complete(2), CompetencyVector({0.5, 0.5}), 0.0),
                 ContractViolation);
}

TEST(Instance, AccessorsAndApproval) {
    const Instance inst(g::make_complete(3), CompetencyVector({0.3, 0.5, 0.7}), 0.1);
    EXPECT_EQ(inst.voter_count(), 3u);
    EXPECT_DOUBLE_EQ(inst.alpha(), 0.1);
    EXPECT_DOUBLE_EQ(inst.competency(2), 0.7);
    const auto approved = inst.approved_neighbours(0);
    EXPECT_EQ(approved, (std::vector<g::Vertex>{1, 2}));
    const auto counts = inst.approved_neighbour_counts();
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
}

TEST(Instance, PartitionComplexityBoundIsCeilOneOverAlpha) {
    const Instance a(g::make_complete(2), CompetencyVector({0.4, 0.6}), 0.25);
    EXPECT_EQ(a.partition_complexity_bound(), 4u);
    const Instance b(g::make_complete(2), CompetencyVector({0.4, 0.6}), 0.3);
    EXPECT_EQ(b.partition_complexity_bound(), 4u);  // ceil(1/0.3)
}

TEST(Instance, SatisfiesGraphRestrictions) {
    const Instance inst(g::make_complete(4), CompetencyVector({0.5, 0.5, 0.5, 0.5}), 0.1);
    EXPECT_TRUE(inst.satisfies(g::GraphRestriction::complete()));
    EXPECT_TRUE(inst.satisfies(g::GraphRestriction::regular(3)));
    EXPECT_FALSE(inst.satisfies(g::GraphRestriction::min_degree(4)));
}

TEST(Instance, DescribeMentionsKeyNumbers) {
    const Instance inst(g::make_complete(4), CompetencyVector({0.5, 0.5, 0.5, 0.5}), 0.1);
    const std::string d = inst.describe();
    EXPECT_NE(d.find("n=4"), std::string::npos);
    EXPECT_NE(d.find("m=6"), std::string::npos);
    EXPECT_NE(d.find("alpha=0.1"), std::string::npos);
}

}  // namespace
