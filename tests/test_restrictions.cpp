// Tests for Definition 1's graph restrictions.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/restrictions.hpp"
#include "rng/rng.hpp"

namespace {

namespace g = ld::graph;
using ld::graph::GraphRestriction;

TEST(Restrictions, CompletePredicate) {
    EXPECT_TRUE(g::is_complete(g::make_complete(7)));
    EXPECT_FALSE(g::is_complete(g::make_star(7)));
    EXPECT_TRUE(g::is_complete(g::make_complete(1)));
    EXPECT_TRUE(g::is_complete(g::make_complete(0)));
}

TEST(Restrictions, RegularPredicate) {
    EXPECT_TRUE(g::is_d_regular(g::make_cycle(6), 2));
    EXPECT_FALSE(g::is_d_regular(g::make_cycle(6), 3));
    EXPECT_TRUE(g::is_d_regular(g::make_complete(5), 4));
    EXPECT_FALSE(g::is_d_regular(g::make_star(5), 1));
}

TEST(Restrictions, DegreeBoundPredicates) {
    const auto star = g::make_star(10);
    EXPECT_TRUE(g::max_degree_at_most(star, 9));
    EXPECT_FALSE(g::max_degree_at_most(star, 8));
    EXPECT_TRUE(g::min_degree_at_least(star, 1));
    EXPECT_FALSE(g::min_degree_at_least(star, 2));
}

TEST(Restrictions, ValueTypeDispatch) {
    const auto k6 = g::make_complete(6);
    EXPECT_TRUE(GraphRestriction::complete().satisfied_by(k6));
    EXPECT_TRUE(GraphRestriction::regular(5).satisfied_by(k6));
    EXPECT_TRUE(GraphRestriction::max_degree(5).satisfied_by(k6));
    EXPECT_TRUE(GraphRestriction::min_degree(5).satisfied_by(k6));
    EXPECT_FALSE(GraphRestriction::min_degree(6).satisfied_by(k6));

    const auto star = g::make_star(6);
    EXPECT_FALSE(GraphRestriction::complete().satisfied_by(star));
    EXPECT_FALSE(GraphRestriction::regular(1).satisfied_by(star));
}

TEST(Restrictions, ToStringIsInformative) {
    EXPECT_EQ(GraphRestriction::complete().to_string(), "K_n");
    EXPECT_EQ(GraphRestriction::regular(4).to_string(), "Rand(n,4)");
    EXPECT_EQ(GraphRestriction::max_degree(8).to_string(), "maxdeg<=8");
    EXPECT_EQ(GraphRestriction::min_degree(3).to_string(), "mindeg>=3");
}

TEST(Restrictions, ParametersAreStored) {
    const auto r = GraphRestriction::max_degree(17);
    EXPECT_EQ(r.kind(), GraphRestriction::Kind::MaxDegree);
    EXPECT_EQ(r.parameter(), 17u);
}

}  // namespace
