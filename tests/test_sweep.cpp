// Tests for the declarative sweep engine: spec parsing, cell expansion
// and seeding, byte-identical determinism, checkpoint/resume after an
// interruption, shard-union equivalence, and the JSON serializer the
// checkpoints are built on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ld/cli/runner.hpp"
#include "ld/cli/specs.hpp"
#include "ld/experiments/sweep.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

namespace {

namespace exp = ld::experiments;
namespace json = ld::support::json;

// A 6-cell grid small enough that every test runs in milliseconds.
constexpr const char* kTinySpec = R"({
  "schema": "liquidd.sweep-spec.v1",
  "name": "tiny",
  "seed": 11,
  "replications": 20,
  "axes": {
    "n": [30],
    "alpha": [0.05, 0.1, 0.2],
    "graph": ["complete"],
    "competencies": ["uniform:0.3,0.7"],
    "mechanism": ["threshold:1", "direct"]
  },
  "options": {"threads": 1}
})";

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "/sweep_" + name;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

exp::SweepSpec tiny_spec() { return exp::SweepSpec::from_json(json::parse(kTinySpec)); }

exp::SweepOptions options_for(const std::string& tag) {
    exp::SweepOptions options;
    options.output_path = temp_path(tag + ".csv");
    options.quiet = true;
    return options;
}

// --- JSON serializer -------------------------------------------------------

TEST(JsonWriter, RoundTripsDocuments) {
    const char* text = R"({"a": [1, 2.5, "x"], "b": {"nested": true}, "c": null})";
    const json::Value doc = json::parse(text);
    const std::string compact = json::dump(doc);
    const json::Value reparsed = json::parse(compact);
    EXPECT_EQ(json::dump(reparsed), compact);
    EXPECT_EQ(reparsed.at("a").as_array()[1].as_number(), 2.5);
    EXPECT_TRUE(reparsed.at("b").at("nested").as_bool());
    EXPECT_TRUE(reparsed.at("c").is_null());
}

TEST(JsonWriter, EscapesAndFormatsNumbers) {
    EXPECT_EQ(json::quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(json::quote(std::string(1, '\x01')), "\"\\u0001\"");
    EXPECT_EQ(json::format_number(100.0), "100");
    // Round-trip: parse(format(x)) == x for a value with no short decimal.
    const double x = 0.1 + 0.2;
    EXPECT_EQ(json::parse(json::format_number(x)).as_number(), x);
    EXPECT_THROW(json::format_number(std::numeric_limits<double>::infinity()),
                 json::Error);
}

TEST(JsonWriter, PrettyPrintParsesBack) {
    const json::Value doc = json::parse(R"({"rows": [[1, "a"], [2, "b"]]})");
    const std::string pretty = json::dump(doc, 2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    EXPECT_EQ(json::dump(json::parse(pretty)), json::dump(doc));
}

// --- Spec parsing ----------------------------------------------------------

TEST(SweepSpec, ParsesEveryField) {
    const auto spec = tiny_spec();
    EXPECT_EQ(spec.name, "tiny");
    EXPECT_EQ(spec.seed, 11u);
    EXPECT_EQ(spec.replications, 20u);
    EXPECT_EQ(spec.threads, 1u);
    EXPECT_EQ(spec.ns, (std::vector<std::size_t>{30}));
    EXPECT_EQ(spec.alphas, (std::vector<double>{0.05, 0.1, 0.2}));
    EXPECT_EQ(spec.mechanisms, (std::vector<std::string>{"threshold:1", "direct"}));
    EXPECT_EQ(spec.cell_count(), 6u);
}

TEST(SweepSpec, ScalarAxesAreAccepted) {
    const auto spec = exp::SweepSpec::from_json(json::parse(R"({
      "name": "scalar",
      "axes": {"n": 20, "alpha": 0.1, "graph": "complete",
               "competencies": "const:0.6", "mechanism": "direct"}
    })"));
    EXPECT_EQ(spec.cell_count(), 1u);
    EXPECT_EQ(spec.graphs, (std::vector<std::string>{"complete"}));
}

TEST(SweepSpec, MalformedSpecsAreDiagnosed) {
    const auto parse_spec = [](const std::string& text) {
        return exp::SweepSpec::from_json(json::parse(text));
    };
    // Missing name, missing axes, empty axis, bad types, unknown keys.
    EXPECT_THROW(parse_spec(R"({"axes": {}})"), exp::SweepError);
    EXPECT_THROW(parse_spec(R"({"name": "x"})"), exp::SweepError);
    EXPECT_THROW(parse_spec(R"({"name": "x", "axes": {"n": [], "alpha": 0.1,
        "graph": "complete", "competencies": "const:0.6", "mechanism": "direct"}})"),
                 exp::SweepError);
    EXPECT_THROW(parse_spec(R"({"name": "x", "axes": {"n": 10, "alpha": -0.1,
        "graph": "complete", "competencies": "const:0.6", "mechanism": "direct"}})"),
                 exp::SweepError);
    EXPECT_THROW(parse_spec(R"({"name": "x", "axes": {"n": 10, "alpha": 0.1,
        "graph": 7, "competencies": "const:0.6", "mechanism": "direct"}})"),
                 exp::SweepError);
    EXPECT_THROW(parse_spec(R"({"name": "x", "axes": {"n": 10, "alpha": 0.1,
        "graph": "complete", "competencies": "const:0.6", "mechanism": "direct",
        "bogus": 1}})"),
                 exp::SweepError);
    EXPECT_THROW(parse_spec(R"({"name": "x", "replications": 0, "axes": {"n": 10,
        "alpha": 0.1, "graph": "complete", "competencies": "const:0.6",
        "mechanism": "direct"}})"),
                 exp::SweepError);
    EXPECT_THROW(parse_spec(R"({"schema": "wrong.v9", "name": "x", "axes": {"n": 10,
        "alpha": 0.1, "graph": "complete", "competencies": "const:0.6",
        "mechanism": "direct"}})"),
                 exp::SweepError);
    // Not JSON at all.
    EXPECT_THROW(json::parse("not json"), json::Error);
}

TEST(SweepSpec, FingerprintTracksResultAffectingFields) {
    const auto base = tiny_spec();
    auto changed = base;
    EXPECT_EQ(base.fingerprint(), tiny_spec().fingerprint());
    changed.seed = 12;
    EXPECT_NE(base.fingerprint(), changed.fingerprint());
    changed = base;
    changed.alphas.push_back(0.3);
    EXPECT_NE(base.fingerprint(), changed.fingerprint());
}

// --- Cell expansion and seeding ---------------------------------------------

TEST(SweepCells, ExpansionOrderIsMechanismInnermost) {
    exp::SweepEngine engine(tiny_spec(), options_for("order"));
    const auto cells = engine.cells();
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_EQ(cells[0].alpha, 0.05);
    EXPECT_EQ(cells[0].mechanism, "threshold:1");
    EXPECT_EQ(cells[1].alpha, 0.05);
    EXPECT_EQ(cells[1].mechanism, "direct");
    EXPECT_EQ(cells[2].alpha, 0.1);
    for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
}

TEST(SweepCells, SeedsDependOnlyOnSweepSeedAndIndex) {
    EXPECT_EQ(exp::derive_cell_seed(1, 0), exp::derive_cell_seed(1, 0));
    EXPECT_NE(exp::derive_cell_seed(1, 0), exp::derive_cell_seed(1, 1));
    EXPECT_NE(exp::derive_cell_seed(1, 0), exp::derive_cell_seed(2, 0));
    // No collisions over a healthy range.
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 10000; ++i) seen.insert(exp::derive_cell_seed(42, i));
    EXPECT_EQ(seen.size(), 10000u);
}

// --- Determinism, resume, sharding ------------------------------------------

TEST(SweepEngine, SameSpecTwiceIsByteIdentical) {
    auto a = options_for("det_a");
    auto b = options_for("det_b");
    exp::SweepEngine(tiny_spec(), a).run(std::cout);
    exp::SweepEngine(tiny_spec(), b).run(std::cout);
    const std::string bytes = read_file(a.output_path);
    EXPECT_EQ(bytes, read_file(b.output_path));
    EXPECT_NE(bytes.find("cell,n,alpha"), std::string::npos);
    EXPECT_EQ(std::count(bytes.begin(), bytes.end(), '\n'), 7);  // header + 6 rows
}

TEST(SweepEngine, InterruptAndResumeIsByteIdentical) {
    auto uninterrupted = options_for("resume_full");
    exp::SweepEngine(tiny_spec(), uninterrupted).run(std::cout);

    auto interrupted = options_for("resume_partial");
    interrupted.max_cells = 2;  // simulate a kill after two finished cells
    const auto partial = exp::SweepEngine(tiny_spec(), interrupted).run(std::cout);
    EXPECT_FALSE(partial.finished);
    EXPECT_EQ(partial.cells_completed, 2u);

    auto resumed = interrupted;
    resumed.max_cells = 0;
    resumed.resume = true;
    const auto rest = exp::SweepEngine(tiny_spec(), resumed).run(std::cout);
    EXPECT_TRUE(rest.finished);
    EXPECT_EQ(rest.cells_skipped, 2u);
    EXPECT_EQ(rest.cells_completed, 4u);
    EXPECT_EQ(read_file(uninterrupted.output_path), read_file(resumed.output_path));
}

TEST(SweepEngine, CancelHookStopsBetweenCellsAndResumes) {
    // The cancel hook is what SIGINT/SIGTERM drive through the CLI: the
    // cell in flight finishes, the checkpoint stays published, and a
    // resumed run reproduces the uninterrupted output byte for byte.
    auto uninterrupted = options_for("cancel_full");
    exp::SweepEngine(tiny_spec(), uninterrupted).run(std::cout);

    auto cancelled = options_for("cancel_partial");
    int polls = 0;
    cancelled.cancel = [&polls] { return ++polls > 1; };  // stop after cell 0
    const auto partial = exp::SweepEngine(tiny_spec(), cancelled).run(std::cout);
    EXPECT_FALSE(partial.finished);
    EXPECT_TRUE(partial.cancelled);
    EXPECT_EQ(partial.cells_completed, 1u);

    // The checkpoint written for the finished cell records build info.
    const json::Value manifest = json::parse_file(cancelled.output_path + ".ckpt.json");
    EXPECT_TRUE(manifest.at("build").at("git_describe").is_string());

    auto resumed = cancelled;
    resumed.cancel = {};
    resumed.resume = true;
    const auto rest = exp::SweepEngine(tiny_spec(), resumed).run(std::cout);
    EXPECT_TRUE(rest.finished);
    EXPECT_FALSE(rest.cancelled);
    EXPECT_EQ(rest.cells_skipped, 1u);
    EXPECT_EQ(read_file(uninterrupted.output_path), read_file(resumed.output_path));
}

TEST(SweepEngine, ResumeRefusesAChangedSpec) {
    auto options = options_for("resume_guard");
    options.max_cells = 1;
    exp::SweepEngine(tiny_spec(), options).run(std::cout);

    auto changed = tiny_spec();
    changed.seed = 999;
    options.resume = true;
    options.max_cells = 0;
    exp::SweepEngine engine(changed, options);
    EXPECT_THROW(engine.run(std::cout), exp::SweepError);
}

TEST(SweepEngine, ShardUnionEqualsUnshardedRun) {
    auto full = options_for("shard_full");
    exp::SweepEngine(tiny_spec(), full).run(std::cout);

    std::vector<std::string> rows;
    for (std::size_t shard = 0; shard < 2; ++shard) {
        auto options = options_for("shard_" + std::to_string(shard));
        options.shard.index = shard;
        options.shard.count = 2;
        const auto result = exp::SweepEngine(tiny_spec(), options).run(std::cout);
        EXPECT_EQ(result.cells_total, 3u);
        std::istringstream in(read_file(options.output_path));
        std::string line;
        std::getline(in, line);  // drop the header
        while (std::getline(in, line)) rows.push_back(line);
    }
    // Rows carry their cell index in column 0; shard 0 took the even
    // cells, so interleaving the two shard outputs restores grid order.
    ASSERT_EQ(rows.size(), 6u);
    std::vector<std::string> merged;
    for (std::size_t i = 0; i < 3; ++i) {
        merged.push_back(rows[i]);
        merged.push_back(rows[3 + i]);
    }
    std::istringstream in(read_file(full.output_path));
    std::string line;
    std::getline(in, line);
    for (const auto& expected : merged) {
        ASSERT_TRUE(std::getline(in, line));
        EXPECT_EQ(line, expected);
    }
}

TEST(SweepEngine, JsonlRowsParseBack) {
    auto options = options_for("rows");
    options.output_path = temp_path("rows.jsonl");
    exp::SweepEngine(tiny_spec(), options).run(std::cout);
    std::istringstream in(read_file(options.output_path));
    std::string line;
    std::size_t count = 0;
    while (std::getline(in, line)) {
        const json::Value row = json::parse(line);
        EXPECT_EQ(static_cast<std::size_t>(row.at("cell").as_number()), count);
        EXPECT_EQ(row.at("n").as_number(), 30.0);
        EXPECT_TRUE(row.contains("gain"));
        ++count;
    }
    EXPECT_EQ(count, 6u);
}

TEST(SweepEngine, FailedCellNamesItsCoordinates) {
    auto spec = tiny_spec();
    spec.mechanisms = {"noisy:1,0.2"};  // needs discard_cycles
    exp::SweepEngine engine(spec, options_for("fail"));
    try {
        engine.run(std::cout);
        FAIL() << "expected SweepError";
    } catch (const exp::SweepError& e) {
        EXPECT_NE(std::string(e.what()).find("cell #0"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("discard_cycles"), std::string::npos);
    }
}

TEST(SweepEngine, MetricsCountCells) {
    auto& registry = ld::support::MetricsRegistry::global();
    const auto before = registry.snapshot();
    exp::SweepEngine(tiny_spec(), options_for("metrics")).run(std::cout);
    const auto delta = registry.snapshot().since(before);
    EXPECT_GE(delta.counter_value("sweep.cells_completed"), 6u);
    ASSERT_NE(delta.find_histogram("sweep.cell_latency"), nullptr);
    EXPECT_GE(delta.find_histogram("sweep.cell_latency")->count, 6u);
}

// --- CLI surface -------------------------------------------------------------

TEST(SweepCli, ParsesFlags) {
    const auto options = ld::cli::parse_sweep_options(
        {"spec.json", "--shard", "1/4", "--resume", "--out", "rows.csv", "--ckpt",
         "c.json", "--threads", "2", "--max-cells", "5", "--metrics-out", "m.json"});
    EXPECT_EQ(options.spec_path, "spec.json");
    EXPECT_EQ(options.shard_index, 1u);
    EXPECT_EQ(options.shard_count, 4u);
    EXPECT_TRUE(options.resume);
    EXPECT_EQ(options.max_cells, 5u);
    ASSERT_TRUE(options.threads.has_value());
    EXPECT_EQ(*options.threads, 2u);
    EXPECT_EQ(*options.output_path, "rows.csv");
    EXPECT_EQ(*options.checkpoint_path, "c.json");
    EXPECT_EQ(*options.metrics_out, "m.json");
}

TEST(SweepCli, ErrorsAreDiagnosed) {
    using ld::cli::SpecError;
    EXPECT_THROW(ld::cli::parse_sweep_options({}), SpecError);
    EXPECT_THROW(ld::cli::parse_sweep_options({"a.json", "--shard", "2"}), SpecError);
    EXPECT_THROW(ld::cli::parse_sweep_options({"a.json", "--shard", "2/2"}), SpecError);
    EXPECT_THROW(ld::cli::parse_sweep_options({"a.json", "--bogus"}), SpecError);
    EXPECT_THROW(ld::cli::parse_sweep_options({"a.json", "extra.json"}), SpecError);
}

TEST(SweepCli, HelpAndEndToEndRun) {
    ld::cli::SweepOptions help;
    help.help = true;
    std::ostringstream out;
    EXPECT_EQ(ld::cli::run_sweep(help, out), 0);
    EXPECT_NE(out.str().find("usage: liquidd sweep"), std::string::npos);

    const std::string spec_path = temp_path("cli_spec.json");
    {
        std::ofstream spec(spec_path);
        spec << kTinySpec;
    }
    ld::cli::SweepOptions options;
    options.spec_path = spec_path;
    options.output_path = temp_path("cli_rows.csv");
    options.metrics_out = temp_path("cli_metrics.json");
    std::ostringstream log;
    EXPECT_EQ(ld::cli::run_sweep(options, log), 0);
    EXPECT_NE(log.str().find("sweep tiny: 6 run"), std::string::npos);
    EXPECT_EQ(json::parse_file(*options.metrics_out).at("schema").as_string(),
              "liquidd.metrics.v1");
    const std::string rows = read_file(*options.output_path);
    EXPECT_EQ(std::count(rows.begin(), rows.end(), '\n'), 7);
    std::remove(spec_path.c_str());
}

TEST(SweepCli, MissingSpecFileIsAnError) {
    ld::cli::SweepOptions options;
    options.spec_path = temp_path("does_not_exist.json");
    std::ostringstream out;
    EXPECT_THROW(ld::cli::run_sweep(options, out), exp::SweepError);
}

}  // namespace
