// Property test for the JSON layer: parse(dump(v)) == v for randomized
// values — nested arrays/objects, strings full of escapes and control
// characters, and doubles from the nasty corners of IEEE 754.  The
// round-trip contract is what the sweep checkpoints, metrics reports,
// and the liquidd.rpc.v1 wire format all lean on: a value serialized by
// one process must reparse bit-identically in another.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace {

namespace json = ld::support::json;

using Generator = std::mt19937_64;

double random_double(Generator& gen) {
    // Mix uniform draws with reinterpreted random bit patterns so the
    // mantissa corners (denormals, near-integer magnitudes, tiny
    // exponents) all show up; NaN/infinity are unrepresentable in JSON
    // and filtered out.
    static const double corners[] = {
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        -1.0 / 3.0,
        1e-9,
        1e300,
        -1e300,
        3.141592653589793,
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::min(),      // smallest normal
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::epsilon(),
        9007199254740993.0,  // > 2^53: rounds to an even mantissa
    };
    std::uniform_int_distribution<int> pick(0, 3);
    switch (pick(gen)) {
        case 0:
            return corners[std::uniform_int_distribution<std::size_t>(
                0, std::size(corners) - 1)(gen)];
        case 1:
            return std::uniform_real_distribution<double>(-1e6, 1e6)(gen);
        case 2: {
            // Random bits: any finite double, denormals included.
            double value;
            do {
                const std::uint64_t bits = gen();
                std::memcpy(&value, &bits, sizeof value);
            } while (!std::isfinite(value));
            return value;
        }
        default:
            return static_cast<double>(
                std::uniform_int_distribution<std::int64_t>(-1'000'000, 1'000'000)(gen));
    }
}

std::string random_string(Generator& gen) {
    // ASCII with every escape class: quotes, backslashes, control
    // characters (the \u00XX path), plus embedded multi-byte UTF-8.
    static const char pool[] =
        "abc XYZ 019 \" \\ / \b \f \n \r \t \x01 \x1f {}[]:,";
    static const char* utf8[] = {"é", "→", "\U0001F4A1"};
    std::uniform_int_distribution<int> length(0, 24);
    std::uniform_int_distribution<int> kind(0, 9);
    std::string out;
    const int n = length(gen);
    for (int i = 0; i < n; ++i) {
        if (kind(gen) == 0) {
            out += utf8[std::uniform_int_distribution<std::size_t>(
                0, std::size(utf8) - 1)(gen)];
        } else {
            out += pool[std::uniform_int_distribution<std::size_t>(
                0, sizeof(pool) - 2)(gen)];
        }
    }
    return out;
}

json::Value random_value(Generator& gen, int depth) {
    // Leaves only at depth 0; containers get rarer as they nest.
    std::uniform_int_distribution<int> pick(0, depth > 0 ? 5 : 3);
    switch (pick(gen)) {
        case 0:
            return json::Value(nullptr);
        case 1:
            return json::Value(std::bernoulli_distribution(0.5)(gen));
        case 2:
            return json::Value(random_double(gen));
        case 3:
            return json::Value(random_string(gen));
        case 4: {
            json::Array array;
            const int n = std::uniform_int_distribution<int>(0, 4)(gen);
            for (int i = 0; i < n; ++i) array.push_back(random_value(gen, depth - 1));
            return json::Value(std::move(array));
        }
        default: {
            json::Object object;
            const int n = std::uniform_int_distribution<int>(0, 4)(gen);
            for (int i = 0; i < n; ++i) {
                object.emplace(random_string(gen), random_value(gen, depth - 1));
            }
            return json::Value(std::move(object));
        }
    }
}

TEST(JsonRoundTrip, RandomValuesSurviveCompactAndPrettyDumps) {
    Generator gen(20260806);
    for (int trial = 0; trial < 500; ++trial) {
        const json::Value value = random_value(gen, 4);
        const std::string compact = json::dump(value);
        EXPECT_TRUE(json::parse(compact) == value)
            << "trial " << trial << ": " << compact;
        const std::string pretty = json::dump(value, 2);
        EXPECT_TRUE(json::parse(pretty) == value)
            << "trial " << trial << ": " << pretty;
        // dump is deterministic: the round-tripped value re-dumps to the
        // same bytes (objects are ordered maps, numbers are canonical).
        EXPECT_EQ(json::dump(json::parse(compact)), compact) << "trial " << trial;
    }
}

TEST(JsonRoundTrip, ExtremeDoublesAreExact) {
    const double cases[] = {
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        9007199254740993.0,
        1.7976931348623155e308,
        4.9406564584124654e-324,
        -2.2250738585072014e-308,
    };
    for (const double expected : cases) {
        const json::Value parsed = json::parse(json::dump(json::Value(expected)));
        EXPECT_EQ(parsed.as_number(), expected) << expected;
    }
    // NaN and infinity have no JSON rendering: the serializer must
    // refuse rather than emit something a reader would reject.
    EXPECT_THROW(json::dump(json::Value(std::numeric_limits<double>::quiet_NaN())),
                 json::Error);
    EXPECT_THROW(json::dump(json::Value(std::numeric_limits<double>::infinity())),
                 json::Error);
}

TEST(JsonRoundTrip, EscapeHeavyStringsSurvive) {
    const std::string cases[] = {
        "",
        "\"\\\"",
        std::string("\x00\x01\x02", 3),  // embedded NUL
        "line\nbreak\r\n\ttab",
        "\x7f high ÿ bit",
        "é→\U0001F4A1",
        "ends with backslash \\",
    };
    for (const auto& expected : cases) {
        const json::Value parsed = json::parse(json::dump(json::Value(expected)));
        EXPECT_EQ(parsed.as_string(), expected) << json::quote(expected);
    }
}

}  // namespace
