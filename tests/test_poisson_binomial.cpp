// Tests for the exact Poisson-binomial distribution — the law of the
// direct-voting outcome.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prob/poisson_binomial.hpp"
#include "support/expect.hpp"

namespace {

using ld::prob::PoissonBinomial;
using ld::support::ContractViolation;

double binomial_pmf(int n, int k, double p) {
    double log_choose = std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
    return std::exp(log_choose + k * std::log(p) + (n - k) * std::log1p(-p));
}

TEST(PoissonBinomial, EmptySumIsZero) {
    const PoissonBinomial pb(std::vector<double>{});
    EXPECT_EQ(pb.trial_count(), 0u);
    EXPECT_DOUBLE_EQ(pb.pmf(0), 1.0);
    EXPECT_DOUBLE_EQ(pb.mean(), 0.0);
    EXPECT_DOUBLE_EQ(pb.majority_probability(), 0.0);  // 0 > 0 is false
}

TEST(PoissonBinomial, SingleTrial) {
    const PoissonBinomial pb(std::vector<double>{0.3});
    EXPECT_NEAR(pb.pmf(0), 0.7, 1e-15);
    EXPECT_NEAR(pb.pmf(1), 0.3, 1e-15);
    EXPECT_NEAR(pb.majority_probability(), 0.3, 1e-15);  // X > 1/2 ⇔ X = 1
}

TEST(PoissonBinomial, MatchesBinomialWhenHomogeneous) {
    const int n = 20;
    const double p = 0.35;
    const PoissonBinomial pb(std::vector<double>(n, p));
    for (int k = 0; k <= n; ++k) {
        EXPECT_NEAR(pb.pmf(k), binomial_pmf(n, k, p), 1e-12) << "k=" << k;
    }
}

TEST(PoissonBinomial, PmfSumsToOne) {
    const std::vector<double> probs{0.1, 0.9, 0.5, 0.3, 0.7, 0.25, 0.99, 0.01};
    const PoissonBinomial pb(probs);
    double total = 0.0;
    for (std::size_t k = 0; k <= probs.size(); ++k) total += pb.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PoissonBinomial, MeanAndVarianceFormulas) {
    const std::vector<double> probs{0.2, 0.4, 0.6, 0.8};
    const PoissonBinomial pb(probs);
    EXPECT_NEAR(pb.mean(), 2.0, 1e-15);
    double var = 0.0;
    for (double p : probs) var += p * (1 - p);
    EXPECT_NEAR(pb.variance(), var, 1e-15);

    // Cross-check against the pmf moments.
    double m1 = 0.0, m2 = 0.0;
    for (std::size_t k = 0; k <= probs.size(); ++k) {
        m1 += static_cast<double>(k) * pb.pmf(k);
        m2 += static_cast<double>(k * k) * pb.pmf(k);
    }
    EXPECT_NEAR(m1, pb.mean(), 1e-12);
    EXPECT_NEAR(m2 - m1 * m1, pb.variance(), 1e-12);
}

TEST(PoissonBinomial, CdfIsMonotone) {
    const std::vector<double> probs{0.3, 0.5, 0.7, 0.2, 0.9};
    const PoissonBinomial pb(probs);
    double prev = 0.0;
    for (std::size_t k = 0; k <= probs.size(); ++k) {
        EXPECT_GE(pb.cdf(k), prev - 1e-15);
        prev = pb.cdf(k);
    }
    EXPECT_NEAR(pb.cdf(probs.size()), 1.0, 1e-12);
}

TEST(PoissonBinomial, TailComplementsCdf) {
    const std::vector<double> probs{0.4, 0.6, 0.1};
    const PoissonBinomial pb(probs);
    for (std::size_t k = 0; k <= probs.size(); ++k) {
        EXPECT_NEAR(pb.tail_above(static_cast<double>(k)) + pb.cdf(k), 1.0, 1e-12);
    }
}

TEST(PoissonBinomial, MajorityOfFairCoinsIsSymmetric) {
    // Odd n of fair coins: strict majority happens with probability 1/2.
    const PoissonBinomial pb(std::vector<double>(9, 0.5));
    EXPECT_NEAR(pb.majority_probability(), 0.5, 1e-12);
}

TEST(PoissonBinomial, EvenTiesCountAsFailure) {
    // Two fair coins: P[X > 1] = P[X = 2] = 1/4 (the tie X = 1 loses).
    const PoissonBinomial pb(std::vector<double>(2, 0.5));
    EXPECT_NEAR(pb.majority_probability(), 0.25, 1e-12);
}

TEST(PoissonBinomial, DegenerateProbabilities) {
    const PoissonBinomial pb(std::vector<double>{1.0, 1.0, 0.0});
    EXPECT_NEAR(pb.pmf(2), 1.0, 1e-15);
    EXPECT_NEAR(pb.majority_probability(), 1.0, 1e-15);  // 2 > 1.5
}

TEST(PoissonBinomial, MajorityProbabilityGrowsWithCompetence) {
    // Condorcet jury: for p > 1/2, majority probability grows with n.
    double prev = 0.0;
    for (int n : {11, 31, 101, 301}) {
        const PoissonBinomial pb(std::vector<double>(n, 0.6));
        EXPECT_GT(pb.majority_probability(), prev);
        prev = pb.majority_probability();
    }
    EXPECT_GT(prev, 0.97);
}

TEST(PoissonBinomial, RejectsBadProbability) {
    EXPECT_THROW(PoissonBinomial(std::vector<double>{0.5, 1.2}), ContractViolation);
    EXPECT_THROW(PoissonBinomial(std::vector<double>{-0.1}), ContractViolation);
}

TEST(PoissonBinomial, ConvenienceWrapperAgrees) {
    const std::vector<double> probs{0.55, 0.65, 0.45, 0.7, 0.5};
    EXPECT_NEAR(ld::prob::direct_majority_probability(probs),
                PoissonBinomial(probs).majority_probability(), 1e-15);
}

TEST(PoissonBinomial, LargeInstanceIsStable) {
    const PoissonBinomial pb(std::vector<double>(2000, 0.52));
    EXPECT_NEAR(pb.mean(), 1040.0, 1e-9);
    double total = 0.0;
    for (std::size_t k = 0; k <= 2000; ++k) total += pb.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(pb.majority_probability(), 0.9);  // 2σ ≈ 45 above the line
}

}  // namespace
