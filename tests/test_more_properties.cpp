// Additional cross-cutting property tests:
//  * Lemma 4 (quoted from Kahng et al.): the direct-voting sum converges
//    to a normal law — checked by comparing the exact Poisson-binomial CDF
//    against the matched normal CDF at several quantiles,
//  * CappedTarget mechanism invariants,
//  * recycle-graph expectation vs an actual Algorithm-1 delegation run
//    (the Lemma 7 construction is faithful),
//  * gain monotonicity in the approval margin's information value.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/mech/capped_target.hpp"
#include "ld/mech/complete_graph_threshold.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/recycle/recycle_graph.hpp"
#include "prob/normal.hpp"
#include "support/expect.hpp"
#include "prob/poisson_binomial.hpp"
#include "stats/running_stats.hpp"

namespace {

namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
namespace prob = ld::prob;
using ld::rng::Rng;

TEST(Lemma4, PoissonBinomialApproachesMatchedNormal) {
    // Bounded competencies in (beta, 1-beta): the CLT error shrinks as n
    // grows.  Compare sup-norm-ish CDF distance at a grid of points.
    Rng rng(1);
    double previous_worst = 1.0;
    for (std::size_t n : {20u, 80u, 320u, 1280u}) {
        const auto p = model::uniform_competencies(rng, n, 0.25, 0.75);
        const prob::PoissonBinomial pb(p.values());
        const double mu = pb.mean();
        const double sigma = std::sqrt(pb.variance());
        double worst = 0.0;
        for (double z = -2.5; z <= 2.5; z += 0.5) {
            const auto k = static_cast<std::size_t>(
                std::clamp(mu + z * sigma, 0.0, static_cast<double>(n)));
            // Continuity-corrected normal CDF at k.
            const double normal =
                prob::normal_cdf(static_cast<double>(k) + 0.5, mu, sigma);
            worst = std::max(worst, std::abs(pb.cdf(k) - normal));
        }
        EXPECT_LT(worst, previous_worst + 0.01) << "n=" << n;
        previous_worst = worst;
    }
    EXPECT_LT(previous_worst, 0.01);  // at n = 1280 the CLT is sharp
}

TEST(CappedTarget, NeverDelegatesIntoHubs) {
    Rng rng(2);
    const auto graph = g::make_barabasi_albert(rng, 300, 4);
    const model::Instance inst(graph, model::uniform_competencies(rng, 300, 0.2, 0.8),
                               0.05);
    const mech::CappedTarget capped(12);
    for (int rep = 0; rep < 10; ++rep) {
        const auto out = ld::delegation::realize(capped, inst, rng);
        for (g::Vertex v = 0; v < 300; ++v) {
            const auto& a = out.action(v);
            if (a.kind != mech::ActionKind::Delegate) continue;
            EXPECT_LE(inst.graph().degree(a.targets[0]), 12u);
            EXPECT_GE(inst.competency(a.targets[0]), inst.competency(v) + 0.05);
        }
    }
}

TEST(CappedTarget, ReducesMaxWeightVersusUncapped) {
    Rng rng(3);
    const auto graph = g::make_barabasi_albert(rng, 500, 5);
    const model::Instance inst(graph, model::uniform_competencies(rng, 500, 0.2, 0.8),
                               0.05);
    const mech::CappedTarget capped(15);
    const mech::CappedTarget uncapped(10000);  // effectively no cap
    ld::stats::RunningStats capped_max, uncapped_max;
    for (int rep = 0; rep < 20; ++rep) {
        capped_max.add(static_cast<double>(
            ld::delegation::realize(capped, inst, rng).stats().max_weight));
        uncapped_max.add(static_cast<double>(
            ld::delegation::realize(uncapped, inst, rng).stats().max_weight));
    }
    EXPECT_LT(capped_max.mean(), uncapped_max.mean());
}

TEST(CappedTarget, ClosedFormMatchesBehaviour) {
    Rng rng(4);
    const auto graph = g::make_star(20);
    const model::Instance inst(graph, model::star_competencies(20), 0.05);
    // Centre has degree 19 > cap: leaves cannot delegate anywhere.
    const mech::CappedTarget capped(5);
    for (g::Vertex v = 0; v < 20; ++v) {
        EXPECT_EQ(*capped.vote_directly_probability(inst, v), 1.0);
        EXPECT_EQ(capped.act(inst, v, rng).kind, mech::ActionKind::Vote);
    }
    EXPECT_THROW(mech::CappedTarget(0), ld::support::ContractViolation);
}

TEST(RecycleLemma7, ConstructionMatchesSimulatedDelegation) {
    // The recycle graph built from (instance, Algorithm 1) must predict the
    // expected number of correct votes of the *simulated* delegation
    // process (both model: delegators copy a uniformly random approved
    // voter's outcome).  On K_n the approval sets coincide exactly.
    Rng rng(5);
    const model::Instance inst(g::make_complete(80),
                               model::uniform_competencies(rng, 80, 0.2, 0.8), 0.1);
    const auto m = mech::CompleteGraphThreshold::with_sqrt_threshold();
    const auto recycle = ld::recycle::RecycleGraph::from_instance(inst, m);

    ld::stats::RunningStats simulated;
    for (int rep = 0; rep < 600; ++rep) {
        const auto out = ld::delegation::realize(m, inst, rng);
        simulated.add(
            ld::election::conditional_vote_mean(out, inst.competencies()));
    }
    EXPECT_NEAR(recycle.total_expectation(), simulated.mean(),
                4.0 * simulated.standard_error() + 0.3);
}

TEST(GainShape, LargerAlphaMeansFewerButBetterDelegations) {
    // Raising alpha shrinks approval sets (fewer delegations) but each
    // delegation jumps further in competency.  Both effects must keep the
    // invariant: delegation only flows to voters at least alpha better.
    Rng rng(6);
    for (double alpha : {0.02, 0.1, 0.25}) {
        const model::Instance inst(g::make_complete(60),
                                   model::uniform_competencies(rng, 60, 0.1, 0.9),
                                   alpha);
        const mech::CompleteGraphThreshold m =
            mech::CompleteGraphThreshold::with_log_threshold();
        const auto out = ld::delegation::realize(m, inst, rng);
        for (g::Vertex v = 0; v < 60; ++v) {
            const auto& a = out.action(v);
            if (a.kind == mech::ActionKind::Delegate) {
                EXPECT_GE(inst.competency(a.targets[0]) - inst.competency(v), alpha);
            }
        }
        // Longest chain bounded by range/alpha.
        EXPECT_LE(out.stats().longest_path,
                  static_cast<std::size_t>(std::ceil(0.8 / alpha)));
    }
}

TEST(GainShape, DelegationNeverHelpsWhenEveryoneIsEqual) {
    // With identical competencies nobody is approved (alpha > 0), so every
    // mechanism degenerates to direct voting.
    Rng rng(7);
    const model::Instance inst(g::make_complete(30),
                               model::CompetencyVector(std::vector<double>(30, 0.6)),
                               0.05);
    const mech::CompleteGraphThreshold m =
        mech::CompleteGraphThreshold::with_log_threshold();
    ld::election::EvalOptions opts;
    opts.replications = 10;
    const auto report = ld::election::estimate_gain(m, inst, rng, opts);
    EXPECT_EQ(report.mean_delegators, 0.0);
    EXPECT_NEAR(report.gain, 0.0, 1e-12);
}

}  // namespace
