// Differential testing: the Monte-Carlo estimator vs the enumerative
// ground truth across a randomized grid of small instances — a
// property-style safety net for the whole pipeline (mechanism law →
// delegation realization → exact tally → aggregation).

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/election/brute_force.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/model/competency_gen.hpp"

namespace {

namespace election = ld::election;
namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::rng::Rng;

class DifferentialGrid : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialGrid, EstimatorMatchesEnumeration) {
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    // Random small instance: 5–9 voters, random topology flavour.
    const std::size_t n = 5 + rng.next_below(5);
    g::Graph graph = g::Graph::empty(0);
    switch (rng.next_below(3)) {
        case 0: graph = g::make_complete(n); break;
        case 1: graph = g::make_erdos_renyi_gnp(rng, n, 0.6); break;
        default: graph = g::make_star(n); break;
    }
    const double alpha = 0.02 + 0.1 * rng.next_double();
    const auto p = model::uniform_competencies(rng, n, 0.1, 0.9);
    const model::Instance instance(std::move(graph), p, alpha);

    const mech::ApprovalSizeThreshold mechanism(1 + rng.next_below(2));

    const auto laws = election::uniform_approved_laws(mechanism, instance);
    const double exact = election::exact_mechanism_probability(instance, laws);

    election::EvalOptions opts;
    opts.replications = 2500;
    const auto estimate =
        election::estimate_correct_probability(mechanism, instance, rng, opts);

    EXPECT_NEAR(estimate.value, exact, 5.0 * estimate.std_error + 2e-3)
        << "seed " << seed << " n " << n;

    // The gain is also consistent against the exact P^D.
    const double exact_gain = exact - election::exact_direct_probability(instance);
    Rng rng2(seed + 1);
    const auto gain_report =
        election::estimate_gain(mechanism, instance, rng2, opts);
    EXPECT_NEAR(gain_report.gain, exact_gain, 5.0 * gain_report.pm.std_error + 2e-3)
        << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialGrid,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
