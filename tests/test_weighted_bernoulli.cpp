// Tests for the weighted Bernoulli-sum DP — the law of the delegated-
// voting tally.

#include <gtest/gtest.h>

#include <vector>

#include "prob/poisson_binomial.hpp"
#include "prob/weighted_bernoulli_sum.hpp"
#include "support/expect.hpp"

namespace {

using ld::prob::PoissonBinomial;
using ld::prob::WeightedBernoulliSum;
using ld::support::ContractViolation;

TEST(WeightedSum, UnitWeightsMatchPoissonBinomial) {
    const std::vector<double> probs{0.2, 0.5, 0.8, 0.35, 0.6};
    const std::vector<std::uint64_t> weights(probs.size(), 1);
    const WeightedBernoulliSum ws(weights, probs);
    const PoissonBinomial pb(probs);
    EXPECT_EQ(ws.total_weight(), probs.size());
    for (std::size_t s = 0; s <= probs.size(); ++s) {
        EXPECT_NEAR(ws.pmf(s), pb.pmf(s), 1e-12) << "s=" << s;
    }
    EXPECT_NEAR(ws.majority_probability(), pb.majority_probability(), 1e-12);
}

TEST(WeightedSum, SingleHeavyVoterIsBernoulli) {
    // One sink holding all 9 votes: the "dictator" of Figure 1.
    const WeightedBernoulliSum ws(std::vector<std::uint64_t>{9},
                                  std::vector<double>{0.75});
    EXPECT_NEAR(ws.pmf(0), 0.25, 1e-15);
    EXPECT_NEAR(ws.pmf(9), 0.75, 1e-15);
    EXPECT_NEAR(ws.majority_probability(), 0.75, 1e-15);
}

TEST(WeightedSum, TwoSinksHandWorkedCase) {
    // Weights 3 (p=0.9) and 2 (p=0.2); W = 5, majority needs > 2.5.
    // Correct iff the weight-3 sink votes correctly: 0.9.
    const WeightedBernoulliSum ws(std::vector<std::uint64_t>{3, 2},
                                  std::vector<double>{0.9, 0.2});
    EXPECT_NEAR(ws.pmf(0), 0.1 * 0.8, 1e-15);
    EXPECT_NEAR(ws.pmf(2), 0.1 * 0.2, 1e-15);
    EXPECT_NEAR(ws.pmf(3), 0.9 * 0.8, 1e-15);
    EXPECT_NEAR(ws.pmf(5), 0.9 * 0.2, 1e-15);
    EXPECT_NEAR(ws.majority_probability(), 0.9, 1e-15);
}

TEST(WeightedSum, ZeroWeightEntriesAreIgnored) {
    const WeightedBernoulliSum ws(std::vector<std::uint64_t>{0, 2, 0},
                                  std::vector<double>{0.99, 0.5, 0.01});
    EXPECT_EQ(ws.total_weight(), 2u);
    EXPECT_NEAR(ws.pmf(0), 0.5, 1e-15);
    EXPECT_NEAR(ws.pmf(2), 0.5, 1e-15);
    EXPECT_NEAR(ws.pmf(1), 0.0, 1e-15);
}

TEST(WeightedSum, MeanAndVariance) {
    const std::vector<std::uint64_t> weights{1, 3, 5};
    const std::vector<double> probs{0.5, 0.4, 0.9};
    const WeightedBernoulliSum ws(weights, probs);
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        mean += static_cast<double>(weights[i]) * probs[i];
        var += static_cast<double>(weights[i] * weights[i]) * probs[i] * (1 - probs[i]);
    }
    EXPECT_NEAR(ws.mean(), mean, 1e-12);
    EXPECT_NEAR(ws.variance(), var, 1e-12);

    // Moments from the pmf agree.
    double m1 = 0.0, m2 = 0.0;
    for (std::uint64_t s = 0; s <= ws.total_weight(); ++s) {
        m1 += static_cast<double>(s) * ws.pmf(s);
        m2 += static_cast<double>(s) * static_cast<double>(s) * ws.pmf(s);
    }
    EXPECT_NEAR(m1, mean, 1e-12);
    EXPECT_NEAR(m2 - m1 * m1, var, 1e-12);
}

TEST(WeightedSum, PmfSumsToOne) {
    const WeightedBernoulliSum ws(std::vector<std::uint64_t>{2, 3, 4, 1},
                                  std::vector<double>{0.3, 0.6, 0.2, 0.95});
    double total = 0.0;
    for (std::uint64_t s = 0; s <= ws.total_weight(); ++s) total += ws.pmf(s);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(WeightedSum, TiesLose) {
    // Two sinks of equal weight 2, both fair: majority needs > 2 of 4.
    // P[S = 4] = 1/4 is the only winning outcome.
    const WeightedBernoulliSum ws(std::vector<std::uint64_t>{2, 2},
                                  std::vector<double>{0.5, 0.5});
    EXPECT_NEAR(ws.majority_probability(), 0.25, 1e-15);
}

TEST(WeightedSum, InputValidation) {
    EXPECT_THROW(WeightedBernoulliSum(std::vector<std::uint64_t>{1},
                                      std::vector<double>{0.5, 0.5}),
                 ContractViolation);
    EXPECT_THROW(WeightedBernoulliSum(std::vector<std::uint64_t>{1},
                                      std::vector<double>{1.5}),
                 ContractViolation);
}

TEST(WeightedSum, EmptyProfile) {
    const WeightedBernoulliSum ws(std::vector<std::uint64_t>{}, std::vector<double>{});
    EXPECT_EQ(ws.total_weight(), 0u);
    EXPECT_NEAR(ws.majority_probability(), 0.0, 1e-15);
}

}  // namespace
