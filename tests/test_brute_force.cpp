// Tests for the enumerative (exact) evaluator — ground truth for the
// Monte-Carlo estimators.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/election/brute_force.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/direct.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace {

namespace election = ld::election;
namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::rng::Rng;
using ld::support::ContractViolation;

model::Instance small_instance(std::uint64_t seed, std::size_t n = 8) {
    Rng rng(seed);
    return model::Instance(g::make_complete(n),
                           model::uniform_competencies(rng, n, 0.2, 0.8), 0.07);
}

TEST(BruteForce, DirectVotingMatchesPoissonBinomial) {
    const auto inst = small_instance(1);
    const mech::DirectVoting direct;
    const auto laws = election::uniform_approved_laws(direct, inst);
    const double exact = election::exact_mechanism_probability(inst, laws);
    EXPECT_NEAR(exact, election::exact_direct_probability(inst), 1e-12);
}

TEST(BruteForce, DeterministicDictatorHandCase) {
    // 3 voters on a path 0-1-2 with ascending competency and BestNeighbour:
    // 0 -> 1 -> 2, so P^M = p_2 = 0.9 exactly.
    const model::Instance inst(g::make_path(3),
                               model::CompetencyVector({0.3, 0.6, 0.9}), 0.05);
    const mech::BestNeighbour best;
    Rng rng(2);
    const auto laws = election::estimate_laws(best, inst, rng, 200);
    const double exact = election::exact_mechanism_probability(inst, laws);
    EXPECT_NEAR(exact, 0.9, 1e-12);
}

TEST(BruteForce, UniformLawsMatchEmpiricalLaws) {
    const auto inst = small_instance(3);
    const mech::ApprovalSizeThreshold m(2);
    Rng rng(4);
    const auto closed = election::uniform_approved_laws(m, inst);
    const auto empirical = election::estimate_laws(m, inst, rng, 30000);
    ASSERT_EQ(closed.size(), empirical.size());
    for (std::size_t v = 0; v < closed.size(); ++v) {
        EXPECT_NEAR(closed[v].vote_probability, empirical[v].vote_probability, 0.02);
        // Compare total delegation mass per target.
        for (const auto& [target, prob] : closed[v].delegate_probabilities) {
            double emp = 0.0;
            for (const auto& [t2, p2] : empirical[v].delegate_probabilities) {
                if (t2 == target) emp = p2;
            }
            EXPECT_NEAR(prob, emp, 0.02) << "voter " << v << " target " << target;
        }
    }
}

TEST(BruteForce, MonteCarloEstimatorIsUnbiased) {
    const auto inst = small_instance(5, 7);
    const mech::ApprovalSizeThreshold m(1);
    const auto laws = election::uniform_approved_laws(m, inst);
    const double exact = election::exact_mechanism_probability(inst, laws);

    Rng rng(6);
    election::EvalOptions opts;
    opts.replications = 4000;
    const auto estimate = election::estimate_correct_probability(m, inst, rng, opts);
    EXPECT_NEAR(estimate.value, exact, 4.0 * estimate.std_error + 1e-4);
}

TEST(BruteForce, GainEstimatorAgreesOnSmallInstances) {
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        const auto inst = small_instance(seed, 7);
        const mech::ApprovalSizeThreshold m(2);
        const auto laws = election::uniform_approved_laws(m, inst);
        const double exact_pm = election::exact_mechanism_probability(inst, laws);
        const double exact_gain = exact_pm - election::exact_direct_probability(inst);

        Rng rng(seed * 1000);
        election::EvalOptions opts;
        opts.replications = 3000;
        const auto report = election::estimate_gain(m, inst, rng, opts);
        EXPECT_NEAR(report.gain, exact_gain, 5.0 * report.pm.std_error + 1e-4)
            << "seed " << seed;
    }
}

TEST(BruteForce, EnumerationGuardTriggers) {
    const auto inst = small_instance(8, 12);
    const mech::ApprovalSizeThreshold m(1);
    const auto laws = election::uniform_approved_laws(m, inst);
    EXPECT_THROW(election::exact_mechanism_probability(inst, laws, 100),
                 ContractViolation);
}

TEST(BruteForce, LawCountMustMatchVoterCount) {
    const auto inst = small_instance(9, 5);
    std::vector<election::VoterLaw> laws(4);
    EXPECT_THROW(election::exact_mechanism_probability(inst, laws), ContractViolation);
}

}  // namespace
