// Tests for the rank-proportional mechanism — the uniform↔argmax
// interpolation knob.

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/mech/rank_proportional.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace {

namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::rng::Rng;

model::Instance five_voter_chain() {
    // Voter 0 (p = 0.2) approves exactly {1, 2, 3} with p = 0.4/0.6/0.8.
    return model::Instance(g::make_complete(5),
                           model::CompetencyVector({0.2, 0.4, 0.6, 0.8, 0.1}), 0.05);
}

TEST(RankProportional, ValidationAndNaming) {
    EXPECT_THROW(mech::RankProportional(1, -0.5), ld::support::ContractViolation);
    const mech::RankProportional m(2, 1.5);
    EXPECT_NE(m.name().find("RankProportional"), std::string::npos);
    EXPECT_DOUBLE_EQ(m.sharpness(), 1.5);
}

TEST(RankProportional, SharpnessZeroIsUniform) {
    Rng rng(1);
    const auto inst = five_voter_chain();
    const mech::RankProportional m(1, 0.0);
    std::map<g::Vertex, int> counts;
    const int trials = 30000;
    for (int i = 0; i < trials; ++i) {
        const auto a = m.act(inst, 0, rng);
        ASSERT_EQ(a.kind, mech::ActionKind::Delegate);
        ++counts[a.targets[0]];
    }
    ASSERT_EQ(counts.size(), 3u);
    for (g::Vertex t : {1u, 2u, 3u}) EXPECT_NEAR(counts[t], trials / 3, 500);
}

TEST(RankProportional, SharpnessTiltsTowardsTheBest) {
    Rng rng(2);
    const auto inst = five_voter_chain();
    const mech::RankProportional m(1, 2.0);
    // ranks 1,2,3 → weights 1,4,9 → best (voter 3) gets 9/14.
    std::map<g::Vertex, int> counts;
    const int trials = 30000;
    for (int i = 0; i < trials; ++i) {
        ++counts[m.act(inst, 0, rng).targets[0]];
    }
    EXPECT_NEAR(static_cast<double>(counts[3]) / trials, 9.0 / 14.0, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[1]) / trials, 1.0 / 14.0, 0.01);
}

TEST(RankProportional, HighSharpnessApproachesBestNeighbour) {
    Rng rng(3);
    const auto inst = five_voter_chain();
    const mech::RankProportional m(1, 12.0);
    int best_picks = 0;
    const int trials = 5000;
    for (int i = 0; i < trials; ++i) {
        if (m.act(inst, 0, rng).targets[0] == 3u) ++best_picks;
    }
    EXPECT_GT(static_cast<double>(best_picks) / trials, 0.97);
}

TEST(RankProportional, RespectsApprovalAndThreshold) {
    Rng rng(4);
    const model::Instance inst(g::make_complete(30),
                               model::uniform_competencies(rng, 30, 0.2, 0.8), 0.05);
    const mech::RankProportional m(3, 1.0);
    const auto counts = inst.approved_neighbour_counts();
    for (g::Vertex v = 0; v < 30; ++v) {
        const auto a = m.act(inst, v, rng);
        if (counts[v] >= 3) {
            ASSERT_EQ(a.kind, mech::ActionKind::Delegate);
            EXPECT_GE(inst.competency(a.targets[0]), inst.competency(v) + 0.05);
            EXPECT_EQ(*m.vote_directly_probability(inst, v), 0.0);
        } else {
            EXPECT_EQ(a.kind, mech::ActionKind::Vote);
            EXPECT_EQ(*m.vote_directly_probability(inst, v), 1.0);
        }
    }
}

TEST(RankProportional, SharperTiltConcentratesMoreWeight) {
    Rng rng(5);
    const model::Instance inst(g::make_complete(200),
                               model::pc_competencies(rng, 200, 0.02, 0.25), 0.05);
    ld::stats::RunningStats flat_max, sharp_max;
    const mech::RankProportional flat(1, 0.0);
    const mech::RankProportional sharp(1, 8.0);
    for (int rep = 0; rep < 30; ++rep) {
        flat_max.add(static_cast<double>(
            ld::delegation::realize(flat, inst, rng).stats().max_weight));
        sharp_max.add(static_cast<double>(
            ld::delegation::realize(sharp, inst, rng).stats().max_weight));
    }
    EXPECT_GT(sharp_max.mean(), flat_max.mean());
}

}  // namespace
