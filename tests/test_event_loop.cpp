// Tests for the epoll event loop and the serve layer's event-driven
// front: loop task posting and fd dispatch, tick callbacks, the
// self-removal hazard (a callback that unregisters its own fd), request
// frames fragmented across many epoll wakeups, hundreds of idle
// connections held open through a graceful drain, the half-close
// (shutdown(SHUT_WR)) vs full-close taxonomy, and the --ready-file /
// --ready-fd readiness signals.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ld/serve/event_front.hpp"
#include "ld/serve/server.hpp"
#include "support/event_loop.hpp"
#include "support/json.hpp"
#include "support/net.hpp"

namespace {

namespace serve = ld::serve;
namespace net = ld::support::net;
namespace json = ld::support::json;

std::string socket_path(const std::string& tag) {
    return ::testing::TempDir() + "/ld_el_" + tag + ".sock";
}

// EventLoop ----------------------------------------------------------------

TEST(EventLoop, PostedTasksRunOnTheLoopThreadInOrder) {
    net::EventLoop loop;
    std::vector<int> order;
    std::atomic<bool> on_loop{false};
    std::thread runner([&] { loop.run(); });
    loop.post([&] {
        order.push_back(1);
        on_loop.store(loop.on_loop_thread());
    });
    loop.post([&] { order.push_back(2); });
    loop.post([&] { loop.stop(); });
    runner.join();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_TRUE(on_loop.load());
    EXPECT_FALSE(loop.on_loop_thread());
}

TEST(EventLoop, FdCallbackFiresOnReadableAndStopsAfterRemove) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    net::EventLoop loop;
    std::atomic<int> fires{0};
    loop.add_fd(fds[0], net::kEventRead, [&](std::uint32_t events) {
        EXPECT_TRUE(events & net::kEventRead);
        char buffer[8];
        [[maybe_unused]] const auto rc = ::read(fds[0], buffer, sizeof buffer);
        if (fires.fetch_add(1) + 1 == 2) loop.stop();
    });
    EXPECT_TRUE(loop.watches(fds[0]));

    std::thread runner([&] { loop.run(); });
    ASSERT_EQ(::write(fds[1], "a", 1), 1);
    while (fires.load() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(::write(fds[1], "b", 1), 1);
    runner.join();
    EXPECT_EQ(fires.load(), 2);

    loop.remove_fd(fds[0]);
    EXPECT_FALSE(loop.watches(fds[0]));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(EventLoop, CallbackMayRemoveItsOwnRegistration) {
    // A connection closing itself runs exactly this shape: the callback
    // erases the registration that owns the std::function currently
    // executing.  The loop must dispatch through a copy.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    net::EventLoop loop;
    std::atomic<int> fires{0};
    // The large capture makes a use-after-free visibly corrupt under
    // ASan/valgrind rather than silently reading stale bytes.
    const std::string canary(256, 'x');
    loop.add_fd(fds[0], net::kEventRead, [&, canary](std::uint32_t) {
        loop.remove_fd(fds[0]);
        EXPECT_EQ(canary.size(), 256u);
        EXPECT_EQ(canary[0], 'x');
        fires.fetch_add(1);
        loop.stop();
    });
    std::thread runner([&] { loop.run(); });
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    runner.join();
    EXPECT_EQ(fires.load(), 1);
    EXPECT_FALSE(loop.watches(fds[0]));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(EventLoop, TickFiresRepeatedly) {
    net::EventLoop loop;
    std::atomic<int> ticks{0};
    loop.set_tick(std::chrono::milliseconds(5), [&] {
        if (ticks.fetch_add(1) + 1 >= 3) loop.stop();
    });
    std::thread runner([&] { loop.run(); });
    runner.join();
    EXPECT_GE(ticks.load(), 3);
}

TEST(EventLoop, FdCountTracksRegistrations) {
    net::EventLoop loop;
    const std::size_t base = loop.fd_count();  // the internal wake fd
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    loop.add_fd(fds[0], net::kEventRead, [](std::uint32_t) {});
    EXPECT_EQ(loop.fd_count(), base + 1);
    loop.remove_fd(fds[0]);
    EXPECT_EQ(loop.fd_count(), base);
    ::close(fds[0]);
    ::close(fds[1]);
}

// Readiness signaling ------------------------------------------------------

TEST(ServeReadiness, ReadyFileReceivesTheReadyLine) {
    const std::string path = ::testing::TempDir() + "/ld_el_ready.txt";
    ::unlink(path.c_str());
    const int keep = serve::signal_ready(path, -1);
    ASSERT_GE(keep, 0);
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "ready");
    ::close(keep);
    ::unlink(path.c_str());
}

TEST(ServeReadiness, ReadyFdReceivesTheReadyLineAndEof) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    EXPECT_EQ(serve::signal_ready("", fds[1]), -1);
    char buffer[16] = {};
    ASSERT_EQ(::read(fds[0], buffer, sizeof buffer), 6);
    EXPECT_STREQ(buffer, "ready\n");
    // signal_ready closed the write end: the reader sees EOF.
    EXPECT_EQ(::read(fds[0], buffer, sizeof buffer), 0);
    ::close(fds[0]);
}

// EventFront through a live Server ----------------------------------------

/// Every request here is cheap control plane, so tests stay fast.
std::string health_request(int id) {
    return std::string("{\"id\": ") + std::to_string(id) +
           ", \"method\": \"health\"}";
}

TEST(ServeEventLoop, FragmentedFramesAcrossWakeupsParseCorrectly) {
    serve::ServerConfig config;
    config.unix_socket = socket_path("frag");
    serve::Server server(std::move(config));
    server.start();

    net::Socket client = net::connect_unix(server.config().unix_socket);
    net::LineReader reader(client);
    std::string line;
    ASSERT_TRUE(reader.read_line(line));  // handshake

    // One request dribbled out byte-clusters at a time: each write lands
    // in its own epoll wakeup, so the front must carry the partial line
    // across read passes.
    const std::string request = health_request(1) + "\n";
    for (std::size_t i = 0; i < request.size(); i += 3) {
        const std::string chunk = request.substr(i, 3);
        ASSERT_EQ(::send(client.fd(), chunk.data(), chunk.size(), 0),
                  static_cast<ssize_t>(chunk.size()));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(reader.read_line(line));
    const json::Value first = json::parse(line);
    EXPECT_TRUE(first.at("ok").as_bool());
    EXPECT_EQ(first.at("id").as_number(), 1.0);

    // Two complete requests plus a partial third in ONE write: the read
    // pass must dispatch both and hold the tail until its newline lands.
    const std::string burst =
        health_request(2) + "\n" + health_request(3) + "\n" + "{\"id\": 4, ";
    ASSERT_EQ(::send(client.fd(), burst.data(), burst.size(), 0),
              static_cast<ssize_t>(burst.size()));
    ASSERT_TRUE(reader.read_line(line));
    EXPECT_EQ(json::parse(line).at("id").as_number(), 2.0);
    ASSERT_TRUE(reader.read_line(line));
    EXPECT_EQ(json::parse(line).at("id").as_number(), 3.0);

    const std::string tail = "\"method\": \"health\"}\n";
    ASSERT_EQ(::send(client.fd(), tail.data(), tail.size(), 0),
              static_cast<ssize_t>(tail.size()));
    ASSERT_TRUE(reader.read_line(line));
    EXPECT_EQ(json::parse(line).at("id").as_number(), 4.0);

    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
}

TEST(ServeEventLoop, HalfClosedPeerStillReceivesItsResponses) {
    serve::ServerConfig config;
    config.unix_socket = socket_path("halfclose");
    serve::Server server(std::move(config));
    server.start();

    net::Socket client = net::connect_unix(server.config().unix_socket);
    net::LineReader reader(client);
    std::string line;
    ASSERT_TRUE(reader.read_line(line));  // handshake

    const std::string request = health_request(1) + "\n";
    ASSERT_EQ(::send(client.fd(), request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    // Half-close: we are done sending, but the response pipe stays open.
    ASSERT_EQ(::shutdown(client.fd(), SHUT_WR), 0);

    ASSERT_TRUE(reader.read_line(line));
    const json::Value response = json::parse(line);
    EXPECT_TRUE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("id").as_number(), 1.0);
    // After the last response the server closes its side: clean EOF,
    // not a hang.
    EXPECT_FALSE(reader.read_line(line));

    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
}

/// Connection count as the server reports it (health.result.connections).
std::size_t reported_connections(net::Socket& probe, net::LineReader& reader,
                                 int* next_id) {
    const std::string request = health_request((*next_id)++) + "\n";
    EXPECT_EQ(::send(probe.fd(), request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string line;
    EXPECT_TRUE(reader.read_line(line));
    return static_cast<std::size_t>(
        json::parse(line).at("result").at("connections").as_number());
}

TEST(ServeEventLoop, FullCloseReapsConnections) {
    serve::ServerConfig config;
    config.unix_socket = socket_path("reap");
    serve::Server server(std::move(config));
    server.start();

    net::Socket probe = net::connect_unix(server.config().unix_socket);
    net::LineReader probe_reader(probe);
    std::string line;
    ASSERT_TRUE(probe_reader.read_line(line));
    int next_id = 1;

    {
        std::vector<net::Socket> extras;
        for (int i = 0; i < 8; ++i) {
            extras.push_back(net::connect_unix(server.config().unix_socket));
        }
        // Level-triggered epoll delivers the accepts promptly; poll the
        // health gauge rather than racing it.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (reported_connections(probe, probe_reader, &next_id) < 9) {
            ASSERT_LT(std::chrono::steady_clock::now(), deadline);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }  // all 8 extras close: full hangup per connection

    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (reported_connections(probe, probe_reader, &next_id) > 1) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(reported_connections(probe, probe_reader, &next_id), 1u);

    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
}

TEST(ServeEventLoop, HundredsOfIdleConnectionsSurviveUntilDrain) {
    // The point of the epoll front: an idle connection costs one fd, so
    // holding hundreds open is cheap and a drain must sweep them all.
    // Size the flock to the fd budget (soft RLIMIT_NOFILE, raised toward
    // 4096 when the hard limit allows).
    rlimit limit{};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
    if (limit.rlim_cur < 4096 &&
        (limit.rlim_max == RLIM_INFINITY || limit.rlim_max >= 4096)) {
        rlimit raised = limit;
        raised.rlim_cur = 4096;
        if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
            limit.rlim_cur = raised.rlim_cur;
        }
    }
    // Client fds + server fds both come out of this process's budget;
    // keep a wide margin for gtest/runtime descriptors.
    const std::size_t flock_size =
        std::min<std::size_t>(1000, (limit.rlim_cur - 64) / 2);
    ASSERT_GE(flock_size, 100u) << "fd limit too low to exercise the flock";

    serve::ServerConfig config;
    config.unix_socket = socket_path("flock");
    serve::Server server(std::move(config));
    server.start();

    std::vector<net::Socket> flock;
    flock.reserve(flock_size);
    for (std::size_t i = 0; i < flock_size; ++i) {
        flock.push_back(net::connect_unix(server.config().unix_socket));
    }

    // The flock is completely idle (handshakes unread).  A separate
    // active client must still get service instantly.
    net::Socket active = net::connect_unix(server.config().unix_socket);
    net::LineReader reader(active);
    std::string line;
    ASSERT_TRUE(reader.read_line(line));
    int next_id = 1;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (reported_connections(active, reader, &next_id) < flock_size + 1) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Drain with the whole flock still connected: every socket must see
    // EOF (handshake first — the flock never read it).
    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
    for (net::Socket& member : flock) {
        net::LineReader member_reader(member);
        while (member_reader.read_line(line)) {
        }  // drain the handshake, then EOF — must not hang
    }
}

}  // namespace
