// Tests for the rational-delegation game: profile validation, best-response
// dynamics convergence, equilibrium checking, and the selfish-concentration
// phenomenon.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/game/delegation_game.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace {

namespace g = ld::graph;
namespace game = ld::game;
namespace model = ld::model;
using ld::rng::Rng;
using ld::support::ContractViolation;

model::Instance ascending_path() {
    // 0 — 1 — 2 — 3 with ascending competency; α = 0.05.
    return model::Instance(g::make_path(4),
                           model::CompetencyVector({0.3, 0.5, 0.7, 0.9}), 0.05);
}

TEST(Profile, ValidationCatchesIllegalStrategies) {
    const auto inst = ascending_path();
    // Delegating to a non-neighbour.
    EXPECT_THROW(game::realize_profile(inst, {2, 1, 2, 3}), ContractViolation);
    // Delegating to a non-approved (less competent) neighbour.
    EXPECT_THROW(game::realize_profile(inst, {0, 0, 2, 3}), ContractViolation);
    // Wrong length.
    EXPECT_THROW(game::realize_profile(inst, {0, 1, 2}), ContractViolation);
    // Legal: 0→1, 1→2, 2 votes, 3 votes.
    const auto out = game::realize_profile(inst, {1, 2, 2, 3});
    EXPECT_EQ(out.weights()[2], 3u);
}

TEST(Game, SelfishDynamicsOnPathConverge) {
    const auto inst = ascending_path();
    Rng rng(1);
    game::GameOptions opts;
    opts.utility = game::Utility::Selfish;
    const auto result = game::best_response_dynamics(inst, rng, opts);
    EXPECT_TRUE(result.converged);
    // Selfish chains chase the best reachable voter: 0→1→2→3.
    EXPECT_EQ(result.profile[0], 1u);
    EXPECT_EQ(result.profile[1], 2u);
    EXPECT_EQ(result.profile[2], 3u);
    EXPECT_EQ(result.profile[3], 3u);
    EXPECT_EQ(result.stats.max_weight, 4u);
    EXPECT_NEAR(result.group_correct_probability, 0.9, 1e-12);
    EXPECT_TRUE(game::is_equilibrium(inst, result.profile, game::Utility::Selfish));
}

TEST(Game, SelfishEquilibriumOnCompleteGraphIsADictatorship) {
    Rng rng(2);
    const model::Instance inst(g::make_complete(40),
                               model::uniform_competencies(rng, 40, 0.2, 0.8), 0.05);
    game::GameOptions opts;
    opts.utility = game::Utility::Selfish;
    const auto result = game::best_response_dynamics(inst, rng, opts);
    EXPECT_TRUE(result.converged);
    // Everyone who approves anyone chases the top voter; only voters
    // within alpha of the maximum (empty approval sets) remain sinks.
    EXPECT_LE(result.stats.voting_sink_count, 5u);
    EXPECT_GE(result.stats.max_weight, 35u);
    // Group probability = the top voter's competency.
    double top = 0.0;
    for (g::Vertex v = 0; v < 40; ++v) top = std::max(top, inst.competency(v));
    EXPECT_NEAR(result.group_correct_probability, top, 1e-12);
    EXPECT_TRUE(game::is_equilibrium(inst, result.profile, game::Utility::Selfish));
}

TEST(Game, CooperativeDynamicsNeverEndBelowDirectVoting) {
    // Starting from all-vote, cooperative best responses only accept
    // strict improvements of the group probability — so the equilibrium's
    // gain is non-negative by construction.
    Rng rng(3);
    const model::Instance inst(g::make_complete(25),
                               model::pc_competencies(rng, 25, 0.03, 0.2), 0.05);
    game::GameOptions opts;
    opts.utility = game::Utility::Cooperative;
    const auto result = game::best_response_dynamics(inst, rng, opts);
    EXPECT_TRUE(result.converged);
    EXPECT_GE(result.gain_vs_direct, -1e-12);
    EXPECT_TRUE(
        game::is_equilibrium(inst, result.profile, game::Utility::Cooperative));
}

TEST(Game, CooperativeBeatsSelfishOnTheStar) {
    // The star is where selfishness hurts: everyone rationally delegates
    // to the competent centre (their personal best), and the group loses
    // the jury effect; cooperative play delegates less.
    Rng rng(4);
    const model::Instance inst(g::make_star(41),
                               model::star_competencies(41, 0.75, 0.55), 0.05);
    game::GameOptions selfish;
    selfish.utility = game::Utility::Selfish;
    game::GameOptions coop;
    coop.utility = game::Utility::Cooperative;
    const auto s = game::best_response_dynamics(inst, rng, selfish);
    const auto c = game::best_response_dynamics(inst, rng, coop);
    EXPECT_TRUE(s.converged);
    EXPECT_TRUE(c.converged);
    EXPECT_NEAR(s.group_correct_probability, 0.75, 1e-12);  // dictator centre
    EXPECT_GT(c.group_correct_probability, s.group_correct_probability);
}

TEST(Game, IsEquilibriumDetectsProfitableDeviation) {
    const auto inst = ascending_path();
    // Voter 2 voting directly is not a selfish equilibrium: it can reach
    // 0.9 by delegating to 3.
    EXPECT_FALSE(game::is_equilibrium(inst, {1, 2, 2, 3}, game::Utility::Selfish));
}

}  // namespace
