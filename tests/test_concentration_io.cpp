// Tests for concentration metrics, instance serialization, the
// unrestricted-abstention wrapper (footnote 4), and the adversarial
// instance search.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "ld/delegation/concentration.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/adversarial.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/abstaining.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/unrestricted_abstaining.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/model/instance_io.hpp"
#include "support/expect.hpp"

namespace {

namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::delegation::concentration_metrics;
using ld::delegation::DelegationOutcome;
using ld::mech::Action;
using ld::rng::Rng;

TEST(Concentration, EqualSinksAreUnconcentrated) {
    std::vector<Action> actions(10, Action::vote());
    const DelegationOutcome out(std::move(actions));
    const auto m = concentration_metrics(out);
    EXPECT_NEAR(m.gini, 0.0, 1e-12);
    EXPECT_NEAR(m.hhi, 0.1, 1e-12);
    EXPECT_NEAR(m.effective_sinks, 10.0, 1e-9);
    EXPECT_NEAR(m.top1_share, 0.1, 1e-12);
    EXPECT_EQ(m.nakamoto, 6u);  // need 6 of 10 for a strict majority
}

TEST(Concentration, DictatorIsMaximallyConcentrated) {
    std::vector<Action> actions(9, Action::delegate_to(0));
    actions[0] = Action::vote();
    const DelegationOutcome out(std::move(actions));
    const auto m = concentration_metrics(out);
    EXPECT_NEAR(m.hhi, 1.0, 1e-12);
    EXPECT_NEAR(m.effective_sinks, 1.0, 1e-12);
    EXPECT_NEAR(m.top1_share, 1.0, 1e-12);
    EXPECT_EQ(m.nakamoto, 1u);
    EXPECT_NEAR(m.gini, 0.0, 1e-12);  // only one sink — equality among sinks
}

TEST(Concentration, HandComputedTwoSinkCase) {
    // Sinks with weights 3 and 1: shares 0.75/0.25.
    std::vector<Action> actions{Action::vote(), Action::delegate_to(0),
                                Action::delegate_to(0), Action::vote()};
    const DelegationOutcome out(std::move(actions));
    const auto m = concentration_metrics(out);
    EXPECT_NEAR(m.hhi, 0.75 * 0.75 + 0.25 * 0.25, 1e-12);
    EXPECT_NEAR(m.top1_share, 0.75, 1e-12);
    EXPECT_EQ(m.nakamoto, 1u);
    // Gini for {1, 3}: mean 2; G = |1-3|·... = (2·1−2−1)·1 + (2·2−2−1)·3 over 2·4
    EXPECT_NEAR(m.gini, 0.25, 1e-12);
}

TEST(Concentration, NoVotesCastGivesZeros) {
    std::vector<Action> actions{Action::abstain(), Action::delegate_to(0)};
    const DelegationOutcome out(std::move(actions));
    const auto m = concentration_metrics(out);
    EXPECT_EQ(m.nakamoto, 0u);
    EXPECT_EQ(m.effective_sinks, 0.0);
}

TEST(Concentration, StarVersusCompleteOrdering) {
    Rng rng(1);
    const auto star_inst = ld::experiments::star_instance(101, 0.75, 0.55, 0.05);
    const mech::BestNeighbour best;
    const auto star_m = concentration_metrics(
        ld::delegation::realize(best, star_inst, rng));

    const auto complete_inst =
        ld::experiments::complete_pc_instance(rng, 101, 0.05, 0.02, 0.25);
    const mech::ApprovalSizeThreshold threshold(1);
    const auto complete_m = concentration_metrics(
        ld::delegation::realize(threshold, complete_inst, rng));

    EXPECT_GT(star_m.top1_share, complete_m.top1_share);
    EXPECT_LT(star_m.effective_sinks, complete_m.effective_sinks);
    EXPECT_LT(star_m.nakamoto, complete_m.nakamoto + 1);
}

TEST(InstanceIo, RoundTripsExactly) {
    Rng rng(2);
    const auto original = ld::experiments::complete_pc_instance(rng, 30, 0.07, 0.05, 0.2);
    std::stringstream ss;
    model::write_instance(ss, original);
    const auto parsed = model::read_instance(ss);
    EXPECT_EQ(parsed.voter_count(), original.voter_count());
    EXPECT_DOUBLE_EQ(parsed.alpha(), original.alpha());
    EXPECT_EQ(parsed.graph(), original.graph());
    for (std::size_t v = 0; v < 30; ++v) {
        EXPECT_DOUBLE_EQ(parsed.competency(v), original.competency(v));
    }
}

TEST(InstanceIo, FileRoundTrip) {
    Rng rng(3);
    const auto original = ld::experiments::barabasi_instance(rng, 40, 2, 0.05, 0.2, 0.8);
    const std::string path = ::testing::TempDir() + "/liquidd_instance_test.txt";
    model::save_instance(path, original);
    const auto loaded = model::load_instance(path);
    EXPECT_EQ(loaded.graph(), original.graph());
    EXPECT_DOUBLE_EQ(loaded.competency(17), original.competency(17));
    std::remove(path.c_str());
}

TEST(InstanceIo, RejectsMalformedInput) {
    {
        std::stringstream ss("not-an-instance 1");
        EXPECT_THROW(model::read_instance(ss), std::runtime_error);
    }
    {
        std::stringstream ss("liquidd-instance 99\nalpha 0.05\n");
        EXPECT_THROW(model::read_instance(ss), std::runtime_error);
    }
    {
        std::stringstream ss("liquidd-instance 1\nalpha 0.05\ngraph 2 0\ncompetencies 0.5");
        EXPECT_THROW(model::read_instance(ss), std::runtime_error);  // truncated
    }
    EXPECT_THROW(model::load_instance("/no/such/liquidd/file"), std::runtime_error);
}

TEST(UnrestrictedAbstaining, EveryoneCanAbstain) {
    Rng rng(4);
    const auto inst = ld::experiments::complete_pc_instance(rng, 50, 0.05, 0.02, 0.2);
    const mech::ApprovalSizeThreshold inner(1);
    const mech::UnrestrictedAbstaining wrapper(inner, 1.0);
    for (g::Vertex v = 0; v < 50; ++v) {
        EXPECT_EQ(wrapper.act(inst, v, rng).kind, mech::ActionKind::Abstain);
    }
    EXPECT_THROW(mech::UnrestrictedAbstaining(inner, -0.1),
                 ld::support::ContractViolation);
}

TEST(UnrestrictedAbstaining, HighAbstentionDegradesTheOutcome) {
    // Footnote 4: letting everyone abstain shrinks the electorate to a few
    // random sinks — the variance advantage of the crowd disappears.
    Rng rng(5);
    const auto inst = ld::experiments::complete_pc_instance(rng, 201, 0.05, 0.02, 0.2);
    const mech::ApprovalSizeThreshold inner(1);
    const mech::Abstaining restricted(inner, 0.95);
    const mech::UnrestrictedAbstaining unrestricted(inner, 0.95);
    ld::election::EvalOptions opts;
    opts.replications = 150;
    const auto r = ld::election::estimate_gain(restricted, inst, rng, opts);
    const auto u = ld::election::estimate_gain(unrestricted, inst, rng, opts);
    // Restricted abstention keeps competent sinks voting; unrestricted
    // loses them too.
    EXPECT_GT(r.pm.value, u.pm.value);
}

TEST(Adversarial, FindsTheStarCounterexample) {
    // On a star with BestNeighbour, the adversary should discover a
    // negative-gain instance (competent centre, mediocre leaves).
    Rng rng(6);
    const auto graph = g::make_star(101);
    const mech::BestNeighbour best;
    ld::experiments::AdversaryOptions opts;
    opts.restarts = 12;
    opts.steps = 400;
    opts.batch = 12;
    opts.step_size = 0.2;
    // BestNeighbour is deterministic, so tiny replication counts already
    // give noise-free gain evaluations — pure hill climbing.
    opts.eval.replications = 2;
    const auto result =
        ld::experiments::find_worst_competencies(best, graph, 0.05, rng, opts);
    EXPECT_LT(result.worst_gain, -0.05);
    EXPECT_GT(result.evaluations, 200u);
    EXPECT_EQ(result.worst_competencies.size(), 101u);
}

TEST(Adversarial, Theorem2RegimeSurvivesTheAttack) {
    // Inside Theorem 2's class (K_n, PC constraint) the worst instance the
    // adversary finds must still have positive gain.
    Rng rng(7);
    const auto graph = g::make_complete(101);
    const mech::ApprovalSizeThreshold m(1);
    ld::experiments::AdversaryOptions opts;
    opts.restarts = 2;
    opts.steps = 30;
    opts.eval.replications = 20;
    opts.constraint = [](const model::CompetencyVector& p) {
        return p.satisfies_pc(0.05);
    };
    const auto result =
        ld::experiments::find_worst_competencies(m, graph, 0.05, rng, opts);
    // Inside the class, the adversary can at best neutralise delegation
    // (flat competencies => nobody approved => gain 0); it must not find
    // meaningful harm.
    EXPECT_GT(result.worst_gain, -0.02);
    EXPECT_TRUE(result.worst_competencies.satisfies_pc(0.05));
}

TEST(Adversarial, InfeasibleConstraintIsDiagnosed) {
    Rng rng(8);
    const auto graph = g::make_complete(10);
    const mech::ApprovalSizeThreshold m(1);
    ld::experiments::AdversaryOptions opts;
    opts.constraint = [](const model::CompetencyVector&) { return false; };
    EXPECT_THROW(ld::experiments::find_worst_competencies(m, graph, 0.05, rng, opts),
                 ld::support::ContractViolation);
}

}  // namespace
