// Tests for the experiment harness and the named workload families.

#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/properties.hpp"
#include "graph/restrictions.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "support/expect.hpp"

namespace {

namespace experiments = ld::experiments;
namespace g = ld::graph;
using ld::rng::Rng;
using ld::support::ContractViolation;

TEST(Harness, StableSeedIsDeterministicAndDiscriminating) {
    EXPECT_EQ(experiments::stable_seed("E-T2"), experiments::stable_seed("E-T2"));
    EXPECT_NE(experiments::stable_seed("E-T2"), experiments::stable_seed("E-T3"));
}

TEST(Harness, SizeLadderGrowsGeometrically) {
    const auto sizes = experiments::size_ladder(10, 2.0, 100);
    EXPECT_EQ(sizes, (std::vector<std::size_t>{10, 20, 40, 80}));
    const auto capped = experiments::size_ladder(10, 2.0, 1000000, 3);
    EXPECT_EQ(capped.size(), 3u);
    EXPECT_THROW(experiments::size_ladder(0, 2.0, 10), ContractViolation);
    EXPECT_THROW(experiments::size_ladder(1, 1.0, 10), ContractViolation);
}

TEST(Harness, SizeLadderDeduplicatesSlowGrowth) {
    const auto sizes = experiments::size_ladder(2, 1.2, 5);
    for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
}

TEST(Harness, ExperimentPrintsTableAndNotes) {
    ::testing::internal::CaptureStdout();
    experiments::Experiment exp("TEST-ID", "a test experiment", {"n", "value"});
    exp.add_row({static_cast<long long>(10), 0.5});
    exp.add_note("paper says 0.5");
    exp.finish();
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("[TEST-ID] a test experiment"), std::string::npos);
    EXPECT_NE(out.find("paper says 0.5"), std::string::npos);
    EXPECT_NE(out.find("| 10 |"), std::string::npos);
}

TEST(Harness, RngIsSeededFromId) {
    experiments::Experiment a("SAME", "t", {"x"});
    experiments::Experiment b("SAME", "t", {"x"});
    auto ra = a.make_rng();
    auto rb = b.make_rng();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(ra.next(), rb.next());
}

TEST(Workloads, CompletePcInstance) {
    Rng rng(1);
    const auto inst = experiments::complete_pc_instance(rng, 50, 0.05, 0.1, 0.2);
    EXPECT_TRUE(inst.satisfies(g::GraphRestriction::complete()));
    EXPECT_NEAR(inst.competencies().mean(), 0.4, 1e-6);
}

TEST(Workloads, StarAndFigure2) {
    const auto star = experiments::star_instance(17, 0.75, 0.52, 0.05);
    EXPECT_EQ(star.graph().degree(0), 16u);
    EXPECT_DOUBLE_EQ(star.competency(0), 0.75);

    const auto fig2 = experiments::figure2_instance();
    EXPECT_EQ(fig2.voter_count(), 9u);
    EXPECT_DOUBLE_EQ(fig2.alpha(), 0.01);
    EXPECT_DOUBLE_EQ(fig2.competency(0), 0.8);
}

TEST(Workloads, DRegularInstance) {
    Rng rng(2);
    const auto inst = experiments::d_regular_instance(rng, 60, 6, 0.05, 0.1, 0.2);
    EXPECT_TRUE(inst.satisfies(g::GraphRestriction::regular(6)));
}

TEST(Workloads, BoundedAndMinDegreeInstances) {
    Rng rng(3);
    const auto capped = experiments::bounded_degree_instance(rng, 100, 5, 0.05, 0.2, 0.8);
    EXPECT_TRUE(capped.satisfies(g::GraphRestriction::max_degree(5)));
    const auto floored = experiments::min_degree_instance(rng, 100, 4, 0.05, 0.2, 0.8);
    EXPECT_TRUE(floored.satisfies(g::GraphRestriction::min_degree(4)));
}

TEST(Workloads, BarabasiAndTwoTier) {
    Rng rng(4);
    const auto ba = experiments::barabasi_instance(rng, 200, 2, 0.05, 0.2, 0.8);
    EXPECT_EQ(ba.voter_count(), 200u);
    EXPECT_GT(g::degree_stats(ba.graph()).asymmetry, 2.0);

    const auto tt = experiments::two_tier_instance(rng, 100, 4, 0.8, 0.55, 0.05);
    EXPECT_DOUBLE_EQ(tt.competency(0), 0.8);
    EXPECT_DOUBLE_EQ(tt.competency(50), 0.55);
}

TEST(Workloads, FamiliesRespectTheirRestrictions) {
    Rng rng(5);
    const auto fam = experiments::d_regular_family(4, 0.05, 0.1, 0.2);
    // Odd n·d gets rounded up to keep the configuration model feasible.
    const auto inst = fam(15, rng);
    EXPECT_TRUE(inst.satisfies(g::GraphRestriction::regular(4)));

    const auto bounded = experiments::bounded_degree_family(0.4, 0.05, 0.2, 0.8)(64, rng);
    EXPECT_TRUE(bounded.satisfies(
        g::GraphRestriction::max_degree(5)));  // floor(64^0.4) = 5

    const auto floored = experiments::min_degree_family(0.5, 0.05, 0.2, 0.8)(64, rng);
    EXPECT_TRUE(floored.satisfies(g::GraphRestriction::min_degree(8)));

    const auto ba = experiments::barabasi_family(2, 0.05, 0.2, 0.8)(50, rng);
    EXPECT_EQ(ba.voter_count(), 50u);
}

}  // namespace
