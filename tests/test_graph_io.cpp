// Tests for edge-list round trips and DOT emission.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "rng/rng.hpp"
#include "support/expect.hpp"

namespace {

namespace g = ld::graph;
using ld::graph::Arc;
using ld::graph::Digraph;
using ld::graph::Graph;

TEST(EdgeList, RoundTripsACompleteGraph) {
    const Graph original = g::make_complete(6);
    std::stringstream ss;
    g::write_edge_list(ss, original);
    const Graph parsed = g::read_edge_list(ss);
    EXPECT_EQ(parsed, original);
}

TEST(EdgeList, RoundTripsARandomGraph) {
    ld::rng::Rng rng(1);
    const Graph original = g::make_erdos_renyi_gnp(rng, 40, 0.15);
    std::stringstream ss;
    g::write_edge_list(ss, original);
    EXPECT_EQ(g::read_edge_list(ss), original);
}

TEST(EdgeList, RejectsMalformedInput) {
    {
        std::stringstream ss("");
        EXPECT_THROW(g::read_edge_list(ss), std::runtime_error);
    }
    {
        std::stringstream ss("3 2\n0 1\n");  // truncated
        EXPECT_THROW(g::read_edge_list(ss), std::runtime_error);
    }
    {
        std::stringstream ss("3 1\n0 7\n");  // vertex out of range
        EXPECT_THROW(g::read_edge_list(ss), std::runtime_error);
    }
}

TEST(Dot, UndirectedContainsAllEdges) {
    std::ostringstream os;
    g::write_dot(os, g::make_path(3), "P3");
    const std::string out = os.str();
    EXPECT_NE(out.find("graph P3 {"), std::string::npos);
    EXPECT_NE(out.find("0 -- 1;"), std::string::npos);
    EXPECT_NE(out.find("1 -- 2;"), std::string::npos);
}

TEST(Dot, DirectedWithLabels) {
    const Digraph d(3, {Arc{1, 0}, Arc{2, 0}});
    const std::vector<std::string> labels{"v1 p=0.8", "v2 p=0.6", "v3 p=0.5"};
    std::ostringstream os;
    g::write_dot(os, d, labels, "Delegation");
    const std::string out = os.str();
    EXPECT_NE(out.find("digraph Delegation {"), std::string::npos);
    EXPECT_NE(out.find("label=\"v1 p=0.8\""), std::string::npos);
    EXPECT_NE(out.find("1 -> 0;"), std::string::npos);
    EXPECT_NE(out.find("2 -> 0;"), std::string::npos);
}

TEST(Dot, LabelCountMustMatch) {
    const Digraph d(3, {Arc{1, 0}});
    const std::vector<std::string> labels{"only one"};
    std::ostringstream os;
    EXPECT_THROW(g::write_dot(os, d, labels), ld::support::ContractViolation);
}

}  // namespace
