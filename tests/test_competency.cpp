// Tests for CompetencyVector: ordering, plausible changeability, bounded
// competency (Definition 1's competency-side restrictions).

#include <gtest/gtest.h>

#include <vector>

#include "ld/model/competency.hpp"
#include "support/expect.hpp"

namespace {

using ld::model::CompetencyVector;
using ld::support::ContractViolation;

TEST(Competency, StoresValuesByVertex) {
    const CompetencyVector p({0.8, 0.2, 0.5});
    EXPECT_EQ(p.size(), 3u);
    EXPECT_DOUBLE_EQ(p[0], 0.8);
    EXPECT_DOUBLE_EQ(p[1], 0.2);
    EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(Competency, RejectsOutOfRangeValues) {
    EXPECT_THROW(CompetencyVector({0.5, 1.01}), ContractViolation);
    EXPECT_THROW(CompetencyVector({-0.1}), ContractViolation);
}

TEST(Competency, AscendingOrderIsThePaperIndexing) {
    const CompetencyVector p({0.8, 0.2, 0.5, 0.2});
    const auto order = p.ascending_order();
    ASSERT_EQ(order.size(), 4u);
    // ties broken by vertex id (stable)
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 3u);
    EXPECT_EQ(order[2], 2u);
    EXPECT_EQ(order[3], 0u);
    EXPECT_DOUBLE_EQ(p.kth_smallest(0), 0.2);
    EXPECT_DOUBLE_EQ(p.kth_smallest(3), 0.8);
    EXPECT_THROW(p.kth_smallest(4), ContractViolation);
}

TEST(Competency, MeanAndOutcomeVariance) {
    const CompetencyVector p({0.5, 0.5, 1.0});
    EXPECT_NEAR(p.mean(), 2.0 / 3.0, 1e-15);
    EXPECT_NEAR(p.outcome_variance(), 0.25 + 0.25 + 0.0, 1e-15);
}

TEST(Competency, PlausibleChangeability) {
    // PC = a requires 1/2 − a <= mean <= 1/2: the mean sits close to 1/2
    // from below, so delegation boosts of α per vote can flip the outcome.
    const CompetencyVector p({0.4, 0.4, 0.4});
    EXPECT_NEAR(p.plausible_changeability(), 0.1, 1e-12);
    EXPECT_TRUE(p.satisfies_pc(0.1));
    EXPECT_TRUE(p.satisfies_pc(0.2));   // larger allowance still contains it
    EXPECT_FALSE(p.satisfies_pc(0.05)); // mean too far below 1/2

    const CompetencyVector at_half({0.5, 0.5});
    EXPECT_EQ(at_half.plausible_changeability(), 0.0);
    EXPECT_TRUE(at_half.satisfies_pc(0.01));

    const CompetencyVector winning({0.6, 0.6});
    EXPECT_EQ(winning.plausible_changeability(), 0.0);  // mean above 1/2
    EXPECT_FALSE(winning.satisfies_pc(0.1));
}

TEST(Competency, BoundedAway) {
    const CompetencyVector p({0.3, 0.5, 0.7});
    EXPECT_TRUE(p.bounded_away(0.2));
    EXPECT_TRUE(p.bounded_away(0.29));
    EXPECT_FALSE(p.bounded_away(0.3));  // p=0.3 not strictly above beta
    EXPECT_FALSE(p.bounded_away(0.5));
    EXPECT_FALSE(p.bounded_away(-0.1));

    const CompetencyVector extreme({0.0, 0.5});
    EXPECT_FALSE(extreme.bounded_away(0.0));  // p=0 is never strictly inside
}

TEST(Competency, BoundingBeta) {
    const CompetencyVector p({0.3, 0.5, 0.65});
    EXPECT_NEAR(p.bounding_beta(), 0.3, 1e-15);
    const CompetencyVector q({0.1, 0.95});
    EXPECT_NEAR(q.bounding_beta(), 0.05, 1e-15);
    const CompetencyVector z({0.0, 0.5});
    EXPECT_NEAR(z.bounding_beta(), 0.0, 1e-15);
}

TEST(Competency, EmptyVectorDefaults) {
    const CompetencyVector p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.plausible_changeability(), 0.0);
    EXPECT_FALSE(p.satisfies_pc(0.1));
}

}  // namespace
