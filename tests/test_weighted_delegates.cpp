// Tests for the §6 weighted-majority-with-weight-function extension.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/delegation/delegation_graph.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/mech/weighted_delegates.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace {

namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::delegation::DelegationOutcome;
using ld::mech::Action;
using ld::rng::Rng;
using ld::support::ContractViolation;

TEST(WeightedAction, ValidationOfWeights) {
    // Mismatched weight count.
    {
        std::vector<Action> actions{
            Action::delegate_weighted({1, 2}, {1.0}), Action::vote(), Action::vote()};
        EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
    }
    // Non-positive weight.
    {
        std::vector<Action> actions{
            Action::delegate_weighted({1, 2}, {1.0, 0.0}), Action::vote(),
            Action::vote()};
        EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
    }
    // Weights on a non-delegation.
    {
        Action bad = Action::vote();
        bad.target_weights.push_back(1.0);
        std::vector<Action> actions{bad};
        EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
    }
}

TEST(WeightedAction, DominantDelegateDecides) {
    // Voter 3 delegates to {0, 1, 2} with weights {10, 1, 1}; voter 0 is
    // always correct, 1 and 2 always wrong: weighted majority follows 0.
    const model::CompetencyVector p({1.0, 0.0, 0.0, 0.5});
    std::vector<Action> actions{Action::vote(), Action::vote(), Action::vote(),
                                Action::delegate_weighted({0, 1, 2}, {10.0, 1.0, 1.0})};
    const DelegationOutcome out(std::move(actions));
    Rng rng(1);
    for (int t = 0; t < 500; ++t) {
        // Votes: 1 (w10), 0, 0, and voter 3 follows the weighted majority
        // (correct): 2 correct of 4 unit votes... voter 3 votes correct,
        // voter 0 correct, 1/2 wrong → 2 vs 2 tie → overall incorrect.
        // So check the propagated vote via the count instead.
        const auto correct =
            ld::election::sample_correct_vote_count(out, p, rng);
        EXPECT_EQ(correct, 2u);  // voters 0 and 3
    }
}

TEST(WeightedAction, UniformWeightsMatchUnweightedMajority) {
    // 5 delegates at p=1,1,1,0,0: majority correct either way.
    const model::CompetencyVector p({1.0, 1.0, 1.0, 0.0, 0.0, 0.3});
    std::vector<Action> plain{Action::vote(), Action::vote(), Action::vote(),
                              Action::vote(), Action::vote(),
                              Action::delegate_to_many({0, 1, 2, 3, 4})};
    std::vector<Action> weighted{
        Action::vote(), Action::vote(), Action::vote(), Action::vote(), Action::vote(),
        Action::delegate_weighted({0, 1, 2, 3, 4}, {1, 1, 1, 1, 1})};
    Rng rng_a(2), rng_b(2);
    const DelegationOutcome out_plain(std::move(plain));
    const DelegationOutcome out_weighted(std::move(weighted));
    for (int t = 0; t < 200; ++t) {
        EXPECT_EQ(ld::election::sample_correct_vote_count(out_plain, p, rng_a),
                  ld::election::sample_correct_vote_count(out_weighted, p, rng_b));
    }
}

TEST(WeightedDelegatesMechanism, Validation) {
    EXPECT_THROW(mech::WeightedDelegates(0, 1, 0.5), ContractViolation);
    EXPECT_THROW(mech::WeightedDelegates(3, 1, 0.0), ContractViolation);
    EXPECT_THROW(mech::WeightedDelegates(3, 1, 1.5), ContractViolation);
}

TEST(WeightedDelegatesMechanism, PicksTopMWithGeometricWeights) {
    Rng rng(3);
    const model::Instance inst(g::make_complete(6),
                               model::CompetencyVector({0.2, 0.5, 0.6, 0.7, 0.8, 0.1}),
                               0.05);
    const mech::WeightedDelegates m(3, 1, 0.5);
    const auto a = m.act(inst, 0, rng);
    ASSERT_EQ(a.kind, mech::ActionKind::Delegate);
    // Top 3 approved for voter 0: vertices 4 (0.8), 3 (0.7), 2 (0.6).
    ASSERT_EQ(a.targets.size(), 3u);
    EXPECT_EQ(a.targets[0], 4u);
    EXPECT_EQ(a.targets[1], 3u);
    EXPECT_EQ(a.targets[2], 2u);
    ASSERT_EQ(a.target_weights.size(), 3u);
    EXPECT_DOUBLE_EQ(a.target_weights[0], 1.0);
    EXPECT_DOUBLE_EQ(a.target_weights[1], 0.5);
    EXPECT_DOUBLE_EQ(a.target_weights[2], 0.25);
}

TEST(WeightedDelegatesMechanism, VotesWhenBelowThreshold) {
    Rng rng(4);
    const model::Instance inst(g::make_complete(3),
                               model::CompetencyVector({0.5, 0.5, 0.5}), 0.05);
    const mech::WeightedDelegates m(3, 1, 0.5);
    for (g::Vertex v = 0; v < 3; ++v) {
        EXPECT_EQ(m.act(inst, v, rng).kind, mech::ActionKind::Vote);
    }
}

TEST(WeightedDelegatesMechanism, GainComparableToSingleDelegation) {
    Rng rng(5);
    const model::Instance inst(g::make_complete(151),
                               model::pc_competencies(rng, 151, 0.02, 0.25), 0.05);
    const mech::WeightedDelegates m(3, 1, 0.6);
    ld::election::EvalOptions opts;
    opts.replications = 60;
    opts.inner_samples = 16;
    const auto report = ld::election::estimate_gain(m, inst, rng, opts);
    EXPECT_GT(report.gain, 0.3);  // SPG transfers, as §6 conjectures
}

}  // namespace
