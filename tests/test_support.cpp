// Unit tests for ld::support — contracts, table printing, CSV, stopwatch.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/csv_writer.hpp"
#include "support/expect.hpp"
#include "support/stopwatch.hpp"
#include "support/table_printer.hpp"

namespace {

using ld::support::Cell;
using ld::support::ContractViolation;
using ld::support::CsvWriter;
using ld::support::ensures;
using ld::support::expects;
using ld::support::invariant;
using ld::support::Stopwatch;
using ld::support::TablePrinter;

TEST(Expect, PassingChecksAreSilent) {
    EXPECT_NO_THROW(expects(true));
    EXPECT_NO_THROW(ensures(true));
    EXPECT_NO_THROW(invariant(true));
}

TEST(Expect, FailingPreconditionThrowsWithLocation) {
    try {
        expects(false, "the answer must be 42");
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("Precondition"), std::string::npos);
        EXPECT_NE(what.find("the answer must be 42"), std::string::npos);
        EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
    }
}

TEST(Expect, EnsuresAndInvariantReportTheirKind) {
    EXPECT_THROW(ensures(false), ContractViolation);
    EXPECT_THROW(invariant(false), ContractViolation);
    try {
        ensures(false, "x");
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("Postcondition"), std::string::npos);
    }
}

TEST(TablePrinter, RejectsEmptyHeaderAndBadRowWidth) {
    EXPECT_THROW(TablePrinter({}), ContractViolation);
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.add_row({Cell{1LL}}), ContractViolation);
}

TEST(TablePrinter, RendersAlignedTable) {
    TablePrinter t({"n", "gain"}, 2);
    t.add_row({Cell{static_cast<long long>(100)}, Cell{0.125}});
    t.add_row({Cell{static_cast<long long>(100000)}, Cell{-0.5}});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| 100000 |"), std::string::npos);
    EXPECT_NE(out.find("0.12"), std::string::npos);
    EXPECT_NE(out.find("-0.50"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, FormatsEachCellKind) {
    TablePrinter t({"x"}, 3);
    EXPECT_EQ(t.format_cell(Cell{std::string("hi")}), "hi");
    EXPECT_EQ(t.format_cell(Cell{static_cast<long long>(-7)}), "-7");
    EXPECT_EQ(t.format_cell(Cell{0.5}), "0.500");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
    const std::string path = ::testing::TempDir() + "/liquidd_csv_test.csv";
    {
        CsvWriter w(path, {"n", "value"});
        w.add_row({Cell{static_cast<long long>(3)}, Cell{0.25}});
        w.close();
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "n,value");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.substr(0, 2), "3,");
    std::remove(path.c_str());
}

TEST(CsvWriter, RowWidthIsChecked) {
    const std::string path = ::testing::TempDir() + "/liquidd_csv_test2.csv";
    CsvWriter w(path, {"a", "b"});
    EXPECT_THROW(w.add_row({Cell{1LL}}), ContractViolation);
    w.close();
    std::remove(path.c_str());
}

TEST(Stopwatch, MeasuresNonNegativeMonotoneTime) {
    Stopwatch sw;
    const double t1 = sw.elapsed_seconds();
    const double t2 = sw.elapsed_seconds();
    EXPECT_GE(t1, 0.0);
    EXPECT_GE(t2, t1);
    sw.restart();
    EXPECT_GE(sw.elapsed_ms(), 0.0);
}

}  // namespace
