// Tests for every delegation mechanism: threshold logic, approval
// discipline (never delegate to a non-approved voter), closed-form direct-
// voting probabilities vs empirical frequencies, and the §6 extensions.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "graph/generators.hpp"
#include "ld/mech/abstaining.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/complete_graph_threshold.hpp"
#include "ld/mech/d_out_sampling.hpp"
#include "ld/mech/direct.hpp"
#include "ld/mech/fraction_approved.hpp"
#include "ld/mech/multi_delegate.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/model/instance.hpp"
#include "support/expect.hpp"

namespace {

namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::mech::Action;
using ld::mech::ActionKind;
using ld::model::Instance;
using ld::rng::Rng;
using ld::support::ContractViolation;

Instance complete_instance(std::size_t n, double alpha = 0.05) {
    Rng rng(n * 31 + 7);
    return Instance(g::make_complete(n),
                    model::uniform_competencies(rng, n, 0.2, 0.8), alpha);
}

/// Check an action's target(s) against the approval rule.
void expect_targets_approved(const Instance& inst, g::Vertex v, const Action& a) {
    for (g::Vertex t : a.targets) {
        EXPECT_TRUE(inst.competency(v) + inst.alpha() <= inst.competency(t))
            << "voter " << v << " delegated to non-approved " << t;
        EXPECT_TRUE(inst.graph().has_edge(v, t) || t == v)
            << "voter " << v << " delegated outside its neighbourhood";
    }
}

TEST(DirectVoting, NeverDelegates) {
    Rng rng(1);
    const auto inst = complete_instance(20);
    mech::DirectVoting direct;
    for (g::Vertex v = 0; v < 20; ++v) {
        const auto a = direct.act(inst, v, rng);
        EXPECT_EQ(a.kind, ActionKind::Vote);
        EXPECT_TRUE(a.targets.empty());
        EXPECT_EQ(direct.vote_directly_probability(inst, v), 1.0);
    }
    EXPECT_EQ(direct.name(), "DirectVoting");
}

TEST(ApprovalSizeThreshold, DelegatesIffThresholdMet) {
    Rng rng(2);
    const auto inst = complete_instance(30);
    const auto counts = inst.approved_neighbour_counts();
    for (std::size_t j : {1u, 3u, 10u}) {
        mech::ApprovalSizeThreshold m(j);
        for (g::Vertex v = 0; v < 30; ++v) {
            const auto a = m.act(inst, v, rng);
            if (counts[v] >= j) {
                EXPECT_EQ(a.kind, ActionKind::Delegate);
                expect_targets_approved(inst, v, a);
                EXPECT_EQ(*m.vote_directly_probability(inst, v), 0.0);
            } else {
                EXPECT_EQ(a.kind, ActionKind::Vote);
                EXPECT_EQ(*m.vote_directly_probability(inst, v), 1.0);
            }
        }
    }
}

TEST(ApprovalSizeThreshold, ThresholdZeroIsClampedToOne) {
    mech::ApprovalSizeThreshold m(0);
    EXPECT_EQ(m.threshold(), 1u);
}

TEST(ApprovalSizeThreshold, TargetsAreUniformOverApprovalSet) {
    Rng rng(3);
    // Voter 0 (p=0.2) approves exactly voters 2, 3, 4.
    const Instance inst(g::make_complete(5),
                        model::CompetencyVector({0.2, 0.24, 0.5, 0.6, 0.7}), 0.05);
    mech::ApprovalSizeThreshold m(1);
    std::map<g::Vertex, int> counts;
    const int trials = 30000;
    for (int i = 0; i < trials; ++i) {
        const auto a = m.act(inst, 0, rng);
        ASSERT_EQ(a.kind, ActionKind::Delegate);
        ++counts[a.targets[0]];
    }
    ASSERT_EQ(counts.size(), 3u);
    for (g::Vertex t : {2u, 3u, 4u}) {
        EXPECT_NEAR(counts[t], trials / 3, 500) << "target " << t;
    }
}

TEST(CompleteGraphThreshold, FactoriesComputeDocumentedThresholds) {
    const auto log_m = mech::CompleteGraphThreshold::with_log_threshold();
    EXPECT_EQ(log_m.threshold_for(1023), 10u);
    const auto sqrt_m = mech::CompleteGraphThreshold::with_sqrt_threshold();
    EXPECT_EQ(sqrt_m.threshold_for(100), 10u);
    EXPECT_EQ(sqrt_m.threshold_for(101), 11u);
    const auto lin = mech::CompleteGraphThreshold::with_linear_threshold(0.25);
    EXPECT_EQ(lin.threshold_for(100), 25u);
    EXPECT_THROW(mech::CompleteGraphThreshold::with_linear_threshold(0.0),
                 ContractViolation);
}

TEST(CompleteGraphThreshold, Algorithm1Semantics) {
    Rng rng(4);
    const auto inst = complete_instance(50);
    const auto m = mech::CompleteGraphThreshold::with_sqrt_threshold();
    const auto counts = inst.approved_neighbour_counts();
    const std::size_t j = m.threshold_for(49);  // degree in K_50
    for (g::Vertex v = 0; v < 50; ++v) {
        const auto a = m.act(inst, v, rng);
        if (counts[v] >= j) {
            EXPECT_EQ(a.kind, ActionKind::Delegate);
            expect_targets_approved(inst, v, a);
        } else {
            EXPECT_EQ(a.kind, ActionKind::Vote);
        }
    }
    EXPECT_NE(m.name().find("Algorithm1"), std::string::npos);
}

TEST(DOutSampling, ValidationAndNaming) {
    EXPECT_THROW(mech::DOutSampling(0, 1, mech::SampleSource::Population),
                 ContractViolation);
    EXPECT_THROW(mech::DOutSampling(3, 5, mech::SampleSource::Population),
                 ContractViolation);
    const auto m = mech::DOutSampling::with_fraction(10, 0.3, mech::SampleSource::Population);
    EXPECT_EQ(m.d(), 10u);
    EXPECT_EQ(m.threshold(), 3u);
    EXPECT_NE(m.name().find("Algorithm2"), std::string::npos);
}

TEST(DOutSampling, PopulationModeDelegatesOnlyUpward) {
    Rng rng(5);
    const auto inst = complete_instance(60);
    const mech::DOutSampling m(8, 2, mech::SampleSource::Population);
    int delegations = 0;
    for (int rep = 0; rep < 20; ++rep) {
        for (g::Vertex v = 0; v < 60; ++v) {
            const auto a = m.act(inst, v, rng);
            if (a.kind == ActionKind::Delegate) {
                ++delegations;
                // Population mode can target any voter, but must be approved.
                EXPECT_TRUE(inst.competency(v) + inst.alpha() <=
                            inst.competency(a.targets[0]));
            }
        }
    }
    EXPECT_GT(delegations, 0);
}

TEST(DOutSampling, NeighbourhoodModeStaysLocal) {
    Rng rng(6);
    const auto graph = g::make_random_d_regular(rng, 40, 6);
    const Instance inst(graph, model::uniform_competencies(rng, 40, 0.2, 0.8), 0.05);
    const mech::DOutSampling m(6, 1, mech::SampleSource::Neighbourhood);
    for (int rep = 0; rep < 20; ++rep) {
        for (g::Vertex v = 0; v < 40; ++v) {
            const auto a = m.act(inst, v, rng);
            if (a.kind == ActionKind::Delegate) {
                EXPECT_TRUE(graph.has_edge(v, a.targets[0]));
                EXPECT_TRUE(inst.competency(v) + inst.alpha() <=
                            inst.competency(a.targets[0]));
            }
        }
    }
}

TEST(DOutSampling, SingletonPopulationVotes) {
    Rng rng(7);
    const Instance inst(g::make_complete(1), model::CompetencyVector({0.5}), 0.1);
    const mech::DOutSampling m(3, 1, mech::SampleSource::Population);
    EXPECT_EQ(m.act(inst, 0, rng).kind, ActionKind::Vote);
}

TEST(FractionApproved, Theorem5Rule) {
    Rng rng(8);
    const auto inst = complete_instance(30);
    const mech::FractionApproved m(1.0 / 3.0);
    const auto counts = inst.approved_neighbour_counts();
    for (g::Vertex v = 0; v < 30; ++v) {
        const auto a = m.act(inst, v, rng);
        const bool should =
            3 * counts[v] >= inst.graph().degree(v) && counts[v] > 0;
        EXPECT_EQ(a.kind == ActionKind::Delegate, should) << "voter " << v;
        if (should) expect_targets_approved(inst, v, a);
        EXPECT_EQ(*m.vote_directly_probability(inst, v), should ? 0.0 : 1.0);
    }
    EXPECT_THROW(mech::FractionApproved(0.0), ContractViolation);
    EXPECT_THROW(mech::FractionApproved(1.5), ContractViolation);
}

TEST(FractionApproved, IsolatedVoterVotes) {
    Rng rng(9);
    const Instance inst(ld::graph::Graph::empty(3),
                        model::CompetencyVector({0.2, 0.5, 0.8}), 0.05);
    const mech::FractionApproved m;
    for (g::Vertex v = 0; v < 3; ++v) {
        EXPECT_EQ(m.act(inst, v, rng).kind, ActionKind::Vote);
    }
}

TEST(BestNeighbour, PicksTheMaximum) {
    Rng rng(10);
    const Instance inst(g::make_complete(5),
                        model::CompetencyVector({0.2, 0.5, 0.9, 0.7, 0.3}), 0.05);
    const mech::BestNeighbour m;
    const auto a = m.act(inst, 0, rng);
    ASSERT_EQ(a.kind, ActionKind::Delegate);
    EXPECT_EQ(a.targets[0], 2u);
    // The top voter votes directly.
    EXPECT_EQ(m.act(inst, 2, rng).kind, ActionKind::Vote);
    EXPECT_EQ(*m.vote_directly_probability(inst, 2), 1.0);
    EXPECT_EQ(*m.vote_directly_probability(inst, 0), 0.0);
}

TEST(BestNeighbour, StarConcentratesOnCentre) {
    Rng rng(11);
    const Instance inst(g::make_star(10), model::star_competencies(10), 0.05);
    const mech::BestNeighbour m;
    for (g::Vertex leaf = 1; leaf < 10; ++leaf) {
        const auto a = m.act(inst, leaf, rng);
        ASSERT_EQ(a.kind, ActionKind::Delegate);
        EXPECT_EQ(a.targets[0], 0u);
    }
    EXPECT_EQ(m.act(inst, 0, rng).kind, ActionKind::Vote);
}

TEST(Abstaining, OnlyWouldBeDelegatorsAbstain) {
    Rng rng(12);
    const auto inst = complete_instance(40);
    const mech::ApprovalSizeThreshold inner(1);
    const mech::Abstaining m(inner, 1.0);  // always abstain instead of delegating
    const auto counts = inst.approved_neighbour_counts();
    for (g::Vertex v = 0; v < 40; ++v) {
        const auto a = m.act(inst, v, rng);
        if (counts[v] >= 1) {
            EXPECT_EQ(a.kind, ActionKind::Abstain);
        } else {
            EXPECT_EQ(a.kind, ActionKind::Vote);  // direct voters never abstain
        }
    }
    EXPECT_TRUE(m.may_abstain());
    EXPECT_THROW(mech::Abstaining(inner, 1.0001), ContractViolation);
}

TEST(Abstaining, ZeroProbabilityIsTransparent) {
    Rng rng(13);
    const auto inst = complete_instance(40);
    const mech::ApprovalSizeThreshold inner(1);
    const mech::Abstaining m(inner, 0.0);
    for (g::Vertex v = 0; v < 40; ++v) {
        EXPECT_NE(m.act(inst, v, rng).kind, ActionKind::Abstain);
    }
}

TEST(Abstaining, FrequencyMatchesProbability) {
    Rng rng(14);
    const auto inst = complete_instance(30);
    const mech::ApprovalSizeThreshold inner(1);
    const mech::Abstaining m(inner, 0.4);
    // Pick a voter guaranteed to delegate under the inner mechanism.
    g::Vertex delegator = 0;
    const auto counts = inst.approved_neighbour_counts();
    for (g::Vertex v = 0; v < 30; ++v) {
        if (counts[v] >= 1) {
            delegator = v;
            break;
        }
    }
    int abstained = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        if (m.act(inst, delegator, rng).kind == ActionKind::Abstain) ++abstained;
    }
    EXPECT_NEAR(static_cast<double>(abstained) / trials, 0.4, 0.02);
}

TEST(MultiDelegate, RequiresOddM) {
    EXPECT_THROW(mech::MultiDelegate(2, 1), ContractViolation);
    EXPECT_THROW(mech::MultiDelegate(0, 1), ContractViolation);
}

TEST(MultiDelegate, TargetsAreDistinctApprovedAndOddCount) {
    Rng rng(15);
    const auto inst = complete_instance(50);
    const mech::MultiDelegate m(5, 1);
    EXPECT_TRUE(m.multi_delegation());
    for (int rep = 0; rep < 10; ++rep) {
        for (g::Vertex v = 0; v < 50; ++v) {
            const auto a = m.act(inst, v, rng);
            if (a.kind != ActionKind::Delegate) continue;
            EXPECT_EQ(a.targets.size() % 2, 1u);
            EXPECT_LE(a.targets.size(), 5u);
            std::set<g::Vertex> distinct(a.targets.begin(), a.targets.end());
            EXPECT_EQ(distinct.size(), a.targets.size());
            expect_targets_approved(inst, v, a);
        }
    }
}

TEST(MultiDelegate, TwoApprovedNeighboursGiveOneTarget) {
    Rng rng(16);
    // Voter 0 approves exactly {2, 3}: take = min(3, 2) → 2 → forced odd → 1.
    const Instance inst(g::make_complete(4),
                        model::CompetencyVector({0.2, 0.22, 0.5, 0.6}), 0.05);
    const mech::MultiDelegate m(3, 1);
    for (int i = 0; i < 100; ++i) {
        const auto a = m.act(inst, 0, rng);
        ASSERT_EQ(a.kind, ActionKind::Delegate);
        EXPECT_EQ(a.targets.size(), 1u);
    }
}

}  // namespace
