// Unit tests for the xoshiro256++ / SplitMix64 generators.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/rng.hpp"

namespace {

using ld::rng::Rng;
using ld::rng::SplitMix64;

TEST(SplitMix64, IsDeterministic) {
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(SplitMix64, MatchesReferenceVector) {
    // Reference values for seed 1234567 from the public-domain reference
    // implementation by Sebastiano Vigna.
    SplitMix64 sm(1234567);
    EXPECT_EQ(sm.next(), 6457827717110365317ULL);
    EXPECT_EQ(sm.next(), 3203168211198807973ULL);
}

TEST(Rng, IsDeterministicPerSeed) {
    Rng a(99), b(99);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
    static_assert(std::uniform_random_bit_generator<Rng>);
    EXPECT_EQ(Rng::min(), 0u);
    EXPECT_EQ(Rng::max(), ~0ULL);
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanIsAboutHalf) {
    Rng rng(8);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInRange) {
    Rng rng(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
        for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
    Rng rng(10);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsApproximatelyUniform) {
    Rng rng(11);
    constexpr std::uint64_t kBound = 10;
    constexpr int kDraws = 100000;
    std::vector<int> counts(kBound, 0);
    for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
    for (std::uint64_t v = 0; v < kBound; ++v) {
        EXPECT_NEAR(counts[v], kDraws / kBound, 500) << "value " << v;
    }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
    Rng rng(12);
    const double p = 0.3;
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.next_bernoulli(p)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, BernoulliExtremesAreDeterministic) {
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.next_bernoulli(0.0));
        EXPECT_TRUE(rng.next_bernoulli(1.0));
    }
}

TEST(Rng, JumpChangesTheStream) {
    Rng a(5), b(5);
    b.jump();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, SplitGivesIndependentLookingChildren) {
    Rng parent(6);
    Rng c1 = parent.split();
    Rng c2 = parent.split();
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 64; ++i) {
        seen.insert(c1.next());
        seen.insert(c2.next());
    }
    EXPECT_EQ(seen.size(), 128u);  // no collisions across child streams
}

TEST(Rng, ZeroSeedStillProducesOutput) {
    Rng rng(0);
    std::uint64_t x = rng.next();
    std::uint64_t y = rng.next();
    EXPECT_TRUE(x != 0 || y != 0);
}

}  // namespace
