// Tests for recycle sampling (Definition 6): structure validation,
// partition complexity, exact expectations vs Monte-Carlo, the Lemma 1/2
// bound calculators, and the construction from Algorithm 1 instances.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "ld/mech/complete_graph_threshold.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/recycle/bounds.hpp"
#include "ld/recycle/recycle_graph.hpp"
#include "ld/recycle/sampler.hpp"
#include "stats/running_stats.hpp"
#include "support/expect.hpp"

namespace {

namespace recycle = ld::recycle;
using ld::recycle::RecycleGraph;
using ld::recycle::RecycleNode;
using ld::rng::Rng;
using ld::support::ContractViolation;

TEST(RecycleGraph, ValidatesNodes) {
    EXPECT_THROW(RecycleGraph({RecycleNode{1.5, 0.5, 0}}), ContractViolation);
    EXPECT_THROW(RecycleGraph({RecycleNode{1.0, -0.1, 0}}), ContractViolation);
    // Window beyond own index.
    EXPECT_THROW(RecycleGraph({RecycleNode{1.0, 0.5, 1}}), ContractViolation);
    // Recycling with empty window.
    EXPECT_THROW(RecycleGraph({RecycleNode{0.5, 0.5, 0}}), ContractViolation);
}

TEST(RecycleGraph, AllFreshNodesHaveComplexityOne) {
    std::vector<RecycleNode> nodes(10, RecycleNode{1.0, 0.6, 0});
    const RecycleGraph g(std::move(nodes));
    EXPECT_EQ(g.j(), 10u);
    EXPECT_EQ(g.partition_complexity(), 1u);
    EXPECT_NEAR(g.total_expectation(), 6.0, 1e-12);
    for (double mu : g.expectations()) EXPECT_NEAR(mu, 0.6, 1e-15);
}

TEST(RecycleGraph, ChainHasLinearComplexity) {
    // Node i recycles from exactly [0, i): longest chain grows each step.
    std::vector<RecycleNode> nodes;
    nodes.push_back(RecycleNode{1.0, 0.5, 0});
    for (std::size_t i = 1; i < 6; ++i) nodes.push_back(RecycleNode{0.0, 0.5, i});
    const RecycleGraph g(std::move(nodes));
    EXPECT_EQ(g.j(), 1u);
    EXPECT_EQ(g.partition_complexity(), 6u);
}

TEST(RecycleGraph, PureRecyclingPreservesExpectation) {
    // One fresh Bernoulli(0.7) and 5 pure copies of it.
    std::vector<RecycleNode> nodes;
    nodes.push_back(RecycleNode{1.0, 0.7, 0});
    for (std::size_t i = 1; i < 6; ++i) nodes.push_back(RecycleNode{0.0, 0.1, 1});
    const RecycleGraph g(std::move(nodes));
    for (double mu : g.expectations()) EXPECT_NEAR(mu, 0.7, 1e-12);
    EXPECT_NEAR(g.total_expectation(), 4.2, 1e-12);
}

TEST(RecycleGraph, MixedExpectationsFollowTheRecurrence) {
    // Node 2 recycles from {0, 1} with z = 0.5:
    // μ_2 = 0.5·0.9 + 0.5·(μ_0 + μ_1)/2.
    std::vector<RecycleNode> nodes{RecycleNode{1.0, 0.2, 0}, RecycleNode{1.0, 0.6, 0},
                                   RecycleNode{0.5, 0.9, 2}};
    const RecycleGraph g(std::move(nodes));
    EXPECT_NEAR(g.expectations()[2], 0.5 * 0.9 + 0.5 * 0.4, 1e-12);
}

TEST(RecycleSampler, EmpiricalMeanMatchesExactExpectation) {
    Rng rng(1);
    const auto g = RecycleGraph::synthetic(200, 20, 0.3, 0.6, 4);
    ld::stats::RunningStats acc;
    for (int rep = 0; rep < 3000; ++rep) {
        acc.add(static_cast<double>(recycle::sample(g, rng).total));
    }
    EXPECT_NEAR(acc.mean(), g.total_expectation(), 4.0 * acc.standard_error() + 0.5);
}

TEST(RecycleSampler, RealizationInternalsAreConsistent) {
    Rng rng(2);
    const auto g = RecycleGraph::synthetic(100, 10, 0.5, 0.5, 3);
    const auto r = recycle::sample(g, rng);
    ASSERT_EQ(r.values.size(), 100u);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_LE(r.values[i], 1u);
        running += r.values[i];
        EXPECT_EQ(r.prefix[i], running);
    }
    EXPECT_EQ(r.total, running);
}

TEST(RecycleSampler, MinPrefixRatioIsAtMostOneOnAverage) {
    Rng rng(3);
    const auto g = RecycleGraph::synthetic(300, 30, 0.4, 0.55, 3);
    const auto r = recycle::sample(g, rng);
    const double ratio = r.min_prefix_ratio(g, g.j());
    EXPECT_GT(ratio, 0.0);
    EXPECT_LT(ratio, 2.0);
}

TEST(RecycleSynthetic, StructureMatchesParameters) {
    const auto g = RecycleGraph::synthetic(120, 12, 0.25, 0.6, 5);
    EXPECT_EQ(g.size(), 120u);
    EXPECT_EQ(g.j(), 12u);
    // Partition complexity is at most bands + 1 (fresh block + bands).
    EXPECT_LE(g.partition_complexity(), 6u);
    EXPECT_GE(g.partition_complexity(), 2u);
    EXPECT_THROW(RecycleGraph::synthetic(10, 0, 0.5, 0.5, 2), ContractViolation);
    EXPECT_THROW(RecycleGraph::synthetic(10, 2, 0.5, 0.5, 0), ContractViolation);
}

TEST(RecycleFromInstance, Algorithm1OnCompleteGraph) {
    Rng rng(4);
    const ld::model::Instance inst(ld::graph::make_complete(60),
                                   ld::model::uniform_competencies(rng, 60, 0.2, 0.8),
                                   0.1);
    const auto m = ld::mech::CompleteGraphThreshold::with_sqrt_threshold();
    const auto g = RecycleGraph::from_instance(inst, m);
    EXPECT_EQ(g.size(), 60u);
    // Partition complexity is bounded by ceil(1/alpha) + 1 fresh level.
    EXPECT_LE(g.partition_complexity(), inst.partition_complexity_bound() + 1);
    // The most competent voter never recycles.
    EXPECT_DOUBLE_EQ(g.node(0).z, 1.0);
    // Windows grow with the index (sorted descending by competency).
    for (std::size_t i = 1; i < g.size(); ++i) {
        EXPECT_LE(g.node(i).successor_prefix, i);
    }
    // Expected total under delegation >= expected total under direct
    // voting (delegation recycles from *better* voters only).
    const double direct_mean = inst.competencies().mean() * 60.0;
    EXPECT_GE(g.total_expectation(), direct_mean - 1e-9);
}

TEST(RecycleBounds, Lemma1BoundDecaysInJ) {
    // The union bound Σ_{i>=j} exp(−δ²·rate·i/2) with δ = ε/j^{1/3} decays
    // like e^{−Ω(j^{1/3})} once ε²·j^{1/3} beats the log(1/a) prefactor —
    // so it is vacuous (capped at 1) for small j and then drops fast.
    double prev = 1.0;
    for (std::size_t j : {512u, 4096u, 32768u}) {
        const double b = recycle::lemma1_failure_bound(j, 1000000, 1.5, 0.5);
        EXPECT_LE(b, prev);
        prev = b;
    }
    EXPECT_LT(prev, 0.05);
}

TEST(RecycleBounds, Lemma2DeviationFormula) {
    EXPECT_NEAR(recycle::lemma2_deviation(1000, 8, 0.1, 3), 3 * 0.1 * 1000 / 2.0, 1e-9);
    EXPECT_GT(recycle::lemma2_deviation(1000, 8, 0.1, 3),
              recycle::lemma2_deviation(1000, 64, 0.1, 3));
}

TEST(RecycleBounds, Lemma2FailureBoundIsCappedAndScalesWithC) {
    const double b1 = recycle::lemma2_failure_bound(64, 10000, 0.5, 0.5, 1);
    const double b3 = recycle::lemma2_failure_bound(64, 10000, 0.5, 0.5, 3);
    EXPECT_LE(b1, 1.0);
    EXPECT_LE(b3, 1.0);
    EXPECT_GE(b3, b1);
}

TEST(RecycleBounds, Lemma7LowerBound) {
    // direct_mean + (n−k)·α − εn/(α·j^{1/3}).
    const double bound = recycle::lemma7_lower_bound(60.0, 100, 40, 0.1, 0.01, 8);
    EXPECT_NEAR(bound, 60.0 + 60 * 0.1 - 0.01 * 100 / (0.1 * 2.0), 1e-9);
    EXPECT_THROW(recycle::lemma7_lower_bound(1.0, 10, 11, 0.1, 0.1, 8),
                 ContractViolation);
}

TEST(RecycleLemma2, EmpiricalTailIsBelowTheBound) {
    // The headline check: tail frequency below μ − c·εn/j^{1/3} must not
    // exceed the (loose) Lemma 2 bound.
    Rng rng(5);
    const std::size_t n = 400, j = 60;
    const auto g = RecycleGraph::synthetic(n, j, 0.5, 0.55, 3);
    const double eps = 0.4;
    const std::size_t c = g.partition_complexity();
    const double deviation = recycle::lemma2_deviation(n, j, eps, c);
    const double freq = recycle::tail_frequency_below(g, rng, deviation, 2000);
    const double bound = recycle::lemma2_failure_bound(j, n, eps, 0.55, c);
    EXPECT_LE(freq, bound + 0.01);
}

}  // namespace
