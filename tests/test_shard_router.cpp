// Tests for the shard-routing front (`liquidd serve --route`): backend
// spec parsing, the FNV-affinity pick with forward-scan failover, the
// fingerprint routing key, and an end-to-end two-backend deployment —
// loads broadcast, evals route with affinity, a backend drain mid-run
// fails over to the survivor (warm, thanks to the broadcast), and the
// router itself drains cleanly.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "ld/serve/instance_cache.hpp"
#include "ld/serve/protocol.hpp"
#include "ld/serve/server.hpp"
#include "ld/serve/shard_router.hpp"
#include "support/json.hpp"
#include "support/net.hpp"

namespace {

namespace serve = ld::serve;
namespace net = ld::support::net;
namespace json = ld::support::json;

std::string socket_path(const std::string& tag) {
    return ::testing::TempDir() + "/ld_rt_" + tag + ".sock";
}

// Units --------------------------------------------------------------------

TEST(ShardRouterUnits, ParseBackendSpecAcceptsAllFourShapes) {
    const serve::BackendSpec unix_spec = serve::parse_backend_spec("unix:/tmp/a.sock");
    EXPECT_EQ(unix_spec.unix_socket, "/tmp/a.sock");
    EXPECT_EQ(unix_spec.tcp_port, 0);
    EXPECT_EQ(unix_spec.display, "unix:/tmp/a.sock");

    const serve::BackendSpec tcp_spec = serve::parse_backend_spec("tcp:8123");
    EXPECT_EQ(tcp_spec.tcp_port, 8123);
    EXPECT_TRUE(tcp_spec.unix_socket.empty());
    EXPECT_EQ(tcp_spec.display, "tcp:8123");

    const serve::BackendSpec bare_port = serve::parse_backend_spec("9001");
    EXPECT_EQ(bare_port.tcp_port, 9001);

    const serve::BackendSpec bare_path = serve::parse_backend_spec("/run/b.sock");
    EXPECT_EQ(bare_path.unix_socket, "/run/b.sock");
}

TEST(ShardRouterUnits, ParseBackendSpecRejectsNonsense) {
    EXPECT_THROW(serve::parse_backend_spec(""), net::NetError);
    EXPECT_THROW(serve::parse_backend_spec("unix:"), net::NetError);
    EXPECT_THROW(serve::parse_backend_spec("tcp:"), net::NetError);
    EXPECT_THROW(serve::parse_backend_spec("tcp:zero"), net::NetError);
    EXPECT_THROW(serve::parse_backend_spec("tcp:0"), net::NetError);
    EXPECT_THROW(serve::parse_backend_spec("tcp:70000"), net::NetError);
    EXPECT_THROW(serve::parse_backend_spec("0"), net::NetError);
}

TEST(ShardRouterUnits, PickBackendIsStableAndFailsOverForward) {
    const std::vector<bool> all_up{true, true, true, true};
    const std::size_t home = serve::ShardRouter::pick_backend("key-a", all_up);
    ASSERT_LT(home, all_up.size());
    // Affinity: the same key lands on the same backend every time.
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(serve::ShardRouter::pick_backend("key-a", all_up), home);
    }

    // The home backend goes unroutable: the pick scans forward to the
    // next routable index (wrapping), so every other key keeps its home.
    std::vector<bool> degraded = all_up;
    degraded[home] = false;
    const std::size_t fallback = serve::ShardRouter::pick_backend("key-a", degraded);
    EXPECT_EQ(fallback, (home + 1) % all_up.size());

    // Recovery restores the original affinity.
    EXPECT_EQ(serve::ShardRouter::pick_backend("key-a", all_up), home);

    // Nothing routable: the sentinel (size) signals "give up".
    const std::vector<bool> none{false, false, false};
    EXPECT_EQ(serve::ShardRouter::pick_backend("key-a", none), none.size());
    EXPECT_EQ(serve::ShardRouter::pick_backend("key-a", {}), 0u);
}

TEST(ShardRouterUnits, KeysSpreadAcrossBackends) {
    // Not a distribution-quality test — just that FNV-1a does not
    // degenerate to one shard for realistic fingerprint-ish keys.
    const std::vector<bool> all_up{true, true, true, true};
    std::vector<std::size_t> hits(all_up.size(), 0);
    for (int i = 0; i < 64; ++i) {
        const std::string key = "0x" + std::to_string(1000003 * (i + 1));
        ++hits[serve::ShardRouter::pick_backend(key, all_up)];
    }
    for (const std::size_t count : hits) EXPECT_GT(count, 0u);
}

serve::Request make_request(const std::string& method, json::Value params) {
    serve::Request request;
    request.id = json::Value(1.0);
    request.method = method;
    request.params = std::move(params);
    request.admitted_at = std::chrono::steady_clock::now();
    return request;
}

TEST(ShardRouterUnits, RoutingKeyUsesTheInstanceFingerprint) {
    // A request that names an instance routes by that fingerprint.
    json::Object eval;
    eval.emplace("instance", json::Value(std::string("0xabc123")));
    eval.emplace("mechanism", json::Value(std::string("threshold:1")));
    EXPECT_EQ(serve::ShardRouter::routing_key_of(
                  make_request("eval", json::Value(std::move(eval)))),
              "0xabc123");

    // instance.load routes by the fingerprint its params imply — the
    // same key its evals will use, so they land on the same shard.
    json::Object load;
    load.emplace("graph", json::Value(std::string("complete")));
    load.emplace("competencies", json::Value(std::string("uniform:0.3,0.7")));
    load.emplace("n", json::Value(40.0));
    load.emplace("alpha", json::Value(0.05));
    load.emplace("seed", json::Value(7.0));
    const std::string key = serve::ShardRouter::routing_key_of(
        make_request("instance.load", json::Value(std::move(load))));
    EXPECT_EQ(key, serve::InstanceCache::fingerprint("complete", "uniform:0.3,0.7",
                                                     40, 0.05, 7));

    // Without a seed the default (1) applies, matching the backend.
    json::Object unseeded;
    unseeded.emplace("graph", json::Value(std::string("complete")));
    unseeded.emplace("competencies", json::Value(std::string("uniform:0.3,0.7")));
    unseeded.emplace("n", json::Value(40.0));
    unseeded.emplace("alpha", json::Value(0.05));
    EXPECT_EQ(serve::ShardRouter::routing_key_of(
                  make_request("instance.load", json::Value(std::move(unseeded)))),
              serve::InstanceCache::fingerprint("complete", "uniform:0.3,0.7", 40,
                                                0.05, 1));

    // Malformed load params still produce a stable (if arbitrary) key.
    json::Object broken;
    broken.emplace("graph", json::Value(std::string("complete")));
    const json::Value broken_params(std::move(broken));
    const serve::Request broken_request = make_request("instance.load", broken_params);
    EXPECT_EQ(serve::ShardRouter::routing_key_of(broken_request),
              json::dump(broken_params));
}

// End to end ---------------------------------------------------------------

class RouterClient {
public:
    explicit RouterClient(const std::string& path)
        : socket_(net::connect_unix(path)), reader_(socket_) {
        std::string line;
        EXPECT_TRUE(reader_.read_line(line));  // handshake
        EXPECT_EQ(json::parse(line).at("schema").as_string(), serve::kSchema);
    }

    json::Value call(const std::string& body) {
        net::write_line(socket_, body);
        std::string line;
        EXPECT_TRUE(reader_.read_line(line)) << "no response to: " << body;
        return json::parse(line);
    }

private:
    net::Socket socket_;
    net::LineReader reader_;
};

std::string eval_body(int id, const std::string& fingerprint, int seed) {
    return "{\"id\": " + std::to_string(id) +
           ", \"method\": \"eval\", \"params\": {\"mechanism\": \"threshold:1\", "
           "\"instance\": \"" + fingerprint + "\", \"seed\": " +
           std::to_string(seed) + ", \"replications\": 20, \"threads\": 1}}";
}

TEST(ShardRouterEndToEnd, RoutesEvalsAndFailsOverWhenABackendDrains) {
    serve::ServerConfig backend_a_config;
    backend_a_config.unix_socket = socket_path("be_a");
    serve::Server backend_a(std::move(backend_a_config));
    backend_a.start();

    serve::ServerConfig backend_b_config;
    backend_b_config.unix_socket = socket_path("be_b");
    serve::Server backend_b(std::move(backend_b_config));
    backend_b.start();

    serve::ShardRouterConfig router_config;
    router_config.unix_socket = socket_path("router");
    router_config.backends = {serve::parse_backend_spec(backend_a.config().unix_socket),
                              serve::parse_backend_spec(backend_b.config().unix_socket)};
    router_config.health_interval = std::chrono::milliseconds(50);
    serve::ShardRouter router(std::move(router_config));
    router.start();

    RouterClient client(socket_path("router"));

    // Router health: both backends connected.
    json::Value health = client.call(R"({"id": 1, "method": "health"})");
    ASSERT_TRUE(health.at("ok").as_bool());
    EXPECT_TRUE(health.at("result").at("router").as_bool());
    {
        const json::Array& reports = health.at("result").at("backends").as_array();
        ASSERT_EQ(reports.size(), 2u);
        EXPECT_TRUE(reports[0].at("connected").as_bool());
        EXPECT_TRUE(reports[1].at("connected").as_bool());
    }

    // Load once through the router (broadcast warms both backends).
    const json::Value loaded = client.call(
        R"({"id": 2, "method": "instance.load", "params": {"graph": "complete",)"
        R"( "competencies": "uniform:0.3,0.7", "n": 40, "alpha": 0.05, "seed": 7}})");
    ASSERT_TRUE(loaded.at("ok").as_bool()) << json::dump(loaded);
    const std::string fingerprint = loaded.at("result").at("instance").as_string();

    // Evals through the router succeed, and identical requests give
    // identical gains (same backend by affinity, same seeded RNG).
    const json::Value first = client.call(eval_body(3, fingerprint, 101));
    ASSERT_TRUE(first.at("ok").as_bool()) << json::dump(first);
    const double gain = first.at("result").at("gain").as_number();
    const json::Value repeat = client.call(eval_body(4, fingerprint, 101));
    ASSERT_TRUE(repeat.at("ok").as_bool());
    EXPECT_EQ(repeat.at("result").at("gain").as_number(), gain);

    // Drain the instance's home backend.  Which of the two that is
    // depends on the fingerprint hash, so evict whichever answers: both
    // are warm (the load was broadcast), so post-drain evals must keep
    // succeeding on the survivor — that is the failover contract.
    backend_a.request_drain();
    EXPECT_EQ(backend_a.wait(), 0);

    // The router notices via reader EOF / health probes; poll until its
    // health report shows exactly one connected backend.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    int next_id = 10;
    while (true) {
        health = client.call("{\"id\": " + std::to_string(next_id++) +
                             ", \"method\": \"health\"}");
        const json::Array& reports = health.at("result").at("backends").as_array();
        int connected = 0;
        for (const json::Value& report : reports) {
            if (report.at("connected").as_bool()) ++connected;
        }
        if (connected == 1) break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    for (int i = 0; i < 4; ++i) {
        const json::Value survived =
            client.call(eval_body(100 + i, fingerprint, 202 + i));
        ASSERT_TRUE(survived.at("ok").as_bool()) << json::dump(survived);
    }
    // Deterministic replay on the survivor too.
    const json::Value again = client.call(eval_body(200, fingerprint, 101));
    ASSERT_TRUE(again.at("ok").as_bool());
    EXPECT_EQ(again.at("result").at("gain").as_number(), gain);

    // Clean router drain; the surviving backend drains after it.
    router.request_drain();
    EXPECT_EQ(router.wait(), 0);
    backend_b.request_drain();
    EXPECT_EQ(backend_b.wait(), 0);
}

TEST(ShardRouterEndToEnd, NoRoutableBackendRejectsWithOverloaded) {
    serve::ShardRouterConfig config;
    config.unix_socket = socket_path("lonely");
    // Nothing listens here; the router must degrade, not crash.
    config.backends = {serve::parse_backend_spec(socket_path("ghost"))};
    config.health_interval = std::chrono::milliseconds(100);
    serve::ShardRouter router(std::move(config));
    router.start();

    RouterClient client(socket_path("lonely"));
    const json::Value health = client.call(R"({"id": 1, "method": "health"})");
    ASSERT_TRUE(health.at("ok").as_bool());
    EXPECT_FALSE(
        health.at("result").at("backends").as_array()[0].at("connected").as_bool());

    const json::Value rejected = client.call(eval_body(2, "0xdeadbeef", 1));
    ASSERT_FALSE(rejected.at("ok").as_bool());
    EXPECT_EQ(rejected.at("error").at("code").as_string(), "overloaded");

    // Shutdown over RPC drains the router.
    const json::Value ack = client.call(R"({"id": 3, "method": "shutdown"})");
    ASSERT_TRUE(ack.at("ok").as_bool());
    EXPECT_EQ(router.wait(), 0);
}

}  // namespace
