// End-to-end smoke test: build an instance, run a mechanism, estimate gain.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/direct.hpp"

namespace {

TEST(Smoke, DirectVotingGainIsZero) {
    ld::rng::Rng rng(1);
    const auto instance = ld::experiments::complete_pc_instance(rng, 25, 0.05, 0.1, 0.2);
    ld::mech::DirectVoting direct;
    ld::election::EvalOptions opts;
    opts.replications = 16;
    const auto report = ld::election::estimate_gain(direct, instance, rng, opts);
    EXPECT_NEAR(report.gain, 0.0, 1e-12);
    EXPECT_GT(report.pd, 0.0);
}

TEST(Smoke, DelegationRunsOnCompleteGraph) {
    ld::rng::Rng rng(2);
    const auto instance = ld::experiments::complete_pc_instance(rng, 40, 0.05, 0.1, 0.2);
    ld::mech::ApprovalSizeThreshold mech(1);
    ld::election::EvalOptions opts;
    opts.replications = 32;
    const auto report = ld::election::estimate_gain(mech, instance, rng, opts);
    EXPECT_GE(report.pm.value, 0.0);
    EXPECT_LE(report.pm.value, 1.0);
    EXPECT_GT(report.mean_delegators, 0.0);
}

}  // namespace
