// Tests for the streaming graph-generation subsystem (src/gen/): the
// determinism contract (chunk size, shard partition, and thread count
// never change the generated CSR), facade/legacy equivalence, degree
// sanity for the heterogeneous families, memory-budget enforcement, spec
// parsing, and the gen.* metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "gen/chunked_csr.hpp"
#include "gen/config.hpp"
#include "gen/factory.hpp"
#include "gen/families.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "ld/cli/specs.hpp"
#include "rng/rng.hpp"
#include "support/expect.hpp"
#include "support/metrics.hpp"

namespace {

using ld::graph::Graph;
using ld::graph::Vertex;
using ld::support::ContractViolation;
namespace gen = ld::gen;
namespace g = ld::graph;

gen::GeneratorConfig base_config(gen::Family family, std::size_t n,
                                 std::uint64_t seed = 17) {
    gen::GeneratorConfig config;
    config.family = family;
    config.n = n;
    config.seed = seed;
    return config;
}

/// One representative config per family, sized for fast tests.
std::vector<gen::GeneratorConfig> representative_configs() {
    std::vector<gen::GeneratorConfig> configs;
    configs.push_back(base_config(gen::Family::Complete, 60));
    configs.push_back(base_config(gen::Family::Star, 200));
    {
        auto c = base_config(gen::Family::Gnp, 800);
        c.p = 0.01;
        configs.push_back(c);
    }
    {
        auto c = base_config(gen::Family::Gnm, 500);
        c.edges = 2000;
        configs.push_back(c);
    }
    {
        auto c = base_config(gen::Family::DOut, 400);
        c.degree = 5;
        configs.push_back(c);
    }
    {
        auto c = base_config(gen::Family::DRegular, 100);
        c.degree = 4;
        configs.push_back(c);
    }
    {
        auto c = base_config(gen::Family::BarabasiAlbert, 600);
        c.degree = 3;
        configs.push_back(c);
    }
    {
        auto c = base_config(gen::Family::WattsStrogatz, 400);
        c.degree = 6;
        c.beta = 0.2;
        configs.push_back(c);
    }
    {
        auto c = base_config(gen::Family::ChungLu, 900);
        c.gamma = 2.5;
        c.avg_degree = 6.0;
        configs.push_back(c);
    }
    {
        auto c = base_config(gen::Family::Hyperbolic, 900);
        c.gamma = 2.7;
        c.avg_degree = 8.0;
        configs.push_back(c);
    }
    {
        auto c = base_config(gen::Family::Rmat, 512);
        c.edges = 3000;
        configs.push_back(c);
    }
    return configs;
}

// ------------------------------------------------------- determinism matrix

TEST(GenDeterminism, ChunkSizeNeverChangesTheGraph) {
    for (auto config : representative_configs()) {
        config.chunk_edges = 1 << 16;
        const Graph reference = gen::generate_graph(config);
        for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                        std::size_t{251}, std::size_t{4096}}) {
            config.chunk_edges = chunk;
            EXPECT_EQ(gen::generate_graph(config), reference)
                << gen::family_name(config.family) << " chunk=" << chunk;
        }
    }
}

TEST(GenDeterminism, ThreadCountNeverChangesTheGraph) {
    for (auto config : representative_configs()) {
        config.threads = 1;
        const Graph reference = gen::generate_graph(config);
        for (const std::size_t threads :
             {std::size_t{2}, std::size_t{5}, std::size_t{0}}) {
            config.threads = threads;
            EXPECT_EQ(gen::generate_graph(config), reference)
                << gen::family_name(config.family) << " threads=" << threads;
        }
    }
}

TEST(GenDeterminism, ShardUnionEqualsUnshardedRun) {
    for (auto config : representative_configs()) {
        const Graph full = gen::generate_graph(config);
        for (const std::size_t shards : {std::size_t{2}, std::size_t{3}}) {
            g::GraphBuilder builder(config.n);
            for (std::size_t i = 0; i < shards; ++i) {
                config.shard = {i, shards};
                for (const auto& e : gen::generate_graph(config).edges()) {
                    builder.add_edge(e.u, e.v);
                }
            }
            config.shard = {};
            EXPECT_EQ(builder.build(), full)
                << gen::family_name(config.family) << " shards=" << shards;
        }
    }
}

TEST(GenDeterminism, RerunIsByteIdentical) {
    auto config = base_config(gen::Family::Hyperbolic, 700);
    config.avg_degree = 10.0;
    EXPECT_EQ(gen::generate_graph(config), gen::generate_graph(config));
    config.seed = 18;  // and a different seed differs
    const Graph other = gen::generate_graph(config);
    config.seed = 17;
    EXPECT_NE(gen::generate_graph(config), other);
}

// ------------------------------------------------- facade/legacy equivalence

TEST(GenFacade, CompleteAndStarMatchLegacyGenerators) {
    EXPECT_EQ(gen::generate_graph(base_config(gen::Family::Complete, 40)),
              g::make_complete(40));
    EXPECT_EQ(gen::generate_graph(base_config(gen::Family::Star, 40)),
              g::make_star(40));
}

TEST(GenFacade, DRegularErasedModelIsNearRegular) {
    // The streaming dregular family is an *erased* configuration model
    // (self-loops dropped, duplicate pairs collapse), so realized degrees
    // are <= d with an O(d²/n) erasure deficit — not exactly d.
    auto config = base_config(gen::Family::DRegular, 200);
    config.degree = 6;
    const Graph graph = gen::generate_graph(config);
    std::size_t degree_sum = 0;
    for (Vertex v = 0; v < graph.vertex_count(); ++v) {
        EXPECT_LE(graph.degree(v), 6u);
        degree_sum += graph.degree(v);
    }
    // Expected erasure loss per stub is O(d/n); demand at least 90% of the
    // stubs survive (far looser than the ~3% expected loss at n=200, d=6).
    EXPECT_GE(degree_sum, static_cast<std::size_t>(200 * 6 * 9 / 10));
}

TEST(GenFacade, DRegularStubPermutationIsABijection) {
    // The pairing σ(2k) ↔ σ(2k+1) covers every stub exactly once iff the
    // cycle-walked Feistel σ is a permutation of [0, n·d).
    auto config = base_config(gen::Family::DRegular, 100);
    config.degree = 8;
    config.validate();
    const gen::DRegularGen generator(config);
    const std::uint64_t stubs = 100 * 8;
    std::vector<bool> seen(stubs, false);
    for (std::uint64_t i = 0; i < stubs; ++i) {
        const std::uint64_t image = generator.permuted_stub(i);
        ASSERT_LT(image, stubs);
        EXPECT_FALSE(seen[image]) << "stub " << image << " hit twice";
        seen[image] = true;
    }
}

TEST(GenFacade, DOutDegreesAtLeastD) {
    auto config = base_config(gen::Family::DOut, 500);
    config.degree = 7;
    const Graph graph = gen::generate_graph(config);
    for (Vertex v = 0; v < graph.vertex_count(); ++v) {
        EXPECT_GE(graph.degree(v), 7u);
    }
}

// --------------------------------------------------------- family sanity

TEST(GenFamilies, GnpEdgeCountNearExpectation) {
    auto config = base_config(gen::Family::Gnp, 5000);
    config.p = 0.002;
    const Graph graph = gen::generate_graph(config);
    const double expected = 0.002 * 5000.0 * 4999.0 / 2.0;  // ~25k
    EXPECT_NEAR(static_cast<double>(graph.edge_count()), expected, 0.1 * expected);
}

TEST(GenFamilies, WattsStrogatzEdgeCountNearLattice) {
    auto config = base_config(gen::Family::WattsStrogatz, 2000);
    config.degree = 8;
    config.beta = 0.1;
    const Graph graph = gen::generate_graph(config);
    // n*k/2 lattice edges minus the few rewiring collisions.
    EXPECT_NEAR(static_cast<double>(graph.edge_count()), 2000.0 * 8 / 2, 200.0);
}

TEST(GenFamilies, BarabasiAlbertGrowsHubs) {
    auto config = base_config(gen::Family::BarabasiAlbert, 20000);
    config.degree = 4;
    const Graph graph = gen::generate_graph(config);
    const auto stats = g::degree_stats(graph);
    EXPECT_NEAR(stats.mean, 8.0, 1.0);         // ~2m per vertex
    EXPECT_GT(stats.max, 10 * stats.mean);     // heavy tail
}

/// Least-squares slope of log ccdf vs log degree over [lo, hi] — the
/// empirical tail exponent is -(slope) - ... for ccdf ~ d^-(tau-1) the
/// fitted slope estimates -(tau - 1).
double ccdf_slope(const Graph& graph, std::size_t lo, std::size_t hi) {
    std::vector<std::size_t> degrees(graph.vertex_count());
    for (Vertex v = 0; v < graph.vertex_count(); ++v) degrees[v] = graph.degree(v);
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    std::size_t points = 0;
    for (std::size_t d = lo; d <= hi; d *= 2) {
        const auto count = static_cast<double>(
            std::count_if(degrees.begin(), degrees.end(),
                          [d](std::size_t deg) { return deg >= d; }));
        if (count <= 0) break;
        const double x = std::log(static_cast<double>(d));
        const double y = std::log(count / static_cast<double>(degrees.size()));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++points;
    }
    EXPECT_GE(points, 3u) << "degenerate tail: not enough ccdf points";
    const double p = static_cast<double>(points);
    return (p * sxy - sx * sy) / (p * sxx - sx * sx);
}

TEST(GenFamilies, ChungLuPowerLawTail) {
    auto config = base_config(gen::Family::ChungLu, 100000);
    config.gamma = 2.5;
    config.avg_degree = 10.0;
    const Graph graph = gen::generate_graph(config);
    const auto stats = g::degree_stats(graph);
    EXPECT_NEAR(stats.mean, 10.0, 1.5);
    // ccdf ~ d^-(gamma-1): slope -(1.5) within a generous sampling tolerance.
    EXPECT_NEAR(ccdf_slope(graph, 16, 256), -1.5, 0.5);
}

TEST(GenFamilies, ChungLuMaxWeightCapBoundsDegrees) {
    auto config = base_config(gen::Family::ChungLu, 50000);
    config.gamma = 2.5;
    config.avg_degree = 8.0;
    config.max_weight = 25.0;  // expected degree of every vertex <= 25
    const Graph graph = gen::generate_graph(config);
    const auto stats = g::degree_stats(graph);
    // Poisson(25) tail: exceeding 60 anywhere would be a ~6-sigma event.
    EXPECT_LE(stats.max, 60u);
}

TEST(GenFamilies, HyperbolicPowerLawTailAndMeanDegree) {
    auto config = base_config(gen::Family::Hyperbolic, 100000);
    config.gamma = 2.5;
    config.avg_degree = 10.0;
    const Graph graph = gen::generate_graph(config);
    const auto stats = g::degree_stats(graph);
    EXPECT_NEAR(stats.mean, 10.0, 2.0);
    EXPECT_NEAR(ccdf_slope(graph, 16, 256), -1.5, 0.5);
}

TEST(GenFamilies, RmatIsSkewed) {
    auto config = base_config(gen::Family::Rmat, 16384);
    config.edges = 100000;
    const Graph graph = gen::generate_graph(config);
    const auto stats = g::degree_stats(graph);
    EXPECT_GT(stats.max, 20 * stats.mean);  // 0.57 corner concentrates mass
    EXPECT_LE(graph.edge_count(), 100000u);  // draws minus loops/duplicates
}

// ------------------------------------------------------------ memory budget

TEST(GenBudget, EstimatePreCheckRejectsQuadraticFamilies) {
    auto config = base_config(gen::Family::Complete, 100000);
    config.memory_budget_bytes = 64 << 20;
    EXPECT_THROW(gen::generate_graph(config), ContractViolation);
}

TEST(GenBudget, GenerousBudgetPasses) {
    auto config = base_config(gen::Family::Gnp, 2000);
    config.p = 0.005;
    config.memory_budget_bytes = 256 << 20;
    EXPECT_EQ(gen::generate_graph(config).vertex_count(), 2000u);
}

// ----------------------------------------------------------- config errors

TEST(GenConfig, ValidateRejectsBadParameters) {
    EXPECT_THROW(gen::generate_graph(base_config(gen::Family::Gnp, 0)),
                 ContractViolation);  // n == 0
    {
        auto c = base_config(gen::Family::Gnp, 10);
        c.p = 1.5;
        EXPECT_THROW(gen::generate_graph(c), ContractViolation);
    }
    {
        auto c = base_config(gen::Family::DRegular, 5);
        c.degree = 3;  // n*d odd
        EXPECT_THROW(gen::generate_graph(c), ContractViolation);
    }
    {
        auto c = base_config(gen::Family::ChungLu, 10);
        c.gamma = 2.0;  // needs > 2
        EXPECT_THROW(gen::generate_graph(c), ContractViolation);
    }
    {
        auto c = base_config(gen::Family::Gnp, 10);
        c.p = 0.5;
        c.shard = {3, 3};  // index must be < count
        EXPECT_THROW(gen::generate_graph(c), ContractViolation);
    }
}

// ------------------------------------------------------------- spec parsing

TEST(GenSpecs, ParsesFacadeHeads) {
    EXPECT_TRUE(ld::cli::is_generator_spec("cl:2.5,8"));
    EXPECT_TRUE(ld::cli::is_generator_spec("hyper:2.7,12"));
    EXPECT_TRUE(ld::cli::is_generator_spec("girg:2.7,12,50"));
    EXPECT_TRUE(ld::cli::is_generator_spec("rmat:1000"));
    EXPECT_TRUE(ld::cli::is_generator_spec("gen:gnp:0.01"));
    EXPECT_FALSE(ld::cli::is_generator_spec("er:0.01"));
    EXPECT_FALSE(ld::cli::is_generator_spec("complete"));

    const auto cl = ld::cli::parse_generator_spec("cl:2.5,8", 1000, 5);
    EXPECT_EQ(cl.family, gen::Family::ChungLu);
    EXPECT_EQ(cl.n, 1000u);
    EXPECT_EQ(cl.seed, 5u);
    EXPECT_DOUBLE_EQ(cl.gamma, 2.5);
    EXPECT_DOUBLE_EQ(cl.avg_degree, 8.0);

    const auto girg = ld::cli::parse_generator_spec("girg:2.7,12,50", 1000, 5);
    EXPECT_EQ(girg.family, gen::Family::Hyperbolic);
    EXPECT_DOUBLE_EQ(girg.max_weight, 50.0);

    const auto rmat = ld::cli::parse_generator_spec("rmat:5000,0.5,0.2,0.2", 256, 5);
    EXPECT_EQ(rmat.family, gen::Family::Rmat);
    EXPECT_EQ(rmat.edges, 5000u);
    EXPECT_DOUBLE_EQ(rmat.rmat_a, 0.5);

    // gen:er is accepted as an alias for gnp.
    EXPECT_EQ(ld::cli::parse_generator_spec("gen:er:0.01", 100, 1).family,
              gen::Family::Gnp);
}

TEST(GenSpecs, RejectsMalformedSpecs) {
    EXPECT_THROW(ld::cli::parse_generator_spec("gen:nosuch:1", 100, 1),
                 ld::cli::SpecError);
    EXPECT_THROW(ld::cli::parse_generator_spec("cl:2.5", 100, 1), ld::cli::SpecError);
    EXPECT_THROW(ld::cli::parse_generator_spec("rmat:10,0.5", 100, 1),
                 ld::cli::SpecError);
    EXPECT_THROW(ld::cli::parse_generator_spec("gen:complete:3", 100, 1),
                 ld::cli::SpecError);
    EXPECT_THROW(ld::cli::parse_generator_spec("gen:ws:junk,0.1", 100, 1),
                 ld::cli::SpecError);
}

TEST(GenSpecs, MakeGraphRoutesThroughFacade) {
    ld::rng::Rng rng(3);
    const Graph graph = ld::cli::make_graph("gen:complete", 30, rng);
    EXPECT_EQ(graph, g::make_complete(30));
    ld::rng::Rng rng2(3);
    const Graph cl = ld::cli::make_graph("cl:2.5,6", 500, rng2);
    EXPECT_EQ(cl.vertex_count(), 500u);
    EXPECT_GT(cl.edge_count(), 0u);
}

// ------------------------------------------------------------ plumbing bits

TEST(GenPlumbing, ChunkBufferCanonicalisesAndFlushes) {
    gen::CollectSink sink;
    gen::ChunkBuffer buffer(sink, 3);
    buffer.emit(5, 2);   // reorders to (2,5)
    buffer.emit(4, 4);   // self-loop dropped
    buffer.emit(1, 9);
    buffer.emit(0, 3);   // third edge triggers the capacity flush
    buffer.flush();      // no-op: buffer drained
    EXPECT_EQ(buffer.edges_emitted(), 3u);
    EXPECT_EQ(buffer.chunks_flushed(), 1u);
    ASSERT_EQ(sink.edges().size(), 3u);
    EXPECT_EQ(sink.edges()[0], (ld::graph::Edge{2, 5}));
}

TEST(GenPlumbing, FromCsrRejectsBrokenInvariants) {
    // Asymmetric: 0->1 without 1->0.
    EXPECT_THROW(Graph::from_csr({0, 1, 1}, {1}), ContractViolation);
    // Self-loop.
    EXPECT_THROW(Graph::from_csr({0, 1, 2}, {0, 1}), ContractViolation);
    // Valid single edge.
    const Graph ok = Graph::from_csr({0, 1, 2}, {1, 0});
    EXPECT_EQ(ok.edge_count(), 1u);
    EXPECT_TRUE(ok.has_edge(0, 1));
}

TEST(GenPlumbing, MetricsAreRecorded) {
    auto& registry = ld::support::MetricsRegistry::global();
    const auto before = registry.snapshot();
    auto config = base_config(gen::Family::Gnp, 1000);
    config.p = 0.01;
    gen::BuildStats stats;
    const Graph graph = gen::generate_graph(config, &stats);
    const auto after = registry.snapshot().since(before);
    EXPECT_EQ(after.counter_value("gen.edges_emitted"), stats.edges_emitted);
    EXPECT_GE(after.counter_value("gen.chunks"), 1u);
    EXPECT_GT(after.gauge_value("gen.csr_peak_bytes"), 0);
    const auto* histogram = after.find_histogram("gen.gnp.generate_seconds");
    ASSERT_NE(histogram, nullptr);
    EXPECT_GE(histogram->count, 1u);
    EXPECT_EQ(stats.unique_edges, graph.edge_count());
}

TEST(GenPlumbing, BuildStatsCountScatterPassOnce) {
    auto config = base_config(gen::Family::Complete, 50);
    gen::BuildStats stats;
    const Graph graph = gen::generate_graph(config, &stats);
    EXPECT_EQ(stats.edges_emitted, graph.edge_count());  // complete: no dups
    EXPECT_EQ(stats.unique_edges, graph.edge_count());
}

}  // namespace
