// Tests for the windowed ε-truncated tally kernels (prob/truncated.hpp)
// and the adaptive replication stopping mode (EvalOptions::target_std_error).
//
// The property suite checks the *certified* error contract: for every
// random profile, |truncated − exact| must be within the bound the kernel
// itself reports (≤ ε/2), not merely within ε of something plausible.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ld/delegation/realize.hpp"
#include "ld/election/engine.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/model/instance.hpp"
#include "prob/poisson_binomial.hpp"
#include "prob/truncated.hpp"
#include "prob/weighted_bernoulli_sum.hpp"
#include "rng/rng.hpp"
#include "support/expect.hpp"
#include "support/thread_pool.hpp"
#include "ld/experiments/workloads.hpp"

namespace {

using ld::prob::ConvolveScratch;
using ld::prob::PoissonBinomial;
using ld::prob::TruncatedPoissonBinomial;
using ld::prob::WeightedBernoulliSum;
using ld::prob::truncated_weighted_majority;
using ld::support::ContractViolation;

// Floating-point slack on top of the certified bound: the truncated and
// exact kernels accumulate their tails in different orders, so the last
// few ulps may differ even when no mass was dropped.
constexpr double kFpSlack = 1e-12;

TEST(TruncatedPoissonBinomial, EpsilonZeroMatchesExactEverywhere) {
    const std::vector<double> probs{0.2, 0.5, 0.8, 0.35, 0.6, 0.9, 0.1};
    const TruncatedPoissonBinomial tr(probs, 0.0);
    const PoissonBinomial pb(probs);
    EXPECT_EQ(tr.certified_error(), 0.0);
    for (std::size_t k = 0; k <= probs.size(); ++k) {
        EXPECT_NEAR(tr.pmf(k), pb.pmf(k), 1e-15) << "k=" << k;
    }
    EXPECT_NEAR(tr.majority_probability(), pb.majority_probability(), 1e-15);
    EXPECT_NEAR(tr.mean(), pb.mean(), 1e-12);
    EXPECT_NEAR(tr.variance(), pb.variance(), 1e-12);
}

TEST(TruncatedPoissonBinomial, DroppedMassStaysInsideBudget) {
    ld::rng::Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 20 + static_cast<std::size_t>(rng.next_below(200));
        std::vector<double> probs(n);
        for (auto& p : probs) p = rng.next_double();
        const double eps = trial % 2 == 0 ? 1e-9 : 1e-12;
        const TruncatedPoissonBinomial tr(probs, eps);
        const PoissonBinomial pb(probs);
        EXPECT_LE(tr.certified_error(), eps);
        // The truncated pmf is a pointwise sub-measure of the exact pmf.
        for (std::size_t k = 0; k <= n; ++k) {
            EXPECT_LE(tr.pmf(k), pb.pmf(k) + 1e-15) << "k=" << k;
        }
        // Any tail query lands within the certified deficit.
        for (double t : {static_cast<double>(n) / 2.0, tr.mean(), 3.0}) {
            const double exact = pb.tail_above(t);
            const double trunc = tr.tail_above(t);
            EXPECT_LE(exact - trunc, tr.certified_error() + kFpSlack) << "t=" << t;
            EXPECT_LE(trunc - exact, kFpSlack) << "t=" << t;
        }
        // The window actually shrinks for small ε on wide instances.
        EXPECT_LE(tr.window_width(), n + 1);
    }
}

TEST(TruncatedPoissonBinomial, RejectsBadEpsilon) {
    const std::vector<double> probs{0.5};
    EXPECT_THROW(TruncatedPoissonBinomial(probs, -0.1), ContractViolation);
    EXPECT_THROW(TruncatedPoissonBinomial(probs, 1.0), ContractViolation);
}

TEST(TruncatedWeightedMajority, PropertyAgainstExactDP) {
    // Randomized profiles: heterogeneous weights (including zeros =
    // abstentions), competencies across [0, 1].  The certified interval
    // must always contain the exact majority probability.
    ld::rng::Rng rng(7);
    ConvolveScratch scratch;
    double worst_gap = 0.0;
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t m = 1 + static_cast<std::size_t>(rng.next_below(40));
        std::vector<std::uint64_t> weights(m);
        std::vector<double> probs(m);
        for (std::size_t i = 0; i < m; ++i) {
            weights[i] = rng.next_below(8);  // 0 = abstention, up to 7 votes
            probs[i] = rng.next_double();
        }
        const double eps = trial % 3 == 0 ? 0.0 : (trial % 3 == 1 ? 1e-12 : 1e-9);
        const auto tally = truncated_weighted_majority(weights, probs, eps, scratch);
        const WeightedBernoulliSum exact(weights, probs);
        const double exact_p = exact.majority_probability();
        EXPECT_LE(tally.error_bound, eps / 2.0 + 1e-18);
        const double gap = std::abs(tally.tail - exact_p);
        worst_gap = std::max(worst_gap, gap);
        EXPECT_LE(gap, tally.error_bound + kFpSlack)
            << "trial=" << trial << " eps=" << eps;
        EXPECT_EQ(tally.total_weight, exact.total_weight());
    }
    // Acceptance criterion: max |ΔP| stays at or below 1e-9 overall.
    EXPECT_LE(worst_gap, 1e-9);
}

TEST(TruncatedWeightedMajority, DegenerateProfiles) {
    ConvolveScratch scratch;
    // Nobody votes at all: W = 0, threshold 0, no mass above it.
    {
        const auto tally = truncated_weighted_majority(
            std::vector<std::uint64_t>{0, 0, 0}, std::vector<double>{0.2, 0.9, 0.5},
            1e-9, scratch);
        EXPECT_EQ(tally.total_weight, 0u);
        EXPECT_NEAR(tally.tail, 0.0, 1e-15);
        EXPECT_LE(tally.error_bound, 1e-9);
    }
    // Empty profile.
    {
        const auto tally = truncated_weighted_majority(
            std::vector<std::uint64_t>{}, std::vector<double>{}, 0.0, scratch);
        EXPECT_EQ(tally.total_weight, 0u);
        EXPECT_NEAR(tally.tail, 0.0, 1e-15);
        EXPECT_EQ(tally.error_bound, 0.0);
    }
    // Dictator: one sink with all the weight.
    {
        const auto tally = truncated_weighted_majority(
            std::vector<std::uint64_t>{9}, std::vector<double>{0.75}, 1e-12, scratch);
        EXPECT_NEAR(tally.tail, 0.75, 1e-12);
    }
    // Deterministic voters (p = 0 and p = 1) and an exact tie that loses.
    {
        const auto tally = truncated_weighted_majority(
            std::vector<std::uint64_t>{2, 2}, std::vector<double>{1.0, 0.0}, 0.0,
            scratch);
        EXPECT_NEAR(tally.tail, 0.0, 1e-15);  // 2 of 4 is a tie: loses
    }
    // Mismatched spans and bad epsilon are contract violations.
    EXPECT_THROW(truncated_weighted_majority(std::vector<std::uint64_t>{1},
                                             std::vector<double>{0.5, 0.5}, 0.0,
                                             scratch),
                 ContractViolation);
    EXPECT_THROW(truncated_weighted_majority(std::vector<std::uint64_t>{1},
                                             std::vector<double>{0.5}, 1.5, scratch),
                 ContractViolation);
}

TEST(TruncatedWeightedMajority, WindowShrinksOnLargeUnitProfiles) {
    // 4000 unit-weight voters: the exact DP window is 4001 wide; the
    // truncated one should retire everything far from the threshold and
    // stay within a few hundred entries (O(σ·√log(1/ε)), σ ≈ 31).
    const std::size_t n = 4000;
    std::vector<std::uint64_t> weights(n, 1);
    std::vector<double> probs(n, 0.51);
    ConvolveScratch scratch;
    const auto tally = truncated_weighted_majority(weights, probs, 1e-12, scratch);
    EXPECT_LT(tally.max_window, n / 4);
    const WeightedBernoulliSum exact(weights, probs);
    EXPECT_NEAR(tally.tail, exact.majority_probability(),
                tally.error_bound + kFpSlack);
}

TEST(TruncatedTallyRoute, MatchesExactTallyOnElectionOutcomes) {
    // End-to-end through the election layer: truncated_correct_probability
    // against exact_correct_probability on realized delegation graphs.
    ld::rng::Rng rng(21);
    const auto inst = ld::experiments::complete_pc_instance(rng, 301, 0.05, 0.01, 0.3);
    const ld::mech::ApprovalSizeThreshold mech(1);
    ld::election::TallyScratch scratch;
    for (int r = 0; r < 20; ++r) {
        const auto outcome = ld::delegation::realize(mech, inst, rng);
        const double exact =
            ld::election::exact_correct_probability(outcome, inst.competencies(), scratch);
        const double truncated = ld::election::truncated_correct_probability(
            outcome, inst.competencies(), 1e-12, scratch);
        EXPECT_NEAR(truncated, exact, 1e-12 / 2.0 + kFpSlack) << "r=" << r;
    }
}

TEST(AdaptiveStopping, DeterministicForFixedSeedAndThreads) {
    ld::rng::Rng rng_a(33), rng_b(33);
    const auto inst = [&] {
        ld::rng::Rng build(5);
        return ld::experiments::complete_pc_instance(build, 101, 0.05, 0.02, 0.3);
    }();
    const ld::mech::ApprovalSizeThreshold mech(1);
    ld::election::EvalOptions opts;
    opts.target_std_error = 2e-3;
    opts.adaptive_batch = 32;
    opts.max_replications = 4000;
    opts.threads = 3;
    ld::support::ThreadPool pool_a(3), pool_b(3);
    ld::election::ReplicationEngine engine_a(pool_a), engine_b(pool_b);
    opts.engine = &engine_a;
    const auto a = ld::election::estimate_correct_probability(mech, inst, rng_a, opts);
    opts.engine = &engine_b;
    const auto b = ld::election::estimate_correct_probability(mech, inst, rng_b, opts);
    // Bit-identical, not merely close: same stopping point, same value.
    EXPECT_EQ(a.replications, b.replications);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.std_error, b.std_error);
    // It actually stopped adaptively: before the cap, at a batch multiple,
    // with the target met.
    EXPECT_LT(a.replications, opts.max_replications);
    EXPECT_EQ(a.replications % opts.adaptive_batch, 0u);
    EXPECT_LE(a.std_error, opts.target_std_error);
}

TEST(AdaptiveStopping, HonorsTheReplicationCap) {
    ld::rng::Rng rng(44);
    const auto inst = [&] {
        ld::rng::Rng build(6);
        return ld::experiments::complete_pc_instance(build, 101, 0.05, 0.02, 0.3);
    }();
    const ld::mech::ApprovalSizeThreshold mech(1);
    ld::election::EvalOptions opts;
    opts.target_std_error = 1e-9;  // unreachable
    opts.adaptive_batch = 16;
    opts.max_replications = 96;
    const auto est = ld::election::estimate_correct_probability(mech, inst, rng, opts);
    EXPECT_EQ(est.replications, opts.max_replications);
    EXPECT_GT(est.std_error, opts.target_std_error);
}

TEST(AdaptiveStopping, ZeroVarianceStopsAfterTwoBatches) {
    // A direct-voting mechanism on a fixed instance: every replication
    // yields the same P^M, so SE hits 0 as soon as two reps exist — but
    // never on the first batch (one sample has no standard error).
    ld::rng::Rng rng(55);
    const auto inst = [&] {
        ld::rng::Rng build(7);
        return ld::experiments::complete_pc_instance(build, 51, 0.05, 0.02, 0.3);
    }();
    const ld::mech::ApprovalSizeThreshold mech(1000);  // unreachable: nobody delegates
    ld::election::EvalOptions opts;
    opts.target_std_error = 1e-6;
    opts.adaptive_batch = 1;
    opts.max_replications = 100;
    const auto est = ld::election::estimate_correct_probability(mech, inst, rng, opts);
    EXPECT_EQ(est.replications, 2u);
    EXPECT_EQ(est.std_error, 0.0);
}

TEST(AdaptiveStopping, AdaptiveMatchesFixedPrefixStreams) {
    // With the same seed, the adaptive run's first fixed-count worth of
    // draws comes from the same RNG streams as a fixed run — the adaptive
    // mode changes *when to stop*, not *what is sampled*.  Run adaptive
    // with a cap equal to a fixed count and an unreachable target: the
    // estimates must coincide exactly.
    ld::rng::Rng rng_fixed(66), rng_adaptive(66);
    const auto inst = [&] {
        ld::rng::Rng build(8);
        return ld::experiments::complete_pc_instance(build, 101, 0.05, 0.02, 0.3);
    }();
    const ld::mech::ApprovalSizeThreshold mech(1);
    ld::support::ThreadPool pool_a(2), pool_b(2);
    ld::election::ReplicationEngine engine_a(pool_a), engine_b(pool_b);

    ld::election::EvalOptions fixed;
    fixed.replications = 128;
    fixed.threads = 2;
    fixed.engine = &engine_a;

    ld::election::EvalOptions adaptive;
    adaptive.target_std_error = 1e-12;  // unreachable: runs to the cap
    adaptive.adaptive_batch = 128;      // one round == the fixed count
    adaptive.max_replications = 128;
    adaptive.threads = 2;
    adaptive.engine = &engine_b;

    const auto a = ld::election::estimate_correct_probability(mech, inst, rng_fixed, fixed);
    const auto b =
        ld::election::estimate_correct_probability(mech, inst, rng_adaptive, adaptive);
    EXPECT_EQ(a.replications, b.replications);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.std_error, b.std_error);
}

TEST(PoissonBinomialSatellites, CdfAndTailAreConsistentWithPmf) {
    ld::rng::Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + static_cast<std::size_t>(rng.next_below(64));
        std::vector<double> probs(n);
        for (auto& p : probs) p = rng.next_double();
        const PoissonBinomial pb(probs);
        double prefix = 0.0;
        for (std::size_t k = 0; k <= n; ++k) {
            prefix += pb.pmf(k);
            EXPECT_NEAR(pb.cdf(k), std::min(prefix, 1.0), 1e-12) << "k=" << k;
            // P[X <= k] + P[X > k] == 1 with O(1) lookups on both sides.
            EXPECT_NEAR(pb.cdf(k) + pb.tail_above(static_cast<double>(k)), 1.0, 1e-12);
        }
        EXPECT_NEAR(pb.tail_above(-1.0), 1.0, 1e-12);
        EXPECT_NEAR(pb.tail_above(static_cast<double>(n)), 0.0, 1e-15);
        EXPECT_NEAR(pb.tail_above(static_cast<double>(n) + 7.5), 0.0, 1e-15);
        // Fractional thresholds: P[X > 1.5] == P[X >= 2].
        if (n >= 2) {
            EXPECT_NEAR(pb.tail_above(1.5), 1.0 - pb.cdf(1), 1e-12);
        }
    }
}

TEST(PoissonBinomialSatellites, PmfSpanIsTheRenamedAccessor) {
    const std::vector<double> probs{0.25, 0.5};
    const PoissonBinomial pb(probs);
    const auto pmf = pb.pmf_span();
    ASSERT_EQ(pmf.size(), 3u);
    EXPECT_NEAR(pmf[0], 0.75 * 0.5, 1e-15);
    EXPECT_NEAR(pmf[2], 0.25 * 0.5, 1e-15);
}

}  // namespace
