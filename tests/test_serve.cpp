// Tests for the serve subsystem: liquidd.rpc.v1 parsing and rendering,
// router method dispatch and error mapping, the CLI-parity contract
// (served evals bit-identical to the one-shot paths), deadline and
// admission-control semantics, the instance cache, graceful drain over a
// real Unix socket, the SignalDrain helper, and the subcommand dispatch
// the serve CLI hangs off.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ld/cli/runner.hpp"
#include "ld/cli/specs.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/model/instance.hpp"
#include "ld/serve/server.hpp"
#include "prob/convolve.hpp"
#include "support/build_info.hpp"
#include "support/cpu_features.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/net.hpp"
#include "support/signal_drain.hpp"

namespace {

namespace serve = ld::serve;
namespace net = ld::support::net;
namespace json = ld::support::json;
using serve::ErrorCode;
using serve::Request;

constexpr const char* kGraph = "complete";
constexpr const char* kCompetencies = "uniform:0.3,0.7";
constexpr const char* kMechanism = "threshold:1";
constexpr std::size_t kN = 40;
constexpr double kAlpha = 0.05;
constexpr std::uint64_t kSeed = 7;
constexpr std::size_t kReps = 30;

Request make_request(const std::string& method, json::Object params) {
    Request request;
    request.id = json::Value(1.0);
    request.method = method;
    request.params = json::Value(std::move(params));
    request.admitted_at = std::chrono::steady_clock::now();
    return request;
}

json::Object eval_params() {
    json::Object params;
    params.emplace("mechanism", json::Value(std::string(kMechanism)));
    params.emplace("graph", json::Value(std::string(kGraph)));
    params.emplace("competencies", json::Value(std::string(kCompetencies)));
    params.emplace("n", json::Value(static_cast<double>(kN)));
    params.emplace("alpha", json::Value(kAlpha));
    params.emplace("seed", json::Value(static_cast<double>(kSeed)));
    params.emplace("replications", json::Value(static_cast<double>(kReps)));
    params.emplace("threads", json::Value(1.0));
    return params;
}

json::Value call(serve::Router& router, const std::string& method,
                 json::Object params) {
    return json::parse(router.handle(make_request(method, std::move(params))));
}

/// The one-shot CLI path, verbatim: one RNG seeds the graph, then the
/// competencies, then the replications.
ld::election::GainReport direct_inline_eval() {
    ld::rng::Rng rng(kSeed);
    auto graph = ld::cli::make_graph(kGraph, kN, rng);
    auto competencies =
        ld::cli::make_competencies(kCompetencies, graph.vertex_count(), rng);
    const ld::model::Instance instance(std::move(graph), std::move(competencies),
                                       kAlpha);
    const auto mechanism = ld::cli::make_mechanism(kMechanism);
    ld::election::EvalOptions eval;
    eval.replications = kReps;
    eval.threads = 1;
    return ld::election::estimate_gain(*mechanism, instance, rng, eval);
}

// Protocol ----------------------------------------------------------------

TEST(ServeProtocol, ParsesFullRequest) {
    const auto now = std::chrono::steady_clock::now();
    const Request request = serve::parse_request(
        R"({"id": "a7", "method": "eval", "params": {"n": 3}, "deadline_ms": 250})",
        now);
    EXPECT_EQ(request.id.as_string(), "a7");
    EXPECT_EQ(request.method, "eval");
    EXPECT_EQ(request.params.at("n").as_number(), 3.0);
    ASSERT_TRUE(request.deadline.has_value());
    EXPECT_EQ(*request.deadline, now + std::chrono::milliseconds(250));
    EXPECT_FALSE(request.expired(now));
    EXPECT_TRUE(request.expired(now + std::chrono::milliseconds(251)));
}

TEST(ServeProtocol, RejectsMalformedRequests) {
    const auto now = std::chrono::steady_clock::now();
    const auto expect_bad = [&](const std::string& line) {
        try {
            serve::parse_request(line, now);
            FAIL() << "expected ProtocolError for: " << line;
        } catch (const serve::ProtocolError& e) {
            EXPECT_EQ(e.code(), ErrorCode::BadRequest) << line;
        }
    };
    expect_bad("not json at all");
    expect_bad(R"([1, 2, 3])");
    expect_bad(R"({"id": 1})");                                  // no method
    expect_bad(R"({"id": 1, "method": ""})");                    // empty method
    expect_bad(R"({"id": true, "method": "health"})");           // bool id
    expect_bad(R"({"id": 1, "method": "health", "params": 4})"); // non-object params
    expect_bad(R"({"id": 1, "method": "health", "deadline_ms": -5})");
    expect_bad(R"({"id": 1, "method": "health", "deadline_ms": "soon"})");
}

TEST(ServeProtocol, IdOfLineIsBestEffort) {
    EXPECT_EQ(serve::id_of_line(R"({"id": 42, "method": false})").as_number(), 42.0);
    EXPECT_TRUE(serve::id_of_line("garbage").is_null());
}

TEST(ServeProtocol, HandshakeNamesSchemaBuildAndMethods) {
    const json::Value handshake = json::parse(serve::render_handshake());
    EXPECT_EQ(handshake.at("schema").as_string(), serve::kSchema);
    EXPECT_EQ(handshake.at("build").at("git_describe").as_string(),
              ld::support::build_info().git_describe);
    const json::Array& methods = handshake.at("methods").as_array();
    std::vector<std::string> names;
    for (const auto& m : methods) names.push_back(m.as_string());
    EXPECT_NE(std::find(names.begin(), names.end(), "eval"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "shutdown"), names.end());
}

TEST(ServeProtocol, RenderedResponsesRoundTrip) {
    json::Object result;
    result.emplace("x", json::Value(1.5));
    const json::Value ok = json::parse(serve::render_result(json::Value(3.0), result));
    EXPECT_TRUE(ok.at("ok").as_bool());
    EXPECT_EQ(ok.at("id").as_number(), 3.0);
    EXPECT_EQ(ok.at("result").at("x").as_number(), 1.5);

    const json::Value err = json::parse(
        serve::render_error(json::Value(std::string("q")), ErrorCode::Overloaded, "full"));
    EXPECT_FALSE(err.at("ok").as_bool());
    EXPECT_EQ(err.at("error").at("code").as_string(), "overloaded");
    EXPECT_EQ(err.at("error").at("message").as_string(), "full");
}

// Router ------------------------------------------------------------------

TEST(ServeRouter, UnknownMethodAndValidation) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);

    EXPECT_EQ(call(router, "nope", {}).at("error").at("code").as_string(),
              "unknown_method");

    json::Object no_mechanism;
    no_mechanism.emplace("graph", json::Value(std::string(kGraph)));
    EXPECT_EQ(call(router, "eval", std::move(no_mechanism))
                  .at("error")
                  .at("code")
                  .as_string(),
              "bad_request");

    auto zero_reps = eval_params();
    zero_reps.erase("replications");
    zero_reps.emplace("replications", json::Value(0.0));
    EXPECT_EQ(call(router, "eval", std::move(zero_reps))
                  .at("error")
                  .at("code")
                  .as_string(),
              "bad_request");

    // Cycle-capable mechanisms need an explicit discard_cycles, exactly
    // like the CLI's --discard-cycles requirement.
    auto noisy = eval_params();
    noisy.erase("mechanism");
    noisy.emplace("mechanism", json::Value(std::string("noisy:1,0.2")));
    EXPECT_EQ(call(router, "eval", std::move(noisy)).at("error").at("code").as_string(),
              "bad_request");
}

TEST(ServeRouter, InstanceLoadInfoAndCacheHits) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);

    json::Object load;
    load.emplace("graph", json::Value(std::string(kGraph)));
    load.emplace("competencies", json::Value(std::string(kCompetencies)));
    load.emplace("n", json::Value(static_cast<double>(kN)));
    load.emplace("alpha", json::Value(kAlpha));
    load.emplace("seed", json::Value(static_cast<double>(kSeed)));

    const json::Value first = call(router, "instance.load", load);
    ASSERT_TRUE(first.at("ok").as_bool()) << json::dump(first);
    EXPECT_FALSE(first.at("result").at("cached").as_bool());
    const std::string fingerprint = first.at("result").at("instance").as_string();
    EXPECT_EQ(fingerprint,
              serve::InstanceCache::fingerprint(kGraph, kCompetencies, kN, kAlpha, kSeed));

    const json::Value second = call(router, "instance.load", load);
    EXPECT_TRUE(second.at("result").at("cached").as_bool());
    EXPECT_EQ(second.at("result").at("instance").as_string(), fingerprint);
    EXPECT_EQ(cache.size(), 1u);

    json::Object info;
    info.emplace("instance", json::Value(fingerprint));
    const json::Value described = call(router, "instance.info", info);
    EXPECT_EQ(described.at("result").at("n").as_number(), static_cast<double>(kN));
    EXPECT_EQ(described.at("result").at("graph").as_string(), kGraph);

    json::Object missing;
    missing.emplace("instance", json::Value(std::string("0xdead")));
    EXPECT_EQ(call(router, "instance.info", std::move(missing))
                  .at("error")
                  .at("code")
                  .as_string(),
              "not_found");
    EXPECT_EQ(call(router, "eval", [&] {
                  auto params = eval_params();
                  params.erase("graph");
                  params.erase("competencies");
                  params.erase("n");
                  params.erase("alpha");
                  params.emplace("instance", json::Value(std::string("0xdead")));
                  return params;
              }())
                  .at("error")
                  .at("code")
                  .as_string(),
              "not_found");
}

TEST(ServeRouter, InlineEvalIsBitIdenticalToCliPath) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);
    const auto expected = direct_inline_eval();

    const json::Value response = call(router, "eval", eval_params());
    ASSERT_TRUE(response.at("ok").as_bool()) << json::dump(response);
    const json::Value& result = response.at("result");
    EXPECT_EQ(result.at("pd").as_number(), expected.pd);
    EXPECT_EQ(result.at("pm").as_number(), expected.pm.value);
    EXPECT_EQ(result.at("pm_stderr").as_number(), expected.pm.std_error);
    EXPECT_EQ(result.at("gain").as_number(), expected.gain);
    EXPECT_EQ(result.at("gain_ci_lo").as_number(), expected.gain_ci.lo);
    EXPECT_EQ(result.at("gain_ci_hi").as_number(), expected.gain_ci.hi);
    EXPECT_EQ(result.at("threads").as_number(), 1.0);

    // And again: a served instance is stateless across requests.
    const json::Value repeat = call(router, "eval", eval_params());
    EXPECT_EQ(repeat.at("result").at("pm").as_number(), expected.pm.value);
}

TEST(ServeRouter, CachedEvalMatchesLoadInstancePath) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);

    // The CLI --load-instance contract: a fresh RNG at `seed` drives only
    // the replications over the already-realized instance.
    bool was_hit = false;
    const auto entry = cache.load(kGraph, kCompetencies, kN, kAlpha, kSeed, &was_hit);
    ld::rng::Rng rng(kSeed);
    const auto mechanism = ld::cli::make_mechanism(kMechanism);
    ld::election::EvalOptions eval;
    eval.replications = kReps;
    eval.threads = 1;
    const auto expected =
        ld::election::estimate_gain(*mechanism, entry->instance, rng, eval);

    auto params = eval_params();
    params.erase("graph");
    params.erase("competencies");
    params.erase("n");
    params.erase("alpha");
    params.emplace("instance", json::Value(entry->fingerprint));
    const json::Value response = call(router, "eval", std::move(params));
    ASSERT_TRUE(response.at("ok").as_bool()) << json::dump(response);
    EXPECT_EQ(response.at("result").at("pm").as_number(), expected.pm.value);
    EXPECT_EQ(response.at("result").at("gain").as_number(), expected.gain);
    EXPECT_EQ(response.at("result").at("instance").as_string(), entry->fingerprint);
}

TEST(ServeRouter, ExpiredDeadlineIsRejectedBeforeExecution) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);
    Request request = make_request("health", {});
    request.deadline = request.admitted_at - std::chrono::milliseconds(1);
    const json::Value response = json::parse(router.handle(request));
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("error").at("code").as_string(), "deadline_exceeded");
}

TEST(ServeRouter, HealthReportsStatusBlock) {
    serve::InstanceCache cache;
    serve::ServeStatus status;
    status.queue_depth.store(3);
    status.connections.store(2);
    serve::Router router({}, cache, &status);
    const json::Value response = call(router, "health", {});
    EXPECT_EQ(response.at("result").at("status").as_string(), "ok");
    EXPECT_EQ(response.at("result").at("queue_depth").as_number(), 3.0);
    EXPECT_EQ(response.at("result").at("connections").as_number(), 2.0);

    status.draining.store(true);
    EXPECT_EQ(call(router, "health", {}).at("result").at("status").as_string(),
              "draining");
}

TEST(ServeRouter, MetricsMethodEmbedsBuildInfo) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);
    const json::Value response = call(router, "metrics", {});
    ASSERT_TRUE(response.at("ok").as_bool());
    const json::Value& report = response.at("result").at("report");
    EXPECT_EQ(report.at("schema").as_string(), "liquidd.metrics.v1");
    EXPECT_EQ(report.at("build").at("git_describe").as_string(),
              ld::support::build_info().git_describe);
}

// Server (no sockets) -----------------------------------------------------

TEST(ServeServer, HandleLineMapsParseErrors) {
    serve::Server server(serve::ServerConfig{});
    const json::Value response = json::parse(server.handle_line("{{{"));
    EXPECT_FALSE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("error").at("code").as_string(), "bad_request");
    EXPECT_TRUE(response.at("id").is_null());
}

TEST(ServeServer, ZeroCapacityRejectsEveryEvalButAnswersControlPlane) {
    serve::ServerConfig config;
    config.queue_capacity = 0;
    serve::Server server(std::move(config));

    const json::Value rejected = json::parse(server.handle_line(
        R"({"id": 1, "method": "eval", "params": {"mechanism": "direct"}})"));
    EXPECT_EQ(rejected.at("error").at("code").as_string(), "overloaded");

    const json::Value health =
        json::parse(server.handle_line(R"({"id": 2, "method": "health"})"));
    EXPECT_TRUE(health.at("ok").as_bool());
}

TEST(ServeServer, ShutdownRpcDrainsAndRejectsNewEvals) {
    serve::Server server(serve::ServerConfig{});
    const json::Value ack =
        json::parse(server.handle_line(R"({"id": 1, "method": "shutdown"})"));
    ASSERT_TRUE(ack.at("ok").as_bool());
    EXPECT_TRUE(server.draining());

    const json::Value rejected = json::parse(server.handle_line(
        R"({"id": 2, "method": "eval", "params": {"mechanism": "direct"}})"));
    EXPECT_EQ(rejected.at("error").at("code").as_string(), "shutting_down");
    EXPECT_EQ(server.wait(), 0);
}

// Server (Unix socket end to end) -----------------------------------------

std::string socket_path(const std::string& tag) {
    // sun_path is ~108 bytes; keep it short and unique per test.
    return ::testing::TempDir() + "/ld_" + tag + ".sock";
}

TEST(NetListener, RefusesToClobberALiveUnixSocket) {
    const std::string path = socket_path("live");
    net::Listener first = net::Listener::unix_domain(path);
    // Something answers at `path`: a second bind must fail loudly
    // instead of silently unlinking the live server's socket.
    EXPECT_THROW(net::Listener::unix_domain(path), net::NetError);
    // ... and the live listener still works afterwards.
    net::Socket probe = net::connect_unix(path);
    EXPECT_TRUE(probe.valid());
}

TEST(NetListener, ReplacesAStaleUnixSocketButNotARegularFile) {
    // A socket file nobody listens on (crashed run): bind adopts the path.
    const std::string stale = socket_path("stale");
    {
        // Simulate the crash with a raw bind that leaves the file behind.
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        ASSERT_LT(stale.size(), sizeof(address.sun_path));
        std::memcpy(address.sun_path, stale.c_str(), stale.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof address), 0);
        ::close(fd);

        net::Listener revived = net::Listener::unix_domain(stale);
        EXPECT_TRUE(revived.valid());
        net::Socket probe = net::connect_unix(stale);
        EXPECT_TRUE(probe.valid());
    }

    // A regular file at the path is never deleted.
    const std::string file = socket_path("notasock");
    { std::ofstream out(file); out << "precious"; }
    EXPECT_THROW(net::Listener::unix_domain(file), net::NetError);
    std::ifstream check(file);
    std::string contents;
    check >> contents;
    EXPECT_EQ(contents, "precious");
    ::unlink(file.c_str());
}

TEST(ServeServer, SocketSessionAndGracefulDrain) {
    serve::ServerConfig config;
    config.unix_socket = socket_path("session");
    serve::Server server(std::move(config));
    server.start();

    net::Socket client = net::connect_unix(server.config().unix_socket);
    net::LineReader reader(client);
    std::string line;
    ASSERT_TRUE(reader.read_line(line));  // server speaks first
    EXPECT_EQ(json::parse(line).at("schema").as_string(), serve::kSchema);

    json::Object load;
    load.emplace("graph", json::Value(std::string(kGraph)));
    load.emplace("competencies", json::Value(std::string(kCompetencies)));
    load.emplace("n", json::Value(static_cast<double>(kN)));
    load.emplace("alpha", json::Value(kAlpha));
    load.emplace("seed", json::Value(static_cast<double>(kSeed)));
    json::Object request;
    request.emplace("id", json::Value(1.0));
    request.emplace("method", json::Value(std::string("instance.load")));
    request.emplace("params", json::Value(std::move(load)));
    net::write_line(client, json::dump(json::Value(std::move(request))));
    ASSERT_TRUE(reader.read_line(line));
    const json::Value loaded = json::parse(line);
    ASSERT_TRUE(loaded.at("ok").as_bool()) << line;
    const std::string fingerprint = loaded.at("result").at("instance").as_string();

    // A served eval over the socket matches the in-process evaluation.
    bool was_hit = false;
    serve::InstanceCache reference_cache;
    const auto entry =
        reference_cache.load(kGraph, kCompetencies, kN, kAlpha, kSeed, &was_hit);
    ld::rng::Rng rng(kSeed);
    const auto mechanism = ld::cli::make_mechanism(kMechanism);
    ld::election::EvalOptions eval_options;
    eval_options.replications = kReps;
    eval_options.threads = 1;
    const auto expected =
        ld::election::estimate_gain(*mechanism, entry->instance, rng, eval_options);

    json::Object eval;
    eval.emplace("mechanism", json::Value(std::string(kMechanism)));
    eval.emplace("instance", json::Value(fingerprint));
    eval.emplace("seed", json::Value(static_cast<double>(kSeed)));
    eval.emplace("replications", json::Value(static_cast<double>(kReps)));
    eval.emplace("threads", json::Value(1.0));
    json::Object eval_request;
    eval_request.emplace("id", json::Value(2.0));
    eval_request.emplace("method", json::Value(std::string("eval")));
    eval_request.emplace("params", json::Value(std::move(eval)));
    net::write_line(client, json::dump(json::Value(std::move(eval_request))));
    ASSERT_TRUE(reader.read_line(line));
    const json::Value evaluated = json::parse(line);
    ASSERT_TRUE(evaluated.at("ok").as_bool()) << line;
    EXPECT_EQ(evaluated.at("result").at("pm").as_number(), expected.pm.value);
    EXPECT_EQ(evaluated.at("result").at("gain").as_number(), expected.gain);

    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
    EXPECT_FALSE(reader.read_line(line));  // connection torn down

    // The listener is gone: a fresh connect must fail.
    EXPECT_THROW(net::connect_unix(server.config().unix_socket), net::NetError);
}

TEST(ServeServer, ReapsDisconnectedClientsUnderChurn) {
    serve::ServerConfig config;
    config.unix_socket = socket_path("churn");
    serve::Server server(std::move(config));
    server.start();

    // Connect/handshake/close repeatedly: every reader thread must reap
    // itself and release its connection — a server that retained them
    // until drain would leak one fd + one thread per iteration.
    for (int i = 0; i < 25; ++i) {
        net::Socket client = net::connect_unix(server.config().unix_socket);
        net::LineReader reader(client);
        std::string line;
        ASSERT_TRUE(reader.read_line(line));  // handshake
        client.close();
    }

    // `health` reports the live-connection gauge; poll until every
    // disconnected client has been reaped.
    double connections = -1.0;
    for (int spin = 0; spin < 200; ++spin) {
        const json::Value health =
            json::parse(server.handle_line(R"({"id": 1, "method": "health"})"));
        connections = health.at("result").at("connections").as_number();
        if (connections == 0.0) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(connections, 0.0);

    // The server is still healthy: a fresh client gets a handshake.
    net::Socket again = net::connect_unix(server.config().unix_socket);
    net::LineReader reader(again);
    std::string line;
    EXPECT_TRUE(reader.read_line(line));

    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
}

TEST(ServeServer, SlowReaderIsDroppedNotHeadOfLineBlocking) {
    serve::ServerConfig config;
    config.unix_socket = socket_path("slow");
    config.write_timeout = std::chrono::milliseconds(100);
    serve::Server server(std::move(config));
    server.start();

    // A client that never reads: once its socket buffer fills, bounded
    // writes must time out and drop it instead of wedging the server.
    net::Socket stalled = net::connect_unix(server.config().unix_socket);
    json::Object params;
    params.emplace("graph", json::Value(std::string(kGraph)));
    params.emplace("competencies", json::Value(std::string(kCompetencies)));
    params.emplace("n", json::Value(static_cast<double>(kN)));
    params.emplace("alpha", json::Value(kAlpha));
    params.emplace("seed", json::Value(static_cast<double>(kSeed)));
    json::Object request;
    request.emplace("id", json::Value(1.0));
    request.emplace("method", json::Value(std::string("instance.info")));
    request.emplace("params", json::Value(std::move(params)));
    const std::string line = json::dump(json::Value(std::move(request)));
    // Flood requests without ever reading a response: the responses
    // back up until the server's bounded write times out and the
    // server shuts this connection down (our writes then fail).
    try {
        for (int i = 0; i < 20'000; ++i) net::write_line(stalled, line);
    } catch (const net::NetError&) {
        // Server dropped us (RST on the shut-down socket) — expected.
    }

    // The server must still serve other clients and drain promptly;
    // with a wedged dispatcher or reader this would hang, not pass.
    net::Socket healthy = net::connect_unix(server.config().unix_socket);
    net::LineReader reader(healthy);
    std::string response;
    EXPECT_TRUE(reader.read_line(response));  // handshake
    server.request_drain();
    EXPECT_EQ(server.wait(), 0);
}

TEST(ServeServer, DrainUnderLoadAnswersEveryAcceptedRequest) {
    serve::ServerConfig config;
    config.unix_socket = socket_path("drain");
    serve::Server server(std::move(config));
    server.start();

    net::Socket client = net::connect_unix(server.config().unix_socket);
    net::LineReader reader(client);
    std::string line;
    ASSERT_TRUE(reader.read_line(line));  // handshake

    // Burst evals, then drain immediately: each request must be answered
    // exactly once — computed if it was admitted before the drain flag,
    // rejected with shutting_down if not.  Nothing may be dropped.
    constexpr int kBurst = 6;
    for (int i = 0; i < kBurst; ++i) {
        json::Object params;
        params.emplace("mechanism", json::Value(std::string(kMechanism)));
        params.emplace("graph", json::Value(std::string(kGraph)));
        params.emplace("competencies", json::Value(std::string(kCompetencies)));
        params.emplace("n", json::Value(30.0));
        params.emplace("alpha", json::Value(kAlpha));
        params.emplace("seed", json::Value(static_cast<double>(i + 1)));
        params.emplace("replications", json::Value(20.0));
        params.emplace("threads", json::Value(1.0));
        json::Object request;
        request.emplace("id", json::Value(static_cast<double>(i + 1)));
        request.emplace("method", json::Value(std::string("eval")));
        request.emplace("params", json::Value(std::move(params)));
        net::write_line(client, json::dump(json::Value(std::move(request))));
    }
    server.request_drain();

    int answered = 0;
    int ok = 0;
    int shutting_down = 0;
    while (answered < kBurst && reader.read_line(line)) {
        const json::Value response = json::parse(line);
        ++answered;
        if (response.at("ok").as_bool()) {
            ++ok;
        } else {
            EXPECT_EQ(response.at("error").at("code").as_string(), "shutting_down")
                << line;
            ++shutting_down;
        }
    }
    EXPECT_EQ(answered, kBurst);
    EXPECT_EQ(ok + shutting_down, kBurst);
    EXPECT_EQ(server.wait(), 0);
}

// SignalDrain -------------------------------------------------------------

TEST(SignalDrain, RaisedSignalSetsTheFlagAndWakePipe) {
    ld::support::SignalDrain::reset();
    {
        ld::support::SignalDrain drain;
        EXPECT_FALSE(ld::support::SignalDrain::requested());
        ASSERT_EQ(std::raise(SIGTERM), 0);  // handled, not fatal
        EXPECT_TRUE(ld::support::SignalDrain::requested());
        char byte = 0;
        EXPECT_EQ(::read(ld::support::SignalDrain::wake_fd(), &byte, 1), 1);
    }
    ld::support::SignalDrain::reset();
}

TEST(SignalDrain, TriggerDrainsAServingServer) {
    ld::support::SignalDrain::reset();
    ld::support::SignalDrain drain;
    serve::ServerConfig config;
    config.unix_socket = socket_path("signal");
    config.drain_on_signal = true;
    serve::Server server(std::move(config));
    server.start();

    ld::support::SignalDrain::trigger();  // as if SIGTERM arrived
    EXPECT_EQ(server.wait(), 0);
    EXPECT_TRUE(server.draining());
    ld::support::SignalDrain::reset();
}

// CLI dispatch ------------------------------------------------------------

TEST(ServeCli, DispatchKnowsEverySubcommand) {
    std::ostringstream out;
    try {
        ld::cli::dispatch({"frobnicate"}, out);
        FAIL() << "expected SpecError";
    } catch (const ld::cli::SpecError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("run"), std::string::npos);
        EXPECT_NE(what.find("sweep"), std::string::npos);
        EXPECT_NE(what.find("serve"), std::string::npos);
    }
}

TEST(ServeCli, VersionPrintsBuildInfo) {
    std::ostringstream out;
    EXPECT_EQ(ld::cli::dispatch({"--version"}, out), 0);
    // Line 1: build identity.  Line 2: active tally-kernel tier, so a
    // version string alone attributes results to a lane width.
    EXPECT_EQ(out.str().find(ld::support::version_line() + "\n"), 0u);
    EXPECT_NE(out.str().find(ld::support::build_info().git_describe),
              std::string::npos);
    const std::string simd_line =
        std::string("simd: ") +
        ld::support::simd_tier_name(ld::prob::kernel_tier());
    EXPECT_NE(out.str().find(simd_line), std::string::npos);
}

TEST(ServeCli, ServeOptionsValidate) {
    EXPECT_THROW(ld::cli::parse_serve_options({}), ld::cli::SpecError);
    EXPECT_THROW(ld::cli::parse_serve_options({"--tcp", "70000"}), ld::cli::SpecError);
    EXPECT_THROW(ld::cli::parse_serve_options({"--socket", "/tmp/x", "--batch-max", "0"}),
                 ld::cli::SpecError);
    const auto options = ld::cli::parse_serve_options(
        {"--socket", "/tmp/x.sock", "--tcp", "0", "--queue-capacity", "7",
         "--deadline-ms", "1500"});
    EXPECT_EQ(*options.unix_socket, "/tmp/x.sock");
    EXPECT_EQ(*options.tcp_port, 0u);
    EXPECT_EQ(options.queue_capacity, 7u);
    EXPECT_EQ(options.deadline_ms, 1500u);

    std::ostringstream out;
    EXPECT_EQ(ld::cli::run_serve(ld::cli::parse_serve_options({"--help"}), out), 0);
    EXPECT_NE(out.str().find("--queue-capacity"), std::string::npos);
}

}  // namespace
