// Unit tests for rng/sampling.hpp — choice, shuffles, subsets, alias
// tables, reservoir sampling.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace {

using ld::rng::AliasTable;
using ld::rng::ReservoirSampler;
using ld::rng::Rng;
using ld::support::ContractViolation;

TEST(UniformIndex, RejectsEmptyRange) {
    Rng rng(1);
    EXPECT_THROW(ld::rng::uniform_index(rng, 0), ContractViolation);
}

TEST(UniformIndex, CoversTheRange) {
    Rng rng(2);
    std::set<std::size_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(ld::rng::uniform_index(rng, 5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(UniformChoice, PicksFromSpan) {
    Rng rng(3);
    const std::vector<int> items{10, 20, 30};
    for (int i = 0; i < 100; ++i) {
        const int v = ld::rng::uniform_choice<int>(rng, items);
        EXPECT_TRUE(v == 10 || v == 20 || v == 30);
    }
}

TEST(UniformReal, StaysInRange) {
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double x = ld::rng::uniform_real(rng, -2.0, 3.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Shuffle, ProducesAPermutation) {
    Rng rng(5);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    ld::rng::shuffle(rng, v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Shuffle, AllPermutationsOfThreeAppear) {
    Rng rng(6);
    std::map<std::array<int, 3>, int> counts;
    for (int trial = 0; trial < 6000; ++trial) {
        std::vector<int> v{0, 1, 2};
        ld::rng::shuffle(rng, v);
        ++counts[{v[0], v[1], v[2]}];
    }
    EXPECT_EQ(counts.size(), 6u);
    for (const auto& [perm, count] : counts) {
        EXPECT_NEAR(count, 1000, 150);  // ~5 sigma
    }
}

TEST(SampleWithoutReplacement, BasicProperties) {
    Rng rng(7);
    for (std::size_t n : {1u, 5u, 50u, 1000u}) {
        for (std::size_t k : {std::size_t{0}, std::size_t{1}, n / 2, n}) {
            const auto s = ld::rng::sample_without_replacement(rng, n, k);
            EXPECT_EQ(s.size(), k);
            EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
            EXPECT_EQ(std::set<std::size_t>(s.begin(), s.end()).size(), k);
            for (std::size_t v : s) EXPECT_LT(v, n);
        }
    }
}

TEST(SampleWithoutReplacement, KEqualsNIsFullSet) {
    Rng rng(8);
    const auto s = ld::rng::sample_without_replacement(rng, 10, 10);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(SampleWithoutReplacement, RejectsOversizedK) {
    Rng rng(9);
    EXPECT_THROW(ld::rng::sample_without_replacement(rng, 3, 4), ContractViolation);
}

TEST(SampleWithoutReplacement, IsApproximatelyUniformOverElements) {
    Rng rng(10);
    constexpr std::size_t kN = 20, kK = 5;
    constexpr int kTrials = 20000;
    std::vector<int> counts(kN, 0);
    for (int t = 0; t < kTrials; ++t) {
        for (std::size_t v : ld::rng::sample_without_replacement(rng, kN, kK)) {
            ++counts[v];
        }
    }
    const double expected = static_cast<double>(kTrials) * kK / kN;  // 5000
    for (std::size_t v = 0; v < kN; ++v) {
        EXPECT_NEAR(counts[v], expected, 0.07 * expected) << "element " << v;
    }
}

TEST(SampleWithReplacement, SizeAndRange) {
    Rng rng(11);
    const auto s = ld::rng::sample_with_replacement(rng, 4, 100);
    EXPECT_EQ(s.size(), 100u);
    for (std::size_t v : s) EXPECT_LT(v, 4u);
}

TEST(AliasTable, RejectsDegenerateWeights) {
    Rng rng(12);
    EXPECT_THROW(AliasTable(std::vector<double>{}), ContractViolation);
    EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), ContractViolation);
    EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}), ContractViolation);
}

TEST(AliasTable, NormalisesWeights) {
    AliasTable t(std::vector<double>{1.0, 3.0});
    EXPECT_NEAR(t.probability(0), 0.25, 1e-12);
    EXPECT_NEAR(t.probability(1), 0.75, 1e-12);
}

TEST(AliasTable, SamplesMatchWeights) {
    Rng rng(13);
    AliasTable t(std::vector<double>{1.0, 2.0, 3.0, 4.0});
    std::vector<int> counts(4, 0);
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) ++counts[t.sample(rng)];
    for (std::size_t v = 0; v < 4; ++v) {
        EXPECT_NEAR(static_cast<double>(counts[v]) / kDraws, (v + 1) / 10.0, 0.01);
    }
}

TEST(AliasTable, HandlesZeroWeightEntries) {
    Rng rng(14);
    AliasTable t(std::vector<double>{0.0, 1.0, 0.0});
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(t.sample(rng), 1u);
}

TEST(Reservoir, KeepsEverythingWhenStreamIsShort) {
    Rng rng(15);
    ReservoirSampler rs(10);
    for (std::size_t i = 0; i < 5; ++i) rs.offer(rng, i);
    EXPECT_EQ(rs.sample().size(), 5u);
    EXPECT_EQ(rs.stream_size(), 5u);
}

TEST(Reservoir, HoldsExactlyKFromLongStream) {
    Rng rng(16);
    ReservoirSampler rs(3);
    for (std::size_t i = 0; i < 1000; ++i) rs.offer(rng, i);
    EXPECT_EQ(rs.sample().size(), 3u);
    for (std::size_t v : rs.sample()) EXPECT_LT(v, 1000u);
}

TEST(Reservoir, IsApproximatelyUniform) {
    Rng rng(17);
    constexpr std::size_t kStream = 10;
    std::vector<int> counts(kStream, 0);
    constexpr int kTrials = 30000;
    for (int t = 0; t < kTrials; ++t) {
        ReservoirSampler rs(1);
        for (std::size_t i = 0; i < kStream; ++i) rs.offer(rng, i);
        ++counts[rs.sample().front()];
    }
    for (std::size_t v = 0; v < kStream; ++v) {
        EXPECT_NEAR(counts[v], kTrials / kStream, 300) << "element " << v;
    }
}

}  // namespace
