// The Lemma 2 proof companion: the modified independent sequence X̃
// (decorrelated_parameters) must be a stochastic lower envelope for the
// dependent recycle-sampled sum X_n.

#include <gtest/gtest.h>

#include "ld/recycle/bounds.hpp"
#include "ld/recycle/recycle_graph.hpp"
#include "ld/recycle/sampler.hpp"
#include <algorithm>
#include <cmath>

#include "prob/bounds.hpp"
#include "prob/poisson_binomial.hpp"
#include "stats/ecdf.hpp"
#include "support/expect.hpp"

namespace {

namespace recycle = ld::recycle;
using ld::recycle::RecycleGraph;
using ld::recycle::RecycleNode;
using ld::rng::Rng;

TEST(Decorrelation, LevelsMatchTheChainStructure) {
    // fresh, fresh, recycles-from-{0,1}, recycles-from-{0..2}.
    std::vector<RecycleNode> nodes{RecycleNode{1.0, 0.5, 0}, RecycleNode{1.0, 0.6, 0},
                                   RecycleNode{0.5, 0.5, 2}, RecycleNode{0.5, 0.5, 3}};
    const RecycleGraph g(std::move(nodes));
    EXPECT_EQ(g.partition_level(0), 1u);
    EXPECT_EQ(g.partition_level(1), 1u);
    EXPECT_EQ(g.partition_level(2), 2u);
    EXPECT_EQ(g.partition_level(3), 3u);
    EXPECT_EQ(g.partition_complexity(), 3u);
}

TEST(Decorrelation, FirstPartitionIsUntouched) {
    const auto g = RecycleGraph::synthetic(100, 20, 0.5, 0.6, 3);
    const auto modified = recycle::decorrelated_parameters(g, 0.3);
    ASSERT_EQ(modified.size(), 100u);
    for (std::size_t i = 0; i < g.j(); ++i) {
        EXPECT_DOUBLE_EQ(modified[i], g.expectations()[i]) << i;
    }
}

TEST(Decorrelation, DeficitGrowsWithPartitionLevel) {
    const auto g = RecycleGraph::synthetic(200, 20, 0.5, 0.6, 4);
    const double eps = 0.3;
    const auto modified = recycle::decorrelated_parameters(g, eps);
    const double unit = eps / std::cbrt(20.0);
    for (std::size_t i = 0; i < g.size(); ++i) {
        const double expected =
            std::clamp(g.expectations()[i] -
                           (static_cast<double>(g.partition_level(i)) - 1.0) * unit,
                       0.0, 1.0);
        EXPECT_NEAR(modified[i], expected, 1e-12);
    }
    EXPECT_THROW(recycle::decorrelated_parameters(g, 0.0),
                 ld::support::ContractViolation);
}

TEST(Decorrelation, ModifiedSumIsAStochasticLowerEnvelope) {
    // The proof's claim in testable form: quantiles of X_n dominate the
    // matching quantiles of the independent Poisson-binomial X̃ (up to the
    // Lemma-1 failure mass, absorbed here into a half-vote slack).
    Rng rng(1);
    const std::size_t n = 400, j = 50;
    const auto g = RecycleGraph::synthetic(n, j, 0.5, 0.55, 4);
    const auto modified = recycle::decorrelated_parameters(g, 0.3);
    const ld::prob::PoissonBinomial envelope(modified);

    std::vector<double> sample;
    sample.reserve(4000);
    for (int rep = 0; rep < 4000; ++rep) {
        sample.push_back(static_cast<double>(recycle::sample(g, rng).total));
    }
    const ld::stats::Ecdf x(sample);

    // Envelope quantile q̃(delta): smallest k with CDF >= delta.
    const auto envelope_quantile = [&](double delta) {
        for (std::size_t k = 0; k <= n; ++k) {
            if (envelope.cdf(k) >= delta) return static_cast<double>(k);
        }
        return static_cast<double>(n);
    };
    for (double delta : {0.01, 0.05, 0.25, 0.5}) {
        EXPECT_GE(x.quantile(delta), envelope_quantile(delta) - 0.5) << delta;
    }
    // Mean dominance as well.
    EXPECT_GE(g.total_expectation(), envelope.mean() - 1e-9);
}

TEST(Decorrelation, ChernoffOnTheEnvelopeBoundsTheDependentTail) {
    // The whole point of the construction: apply Chernoff to X̃ and get a
    // valid tail bound for the *dependent* X_n.
    Rng rng(2);
    const std::size_t n = 600, j = 80;
    const auto g = RecycleGraph::synthetic(n, j, 0.5, 0.55, 3);
    const auto modified = recycle::decorrelated_parameters(g, 0.3);
    const ld::prob::PoissonBinomial envelope(modified);

    const double threshold = 0.9 * envelope.mean();  // delta = 0.1 on X̃
    const double chernoff =
        ld::prob::chernoff_lower_tail(envelope.mean(), 0.1);

    std::size_t below = 0;
    constexpr int kReps = 4000;
    for (int rep = 0; rep < kReps; ++rep) {
        if (static_cast<double>(recycle::sample(g, rng).total) < threshold) ++below;
    }
    EXPECT_LE(static_cast<double>(below) / kReps, chernoff + 0.01);
}

}  // namespace
