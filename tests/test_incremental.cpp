// Differential suite for the incremental delegation-churn engine
// (docs/CHURN.md): DynamicResolution pinned bit-identical to the scratch
// DelegationOutcome reference under randomized patch sequences
// (delegate/vote/abstain retargets, cycle-inducing patches, component
// splits, weighted voters), the FactorTree certified-truncation contract
// against brute-force enumeration, LiveTally agreement with the exact DP
// within its certified error bound under every SIMD kernel tier, the
// serve-side instance.patch epoch/conflict/cycle semantics, and the
// best-response game rebase (shuffle-seed reproducibility, viscous decay).

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "ld/delegation/delegation_graph.hpp"
#include "ld/delegation/incremental.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/election/tally_delta.hpp"
#include "ld/game/delegation_game.hpp"
#include "ld/model/competency.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/model/instance.hpp"
#include "ld/serve/instance_cache.hpp"
#include "ld/serve/router.hpp"
#include "prob/convolve.hpp"
#include "prob/factor_tree.hpp"
#include "rng/rng.hpp"
#include "support/cpu_features.hpp"
#include "support/json.hpp"

namespace {

namespace delegation = ld::delegation;
namespace election = ld::election;
namespace game = ld::game;
namespace g = ld::graph;
namespace json = ld::support::json;
namespace mech = ld::mech;
namespace model = ld::model;
namespace serve = ld::serve;
using delegation::DelegationOutcome;
using delegation::DynamicResolution;
using ld::prob::FactorTree;
using ld::rng::Rng;
using ld::support::SimdTier;
using Vertex = g::Vertex;

// ------------------------------------------------------------ helpers

/// Pin the kernel tier for a scope (same idiom as test_simd_kernels.cpp).
class TierGuard {
public:
    explicit TierGuard(SimdTier tier)
        : previous_(ld::prob::kernel_tier()),
          pinned_(ld::prob::set_kernel_tier(tier)) {}
    ~TierGuard() { ld::prob::set_kernel_tier(previous_); }
    bool pinned() const noexcept { return pinned_; }

    TierGuard(const TierGuard&) = delete;
    TierGuard& operator=(const TierGuard&) = delete;

private:
    SimdTier previous_;
    bool pinned_;
};

constexpr std::array<SimdTier, 3> kAllTiers = {
    SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512};

/// Re-resolve the live state from scratch — the reference the incremental
/// engine must match bit-for-bit.
DelegationOutcome reference_outcome(const DynamicResolution& res,
                                    std::span<const std::uint64_t> weights = {}) {
    return DelegationOutcome(res.actions(), weights);
}

/// EXPECT_EQ every derived quantity against the scratch re-resolution.
void expect_matches_reference(const DynamicResolution& res,
                              std::span<const std::uint64_t> weights = {}) {
    const DelegationOutcome ref = reference_outcome(res, weights);
    ASSERT_TRUE(ref.functional());
    const std::size_t n = res.voter_count();
    ASSERT_EQ(ref.voter_count(), n);
    for (Vertex v = 0; v < n; ++v) {
        EXPECT_EQ(res.sink_of(v), ref.sink_of(v)) << "sink of voter " << v;
    }
    EXPECT_EQ(res.weights(), ref.weights());
    EXPECT_EQ(res.voting_sinks(), ref.voting_sinks());
    EXPECT_EQ(res.cast_weight(), ref.stats().cast_weight);
    EXPECT_EQ(res.voting_sink_count(), ref.stats().voting_sink_count);
    const delegation::DelegationStats a = res.stats();
    const delegation::DelegationStats& b = ref.stats();
    EXPECT_EQ(a.delegator_count, b.delegator_count);
    EXPECT_EQ(a.abstainer_count, b.abstainer_count);
    EXPECT_EQ(a.voting_sink_count, b.voting_sink_count);
    EXPECT_EQ(a.max_weight, b.max_weight);
    EXPECT_EQ(a.cast_weight, b.cast_weight);
    EXPECT_EQ(a.longest_path, b.longest_path);
    // Depths: re-derive by walking the target chain independently.
    for (Vertex v = 0; v < n; ++v) {
        std::size_t depth = 0;
        Vertex cur = v;
        while (res.kind(cur) == mech::ActionKind::Delegate &&
               res.target(cur) != cur) {
            cur = res.target(cur);
            ++depth;
        }
        EXPECT_EQ(res.depth_of(v), depth) << "depth of voter " << v;
    }
}

/// One random patch against `res` (delegate-biased mix, self-delegation
/// and cycle attempts included).  Returns the PatchResult.
DynamicResolution::PatchResult random_patch(DynamicResolution& res, Rng& rng) {
    const std::size_t n = res.voter_count();
    const Vertex v = static_cast<Vertex>(rng.next_below(n));
    const std::uint64_t roll = rng.next_below(8);
    if (roll < 5) {
        return res.set_delegate(v, static_cast<Vertex>(rng.next_below(n)));
    }
    if (roll < 7) return res.set_vote(v);
    return res.set_abstain(v);
}

// ------------------------------------------ DynamicResolution differential

TEST(DynamicResolution, RandomPatchSequenceMatchesScratchResolution) {
    constexpr std::size_t kVoters = 48;
    DynamicResolution res;
    res.reset_all_vote(kVoters);
    expect_matches_reference(res);

    Rng rng(101);
    std::size_t applied = 0;
    std::size_t rejected = 0;
    for (int step = 0; step < 400; ++step) {
        const auto before = res.actions();
        const auto weights_before = res.weights();
        const auto result = random_patch(res, rng);
        if (result.cycle_rejected) {
            ++rejected;
            // A rejected patch must leave the state untouched.
            EXPECT_FALSE(result.applied);
            EXPECT_EQ(result.change_count, 0u);
            const auto after = res.actions();
            ASSERT_EQ(after.size(), before.size());
            for (std::size_t i = 0; i < after.size(); ++i) {
                EXPECT_EQ(after[i].kind, before[i].kind);
                EXPECT_EQ(after[i].targets, before[i].targets);
            }
            EXPECT_EQ(res.weights(), weights_before);
            continue;
        }
        applied += result.applied ? 1 : 0;
        expect_matches_reference(res);
        // The reported SinkChange deltas must reconstruct the new pooled
        // weights from the old ones.
        std::map<Vertex, std::uint64_t> pooled;
        for (Vertex s = 0; s < kVoters; ++s) {
            if (weights_before[s] != 0) pooled[s] = weights_before[s];
        }
        for (std::size_t c = 0; c < result.change_count; ++c) {
            const auto& change = result.changes[c];
            if (change.weight == 0) {
                pooled.erase(change.sink);
            } else {
                pooled[change.sink] = change.weight;
            }
        }
        const auto now = res.weights();
        std::map<Vertex, std::uint64_t> expected;
        for (Vertex s = 0; s < kVoters; ++s) {
            if (now[s] != 0) expected[s] = now[s];
        }
        EXPECT_EQ(pooled, expected);
    }
    // The sequence must actually exercise both paths.
    EXPECT_GT(applied, 100u);
    EXPECT_GT(rejected, 0u);
}

TEST(DynamicResolution, WeightedVotersMatchScratchResolution) {
    constexpr std::size_t kVoters = 32;
    std::vector<std::uint64_t> weights(kVoters);
    Rng wrng(7);
    for (auto& w : weights) w = 1 + wrng.next_below(9);

    DynamicResolution res;
    res.reset_all_vote(kVoters, weights);
    for (Vertex v = 0; v < kVoters; ++v) {
        EXPECT_EQ(res.initial_weight(v), weights[v]);
    }
    Rng rng(2024);
    for (int step = 0; step < 200; ++step) {
        const auto result = random_patch(res, rng);
        if (result.cycle_rejected) continue;
        if (step % 10 == 0) expect_matches_reference(res, weights);
    }
    expect_matches_reference(res, weights);
}

TEST(DynamicResolution, ResetFromResolvedOutcomeMatches) {
    // A star of delegators into voter 0, two abstainers, one side chain.
    std::vector<mech::Action> actions(10, mech::Action::vote());
    actions[1] = mech::Action::delegate_to(0);
    actions[2] = mech::Action::delegate_to(0);
    actions[3] = mech::Action::delegate_to(2);
    actions[4] = mech::Action::abstain();
    actions[5] = mech::Action::delegate_to(4);  // drains into an abstainer
    actions[6] = mech::Action::delegate_to(7);
    const DelegationOutcome outcome(actions);

    DynamicResolution res;
    res.reset(outcome);
    expect_matches_reference(res);
    EXPECT_EQ(res.sink_of(3), 0u);
    EXPECT_EQ(res.sink_of(5), DynamicResolution::kNoSink);
    EXPECT_EQ(res.pooled_weight(0), 4u);

    // And patches continue correctly from the imported state.
    const auto patch = res.set_vote(2);
    EXPECT_TRUE(patch.applied);
    expect_matches_reference(res);
    EXPECT_EQ(res.sink_of(3), 2u);
    EXPECT_EQ(res.pooled_weight(0), 2u);
}

TEST(DynamicResolution, ChainSplitReportsBothSinkChanges) {
    DynamicResolution res;
    res.reset_all_vote(4);
    ASSERT_TRUE(res.set_delegate(0, 1).applied);
    ASSERT_TRUE(res.set_delegate(1, 2).applied);
    ASSERT_TRUE(res.set_delegate(2, 3).applied);
    EXPECT_EQ(res.pooled_weight(3), 4u);

    // Splitting the chain at 1 moves {0,1} to sink 1 and shrinks sink 3.
    const auto split = res.set_vote(1);
    EXPECT_TRUE(split.applied);
    EXPECT_EQ(split.change_count, 2u);
    expect_matches_reference(res);
    EXPECT_EQ(res.pooled_weight(1), 2u);
    EXPECT_EQ(res.pooled_weight(3), 2u);
    EXPECT_EQ(res.sink_of(0), 1u);
}

TEST(DynamicResolution, PatchesAreAbsoluteAndIdempotent) {
    DynamicResolution res;
    res.reset_all_vote(6);
    ASSERT_TRUE(res.set_delegate(2, 5).applied);
    // Replaying the identical patch is a no-op: the serve layer's
    // at-least-once delivery depends on absolute assignments.
    const auto replay = res.set_delegate(2, 5);
    EXPECT_FALSE(replay.applied);
    EXPECT_FALSE(replay.cycle_rejected);
    EXPECT_EQ(replay.change_count, 0u);
    expect_matches_reference(res);

    // Self-delegation counts as voting (matches DelegationOutcome).
    ASSERT_TRUE(res.set_delegate(3, 3).applied);
    EXPECT_TRUE(res.is_voting(3));
    expect_matches_reference(res);
}

TEST(DynamicResolution, CyclePatchesAreRejectedWithoutStateChange) {
    DynamicResolution res;
    res.reset_all_vote(5);
    ASSERT_TRUE(res.set_delegate(0, 1).applied);
    ASSERT_TRUE(res.set_delegate(1, 2).applied);

    const auto cycle = res.set_delegate(2, 0);
    EXPECT_TRUE(cycle.cycle_rejected);
    EXPECT_FALSE(cycle.applied);
    expect_matches_reference(res);
    EXPECT_EQ(res.sink_of(0), 2u);

    // A 1-cycle through a fresh edge is caught too.
    ASSERT_TRUE(res.set_delegate(3, 4).applied);
    EXPECT_TRUE(res.set_delegate(4, 3).cycle_rejected);
    expect_matches_reference(res);
}

// -------------------------------------------------- FactorTree certified

/// Brute-force P[S > threshold] over m two-point factors (m <= ~16).
double brute_force_tail(const std::vector<std::uint64_t>& weights,
                        const std::vector<double>& probs,
                        std::uint64_t threshold) {
    const std::size_t m = weights.size();
    double tail = 0.0;
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
        std::uint64_t sum = 0;
        double prob = 1.0;
        for (std::size_t i = 0; i < m; ++i) {
            if (mask >> i & 1) {
                sum += weights[i];
                prob *= probs[i];
            } else {
                prob *= 1.0 - probs[i];
            }
        }
        if (sum > threshold) tail += prob;
    }
    return tail;
}

TEST(FactorTree, ExactTreeMatchesBruteForce) {
    Rng rng(11);
    std::vector<std::uint64_t> weights(12);
    std::vector<double> probs(12);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        weights[i] = 1 + rng.next_below(7);
        probs[i] = 0.05 + 0.9 * static_cast<double>(rng.next_below(1000)) / 1000.0;
    }
    FactorTree tree;
    tree.reset(weights.size(), 0.0);
    tree.begin_bulk();
    for (std::size_t i = 0; i < weights.size(); ++i) {
        tree.set_factor(i, weights[i], probs[i]);
    }
    tree.end_bulk();
    EXPECT_EQ(tree.error_bound(), 0.0);
    std::uint64_t total = 0;
    for (const auto w : weights) total += w;
    EXPECT_EQ(tree.total_weight(), total);
    for (std::uint64_t t : {std::uint64_t{0}, total / 3, total / 2, total}) {
        EXPECT_NEAR(tree.tail_above(t), brute_force_tail(weights, probs, t), 1e-12);
    }
    EXPECT_NEAR(tree.majority_probability(),
                brute_force_tail(weights, probs, total / 2), 1e-12);
}

TEST(FactorTree, IncrementalUpdatesMatchFreshRebuild) {
    for (const double epsilon : {0.0, 1e-6}) {
        Rng rng(23);
        constexpr std::size_t kSlots = 33;  // off a power of two on purpose
        FactorTree incremental;
        incremental.reset(kSlots, epsilon);
        // Random set/clear/update churn.
        for (int step = 0; step < 300; ++step) {
            const std::size_t slot = rng.next_below(kSlots);
            if (rng.next_below(5) == 0) {
                incremental.clear_factor(slot);
            } else {
                incremental.set_factor(
                    slot, rng.next_below(10),
                    static_cast<double>(rng.next_below(1001)) / 1000.0);
            }
            EXPECT_LE(incremental.error_bound(), epsilon);
        }
        // A tree built fresh from the final leaf state must agree: same
        // leaves, same node shape => same windows, bit for bit.
        FactorTree fresh;
        fresh.reset(kSlots, epsilon);
        fresh.begin_bulk();
        for (std::size_t slot = 0; slot < kSlots; ++slot) {
            if (incremental.has_factor(slot)) {
                fresh.set_factor(slot, incremental.factor_weight(slot),
                                 incremental.factor_p(slot));
            }
        }
        fresh.end_bulk();
        EXPECT_EQ(incremental.total_weight(), fresh.total_weight());
        EXPECT_EQ(incremental.majority_probability(), fresh.majority_probability());
        for (std::uint64_t t = 0; t <= incremental.total_weight(); t += 7) {
            EXPECT_EQ(incremental.tail_above(t), fresh.tail_above(t));
        }
    }
}

TEST(FactorTree, TruncatedTreeStaysInsideCertifiedBound) {
    Rng rng(31);
    std::vector<std::uint64_t> weights(14);
    std::vector<double> probs(14);
    FactorTree tree;
    const double epsilon = 1e-4;
    tree.reset(weights.size(), epsilon);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        weights[i] = 1 + rng.next_below(5);
        probs[i] = static_cast<double>(100 + rng.next_below(801)) / 1000.0;
        tree.set_factor(i, weights[i], probs[i]);
    }
    // Churn a few leaves so the bound reflects recomputed nodes.
    for (int step = 0; step < 50; ++step) {
        const std::size_t i = rng.next_below(weights.size());
        probs[i] = static_cast<double>(100 + rng.next_below(801)) / 1000.0;
        tree.set_factor(i, weights[i], probs[i]);
    }
    ASSERT_LE(tree.error_bound(), epsilon);
    const std::uint64_t total = tree.total_weight();
    for (std::uint64_t t : {total / 4, total / 2, 3 * total / 4}) {
        const double exact = brute_force_tail(weights, probs, t);
        EXPECT_NEAR(tree.tail_above(t), exact, tree.error_bound() + 1e-12);
    }
}

// ------------------------------------------------------- LiveTally delta

/// Drive one randomized churn sequence (delegation + competency patches)
/// and return (P^M, P^D) after every step; checks each step against the
/// exact DP within the certified error bound.
std::vector<std::pair<double, double>> run_live_tally_sequence(double epsilon) {
    constexpr std::size_t kVoters = 36;
    Rng rng(77);
    std::vector<double> p(kVoters);
    for (auto& x : p) {
        x = 0.1 + 0.8 * static_cast<double>(rng.next_below(1000)) / 1000.0;
    }
    DynamicResolution res;
    res.reset_all_vote(kVoters);
    election::LiveTally tally;
    tally.reset(p, res, epsilon);

    std::vector<mech::Action> all_vote(kVoters, mech::Action::vote());
    std::vector<std::pair<double, double>> trace;
    for (int step = 0; step < 150; ++step) {
        if (rng.next_below(4) == 0) {
            const Vertex v = static_cast<Vertex>(rng.next_below(kVoters));
            p[v] = 0.05 + 0.9 * static_cast<double>(rng.next_below(1000)) / 1000.0;
            tally.set_competency(res, v, p[v]);
        } else {
            const auto patch = random_patch(res, rng);
            if (patch.cycle_rejected) continue;
            tally.apply_sink_changes({patch.changes.data(), patch.change_count});
        }
        const model::CompetencyVector comp{std::vector<double>(p)};
        const double exact_pm =
            election::exact_correct_probability(reference_outcome(res), comp);
        const double exact_pd = election::exact_correct_probability(
            DelegationOutcome(all_vote), comp);
        EXPECT_NEAR(tally.correct_probability(), exact_pm,
                    tally.error_bound() + 1e-12);
        EXPECT_NEAR(tally.direct_probability(), exact_pd,
                    tally.direct_error_bound() + 1e-12);
        EXPECT_LE(tally.error_bound(), epsilon);
        EXPECT_LE(tally.direct_error_bound(), epsilon);
        trace.emplace_back(tally.correct_probability(), tally.direct_probability());
    }
    return trace;
}

TEST(LiveTally, PatchSequenceTracksExactTallyWithinBound) {
    run_live_tally_sequence(0.0);
    run_live_tally_sequence(1e-8);
}

TEST(LiveTally, ResultsAreBitIdenticalAcrossKernelTiers) {
    // FactorTree uses plain double loops, so the live tally must not move
    // by a single bit when the dispatched kernels change tier — while the
    // *reference* DP inside run_live_tally_sequence re-verifies agreement
    // under each tier.
    const auto baseline = run_live_tally_sequence(1e-9);
    for (const SimdTier tier : kAllTiers) {
        TierGuard guard(tier);
        if (!guard.pinned()) continue;  // host lacks the ISA
        const auto pinned = run_live_tally_sequence(1e-9);
        ASSERT_EQ(pinned.size(), baseline.size());
        for (std::size_t i = 0; i < pinned.size(); ++i) {
            EXPECT_EQ(pinned[i].first, baseline[i].first);
            EXPECT_EQ(pinned[i].second, baseline[i].second);
        }
    }
}

// ------------------------------------------------- serve: instance.patch

constexpr const char* kGraph = "complete";
constexpr const char* kCompetencies = "uniform:0.3,0.7";
constexpr std::size_t kN = 30;
constexpr double kAlpha = 0.05;
constexpr std::uint64_t kSeed = 9;

serve::Request make_request(const std::string& method, json::Object params) {
    serve::Request request;
    request.id = json::Value(1.0);
    request.method = method;
    request.params = json::Value(std::move(params));
    request.admitted_at = std::chrono::steady_clock::now();
    return request;
}

json::Value call(serve::Router& router, const std::string& method,
                 json::Object params) {
    return json::parse(router.handle(make_request(method, std::move(params))));
}

std::string load_instance(serve::Router& router) {
    json::Object load;
    load.emplace("graph", json::Value(std::string(kGraph)));
    load.emplace("competencies", json::Value(std::string(kCompetencies)));
    load.emplace("n", json::Value(static_cast<double>(kN)));
    load.emplace("alpha", json::Value(kAlpha));
    load.emplace("seed", json::Value(static_cast<double>(kSeed)));
    const json::Value response = call(router, "instance.load", std::move(load));
    EXPECT_TRUE(response.at("ok").as_bool()) << json::dump(response);
    return response.at("result").at("instance").as_string();
}

json::Value op_delegate(std::size_t voter, std::size_t to) {
    json::Object op;
    op.emplace("op", json::Value(std::string("delegate")));
    op.emplace("voter", json::Value(static_cast<double>(voter)));
    op.emplace("to", json::Value(static_cast<double>(to)));
    return json::Value(std::move(op));
}

json::Value patch_request(serve::Router& router, const std::string& fingerprint,
                          json::Array ops,
                          std::optional<double> expect_epoch = {}) {
    json::Object params;
    params.emplace("instance", json::Value(fingerprint));
    params.emplace("ops", json::Value(std::move(ops)));
    if (expect_epoch) params.emplace("expect_epoch", json::Value(*expect_epoch));
    return call(router, "instance.patch", std::move(params));
}

TEST(ServePatch, EpochAdvancesAndSummaryTracksExactTally) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);
    const std::string fingerprint = load_instance(router);

    json::Array ops;
    ops.push_back(op_delegate(0, 1));
    ops.push_back(op_delegate(2, 1));
    const json::Value first = patch_request(router, fingerprint, std::move(ops));
    ASSERT_TRUE(first.at("ok").as_bool()) << json::dump(first);
    const json::Value& result = first.at("result");
    EXPECT_EQ(result.at("epoch").as_number(), 1.0);
    EXPECT_EQ(result.at("applied").as_number(), 2.0);
    EXPECT_EQ(result.at("rejected").as_number(), 0.0);
    EXPECT_EQ(result.at("voting_sinks").as_number(), static_cast<double>(kN - 2));
    EXPECT_EQ(result.at("cast_weight").as_number(), static_cast<double>(kN));

    // The live pm must match the exact DP of the same delegation state on
    // the same instance, within the certified bound.
    bool was_hit = false;
    serve::InstanceCache reference;
    const auto entry =
        reference.load(kGraph, kCompetencies, kN, kAlpha, kSeed, &was_hit);
    std::vector<mech::Action> actions(kN, mech::Action::vote());
    actions[0] = mech::Action::delegate_to(1);
    actions[2] = mech::Action::delegate_to(1);
    const double exact_pm = election::exact_correct_probability(
        DelegationOutcome(std::move(actions)), entry->instance.competencies());
    const double exact_pd = election::exact_direct_probability(entry->instance);
    const double pm_bound = result.at("pm_error_bound").as_number();
    const double pd_bound = result.at("pd_error_bound").as_number();
    EXPECT_NEAR(result.at("pm").as_number(), exact_pm, pm_bound + 1e-12);
    EXPECT_NEAR(result.at("pd").as_number(), exact_pd, pd_bound + 1e-12);
    EXPECT_NEAR(result.at("gain").as_number(),
                result.at("pm").as_number() - result.at("pd").as_number(), 1e-15);

    // expect_epoch guards the next write; a stale value is a conflict.
    json::Array more;
    more.push_back(op_delegate(3, 1));
    const json::Value second =
        patch_request(router, fingerprint, std::move(more), 1.0);
    ASSERT_TRUE(second.at("ok").as_bool()) << json::dump(second);
    EXPECT_EQ(second.at("result").at("epoch").as_number(), 2.0);

    json::Array stale_ops;
    stale_ops.push_back(op_delegate(4, 1));
    const json::Value stale =
        patch_request(router, fingerprint, std::move(stale_ops), 7.0);
    EXPECT_EQ(stale.at("error").at("code").as_string(), "conflict");
}

TEST(ServePatch, CycleOpsRejectedPerOpInsideOkResponse) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);
    const std::string fingerprint = load_instance(router);

    json::Array ops;
    ops.push_back(op_delegate(0, 1));
    ops.push_back(op_delegate(1, 0));  // would close a cycle
    const json::Value response = patch_request(router, fingerprint, std::move(ops));
    ASSERT_TRUE(response.at("ok").as_bool()) << json::dump(response);
    const json::Value& result = response.at("result");
    EXPECT_EQ(result.at("applied").as_number(), 1.0);
    EXPECT_EQ(result.at("rejected").as_number(), 1.0);
    const json::Array& per_op = result.at("results").as_array();
    ASSERT_EQ(per_op.size(), 2u);
    EXPECT_TRUE(per_op[0].at("applied").as_bool());
    EXPECT_FALSE(per_op[1].at("applied").as_bool());
    EXPECT_EQ(per_op[1].at("reason").as_string(), "cycle");
    // Rejected ops still advance the epoch: the epoch numbers requests.
    EXPECT_EQ(result.at("epoch").as_number(), 1.0);
}

TEST(ServePatch, StateReportsDelegationShape) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);
    const std::string fingerprint = load_instance(router);

    json::Array ops;
    ops.push_back(op_delegate(0, 1));
    ops.push_back(op_delegate(1, 2));
    {
        json::Object abstain;
        abstain.emplace("op", json::Value(std::string("abstain")));
        abstain.emplace("voter", json::Value(5.0));
        ops.push_back(json::Value(std::move(abstain)));
    }
    ASSERT_TRUE(patch_request(router, fingerprint, std::move(ops))
                    .at("ok")
                    .as_bool());

    json::Object params;
    params.emplace("instance", json::Value(fingerprint));
    const json::Value state = call(router, "instance.state", std::move(params));
    ASSERT_TRUE(state.at("ok").as_bool()) << json::dump(state);
    const json::Value& result = state.at("result");
    EXPECT_EQ(result.at("epoch").as_number(), 1.0);
    EXPECT_EQ(result.at("delegators").as_number(), 2.0);
    EXPECT_EQ(result.at("abstainers").as_number(), 1.0);
    EXPECT_EQ(result.at("max_weight").as_number(), 3.0);
    EXPECT_EQ(result.at("longest_path").as_number(), 2.0);
    EXPECT_EQ(result.at("cast_weight").as_number(), static_cast<double>(kN - 1));
}

TEST(ServePatch, UnknownInstanceIsNotFound) {
    serve::InstanceCache cache;
    serve::Router router({}, cache);
    json::Array ops;
    ops.push_back(op_delegate(0, 1));
    const json::Value response = patch_request(router, "0xdead", std::move(ops));
    EXPECT_EQ(response.at("error").at("code").as_string(), "not_found");
    json::Object params;
    params.emplace("instance", json::Value(std::string("0xdead")));
    EXPECT_EQ(call(router, "instance.state", std::move(params))
                  .at("error")
                  .at("code")
                  .as_string(),
              "not_found");
}

// ---------------------------------------------------- game on the engine

TEST(GameIncremental, ShuffleSeedReplaysTrajectoryExactly) {
    Rng instance_rng(3);
    const model::Instance inst(
        g::make_complete(24),
        model::uniform_competencies(instance_rng, 24, 0.2, 0.8), 0.05);

    game::GameOptions opts;
    opts.utility = game::Utility::Selfish;
    opts.shuffle_seed = 123;
    opts.record_trajectory = true;

    // Different caller-rng histories must not matter once shuffle_seed is
    // pinned: the trajectory replays byte-identically.
    Rng rng_a(5);
    Rng rng_b(99);
    rng_b.next();
    rng_b.next();
    const auto a = game::best_response_dynamics(inst, rng_a, opts);
    const auto b = game::best_response_dynamics(inst, rng_b, opts);
    ASSERT_TRUE(a.converged);
    EXPECT_EQ(a.profile, b.profile);
    EXPECT_EQ(a.deviations, b.deviations);
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    EXPECT_GT(a.trajectory.size(), 0u);
    for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
        EXPECT_EQ(a.trajectory[i].round, b.trajectory[i].round);
        EXPECT_EQ(a.trajectory[i].voter, b.trajectory[i].voter);
        EXPECT_EQ(a.trajectory[i].from, b.trajectory[i].from);
        EXPECT_EQ(a.trajectory[i].to, b.trajectory[i].to);
        EXPECT_EQ(a.trajectory[i].correct_probability,
                  b.trajectory[i].correct_probability);
        EXPECT_EQ(a.trajectory[i].gain, b.trajectory[i].gain);
    }
    EXPECT_TRUE(game::is_equilibrium(inst, a.profile, game::Utility::Selfish));
    // The final probability is re-derived by the exact DP.
    EXPECT_EQ(a.group_correct_probability,
              election::exact_correct_probability(
                  game::realize_profile(inst, a.profile), inst.competencies()));
}

TEST(GameIncremental, ViscousDecayStopsLongChains) {
    // 0 — 1 — 2 — 3 ascending: classic selfish chains 0→1→2→3, but with
    // viscosity 0.1 a delegated vote at depth d is worth 0.1^d of the
    // sink's competency, so every voter keeps their own vote.
    const model::Instance inst(g::make_path(4),
                               model::CompetencyVector({0.3, 0.5, 0.7, 0.9}),
                               0.05);
    Rng rng(1);
    game::GameOptions opts;
    opts.utility = game::Utility::Selfish;
    opts.viscosity = 0.1;
    const auto result = game::best_response_dynamics(inst, rng, opts);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.deviations, 0u);
    for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(result.profile[v], v);
}

TEST(GameIncremental, CooperativeWithTruncatedTallyStillExactAtTheEnd) {
    Rng instance_rng(4);
    const model::Instance inst(
        g::make_complete(16),
        model::uniform_competencies(instance_rng, 16, 0.3, 0.7), 0.05);
    Rng rng(8);
    game::GameOptions opts;
    opts.utility = game::Utility::Cooperative;
    opts.shuffle_seed = 42;
    opts.tally_epsilon = 1e-9;
    const auto result = game::best_response_dynamics(inst, rng, opts);
    EXPECT_TRUE(result.converged);
    // Truncation is allowed along the trajectory, never in the final answer.
    EXPECT_EQ(result.group_correct_probability,
              election::exact_correct_probability(
                  game::realize_profile(inst, result.profile),
                  inst.competencies()));
    EXPECT_GE(result.gain_vs_direct, 0.0);
}

}  // namespace
