// Tests for delegation-graph realization: sink resolution, weight
// accumulation, statistics, abstention semantics, and cycle detection.

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "ld/delegation/delegation_graph.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/direct.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace {

namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::delegation::DelegationOutcome;
using ld::mech::Action;
using ld::rng::Rng;
using ld::support::ContractViolation;

TEST(DelegationOutcome, AllVotersVotingAreTheirOwnSinks) {
    std::vector<Action> actions(5, Action::vote());
    const DelegationOutcome out(std::move(actions));
    EXPECT_TRUE(out.functional());
    for (g::Vertex v = 0; v < 5; ++v) {
        EXPECT_EQ(out.sink_of(v), v);
        EXPECT_EQ(out.weights()[v], 1u);
    }
    EXPECT_EQ(out.stats().voting_sink_count, 5u);
    EXPECT_EQ(out.stats().delegator_count, 0u);
    EXPECT_EQ(out.stats().max_weight, 1u);
    EXPECT_EQ(out.stats().cast_weight, 5u);
    EXPECT_EQ(out.stats().longest_path, 0u);
}

TEST(DelegationOutcome, ChainResolvesToTerminalVoter) {
    // 0 -> 1 -> 2 -> 3 (votes).
    std::vector<Action> actions{Action::delegate_to(1), Action::delegate_to(2),
                                Action::delegate_to(3), Action::vote()};
    const DelegationOutcome out(std::move(actions));
    for (g::Vertex v = 0; v < 4; ++v) EXPECT_EQ(out.sink_of(v), 3u);
    EXPECT_EQ(out.weights()[3], 4u);
    EXPECT_EQ(out.stats().max_weight, 4u);
    EXPECT_EQ(out.stats().voting_sink_count, 1u);
    EXPECT_EQ(out.stats().longest_path, 3u);
    EXPECT_EQ(out.voting_sinks(), (std::vector<g::Vertex>{3}));
}

TEST(DelegationOutcome, StarDelegation) {
    // Everyone delegates to voter 0 (the Figure 1 disaster).
    std::vector<Action> actions(9, Action::delegate_to(0));
    actions[0] = Action::vote();
    const DelegationOutcome out(std::move(actions));
    EXPECT_EQ(out.weights()[0], 9u);
    EXPECT_EQ(out.stats().voting_sink_count, 1u);
    EXPECT_EQ(out.stats().delegator_count, 8u);
    EXPECT_EQ(out.stats().longest_path, 1u);
}

TEST(DelegationOutcome, SelfDelegationCountsAsVoting) {
    std::vector<Action> actions{Action::delegate_to(0), Action::delegate_to(0)};
    const DelegationOutcome out(std::move(actions));
    EXPECT_EQ(out.sink_of(0), 0u);
    EXPECT_EQ(out.sink_of(1), 0u);
    EXPECT_EQ(out.weights()[0], 2u);
}

TEST(DelegationOutcome, CycleIsRejected) {
    std::vector<Action> actions{Action::delegate_to(1), Action::delegate_to(0)};
    EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
}

TEST(DelegationOutcome, LongCycleIsRejected) {
    std::vector<Action> actions;
    for (g::Vertex v = 0; v < 10; ++v) {
        actions.push_back(Action::delegate_to((v + 1) % 10));
    }
    EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
}

TEST(DelegationOutcome, ValidationOfMalformedActions) {
    {
        std::vector<Action> actions{Action{ld::mech::ActionKind::Delegate, {}, {}}};
        EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
    }
    {
        std::vector<Action> actions{Action::delegate_to(7)};  // out of range
        EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
    }
    {
        Action bad = Action::vote();
        bad.targets.push_back(0);
        std::vector<Action> actions{bad, Action::vote()};
        EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
    }
}

TEST(DelegationOutcome, AbstainerDiscardsIncomingVotes) {
    // 0 -> 1 (abstains); 2 votes.
    std::vector<Action> actions{Action::delegate_to(1), Action::abstain(),
                                Action::vote()};
    const DelegationOutcome out(std::move(actions));
    EXPECT_EQ(out.sink_of(0), DelegationOutcome::kNoSink);
    EXPECT_EQ(out.sink_of(1), DelegationOutcome::kNoSink);
    EXPECT_EQ(out.sink_of(2), 2u);
    EXPECT_EQ(out.stats().cast_weight, 1u);
    EXPECT_EQ(out.stats().abstainer_count, 1u);
    EXPECT_EQ(out.stats().voting_sink_count, 1u);
}

TEST(DelegationOutcome, WeightsSumToCastWeightPlusDiscarded) {
    Rng rng(1);
    const model::Instance inst(g::make_complete(80),
                               model::uniform_competencies(rng, 80, 0.1, 0.9), 0.05);
    const mech::ApprovalSizeThreshold m(1);
    for (int rep = 0; rep < 10; ++rep) {
        const auto out = ld::delegation::realize(m, inst, rng);
        const auto& w = out.weights();
        const auto total = std::accumulate(w.begin(), w.end(), std::uint64_t{0});
        EXPECT_EQ(total, out.stats().cast_weight);
        EXPECT_EQ(total, 80u);  // no abstentions: every vote lands somewhere
    }
}

TEST(DelegationOutcome, SinksNeverDelegatedAndHoldTheirOwnVote) {
    Rng rng(2);
    const model::Instance inst(g::make_complete(60),
                               model::uniform_competencies(rng, 60, 0.1, 0.9), 0.05);
    const mech::ApprovalSizeThreshold m(2);
    const auto out = ld::delegation::realize(m, inst, rng);
    for (g::Vertex s : out.voting_sinks()) {
        EXPECT_EQ(out.action(s).kind, ld::mech::ActionKind::Vote);
        EXPECT_EQ(out.sink_of(s), s);
        EXPECT_GE(out.weights()[s], 1u);
    }
}

TEST(DelegationOutcome, LongestPathMatchesDigraphLongestPath) {
    Rng rng(3);
    const model::Instance inst(g::make_complete(50),
                               model::uniform_competencies(rng, 50, 0.1, 0.9), 0.02);
    const mech::BestNeighbour m;
    const auto out = ld::delegation::realize(m, inst, rng);
    EXPECT_EQ(out.stats().longest_path, out.as_digraph().longest_path_length());
}

TEST(DelegationOutcome, AsDigraphHasOneArcPerDelegator) {
    std::vector<Action> actions{Action::delegate_to(2), Action::vote(), Action::vote()};
    const DelegationOutcome out(std::move(actions));
    const auto d = out.as_digraph();
    EXPECT_EQ(d.arc_count(), 1u);
    EXPECT_EQ(d.successors(0).size(), 1u);
    EXPECT_EQ(d.successors(0)[0], 2u);
}

TEST(DelegationOutcome, MultiTargetOutcomesAreNotFunctional) {
    std::vector<Action> actions{Action::delegate_to_many({1, 2, 3}), Action::vote(),
                                Action::vote(), Action::vote()};
    const DelegationOutcome out(std::move(actions));
    EXPECT_FALSE(out.functional());
    EXPECT_THROW(out.weights(), ContractViolation);
    EXPECT_THROW(out.sink_of(0), ContractViolation);
    EXPECT_THROW(out.voting_sinks(), ContractViolation);
    EXPECT_EQ(out.stats().delegator_count, 1u);
}

TEST(Realize, BestNeighbourOnApprovalChainCompressesPaths) {
    // Path graph with ascending competencies: everyone's best approved
    // neighbour is the next voter; delegation forms one long chain.
    const std::size_t n = 30;
    std::vector<double> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = 0.1 + 0.8 * static_cast<double>(i) / n;
    Rng rng(4);
    const model::Instance inst(g::make_path(n), model::CompetencyVector(std::move(p)),
                               0.01);
    const mech::BestNeighbour m;
    const auto out = ld::delegation::realize(m, inst, rng);
    EXPECT_EQ(out.stats().voting_sink_count, 1u);
    EXPECT_EQ(out.sink_of(0), static_cast<g::Vertex>(n - 1));
    EXPECT_EQ(out.weights()[n - 1], n);
    EXPECT_EQ(out.stats().longest_path, n - 1);
}

TEST(Realize, ExpectedDirectVoterCountClosedForm) {
    Rng rng(5);
    const model::Instance inst(g::make_complete(40),
                               model::uniform_competencies(rng, 40, 0.1, 0.9), 0.05);
    const mech::ApprovalSizeThreshold m(3);
    const double expected = ld::delegation::expected_direct_voter_count(m, inst);
    ASSERT_GE(expected, 0.0);
    // The mechanism is deterministic in who delegates; realize once and
    // compare.
    const auto out = ld::delegation::realize(m, inst, rng);
    EXPECT_NEAR(expected,
                static_cast<double>(inst.voter_count() - out.stats().delegator_count),
                1e-9);
}

TEST(Realize, DirectVotingHasNoClosedFormGap) {
    Rng rng(6);
    const model::Instance inst(g::make_complete(10),
                               model::uniform_competencies(rng, 10, 0.3, 0.7), 0.05);
    const mech::DirectVoting direct;
    EXPECT_DOUBLE_EQ(ld::delegation::expected_direct_voter_count(direct, inst), 10.0);
}

}  // namespace
