// Tests for the parallel replication runner and the Lemma-4 approximate
// tally path.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/direct.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace {

namespace election = ld::election;
namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::rng::Rng;
using ld::support::ContractViolation;

model::Instance pc_instance(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    return model::Instance(g::make_complete(n),
                           model::pc_competencies(rng, n, 0.02, 0.25), 0.05);
}

TEST(ParallelEval, MatchesSequentialWithinError) {
    const auto inst = pc_instance(150, 1);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions seq;
    seq.replications = 400;
    election::EvalOptions par = seq;
    par.threads = 4;

    Rng rng_a(7), rng_b(7);
    const auto est_seq = election::estimate_correct_probability(m, inst, rng_a, seq);
    const auto est_par = election::estimate_correct_probability(m, inst, rng_b, par);
    EXPECT_EQ(est_par.replications, 400u);
    EXPECT_NEAR(est_par.value, est_seq.value,
                4.0 * (est_seq.std_error + est_par.std_error) + 1e-6);
}

TEST(ParallelEval, DeterministicForFixedSeedAndThreads) {
    const auto inst = pc_instance(100, 2);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 120;
    opts.threads = 3;
    Rng rng_a(11), rng_b(11);
    const auto r1 = election::estimate_correct_probability(m, inst, rng_a, opts);
    const auto r2 = election::estimate_correct_probability(m, inst, rng_b, opts);
    EXPECT_DOUBLE_EQ(r1.value, r2.value);
    EXPECT_DOUBLE_EQ(r1.std_error, r2.std_error);
}

TEST(ParallelEval, MoreThreadsThanReplicationsIsFine) {
    const auto inst = pc_instance(40, 3);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 3;
    opts.threads = 16;
    Rng rng(1);
    const auto est = election::estimate_correct_probability(m, inst, rng, opts);
    EXPECT_EQ(est.replications, 3u);
}

TEST(ParallelEval, ZeroThreadsRejected) {
    const auto inst = pc_instance(20, 4);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.threads = 0;
    Rng rng(1);
    EXPECT_THROW(election::estimate_correct_probability(m, inst, rng, opts),
                 ContractViolation);
}

TEST(ParallelEval, GainReportViaThreads) {
    const auto inst = pc_instance(200, 5);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 200;
    opts.threads = 4;
    Rng rng(2);
    const auto report = election::estimate_gain(m, inst, rng, opts);
    EXPECT_GT(report.gain, 0.2);  // PC regime: delegation rescues the vote
    EXPECT_GT(report.mean_delegators, 100.0);
    EXPECT_GE(report.mean_max_weight, 1.0);
}

TEST(ApproxTally, CloseToExactOnModerateInstances) {
    Rng rng(6);
    const auto inst = pc_instance(300, 7);
    const mech::ApprovalSizeThreshold m(1);
    for (int rep = 0; rep < 10; ++rep) {
        const auto out = ld::delegation::realize(m, inst, rng);
        const double exact =
            election::exact_correct_probability(out, inst.competencies());
        const double approx =
            election::approx_correct_probability(out, inst.competencies());
        EXPECT_NEAR(approx, exact, 0.05);
    }
}

TEST(ApproxTally, HandlesDegenerateCases) {
    // All abstain → 0.
    {
        std::vector<ld::mech::Action> actions{ld::mech::Action::delegate_to(1),
                                              ld::mech::Action::abstain()};
        const ld::delegation::DelegationOutcome out(std::move(actions));
        EXPECT_EQ(election::approx_correct_probability(
                      out, model::CompetencyVector({0.5, 0.5})),
                  0.0);
    }
    // Deterministic dictator (p = 1) → 1; (p = 0) → 0.
    for (double p : {0.0, 1.0}) {
        std::vector<ld::mech::Action> actions{ld::mech::Action::vote(),
                                              ld::mech::Action::delegate_to(0)};
        const ld::delegation::DelegationOutcome out(std::move(actions));
        EXPECT_EQ(election::approx_correct_probability(
                      out, model::CompetencyVector({p, 0.5})),
                  p);
    }
}

TEST(ApproxTally, EvaluatorFlagProducesSimilarGain) {
    const auto inst = pc_instance(250, 8);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions exact_opts;
    exact_opts.replications = 150;
    auto approx_opts = exact_opts;
    approx_opts.approximate_tally = true;
    Rng rng_a(3), rng_b(3);
    const auto exact = election::estimate_gain(m, inst, rng_a, exact_opts);
    const auto approx = election::estimate_gain(m, inst, rng_b, approx_opts);
    EXPECT_NEAR(approx.gain, exact.gain, 0.05);
}

TEST(ApproxTally, ScalesToHugeInstances) {
    // n = 50k would be prohibitive for the exact DP; the approximation
    // finishes quickly and agrees with the Condorcet limit.
    Rng rng(9);
    const std::size_t n = 50000;
    std::vector<ld::mech::Action> actions(n, ld::mech::Action::vote());
    const ld::delegation::DelegationOutcome out(std::move(actions));
    const auto p = model::uniform_competencies(rng, n, 0.51, 0.55);
    const double approx = election::approx_correct_probability(out, p);
    EXPECT_GT(approx, 0.999);  // mean 0.53, margin ~ 30 sigma
}

}  // namespace
