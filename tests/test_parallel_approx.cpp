// Tests for the parallel replication runner and the Lemma-4 approximate
// tally path.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/engine.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/direct.hpp"
#include "ld/mech/multi_delegate.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace {

namespace election = ld::election;
namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::rng::Rng;
using ld::support::ContractViolation;

model::Instance pc_instance(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    return model::Instance(g::make_complete(n),
                           model::pc_competencies(rng, n, 0.02, 0.25), 0.05);
}

TEST(ParallelEval, MatchesSequentialWithinError) {
    const auto inst = pc_instance(150, 1);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions seq;
    seq.replications = 400;
    election::EvalOptions par = seq;
    par.threads = 4;

    Rng rng_a(7), rng_b(7);
    const auto est_seq = election::estimate_correct_probability(m, inst, rng_a, seq);
    const auto est_par = election::estimate_correct_probability(m, inst, rng_b, par);
    EXPECT_EQ(est_par.replications, 400u);
    EXPECT_NEAR(est_par.value, est_seq.value,
                4.0 * (est_seq.std_error + est_par.std_error) + 1e-6);
}

TEST(ParallelEval, DeterministicForFixedSeedAndThreads) {
    const auto inst = pc_instance(100, 2);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 120;
    opts.threads = 3;
    Rng rng_a(11), rng_b(11);
    const auto r1 = election::estimate_correct_probability(m, inst, rng_a, opts);
    const auto r2 = election::estimate_correct_probability(m, inst, rng_b, opts);
    EXPECT_DOUBLE_EQ(r1.value, r2.value);
    EXPECT_DOUBLE_EQ(r1.std_error, r2.std_error);
}

TEST(ParallelEval, MoreThreadsThanReplicationsIsFine) {
    const auto inst = pc_instance(40, 3);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 3;
    opts.threads = 16;
    Rng rng(1);
    const auto est = election::estimate_correct_probability(m, inst, rng, opts);
    EXPECT_EQ(est.replications, 3u);
}

TEST(ParallelEval, ZeroThreadsRejected) {
    const auto inst = pc_instance(20, 4);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.threads = 0;
    Rng rng(1);
    EXPECT_THROW(election::estimate_correct_probability(m, inst, rng, opts),
                 ContractViolation);
}

TEST(ParallelEval, PoolMatchesLegacySpawnPathBitForBit) {
    // The pool and the legacy std::thread spawn/join path share the stream
    // split and merge order, so for a fixed (seed, threads) pair they must
    // agree to the last bit — not just statistically.
    const auto inst = pc_instance(120, 12);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions pooled;
    pooled.replications = 160;
    pooled.threads = 4;
    pooled.use_thread_pool = true;
    election::EvalOptions legacy = pooled;
    legacy.use_thread_pool = false;

    Rng rng_a(21), rng_b(21);
    const auto via_pool = election::estimate_correct_probability(m, inst, rng_a, pooled);
    const auto via_spawn = election::estimate_correct_probability(m, inst, rng_b, legacy);
    EXPECT_DOUBLE_EQ(via_pool.value, via_spawn.value);
    EXPECT_DOUBLE_EQ(via_pool.std_error, via_spawn.std_error);
}

TEST(ParallelEval, PooledThreadCountsAgreeWithinError) {
    const auto inst = pc_instance(130, 13);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions base;
    base.replications = 300;

    std::vector<election::Estimate> estimates;
    for (std::size_t threads : {1u, 2u, 4u}) {
        auto opts = base;
        opts.threads = threads;
        Rng rng(31);
        estimates.push_back(election::estimate_correct_probability(m, inst, rng, opts));
    }
    for (std::size_t i = 1; i < estimates.size(); ++i) {
        EXPECT_NEAR(estimates[i].value, estimates[0].value,
                    4.0 * (estimates[i].std_error + estimates[0].std_error) + 1e-6);
        EXPECT_EQ(estimates[i].replications, 300u);
    }
}

TEST(ParallelEval, WorkspaceReuseAcrossDifferentInstanceSizes) {
    // Two consecutive estimates through one engine exercise workspace
    // buffers sized by the *first* instance on the larger/smaller second
    // one; results must match fresh-engine evaluations exactly.
    const auto small = pc_instance(60, 14);
    const auto large = pc_instance(180, 15);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions reused_opts;
    reused_opts.replications = 80;
    reused_opts.threads = 2;

    election::ReplicationEngine reused;
    reused_opts.engine = &reused;
    Rng rng_a(41), rng_b(42);
    const auto large_reused = election::estimate_gain(m, large, rng_a, reused_opts);
    const auto small_reused = election::estimate_gain(m, small, rng_b, reused_opts);

    auto fresh_opts = reused_opts;
    election::ReplicationEngine fresh_a, fresh_b;
    Rng rng_c(41), rng_d(42);
    fresh_opts.engine = &fresh_a;
    const auto large_fresh = election::estimate_gain(m, large, rng_c, fresh_opts);
    fresh_opts.engine = &fresh_b;
    const auto small_fresh = election::estimate_gain(m, small, rng_d, fresh_opts);

    EXPECT_DOUBLE_EQ(large_reused.pm.value, large_fresh.pm.value);
    EXPECT_DOUBLE_EQ(large_reused.mean_max_weight, large_fresh.mean_max_weight);
    EXPECT_DOUBLE_EQ(small_reused.pm.value, small_fresh.pm.value);
    EXPECT_DOUBLE_EQ(small_reused.mean_max_weight, small_fresh.mean_max_weight);
}

TEST(ParallelEval, MultiDelegationWithoutInnerSamplesRejectedUpFront) {
    const auto inst = pc_instance(30, 16);
    const mech::MultiDelegate m(3, 3);
    election::EvalOptions opts;
    opts.replications = 10;
    opts.inner_samples = 0;  // no exact inner step exists for multi-delegation
    opts.cycle_policy = ld::delegation::CyclePolicy::Discard;
    Rng rng(1);
    EXPECT_THROW(election::estimate_correct_probability(m, inst, rng, opts),
                 ContractViolation);
}

TEST(ParallelEval, GainReportViaThreads) {
    const auto inst = pc_instance(200, 5);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 200;
    opts.threads = 4;
    Rng rng(2);
    const auto report = election::estimate_gain(m, inst, rng, opts);
    EXPECT_GT(report.gain, 0.2);  // PC regime: delegation rescues the vote
    EXPECT_GT(report.mean_delegators, 100.0);
    EXPECT_GE(report.mean_max_weight, 1.0);
}

TEST(ApproxTally, CloseToExactOnModerateInstances) {
    Rng rng(6);
    const auto inst = pc_instance(300, 7);
    const mech::ApprovalSizeThreshold m(1);
    for (int rep = 0; rep < 10; ++rep) {
        const auto out = ld::delegation::realize(m, inst, rng);
        const double exact =
            election::exact_correct_probability(out, inst.competencies());
        const double approx =
            election::approx_correct_probability(out, inst.competencies());
        EXPECT_NEAR(approx, exact, 0.05);
    }
}

TEST(ApproxTally, HandlesDegenerateCases) {
    // All abstain → 0.
    {
        std::vector<ld::mech::Action> actions{ld::mech::Action::delegate_to(1),
                                              ld::mech::Action::abstain()};
        const ld::delegation::DelegationOutcome out(std::move(actions));
        EXPECT_EQ(election::approx_correct_probability(
                      out, model::CompetencyVector({0.5, 0.5})),
                  0.0);
    }
    // Deterministic dictator (p = 1) → 1; (p = 0) → 0.
    for (double p : {0.0, 1.0}) {
        std::vector<ld::mech::Action> actions{ld::mech::Action::vote(),
                                              ld::mech::Action::delegate_to(0)};
        const ld::delegation::DelegationOutcome out(std::move(actions));
        EXPECT_EQ(election::approx_correct_probability(
                      out, model::CompetencyVector({p, 0.5})),
                  p);
    }
}

TEST(ApproxTally, EvaluatorFlagProducesSimilarGain) {
    const auto inst = pc_instance(250, 8);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions exact_opts;
    exact_opts.replications = 150;
    auto approx_opts = exact_opts;
    approx_opts.approximate_tally = true;
    Rng rng_a(3), rng_b(3);
    const auto exact = election::estimate_gain(m, inst, rng_a, exact_opts);
    const auto approx = election::estimate_gain(m, inst, rng_b, approx_opts);
    EXPECT_NEAR(approx.gain, exact.gain, 0.05);
}

TEST(ApproxTally, ScalesToHugeInstances) {
    // n = 50k would be prohibitive for the exact DP; the approximation
    // finishes quickly and agrees with the Condorcet limit.
    Rng rng(9);
    const std::size_t n = 50000;
    std::vector<ld::mech::Action> actions(n, ld::mech::Action::vote());
    const ld::delegation::DelegationOutcome out(std::move(actions));
    const auto p = model::uniform_competencies(rng, n, 0.51, 0.55);
    const double approx = election::approx_correct_probability(out, p);
    EXPECT_GT(approx, 0.999);  // mean 0.53, margin ~ 30 sigma
}

}  // namespace
