// Tests for the observability layer: sharded counters/gauges/histograms,
// registry thread-safety under the pool, snapshot diffs, derived
// quantities, and the JSON report round-tripping through the parser.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace {

namespace support = ld::support;
namespace json = ld::support::json;

TEST(Counter, AggregatesAcrossPoolWorkers) {
    support::MetricsRegistry registry;
    support::Counter& counter = registry.counter("test.counter");
    support::ThreadPool pool(4);
    support::TaskGroup group(pool);
    constexpr std::size_t kTasks = 16;
    constexpr std::size_t kAddsPerTask = 10000;
    for (std::size_t t = 0; t < kTasks; ++t) {
        group.submit([&counter] {
            for (std::size_t i = 0; i < kAddsPerTask; ++i) counter.add(1);
        });
    }
    group.wait();
    EXPECT_EQ(counter.value(), kTasks * kAddsPerTask);
}

TEST(Counter, ResetZeroesAllShards) {
    support::Counter counter;
    counter.add(7);
    counter.add(3);
    EXPECT_EQ(counter.value(), 10u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
    counter.add(2);
    EXPECT_EQ(counter.value(), 2u);
}

TEST(Gauge, TracksValueAndHighWaterMark) {
    support::Gauge gauge;
    gauge.set(5);
    gauge.add(3);   // 8
    gauge.add(-6);  // 2
    EXPECT_EQ(gauge.value(), 2);
    EXPECT_EQ(gauge.max(), 8);
    gauge.set(1);
    EXPECT_EQ(gauge.value(), 1);
    EXPECT_EQ(gauge.max(), 8);
}

TEST(LatencyHistogram, BucketBoundsAreStrictlyIncreasing) {
    const auto bounds = support::LatencyHistogram::bucket_bounds();
    ASSERT_GT(bounds.size(), 2u);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        EXPECT_LT(bounds[i - 1], bounds[i]);
    }
}

TEST(LatencyHistogram, BucketBoundaryPlacement) {
    const auto bounds = support::LatencyHistogram::bucket_bounds();
    // A value exactly on a bound lands in that bound's bucket...
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        EXPECT_EQ(support::LatencyHistogram::bucket_for(bounds[i]), i);
    }
    // ...just above it, in the next; zero/negative clamp into bucket 0;
    // values past the last bound go to the overflow bucket.
    EXPECT_EQ(support::LatencyHistogram::bucket_for(bounds[0] * 1.01), 1u);
    EXPECT_EQ(support::LatencyHistogram::bucket_for(0.0), 0u);
    EXPECT_EQ(support::LatencyHistogram::bucket_for(-1.0), 0u);
    EXPECT_EQ(support::LatencyHistogram::bucket_for(bounds.back() * 2.0), bounds.size());

    support::LatencyHistogram hist;
    hist.record(bounds[3]);
    hist.record(bounds[3] * 1.01);
    hist.record(bounds.back() * 2.0);
    const auto counts = hist.bucket_counts();
    ASSERT_EQ(counts.size(), bounds.size() + 1);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(counts[4], 1u);
    EXPECT_EQ(counts.back(), 1u);
    EXPECT_EQ(hist.count(), 3u);
}

TEST(LatencyHistogram, TotalsAndQuantiles) {
    support::LatencyHistogram hist;
    for (int i = 0; i < 90; ++i) hist.record(1e-4);  // bucket with bound 1e-4
    for (int i = 0; i < 10; ++i) hist.record(1e-2);
    EXPECT_EQ(hist.count(), 100u);
    EXPECT_NEAR(hist.total_seconds(), 90 * 1e-4 + 10 * 1e-2, 1e-6);

    support::MetricsSnapshot::HistogramRow row{
        "h", hist.count(), hist.total_seconds(), hist.bucket_counts()};
    EXPECT_NEAR(row.mean_seconds(), row.total_seconds / 100.0, 1e-12);
    EXPECT_DOUBLE_EQ(row.quantile(0.5), 1e-4);
    EXPECT_DOUBLE_EQ(row.quantile(0.95), 1e-2);
    EXPECT_LE(row.quantile(0.0), row.quantile(1.0));
}

TEST(MetricsRegistry, LookupIsIdempotent) {
    support::MetricsRegistry registry;
    EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
    EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
    EXPECT_EQ(&registry.gauge("a"), &registry.gauge("a"));
    EXPECT_EQ(&registry.histogram("a"), &registry.histogram("a"));
}

TEST(MetricsRegistry, ThreadSafeLookupAndWriteUnderPool) {
    support::MetricsRegistry registry;
    support::ThreadPool pool(4);
    support::TaskGroup group(pool);
    constexpr std::size_t kTasks = 32;
    constexpr std::size_t kAdds = 2000;
    for (std::size_t t = 0; t < kTasks; ++t) {
        group.submit([&registry, t] {
            // Mixed lookups of shared names from every worker: exercises
            // the registry mutex and the sharded writers concurrently.
            support::Counter& counter =
                registry.counter("shared.counter." + std::to_string(t % 4));
            support::LatencyHistogram& hist = registry.histogram("shared.hist");
            registry.gauge("shared.gauge").set(static_cast<std::int64_t>(t));
            for (std::size_t i = 0; i < kAdds; ++i) {
                counter.add(1);
                if (i % 100 == 0) hist.record(1e-5);
            }
        });
    }
    group.wait();
    std::uint64_t total = 0;
    for (int c = 0; c < 4; ++c) {
        total += registry.counter("shared.counter." + std::to_string(c)).value();
    }
    EXPECT_EQ(total, kTasks * kAdds);
    EXPECT_EQ(registry.histogram("shared.hist").count(), kTasks * (kAdds / 100));
}

TEST(MetricsRegistry, ResetKeepsReferencesValid) {
    support::MetricsRegistry registry;
    support::Counter& counter = registry.counter("c");
    support::LatencyHistogram& hist = registry.histogram("h");
    counter.add(5);
    hist.record(0.001);
    registry.reset();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(hist.count(), 0u);
    counter.add(1);
    EXPECT_EQ(registry.counter("c").value(), 1u);
}

TEST(MetricsSnapshot, SinceComputesDeltas) {
    support::MetricsRegistry registry;
    registry.counter("c").add(10);
    registry.histogram("h").record(1e-3);
    registry.gauge("g").set(4);
    const auto before = registry.snapshot();
    registry.counter("c").add(7);
    registry.histogram("h").record(1e-3);
    registry.histogram("h").record(1e-3);
    registry.gauge("g").set(2);
    const auto delta = registry.snapshot().since(before);
    EXPECT_EQ(delta.counter_value("c"), 7u);
    const auto* hist = delta.find_histogram("h");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 2u);
    // Gauges keep their current value rather than differencing.
    EXPECT_EQ(delta.gauge_value("g"), 2);
}

TEST(MetricsSnapshot, DerivedQuantities) {
    support::MetricsSnapshot snap;
    snap.uptime_seconds = 2.0;
    snap.counters = {{"engine.replication_ns", 500000000ull},  // 0.5 s
                     {"engine.replications", 1000},
                     {"engine.workspace_created", 2},
                     {"engine.workspace_reused", 8},
                     {"pool.busy_ns", 1000000000ull}};  // 1 s busy
    snap.gauges = {{"pool.workers", 2, 2}};
    const auto derived = support::derive_metrics(snap);
    EXPECT_NEAR(derived.replications_per_sec, 2000.0, 1e-9);
    EXPECT_NEAR(derived.workspace_reuse_rate, 0.8, 1e-12);
    EXPECT_NEAR(derived.pool_utilisation, 1.0 / 4.0, 1e-12);
}

TEST(MetricsJson, ReportRoundTripsThroughParser) {
    support::MetricsRegistry registry;
    registry.counter("engine.replications").add(42);
    registry.gauge("pool.workers").set(3);
    registry.histogram("estimate.latency").record(0.0123);
    std::ostringstream out;
    support::write_metrics_json(out, registry.snapshot());

    const json::Value doc = json::parse(out.str());
    EXPECT_EQ(doc.at("schema").as_string(), "liquidd.metrics.v1");
    EXPECT_DOUBLE_EQ(doc.at("counters").at("engine.replications").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("pool.workers").at("value").as_number(), 3.0);
    const json::Value& hist = doc.at("histograms").at("estimate.latency");
    EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 1.0);
    EXPECT_GT(hist.at("mean_seconds").as_number(), 0.0);
    std::uint64_t bucket_total = 0;
    for (const auto& bucket : hist.at("buckets").as_array()) {
        bucket_total += static_cast<std::uint64_t>(bucket.at("count").as_number());
    }
    EXPECT_EQ(bucket_total, 1u);
    EXPECT_TRUE(doc.at("derived").contains("replications_per_sec"));
    EXPECT_TRUE(doc.at("derived").contains("pool_utilisation"));
}

TEST(MetricsTable, RowsCoverEveryMetricAndDerived) {
    support::MetricsRegistry registry;
    registry.counter("c").add(1);
    registry.gauge("g").set(2);
    registry.histogram("h").record(0.5);
    const auto rows = support::metrics_table_rows(registry.snapshot());
    EXPECT_EQ(rows.size(), 3u + 3u);  // one per metric + three derived
    std::ostringstream out;
    support::print_metrics_table(out, registry.snapshot());
    EXPECT_NE(out.str().find("derived.pool_utilisation"), std::string::npos);
}

TEST(Json, ParsesScalarsContainersEscapes) {
    const json::Value doc = json::parse(R"({
        "num": -1.25e3, "t": true, "f": false, "nil": null,
        "str": "a\"b\\c\ndA",
        "arr": [1, 2.5, "x", {"k": []}],
        "nested": {"a": {"b": 7}}
    })");
    EXPECT_DOUBLE_EQ(doc.at("num").as_number(), -1250.0);
    EXPECT_TRUE(doc.at("t").as_bool());
    EXPECT_FALSE(doc.at("f").as_bool());
    EXPECT_TRUE(doc.at("nil").is_null());
    EXPECT_EQ(doc.at("str").as_string(), "a\"b\\c\ndA");
    ASSERT_EQ(doc.at("arr").as_array().size(), 4u);
    EXPECT_DOUBLE_EQ(doc.at("arr").as_array()[1].as_number(), 2.5);
    EXPECT_DOUBLE_EQ(doc.at("nested").at("a").at("b").as_number(), 7.0);
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_THROW(doc.at("missing"), json::Error);
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW(json::parse(""), json::Error);
    EXPECT_THROW(json::parse("{"), json::Error);
    EXPECT_THROW(json::parse("[1,]"), json::Error);
    EXPECT_THROW(json::parse("{\"a\" 1}"), json::Error);
    EXPECT_THROW(json::parse("\"unterminated"), json::Error);
    EXPECT_THROW(json::parse("12 34"), json::Error);
    EXPECT_THROW(json::parse("1..2"), json::Error);
    EXPECT_THROW(json::parse_file("/no/such/file.json"), json::Error);
    EXPECT_THROW(json::parse("3").at("k"), json::Error);  // non-object access
}

TEST(PoolMetrics, GlobalRegistryObservesPoolActivity) {
    auto& registry = support::MetricsRegistry::global();
    const auto before = registry.snapshot();
    {
        support::ThreadPool pool(2);
        support::TaskGroup group(pool);
        for (int i = 0; i < 8; ++i) {
            group.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(1)); });
        }
        group.wait();
    }
    const auto delta = registry.snapshot().since(before);
    // wait() may help with some tasks; executed + helped must cover all 8.
    EXPECT_GE(delta.counter_value("pool.tasks_executed") +
                  delta.counter_value("pool.tasks_helped"),
              8u);
    EXPECT_GT(delta.counter_value("pool.busy_ns") +
                  delta.counter_value("pool.tasks_helped"),
              0u);
}

}  // namespace
