// Tests for normal-distribution utilities (Lemma 3/4 machinery).

#include <gtest/gtest.h>

#include <cmath>

#include "prob/normal.hpp"
#include "support/expect.hpp"

namespace {

namespace prob = ld::prob;
using ld::support::ContractViolation;

TEST(NormalPdf, KnownValues) {
    EXPECT_NEAR(prob::normal_pdf(0.0), 0.3989422804014327, 1e-15);
    EXPECT_NEAR(prob::normal_pdf(1.0), 0.24197072451914337, 1e-15);
    EXPECT_NEAR(prob::normal_pdf(-1.0), prob::normal_pdf(1.0), 1e-15);
}

TEST(NormalCdf, KnownValues) {
    EXPECT_NEAR(prob::normal_cdf(0.0), 0.5, 1e-15);
    EXPECT_NEAR(prob::normal_cdf(1.0), 0.8413447460685429, 1e-12);
    EXPECT_NEAR(prob::normal_cdf(-1.96), 0.024997895148220435, 1e-9);
    EXPECT_NEAR(prob::normal_cdf(1.0) + prob::normal_cdf(-1.0), 1.0, 1e-14);
}

TEST(NormalCdf, GeneralParameters) {
    EXPECT_NEAR(prob::normal_cdf(10.0, 10.0, 2.0), 0.5, 1e-15);
    EXPECT_NEAR(prob::normal_cdf(12.0, 10.0, 2.0), prob::normal_cdf(1.0), 1e-15);
    EXPECT_THROW(prob::normal_cdf(0.0, 0.0, 0.0), ContractViolation);
}

TEST(NormalQuantile, RoundTripsWithCdf) {
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999}) {
        const double x = prob::normal_quantile(p);
        EXPECT_NEAR(prob::normal_cdf(x), p, 1e-10) << "p=" << p;
    }
}

TEST(NormalQuantile, KnownCriticalValues) {
    EXPECT_NEAR(prob::normal_quantile(0.975), 1.959963984540054, 1e-9);
    EXPECT_NEAR(prob::normal_quantile(0.995), 2.5758293035489004, 1e-9);
    EXPECT_NEAR(prob::normal_quantile(0.5), 0.0, 1e-12);
    EXPECT_THROW(prob::normal_quantile(0.0), ContractViolation);
    EXPECT_THROW(prob::normal_quantile(1.0), ContractViolation);
}

TEST(CentralWindow, MatchesErfIdentity) {
    // P[|Z| <= r] = erf(r/√2).
    for (double r : {0.0, 0.5, 1.0, 2.0, 3.0}) {
        const double expected = prob::normal_cdf(r) - prob::normal_cdf(-r);
        EXPECT_NEAR(prob::central_window_mass(r), expected, 1e-12) << "r=" << r;
    }
    EXPECT_THROW(prob::central_window_mass(-1.0), ContractViolation);
}

TEST(CentralWindow, VanishesAndSaturates) {
    EXPECT_NEAR(prob::central_window_mass(0.0), 0.0, 1e-15);
    EXPECT_NEAR(prob::central_window_mass(10.0), 1.0, 1e-15);
}

TEST(IntervalMass, BasicProperties) {
    EXPECT_NEAR(prob::interval_mass(-1.0, 1.0, 0.0, 1.0),
                prob::central_window_mass(1.0), 1e-12);
    EXPECT_NEAR(prob::interval_mass(5.0, 5.0, 0.0, 1.0), 0.0, 1e-15);
    EXPECT_THROW(prob::interval_mass(2.0, 1.0, 0.0, 1.0), ContractViolation);
}

TEST(Lemma3Shape, WindowMassVanishesAtSqrtNScale) {
    // The Lemma 3 argument: flipped mass ~ n^{1/2−ε}, σ ~ √n, so the
    // window radius in σ units is n^{−ε} → 0, and the flip probability
    // erf(r/√2) → 0.  Check the monotone decay numerically.
    double prev = 1.0;
    for (double n : {1e2, 1e4, 1e6, 1e8}) {
        const double radius = std::pow(n, 0.4) / std::sqrt(n);  // n^{-0.1}
        const double mass = prob::central_window_mass(radius);
        EXPECT_LT(mass, prev);
        prev = mass;
    }
    EXPECT_LT(prev, 0.15);
}

}  // namespace
