// Tests for exact tallying and the Monte-Carlo evaluator: agreement between
// the exact inner step and vote sampling, gain estimation, and the
// law-of-total-variance decomposition.

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/direct.hpp"
#include "ld/mech/multi_delegate.hpp"
#include "ld/model/competency_gen.hpp"
#include "prob/poisson_binomial.hpp"

namespace {

namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::delegation::DelegationOutcome;
using ld::mech::Action;
using ld::rng::Rng;

model::Instance uniform_complete(std::size_t n, std::uint64_t seed, double lo = 0.2,
                                 double hi = 0.8, double alpha = 0.05) {
    Rng rng(seed);
    return model::Instance(g::make_complete(n),
                           model::uniform_competencies(rng, n, lo, hi), alpha);
}

TEST(Tally, NoDelegationMatchesPoissonBinomial) {
    const auto inst = uniform_complete(15, 1);
    std::vector<Action> actions(15, Action::vote());
    const DelegationOutcome out(std::move(actions));
    const double exact =
        ld::election::exact_correct_probability(out, inst.competencies());
    EXPECT_NEAR(exact, ld::prob::direct_majority_probability(inst.competencies().values()),
                1e-12);
}

TEST(Tally, DictatorOutcomeIsTheDictatorsCompetency) {
    const model::CompetencyVector p({0.75, 0.52, 0.52, 0.52, 0.52});
    std::vector<Action> actions(5, Action::delegate_to(0));
    actions[0] = Action::vote();
    const DelegationOutcome out(std::move(actions));
    EXPECT_NEAR(ld::election::exact_correct_probability(out, p), 0.75, 1e-12);
}

TEST(Tally, AllAbstainGivesZero) {
    // Voter 1 delegates (making abstention legal), 0 abstains: 0 votes cast
    // except voter 1's chain is discarded too.
    const model::CompetencyVector p({0.9, 0.5});
    std::vector<Action> actions{Action::abstain(), Action::delegate_to(0)};
    const DelegationOutcome out(std::move(actions));
    EXPECT_EQ(ld::election::exact_correct_probability(out, p), 0.0);
}

TEST(Tally, ConditionalMeanAndVariance) {
    const model::CompetencyVector p({0.8, 0.6, 0.5});
    // 2 -> 0; sinks: 0 (weight 2, p .8), 1 (weight 1, p .6).
    std::vector<Action> actions{Action::vote(), Action::vote(), Action::delegate_to(0)};
    const DelegationOutcome out(std::move(actions));
    EXPECT_NEAR(ld::election::conditional_vote_mean(out, p), 2 * 0.8 + 0.6, 1e-12);
    EXPECT_NEAR(ld::election::conditional_vote_variance(out, p),
                4 * 0.8 * 0.2 + 0.6 * 0.4, 1e-12);
}

TEST(Tally, SampledFrequencyMatchesExactProbability) {
    Rng rng(2);
    const auto inst = uniform_complete(25, 3);
    const mech::ApprovalSizeThreshold m(1);
    const auto out = ld::delegation::realize(m, inst, rng);
    const double exact =
        ld::election::exact_correct_probability(out, inst.competencies());
    int hits = 0;
    const int trials = 40000;
    for (int t = 0; t < trials; ++t) {
        if (ld::election::sample_outcome_correct(out, inst.competencies(), rng)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, exact, 0.01);
}

TEST(Tally, SampleCorrectVoteCountHasTheRightMean) {
    Rng rng(3);
    const auto inst = uniform_complete(20, 4);
    const mech::ApprovalSizeThreshold m(1);
    const auto out = ld::delegation::realize(m, inst, rng);
    const double mean = ld::election::conditional_vote_mean(out, inst.competencies());
    double acc = 0.0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        acc += static_cast<double>(
            ld::election::sample_correct_vote_count(out, inst.competencies(), rng));
    }
    EXPECT_NEAR(acc / trials, mean, 0.1);
}

TEST(Tally, MultiDelegatePropagationMatchesHandComputation) {
    // Voter 3 delegates to {0, 1, 2} with deterministic competencies:
    // p = {1, 1, 0}: majority of delegates is always correct.
    const model::CompetencyVector p({1.0, 1.0, 0.0, 0.3});
    std::vector<Action> actions{Action::vote(), Action::vote(), Action::vote(),
                                Action::delegate_to_many({0, 1, 2})};
    const DelegationOutcome out(std::move(actions));
    Rng rng(5);
    int correct_total = 0;
    for (int t = 0; t < 2000; ++t) {
        // Votes: 1, 1, 0, and voter 3 votes the majority (1): 3 of 4 > 2.
        if (ld::election::sample_outcome_correct(out, p, rng)) ++correct_total;
    }
    EXPECT_EQ(correct_total, 2000);
}

TEST(Evaluator, ExactDirectMatchesPoissonBinomial) {
    const auto inst = uniform_complete(30, 6);
    EXPECT_NEAR(ld::election::exact_direct_probability(inst),
                ld::prob::direct_majority_probability(inst.competencies().values()),
                1e-15);
    EXPECT_NEAR(ld::election::exact_direct_mean_votes(inst),
                inst.competencies().mean() * 30.0, 1e-12);
}

TEST(Evaluator, NaiveAndRaoBlackwellAgree) {
    Rng rng(7);
    const auto inst = uniform_complete(40, 8);
    const mech::ApprovalSizeThreshold m(1);
    ld::election::EvalOptions opts;
    opts.replications = 800;
    const auto rb = ld::election::estimate_correct_probability(m, inst, rng, opts);
    opts.replications = 20000;
    const auto naive = ld::election::estimate_correct_probability_naive(m, inst, rng, opts);
    EXPECT_NEAR(rb.value, naive.value, 0.02);
    EXPECT_EQ(rb.replications, 800u);
}

TEST(Evaluator, RaoBlackwellHasSmallerPerReplicationVariance) {
    Rng rng(9);
    const auto inst = uniform_complete(40, 10);
    const mech::ApprovalSizeThreshold m(1);
    ld::election::EvalOptions opts;
    opts.replications = 500;
    const auto rb = ld::election::estimate_correct_probability(m, inst, rng, opts);
    const auto naive =
        ld::election::estimate_correct_probability_naive(m, inst, rng, opts);
    EXPECT_LT(rb.std_error, naive.std_error);
}

TEST(Evaluator, GainReportIsInternallyConsistent) {
    Rng rng(11);
    const auto inst = uniform_complete(50, 12);
    const mech::ApprovalSizeThreshold m(1);
    ld::election::EvalOptions opts;
    opts.replications = 200;
    const auto report = ld::election::estimate_gain(m, inst, rng, opts);
    EXPECT_NEAR(report.gain, report.pm.value - report.pd, 1e-12);
    EXPECT_NEAR(report.gain_ci.lo, report.pm.ci.lo - report.pd, 1e-12);
    EXPECT_LE(report.pm.value, 1.0);
    EXPECT_GE(report.pm.value, 0.0);
    EXPECT_GT(report.mean_delegators, 0.0);
    EXPECT_GE(report.mean_max_weight, 1.0);
    EXPECT_GT(report.mean_sinks, 0.0);
}

TEST(Evaluator, DirectVotingGainIsExactlyZeroUpToFp) {
    Rng rng(13);
    const auto inst = uniform_complete(35, 14);
    const mech::DirectVoting direct;
    ld::election::EvalOptions opts;
    opts.replications = 10;
    const auto report = ld::election::estimate_gain(direct, inst, rng, opts);
    EXPECT_NEAR(report.gain, 0.0, 1e-10);
    EXPECT_NEAR(report.pm.std_error, 0.0, 1e-12);
}

TEST(Evaluator, MultiDelegateEstimationRuns) {
    Rng rng(15);
    const auto inst = uniform_complete(30, 16);
    const mech::MultiDelegate m(3, 1);
    ld::election::EvalOptions opts;
    opts.replications = 50;
    opts.inner_samples = 8;
    const auto est = ld::election::estimate_correct_probability(m, inst, rng, opts);
    EXPECT_GE(est.value, 0.0);
    EXPECT_LE(est.value, 1.0);
}

TEST(Evaluator, VarianceDecompositionLawOfTotalVariance) {
    Rng rng(17);
    const auto inst = uniform_complete(40, 18);
    const mech::ApprovalSizeThreshold m(1);
    ld::election::EvalOptions opts;
    opts.replications = 400;
    const auto var = ld::election::estimate_variance(m, inst, rng, opts);
    EXPECT_NEAR(var.total_variance,
                var.mean_conditional_variance + var.variance_of_conditional_mean, 1e-9);
    EXPECT_GT(var.direct_variance, 0.0);

    // Cross-check the total variance against brute-force sampling of the
    // correct-vote count (delegation graph + votes jointly random).
    ld::stats::RunningStats brute;
    for (int t = 0; t < 4000; ++t) {
        const auto out = ld::delegation::realize(m, inst, rng);
        brute.add(static_cast<double>(
            ld::election::sample_correct_vote_count(out, inst.competencies(), rng)));
    }
    EXPECT_NEAR(brute.variance(), var.total_variance,
                0.25 * var.total_variance + 1.0);
}

TEST(Evaluator, VarianceOfDirectVotingMatchesFormula) {
    Rng rng(19);
    const auto inst = uniform_complete(30, 20);
    const mech::DirectVoting direct;
    ld::election::EvalOptions opts;
    opts.replications = 10;
    const auto var = ld::election::estimate_variance(direct, inst, rng, opts);
    EXPECT_NEAR(var.mean_conditional_variance, var.direct_variance, 1e-9);
    EXPECT_NEAR(var.variance_of_conditional_mean, 0.0, 1e-9);
}

}  // namespace
