// Tests for the persistent worker pool under the replication engine:
// completion, exception propagation, and — critically — deadlock-free
// nested submit/wait on a single-worker pool (work-helping).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "support/thread_pool.hpp"

namespace {

using ld::support::TaskGroup;
using ld::support::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i) {
        group.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOneWorker) {
    ThreadPool pool;  // 0 → hardware_concurrency, clamped to >= 1
    EXPECT_GE(pool.worker_count(), 1u);
    EXPECT_GE(ThreadPool::global().worker_count(), 1u);
}

TEST(ThreadPool, WaitHelpsOnSingleWorkerPool) {
    // More tasks than workers: wait() must lend the calling thread.
    ThreadPool pool(1);
    std::atomic<int> counter{0};
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
        group.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, NestedSubmitWaitDoesNotDeadlock) {
    // A pool task that itself fans out a group on the same single-worker
    // pool and waits — the nested-parallelism shape of an experiment cell
    // running a pooled estimate.  Work-helping makes this finish.
    ThreadPool pool(1);
    std::atomic<int> inner_total{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 4; ++i) {
        outer.submit([&pool, &inner_total] {
            TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j) {
                inner.submit([&inner_total] {
                    inner_total.fetch_add(1, std::memory_order_relaxed);
                });
            }
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, FirstExceptionRethrownFromWait) {
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        group.submit([i, &ran] {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 3) throw std::runtime_error("task failed");
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 8);  // failure doesn't cancel the rest of the group
}

TEST(ThreadPool, GroupsShareOnePoolConcurrently) {
    ThreadPool pool(2);
    std::atomic<int> a{0}, b{0};
    TaskGroup ga(pool), gb(pool);
    for (int i = 0; i < 16; ++i) {
        ga.submit([&a] { a.fetch_add(1, std::memory_order_relaxed); });
        gb.submit([&b] { b.fetch_add(1, std::memory_order_relaxed); });
    }
    ga.wait();
    gb.wait();
    EXPECT_EQ(a.load(), 16);
    EXPECT_EQ(b.load(), 16);
}

}  // namespace
