// Tests for the concentration-bound calculators (Chernoff, Hoeffding,
// Lemma 3/5/6 instantiations).

#include <gtest/gtest.h>

#include <cmath>

#include "prob/bounds.hpp"
#include "support/expect.hpp"

namespace {

namespace prob = ld::prob;
using ld::support::ContractViolation;

TEST(Chernoff, LowerTailKnownValue) {
    // exp(−δ²μ/2) at δ=0.1, μ=200 → exp(−1).
    EXPECT_NEAR(prob::chernoff_lower_tail(200.0, 0.1), std::exp(-1.0), 1e-12);
}

TEST(Chernoff, LowerTailMonotonicity) {
    EXPECT_GT(prob::chernoff_lower_tail(100.0, 0.1), prob::chernoff_lower_tail(100.0, 0.2));
    EXPECT_GT(prob::chernoff_lower_tail(100.0, 0.1), prob::chernoff_lower_tail(200.0, 0.1));
    EXPECT_NEAR(prob::chernoff_lower_tail(100.0, 0.0), 1.0, 1e-15);
}

TEST(Chernoff, UpperTailFormula) {
    EXPECT_NEAR(prob::chernoff_upper_tail(100.0, 1.0), std::exp(-100.0 / 3.0), 1e-12);
    EXPECT_LT(prob::chernoff_upper_tail(100.0, 2.0), prob::chernoff_upper_tail(100.0, 1.0));
}

TEST(Chernoff, InputValidation) {
    EXPECT_THROW(prob::chernoff_lower_tail(-1.0, 0.5), ContractViolation);
    EXPECT_THROW(prob::chernoff_lower_tail(1.0, 1.5), ContractViolation);
    EXPECT_THROW(prob::chernoff_upper_tail(1.0, -0.5), ContractViolation);
}

TEST(Hoeffding, MatchesTheoremOne) {
    // n unit-range variables: P[|S−E| >= t] <= 2 exp(−2t²/n).
    const double n = 50.0, t = 10.0;
    EXPECT_NEAR(prob::hoeffding_two_sided(t, n), 2.0 * std::exp(-2.0 * t * t / n), 1e-12);
}

TEST(Hoeffding, IsCappedAtOne) {
    EXPECT_NEAR(prob::hoeffding_two_sided(0.0, 10.0), 1.0, 1e-15);
}

TEST(Lemma6, BoundShrinksWithMoreSinks) {
    // Fixed total weight, smaller max weight ⇒ more sinks ⇒ smaller bound.
    const double t = 50.0, total = 1000.0;
    EXPECT_LT(prob::lemma6_deviation_bound(t, total, 5.0),
              prob::lemma6_deviation_bound(t, total, 50.0));
}

TEST(Lemma5, RadiusFormula) {
    // radius = √(n^{1+ε})·w / c.
    const std::size_t n = 10000;
    EXPECT_NEAR(prob::lemma5_radius(n, 0.0, 3.0, 2.0), std::sqrt(10000.0) * 3.0 / 2.0,
                1e-9);
    EXPECT_GT(prob::lemma5_radius(n, 0.5, 3.0, 2.0), prob::lemma5_radius(n, 0.1, 3.0, 2.0));
}

TEST(Lemma5, FailureBoundDecaysWithN) {
    double prev = 1.0;
    for (std::size_t n : {100u, 10000u, 1000000u}) {
        const double b = prob::lemma5_failure_bound(n, 0.3, 1.0);
        EXPECT_LE(b, prev);
        prev = b;
    }
    EXPECT_LT(prev, 1e-10);
}

TEST(Lemma3, FlipProbabilityVanishesUnderBudget) {
    // Delegations within the n^{1/2−ε} budget: flip probability → 0.
    double prev = 1.0;
    for (std::size_t n : {100u, 10000u, 1000000u, 100000000u}) {
        const auto budget = prob::lemma3_delegation_budget(n, 0.25);
        const double flip =
            prob::lemma3_flip_probability(n, 0.25, 2.0 * static_cast<double>(budget));
        EXPECT_LT(flip, prev) << n;
        prev = flip;
    }
    EXPECT_LT(prev, 0.05);
}

TEST(Lemma3, FlipProbabilityNearOneWhenOverBudget) {
    // Delegating Θ(n) votes swamps the √n standard deviation.
    const std::size_t n = 10000;
    EXPECT_GT(prob::lemma3_flip_probability(n, 0.25, static_cast<double>(n) / 2.0), 0.99);
}

TEST(Lemma3, BudgetFormula) {
    EXPECT_EQ(prob::lemma3_delegation_budget(10000, 0.0), 100u);
    EXPECT_EQ(prob::lemma3_delegation_budget(10000, 0.25), 10u);
    EXPECT_THROW(prob::lemma3_delegation_budget(100, 0.7), ContractViolation);
}

TEST(Lemma3, BetaValidation) {
    EXPECT_THROW(prob::lemma3_flip_probability(100, 0.0, 1.0), ContractViolation);
    EXPECT_THROW(prob::lemma3_flip_probability(100, 0.5, 1.0), ContractViolation);
}

}  // namespace
