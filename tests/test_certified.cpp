// Tests for the certification subsystem: the anytime-valid confidence
// sequences (stats/confidence_sequence.hpp), the `--certify` replication
// loop in the evaluator, and the certified DNH/SPG verdict labels.
//
// The headline property suite checks *coverage*: on instances small enough
// to brute-force P^M exactly, the certified interval must contain the
// truth in ≥ (1 − δ) of seeded trials — even though each trial stops at a
// data-dependent time (the adversarial case repeated-look SE stopping gets
// wrong; see docs/STATISTICS.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ld/cli/runner.hpp"
#include "ld/cli/specs.hpp"
#include "ld/dnh/verdicts.hpp"
#include "ld/election/brute_force.hpp"
#include "ld/election/engine.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/sweep.hpp"
#include "ld/experiments/workloads.hpp"
#include "graph/generators.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"
#include "stats/confidence_sequence.hpp"
#include "support/expect.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace {

namespace g = ld::graph;
namespace exp = ld::experiments;
namespace json = ld::support::json;
using ld::election::EvalOptions;
using ld::rng::Rng;
using ld::stats::CertStop;
using ld::stats::ConfidenceSequence;
using ld::stats::CsBoundary;
using ld::support::ContractViolation;

namespace model = ld::model;
namespace mech = ld::mech;
namespace election = ld::election;

model::Instance small_instance(std::uint64_t seed, std::size_t n = 8) {
    Rng rng(seed);
    return model::Instance(g::make_complete(n),
                           model::uniform_competencies(rng, n, 0.2, 0.8), 0.07);
}

// Confidence-sequence formulas ---------------------------------------------

TEST(ConfidenceSequence, HoeffdingHalfWidthMatchesClosedForm) {
    const double delta = 0.05;
    ConfidenceSequence cs(CsBoundary::Hoeffding, delta);
    const std::size_t t = 100;
    for (std::size_t i = 0; i < t; ++i) cs.add(0.5);
    // First look spends delta_1 = delta / (1 * 2).
    const double delta_1 = delta / 2.0;
    EXPECT_DOUBLE_EQ(cs.peek_half_width(),
                     std::sqrt(std::log(2.0 / delta_1) / (2.0 * t)));
    cs.look();
    // Second look spends delta_2 = delta / (2 * 3): strictly wider at the
    // same t (the price of the extra look).
    const double delta_2 = delta / 6.0;
    EXPECT_DOUBLE_EQ(cs.peek_half_width(),
                     std::sqrt(std::log(2.0 / delta_2) / (2.0 * t)));
    EXPECT_EQ(cs.looks(), 1u);
    EXPECT_EQ(cs.count(), t);
}

TEST(ConfidenceSequence, EmpiricalBernsteinHalfWidthMatchesClosedForm) {
    const double delta = 0.1;
    ConfidenceSequence cs(CsBoundary::EmpiricalBernstein, delta);
    const std::size_t t = 10;
    for (std::size_t i = 0; i < t; ++i) cs.add(i % 2 == 0 ? 0.0 : 1.0);
    // Unbiased sample variance of five 0s and five 1s: 10 * 0.25 / 9.
    const double variance = 10.0 * 0.25 / 9.0;
    EXPECT_DOUBLE_EQ(cs.variance(), variance);
    const double delta_1 = delta / 2.0;
    const double log_term = std::log(4.0 / delta_1);
    EXPECT_DOUBLE_EQ(cs.peek_half_width(),
                     std::sqrt(2.0 * variance * log_term / t) +
                         7.0 * log_term / (3.0 * (t - 1)));
}

TEST(ConfidenceSequence, EmpiricalBernsteinAdaptsToLowVariance) {
    // Near-deterministic observations: EB must be far narrower than
    // Hoeffding at the same (t, delta) — the reason it is the default.
    ConfidenceSequence eb(CsBoundary::EmpiricalBernstein, 0.05);
    ConfidenceSequence hoeffding(CsBoundary::Hoeffding, 0.05);
    for (std::size_t i = 0; i < 10'000; ++i) {
        const double x = 0.7 + (i % 2 == 0 ? 1e-4 : -1e-4);
        eb.add(x);
        hoeffding.add(x);
    }
    EXPECT_LT(eb.peek_half_width(), hoeffding.peek_half_width() / 10.0);
}

TEST(ConfidenceSequence, LookIntervalsShrinkWithMoreData) {
    ConfidenceSequence cs(CsBoundary::EmpiricalBernstein, 0.05);
    Rng rng(17);
    double previous = 1.0;
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 2000; ++i) cs.add(rng.next_double());
        const auto iv = cs.look();
        const double width = iv.hi - iv.lo;
        EXPECT_LT(width, previous);
        EXPECT_GE(iv.lo, 0.0);
        EXPECT_LE(iv.hi, 1.0);
        previous = width;
    }
    EXPECT_EQ(cs.looks(), 5u);
}

TEST(ConfidenceSequence, ValidatesItsContract) {
    EXPECT_THROW(ConfidenceSequence(CsBoundary::Hoeffding, 0.0), ContractViolation);
    EXPECT_THROW(ConfidenceSequence(CsBoundary::Hoeffding, 1.0), ContractViolation);
    ConfidenceSequence cs(CsBoundary::EmpiricalBernstein, 0.05);
    EXPECT_THROW(cs.add(-0.1), ContractViolation);
    EXPECT_THROW(cs.add(1.1), ContractViolation);
    // The EB boundary divides by t - 1: a single observation cannot look.
    cs.add(0.5);
    EXPECT_THROW(cs.look(), ContractViolation);
}

TEST(ConfidenceSequence, NamesAndParsing) {
    using ld::stats::cert_stop_name;
    using ld::stats::cs_boundary_name;
    using ld::stats::parse_cs_boundary;
    EXPECT_STREQ(cs_boundary_name(CsBoundary::Hoeffding), "hoeffding");
    EXPECT_STREQ(cs_boundary_name(CsBoundary::EmpiricalBernstein),
                 "empirical_bernstein");
    EXPECT_EQ(parse_cs_boundary("hoeffding"), CsBoundary::Hoeffding);
    EXPECT_EQ(parse_cs_boundary("empirical_bernstein"),
              CsBoundary::EmpiricalBernstein);
    EXPECT_EQ(parse_cs_boundary("empirical-bernstein"),
              CsBoundary::EmpiricalBernstein);
    EXPECT_EQ(parse_cs_boundary("eb"), CsBoundary::EmpiricalBernstein);
    EXPECT_THROW(parse_cs_boundary("gaussian"), ContractViolation);
    EXPECT_STREQ(cert_stop_name(CertStop::DecidedAbove), "decided_above");
    EXPECT_STREQ(cert_stop_name(CertStop::DecidedBelow), "decided_below");
    EXPECT_STREQ(cert_stop_name(CertStop::BudgetExhausted), "budget_exhausted");
}

// Coverage against brute-forced ground truth -------------------------------

TEST(CertifiedEstimator, CoversBruteForcedTruthAcross1000Trials) {
    // An 8-voter complete instance is small enough to enumerate every
    // delegation profile: `exact` below is P^M with zero error.  Each
    // trial certifies at delta = 0.05 with gamma pinned AT the truth — the
    // adversarial setting where the boundary is crossed by noise alone and
    // stopping is maximally data-dependent.  Anytime validity says the
    // interval at the (random) stopping time still covers the truth in
    // at least 95% of trials.
    const auto inst = small_instance(1);
    const mech::ApprovalSizeThreshold mechanism(1);
    const auto laws = election::uniform_approved_laws(mechanism, inst);
    const double exact = election::exact_mechanism_probability(inst, laws);
    ASSERT_GT(exact, 0.0);
    ASSERT_LT(exact, 1.0);

    const int trials = 1000;
    int covered = 0;
    for (int trial = 0; trial < trials; ++trial) {
        Rng rng(1000 + static_cast<std::uint64_t>(trial));
        EvalOptions opts;
        opts.certify.gamma = exact;
        opts.certify.delta = 0.05;
        opts.adaptive_batch = 16;
        opts.max_replications = 256;
        const auto est =
            election::estimate_correct_probability(mechanism, inst, rng, opts);
        ASSERT_TRUE(est.certified.has_value());
        if (est.certified->contains(exact)) ++covered;
    }
    // Nominal coverage is >= 950/1000; the bounds are conservative, so the
    // observed rate sits well above that.  Test at the nominal level minus
    // three binomial standard deviations to keep the assertion sharp but
    // not flaky: 950 - 3 * sqrt(1000 * 0.05 * 0.95) ≈ 929.
    EXPECT_GE(covered, 930) << "coverage " << covered << "/1000";
}

TEST(CertifiedEstimator, CoverageHoldsForHoeffdingBoundaryToo) {
    const auto inst = small_instance(2);
    const mech::ApprovalSizeThreshold mechanism(1);
    const auto laws = election::uniform_approved_laws(mechanism, inst);
    const double exact = election::exact_mechanism_probability(inst, laws);

    const int trials = 300;
    int covered = 0;
    for (int trial = 0; trial < trials; ++trial) {
        Rng rng(5000 + static_cast<std::uint64_t>(trial));
        EvalOptions opts;
        opts.certify.gamma = exact;
        opts.certify.delta = 0.05;
        opts.certify.boundary = CsBoundary::Hoeffding;
        opts.adaptive_batch = 16;
        opts.max_replications = 128;
        const auto est =
            election::estimate_correct_probability(mechanism, inst, rng, opts);
        ASSERT_TRUE(est.certified.has_value());
        if (est.certified->contains(exact)) ++covered;
    }
    EXPECT_GE(covered, 278) << "coverage " << covered << "/300";  // ~0.95 - 3sd
}

// Determinism across thread counts -----------------------------------------

TEST(CertifiedEstimator, StopPointBitIdenticalAcrossThreadCounts) {
    // Stronger than the adaptive-SE contract (fixed seed AND threads): the
    // certified loop seeds each replication by index and folds in index
    // order, so the certificate is a pure function of the seed alone.
    const auto inst = [] {
        Rng build(5);
        return exp::complete_pc_instance(build, 101, 0.05, 0.02, 0.3);
    }();
    const mech::ApprovalSizeThreshold mechanism(1);

    auto run = [&](std::size_t threads) {
        Rng rng(33);
        ld::support::ThreadPool pool(threads);
        election::ReplicationEngine engine(pool);
        EvalOptions opts;
        opts.certify.gamma = 0.05;
        opts.certify.delta = 0.01;
        opts.adaptive_batch = 32;
        opts.max_replications = 4000;
        opts.threads = threads;
        opts.engine = &engine;
        return election::estimate_gain(mechanism, inst, rng, opts);
    };

    const auto one = run(1);
    const auto four = run(4);
    const auto eight = run(8);
    for (const auto* other : {&four, &eight}) {
        ASSERT_TRUE(one.pm.certified && other->pm.certified);
        EXPECT_EQ(one.pm.certified->lo, other->pm.certified->lo);
        EXPECT_EQ(one.pm.certified->hi, other->pm.certified->hi);
        EXPECT_EQ(one.pm.certified->replications, other->pm.certified->replications);
        EXPECT_EQ(one.pm.certified->looks, other->pm.certified->looks);
        EXPECT_EQ(one.pm.certified->stop, other->pm.certified->stop);
        EXPECT_EQ(one.pm.value, other->pm.value);
        ASSERT_TRUE(one.certified_gain && other->certified_gain);
        EXPECT_EQ(one.certified_gain->lo, other->certified_gain->lo);
        EXPECT_EQ(one.certified_gain->hi, other->certified_gain->hi);
    }
    EXPECT_TRUE(one.pm.certified->decided());
}

TEST(CertifiedEstimator, ThreadPoolAndRawThreadsAgree) {
    const auto inst = [] {
        Rng build(6);
        return exp::complete_pc_instance(build, 101, 0.05, 0.02, 0.3);
    }();
    const mech::ApprovalSizeThreshold mechanism(1);
    auto run = [&](bool use_pool) {
        Rng rng(77);
        EvalOptions opts;
        opts.certify.gamma = 0.05;
        opts.certify.delta = 0.01;
        opts.adaptive_batch = 32;
        opts.max_replications = 2000;
        opts.threads = 3;
        opts.use_thread_pool = use_pool;
        return election::estimate_correct_probability(mechanism, inst, rng, opts);
    };
    const auto pooled = run(true);
    const auto raw = run(false);
    ASSERT_TRUE(pooled.certified && raw.certified);
    EXPECT_EQ(pooled.certified->lo, raw.certified->lo);
    EXPECT_EQ(pooled.certified->hi, raw.certified->hi);
    EXPECT_EQ(pooled.certified->replications, raw.certified->replications);
    EXPECT_EQ(pooled.value, raw.value);
}

// Error composition and stop reasons ---------------------------------------

TEST(CertifiedEstimator, FoldsTruncatedTallyErrorIntoTheInterval) {
    const auto inst = small_instance(3, 12);
    const mech::ApprovalSizeThreshold mechanism(1);
    const double eps = 1e-6;

    auto run = [&](double tally_eps) {
        Rng rng(9);
        EvalOptions opts;
        opts.certify.gamma = 0.05;
        opts.certify.delta = 0.05;
        opts.tally_epsilon = tally_eps;
        opts.adaptive_batch = 32;
        opts.max_replications = 512;
        return election::estimate_correct_probability(mechanism, inst, rng, opts);
    };

    const auto exact_run = run(0.0);
    ASSERT_TRUE(exact_run.certified);
    EXPECT_EQ(exact_run.certified->numerical_error, 0.0);

    const auto truncated = run(eps);
    ASSERT_TRUE(truncated.certified);
    // The certificate carries exactly the kernel's per-observation bound.
    EXPECT_EQ(truncated.certified->numerical_error, eps / 2.0);
    EXPECT_LE(truncated.certified->lo, truncated.value);
    EXPECT_GE(truncated.certified->hi, truncated.value);
}

TEST(CertifiedEstimator, ExhaustsTinyBudgetsUndecided) {
    const auto inst = small_instance(4);
    const mech::ApprovalSizeThreshold mechanism(1);
    Rng rng(21);
    EvalOptions opts;
    opts.certify.gamma = 0.5;
    opts.certify.delta = 0.01;
    opts.adaptive_batch = 4;
    opts.max_replications = 4;  // EB width at t=4 dwarfs any real gap
    const auto est = election::estimate_correct_probability(mechanism, inst, rng, opts);
    ASSERT_TRUE(est.certified);
    EXPECT_EQ(est.certified->stop, CertStop::BudgetExhausted);
    EXPECT_FALSE(est.certified->decided());
    EXPECT_EQ(est.certified->replications, 4u);
    EXPECT_GE(est.certified->lo, 0.0);
    EXPECT_LE(est.certified->hi, 1.0);
    EXPECT_LT(est.certified->lo, est.certified->hi);
}

TEST(CertifiedEstimator, DecidesBelowAnUnattainableThreshold) {
    const auto inst = small_instance(5);
    const mech::ApprovalSizeThreshold mechanism(1);
    Rng rng(22);
    EvalOptions opts;
    opts.certify.gamma = 0.999;  // P^M >= 0.999 is false for this instance
    opts.certify.delta = 0.05;
    opts.adaptive_batch = 32;
    opts.max_replications = 10'000;
    const auto est = election::estimate_correct_probability(mechanism, inst, rng, opts);
    ASSERT_TRUE(est.certified);
    EXPECT_EQ(est.certified->stop, CertStop::DecidedBelow);
    EXPECT_LT(est.certified->hi, 0.999);
}

TEST(CertifiedEstimator, RejectsApproximateTallies) {
    const auto inst = small_instance(6);
    const mech::ApprovalSizeThreshold mechanism(1);
    Rng rng(23);
    EvalOptions opts;
    opts.certify.gamma = 0.05;
    opts.certify.delta = 0.05;
    opts.approximate_tally = true;  // Lemma-4 bias has no certified bound
    EXPECT_THROW(election::estimate_gain(mechanism, inst, rng, opts),
                 ContractViolation);
    EvalOptions bad_delta;
    bad_delta.certify.delta = 1.5;
    EXPECT_THROW(election::estimate_gain(mechanism, inst, rng, bad_delta),
                 ContractViolation);
}

// Certified verdicts --------------------------------------------------------

TEST(CertifiedVerdicts, CompleteFamilyEarnsCertifiedSpg) {
    Rng rng(7);
    const auto family = exp::complete_pc_family(0.05, 0.08, 0.2);
    const mech::ApprovalSizeThreshold mechanism(1);
    ld::dnh::VerdictOptions opts;
    opts.eval.certify.delta = 0.01;
    opts.eval.adaptive_batch = 32;
    opts.eval.max_replications = 4000;
    const std::vector<std::size_t> sizes{31, 61};
    const auto verdict = ld::dnh::check_spg(family, mechanism, sizes, rng, opts);
    EXPECT_EQ(verdict.certification, "certified_spg") << verdict.detail;
    EXPECT_TRUE(verdict.satisfied);
    // The certified gamma is the min anytime-valid lower endpoint, which
    // must clear the floor (0 by default) for the label to be granted.
    EXPECT_GT(verdict.gamma, 0.0);
    // Family-wise budget: per-point delta times judged points (no burn-in).
    EXPECT_DOUBLE_EQ(verdict.certified_delta, 0.01 * sizes.size());
    for (const auto& pt : verdict.sweep) {
        EXPECT_TRUE(pt.certified);
        EXPECT_EQ(pt.cert_stop, CertStop::DecidedAbove);
        EXPECT_LE(pt.cert_gain_lo, pt.gain);
        EXPECT_GE(pt.cert_gain_hi, pt.gain);
    }
}

TEST(CertifiedVerdicts, StarFamilyEarnsCertifiedViolation) {
    Rng rng(8);
    const auto family = exp::star_family(0.75, 0.55, 0.05);
    const mech::BestNeighbour mechanism;
    ld::dnh::VerdictOptions opts;
    opts.eval.certify.delta = 0.01;
    opts.eval.adaptive_batch = 16;
    opts.eval.max_replications = 2000;
    const auto verdict =
        ld::dnh::check_dnh(family, mechanism, {65, 129}, rng, opts);
    EXPECT_EQ(verdict.certification, "certified_violation") << verdict.detail;
    EXPECT_FALSE(verdict.satisfied);
}

TEST(CertifiedVerdicts, TinyBudgetsAreInconclusiveNotWrong) {
    Rng rng(9);
    const auto family = exp::complete_pc_family(0.05, 0.08, 0.2);
    const mech::ApprovalSizeThreshold mechanism(1);
    ld::dnh::VerdictOptions opts;
    opts.eval.certify.delta = 0.01;
    opts.eval.adaptive_batch = 4;
    opts.eval.max_replications = 4;  // cannot decide anything at t = 4
    const auto verdict =
        ld::dnh::check_dnh(family, mechanism, {31, 61}, rng, opts);
    EXPECT_EQ(verdict.certification, "inconclusive(budget_exhausted)")
        << verdict.detail;
}

TEST(CertifiedVerdicts, UncertifiedRunsLeaveTheLabelEmpty) {
    Rng rng(10);
    const auto family = exp::complete_pc_family(0.05, 0.08, 0.2);
    const mech::ApprovalSizeThreshold mechanism(1);
    ld::dnh::VerdictOptions opts;
    opts.eval.replications = 16;
    const auto verdict =
        ld::dnh::check_dnh(family, mechanism, {31, 61}, rng, opts);
    EXPECT_TRUE(verdict.certification.empty());
    EXPECT_EQ(verdict.certified_delta, 0.0);
    for (const auto& pt : verdict.sweep) EXPECT_FALSE(pt.certified);
}

// Sweep-spec plumbing -------------------------------------------------------

TEST(CertifiedSweep, SpecParsesCertifyOptions) {
    const auto spec = exp::SweepSpec::from_json(json::parse(R"({
      "name": "certified",
      "axes": {"n": [20], "alpha": [0.05], "graph": ["complete"],
               "competencies": ["uniform:0.3,0.7"], "mechanism": ["threshold:1"]},
      "options": {"certify_gamma": 0.03, "certify_delta": 0.02,
                  "certify_boundary": "hoeffding"}
    })"));
    EXPECT_DOUBLE_EQ(spec.certify_gamma, 0.03);
    EXPECT_DOUBLE_EQ(spec.certify_delta, 0.02);
    EXPECT_EQ(spec.certify_boundary, "hoeffding");

    auto parse_options = [](const char* options_text) {
        std::string text = R"({"name": "x", "axes": {"n": [20], "alpha": [0.05],
          "graph": ["complete"], "competencies": ["uniform:0.3,0.7"],
          "mechanism": ["threshold:1"]}, "options": )";
        text += options_text;
        text += "}";
        return exp::SweepSpec::from_json(json::parse(text));
    };
    EXPECT_THROW(parse_options(R"({"certify_delta": 1.0})"), exp::SweepError);
    EXPECT_THROW(parse_options(R"({"certify_delta": -0.1})"), exp::SweepError);
    EXPECT_THROW(parse_options(R"({"certify_boundary": "gaussian"})"),
                 exp::SweepError);
}

TEST(CertifiedSweep, FingerprintCoversCertifyFields) {
    auto base = exp::SweepSpec::from_json(json::parse(R"({
      "name": "fp", "axes": {"n": [20], "alpha": [0.05], "graph": ["complete"],
      "competencies": ["uniform:0.3,0.7"], "mechanism": ["threshold:1"]}
    })"));
    auto gamma = base, delta = base, boundary = base;
    gamma.certify_gamma = 0.05;
    delta.certify_delta = 0.01;
    boundary.certify_boundary = "hoeffding";
    EXPECT_NE(base.fingerprint(), gamma.fingerprint());
    EXPECT_NE(base.fingerprint(), delta.fingerprint());
    EXPECT_NE(base.fingerprint(), boundary.fingerprint());
    EXPECT_NE(gamma.fingerprint(), delta.fingerprint());
}

TEST(CertifiedSweep, RowHeadersEndWithCertColumns) {
    const auto& headers = exp::SweepEngine::row_headers();
    ASSERT_EQ(headers.size(), 21u);
    EXPECT_EQ(headers[headers.size() - 3], "cert_gain_lo");
    EXPECT_EQ(headers[headers.size() - 2], "cert_gain_hi");
    EXPECT_EQ(headers.back(), "cert_stop");
}

// CLI flag parsing ----------------------------------------------------------

TEST(CertifiedCli, ParsesCertifyAndBoundaryFlags) {
    const auto options = ld::cli::parse_options(
        {"--n", "50", "--certify", "0.05", "0.01", "--cs-boundary", "hoeffding"});
    EXPECT_DOUBLE_EQ(options.certify_gamma, 0.05);
    EXPECT_DOUBLE_EQ(options.certify_delta, 0.01);
    EXPECT_EQ(options.cs_boundary, "hoeffding");
    // Defaults leave certification off.
    EXPECT_EQ(ld::cli::parse_options({}).certify_delta, 0.0);
}

TEST(CertifiedCli, RejectsMalformedCertifyFlags) {
    using ld::cli::SpecError;
    using ld::cli::parse_options;
    EXPECT_THROW(parse_options({"--certify", "0.05"}), SpecError);
    EXPECT_THROW(parse_options({"--certify", "0.05", "1.5"}), SpecError);
    EXPECT_THROW(parse_options({"--certify", "0.05", "0"}), SpecError);
    EXPECT_THROW(parse_options({"--cs-boundary", "gaussian"}), SpecError);
}

}  // namespace
