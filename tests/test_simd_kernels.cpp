// Property suite for the runtime-dispatched SIMD tally kernels
// (prob/convolve_simd.cpp, prob/batch_tally.hpp).
//
// The dispatch layer promises *bit-identity*: every tier — scalar,
// AVX2, AVX-512 — and every batch composition evaluates the same
// mul/mul/add expression per element, so results never depend on the
// host or the batching.  The tests below therefore assert exact
// equality (0 ulp, strictly stronger than the ≤1-ulp acceptance bound)
// and skip cleanly on hosts that lack an ISA tier.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ld/delegation/delegation_graph.hpp"
#include "ld/election/tally.hpp"
#include "prob/batch_tally.hpp"
#include "prob/convolve.hpp"
#include "prob/truncated.hpp"
#include "prob/weighted_bernoulli_sum.hpp"
#include "rng/rng.hpp"
#include "support/cpu_features.hpp"
#include "support/metrics.hpp"

namespace {

using ld::prob::BatchTallyLane;
using ld::prob::BatchTallyScratch;
using ld::prob::ConvolveScratch;
using ld::support::SimdTier;

/// RAII pin of the kernel tier; restores the previous tier on exit so
/// test order never leaks a pinned tier into unrelated tests.
class TierGuard {
public:
    explicit TierGuard(SimdTier tier)
        : previous_(ld::prob::kernel_tier()),
          pinned_(ld::prob::set_kernel_tier(tier)) {}
    ~TierGuard() { ld::prob::set_kernel_tier(previous_); }
    bool pinned() const noexcept { return pinned_; }

    TierGuard(const TierGuard&) = delete;
    TierGuard& operator=(const TierGuard&) = delete;

private:
    SimdTier previous_;
    bool pinned_;
};

constexpr std::array<SimdTier, 2> kWideTiers = {SimdTier::kAvx2,
                                               SimdTier::kAvx512};

/// Random pmf-shaped vector (non-negative, roughly normalized).
std::vector<double> random_pmf(ld::rng::Rng& rng, std::size_t n) {
    std::vector<double> pmf(n);
    double total = 0.0;
    for (double& x : pmf) {
        x = rng.next_double();
        total += x;
    }
    for (double& x : pmf) x /= total;
    return pmf;
}

ld::mech::Action vote_action() {
    ld::mech::Action a;
    a.kind = ld::mech::ActionKind::Vote;
    return a;
}

ld::mech::Action delegate_action(ld::graph::Vertex target) {
    ld::mech::Action a;
    a.kind = ld::mech::ActionKind::Delegate;
    a.targets = {target};
    return a;
}

TEST(CpuFeatures, ParseAndNames) {
    EXPECT_EQ(ld::support::parse_simd_tier("scalar"), SimdTier::kScalar);
    EXPECT_EQ(ld::support::parse_simd_tier("avx2"), SimdTier::kAvx2);
    EXPECT_EQ(ld::support::parse_simd_tier("avx512"), SimdTier::kAvx512);
    EXPECT_EQ(ld::support::parse_simd_tier("auto"),
              ld::support::best_simd_tier());
    EXPECT_FALSE(ld::support::parse_simd_tier("sse9").has_value());
    EXPECT_FALSE(ld::support::parse_simd_tier("").has_value());
    EXPECT_STREQ(ld::support::simd_tier_name(SimdTier::kScalar), "scalar");
    EXPECT_STREQ(ld::support::simd_tier_name(SimdTier::kAvx2), "avx2");
    EXPECT_STREQ(ld::support::simd_tier_name(SimdTier::kAvx512), "avx512");
}

TEST(CpuFeatures, ScalarAlwaysSupported) {
    EXPECT_TRUE(ld::support::simd_tier_supported(SimdTier::kScalar));
    // The auto-detected best tier must itself be runnable.
    EXPECT_TRUE(ld::support::simd_tier_supported(ld::support::best_simd_tier()));
}

TEST(KernelDispatch, PinningUpdatesTierAndGauge) {
    TierGuard guard(SimdTier::kScalar);
    ASSERT_TRUE(guard.pinned());
    EXPECT_EQ(ld::prob::kernel_tier(), SimdTier::kScalar);
    EXPECT_EQ(ld::support::MetricsRegistry::global().gauge("tally.kernel").value(),
              static_cast<std::int64_t>(SimdTier::kScalar));
}

TEST(KernelDispatch, UnsupportedPinIsRejected) {
    // At most one of these can be unsupported-but-requestable everywhere,
    // so probe both wide tiers; on a host with full support this test
    // degenerates to "pin succeeds", which is fine.
    for (SimdTier tier : kWideTiers) {
        if (ld::support::simd_tier_supported(tier)) continue;
        const SimdTier before = ld::prob::kernel_tier();
        EXPECT_FALSE(ld::prob::set_kernel_tier(tier));
        EXPECT_EQ(ld::prob::kernel_tier(), before);  // unchanged on failure
    }
}

/// Scalar vs wide tiers on one convolution step, across shapes that hit
/// every region of the kernel: w = 1 (Poisson-binomial), w < n, w = n,
/// w > n (gap region), p ∈ {0, 1/3, 1}.
TEST(SimdKernelAgreement, SingleStepAllRegions) {
    ld::rng::Rng rng(20260808u);
    const std::array<std::pair<std::size_t, std::size_t>, 6> shapes = {{
        {1, 1}, {7, 1}, {129, 1}, {64, 17}, {33, 33}, {9, 40},
    }};
    const std::array<double, 3> ps = {0.0, 1.0 / 3.0, 1.0};
    for (SimdTier tier : kWideTiers) {
        if (!ld::support::simd_tier_supported(tier)) {
            GTEST_LOG_(INFO) << "skipping unsupported tier "
                             << ld::support::simd_tier_name(tier);
            continue;
        }
        for (const auto& [n, w] : shapes) {
            for (double p : ps) {
                const std::vector<double> in = random_pmf(rng, n);
                std::vector<double> expected(n + w, -1.0);
                ld::prob::detail::convolve_two_point_scalar(
                    in.data(), expected.data(), n, w, p);
                std::vector<double> got(n + w, -1.0);
                {
                    TierGuard guard(tier);
                    ASSERT_TRUE(guard.pinned());
                    ld::prob::convolve_two_point(in.data(), got.data(), n, w, p);
                }
                for (std::size_t s = 0; s < n + w; ++s) {
                    EXPECT_EQ(expected[s], got[s])
                        << ld::support::simd_tier_name(tier) << " n=" << n
                        << " w=" << w << " p=" << p << " s=" << s;
                }
            }
        }
    }
}

/// Full randomized weighted-majority tallies agree bit-for-bit across
/// tiers (stacked convolutions amplify any per-step divergence).
TEST(SimdKernelAgreement, RandomizedTalliesAcrossTiers) {
    ld::rng::Rng rng(97531u);
    for (std::size_t trial = 0; trial < 20; ++trial) {
        const std::size_t terms = 1 + rng.next_below(60);
        std::vector<std::uint64_t> weights(terms);
        std::vector<double> probs(terms);
        for (std::size_t i = 0; i < terms; ++i) {
            weights[i] = rng.next_below(5);  // zeros included on purpose
            probs[i] = rng.next_double();
        }
        ConvolveScratch scratch;
        double reference = 0.0;
        {
            TierGuard guard(SimdTier::kScalar);
            ASSERT_TRUE(guard.pinned());
            reference = ld::prob::weighted_majority_probability(weights, probs,
                                                                scratch);
        }
        for (SimdTier tier : kWideTiers) {
            if (!ld::support::simd_tier_supported(tier)) continue;
            TierGuard guard(tier);
            ASSERT_TRUE(guard.pinned());
            const double got =
                ld::prob::weighted_majority_probability(weights, probs, scratch);
            EXPECT_EQ(reference, got)
                << ld::support::simd_tier_name(tier) << " trial " << trial;
        }
    }
}

/// The ε-truncated tally keeps its certified bound and its exact values
/// under every tier: same tail, same error_bound ≤ ε/2, same window.
TEST(SimdKernelAgreement, TruncatedTallyCertifiedOnEveryTier) {
    ld::rng::Rng rng(44221u);
    const std::size_t terms = 300;
    std::vector<std::uint64_t> weights(terms);
    std::vector<double> probs(terms);
    for (std::size_t i = 0; i < terms; ++i) {
        weights[i] = 1 + rng.next_below(3);
        probs[i] = 0.3 + 0.4 * rng.next_double();
    }
    const double epsilon = 1e-8;
    ConvolveScratch scratch;
    ld::prob::TruncatedTally reference;
    {
        TierGuard guard(SimdTier::kScalar);
        ASSERT_TRUE(guard.pinned());
        reference = ld::prob::truncated_weighted_majority(weights, probs,
                                                          epsilon, scratch);
    }
    EXPECT_LE(reference.error_bound, epsilon / 2.0);
    // Exact (untruncated) value for the certification check.
    const double exact =
        ld::prob::weighted_majority_probability(weights, probs, scratch);
    EXPECT_NEAR(reference.tail, exact, reference.error_bound + 1e-15);
    for (SimdTier tier : kWideTiers) {
        if (!ld::support::simd_tier_supported(tier)) continue;
        TierGuard guard(tier);
        ASSERT_TRUE(guard.pinned());
        const auto got = ld::prob::truncated_weighted_majority(weights, probs,
                                                               epsilon, scratch);
        EXPECT_EQ(reference.tail, got.tail);
        EXPECT_EQ(reference.error_bound, got.error_bound);
        EXPECT_EQ(reference.max_window, got.max_window);
        EXPECT_LE(got.error_bound, epsilon / 2.0);
    }
}

/// Batched lockstep tally == sequential tally, lane by lane and bit for
/// bit, on the scalar tier (the reference) — including ragged batches,
/// zero weights, empty lanes, and heterogeneous weights that force the
/// gather path.
TEST(BatchTally, BitIdenticalToSequentialScalar) {
    TierGuard guard(SimdTier::kScalar);
    ASSERT_TRUE(guard.pinned());
    ld::rng::Rng rng(181818u);
    BatchTallyScratch batch_scratch;
    ConvolveScratch seq_scratch;
    for (std::size_t trial = 0; trial < 12; ++trial) {
        const std::size_t lane_count = 1 + rng.next_below(ld::prob::kBatchTallyLanes);
        std::vector<std::vector<std::uint64_t>> weights(lane_count);
        std::vector<std::vector<double>> probs(lane_count);
        std::vector<BatchTallyLane> lanes(lane_count);
        for (std::size_t k = 0; k < lane_count; ++k) {
            // Lane 0 of every fourth trial is empty (nobody voted).
            const std::size_t terms =
                (k == 0 && trial % 4 == 0) ? 0 : 1 + rng.next_below(40);
            weights[k].resize(terms);
            probs[k].resize(terms);
            for (std::size_t i = 0; i < terms; ++i) {
                weights[k][i] = rng.next_below(6);  // heterogeneous, with zeros
                probs[k][i] = rng.next_double();
            }
            lanes[k] = {weights[k], probs[k]};
        }
        std::array<double, ld::prob::kBatchTallyLanes> out{};
        ld::prob::batch_weighted_majority(lanes, out, batch_scratch);
        for (std::size_t k = 0; k < lane_count; ++k) {
            const double expected =
                weights[k].empty()
                    ? 0.0
                    : ld::prob::weighted_majority_probability(weights[k], probs[k],
                                                              seq_scratch);
            EXPECT_EQ(expected, out[k]) << "trial " << trial << " lane " << k;
        }
    }
}

/// The same lanes produce the same bits on every wide tier, and
/// regrouping lanes into different batch sizes changes nothing.
TEST(BatchTally, TierAndCompositionInvariance) {
    ld::rng::Rng rng(272727u);
    constexpr std::size_t kLanes = ld::prob::kBatchTallyLanes;
    std::vector<std::vector<std::uint64_t>> weights(kLanes);
    std::vector<std::vector<double>> probs(kLanes);
    std::vector<BatchTallyLane> lanes(kLanes);
    for (std::size_t k = 0; k < kLanes; ++k) {
        const std::size_t terms = 20 + rng.next_below(20);
        weights[k].resize(terms);
        probs[k].resize(terms);
        for (std::size_t i = 0; i < terms; ++i) {
            // Mostly unit weights: exercises the uniform-w fast path with
            // occasional heavy terms that drop to the gather path.
            weights[k][i] = (rng.next_below(10) == 0) ? 1 + rng.next_below(7) : 1;
            probs[k][i] = rng.next_double();
        }
        lanes[k] = {weights[k], probs[k]};
    }
    BatchTallyScratch scratch;
    std::array<double, kLanes> reference{};
    {
        TierGuard guard(SimdTier::kScalar);
        ASSERT_TRUE(guard.pinned());
        ld::prob::batch_weighted_majority(lanes, reference, scratch);
    }
    for (SimdTier tier : kWideTiers) {
        if (!ld::support::simd_tier_supported(tier)) continue;
        TierGuard guard(tier);
        ASSERT_TRUE(guard.pinned());
        // Full batch.
        std::array<double, kLanes> full{};
        ld::prob::batch_weighted_majority(lanes, full, scratch);
        // Split batches: 3 + 5 lanes.
        std::array<double, kLanes> split{};
        ld::prob::batch_weighted_majority(
            std::span<const BatchTallyLane>(lanes.data(), 3),
            std::span<double>(split.data(), 3), scratch);
        ld::prob::batch_weighted_majority(
            std::span<const BatchTallyLane>(lanes.data() + 3, kLanes - 3),
            std::span<double>(split.data() + 3, kLanes - 3), scratch);
        for (std::size_t k = 0; k < kLanes; ++k) {
            EXPECT_EQ(reference[k], full[k])
                << ld::support::simd_tier_name(tier) << " lane " << k;
            EXPECT_EQ(reference[k], split[k])
                << ld::support::simd_tier_name(tier) << " split lane " << k;
        }
    }
}

/// All-unit-weight, equal-length lanes drive the fused multi-step kernel
/// (runs of up to kMaxFusedSteps per pass, including lengths that are
/// not multiples of the depth).  Partial batches mirror lane 0 through
/// the fused path and must not disturb real lanes; a heavier term
/// breaks fusion mid-tally — uniformly (all lanes, widths stay equal)
/// or in one lane only (widths diverge, no re-fusing) — and must splice
/// back bit-exactly.
TEST(BatchTally, FusedUnitWeightRunsMatchSequential) {
    constexpr std::size_t kLanes = ld::prob::kBatchTallyLanes;
    ConvolveScratch seq_scratch;
    BatchTallyScratch batch_scratch;
    for (SimdTier tier :
         {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
        if (!ld::support::simd_tier_supported(tier)) {
            GTEST_LOG_(INFO) << "host lacks " << ld::support::simd_tier_name(tier)
                             << "; skipping";
            continue;
        }
        TierGuard guard(tier);
        ASSERT_TRUE(guard.pinned());
        ld::rng::Rng rng(434343u);  // same streams on every tier
        for (std::size_t lane_count : {kLanes, std::size_t{3}, std::size_t{1}}) {
            for (std::size_t terms : {std::size_t{1}, std::size_t{7},
                                      std::size_t{8}, std::size_t{9},
                                      std::size_t{23}, std::size_t{61}}) {
                for (int variant = 0; variant < 3; ++variant) {
                    std::vector<std::vector<std::uint64_t>> weights(lane_count);
                    std::vector<std::vector<double>> probs(lane_count);
                    std::vector<BatchTallyLane> lanes(lane_count);
                    for (std::size_t k = 0; k < lane_count; ++k) {
                        weights[k].assign(terms, 1);
                        if (variant == 1) weights[k][terms / 2] = 2;
                        if (variant == 2 && k == 0) weights[k][terms / 2] = 3;
                        probs[k].resize(terms);
                        for (double& p : probs[k]) p = rng.next_double();
                        lanes[k] = {weights[k], probs[k]};
                    }
                    std::array<double, kLanes> out{};
                    ld::prob::batch_weighted_majority(lanes, out, batch_scratch);
                    for (std::size_t k = 0; k < lane_count; ++k) {
                        const double expected = ld::prob::weighted_majority_probability(
                            weights[k], probs[k], seq_scratch);
                        EXPECT_EQ(expected, out[k])
                            << ld::support::simd_tier_name(tier) << " lanes="
                            << lane_count << " terms=" << terms
                            << " variant=" << variant << " lane " << k;
                    }
                }
            }
        }
    }
}

/// Election-level staging: TallyBatch results equal
/// exact_correct_probability on the same realized outcomes.
TEST(BatchTally, ElectionStagingMatchesExactTally) {
    // Star: voters 1..4 delegate to 0; voters 5..9 vote directly.
    const std::size_t n = 10;
    std::vector<ld::mech::Action> actions;
    actions.push_back(vote_action());
    for (std::size_t v = 1; v <= 4; ++v) actions.push_back(delegate_action(0));
    for (std::size_t v = 5; v < n; ++v) actions.push_back(vote_action());

    ld::delegation::DelegationOutcome outcome(actions);
    std::vector<double> comps(n);
    for (std::size_t v = 0; v < n; ++v)
        comps[v] = 0.5 + 0.04 * static_cast<double>(v);
    ld::model::CompetencyVector p(std::move(comps));

    ld::election::TallyBatch batch;
    const std::size_t lanes = 3;
    for (std::size_t k = 0; k < lanes; ++k)
        ld::election::stage_tally_lane(batch, outcome, p);
    ASSERT_EQ(batch.lanes, lanes);
    ld::election::tally_staged(batch);

    const double expected = ld::election::exact_correct_probability(outcome, p);
    for (std::size_t k = 0; k < lanes; ++k) EXPECT_EQ(expected, batch.result[k]);

    batch.clear();
    EXPECT_EQ(batch.lanes, 0u);
}

}  // namespace
