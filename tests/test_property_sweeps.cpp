// Parameterized property suites: library-wide invariants checked across a
// grid of (mechanism × topology × size) combinations:
//
//  * delegation graphs are acyclic and flow strictly upward in competency,
//  * votes are conserved (weights sum to n when nobody abstains),
//  * the exact tally is a probability and matches sampled frequencies,
//  * direct voting is a fixed point (gain ≡ 0),
//  * every local mechanism delegates only within the neighbourhood.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <tuple>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/complete_graph_threshold.hpp"
#include "ld/mech/d_out_sampling.hpp"
#include "ld/mech/direct.hpp"
#include "ld/mech/fraction_approved.hpp"
#include "ld/model/competency_gen.hpp"

namespace {

namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::rng::Rng;

enum class Topology { Complete, Star, DRegular, ErdosRenyi, Barabasi, Path };
enum class MechKind { Direct, Threshold1, Threshold3, Sqrt, Fraction, Best, DOut };

std::string topology_name(Topology t) {
    switch (t) {
        case Topology::Complete: return "Complete";
        case Topology::Star: return "Star";
        case Topology::DRegular: return "DRegular";
        case Topology::ErdosRenyi: return "ErdosRenyi";
        case Topology::Barabasi: return "Barabasi";
        case Topology::Path: return "Path";
    }
    return "unknown";
}

std::string mech_name(MechKind m) {
    switch (m) {
        case MechKind::Direct: return "Direct";
        case MechKind::Threshold1: return "Threshold1";
        case MechKind::Threshold3: return "Threshold3";
        case MechKind::Sqrt: return "Sqrt";
        case MechKind::Fraction: return "Fraction";
        case MechKind::Best: return "Best";
        case MechKind::DOut: return "DOut";
    }
    return "unknown";
}

g::Graph make_topology(Topology t, std::size_t n, Rng& rng) {
    switch (t) {
        case Topology::Complete: return g::make_complete(n);
        case Topology::Star: return g::make_star(n);
        case Topology::DRegular: return g::make_random_d_regular(rng, n + (n * 5) % 2, 5);
        case Topology::ErdosRenyi: return g::make_erdos_renyi_gnp(rng, n, 0.15);
        case Topology::Barabasi: return g::make_barabasi_albert(rng, n, 2);
        case Topology::Path: return g::make_path(n);
    }
    return g::Graph::empty(0);
}

std::unique_ptr<mech::Mechanism> make_mechanism(MechKind m) {
    switch (m) {
        case MechKind::Direct: return std::make_unique<mech::DirectVoting>();
        case MechKind::Threshold1:
            return std::make_unique<mech::ApprovalSizeThreshold>(1);
        case MechKind::Threshold3:
            return std::make_unique<mech::ApprovalSizeThreshold>(3);
        case MechKind::Sqrt:
            return std::make_unique<mech::CompleteGraphThreshold>(
                mech::CompleteGraphThreshold::with_sqrt_threshold());
        case MechKind::Fraction: return std::make_unique<mech::FractionApproved>();
        case MechKind::Best: return std::make_unique<mech::BestNeighbour>();
        case MechKind::DOut:
            return std::make_unique<mech::DOutSampling>(5, 1,
                                                        mech::SampleSource::Neighbourhood);
    }
    return nullptr;
}

using GridParam = std::tuple<Topology, MechKind, std::size_t>;

class MechanismTopologyGrid : public ::testing::TestWithParam<GridParam> {
protected:
    static std::uint64_t seed_of(const GridParam& p) {
        const auto [t, m, n] = p;
        return 1000003ULL * static_cast<std::uint64_t>(t) +
               101ULL * static_cast<std::uint64_t>(m) + n;
    }
};

TEST_P(MechanismTopologyGrid, DelegationFlowsUpwardAndConservesVotes) {
    const auto [topology, kind, n] = GetParam();
    Rng rng(seed_of(GetParam()));
    const auto graph = make_topology(topology, n, rng);
    const auto inst = model::Instance(
        graph, model::uniform_competencies(rng, graph.vertex_count(), 0.15, 0.85), 0.05);
    const auto mechanism = make_mechanism(kind);

    for (int rep = 0; rep < 5; ++rep) {
        const auto out = ld::delegation::realize(*mechanism, inst, rng);
        ASSERT_TRUE(out.functional());

        // (1) acyclic, (2) upward flow, (3) locality.
        EXPECT_TRUE(out.as_digraph().is_acyclic_up_to_self_loops());
        for (g::Vertex v = 0; v < inst.voter_count(); ++v) {
            const auto& a = out.action(v);
            if (a.kind != mech::ActionKind::Delegate) continue;
            const g::Vertex t = a.targets.front();
            EXPECT_GE(inst.competency(t), inst.competency(v) + inst.alpha())
                << mech_name(kind) << " on " << topology_name(topology);
            EXPECT_TRUE(inst.graph().has_edge(v, t))
                << mech_name(kind) << " delegated outside the neighbourhood";
        }

        // (4) vote conservation.
        const auto& w = out.weights();
        EXPECT_EQ(std::accumulate(w.begin(), w.end(), std::uint64_t{0}),
                  inst.voter_count());
        EXPECT_EQ(out.stats().cast_weight, inst.voter_count());
        EXPECT_EQ(out.stats().voting_sink_count + out.stats().delegator_count,
                  inst.voter_count());

        // (5) the exact tally is a probability.
        const double p = ld::election::exact_correct_probability(out, inst.competencies());
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);

        // (6) longest path is bounded by the α-band count.
        EXPECT_LE(out.stats().longest_path, inst.partition_complexity_bound());
    }
}

TEST_P(MechanismTopologyGrid, GainIsBoundedAndDirectIsNeutral) {
    const auto [topology, kind, n] = GetParam();
    Rng rng(seed_of(GetParam()) + 7);
    const auto graph = make_topology(topology, n, rng);
    const auto inst = model::Instance(
        graph, model::uniform_competencies(rng, graph.vertex_count(), 0.15, 0.85), 0.05);
    const auto mechanism = make_mechanism(kind);

    ld::election::EvalOptions opts;
    opts.replications = 20;
    const auto report = ld::election::estimate_gain(*mechanism, inst, rng, opts);
    EXPECT_GE(report.gain, -1.0);
    EXPECT_LE(report.gain, 1.0);
    EXPECT_GE(report.pm.value, 0.0);
    EXPECT_LE(report.pm.value, 1.0);
    if (kind == MechKind::Direct) {
        EXPECT_NEAR(report.gain, 0.0, 1e-10);
    }
}

std::vector<GridParam> make_grid() {
    std::vector<GridParam> grid;
    for (Topology t : {Topology::Complete, Topology::Star, Topology::DRegular,
                       Topology::ErdosRenyi, Topology::Barabasi, Topology::Path}) {
        for (MechKind m : {MechKind::Direct, MechKind::Threshold1, MechKind::Threshold3,
                           MechKind::Sqrt, MechKind::Fraction, MechKind::Best,
                           MechKind::DOut}) {
            for (std::size_t n : {24u, 60u}) {
                grid.emplace_back(t, m, n);
            }
        }
    }
    return grid;
}

std::string grid_param_name(const ::testing::TestParamInfo<GridParam>& info) {
    const auto [t, m, n] = info.param;
    return topology_name(t) + "_" + mech_name(m) + "_n" + std::to_string(n);
}

INSTANTIATE_TEST_SUITE_P(Grid, MechanismTopologyGrid,
                         ::testing::ValuesIn(make_grid()), grid_param_name);

}  // namespace
