// Tests for the practical extensions: token-weighted voting, cycle
// policies, noisy approvals, and the probabilistic-competency evaluator.

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/distributional.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/direct.hpp"
#include "ld/mech/noisy_threshold.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace {

namespace election = ld::election;
namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
using ld::delegation::CyclePolicy;
using ld::delegation::DelegationOutcome;
using ld::mech::Action;
using ld::rng::Rng;
using ld::support::ContractViolation;

TEST(TokenWeights, InitialWeightsPoolAtSinks) {
    // 0 -> 2, 1 -> 2, 2 votes; tokens {5, 3, 2}.
    std::vector<Action> actions{Action::delegate_to(2), Action::delegate_to(2),
                                Action::vote()};
    const std::vector<std::uint64_t> tokens{5, 3, 2};
    const DelegationOutcome out(std::move(actions), tokens);
    EXPECT_EQ(out.weights()[2], 10u);
    EXPECT_EQ(out.stats().cast_weight, 10u);
    EXPECT_EQ(out.stats().max_weight, 10u);
}

TEST(TokenWeights, ZeroTokenSinkCastsNothing) {
    std::vector<Action> actions{Action::vote(), Action::vote()};
    const std::vector<std::uint64_t> tokens{0, 7};
    const DelegationOutcome out(std::move(actions), tokens);
    EXPECT_EQ(out.voting_sinks(), (std::vector<g::Vertex>{1}));
    EXPECT_EQ(out.stats().voting_sink_count, 1u);
}

TEST(TokenWeights, WeightVectorSizeIsValidated) {
    std::vector<Action> actions{Action::vote(), Action::vote()};
    const std::vector<std::uint64_t> tokens{1, 2, 3};
    EXPECT_THROW(DelegationOutcome(std::move(actions), tokens), ContractViolation);
}

TEST(TokenWeights, WeightedDirectProbabilityMatchesWeightedSum) {
    Rng rng(1);
    const model::Instance inst(g::make_complete(5),
                               model::CompetencyVector({0.9, 0.3, 0.3, 0.3, 0.3}), 0.05);
    // Voter 0 holds the majority of tokens: weighted P^D = 0.9.
    const std::vector<std::uint64_t> tokens{10, 1, 1, 1, 1};
    EXPECT_NEAR(election::exact_direct_probability_weighted(inst, tokens), 0.9, 1e-12);
    // Unweighted: 0.9 voter is outvoted by four 0.3s most of the time.
    EXPECT_LT(election::exact_direct_probability(inst), 0.5);
}

TEST(TokenWeights, EvaluatorThreadsWeightsThrough) {
    Rng rng(2);
    const model::Instance inst(g::make_complete(6),
                               model::uniform_competencies(rng, 6, 0.3, 0.7), 0.05);
    election::EvalOptions opts;
    opts.replications = 20;
    opts.initial_weights = {3, 1, 1, 1, 1, 1};
    const mech::DirectVoting direct;
    const auto report = election::estimate_gain(direct, inst, rng, opts);
    EXPECT_NEAR(report.gain, 0.0, 1e-10);
    EXPECT_NEAR(report.pd,
                election::exact_direct_probability_weighted(inst, opts.initial_weights),
                1e-12);
}

TEST(CyclePolicy, ThrowIsTheDefault) {
    std::vector<Action> actions{Action::delegate_to(1), Action::delegate_to(0)};
    EXPECT_THROW(DelegationOutcome(std::move(actions)), ContractViolation);
}

TEST(CyclePolicy, DiscardDropsCycleVotes) {
    // 0 <-> 1 cycle; 2 feeds the cycle; 3 votes.
    std::vector<Action> actions{Action::delegate_to(1), Action::delegate_to(0),
                                Action::delegate_to(0), Action::vote()};
    const DelegationOutcome out(std::move(actions), {}, CyclePolicy::Discard);
    EXPECT_EQ(out.sink_of(0), DelegationOutcome::kNoSink);
    EXPECT_EQ(out.sink_of(1), DelegationOutcome::kNoSink);
    EXPECT_EQ(out.sink_of(2), DelegationOutcome::kNoSink);
    EXPECT_EQ(out.sink_of(3), 3u);
    EXPECT_EQ(out.stats().cast_weight, 1u);
    EXPECT_EQ(out.cycle_losses(), 3u);
}

TEST(CyclePolicy, DiscardKeepsIndependentChainsIntact) {
    // cycle {0,1}; chain 2 -> 3 (votes).
    std::vector<Action> actions{Action::delegate_to(1), Action::delegate_to(0),
                                Action::delegate_to(3), Action::vote()};
    const DelegationOutcome out(std::move(actions), {}, CyclePolicy::Discard);
    EXPECT_EQ(out.sink_of(2), 3u);
    EXPECT_EQ(out.weights()[3], 2u);
    EXPECT_EQ(out.cycle_losses(), 2u);
}

TEST(NoisyThreshold, ZeroNoiseMatchesApprovalSizeThreshold) {
    Rng rng_a(3), rng_b(3);
    const model::Instance inst(g::make_complete(20),
                               model::uniform_competencies(rng_a, 20, 0.2, 0.8), 0.05);
    const mech::NoisyThreshold noisy(2, 0.0);
    const mech::ApprovalSizeThreshold clean(2);
    EXPECT_TRUE(noisy.approval_respecting());
    // Same delegate/vote decision for every voter (targets may differ by
    // RNG stream, so compare kinds via the closed form).
    for (g::Vertex v = 0; v < 20; ++v) {
        const auto a = noisy.act(inst, v, rng_b);
        const double z = *clean.vote_directly_probability(inst, v);
        EXPECT_EQ(a.kind == mech::ActionKind::Vote, z == 1.0) << v;
    }
}

TEST(NoisyThreshold, NoiseBreaksApprovalDiscipline) {
    Rng rng(4);
    const model::Instance inst(g::make_complete(30),
                               model::uniform_competencies(rng, 30, 0.2, 0.8), 0.05);
    const mech::NoisyThreshold noisy(1, 0.3);
    EXPECT_FALSE(noisy.approval_respecting());
    bool saw_downward = false;
    for (int rep = 0; rep < 200 && !saw_downward; ++rep) {
        for (g::Vertex v = 0; v < 30; ++v) {
            const auto a = noisy.act(inst, v, rng);
            if (a.kind == mech::ActionKind::Delegate &&
                inst.competency(a.targets[0]) < inst.competency(v) + inst.alpha()) {
                saw_downward = true;
            }
        }
    }
    EXPECT_TRUE(saw_downward);
    EXPECT_THROW(mech::NoisyThreshold(1, 0.5), ContractViolation);
}

TEST(NoisyThreshold, EvaluatorRunsWithDiscardPolicy) {
    Rng rng(5);
    const model::Instance inst(g::make_complete(40),
                               model::uniform_competencies(rng, 40, 0.2, 0.8), 0.05);
    const mech::NoisyThreshold noisy(1, 0.25);
    election::EvalOptions opts;
    opts.replications = 60;
    opts.cycle_policy = CyclePolicy::Discard;
    const auto report = election::estimate_gain(noisy, inst, rng, opts);
    EXPECT_GE(report.pm.value, 0.0);
    EXPECT_LE(report.pm.value, 1.0);
}

TEST(NoisyThreshold, MoreNoiseMeansSmallerGain) {
    Rng rng(6);
    const model::Instance inst(g::make_complete(101),
                               model::pc_competencies(rng, 101, 0.02, 0.2), 0.05);
    election::EvalOptions opts;
    opts.replications = 150;
    opts.cycle_policy = CyclePolicy::Discard;
    const mech::NoisyThreshold clean(1, 0.0);
    const mech::NoisyThreshold noisy(1, 0.4);
    const auto g_clean = election::estimate_gain(clean, inst, rng, opts);
    const auto g_noisy = election::estimate_gain(noisy, inst, rng, opts);
    EXPECT_GT(g_clean.gain, g_noisy.gain);
}

TEST(Distributional, DirectVotingHasZeroExpectedGain) {
    Rng rng(7);
    const auto graph = g::make_complete(25);
    const mech::DirectVoting direct;
    const auto sampler = [](std::size_t n, Rng& r) {
        return model::uniform_competencies(r, n, 0.3, 0.7);
    };
    election::EvalOptions opts;
    opts.replications = 5;
    const auto report = election::estimate_gain_over_distribution(
        direct, graph, 0.05, sampler, rng, 20, opts);
    EXPECT_NEAR(report.gain.value, 0.0, 1e-10);
    EXPECT_NEAR(report.worst_gain, 0.0, 1e-10);
    EXPECT_EQ(report.draws, 20u);
}

TEST(Distributional, ThresholdMechanismGainsOnHardDistributions) {
    Rng rng(8);
    const auto graph = g::make_complete(80);
    const mech::ApprovalSizeThreshold m(1);
    // Halpern-style: competencies drawn around 1/2 each election.
    const auto sampler = [](std::size_t n, Rng& r) {
        return model::pc_competencies(r, n, 0.02, 0.25);
    };
    election::EvalOptions opts;
    opts.replications = 30;
    const auto report = election::estimate_gain_over_distribution(
        m, graph, 0.05, sampler, rng, 12, opts);
    EXPECT_GT(report.gain.value, 0.1);
    EXPECT_GE(report.best_gain, report.gain.value);
    EXPECT_LE(report.worst_gain, report.gain.value);
    EXPECT_GT(report.pm.value, report.pd.value);
}

TEST(Distributional, InputValidation) {
    Rng rng(9);
    const auto graph = g::make_complete(5);
    const mech::DirectVoting direct;
    EXPECT_THROW(election::estimate_gain_over_distribution(
                     direct, graph, 0.05, nullptr, rng, 5),
                 ContractViolation);
    const auto sampler = [](std::size_t n, Rng& r) {
        return model::uniform_competencies(r, n, 0.3, 0.7);
    };
    EXPECT_THROW(election::estimate_gain_over_distribution(direct, graph, 0.05, sampler,
                                                           rng, 0),
                 ContractViolation);
}

}  // namespace
