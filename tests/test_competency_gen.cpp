// Tests for the competency generators behind each workload family.

#include <gtest/gtest.h>

#include "ld/model/competency_gen.hpp"
#include "rng/rng.hpp"
#include "support/expect.hpp"

namespace {

namespace model = ld::model;
using ld::rng::Rng;
using ld::support::ContractViolation;

TEST(UniformCompetencies, StaysInInterval) {
    Rng rng(1);
    const auto p = model::uniform_competencies(rng, 1000, 0.3, 0.7);
    EXPECT_EQ(p.size(), 1000u);
    for (double x : p.values()) {
        EXPECT_GE(x, 0.3);
        EXPECT_LT(x, 0.7);
    }
    EXPECT_NEAR(p.mean(), 0.5, 0.02);
    EXPECT_THROW(model::uniform_competencies(rng, 10, 0.7, 0.3), ContractViolation);
}

TEST(PcCompetencies, HitsTheTargetMeanExactly) {
    Rng rng(2);
    for (double a : {0.05, 0.1, 0.2}) {
        const auto p = model::pc_competencies(rng, 500, a, 0.15);
        EXPECT_NEAR(p.mean(), 0.5 - a, 1e-6) << "a=" << a;
        EXPECT_TRUE(p.satisfies_pc(a * 1.001));
    }
}

TEST(PcCompetencies, ZeroSpreadIsConstant) {
    Rng rng(3);
    const auto p = model::pc_competencies(rng, 10, 0.1, 0.0);
    for (double x : p.values()) EXPECT_DOUBLE_EQ(x, 0.4);
}

TEST(PcCompetencies, RespectsBetaFloor) {
    Rng rng(4);
    const auto p = model::pc_competencies(rng, 2000, 0.24, 0.5, 0.05);
    for (double x : p.values()) {
        EXPECT_GE(x, 0.05);
        EXPECT_LE(x, 0.95);
    }
    EXPECT_THROW(model::pc_competencies(rng, 10, 0.3, 0.1), ContractViolation);
}

TEST(TwoPoint, ExactCounts) {
    Rng rng(5);
    const auto p = model::two_point_competencies(rng, 100, 0.2, 0.9, 0.25);
    std::size_t high = 0;
    for (double x : p.values()) {
        EXPECT_TRUE(x == 0.2 || x == 0.9);
        if (x == 0.9) ++high;
    }
    EXPECT_EQ(high, 25u);
}

TEST(TwoPoint, EdgeFractions) {
    Rng rng(6);
    const auto all_low = model::two_point_competencies(rng, 10, 0.3, 0.8, 0.0);
    for (double x : all_low.values()) EXPECT_DOUBLE_EQ(x, 0.3);
    const auto all_high = model::two_point_competencies(rng, 10, 0.3, 0.8, 1.0);
    for (double x : all_high.values()) EXPECT_DOUBLE_EQ(x, 0.8);
}

TEST(StarCompetencies, Figure1Profile) {
    const auto p = model::star_competencies(9);
    EXPECT_DOUBLE_EQ(p[0], 0.75);
    for (std::size_t v = 1; v < 9; ++v) EXPECT_DOUBLE_EQ(p[v], 0.55);
}

TEST(Figure2Competencies, MatchesThePaper) {
    const auto p = model::figure2_competencies();
    ASSERT_EQ(p.size(), 9u);
    const double expected[] = {0.8, 0.6, 0.5, 0.4, 0.3, 0.3, 0.2, 0.2, 0.1};
    for (std::size_t i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(p[i], expected[i]);
}

TEST(BetaCompetencies, MomentsMatchBetaLaw) {
    Rng rng(7);
    const double a = 2.0, b = 5.0;
    const auto p = model::beta_competencies(rng, 20000, a, b);
    // Beta(2,5): mean 2/7, var ab/((a+b)²(a+b+1)) = 10/(49·8).
    EXPECT_NEAR(p.mean(), 2.0 / 7.0, 0.01);
    double var = 0.0;
    for (double x : p.values()) var += (x - p.mean()) * (x - p.mean());
    var /= static_cast<double>(p.size());
    EXPECT_NEAR(var, 10.0 / (49.0 * 8.0), 0.005);
    for (double x : p.values()) {
        EXPECT_GT(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
    EXPECT_THROW(model::beta_competencies(rng, 5, 0.0, 1.0), ContractViolation);
}

TEST(TruncatedNormal, StaysInWindowWithRightMode) {
    Rng rng(8);
    const auto p = model::truncated_normal_competencies(rng, 5000, 0.6, 0.1, 0.4, 0.8);
    for (double x : p.values()) {
        EXPECT_GT(x, 0.4);
        EXPECT_LT(x, 0.8);
    }
    EXPECT_NEAR(p.mean(), 0.6, 0.01);
    EXPECT_THROW(model::truncated_normal_competencies(rng, 5, 0.5, 0.0, 0.1, 0.9),
                 ContractViolation);
}

}  // namespace
