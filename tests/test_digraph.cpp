// Unit tests for Digraph: CSR arcs, cycle detection, topological order,
// longest path (partition complexity of delegation outcomes).

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/digraph.hpp"
#include "support/expect.hpp"

namespace {

using ld::graph::Arc;
using ld::graph::Digraph;
using ld::graph::Vertex;
using ld::support::ContractViolation;

TEST(Digraph, EmptyDigraph) {
    const Digraph d = Digraph::empty(4);
    EXPECT_EQ(d.vertex_count(), 4u);
    EXPECT_EQ(d.arc_count(), 0u);
    EXPECT_TRUE(d.is_acyclic_up_to_self_loops());
    EXPECT_EQ(d.longest_path_length(), 0u);
}

TEST(Digraph, ZeroVerticesIsAcyclic) {
    const Digraph d = Digraph::empty(0);
    EXPECT_TRUE(d.is_acyclic_up_to_self_loops());
}

TEST(Digraph, RejectsOutOfRangeArcs) {
    EXPECT_THROW(Digraph(2, {Arc{0, 2}}), ContractViolation);
    EXPECT_THROW(Digraph(2, {Arc{5, 0}}), ContractViolation);
}

TEST(Digraph, DeduplicatesArcs) {
    const Digraph d(3, {Arc{0, 1}, Arc{0, 1}, Arc{1, 2}});
    EXPECT_EQ(d.arc_count(), 2u);
    EXPECT_EQ(d.out_degree(0), 1u);
}

TEST(Digraph, SuccessorsAreSorted) {
    const Digraph d(5, {Arc{0, 4}, Arc{0, 1}, Arc{0, 3}});
    const auto succ = d.successors(0);
    EXPECT_TRUE(std::is_sorted(succ.begin(), succ.end()));
    EXPECT_EQ(succ.size(), 3u);
}

TEST(Digraph, InDegrees) {
    const Digraph d(4, {Arc{0, 2}, Arc{1, 2}, Arc{3, 2}, Arc{2, 0}});
    const auto in = d.in_degrees();
    EXPECT_EQ(in[2], 3u);
    EXPECT_EQ(in[0], 1u);
    EXPECT_EQ(in[1], 0u);
    EXPECT_EQ(in[3], 0u);
}

TEST(Digraph, DetectsTwoCycle) {
    const Digraph d(2, {Arc{0, 1}, Arc{1, 0}});
    EXPECT_FALSE(d.is_acyclic_up_to_self_loops());
    EXPECT_THROW(d.topological_order(), ContractViolation);
}

TEST(Digraph, SelfLoopsDoNotCountAsCycles) {
    const Digraph d(3, {Arc{0, 0}, Arc{0, 1}, Arc{1, 2}});
    EXPECT_TRUE(d.is_acyclic_up_to_self_loops());
    EXPECT_EQ(d.longest_path_length(), 2u);
}

TEST(Digraph, TopologicalOrderRespectsArcs) {
    const Digraph d(6, {Arc{0, 2}, Arc{1, 2}, Arc{2, 3}, Arc{3, 4}, Arc{1, 5}});
    const auto order = d.topological_order();
    ASSERT_EQ(order.size(), 6u);
    std::vector<std::size_t> pos(6);
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    // Every arc must go forward in the order.
    for (Vertex v = 0; v < 6; ++v) {
        for (Vertex w : d.successors(v)) {
            if (w != v) {
                EXPECT_LT(pos[v], pos[w]) << v << "->" << static_cast<int>(w);
            }
        }
    }
}

TEST(Digraph, LongestPathOnChain) {
    // 0 -> 1 -> 2 -> 3: longest path is 3 arcs.
    const Digraph d(4, {Arc{0, 1}, Arc{1, 2}, Arc{2, 3}});
    EXPECT_EQ(d.longest_path_length(), 3u);
}

TEST(Digraph, LongestPathOnStarIsOne) {
    const Digraph d(5, {Arc{1, 0}, Arc{2, 0}, Arc{3, 0}, Arc{4, 0}});
    EXPECT_EQ(d.longest_path_length(), 1u);
}

TEST(Digraph, LongestPathPicksDeepestBranch) {
    const Digraph d(7, {Arc{0, 1}, Arc{1, 2}, Arc{0, 3}, Arc{3, 4}, Arc{4, 5}, Arc{5, 6}});
    EXPECT_EQ(d.longest_path_length(), 4u);  // 0-3-4-5-6
}

}  // namespace
