// Paper-level integration tests: each checks one claim of the paper
// end-to-end through the library (instance → mechanism → delegation →
// tally → gain).

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/complete_graph_threshold.hpp"
#include "ld/mech/d_out_sampling.hpp"
#include "ld/mech/fraction_approved.hpp"
#include "ld/theory/theorems.hpp"

namespace {

namespace election = ld::election;
namespace experiments = ld::experiments;
namespace g = ld::graph;
namespace mech = ld::mech;
using ld::rng::Rng;

TEST(Figure1, StarLossApproachesOneQuarter) {
    // The paper's star: direct voting → correct w.h.p.; BestNeighbour
    // delegation concentrates on the centre (p = 3/4) ⇒ gain → −1/4.
    Rng rng(1);
    const auto inst = experiments::star_instance(1001, 0.75, 0.55, 0.05);
    const mech::BestNeighbour m;
    election::EvalOptions opts;
    opts.replications = 8;  // the delegation graph is deterministic here
    const auto report = election::estimate_gain(m, inst, rng, opts);
    EXPECT_GT(report.pd, 0.9);             // Condorcet: leaves alone win
    EXPECT_NEAR(report.pm.value, 0.75, 1e-9);  // dictator centre
    EXPECT_LT(report.gain, -0.15);
    EXPECT_NEAR(-ld::theory::figure1_asymptotic_loss(0.75), -0.25, 1e-12);
}

TEST(Figure1, LossIsMonotoneInN) {
    Rng rng(2);
    const mech::BestNeighbour m;
    election::EvalOptions opts;
    opts.replications = 4;
    double prev_gain = 0.0;
    for (std::size_t n : {65u, 257u, 1025u}) {
        const auto inst = experiments::star_instance(n, 0.75, 0.55, 0.05);
        const auto report = election::estimate_gain(m, inst, rng, opts);
        EXPECT_LT(report.gain, prev_gain + 1e-9) << n;
        prev_gain = report.gain;
    }
    EXPECT_NEAR(prev_gain, -0.25, 0.05);
}

TEST(Figure2, WorkedExampleDelegationStructure) {
    Rng rng(3);
    const auto inst = experiments::figure2_instance();
    const mech::ApprovalSizeThreshold m(1);  // Example 1 with j = 0 (clamped)
    for (int rep = 0; rep < 50; ++rep) {
        const auto out = ld::delegation::realize(m, inst, rng);
        // v1 (vertex 0, p = 0.8) is the unique top voter: always a sink.
        EXPECT_EQ(out.action(0).kind, mech::ActionKind::Vote);
        // Everyone else has a strictly better neighbour at α = 0.01 ⇒
        // everyone else delegates (the complete graph shows all voters).
        EXPECT_EQ(out.stats().delegator_count, 8u);
        // Delegation graph must be acyclic and flow upwards in competency.
        EXPECT_TRUE(out.as_digraph().is_acyclic_up_to_self_loops());
        for (g::Vertex v = 1; v < 9; ++v) {
            const auto& a = out.action(v);
            ASSERT_EQ(a.kind, mech::ActionKind::Delegate);
            EXPECT_GE(inst.competency(a.targets[0]), inst.competency(v) + 0.01);
        }
        // All votes pool at sinks and sum to 9.
        EXPECT_EQ(out.stats().cast_weight, 9u);
    }
}

TEST(Theorem2, Algorithm1BeatsDirectVotingOnKn) {
    // SPG regime: PC = a competencies on K_n, sqrt threshold.
    Rng rng(4);
    const auto m = mech::CompleteGraphThreshold::with_sqrt_threshold();
    election::EvalOptions opts;
    opts.replications = 120;
    for (std::size_t n : {101u, 301u}) {
        const auto inst = experiments::complete_pc_instance(rng, n, 0.05, 0.06, 0.3);
        const auto report = election::estimate_gain(m, inst, rng, opts);
        EXPECT_GT(report.gain, 0.0) << "n=" << n;
        // Delegate restriction holds: a constant fraction delegates.
        EXPECT_GT(report.mean_delegators, static_cast<double>(n) / 10.0);
    }
}

TEST(Theorem2, GainGrowsWithDelegationVolume) {
    // Lemma 7: expectation increases by α per delegation, so more
    // delegation (smaller threshold) should not hurt P^M on PC instances.
    Rng rng(5);
    const auto inst = experiments::complete_pc_instance(rng, 201, 0.05, 0.06, 0.3);
    election::EvalOptions opts;
    opts.replications = 150;
    const auto sparse = mech::CompleteGraphThreshold::with_linear_threshold(1.0 / 3.0);
    const auto dense = mech::CompleteGraphThreshold::with_log_threshold();
    const auto r_sparse = election::estimate_gain(sparse, inst, rng, opts);
    const auto r_dense = election::estimate_gain(dense, inst, rng, opts);
    EXPECT_GE(r_dense.mean_delegators, r_sparse.mean_delegators);
    EXPECT_GE(r_dense.gain, r_sparse.gain - 0.02);
}

TEST(Theorem3, Algorithm2BeatsDirectVotingOnRandomDRegular) {
    Rng rng(6);
    election::EvalOptions opts;
    opts.replications = 120;
    const std::size_t n = 200, d = 16;
    const auto inst = experiments::d_regular_instance(rng, n, d, 0.05, 0.06, 0.3);
    const mech::DOutSampling m(d, 2, mech::SampleSource::Neighbourhood);
    const auto report = election::estimate_gain(m, inst, rng, opts);
    EXPECT_GT(report.gain, -0.005);
    EXPECT_GT(report.mean_delegators, 10.0);
}

TEST(Theorem3, PopulationSamplingAlsoGains) {
    Rng rng(7);
    election::EvalOptions opts;
    opts.replications = 120;
    const auto inst = experiments::complete_pc_instance(rng, 200, 0.05, 0.06, 0.3);
    const auto m = mech::DOutSampling::with_fraction(16, 0.125, mech::SampleSource::Population);
    const auto report = election::estimate_gain(m, inst, rng, opts);
    EXPECT_GT(report.gain, 0.0);
}

TEST(Theorem5, FractionMechanismOnMinDegreeGraphs) {
    Rng rng(8);
    election::EvalOptions opts;
    opts.replications = 100;
    const auto regime = ld::theory::theorem5_regime(256, 0.5);
    const auto inst = experiments::min_degree_instance(rng, 256, regime.min_degree, 0.05,
                                                       0.35, 0.85);
    const mech::FractionApproved m(1.0 / 3.0);
    const auto report = election::estimate_gain(m, inst, rng, opts);
    // DNH side: no catastrophic loss; typically a clear gain.
    EXPECT_GT(report.gain, -0.02);
}

TEST(VarianceStory, DelegationToDictatorCollapsesVariance) {
    // The title claim in microcosm: concentrating weight trades variance
    // for correlation.  Var under the dictator = w²p(1−p) with w = n,
    // versus Σ p_i(1−p_i) ≈ n/4 under direct voting — but the *decision*
    // quality collapses because the margin no longer grows.
    Rng rng(9);
    const auto inst = experiments::star_instance(101, 0.75, 0.52, 0.05);
    const mech::BestNeighbour m;
    election::EvalOptions opts;
    opts.replications = 8;
    const auto var = election::estimate_variance(m, inst, rng, opts);
    // Dictator: Var = 101² · 0.75 · 0.25.
    EXPECT_NEAR(var.mean_conditional_variance, 101.0 * 101.0 * 0.1875, 1.0);
    EXPECT_GT(var.mean_conditional_variance, 10.0 * var.direct_variance);
}

TEST(VarianceStory, ThresholdMechanismKeepsVarianceOfTheRightOrder) {
    Rng rng(10);
    const auto inst = experiments::complete_pc_instance(rng, 200, 0.05, 0.1, 0.2);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 60;
    const auto var = election::estimate_variance(m, inst, rng, opts);
    // Variance grows vs direct (weights > 1) but stays o(n²) — far from
    // the dictator's collapse.
    EXPECT_LT(var.mean_conditional_variance, 0.05 * 200.0 * 200.0);
    EXPECT_GT(var.mean_conditional_variance, var.direct_variance);
}

}  // namespace
