// Tests for the DNH audits (Lemmas 3 and 5), desiderata verdicts, and the
// theorem regime calculators.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "ld/dnh/conditions.hpp"
#include "ld/dnh/verdicts.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/direct.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/theory/theorems.hpp"
#include "support/expect.hpp"

namespace {

namespace dnh = ld::dnh;
namespace g = ld::graph;
namespace mech = ld::mech;
namespace model = ld::model;
namespace theory = ld::theory;
using ld::rng::Rng;
using ld::support::ContractViolation;

TEST(Lemma3Audit, DirectVotingTriviallySatisfies) {
    Rng rng(1);
    const model::Instance inst(g::make_complete(100),
                               model::uniform_competencies(rng, 100, 0.3, 0.7), 0.05);
    const mech::DirectVoting direct;
    const auto audit = dnh::audit_lemma3(inst, direct, rng, 0.1);
    EXPECT_TRUE(audit.bounded_competency);
    EXPECT_GT(audit.beta, 0.25);
    EXPECT_EQ(audit.mean_delegators, 0.0);
    EXPECT_TRUE(audit.within_budget);
    EXPECT_TRUE(audit.hypotheses_hold);
    EXPECT_LT(audit.flip_probability_bound, 0.01);
}

TEST(Lemma3Audit, HeavyDelegationBreaksTheBudget) {
    Rng rng(2);
    const model::Instance inst(g::make_complete(100),
                               model::uniform_competencies(rng, 100, 0.3, 0.7), 0.02);
    const mech::ApprovalSizeThreshold m(1);  // almost everyone delegates
    const auto audit = dnh::audit_lemma3(inst, m, rng, 0.1);
    EXPECT_TRUE(audit.bounded_competency);
    EXPECT_GT(audit.mean_delegators, 50.0);
    EXPECT_FALSE(audit.within_budget);
    EXPECT_FALSE(audit.hypotheses_hold);
    EXPECT_GT(audit.flip_probability_bound, 0.9);
}

TEST(Lemma3Audit, UnboundedCompetencyIsFlagged) {
    Rng rng(3);
    std::vector<double> p(50, 0.6);
    p[0] = 1.0;  // an oracle voter breaks p ∈ (β, 1−β)
    const model::Instance inst(g::make_complete(50),
                               model::CompetencyVector(std::move(p)), 0.05);
    const mech::DirectVoting direct;
    const auto audit = dnh::audit_lemma3(inst, direct, rng, 0.1);
    EXPECT_FALSE(audit.bounded_competency);
    EXPECT_FALSE(audit.hypotheses_hold);
    EXPECT_EQ(audit.flip_probability_bound, 1.0);
}

TEST(Lemma5Audit, StarConcentrationIsDetected) {
    Rng rng(4);
    const auto inst = ld::experiments::star_instance(101, 0.75, 0.52, 0.05);
    const mech::BestNeighbour m;
    const auto audit = dnh::audit_lemma5(inst, m, rng, 0.2, 1.0, 16);
    // All 100 leaves delegate to the centre: max weight 101.
    EXPECT_NEAR(audit.worst_max_weight, 101.0, 1e-9);
    EXPECT_FALSE(audit.weight_small_enough);
}

TEST(Lemma5Audit, ThresholdMechanismKeepsWeightsSmall) {
    Rng rng(5);
    const auto inst = ld::experiments::complete_pc_instance(rng, 200, 0.05, 0.1, 0.2);
    const mech::ApprovalSizeThreshold m(1);
    const auto audit = dnh::audit_lemma5(inst, m, rng, 0.2, 1.0, 16);
    EXPECT_LT(audit.mean_max_weight, 80.0);
    EXPECT_GT(audit.mean_max_weight, 1.0);
    EXPECT_LT(audit.failure_bound, 1.0);
}

TEST(Verdicts, SweepGainProducesOnePointPerSize) {
    Rng rng(6);
    const auto family = ld::experiments::complete_pc_family(0.05, 0.1, 0.2);
    const mech::ApprovalSizeThreshold m(1);
    ld::election::EvalOptions eval;
    eval.replications = 24;
    const auto sweep = dnh::sweep_gain(family, m, {20, 40, 80}, rng, eval);
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep[0].n, 20u);
    EXPECT_EQ(sweep[2].n, 80u);
    for (const auto& pt : sweep) {
        EXPECT_GE(pt.pd, 0.0);
        EXPECT_LE(pt.pm, 1.0);
        EXPECT_LE(pt.gain_ci_lo, pt.gain);
        EXPECT_GE(pt.gain_ci_hi, pt.gain);
    }
}

TEST(Verdicts, CompleteGraphPassesDnhAndSpg) {
    Rng rng(7);
    const auto family = ld::experiments::complete_pc_family(0.05, 0.08, 0.2);
    const mech::ApprovalSizeThreshold m(1);
    dnh::VerdictOptions opts;
    opts.eval.replications = 48;
    const auto dnh_verdict = dnh::check_dnh(family, m, {31, 61, 121, 241}, rng, opts);
    EXPECT_TRUE(dnh_verdict.satisfied) << dnh_verdict.detail;
    const auto spg_verdict = dnh::check_spg(family, m, {31, 61, 121, 241}, rng, opts);
    EXPECT_TRUE(spg_verdict.satisfied) << spg_verdict.detail;
    EXPECT_GT(spg_verdict.gamma, 0.0);
}

TEST(Verdicts, StarWithBestNeighbourFailsDnh) {
    Rng rng(8);
    const auto family = ld::experiments::star_family(0.75, 0.55, 0.05);
    const mech::BestNeighbour m;
    dnh::VerdictOptions opts;
    opts.eval.replications = 16;  // outcome is deterministic given the star
    const auto verdict = dnh::check_dnh(family, m, {65, 129, 257, 513}, rng, opts);
    EXPECT_FALSE(verdict.satisfied) << verdict.detail;
    // Loss approaches 1/4 (Figure 1's asymptotic).
    EXPECT_LT(verdict.worst_gain, -0.15);
}

TEST(Verdicts, BurnInValidation) {
    Rng rng(9);
    const auto family = ld::experiments::star_family(0.75, 0.55, 0.05);
    const mech::DirectVoting m;
    dnh::VerdictOptions opts;
    opts.spg_burn_in = 5;
    EXPECT_THROW(dnh::check_spg(family, m, {10, 20}, rng, opts), ContractViolation);
}

TEST(Theorem2Regime, Parameters) {
    const auto r = theory::theorem2_regime(900, 0.2, 4.0);
    EXPECT_NEAR(r.pc, 0.05, 1e-12);
    EXPECT_EQ(r.delegate_floor, 225u);
    EXPECT_EQ(r.max_threshold, 300u);
    EXPECT_THROW(theory::theorem2_regime(10, 0.0, 2.0), ContractViolation);
    EXPECT_THROW(theory::theorem2_regime(10, 0.1, 0.5), ContractViolation);
}

TEST(Theorem3Regime, ThresholdFraction) {
    const auto r = theory::theorem3_regime(1000, 16, 0.2, 4.0, 0.25);
    EXPECT_EQ(r.threshold, 4u);
    EXPECT_EQ(r.delegate_floor, 250u);
    EXPECT_THROW(theory::theorem3_regime(10, 10, 0.1, 2.0, 0.5), ContractViolation);
}

TEST(Theorem4Regime, DegreeExponents) {
    const auto r = theory::theorem4_regime(10000, 1.0, 100);
    // t^{ε/(1+ε)} = 100^{1/2} = 10; n^{ε/(2+ε)} = 10000^{1/3} ≈ 21.
    EXPECT_EQ(r.spg_max_degree, 10u);
    EXPECT_EQ(r.dnh_max_degree, 21u);
    EXPECT_THROW(theory::theorem4_regime(10, 0.0, 5), ContractViolation);
}

TEST(Theorem5Regime, MinDegreeAndDelegateFloor) {
    const auto r = theory::theorem5_regime(10000, 0.5);
    EXPECT_EQ(r.min_degree, 100u);
    EXPECT_EQ(r.delegate_floor, 100u);
    EXPECT_THROW(theory::theorem5_regime(100, 1.0), ContractViolation);
}

TEST(Figure1, AsymptoticLossIsOneQuarter) {
    EXPECT_NEAR(theory::figure1_asymptotic_loss(0.75), 0.25, 1e-15);
    EXPECT_NEAR(theory::figure1_asymptotic_loss(1.0), 0.0, 1e-15);
}

}  // namespace
