// Tests for stats: Welford accumulators, histogram, confidence intervals,
// empirical CDF.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.hpp"
#include "stats/confidence.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"
#include "support/expect.hpp"

namespace {

using ld::rng::Rng;
using ld::stats::Ecdf;
using ld::stats::Histogram;
using ld::stats::PairedStats;
using ld::stats::RunningStats;
using ld::support::ContractViolation;

TEST(RunningStats, MatchesDirectComputation) {
    const std::vector<double> data{1.0, 2.0, 4.0, 8.0, 16.0};
    RunningStats rs;
    for (double x : data) rs.add(x);
    EXPECT_EQ(rs.count(), 5u);
    EXPECT_NEAR(rs.mean(), 6.2, 1e-12);
    // Sample variance: Σ(x−m)²/(n−1) = 148.8/4 = 37.2
    EXPECT_NEAR(rs.variance(), 37.2, 1e-12);
    EXPECT_NEAR(rs.stddev(), std::sqrt(37.2), 1e-12);
    EXPECT_NEAR(rs.standard_error(), std::sqrt(37.2 / 5.0), 1e-12);
    EXPECT_EQ(rs.min(), 1.0);
    EXPECT_EQ(rs.max(), 16.0);
}

TEST(RunningStats, EmptyAndSingleton) {
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.variance(), 0.0);
    EXPECT_EQ(rs.standard_error(), 0.0);
    rs.add(3.0);
    EXPECT_EQ(rs.mean(), 3.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
    Rng rng(1);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.next_double() * 10.0 - 5.0;
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    RunningStats a_copy = a;
    a.merge(b);  // empty rhs: no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), a_copy.mean());
    b.merge(a);  // empty lhs: adopt
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), 2.0);
}

TEST(PairedStats, TracksDifference) {
    PairedStats ps;
    ps.add(1.0, 0.5);
    ps.add(0.8, 0.9);
    ps.add(0.6, 0.2);
    EXPECT_EQ(ps.count(), 3u);
    EXPECT_NEAR(ps.first().mean(), 0.8, 1e-12);
    EXPECT_NEAR(ps.second().mean(), 1.6 / 3.0, 1e-12);
    EXPECT_NEAR(ps.difference().mean(), 0.8 - 1.6 / 3.0, 1e-12);
}

TEST(Histogram, BinningAndOverflow) {
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);   // underflow
    h.add(0.0);    // bin 0
    h.add(1.9);    // bin 0
    h.add(5.0);    // bin 2
    h.add(9.99);   // bin 4
    h.add(10.0);   // overflow
    h.add(42.0);   // overflow
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_NEAR(h.fraction(0), 2.0 / 7.0, 1e-12);
    const auto [lo, hi] = h.bin_edges(2);
    EXPECT_NEAR(lo, 4.0, 1e-12);
    EXPECT_NEAR(hi, 6.0, 1e-12);
}

TEST(Histogram, ValidationAndRender) {
    EXPECT_THROW(Histogram(1.0, 1.0, 3), ContractViolation);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    const std::string art = h.render(10);
    EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Confidence, WaldIntervalShape) {
    const auto ci = ld::stats::mean_interval(0.5, 0.1, 0.95);
    EXPECT_NEAR(ci.lo, 0.5 - 1.959963984540054 * 0.1, 1e-9);
    EXPECT_NEAR(ci.hi, 0.5 + 1.959963984540054 * 0.1, 1e-9);
    EXPECT_TRUE(ci.contains(0.5));
    EXPECT_NEAR(ci.width(), 2 * 1.959963984540054 * 0.1, 1e-9);
}

TEST(Confidence, WilsonIntervalProperties) {
    const auto ci = ld::stats::wilson_interval(50, 100, 0.95);
    EXPECT_TRUE(ci.contains(0.5));
    EXPECT_GT(ci.lo, 0.39);
    EXPECT_LT(ci.hi, 0.61);

    // Extremes stay inside [0, 1] (where Wald would leak).
    const auto zero = ld::stats::wilson_interval(0, 20, 0.95);
    EXPECT_GE(zero.lo, 0.0);
    EXPECT_GT(zero.hi, 0.0);
    const auto all = ld::stats::wilson_interval(20, 20, 0.95);
    EXPECT_LT(all.lo, 1.0);
    EXPECT_LE(all.hi, 1.0);

    const auto empty = ld::stats::wilson_interval(0, 0, 0.95);
    EXPECT_EQ(empty.lo, 0.0);
    EXPECT_EQ(empty.hi, 1.0);
    EXPECT_THROW(ld::stats::wilson_interval(5, 4, 0.95), ContractViolation);
}

TEST(Confidence, WilsonCoverageIsApproximatelyNominal) {
    Rng rng(2);
    const double p = 0.3;
    int covered = 0;
    const int trials = 2000, n = 50;
    for (int t = 0; t < trials; ++t) {
        std::size_t hits = 0;
        for (int i = 0; i < n; ++i) {
            if (rng.next_bernoulli(p)) ++hits;
        }
        if (ld::stats::wilson_interval(hits, n, 0.95).contains(p)) ++covered;
    }
    EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.03);
}

TEST(Confidence, BootstrapContainsTheSampleMean) {
    Rng rng(3);
    std::vector<double> sample;
    for (int i = 0; i < 200; ++i) sample.push_back(rng.next_double());
    double mean = 0.0;
    for (double x : sample) mean += x;
    mean /= static_cast<double>(sample.size());
    const auto ci = ld::stats::bootstrap_mean_interval(rng, sample, 500, 0.95);
    EXPECT_TRUE(ci.contains(mean));
    EXPECT_LT(ci.width(), 0.2);
    EXPECT_THROW(ld::stats::bootstrap_mean_interval(rng, std::vector<double>{}, 10, 0.9),
                 ContractViolation);
}

TEST(Ecdf, QuantilesAndTails) {
    const std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0};
    const Ecdf e(sample);
    EXPECT_EQ(e.size(), 5u);
    EXPECT_NEAR(e.cdf(3.0), 0.6, 1e-12);
    EXPECT_NEAR(e.cdf(0.5), 0.0, 1e-12);
    EXPECT_NEAR(e.cdf(10.0), 1.0, 1e-12);
    EXPECT_NEAR(e.fraction_below(3.0), 0.4, 1e-12);
    EXPECT_NEAR(e.fraction_above(3.0), 0.4, 1e-12);
    EXPECT_EQ(e.min(), 1.0);
    EXPECT_EQ(e.max(), 5.0);
    EXPECT_EQ(e.quantile(0.0), 1.0);
    EXPECT_EQ(e.quantile(1.0), 5.0);
    EXPECT_EQ(e.quantile(0.5), 3.0);
    EXPECT_THROW(Ecdf(std::vector<double>{}), ContractViolation);
}

}  // namespace
