// Unit tests for the CSR Graph and GraphBuilder.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"
#include "support/expect.hpp"

namespace {

using ld::graph::Edge;
using ld::graph::Graph;
using ld::graph::GraphBuilder;
using ld::graph::Vertex;
using ld::support::ContractViolation;

TEST(Graph, EmptyGraphHasNoEdges) {
    const Graph g = Graph::empty(5);
    EXPECT_EQ(g.vertex_count(), 5u);
    EXPECT_EQ(g.edge_count(), 0u);
    for (Vertex v = 0; v < 5; ++v) {
        EXPECT_EQ(g.degree(v), 0u);
        EXPECT_TRUE(g.neighbours(v).empty());
    }
}

TEST(Graph, ZeroVertexGraphIsValid) {
    const Graph g = Graph::empty(0);
    EXPECT_EQ(g.vertex_count(), 0u);
    EXPECT_TRUE(g.edges().empty());
}

TEST(GraphBuilder, BuildsTriangle) {
    GraphBuilder b(3);
    b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
    const Graph g = b.build();
    EXPECT_EQ(g.edge_count(), 3u);
    for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
    GraphBuilder b(2);
    b.add_edge(0, 1);
    b.add_edge(1, 0);
    b.add_edge(0, 1);
    EXPECT_EQ(b.pending_edge_count(), 3u);
    const Graph g = b.build();
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilder, RejectsSelfLoopsAndOutOfRange) {
    GraphBuilder b(3);
    EXPECT_THROW(b.add_edge(1, 1), ContractViolation);
    EXPECT_THROW(b.add_edge(0, 3), ContractViolation);
    EXPECT_THROW(b.add_edge(5, 0), ContractViolation);
}

TEST(GraphBuilder, IsReusableAfterBuild) {
    GraphBuilder b(3);
    b.add_edge(0, 1);
    const Graph g1 = b.build();
    b.add_edge(1, 2);
    const Graph g2 = b.build();
    EXPECT_EQ(g1.edge_count(), 1u);
    EXPECT_EQ(g2.edge_count(), 2u);
}

TEST(Graph, NeighboursAreSortedAscending) {
    GraphBuilder b(6);
    b.add_edge(3, 5).add_edge(3, 0).add_edge(3, 4).add_edge(3, 1);
    const Graph g = b.build();
    const auto nbrs = g.neighbours(3);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_EQ(nbrs.size(), 4u);
    EXPECT_EQ(nbrs[0], 0u);
    EXPECT_EQ(nbrs[3], 5u);
}

TEST(Graph, HasEdgeHandlesMissingAndOutOfRange) {
    GraphBuilder b(4);
    b.add_edge(0, 1);
    const Graph g = b.build();
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_FALSE(g.has_edge(2, 3));
    EXPECT_FALSE(g.has_edge(0, 100));
    EXPECT_FALSE(g.has_edge(100, 0));
}

TEST(Graph, EdgesReturnsCanonicalSortedList) {
    GraphBuilder b(4);
    b.add_edge(2, 3).add_edge(0, 1).add_edge(1, 3);
    const auto edges = b.build().edges();
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0], (Edge{0, 1}));
    EXPECT_EQ(edges[1], (Edge{1, 3}));
    EXPECT_EQ(edges[2], (Edge{2, 3}));
    for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, EqualityComparesStructure) {
    GraphBuilder b1(3), b2(3);
    b1.add_edge(0, 1);
    b2.add_edge(1, 0);
    EXPECT_EQ(b1.build(), b2.build());
    b2.add_edge(1, 2);
    EXPECT_NE(b1.build(), b2.build());
}

TEST(Graph, DegreeSumIsTwiceEdgeCount) {
    GraphBuilder b(10);
    b.add_edge(0, 1).add_edge(0, 2).add_edge(3, 4).add_edge(5, 9).add_edge(2, 7);
    const Graph g = b.build();
    std::size_t degree_sum = 0;
    for (Vertex v = 0; v < g.vertex_count(); ++v) degree_sum += g.degree(v);
    EXPECT_EQ(degree_sum, 2 * g.edge_count());
}

}  // namespace
