// Tests for every graph generator, including parameterized sweeps over
// sizes (regularity, degree caps/floors, connectivity).

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/restrictions.hpp"
#include "rng/rng.hpp"
#include "support/expect.hpp"

namespace {

using ld::graph::Graph;
using ld::graph::Vertex;
using ld::rng::Rng;
using ld::support::ContractViolation;
namespace g = ld::graph;

TEST(Complete, HasAllEdges) {
    const Graph k5 = g::make_complete(5);
    EXPECT_EQ(k5.edge_count(), 10u);
    EXPECT_TRUE(g::is_complete(k5));
}

TEST(Complete, TrivialSizes) {
    EXPECT_EQ(g::make_complete(0).vertex_count(), 0u);
    EXPECT_EQ(g::make_complete(1).edge_count(), 0u);
    EXPECT_EQ(g::make_complete(2).edge_count(), 1u);
}

TEST(Star, CentreConnectsToAllLeaves) {
    const Graph s = g::make_star(9);
    EXPECT_EQ(s.edge_count(), 8u);
    EXPECT_EQ(s.degree(0), 8u);
    for (Vertex v = 1; v < 9; ++v) {
        EXPECT_EQ(s.degree(v), 1u);
        EXPECT_TRUE(s.has_edge(0, v));
    }
}

TEST(PathAndCycle, Shapes) {
    const Graph p = g::make_path(5);
    EXPECT_EQ(p.edge_count(), 4u);
    EXPECT_EQ(p.degree(0), 1u);
    EXPECT_EQ(p.degree(2), 2u);

    const Graph c = g::make_cycle(5);
    EXPECT_EQ(c.edge_count(), 5u);
    for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(c.degree(v), 2u);
    EXPECT_THROW(g::make_cycle(2), ContractViolation);
}

TEST(Grid, FourNeighbourLattice) {
    const Graph grid = g::make_grid(3, 4);
    EXPECT_EQ(grid.vertex_count(), 12u);
    // 3 rows × 3 horizontal + 2 rows × 4 vertical = 9 + 8.
    EXPECT_EQ(grid.edge_count(), 17u);
    EXPECT_EQ(grid.degree(0), 2u);   // corner
    EXPECT_EQ(grid.degree(5), 4u);   // interior (row 1, col 1)
    EXPECT_TRUE(g::is_connected(grid));
}

TEST(Grid, RejectsZeroDimensionsAndOverflow) {
    EXPECT_THROW(g::make_grid(0, 5), ContractViolation);
    EXPECT_THROW(g::make_grid(5, 0), ContractViolation);
    // rows * cols wraps 64 bits without the guard.
    const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
    EXPECT_THROW(g::make_grid(huge, 3), ContractViolation);
    // Fits 64 bits but not the 32-bit vertex id space.
    EXPECT_THROW(g::make_grid(std::size_t{1} << 20, std::size_t{1} << 20),
                 ContractViolation);
}

TEST(Generators, RejectSizesBeyondVertexRange) {
    Rng rng(6);
    const std::size_t beyond = (std::size_t{1} << 32) + 2;
    EXPECT_THROW(g::make_erdos_renyi_gnm(rng, beyond, 1), ContractViolation);
    EXPECT_THROW(g::make_random_d_regular(rng, beyond, 2), ContractViolation);
    EXPECT_THROW(g::make_barabasi_albert(rng, beyond, 2), ContractViolation);
    EXPECT_THROW(g::make_bounded_degree(rng, beyond, 2, 1), ContractViolation);
}

TEST(BoundedDegree, InfeasibleTargetDetectedWithoutOverflow) {
    Rng rng(7);
    // target_edges * 2 wraps 64 bits; the 128-bit compare must still
    // reject instead of silently accepting the wrapped value.
    EXPECT_THROW(
        g::make_bounded_degree(rng, 10, 2, std::numeric_limits<std::size_t>::max()),
        ContractViolation);
}

TEST(ErdosRenyiGnp, EdgeCountConcentratesAroundMean) {
    Rng rng(1);
    const std::size_t n = 200;
    const double p = 0.1;
    const Graph er = g::make_erdos_renyi_gnp(rng, n, p);
    const double expected = p * n * (n - 1) / 2.0;
    EXPECT_NEAR(static_cast<double>(er.edge_count()), expected, 0.15 * expected);
}

TEST(ErdosRenyiGnp, ExtremesAreExact) {
    Rng rng(2);
    EXPECT_EQ(g::make_erdos_renyi_gnp(rng, 20, 0.0).edge_count(), 0u);
    EXPECT_TRUE(g::is_complete(g::make_erdos_renyi_gnp(rng, 20, 1.0)));
    EXPECT_THROW(g::make_erdos_renyi_gnp(rng, 5, 1.5), ContractViolation);
}

TEST(ErdosRenyiGnm, ExactEdgeCount) {
    Rng rng(3);
    const Graph er = g::make_erdos_renyi_gnm(rng, 30, 100);
    EXPECT_EQ(er.edge_count(), 100u);
    EXPECT_THROW(g::make_erdos_renyi_gnm(rng, 4, 7), ContractViolation);
}

TEST(DRegular, PreconditionsChecked) {
    Rng rng(4);
    EXPECT_THROW(g::make_random_d_regular(rng, 4, 4), ContractViolation);  // d >= n
    EXPECT_THROW(g::make_random_d_regular(rng, 5, 3), ContractViolation);  // odd n*d
}

TEST(DRegular, ZeroDegreeGivesEmptyGraph) {
    Rng rng(5);
    const Graph zero = g::make_random_d_regular(rng, 6, 0);
    EXPECT_EQ(zero.edge_count(), 0u);
}

class DRegularSweep : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DRegularSweep, IsSimpleAndRegular) {
    const auto [n, d] = GetParam();
    Rng rng(100 + n * 7 + d);
    const Graph gr = g::make_random_d_regular(rng, n, d);
    EXPECT_EQ(gr.vertex_count(), n);
    EXPECT_TRUE(g::is_d_regular(gr, d)) << "n=" << n << " d=" << d;
    EXPECT_EQ(gr.edge_count(), n * d / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DRegularSweep,
                         ::testing::Values(std::make_tuple(10, 3),
                                           std::make_tuple(16, 4),
                                           std::make_tuple(50, 7),
                                           std::make_tuple(128, 8),
                                           std::make_tuple(401, 6),
                                           std::make_tuple(1000, 16)));

TEST(DOut, DegreesAreAtLeastD) {
    Rng rng(6);
    const std::size_t n = 100, d = 5;
    const Graph gr = g::make_d_out(rng, n, d);
    // Every vertex initiated d edges; merging can only add more.
    for (Vertex v = 0; v < n; ++v) EXPECT_GE(gr.degree(v), d);
    const auto stats = g::degree_stats(gr);
    EXPECT_NEAR(stats.mean, 2.0 * d, 1.5);
}

TEST(BoundedDegree, RespectsCap) {
    Rng rng(7);
    const std::size_t n = 200, cap = 6;
    const Graph gr = g::make_bounded_degree(rng, n, cap, n * cap / 4);
    EXPECT_TRUE(g::max_degree_at_most(gr, cap));
    EXPECT_GT(gr.edge_count(), n / 2);  // should place a decent number
}

TEST(BoundedDegree, InfeasibleTargetRejected) {
    Rng rng(8);
    EXPECT_THROW(g::make_bounded_degree(rng, 10, 2, 100), ContractViolation);
}

TEST(MinDegree, RespectsFloorAndConnectivity) {
    Rng rng(9);
    for (std::size_t floor_deg : {2u, 5u, 12u}) {
        const Graph gr = g::make_min_degree_at_least(rng, 100, floor_deg);
        EXPECT_TRUE(g::min_degree_at_least(gr, floor_deg)) << floor_deg;
        EXPECT_TRUE(g::is_connected(gr));
    }
}

TEST(BarabasiAlbert, DegreesAndSkew) {
    Rng rng(10);
    const std::size_t n = 500, m = 3;
    const Graph gr = g::make_barabasi_albert(rng, n, m);
    EXPECT_EQ(gr.vertex_count(), n);
    // Every newcomer adds exactly m edges onto an (m+1)-clique.
    EXPECT_EQ(gr.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
    const auto stats = g::degree_stats(gr);
    EXPECT_GE(stats.min, m);
    // Preferential attachment should make the max degree far above mean.
    EXPECT_GT(stats.asymmetry, 3.0);
    EXPECT_THROW(g::make_barabasi_albert(rng, 3, 3), ContractViolation);
}

TEST(WattsStrogatz, LatticeAndRewired) {
    Rng rng(11);
    const Graph lattice = g::make_watts_strogatz(rng, 50, 4, 0.0);
    EXPECT_TRUE(g::is_d_regular(lattice, 4));
    EXPECT_EQ(lattice.edge_count(), 100u);

    const Graph rewired = g::make_watts_strogatz(rng, 50, 4, 0.5);
    EXPECT_EQ(rewired.vertex_count(), 50u);
    // Rewiring keeps the edge budget (it moves endpoints, not removes).
    EXPECT_NEAR(static_cast<double>(rewired.edge_count()), 100.0, 5.0);
    EXPECT_THROW(g::make_watts_strogatz(rng, 10, 3, 0.1), ContractViolation);
}

TEST(TwoTier, HubCliquePlusSpokes) {
    Rng rng(12);
    const Graph gr = g::make_two_tier(rng, 50, 5, 2);
    // Hubs form K_5.
    for (Vertex u = 0; u < 5; ++u) {
        for (Vertex v = u + 1; v < 5; ++v) EXPECT_TRUE(gr.has_edge(u, v));
    }
    // Leaves touch only hubs, exactly 2 each.
    for (Vertex leaf = 5; leaf < 50; ++leaf) {
        EXPECT_EQ(gr.degree(leaf), 2u);
        for (Vertex w : gr.neighbours(leaf)) EXPECT_LT(w, 5u);
    }
}

}  // namespace
