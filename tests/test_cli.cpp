// Tests for the CLI spec factories, flag parsing, and end-to-end runs.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/properties.hpp"
#include "graph/restrictions.hpp"
#include "ld/cli/runner.hpp"
#include "ld/cli/specs.hpp"
#include "ld/mech/mechanism.hpp"
#include "ld/model/instance.hpp"
#include "ld/model/competency_gen.hpp"
#include "prob/convolve.hpp"
#include "support/cpu_features.hpp"
#include "support/expect.hpp"
#include "support/json.hpp"
#include <fstream>
#include <cstdio>
#include "graph/generators.hpp"

namespace {

namespace cli = ld::cli;
namespace g = ld::graph;
using ld::cli::SpecError;
using ld::rng::Rng;

TEST(GraphSpecs, BuildEveryFamily) {
    Rng rng(1);
    EXPECT_TRUE(g::is_complete(cli::make_graph("complete", 8, rng)));
    EXPECT_EQ(cli::make_graph("star", 8, rng).degree(0), 7u);
    EXPECT_TRUE(g::is_d_regular(cli::make_graph("cycle", 8, rng), 2));
    EXPECT_EQ(cli::make_graph("path", 8, rng).edge_count(), 7u);
    EXPECT_TRUE(g::is_d_regular(cli::make_graph("dregular:4", 10, rng), 4));
    EXPECT_GE(cli::make_graph("dout:3", 12, rng).edge_count(), 12u);
    EXPECT_EQ(cli::make_graph("gnm:11", 10, rng).edge_count(), 11u);
    EXPECT_EQ(cli::make_graph("ba:2", 20, rng).vertex_count(), 20u);
    EXPECT_EQ(cli::make_graph("ws:4,0.1", 20, rng).vertex_count(), 20u);
    EXPECT_EQ(cli::make_graph("twotier:3,1", 20, rng).vertex_count(), 20u);
    EXPECT_TRUE(g::min_degree_at_least(cli::make_graph("mindeg:3", 20, rng), 3));
    EXPECT_TRUE(g::max_degree_at_most(cli::make_graph("maxdeg:4", 20, rng), 4));
    const auto er = cli::make_graph("er:0.3", 30, rng);
    EXPECT_EQ(er.vertex_count(), 30u);
}

TEST(GraphSpecs, ErrorsAreDiagnosed) {
    Rng rng(2);
    EXPECT_THROW(cli::make_graph("nope", 5, rng), SpecError);
    EXPECT_THROW(cli::make_graph("dregular:abc", 5, rng), SpecError);
    EXPECT_THROW(cli::make_graph("ws:4", 10, rng), SpecError);        // missing beta
    EXPECT_THROW(cli::make_graph("dregular:2.5", 10, rng), SpecError);  // non-integer
    EXPECT_THROW(cli::make_graph("file:/no/such/file", 5, rng), SpecError);
}

TEST(CompetencySpecs, BuildEveryProfile) {
    Rng rng(3);
    EXPECT_EQ(cli::make_competencies("uniform:0.2,0.8", 50, rng).size(), 50u);
    EXPECT_NEAR(cli::make_competencies("pc:0.1,0.2", 200, rng).mean(), 0.4, 1e-6);
    EXPECT_EQ(cli::make_competencies("beta:2,5", 10, rng).size(), 10u);
    EXPECT_EQ(cli::make_competencies("twopoint:0.2,0.8,0.5", 10, rng).size(), 10u);
    const auto star = cli::make_competencies("star:0.75,0.55", 5, rng);
    EXPECT_DOUBLE_EQ(star[0], 0.75);
    const auto constant = cli::make_competencies("const:0.6", 4, rng);
    for (double p : constant.values()) EXPECT_DOUBLE_EQ(p, 0.6);
    EXPECT_EQ(cli::make_competencies("tnormal:0.5,0.1,0.2,0.8", 20, rng).size(), 20u);
    EXPECT_EQ(cli::make_competencies("figure2", 9, rng).size(), 9u);
    EXPECT_THROW(cli::make_competencies("figure2", 10, rng), SpecError);
    EXPECT_THROW(cli::make_competencies("gauss:1", 5, rng), SpecError);
}

TEST(MechanismSpecs, BuildEveryMechanism) {
    for (const char* spec :
         {"direct", "threshold:2", "alg1:log", "alg1:sqrt", "alg1:lin,0.25",
          "alg2:8,2,pop", "alg2:8,2,nbr", "fraction:0.333", "best", "noisy:1,0.1",
          "multi:3,1", "capped:20", "abstain:0.5/threshold:2"}) {
        const auto m = cli::make_mechanism(spec);
        ASSERT_NE(m, nullptr) << spec;
        EXPECT_FALSE(m->name().empty()) << spec;
    }
}

TEST(MechanismSpecs, NestedAbstainWrapsInner) {
    const auto m = cli::make_mechanism("abstain:0.3/alg1:sqrt");
    EXPECT_TRUE(m->may_abstain());
    EXPECT_NE(m->name().find("Algorithm1"), std::string::npos);
}

TEST(MechanismSpecs, ErrorsAreDiagnosed) {
    EXPECT_THROW(cli::make_mechanism("nope"), SpecError);
    EXPECT_THROW(cli::make_mechanism("alg1:cubic"), SpecError);
    EXPECT_THROW(cli::make_mechanism("alg2:8,2,sideways"), SpecError);
    EXPECT_THROW(cli::make_mechanism("alg2:8"), SpecError);
    EXPECT_THROW(cli::make_mechanism("abstain:0.5"), SpecError);
    EXPECT_THROW(cli::make_mechanism("multi:2,1"), ld::support::ContractViolation);
}

TEST(OptionParsing, DefaultsAndOverrides) {
    const auto defaults = cli::parse_options({});
    EXPECT_EQ(defaults.n, 100u);
    EXPECT_EQ(defaults.graph_spec, "complete");
    EXPECT_FALSE(defaults.audit);

    const auto parsed = cli::parse_options(
        {"--graph", "ba:3", "--n", "250", "--alpha", "0.1", "--reps", "50", "--seed",
         "9", "--audit", "--discard-cycles", "--mechanism", "best", "--competencies",
         "const:0.5", "--dot", "/tmp/out.dot"});
    EXPECT_EQ(parsed.graph_spec, "ba:3");
    EXPECT_EQ(parsed.n, 250u);
    EXPECT_DOUBLE_EQ(parsed.alpha, 0.1);
    EXPECT_EQ(parsed.replications, 50u);
    EXPECT_EQ(parsed.seed, 9u);
    EXPECT_TRUE(parsed.audit);
    EXPECT_TRUE(parsed.discard_cycles);
    EXPECT_EQ(parsed.mechanism_spec, "best");
    ASSERT_TRUE(parsed.dot_path.has_value());
    EXPECT_EQ(*parsed.dot_path, "/tmp/out.dot");
}

TEST(OptionParsing, ErrorsAreDiagnosed) {
    EXPECT_THROW(cli::parse_options({"--bogus"}), SpecError);
    EXPECT_THROW(cli::parse_options({"--n"}), SpecError);
    EXPECT_THROW(cli::parse_options({"--n", "many"}), SpecError);
}

TEST(Runner, HelpPrintsUsage) {
    cli::Options options;
    options.help = true;
    std::ostringstream out;
    EXPECT_EQ(cli::run(options, out), 0);
    EXPECT_NE(out.str().find("usage: liquidd"), std::string::npos);
}

TEST(Runner, EndToEndGainReport) {
    cli::Options options;
    options.graph_spec = "complete";
    options.competency_spec = "pc:0.02,0.2";
    options.mechanism_spec = "threshold:1";
    options.n = 60;
    options.replications = 40;
    std::ostringstream out;
    EXPECT_EQ(cli::run(options, out), 0);
    const std::string text = out.str();
    EXPECT_NE(text.find("P^D (exact)"), std::string::npos);
    EXPECT_NE(text.find("gain"), std::string::npos);
    EXPECT_NE(text.find("ApprovalSizeThreshold"), std::string::npos);
}

TEST(Runner, AuditSectionAppearsOnRequest) {
    cli::Options options;
    options.n = 40;
    options.replications = 20;
    options.audit = true;
    std::ostringstream out;
    EXPECT_EQ(cli::run(options, out), 0);
    EXPECT_NE(out.str().find("Lemma 3 audit"), std::string::npos);
    EXPECT_NE(out.str().find("Lemma 5 audit"), std::string::npos);
}

TEST(Runner, NoisyMechanismRequiresDiscardFlag) {
    cli::Options options;
    options.mechanism_spec = "noisy:1,0.2";
    options.n = 30;
    options.replications = 10;
    std::ostringstream out;
    EXPECT_THROW(cli::run(options, out), SpecError);
    options.discard_cycles = true;
    EXPECT_EQ(cli::run(options, out), 0);
}

TEST(OptionParsing, MetricsOutFlag) {
    const auto parsed = cli::parse_options({"--metrics-out", "/tmp/m.json"});
    ASSERT_TRUE(parsed.metrics_out.has_value());
    EXPECT_EQ(*parsed.metrics_out, "/tmp/m.json");
    EXPECT_THROW(cli::parse_options({"--metrics-out"}), SpecError);
}

TEST(OptionParsing, SimdFlag) {
    EXPECT_EQ(cli::parse_options({}).simd, "auto");
    EXPECT_EQ(cli::parse_options({"--simd", "scalar"}).simd, "scalar");
    EXPECT_THROW(cli::parse_options({"--simd"}), SpecError);
}

TEST(Runner, SimdUnknownTierIsAHardError) {
    cli::Options options;
    options.n = 20;
    options.replications = 5;
    options.simd = "sse9";
    std::ostringstream out;
    EXPECT_THROW(cli::run(options, out), SpecError);
}

TEST(Runner, SimdScalarPinRunsAndRestores) {
    // `scalar` is executable on every host, so pinning it must succeed;
    // restore the auto tier afterwards so later tests see the default.
    const ld::support::SimdTier before = ld::prob::kernel_tier();
    cli::Options options;
    options.n = 40;
    options.replications = 20;
    options.simd = "scalar";
    std::ostringstream out;
    EXPECT_EQ(cli::run(options, out), 0);
    EXPECT_EQ(ld::prob::kernel_tier(), ld::support::SimdTier::kScalar);
    ASSERT_TRUE(ld::prob::set_kernel_tier(before));
}

TEST(Runner, MetricsOutWritesParseableJson) {
    const std::string path = ::testing::TempDir() + "/liquidd_metrics_test.json";
    cli::Options options;
    options.n = 40;
    options.replications = 30;
    options.threads = 2;
    options.metrics_out = path;
    std::ostringstream out;
    EXPECT_EQ(cli::run(options, out), 0);
    EXPECT_NE(out.str().find("wrote metrics report"), std::string::npos);

    namespace json = ld::support::json;
    const json::Value doc = json::parse_file(path);
    EXPECT_EQ(doc.at("schema").as_string(), "liquidd.metrics.v1");
    // The run must have been counted: at least this call's replications
    // (the process-wide registry may hold more from earlier calls).
    EXPECT_GE(doc.at("counters").at("engine.replications").as_number(), 30.0);
    EXPECT_GE(doc.at("counters").at("engine.workspace_created").as_number(), 1.0);
    const json::Value& latency = doc.at("histograms").at("estimate.latency");
    EXPECT_GE(latency.at("count").as_number(), 1.0);
    EXPECT_GT(latency.at("total_seconds").as_number(), 0.0);
    EXPECT_TRUE(doc.at("derived").contains("replications_per_sec"));
    EXPECT_GT(doc.at("derived").at("replications_per_sec").as_number(), 0.0);
    EXPECT_TRUE(doc.at("gauges").contains("pool.queue_depth"));
    std::remove(path.c_str());
}

TEST(Runner, DotExportWritesAFile) {
    const std::string path = ::testing::TempDir() + "/liquidd_cli_test.dot";
    cli::Options options;
    options.n = 12;
    options.replications = 5;
    options.dot_path = path;
    std::ostringstream out;
    EXPECT_EQ(cli::run(options, out), 0);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_NE(first_line.find("digraph"), std::string::npos);
    std::remove(path.c_str());
}

}  // namespace
