// [E-T4] Theorem 4 — bounded maximum degree graphs.
//
// Paper claim: with Δ <= t^{ε/(1+ε)} every delegation mechanism with
// Delegate(n) >= t achieves SPG (the bounded degree caps every sink's
// weight at Δ^(path length), keeping Lemma 6 sharp), and with
// Δ <= n^{ε/(2+ε)} plus bounded competency, DNH holds.
//
// Sweep: n with Δ = n^{ε/(2+ε)}.  We run the Example-1 threshold
// mechanism and report gain and the max-weight audit.  The shape: max
// sink weight stays polylog-small, losses vanish, and in the PC regime
// the gain is strongly positive.

#include <cmath>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "ld/dnh/conditions.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/theory/theorems.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "E-T4", "Theorem 4: bounded-degree graphs, gain and max weight vs n",
        {"n", "max_degree_cap", "regime", "delegators", "P^D", "P^M", "gain",
         "mean_max_weight"});
    auto rng = exp.make_rng();

    constexpr double kEps = 1.0;  // Δ <= n^{1/3} for DNH
    constexpr double kAlpha = 0.05;
    election::EvalOptions opts;
    opts.replications = 60;

    const mech::ApprovalSizeThreshold mechanism(1);

    for (std::size_t n : {256u, 1024u, 4096u}) {
        const auto regime = theory::theorem4_regime(n, kEps, n / 4);
        const std::size_t cap = regime.dnh_max_degree;

        // DNH side: bounded competency, mean above 1/2 (direct already
        // good) — delegation must not harm.
        {
            const auto inst =
                experiments::bounded_degree_instance(rng, n, cap, kAlpha, 0.45, 0.75);
            const auto report = election::estimate_gain(mechanism, inst, rng, opts);
            exp.add_row({static_cast<long long>(n), static_cast<long long>(cap),
                         "DNH(p in (.45,.75))", report.mean_delegators, report.pd,
                         report.pm.value, report.gain, report.mean_max_weight});
        }
        // SPG side: PC competencies (mean just below 1/2) — delegation
        // should rescue the outcome.
        {
            auto inst_graph = graph::make_bounded_degree(rng, n, cap, n * cap / 4);
            const auto p = model::pc_competencies(rng, n, 0.01, 0.3);
            const model::Instance inst(std::move(inst_graph), p, kAlpha);
            const auto report = election::estimate_gain(mechanism, inst, rng, opts);
            exp.add_row({static_cast<long long>(n), static_cast<long long>(cap),
                         "SPG(PC=0.01)", report.mean_delegators, report.pd,
                         report.pm.value, report.gain, report.mean_max_weight});
        }
    }
    exp.add_note("paper: Delta <= n^{eps/(2+eps)} caps sink weights => DNH; with PC competencies, SPG");
    exp.add_note("observe: mean max weight grows far slower than n (no dictator forms)");
    exp.finish();
    return 0;
}
