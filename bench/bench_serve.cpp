// Served versus one-shot evaluation throughput (google-benchmark).
//
// The serve layer's pitch is amortisation: a resident server keeps the
// realized instance and the warm thread pool across requests, so a
// repeated eval pays only for its replications.  The one-shot baseline
// below re-parses specs and rebuilds the instance every iteration — the
// work `liquidd run` repeats per invocation even before process spawn,
// linking, and allocator warm-up are counted, so the measured ratio is a
// lower bound on the real CLI-vs-server gap.
//
// Both paths run the same replications with the same seed and
// threads=1; the serve path goes through the full Server::handle_line
// pipeline (parse, admission, routing, response rendering) so protocol
// overhead is charged to the served side.

#include <benchmark/benchmark.h>

#include <string>

#include "ld/cli/specs.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/model/instance.hpp"
#include "ld/serve/server.hpp"
#include "support/json.hpp"

namespace {

namespace json = ld::support::json;

// A dense small-world topology: realizing it costs O(n·k) edge work
// that dwarfs the handful of replications a latency-sensitive caller
// asks for, which is exactly the regime the instance cache targets.
constexpr const char* kGraph = "ws:100,0.2";
constexpr const char* kCompetencies = "pc:0.02,0.25";
constexpr const char* kMechanism = "threshold:2";
constexpr double kAlpha = 0.05;
constexpr std::size_t kSeed = 7;
constexpr std::size_t kReplications = 8;

std::string eval_request(const std::string& fingerprint, std::size_t n) {
    json::Object params;
    if (fingerprint.empty()) {
        params.emplace("graph", json::Value(std::string(kGraph)));
        params.emplace("competencies", json::Value(std::string(kCompetencies)));
        params.emplace("n", json::Value(static_cast<double>(n)));
        params.emplace("alpha", json::Value(kAlpha));
    } else {
        params.emplace("instance", json::Value(fingerprint));
    }
    params.emplace("mechanism", json::Value(std::string(kMechanism)));
    params.emplace("seed", json::Value(static_cast<double>(kSeed)));
    params.emplace("replications", json::Value(static_cast<double>(kReplications)));
    params.emplace("threads", json::Value(1.0));
    json::Object request;
    request.emplace("id", json::Value(1.0));
    request.emplace("method", json::Value(std::string("eval")));
    request.emplace("params", json::Value(std::move(params)));
    return json::dump(json::Value(std::move(request)));
}

/// Resident server, instance realized once, every request a cache hit.
void BM_ServedCachedEval(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    ld::serve::ServerConfig config;  // no listeners: in-process handle_line
    ld::serve::Server server(std::move(config));
    bool was_hit = false;
    const auto entry =
        server.cache().load(kGraph, kCompetencies, n, kAlpha, kSeed, &was_hit);
    const std::string request = eval_request(entry->fingerprint, n);
    for (auto _ : state) {
        std::string response = server.handle_line(request);
        benchmark::DoNotOptimize(response);
    }
    state.SetItemsProcessed(state.iterations());
}

/// Cold evaluation: re-parse the specs and rebuild the instance per
/// request, the way each one-shot CLI invocation must.
void BM_OneShotEval(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ld::rng::Rng rng(kSeed);
        auto graph = ld::cli::make_graph(kGraph, n, rng);
        auto competencies =
            ld::cli::make_competencies(kCompetencies, graph.vertex_count(), rng);
        const ld::model::Instance instance(std::move(graph), std::move(competencies),
                                           kAlpha);
        const auto mechanism = ld::cli::make_mechanism(kMechanism);
        ld::election::EvalOptions eval;
        eval.replications = kReplications;
        eval.threads = 1;
        const auto report =
            ld::election::estimate_gain(*mechanism, instance, rng, eval);
        benchmark::DoNotOptimize(report);
    }
    state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_ServedCachedEval)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OneShotEval)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
