// [X5] Token-weighted voting — the DAO setting from the paper's
// introduction (§1 cites DAO governance and the concentration studies).
//
// Voters start with unequal vote weights (token balances, Zipf-like).
// Direct voting is already plutocratic; delegation *compounds* weight on
// top of wealth.  We compare one-voter-one-vote vs token-weighted voting
// under direct and delegated mechanisms, and report the max sink weight —
// the quantity the paper's Lemma 5 caps.

#include <cmath>

#include "graph/generators.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/direct.hpp"
#include "ld/model/competency_gen.hpp"

namespace {

/// Zipf-ish token balances: holder r gets ceil(scale / (r+1)^s) tokens.
std::vector<std::uint64_t> zipf_tokens(std::size_t n, double s, double scale) {
    std::vector<std::uint64_t> tokens(n);
    for (std::size_t r = 0; r < n; ++r) {
        tokens[r] = static_cast<std::uint64_t>(
            std::ceil(scale / std::pow(static_cast<double>(r + 1), s)));
    }
    return tokens;
}

}  // namespace

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "X5", "Token-weighted liquid democracy (DAO setting): equal vs Zipf balances",
        {"n", "weights", "mechanism", "P^D", "P^M", "gain", "mean_max_weight"});
    auto rng = exp.make_rng();

    constexpr double kAlpha = 0.05;
    election::EvalOptions base;
    base.replications = 80;

    const mech::DirectVoting direct;
    const mech::ApprovalSizeThreshold threshold(2);

    for (std::size_t n : {201u, 1001u}) {
        const model::Instance inst(graph::make_complete(n),
                                   model::pc_competencies(rng, n, 0.02, 0.25), kAlpha);
        const auto tokens = zipf_tokens(n, 1.0, 50.0);

        for (const auto& [label, weights] :
             {std::pair<std::string, std::vector<std::uint64_t>>{"equal", {}},
              std::pair<std::string, std::vector<std::uint64_t>>{"zipf(s=1)", tokens}}) {
            for (const mech::Mechanism* m :
                 std::initializer_list<const mech::Mechanism*>{&direct, &threshold}) {
                auto opts = base;
                opts.initial_weights = weights;
                const auto report = election::estimate_gain(*m, inst, rng, opts);
                exp.add_row({static_cast<long long>(n), label, m->name(), report.pd,
                             report.pm.value, report.gain, report.mean_max_weight});
            }
        }
    }
    exp.add_note("wealth concentration alone already moves P^D; delegation compounds it");
    exp.add_note("paper link: Lemma 5's max-weight condition is the lever a DAO can enforce");
    exp.finish();
    return 0;
}
