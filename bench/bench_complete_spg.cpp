// [E-T2] Theorem 2 + Lemma 7 — Algorithm 1 on complete graphs.
//
// Paper claim: on K_n with PC = α/k competencies (mean within α/k below
// 1/2) and Delegate(n) >= n/k, Algorithm 1 achieves *strong positive
// gain*: delegation lifts the expected number of correct votes by at least
// α per delegation (Lemma 7), pushing the outcome across the majority line
// while direct voting stays below it.  DNH holds on K_n regardless.
//
// Sweep: n × threshold function j(n) ∈ {log, sqrt, n/4}.  Cells are
// independent (one seed per row via make_row_rng), so the sweep fans out
// on the shared thread pool and fills the table in row order afterwards.

#include <sstream>

#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/complete_graph_threshold.hpp"
#include "ld/recycle/bounds.hpp"
#include "ld/theory/theorems.hpp"
#include "stats/running_stats.hpp"

namespace {

struct RowResult {
    std::size_t n = 0;
    std::string label;
    double delegators = 0.0;
    double pd = 0.0;
    double pm = 0.0;
    double gain = 0.0;
    double votes_measured = 0.0;
    double lemma7 = 0.0;
};

}  // namespace

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "E-T2", "Theorem 2: Algorithm 1 on K_n (PC = alpha/k), gain vs n and j(n)",
        {"n", "j(n)", "delegators", "P^D", "P^M", "gain", "E[votes]_measured",
         "lemma7_lower_bound"});

    constexpr double kAlpha = 0.05;
    constexpr double kK = 5.0;  // PC = alpha/k = 0.01
    const double a = kAlpha / kK;

    election::EvalOptions opts;
    opts.replications = 60;

    std::vector<std::pair<std::string, mech::CompleteGraphThreshold>> mechanisms;
    mechanisms.emplace_back("log", mech::CompleteGraphThreshold::with_log_threshold());
    mechanisms.emplace_back("sqrt", mech::CompleteGraphThreshold::with_sqrt_threshold());
    mechanisms.emplace_back("n/4",
                            mech::CompleteGraphThreshold::with_linear_threshold(0.25));

    const std::vector<std::size_t> sizes = {101, 301, 1001, 3001};
    std::vector<RowResult> rows(sizes.size() * mechanisms.size());

    experiments::parallel_rows(rows.size(), [&](std::size_t row) {
        const std::size_t n = sizes[row / mechanisms.size()];
        const auto& [label, mechanism] = mechanisms[row % mechanisms.size()];
        auto rng = exp.make_row_rng(row);

        const auto inst = experiments::complete_pc_instance(rng, n, kAlpha, a, 0.3);
        const auto report = election::estimate_gain(mechanism, inst, rng, opts);

        // Measured expected correct votes under the mechanism vs the
        // Lemma 7 lower bound with the measured k (non-delegators).
        stats::RunningStats votes;
        for (int rep = 0; rep < 20; ++rep) {
            const auto out = delegation::realize(mechanism, inst, rng);
            votes.add(election::conditional_vote_mean(out, inst.competencies()));
        }
        const auto k_measured =
            static_cast<std::size_t>(static_cast<double>(n) - report.mean_delegators);
        const std::size_t j = std::max<std::size_t>(1, mechanism.threshold_for(n - 1));
        const double lemma7 = recycle::lemma7_lower_bound(
            election::exact_direct_mean_votes(inst), n, k_measured, kAlpha, 0.01, j);

        rows[row] = {n,           label,       report.mean_delegators, report.pd,
                     report.pm.value, report.gain, votes.mean(),       lemma7};
    });

    for (const auto& r : rows) {
        exp.add_row({static_cast<long long>(r.n), r.label, r.delegators, r.pd, r.pm,
                     r.gain, r.votes_measured, r.lemma7});
    }
    std::ostringstream note;
    note << "PC regime: mean competency = 1/2 - " << a
         << "; direct voting loses, Algorithm 1 recovers the outcome";
    exp.add_note(note.str());
    exp.add_note("paper: SPG (uniform positive gain) once Delegate(n) >= n/k; DNH on all of K_n");
    exp.finish();
    return 0;
}
