// [X4] Robustness extension — noisy competency comparisons.
//
// The paper's model assumes voters know exactly which neighbours are
// approved (p_j >= p_i + α).  In practice this is an estimate (§6).  This
// bench flips each pairwise approval with probability η and charts the
// degradation:
//   * small η: a few votes delegate downward or into cycles; gain dips
//     slightly (cycle losses are discarded, Lemma-5-style variance grows);
//   * large η: even the most competent voters perceive approvals, the
//     guaranteed-sink property dies, and the mechanism collapses — the
//     delegated system can be strictly worse than direct voting.
//
// This quantifies how much the α-margin approval oracle is doing in the
// paper's positive results.

#include "graph/generators.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/mech/noisy_threshold.hpp"
#include "ld/model/competency_gen.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "X4", "Noisy approvals: gain vs comparison noise eta (K_n, threshold j)",
        {"n", "j", "eta", "delegators", "cycle_losses", "cast_votes", "P^D", "P^M",
         "gain"});
    auto rng = exp.make_rng();

    constexpr double kAlpha = 0.05;
    election::EvalOptions opts;
    opts.replications = 80;
    opts.cycle_policy = delegation::CyclePolicy::Discard;

    for (std::size_t n : {101u, 401u}) {
        // Threshold scaled with n keeps the zero-noise mechanism in its
        // healthy regime (a constant fraction delegates, top voters vote).
        const std::size_t j = std::max<std::size_t>(2, n / 20);
        for (double eta : {0.0, 0.01, 0.05, 0.1, 0.2, 0.35}) {
            const model::Instance inst(graph::make_complete(n),
                                       model::pc_competencies(rng, n, 0.02, 0.25),
                                       kAlpha);
            const mech::NoisyThreshold mechanism(j, eta);
            const auto report = election::estimate_gain(mechanism, inst, rng, opts);

            double cycle_losses = 0.0, cast = 0.0;
            constexpr int kShapeReps = 20;
            for (int rep = 0; rep < kShapeReps; ++rep) {
                const auto out = delegation::realize_weighted(
                    mechanism, inst, rng, {}, delegation::CyclePolicy::Discard);
                cycle_losses += static_cast<double>(out.cycle_losses());
                cast += static_cast<double>(out.stats().cast_weight);
            }
            exp.add_row({static_cast<long long>(n), static_cast<long long>(j), eta,
                         report.mean_delegators, cycle_losses / kShapeReps,
                         cast / kShapeReps, report.pd, report.pm.value, report.gain});
        }
    }
    exp.add_note("eta = 0 reproduces the paper's guarantees; small eta degrades gracefully");
    exp.add_note("large eta kills the guaranteed-sink property: votes drain into cycles");
    exp.finish();
    return 0;
}
