// [E-VAR] §3.2 — "the manipulation of variance", the paper's title claim.
//
// Delegation changes the *law* of the correct-vote count S in two opposing
// ways: it raises E[S] (votes move to more competent voters) but it also
// raises Var[S | delegation graph] (weights square).  DNH holds exactly
// when the variance stays "sufficient but not pathological": the star's
// dictator pushes Var to n²·p(1−p) — collapsing the decision quality to a
// coin flip of the dictator — while threshold mechanisms on symmetric
// graphs keep Var near Θ(n·w̄).
//
// We print the full variance decomposition across topologies.

#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "E-VAR",
        "Variance manipulation: Var[S] under delegation vs direct voting",
        {"topology", "n", "mechanism", "Var_direct", "E[Var|G]", "Var[E|G]",
         "Var_total", "gain"},
        2);
    auto rng = exp.make_rng();

    constexpr std::size_t kN = 601;
    constexpr double kAlpha = 0.05;
    election::EvalOptions opts;
    opts.replications = 50;

    const mech::ApprovalSizeThreshold threshold(1);
    const mech::BestNeighbour best;

    struct Row {
        std::string topology;
        model::Instance instance;
        const mech::Mechanism* mechanism;
        std::string mech_label;
    };

    std::vector<Row> rows;
    rows.push_back({"star", experiments::star_instance(kN, 0.75, 0.55, kAlpha), &best,
                    "BestNeighbour"});
    rows.push_back({"two_tier(5 hubs)",
                    experiments::two_tier_instance(rng, kN, 5, 0.75, 0.55, kAlpha),
                    &best, "BestNeighbour"});
    rows.push_back({"complete", experiments::complete_pc_instance(rng, kN, kAlpha, 0.01, 0.3),
                    &threshold, "Threshold(1)"});
    rows.push_back({"d_regular(16)",
                    experiments::d_regular_instance(rng, kN + 1, 16, kAlpha, 0.01, 0.3),
                    &threshold, "Threshold(1)"});
    rows.push_back({"barabasi(m=3)",
                    experiments::barabasi_instance(rng, kN, 3, kAlpha, 0.35, 0.75),
                    &threshold, "Threshold(1)"});

    for (const auto& row : rows) {
        const auto var =
            election::estimate_variance(*row.mechanism, row.instance, rng, opts);
        const auto gain = election::estimate_gain(*row.mechanism, row.instance, rng, opts);
        exp.add_row({row.topology, static_cast<long long>(row.instance.voter_count()),
                     row.mech_label, var.direct_variance, var.mean_conditional_variance,
                     var.variance_of_conditional_mean, var.total_variance, gain.gain});
    }
    exp.add_note("star/two-tier: conditional variance explodes to Theta(n^2) — the dictator coin flip");
    exp.add_note("complete/d-regular: variance grows mildly; the gain stays positive (DNH + SPG)");
    exp.finish();
    return 0;
}
