// [E-L2] Lemmas 1–2 — recycle-sampling concentration.
//
// Paper claim (Lemma 2): for a (j, c, n)-recycle-sampling graph,
//   P[X_n < μ(X_n) − c·ε·n/j^{1/3}] <= e^{−Ω(j^{1/3})}.
//
// The closed-form bound is asymptotic and very loose at simulation sizes
// (its union-bound constant caps it at 1), so this bench reports both
// sides of the story:
//   * the measured tail at the Lemma-2 radius — always ≈ 0, consistent
//     with the bound;
//   * the *realized* fluctuation scale (stddev of X_n and the 1%-quantile
//     deficit μ − q01), which exhibits exactly the shape the lemma
//     formalises: deviations grow with the partition count c (more
//     dependency) and the protection radius shrinks as the fresh block j
//     grows.

#include "ld/experiments/harness.hpp"
#include "ld/recycle/bounds.hpp"
#include "ld/recycle/recycle_graph.hpp"
#include "ld/recycle/sampler.hpp"
#include "stats/ecdf.hpp"
#include "stats/running_stats.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "E-L2", "Lemma 2: recycle-sampling concentration (measured vs bound)",
        {"n", "j", "c_partitions", "mu(X_n)", "stddev_X", "q01_deficit",
         "lemma2_radius(eps=.35)", "tail_at_radius", "lemma2_bound"},
        3);
    auto rng = exp.make_rng();

    constexpr double kEps = 0.35;
    constexpr double kZ = 0.5;        // fresh-draw probability past the block
    constexpr double kPFresh = 0.55;  // Bernoulli parameter
    constexpr std::size_t kReps = 4000;

    for (std::size_t n : {400u, 1600u}) {
        for (std::size_t j : {n / 50, n / 10, n / 4}) {
            for (std::size_t bands : {2u, 4u, 8u}) {
                const auto g = recycle::RecycleGraph::synthetic(n, j, kZ, kPFresh, bands);
                const std::size_t c = g.partition_complexity();
                const double mu = g.total_expectation();
                const double radius = recycle::lemma2_deviation(n, j, kEps, c);

                stats::RunningStats totals;
                std::vector<double> sample;
                sample.reserve(kReps);
                std::size_t below = 0;
                for (std::size_t rep = 0; rep < kReps; ++rep) {
                    const auto r = recycle::sample(g, rng);
                    const auto x = static_cast<double>(r.total);
                    totals.add(x);
                    sample.push_back(x);
                    if (x < mu - radius) ++below;
                }
                const stats::Ecdf ecdf(sample);
                const double q01_deficit = mu - ecdf.quantile(0.01);
                const double bound =
                    recycle::lemma2_failure_bound(j, n, kEps, kPFresh, c);
                exp.add_row({static_cast<long long>(n), static_cast<long long>(j),
                             static_cast<long long>(c), mu, totals.stddev(),
                             q01_deficit, radius,
                             static_cast<double>(below) / static_cast<double>(kReps),
                             bound});
            }
        }
    }
    exp.add_note("paper: tail <= e^{-Omega(j^{1/3})} at radius c*eps*n/j^{1/3}; measured tail is 0 at that radius");
    exp.add_note("shape check: realized deviations (stddev, q01 deficit) GROW with c and are dwarfed by the radius");
    exp.finish();
    return 0;
}
