// [SCALE] Large-n replication of the headline results using the Lemma-4
// normal-approximation tally and the multi-threaded evaluator.
//
// The asymptotic statements (loss → 1/4 on the star, gain → 1 on K_n in
// the PC regime) are only *suggested* at the n ≤ 10³ scales of the exact
// benches; here we push to n = 10⁵ voters and watch the limits lock in.
// Runtime stays in seconds because the inner tally is O(#sinks) and
// replications fan out across threads.

#include <thread>

#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/theory/theorems.hpp"
#include "support/stopwatch.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "SCALE", "Large-n limits via approximate tally + threads",
        {"workload", "n", "P^D", "P^M", "gain", "seconds"});
    auto rng = exp.make_rng();

    const std::size_t threads = std::max(2u, std::thread::hardware_concurrency() / 2);
    election::EvalOptions opts;
    opts.replications = 24;
    opts.approximate_tally = true;
    opts.threads = threads;

    // Star: loss → 1/4 (delegation graph deterministic; pd via Lemma 4).
    {
        const mech::BestNeighbour best;
        for (std::size_t n : {10001u, 100001u}) {
            support::Stopwatch timer;
            const auto inst = experiments::star_instance(n, 0.75, 0.55, 0.05);
            auto star_opts = opts;
            star_opts.replications = 4;
            const auto report = election::estimate_gain(best, inst, rng, star_opts);
            exp.add_row({std::string("star (Figure 1)"), static_cast<long long>(n),
                         report.pd, report.pm.value, report.gain,
                         timer.elapsed_seconds()});
        }
    }
    // K_n PC regime: gain → 1.
    // K_n is materialized (Θ(n²) edges) and approval sets are Θ(n) per
    // voter, so cap at 10k voters; the d-regular row below carries the
    // large-n torch with Θ(n·d) everything.
    {
        const mech::ApprovalSizeThreshold threshold(1);
        for (std::size_t n : {3001u, 10001u}) {
            support::Stopwatch timer;
            const auto inst = experiments::complete_pc_instance(rng, n, 0.05, 0.01, 0.3);
            const auto report = election::estimate_gain(threshold, inst, rng, opts);
            exp.add_row({std::string("K_n PC (Theorem 2)"), static_cast<long long>(n),
                         report.pd, report.pm.value, report.gain,
                         timer.elapsed_seconds()});
        }
    }
    // Sparse d-regular at 100k voters: realization is Θ(n·d).
    {
        const mech::ApprovalSizeThreshold threshold(1);
        support::Stopwatch timer;
        const std::size_t n = 100000;
        const auto inst = experiments::d_regular_instance(rng, n, 16, 0.05, 0.01, 0.3);
        const auto report = election::estimate_gain(threshold, inst, rng, opts);
        exp.add_row({std::string("Rand(n,16) PC (Theorem 3)"),
                     static_cast<long long>(n), report.pd, report.pm.value, report.gain,
                     timer.elapsed_seconds()});
    }
    exp.add_note("star loss locks onto -0.2500; PC-regime gain approaches 1 as P^D -> 0");
    exp.add_note("inner tally: Lemma-4 normal approximation (O(#sinks) per realization)");
    exp.finish();
    return 0;
}
