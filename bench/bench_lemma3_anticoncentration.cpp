// [E-L3] Lemma 3 — bounded competencies + few delegations ⇒ do no harm.
//
// Paper claim: with p ∈ (β, 1−β), any mechanism delegating fewer than
// n^{1/2−ε} votes satisfies DNH: the direct-voting outcome has Θ(√n)
// standard deviation, so the probability that the delegated votes flip the
// decision is at most erf(2·#delegations / (σ√2)) → 0.
//
// We use a capped-delegation mechanism (exactly the budget may delegate) on
// adversarial bounded-competency instances and sweep n for budgets at
// n^{1/2−ε} (within Lemma 3) and at n·frac (outside it).  The shape: the
// within-budget loss vanishes as n grows; the over-budget loss does not.

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/mech/mechanism.hpp"
#include "ld/model/competency_gen.hpp"
#include "prob/bounds.hpp"

namespace {

using namespace ld;

/// Adversarial capped delegation: the `budget` *least* competent voters
/// delegate to the single most competent voter.  This is the worst case in
/// the Lemma 3 proof (all delegated votes correlated on one sink) while
/// still respecting approval.
class CappedWorstCase final : public mech::Mechanism {
public:
    explicit CappedWorstCase(std::size_t budget) : budget_(budget) {}

    std::string name() const override {
        return "CappedWorstCase(" + std::to_string(budget_) + ")";
    }

    mech::Action act(const model::Instance& inst, graph::Vertex v,
                     rng::Rng&) const override {
        const auto order = inst.competencies().ascending_order();
        // rank of v among voters by competency
        std::size_t rank = 0;
        for (; rank < order.size(); ++rank) {
            if (order[rank] == v) break;
        }
        if (rank >= budget_) return mech::Action::vote();
        const auto top = static_cast<graph::Vertex>(order.back());
        if (inst.competency(v) + inst.alpha() <= inst.competency(top) && top != v) {
            return mech::Action::delegate_to(top);
        }
        return mech::Action::vote();
    }

private:
    std::size_t budget_;
};

}  // namespace

int main() {
    experiments::Experiment exp(
        "E-L3",
        "Lemma 3: loss vs n when delegations stay within / exceed n^{1/2-eps}",
        {"n", "budget_rule", "delegations", "P^D", "P^M", "gain", "erf_flip_bound"},
        5);
    auto rng = exp.make_rng();

    constexpr double kEps = 0.1;
    constexpr double kBeta = 0.3;
    election::EvalOptions opts;
    opts.replications = 12;  // mechanism is deterministic; inner step exact

    for (std::size_t n : {101u, 401u, 1601u, 6401u}) {
        // Bounded competencies hugging 1/2 from above: the delegation-
        // vulnerable regime (small majority margin).
        std::vector<double> probs(n);
        for (std::size_t i = 0; i < n; ++i) {
            probs[i] = 0.5 + 0.02 + 0.1 * static_cast<double>(i) / static_cast<double>(n);
        }
        const model::Instance inst(graph::make_complete(n),
                                   model::CompetencyVector(probs), 0.05);

        const std::size_t within = prob::lemma3_delegation_budget(n, kEps);
        const auto over =
            static_cast<std::size_t>(0.4 * static_cast<double>(n));
        for (const auto& [rule, budget] :
             {std::pair<std::string, std::size_t>{"n^{1/2-eps}", within},
              std::pair<std::string, std::size_t>{"0.4n", over}}) {
            const CappedWorstCase mechanism(budget);
            const auto report = election::estimate_gain(mechanism, inst, rng, opts);
            const double flip = prob::lemma3_flip_probability(
                n, kBeta, 2.0 * static_cast<double>(budget));
            exp.add_row({static_cast<long long>(n), rule,
                         static_cast<long long>(budget), report.pd, report.pm.value,
                         report.gain, flip});
        }
    }
    exp.add_note("paper: within-budget loss -> 0 as n grows; the erf bound dominates it");
    exp.add_note("over-budget (0.4n) delegation keeps a persistent loss: DNH fails");
    exp.finish();
    return 0;
}
