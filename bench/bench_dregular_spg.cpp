// [E-T3] Theorem 3 + Lemma 8 — Algorithm 2 on random d-regular graphs.
//
// Paper claim: Algorithm 2 (sample d neighbours, delegate to a random
// approved one if at least j(d) are approved) achieves SPG on Rand(n, d)
// with PC = α/k competencies, and DNH on Rand(n, d) in general — the
// d-regular situation mirrors the complete graph with threshold j(d)·n/d,
// with delegation happening in expectation instead of surely.
//
// Sweep: n × d.  The shape: gain → 1 in the PC regime, growing with d
// (more samples → more reliable delegation), matching Theorem 3.

#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/d_out_sampling.hpp"
#include "ld/theory/theorems.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "E-T3", "Theorem 3: Algorithm 2 on Rand(n,d) (PC = alpha/k), gain vs n and d",
        {"n", "d", "j(d)", "delegators", "P^D", "P^M", "gain"});
    auto rng = exp.make_rng();

    constexpr double kAlpha = 0.05;
    constexpr double kK = 5.0;
    const double a = kAlpha / kK;

    election::EvalOptions opts;
    opts.replications = 60;

    for (std::size_t n : {200u, 600u, 2000u}) {
        for (std::size_t d : {8u, 16u, 64u}) {
            const auto regime = theory::theorem3_regime(n, d, kAlpha, kK, 0.125);
            const auto inst = experiments::d_regular_instance(rng, n, d, kAlpha, a, 0.3);
            const mech::DOutSampling mechanism(d, regime.threshold,
                                               mech::SampleSource::Neighbourhood);
            const auto report = election::estimate_gain(mechanism, inst, rng, opts);
            exp.add_row({static_cast<long long>(n), static_cast<long long>(d),
                         static_cast<long long>(regime.threshold),
                         report.mean_delegators, report.pd, report.pm.value,
                         report.gain});
        }
    }
    exp.add_note("paper: delegation happens in expectation; SPG once Delegate(n) >= n/k");
    exp.add_note("gain grows with d: larger samples make the approval check more reliable");
    exp.finish();
    return 0;
}
