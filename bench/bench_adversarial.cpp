// [X6] Adversarial instance search — attacking the ∀-quantified claims.
//
// SPG (Definition 5) claims gain >= γ for ALL instances of a class; the
// Kahng et al. impossibility says on general graphs there ALWAYS exist
// harmful instances.  This bench runs the hill-climbing adversary of
// ld/experiments/adversarial.hpp against both sides:
//
//  * on the star (general graphs), the adversary *finds* the Figure 1
//    counterexample shape from scratch — competent centre, leaves
//    clustered just above 1/2;
//  * on K_n restricted to the PC class (Theorem 2's hypotheses), the
//    adversary cannot push the gain below ≈ 0 — the theorem survives;
//  * on K_n *without* the PC restriction, the adversary can only
//    neutralise delegation (empty approval sets), not harm it — the
//    DNH half of Theorem 2.

#include <algorithm>

#include "graph/generators.hpp"
#include "ld/experiments/adversarial.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/complete_graph_threshold.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "X6", "Adversarial search: worst instance found per (graph class, mechanism)",
        {"setting", "n", "evaluations", "worst_gain", "P^D", "P^M", "p_range_found"});
    auto rng = exp.make_rng();

    const std::size_t n = 151;
    const mech::BestNeighbour best;
    const mech::ApprovalSizeThreshold threshold(1);

    experiments::AdversaryOptions opts;
    opts.restarts = 12;
    opts.steps = 400;
    opts.batch = 12;
    opts.step_size = 0.2;
    opts.eval.replications = 8;

    const auto describe_range = [](const model::CompetencyVector& p) {
        const auto values = p.values();
        const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
        return "[" + std::to_string(*lo).substr(0, 4) + "," +
               std::to_string(*hi).substr(0, 4) + "]";
    };

    {
        const auto result = experiments::find_worst_competencies(
            best, graph::make_star(n), 0.05, rng, opts);
        exp.add_row({std::string("star + BestNeighbour (unrestricted)"),
                     static_cast<long long>(n),
                     static_cast<long long>(result.evaluations), result.worst_gain,
                     result.pd, result.pm, describe_range(result.worst_competencies)});
    }
    {
        auto constrained = opts;
        constrained.constraint = [](const model::CompetencyVector& p) {
            return p.satisfies_pc(0.05);
        };
        const auto result = experiments::find_worst_competencies(
            threshold, graph::make_complete(n), 0.05, rng, constrained);
        exp.add_row({std::string("K_n + Threshold(1), PC class (Theorem 2 SPG)"),
                     static_cast<long long>(n),
                     static_cast<long long>(result.evaluations), result.worst_gain,
                     result.pd, result.pm, describe_range(result.worst_competencies)});
    }
    {
        const auto result = experiments::find_worst_competencies(
            threshold, graph::make_complete(n), 0.05, rng, opts);
        exp.add_row({std::string("K_n + Threshold(1), unrestricted"),
                     static_cast<long long>(n),
                     static_cast<long long>(result.evaluations), result.worst_gain,
                     result.pd, result.pm, describe_range(result.worst_competencies)});
    }
    {
        // Theorem 2's actual mechanism: j(n) = n/3.  The lone-peak attack
        // that breaks Threshold(1) gives every voter an approval set of
        // size 1 < n/3 — nobody delegates, no harm.
        const auto alg1 = mech::CompleteGraphThreshold::with_linear_threshold(1.0 / 3.0);
        const auto result = experiments::find_worst_competencies(
            alg1, graph::make_complete(n), 0.05, rng, opts);
        exp.add_row({std::string("K_n + Algorithm1(j=n/3), unrestricted (Thm 2 DNH)"),
                     static_cast<long long>(n),
                     static_cast<long long>(result.evaluations), result.worst_gain,
                     result.pd, result.pm, describe_range(result.worst_competencies)});
    }
    exp.add_note("star: the adversary rediscovers Figure 1 (loss well below 0)");
    exp.add_note("K_n + Threshold(1): a plateau-plus-lone-peak profile builds a dictator INSIDE K_n —");
    exp.add_note("  completeness alone is not enough; Theorem 2's DNH needs the growing threshold j(n),");
    exp.add_note("  which defuses exactly that attack (fourth row: no meaningful loss found)");
    exp.finish();
    return 0;
}
