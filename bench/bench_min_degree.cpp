// [E-T5] Theorem 5 — bounded minimum degree graphs with the 1/3-approval
// mechanism.
//
// Paper claim: on graphs with δ >= n^c, the mechanism "delegate iff at
// least 1/3 of your neighbours are approved" achieves SPG (with
// Delegate(n) >= h >= √n) and DNH with bounded competencies.  The large
// minimum degree means every delegator spreads its vote over Ω(n^c)
// candidates, so no sink concentrates weight.
//
// Sweep: n × c.  The shape mirrors E-T4: small max weights, vanishing
// losses in the DNH regime, strong gain in the PC regime.

#include "graph/generators.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/fraction_approved.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/theory/theorems.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "E-T5", "Theorem 5: min-degree >= n^c graphs, 1/3-approval mechanism",
        {"n", "c", "min_degree", "regime", "delegators", "P^D", "P^M", "gain",
         "mean_max_weight"});
    auto rng = exp.make_rng();

    constexpr double kAlpha = 0.05;
    election::EvalOptions opts;
    opts.replications = 60;

    const mech::FractionApproved mechanism(1.0 / 3.0);

    for (std::size_t n : {256u, 1024u, 4096u}) {
        for (double c : {0.4, 0.6}) {
            const auto regime = theory::theorem5_regime(n, c);

            {
                const auto inst = experiments::min_degree_instance(
                    rng, n, regime.min_degree, kAlpha, 0.45, 0.75);
                const auto report = election::estimate_gain(mechanism, inst, rng, opts);
                exp.add_row({static_cast<long long>(n), c,
                             static_cast<long long>(regime.min_degree),
                             "DNH(p in (.45,.75))", report.mean_delegators, report.pd,
                             report.pm.value, report.gain, report.mean_max_weight});
            }
            {
                auto inst_graph =
                    graph::make_min_degree_at_least(rng, n, regime.min_degree);
                const auto p = model::pc_competencies(rng, n, 0.01, 0.3);
                const model::Instance inst(std::move(inst_graph), p, kAlpha);
                const auto report = election::estimate_gain(mechanism, inst, rng, opts);
                exp.add_row({static_cast<long long>(n), c,
                             static_cast<long long>(regime.min_degree), "SPG(PC=0.01)",
                             report.mean_delegators, report.pd, report.pm.value,
                             report.gain, report.mean_max_weight});
            }
        }
    }
    exp.add_note("paper: delta >= n^c spreads delegation over many candidates => no weight concentration");
    exp.add_note("delegate restriction h >= sqrt(n) holds whenever the PC profile triggers the 1/3 rule");
    exp.finish();
    return 0;
}
