// [F2] Figure 2 — the paper's 9-voter worked example.
//
// Instance: voters v1..v9 with competencies {0.8, 0.6, 0.5, 0.4, 0.3,
// 0.3, 0.2, 0.2, 0.1}, α = 0.01, Example-1 mechanism with threshold j = 0
// (every voter with a non-empty approval set delegates).  We realize the
// delegation graph many times and report, per voter, the delegation
// frequency plus an example realization as DOT (the figure's right-hand
// graph).

#include <iostream>
#include <sstream>

#include "graph/io.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "F2", "Figure 2: 9-voter worked example (Example-1 mechanism, alpha=0.01)",
        {"voter", "p_i", "approval_set_size", "delegates", "mean_weight_as_sink"});
    auto rng = exp.make_rng();

    const auto inst = experiments::figure2_instance();
    const mech::ApprovalSizeThreshold mechanism(1);

    constexpr int kReps = 4000;
    std::vector<double> weight_acc(9, 0.0);
    std::vector<int> delegated(9, 0);
    for (int rep = 0; rep < kReps; ++rep) {
        const auto out = delegation::realize(mechanism, inst, rng);
        const auto& w = out.weights();
        for (graph::Vertex v = 0; v < 9; ++v) {
            weight_acc[v] += static_cast<double>(w[v]);
            if (out.action(v).kind == mech::ActionKind::Delegate) ++delegated[v];
        }
    }
    const auto counts = inst.approved_neighbour_counts();
    for (graph::Vertex v = 0; v < 9; ++v) {
        exp.add_row({std::string("v") + std::to_string(v + 1), inst.competency(v),
                     static_cast<long long>(counts[v]),
                     static_cast<double>(delegated[v]) / kReps,
                     weight_acc[v] / kReps});
    }

    const auto report = election::estimate_gain(mechanism, inst, rng, {});
    std::ostringstream note;
    note << "P^D = " << report.pd << ", P^M = " << report.pm.value
         << ", gain = " << report.gain;
    exp.add_note(note.str());
    exp.add_note("v1 (p=0.8) never delegates; v2..v9 always delegate upward, as in the figure");
    exp.finish();

    // One example realization, rendered as the figure's delegation digraph.
    const auto out = delegation::realize(mechanism, inst, rng);
    std::vector<std::string> labels;
    for (graph::Vertex v = 0; v < 9; ++v) {
        labels.push_back("v" + std::to_string(v + 1) + " p=" +
                         std::to_string(inst.competency(v)).substr(0, 4));
    }
    std::cout << "\nexample delegation graph (DOT):\n";
    graph::write_dot(std::cout, out.as_digraph(), labels, "Figure2");
    return 0;
}
