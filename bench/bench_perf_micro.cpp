// [PERF] google-benchmark microbenchmarks of the library hot paths, plus
// the two estimator ablations called out in DESIGN.md §6:
//
//  * exact-inner-step (Rao–Blackwell) vs naive vote-sampling estimation,
//  * path-compressed sink resolution throughput,
//  * generator throughput (configuration-model d-regular vs Erdős–Rényi),
//  * Poisson-binomial / weighted-sum DP cost.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "gen/factory.hpp"
#include "graph/generators.hpp"
#include "ld/delegation/incremental.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/game/delegation_game.hpp"
#include "ld/model/competency_gen.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/election/tally_delta.hpp"
#include "ld/election/workspace.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "prob/batch_tally.hpp"
#include "prob/convolve.hpp"
#include "prob/poisson_binomial.hpp"
#include "prob/weighted_bernoulli_sum.hpp"
#include "support/build_info.hpp"
#include "support/cpu_features.hpp"

namespace {

using namespace ld;

void BM_GenerateComplete(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph::make_complete(n));
    }
    state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_GenerateComplete)->Arg(100)->Arg(400)->Complexity();

void BM_GenerateDRegular(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph::make_random_d_regular(rng, n, 16));
    }
}
BENCHMARK(BM_GenerateDRegular)->Arg(1000)->Arg(4000);

void BM_GenerateErdosRenyi(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph::make_erdos_renyi_gnp(rng, n, 16.0 / static_cast<double>(n)));
    }
}
BENCHMARK(BM_GenerateErdosRenyi)->Arg(1000)->Arg(10000);

void BM_GenerateBarabasi(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(graph::make_barabasi_albert(rng, n, 8));
    }
}
BENCHMARK(BM_GenerateBarabasi)->Arg(1000)->Arg(10000);

// Streaming facade throughput (docs/GENERATORS.md): full pipeline —
// config -> streaming cells -> chunked CSR -> Graph.  Items/s counts
// realized (deduplicated) edges, so families are comparable despite
// with-replacement draws.
template <gen::Family F>
void BM_GenerateStreaming(benchmark::State& state) {
    gen::GeneratorConfig config;
    config.family = F;
    config.n = static_cast<std::size_t>(state.range(0));
    config.seed = 17;
    config.threads = 1;
    if constexpr (F == gen::Family::Gnp) config.p = 16.0 / static_cast<double>(config.n);
    if constexpr (F == gen::Family::BarabasiAlbert) config.degree = 8;
    if constexpr (F == gen::Family::Rmat) config.edges = config.n * 8;
    config.validate();
    std::size_t edges = 0;
    for (auto _ : state) {
        const graph::Graph g = gen::generate_graph(config);
        edges = g.edge_count();
        benchmark::DoNotOptimize(edges);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(edges) * state.iterations());
}
BENCHMARK(BM_GenerateStreaming<gen::Family::Gnp>)
    ->Name("BM_GenerateStreamingGnp")->Arg(10000)->Arg(100000);
BENCHMARK(BM_GenerateStreaming<gen::Family::BarabasiAlbert>)
    ->Name("BM_GenerateStreamingBa")->Arg(10000)->Arg(100000);
BENCHMARK(BM_GenerateStreaming<gen::Family::ChungLu>)
    ->Name("BM_GenerateStreamingChungLu")->Arg(10000)->Arg(100000);
BENCHMARK(BM_GenerateStreaming<gen::Family::Hyperbolic>)
    ->Name("BM_GenerateStreamingHyperbolic")->Arg(10000)->Arg(100000);
BENCHMARK(BM_GenerateStreaming<gen::Family::Rmat>)
    ->Name("BM_GenerateStreamingRmat")->Arg(10000)->Arg(100000);

void BM_RealizeDelegation(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(4);
    const auto inst = experiments::d_regular_instance(rng, n, 16, 0.05, 0.01, 0.3);
    const mech::ApprovalSizeThreshold m(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(delegation::realize(m, inst, rng));
    }
}
BENCHMARK(BM_RealizeDelegation)->Arg(1000)->Arg(10000);

// Ablation: path-compressed sink resolution (library) vs naive per-voter
// pointer chasing.  The naive variant re-walks each voter's chain, i.e.
// O(n · path) instead of O(n α(n)).
void BM_SinkResolutionNaive(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    // A single long chain: voter i delegates to i+1, last voter votes —
    // the worst case for naive chasing.
    std::vector<mech::Action> actions;
    actions.reserve(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        actions.push_back(mech::Action::delegate_to(static_cast<graph::Vertex>(i + 1)));
    }
    actions.push_back(mech::Action::vote());
    for (auto _ : state) {
        // Naive: chase pointers from every voter independently.
        std::vector<std::uint64_t> weights(n, 0);
        for (std::size_t v = 0; v < n; ++v) {
            std::size_t cur = v;
            while (actions[cur].kind == mech::ActionKind::Delegate) {
                cur = actions[cur].targets.front();
            }
            ++weights[cur];
        }
        benchmark::DoNotOptimize(weights);
    }
}
BENCHMARK(BM_SinkResolutionNaive)->Arg(1000)->Arg(4000);

void BM_SinkResolutionPathCompressed(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<mech::Action> actions;
    actions.reserve(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        actions.push_back(mech::Action::delegate_to(static_cast<graph::Vertex>(i + 1)));
    }
    actions.push_back(mech::Action::vote());
    for (auto _ : state) {
        delegation::DelegationOutcome outcome(actions);
        benchmark::DoNotOptimize(outcome.weights());
    }
}
BENCHMARK(BM_SinkResolutionPathCompressed)->Arg(1000)->Arg(4000);

void BM_PoissonBinomial(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<double> probs(n, 0.49);
    for (auto _ : state) {
        benchmark::DoNotOptimize(prob::PoissonBinomial(probs).majority_probability());
    }
}
BENCHMARK(BM_PoissonBinomial)->Arg(100)->Arg(1000)->Arg(4000);

void BM_WeightedSumTally(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(5);
    const auto inst = experiments::complete_pc_instance(rng, n, 0.05, 0.01, 0.3);
    const mech::ApprovalSizeThreshold m(1);
    const auto out = delegation::realize(m, inst, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            election::exact_correct_probability(out, inst.competencies()));
    }
}
BENCHMARK(BM_WeightedSumTally)->Arg(500)->Arg(2000);

// Tentpole ablation: the certified ε-truncated tally on the same instance
// family as BM_WeightedSumTally.  The live DP window hugs the W/2
// threshold instead of spanning [0, W], so per-realization cost drops
// from O(#sinks·W) to ~O(#sinks·σ_W) with a proven |ΔP| ≤ ε/2.
void BM_TallyTruncated(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(5);  // same stream as BM_WeightedSumTally: same realization
    const auto inst = experiments::complete_pc_instance(rng, n, 0.05, 0.01, 0.3);
    const mech::ApprovalSizeThreshold m(1);
    const auto out = delegation::realize(m, inst, rng);
    election::TallyScratch scratch;
    const double eps = 1e-12;
    for (auto _ : state) {
        benchmark::DoNotOptimize(election::truncated_correct_probability(
            out, inst.competencies(), eps, scratch));
    }
}
BENCHMARK(BM_TallyTruncated)->Arg(500)->Arg(2000);

// The truncation pays off most in the Lemma-3 regime — at most √n
// delegators, so the weight profile is ~n unit-weight sinks and the DP
// variance is Θ(n) while the support is Θ(n) wide: the live window
// O(σ·√log(1/ε)) is a vanishing fraction of the exact buffer.  The
// exact/truncated pair below shares one deterministic √n-budget outcome.
delegation::DelegationOutcome budget_outcome(std::size_t n) {
    std::vector<mech::Action> actions;
    actions.reserve(n);
    const auto budget = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    for (std::size_t i = 0; i < n; ++i) {
        if (i < budget) {
            actions.push_back(
                mech::Action::delegate_to(static_cast<graph::Vertex>(i + budget)));
        } else {
            actions.push_back(mech::Action::vote());
        }
    }
    return delegation::DelegationOutcome(actions);
}

void BM_TallyExactBudget(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(9);
    const auto p = model::uniform_competencies(rng, n, 0.45, 0.65);
    const auto out = budget_outcome(n);
    election::TallyScratch scratch;
    for (auto _ : state) {
        benchmark::DoNotOptimize(election::exact_correct_probability(out, p, scratch));
    }
}
BENCHMARK(BM_TallyExactBudget)->Arg(500)->Arg(2000);

void BM_TallyTruncatedBudget(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(9);  // same stream as BM_TallyExactBudget: same profile
    const auto p = model::uniform_competencies(rng, n, 0.45, 0.65);
    const auto out = budget_outcome(n);
    election::TallyScratch scratch;
    const double eps = 1e-12;
    for (auto _ : state) {
        benchmark::DoNotOptimize(election::truncated_correct_probability(
            out, p, eps, scratch));
    }
}
BENCHMARK(BM_TallyTruncatedBudget)->Arg(500)->Arg(2000);

// Tentpole: the incremental churn engine vs from-scratch re-evaluation.
// One churn step is "voter v toggles between delegating to v+1 and voting
// directly"; both variants start from the same pre-churned state (every
// third voter delegates) and both report the certified-ε live probability
// after each step.
//
//  * BM_PatchEval     — DynamicResolution::set_* + LiveTally::apply_sink_
//    changes: O(depth + log n · window) per step.
//  * BM_FullEval      — rebuild DelegationOutcome from actions and run the
//    ε-truncated DP: O(n + #sinks · window) per step, the cost a server
//    would pay re-loading and re-evaluating the instance.
//
// The acceptance claim (docs/CHURN.md): patch+re-eval ≥ 10× faster than
// full re-resolve+re-tally at n = 10⁵.
constexpr double kChurnEps = 1e-9;

std::vector<mech::Action> churn_base_actions(std::size_t n) {
    std::vector<mech::Action> actions(n, mech::Action::vote());
    for (std::size_t v = 0; v + 1 < n; v += 3) {
        actions[v] = mech::Action::delegate_to(static_cast<graph::Vertex>(v + 1));
    }
    return actions;
}

void BM_PatchEval(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(12);
    const auto comps = model::uniform_competencies(rng, n, 0.35, 0.65);
    delegation::DynamicResolution res;
    res.reset(delegation::DelegationOutcome(churn_base_actions(n)));
    election::LiveTally tally;
    tally.reset(comps.values(), res, kChurnEps);
    std::size_t step = 0;
    for (auto _ : state) {
        const auto v = static_cast<graph::Vertex>((step * 3) % (n - 1));
        const auto patch = (step & 1)
                               ? res.set_vote(v)
                               : res.set_delegate(v, v + 1);
        tally.apply_sink_changes({patch.changes.data(), patch.change_count});
        benchmark::DoNotOptimize(tally.correct_probability());
        ++step;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PatchEval)->Arg(10000)->Arg(100000);

void BM_FullEval(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(12);  // same stream as BM_PatchEval: same competencies
    const auto comps = model::uniform_competencies(rng, n, 0.35, 0.65);
    auto actions = churn_base_actions(n);
    election::TallyScratch scratch;
    std::size_t step = 0;
    for (auto _ : state) {
        const auto v = static_cast<graph::Vertex>((step * 3) % (n - 1));
        if (step & 1) {
            actions[v] = mech::Action::vote();
        } else {
            actions[v] = mech::Action::delegate_to(v + 1);
        }
        const delegation::DelegationOutcome outcome(actions);
        benchmark::DoNotOptimize(election::truncated_correct_probability(
            outcome, comps, kChurnEps, scratch));
        ++step;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullEval)->Arg(10000)->Arg(100000);

// Best-response dynamics on the incremental engine: selfish utilities read
// the sink cache in O(1), so a full convergence run is O(deviations · depth)
// instead of one O(n) re-resolution per candidate probe.
void BM_GameIncremental(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(13);
    const auto inst = experiments::d_regular_instance(rng, n, 8, 0.05, 0.01, 0.3);
    game::GameOptions opts;
    opts.utility = game::Utility::Selfish;
    opts.shuffle_seed = 99;
    std::size_t deviations = 0;
    for (auto _ : state) {
        rng::Rng run_rng(13);
        const auto result = game::best_response_dynamics(inst, run_rng, opts);
        deviations = result.deviations;
        benchmark::DoNotOptimize(result);
    }
    state.counters["deviations"] = static_cast<double>(deviations);
}
BENCHMARK(BM_GameIncremental)->Arg(2000)->Arg(10000);

// Ablation: exact-inner-step estimator vs naive vote sampling at matched
// wall-clock-ish budgets.  Compare std_error per unit work in the counters.
void BM_EstimatorRaoBlackwell(benchmark::State& state) {
    rng::Rng rng(6);
    const auto inst = experiments::complete_pc_instance(rng, 61, 0.05, 0.02, 0.2);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 100;
    double last_se = 0.0;
    for (auto _ : state) {
        const auto est = election::estimate_correct_probability(m, inst, rng, opts);
        last_se = est.std_error;
        benchmark::DoNotOptimize(est);
    }
    state.counters["std_error"] = last_se;
}
BENCHMARK(BM_EstimatorRaoBlackwell);

// Full estimate_gain through the replication engine at 1/2/4 worker
// threads (pool path).  UseRealTime so fan-out shows up as wall-clock, not
// summed CPU time.  On a single-core host the thread counts record but the
// curve is flat — interpret scaling numbers on multi-core machines only.
void BM_EstimateGain(benchmark::State& state) {
    rng::Rng rng(8);
    const auto inst = experiments::complete_pc_instance(rng, 201, 0.05, 0.01, 0.3);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 200;
    opts.threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(election::estimate_gain(m, inst, rng, opts));
    }
}
BENCHMARK(BM_EstimateGain)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Adaptive stopping: estimate_gain runs batches until the P^M standard
// error reaches the target instead of a fixed count.  The replications
// counter records where it stopped — the speed claim is reps-not-run.
void BM_EstimateGainAdaptive(benchmark::State& state) {
    rng::Rng rng(8);
    const auto inst = experiments::complete_pc_instance(rng, 201, 0.05, 0.01, 0.3);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.target_std_error = 5e-4;
    opts.adaptive_batch = 50;
    opts.max_replications = 2000;
    opts.tally_epsilon = 1e-12;
    std::size_t last_reps = 0;
    for (auto _ : state) {
        const auto report = election::estimate_gain(m, inst, rng, opts);
        last_reps = report.pm.replications;
        benchmark::DoNotOptimize(report);
    }
    state.counters["replications"] = static_cast<double>(last_reps);
}
BENCHMARK(BM_EstimateGainAdaptive);

// Certified stopping: the anytime-valid confidence sequence decides
// "gain >= gamma" instead of chasing a fixed SE target.  Costs one
// boundary evaluation per batch plus per-index seeding; the counters
// record where it stopped and how many looks it spent.
void BM_EstimateGainCertified(benchmark::State& state) {
    rng::Rng rng(8);
    const auto inst = experiments::complete_pc_instance(rng, 201, 0.05, 0.01, 0.3);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.certify.gamma = 0.05;
    opts.certify.delta = 0.01;
    opts.adaptive_batch = 50;
    opts.max_replications = 2000;
    opts.tally_epsilon = 1e-12;
    std::size_t last_reps = 0, last_looks = 0;
    for (auto _ : state) {
        const auto report = election::estimate_gain(m, inst, rng, opts);
        last_reps = report.pm.replications;
        if (report.pm.certified) last_looks = report.pm.certified->looks;
        benchmark::DoNotOptimize(report);
    }
    state.counters["replications"] = static_cast<double>(last_reps);
    state.counters["looks"] = static_cast<double>(last_looks);
}
BENCHMARK(BM_EstimateGainCertified);

// Workspace reuse: realize_into through one ReplicationWorkspace (the
// steady-state inner loop) vs the allocating realize() above.
void BM_RealizeDelegationWorkspace(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(4);
    const auto inst = experiments::d_regular_instance(rng, n, 16, 0.05, 0.01, 0.3);
    const mech::ApprovalSizeThreshold m(1);
    election::ReplicationWorkspace ws;
    for (auto _ : state) {
        delegation::realize_into(ws.outcome, ws.resolve, m, inst, rng);
        benchmark::DoNotOptimize(ws.outcome);
    }
}
BENCHMARK(BM_RealizeDelegationWorkspace)->Arg(1000)->Arg(10000);

void BM_EstimatorNaive(benchmark::State& state) {
    rng::Rng rng(7);
    const auto inst = experiments::complete_pc_instance(rng, 61, 0.05, 0.02, 0.2);
    const mech::ApprovalSizeThreshold m(1);
    election::EvalOptions opts;
    opts.replications = 100;
    double last_se = 0.0;
    for (auto _ : state) {
        const auto est = election::estimate_correct_probability_naive(m, inst, rng, opts);
        last_se = est.std_error;
        benchmark::DoNotOptimize(est);
    }
    state.counters["std_error"] = last_se;
}
BENCHMARK(BM_EstimatorNaive);

// Pin the dispatched kernels to one tier for the duration of a benchmark
// run, restoring the previous tier afterwards so auto-tier benchmarks in
// the same process are unaffected.
class TierPin {
public:
    explicit TierPin(support::SimdTier tier) : prev_(prob::kernel_tier()) {
        prob::set_kernel_tier(tier);
    }
    ~TierPin() { prob::set_kernel_tier(prev_); }
    TierPin(const TierPin&) = delete;
    TierPin& operator=(const TierPin&) = delete;

private:
    support::SimdTier prev_;
};

// Tentpole ablation: the raw two-point convolution step per tier.  The
// w = 1 dense regime is the BM_PoissonBinomial inner loop — the interior
// stream `out[s] = in[s]·q + in[s−1]·p` — isolated from the DP driver.
void convolve_simd_bench(benchmark::State& state, support::SimdTier tier) {
    TierPin pin(tier);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<double> in(n, 1.0 / static_cast<double>(n));
    std::vector<double> out(n + 1, 0.0);
    for (auto _ : state) {
        prob::convolve_two_point(in.data(), out.data(), n, 1, 0.49);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<benchmark::IterationCount>(n));
}

// Batched SoA tally on the √n-budget profile: 8 lanes of the same outcome
// under independent competency draws, advanced in lockstep.  Compare
// items/s against 8 sequential BM_TallyExactBudget calls for the batching
// speedup; results stay bit-identical to the sequential tally.
void tally_batched_bench(benchmark::State& state, support::SimdTier tier) {
    TierPin pin(tier);
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Rng rng(9);  // same stream family as BM_TallyExactBudget
    const auto out = budget_outcome(n);
    std::vector<model::CompetencyVector> comps;
    comps.reserve(election::TallyBatch::kMaxLanes);
    for (std::size_t k = 0; k < election::TallyBatch::kMaxLanes; ++k) {
        comps.push_back(model::uniform_competencies(rng, n, 0.45, 0.65));
    }
    election::TallyBatch batch;
    for (auto _ : state) {
        batch.clear();
        for (const auto& c : comps) election::stage_tally_lane(batch, out, c);
        election::tally_staged(batch);
        benchmark::DoNotOptimize(batch.result);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<benchmark::IterationCount>(election::TallyBatch::kMaxLanes));
}

// Register the per-tier benchmarks for tiers this host can execute, so an
// absent ISA shows up in bench_diff as an added/removed benchmark rather
// than a failure.  Scalar always registers — it is the cross-host anchor.
void register_simd_benchmarks() {
    using support::SimdTier;
    for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
        if (!support::simd_tier_supported(tier)) continue;
        const std::string name = support::simd_tier_name(tier);
        benchmark::RegisterBenchmark(
            ("BM_ConvolveSimd/" + name).c_str(),
            [tier](benchmark::State& s) { convolve_simd_bench(s, tier); })
            ->Arg(2000);
        benchmark::RegisterBenchmark(
            ("BM_TallyBatched/" + name).c_str(),
            [tier](benchmark::State& s) { tally_batched_bench(s, tier); })
            ->Arg(500)
            ->Arg(2000);
    }
}

}  // namespace

// Custom main so every snapshot records which *library* build type
// produced it (`context.liquidd_build_type`): google-benchmark's own
// `library_build_type` describes the installed benchmark .so, not this
// repo's flags, and `bench_diff --strict` gates on the repo's type.
int main(int argc, char** argv) {
    benchmark::AddCustomContext("liquidd_build_type",
                                ld::support::build_info().build_type);
    register_simd_benchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
