// [X1] §6 extension — vote abstaining.
//
// Paper claim: if abstention is allowed only for voters who *could*
// delegate (decision-agnostic voters), DNH is preserved and SPG transfers
// with a smaller guaranteed gain.  (Allowing everyone to abstain could
// leave a single sink and violate DNH — footnote 4.)
//
// Sweep: abstention probability q ∈ {0, 0.25, 0.5, 0.75} on the Theorem 2
// workload.  The shape: gain decreases smoothly in q but stays positive;
// no cliff appears.

#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/abstaining.hpp"
#include "ld/mech/complete_graph_threshold.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "X1", "Abstention extension: gain vs abstain probability (K_n, Algorithm 1)",
        {"n", "abstain_prob", "delegators", "abstainers_mean", "cast_votes_mean",
         "P^D", "P^M", "gain"});
    auto rng = exp.make_rng();

    constexpr double kAlpha = 0.05;
    const auto inner = mech::CompleteGraphThreshold::with_sqrt_threshold();
    election::EvalOptions opts;
    opts.replications = 60;

    // Small instances with a tight deficit keep P^M away from 1, so the
    // cost of abstention (removed competent votes → larger relative
    // fluctuation) is visible; the large size shows it vanish again.
    for (std::size_t n : {61u, 151u, 601u}) {
        for (double q : {0.0, 0.25, 0.5, 0.75, 0.95}) {
            const auto inst = experiments::complete_pc_instance(rng, n, kAlpha, 0.02, 0.2);
            const mech::Abstaining mechanism(inner, q);
            const auto report = election::estimate_gain(mechanism, inst, rng, opts);

            // Measure abstention/cast statistics on fresh realizations.
            double abstainers = 0.0, cast = 0.0;
            constexpr int kShapeReps = 20;
            for (int rep = 0; rep < kShapeReps; ++rep) {
                const auto out = delegation::realize(mechanism, inst, rng);
                abstainers += static_cast<double>(out.stats().abstainer_count);
                cast += static_cast<double>(out.stats().cast_weight);
            }
            exp.add_row({static_cast<long long>(n), q, report.mean_delegators,
                         abstainers / kShapeReps, cast / kShapeReps, report.pd,
                         report.pm.value, report.gain});
        }
    }
    exp.add_note("paper: restricted abstention preserves DNH; SPG survives with smaller gain");
    exp.add_note("abstaining removes weight from competent sinks, shrinking the margin smoothly");
    exp.finish();
    return 0;
}
