// [F1] Figure 1 — the star counterexample.
//
// Paper claim: on a star whose centre has competency 3/4 and whose leaves
// sit just above 1/2, direct voting decides correctly with probability → 1
// as the graph grows, while a mechanism that delegates to strictly more
// competent voters concentrates all weight on the centre, deciding
// correctly with probability exactly 3/4 — a loss converging to 1/4.
//
// We sweep n and print P^D (exact), P^M, the gain, and the max sink weight
// (always n: total concentration).

#include <iostream>

#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/theory/theorems.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "F1", "Figure 1: star topology, delegation concentrates on the centre",
        {"n", "P^D_exact", "P^M", "gain", "paper_asymptote", "max_weight"});
    auto rng = exp.make_rng();

    const mech::BestNeighbour mechanism;
    election::EvalOptions opts;
    opts.replications = 8;  // the induced delegation graph is deterministic

    const double asymptote = -theory::figure1_asymptotic_loss(0.75);
    for (std::size_t n : {9u, 33u, 129u, 513u, 2049u, 8193u}) {
        const auto inst = experiments::star_instance(n, 0.75, 0.55, 0.05);
        const auto report = election::estimate_gain(mechanism, inst, rng, opts);
        exp.add_row({static_cast<long long>(n), report.pd, report.pm.value, report.gain,
                     asymptote, report.mean_max_weight});
    }
    exp.add_note("paper: P^D -> 1, P^M = 3/4, loss -> 1/4 (negative gain -0.25)");
    exp.add_note("mechanism: delegate to the most competent approved neighbour");
    exp.finish();
    return 0;
}
