// [X3] §6 "Practical Considerations" — do the Lemma 3/5 conditions hold in
// realistic network models?
//
// The paper asks future work to "empirically verify if social networks or
// even random graphs that model social networks (e.g., Barabási–Albert
// graphs) satisfy the assumptions on the amount of sinks with not too much
// weight in Lemma 5."  We run the Lemma 3 and Lemma 5 audits across the
// topology zoo and report the gain alongside.
//
// The shape: symmetric topologies (d-regular, Watts–Strogatz at high β,
// Erdős–Rényi) satisfy the max-weight condition comfortably; skewed ones
// (Barabási–Albert, two-tier, star) concentrate weight and sit closer to —
// or beyond — the harmful regime.

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "ld/delegation/concentration.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/dnh/conditions.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "stats/running_stats.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/model/competency_gen.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "X3", "Real-world-ish topologies: Lemma 5 max-weight audit + gain",
        {"topology", "n", "deg_asymmetry", "mean_max_weight", "gini", "nakamoto",
         "eff_sinks", "margin/sigma", "lemma5_ok", "gain"},
        3);
    auto rng = exp.make_rng();

    constexpr std::size_t kN = 1000;
    constexpr double kAlpha = 0.05;
    const mech::ApprovalSizeThreshold mechanism(1);
    election::EvalOptions opts;
    opts.replications = 40;

    struct Topo {
        std::string name;
        graph::Graph graph;
    };
    std::vector<Topo> topologies;
    topologies.push_back({"complete", graph::make_complete(kN)});
    topologies.push_back({"d_regular(16)", graph::make_random_d_regular(rng, kN, 16)});
    topologies.push_back({"erdos_renyi(p=.016)", graph::make_erdos_renyi_gnp(rng, kN, 0.016)});
    topologies.push_back({"watts_strogatz(16,.3)",
                          graph::make_watts_strogatz(rng, kN, 16, 0.3)});
    topologies.push_back({"barabasi(m=8)", graph::make_barabasi_albert(rng, kN, 8)});
    topologies.push_back({"two_tier(10 hubs)", graph::make_two_tier(rng, kN, 10, 2)});
    topologies.push_back({"star", graph::make_star(kN)});

    for (auto& topo : topologies) {
        const auto stats = graph::degree_stats(topo.graph);
        const auto p = model::uniform_competencies(rng, kN, 0.45, 0.75);
        const model::Instance inst(std::move(topo.graph), p, kAlpha);
        const auto audit = dnh::audit_lemma5(inst, mechanism, rng, 0.2, 2.0, 24);
        const auto gain = election::estimate_gain(mechanism, inst, rng, opts);
        // Concentration metrics (Gini / Nakamoto / effective sinks) — the
        // quantities the paper's cited DAO and LiquidFeedback studies
        // measure — averaged over a few realizations.
        ld::stats::RunningStats gini, nakamoto, eff;
        for (int rep = 0; rep < 12; ++rep) {
            const auto metrics = ld::delegation::concentration_metrics(
                ld::delegation::realize(mechanism, inst, rng));
            gini.add(metrics.gini);
            nakamoto.add(static_cast<double>(metrics.nakamoto));
            eff.add(metrics.effective_sinks);
        }
        exp.add_row({topo.name, static_cast<long long>(kN), stats.asymmetry,
                     audit.mean_max_weight, gini.mean(), nakamoto.mean(), eff.mean(),
                     audit.mean_sigma > 0 ? audit.mean_margin / audit.mean_sigma : 0.0,
                     std::string(audit.weight_small_enough ? "yes" : "NO"), gain.gain});
    }
    exp.add_note("paper (section 6): graphs without structural asymmetry are the good ones");
    exp.add_note("degree asymmetry (max/mean degree) predicts max sink weight and harm");
    exp.finish();
    return 0;
}
