// [BOARD] The implications table (§6/§7 in one view): empirical DNH and
// SPG verdicts for every (graph family × mechanism) pair the paper
// discusses, over a size sweep.  This is the summary a practitioner would
// consult: "on my kind of network, with this mechanism, is liquid
// democracy safe, and does it help?"

#include <memory>

#include "ld/dnh/verdicts.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/complete_graph_threshold.hpp"
#include "ld/mech/fraction_approved.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "BOARD", "Empirical DNH / SPG scoreboard per (graph family, mechanism)",
        {"family", "mechanism", "DNH", "SPG", "gamma", "worst_gain"});
    auto rng = exp.make_rng();

    constexpr double kAlpha = 0.05;
    const std::vector<std::size_t> sizes{61, 121, 241, 481};

    dnh::VerdictOptions opts;
    opts.eval.replications = 60;
    opts.dnh_tolerance = 0.02;

    struct Row {
        std::string family_name;
        dnh::InstanceFamily family;
        std::string mech_name;
        std::shared_ptr<mech::Mechanism> mechanism;
    };

    const auto threshold2 = std::make_shared<mech::ApprovalSizeThreshold>(2);
    const auto alg1 = std::make_shared<mech::CompleteGraphThreshold>(
        mech::CompleteGraphThreshold::with_sqrt_threshold());
    const auto fraction = std::make_shared<mech::FractionApproved>(1.0 / 3.0);
    const auto best = std::make_shared<mech::BestNeighbour>();

    // PC-regime families (the SPG side).
    const auto complete = experiments::complete_pc_family(kAlpha, 0.02, 0.25);
    const auto dreg = experiments::d_regular_family(12, kAlpha, 0.02, 0.25);
    const auto bounded = experiments::bounded_degree_family(0.4, kAlpha, 0.35, 0.62);
    const auto mindeg = experiments::min_degree_family(0.5, kAlpha, 0.35, 0.62);
    const auto ba = experiments::barabasi_family(4, kAlpha, 0.35, 0.62);
    const auto star = experiments::star_family(0.75, 0.55, kAlpha);

    std::vector<Row> rows{
        {"K_n (PC)", complete, "Algorithm1(sqrt)", alg1},
        {"K_n (PC)", complete, "Threshold(2)", threshold2},
        {"Rand(n,12) (PC)", dreg, "Threshold(2)", threshold2},
        {"maxdeg<=n^0.4", bounded, "Threshold(2)", threshold2},
        {"mindeg>=n^0.5", mindeg, "Fraction(1/3)", fraction},
        {"barabasi(m=4)", ba, "Threshold(2)", threshold2},
        {"barabasi(m=4)", ba, "BestNeighbour", best},
        {"star", star, "BestNeighbour", best},
    };

    for (const auto& row : rows) {
        const auto dnh_verdict =
            dnh::check_dnh(row.family, *row.mechanism, sizes, rng, opts);
        const auto spg_verdict =
            dnh::check_spg(row.family, *row.mechanism, sizes, rng, opts);
        exp.add_row({row.family_name, row.mech_name,
                     std::string(dnh_verdict.satisfied ? "PASS" : "FAIL"),
                     std::string(spg_verdict.satisfied ? "PASS" : "FAIL"),
                     spg_verdict.gamma, dnh_verdict.worst_gain});
    }
    exp.add_note("paper section 7: complete, d-regular, bounded-degree, min-degree graphs");
    exp.add_note("  all enjoy SPG + DNH; asymmetric families (star, BA hubs + greedy) do not");
    exp.finish();
    return 0;
}
