// [X2] §6 extension — weighted majority over multiple delegates.
//
// Paper claim: delegating to m approved delegates and taking their
// majority can only help SPG ("similar to sampling the random delegate
// multiple times and taking the best outcome"), as long as delegates are
// strictly more competent.
//
// Sweep: m ∈ {1, 3, 5, 7} on the Theorem 2 workload.  The shape: P^M is
// non-decreasing in m (majority-of-m of better voters stochastically
// dominates one random better voter).

#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/multi_delegate.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "X2", "Weighted-majority multi-delegation: gain vs delegate count m",
        {"n", "m", "P^D", "P^M", "gain"});
    auto rng = exp.make_rng();

    constexpr double kAlpha = 0.05;
    election::EvalOptions opts;
    opts.replications = 80;
    opts.inner_samples = 24;

    for (std::size_t n : {201u, 601u}) {
        const auto inst = experiments::complete_pc_instance(rng, n, kAlpha, 0.01, 0.3);
        // m = 1 is the single-delegate baseline (Example 1).
        {
            const mech::ApprovalSizeThreshold single(1);
            const auto report = election::estimate_gain(single, inst, rng, opts);
            exp.add_row({static_cast<long long>(n), 1LL, report.pd, report.pm.value,
                         report.gain});
        }
        for (std::size_t m : {3u, 5u, 7u}) {
            const mech::MultiDelegate mechanism(m, 1);
            const auto report = election::estimate_gain(mechanism, inst, rng, opts);
            exp.add_row({static_cast<long long>(n), static_cast<long long>(m),
                         report.pd, report.pm.value, report.gain});
        }
    }
    exp.add_note("paper conjecture: majority-of-m approved delegates dominates one random delegate");
    exp.add_note("P^M should be non-decreasing in m (modulo Monte-Carlo noise)");
    exp.finish();
    return 0;
}
