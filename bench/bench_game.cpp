// [X8] Rational delegation — the game-theoretic view (§1.2 related work).
//
// How does *strategic* delegation compare to the paper's mechanism-driven
// delegation?  We run best-response dynamics to a pure Nash equilibrium
// under two utilities and compare against direct voting and the Example-1
// mechanism:
//
//  * selfish voters chase the most competent reachable guru — equilibria
//    concentrate weight (the game-theoretic route to the Figure 1 harm);
//  * cooperative voters maximise group accuracy — equilibria delegate
//    moderately and never fall below direct voting (by construction of
//    the dynamics).
//
// The gap between the two is liquid democracy's "price of anarchy" on
// each topology.

#include "graph/generators.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/experiments/workloads.hpp"
#include "ld/game/delegation_game.hpp"
#include "ld/mech/approval_size_threshold.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "X8", "Rational delegation: Nash equilibria vs mechanisms",
        {"topology", "n", "players", "P[correct]", "gain_vs_direct", "max_weight",
         "rounds"});
    auto rng = exp.make_rng();

    constexpr double kAlpha = 0.05;

    struct Setup {
        std::string name;
        model::Instance instance;
    };
    std::vector<Setup> setups;
    setups.push_back({"complete(61,PC)",
                      experiments::complete_pc_instance(rng, 61, kAlpha, 0.02, 0.25)});
    setups.push_back({"star(61)", experiments::star_instance(61, 0.75, 0.55, kAlpha)});
    setups.push_back({"d_regular(60,8)",
                      experiments::d_regular_instance(rng, 60, 8, kAlpha, 0.02, 0.25)});
    setups.push_back(
        {"barabasi(61,3)", experiments::barabasi_instance(rng, 61, 3, kAlpha, 0.35, 0.7)});

    const mech::ApprovalSizeThreshold mechanism(1);
    election::EvalOptions eval;
    eval.replications = 200;

    for (const auto& setup : setups) {
        const double pd = election::exact_direct_probability(setup.instance);

        // Selfish equilibrium.
        {
            game::GameOptions opts;
            opts.utility = game::Utility::Selfish;
            const auto r = game::best_response_dynamics(setup.instance, rng, opts);
            exp.add_row({setup.name, static_cast<long long>(setup.instance.voter_count()),
                         std::string("selfish Nash"), r.group_correct_probability,
                         r.gain_vs_direct, static_cast<double>(r.stats.max_weight),
                         static_cast<long long>(r.rounds)});
        }
        // Cooperative equilibrium.
        {
            game::GameOptions opts;
            opts.utility = game::Utility::Cooperative;
            const auto r = game::best_response_dynamics(setup.instance, rng, opts);
            exp.add_row({setup.name, static_cast<long long>(setup.instance.voter_count()),
                         std::string("cooperative Nash"), r.group_correct_probability,
                         r.gain_vs_direct, static_cast<double>(r.stats.max_weight),
                         static_cast<long long>(r.rounds)});
        }
        // The paper's mechanism, for reference.
        {
            const auto report =
                election::estimate_gain(mechanism, setup.instance, rng, eval);
            exp.add_row({setup.name, static_cast<long long>(setup.instance.voter_count()),
                         std::string("Threshold(1) mechanism"), report.pm.value,
                         report.gain, report.mean_max_weight, 0LL});
        }
        // Direct voting baseline.
        exp.add_row({setup.name, static_cast<long long>(setup.instance.voter_count()),
                     std::string("direct voting"), pd, 0.0, 1.0, 0LL});
    }
    exp.add_note("selfish equilibria concentrate weight (game-theoretic dictatorship)");
    exp.add_note("cooperative equilibria never fall below direct voting; mechanisms sit between");
    exp.finish();
    return 0;
}
