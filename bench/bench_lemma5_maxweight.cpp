// [E-L5] Lemmas 5–6 — max sink weight controls outcome deviation.
//
// Paper claim: if every sink's weight is at most w, there are at least n/w
// sinks, and Hoeffding gives
//   P[|X_n − μ(X_n)| >= √(n^{1+ε})·w / c] <= e^{−Ω(n^{ε})}.
//
// We construct delegation outcomes with a *controlled* max weight (w-sized
// blocks each delegating to one local sink), measure the deviation tail of
// the correct-vote count, and compare to the Hoeffding bound.  The shape:
// deviations grow like √(n·w) — heavier sinks buy more variance — and the
// measured tail stays below the bound.

#include <cmath>

#include "ld/delegation/delegation_graph.hpp"
#include "ld/election/tally.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/model/competency_gen.hpp"
#include "prob/bounds.hpp"
#include "stats/running_stats.hpp"

namespace {

using namespace ld;

/// Build a functional delegation outcome over n voters where consecutive
/// blocks of size w all delegate to the block's first voter: every sink
/// has weight exactly w (up to the last partial block).
delegation::DelegationOutcome block_outcome(std::size_t n, std::size_t w) {
    std::vector<mech::Action> actions;
    actions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t block_head = (i / w) * w;
        if (i == block_head) {
            actions.push_back(mech::Action::vote());
        } else {
            actions.push_back(
                mech::Action::delegate_to(static_cast<graph::Vertex>(block_head)));
        }
    }
    return delegation::DelegationOutcome(std::move(actions));
}

}  // namespace

int main() {
    experiments::Experiment exp(
        "E-L5", "Lemma 5: deviation of the vote count vs max sink weight",
        {"n", "max_weight_w", "sinks", "stddev_measured", "sqrt(n*w)/2",
         "tail_at_radius", "hoeffding_bound"},
        5);
    auto rng = exp.make_rng();

    constexpr double kEps = 0.2;
    constexpr double kC = 2.0;
    constexpr std::size_t kReps = 4000;

    for (std::size_t n : {1024u, 4096u}) {
        for (std::size_t w : {1u, 4u, 16u, 64u}) {
            const auto p = ld::model::uniform_competencies(rng, n, 0.35, 0.65);
            const auto outcome = block_outcome(n, w);
            const double mu = election::conditional_vote_mean(outcome, p);
            const double radius = prob::lemma5_radius(n, kEps, static_cast<double>(w), kC);

            stats::RunningStats deviations;
            std::size_t exceed = 0;
            for (std::size_t rep = 0; rep < kReps; ++rep) {
                const auto votes = static_cast<double>(
                    election::sample_correct_vote_count(outcome, p, rng));
                deviations.add(votes - mu);
                if (std::abs(votes - mu) >= radius) ++exceed;
            }
            const double bound =
                prob::lemma6_deviation_bound(radius, static_cast<double>(n),
                                             static_cast<double>(w));
            exp.add_row({static_cast<long long>(n), static_cast<long long>(w),
                         static_cast<long long>(outcome.stats().voting_sink_count),
                         deviations.stddev(),
                         std::sqrt(static_cast<double>(n * w)) / 2.0,
                         static_cast<double>(exceed) / static_cast<double>(kReps),
                         bound});
        }
    }
    exp.add_note("paper: stddev scales ~ sqrt(n*w); tail at the Lemma 5 radius stays below the Hoeffding bound");
    exp.add_note("w = 1 is direct voting; w = 64 shows the variance inflation delegation buys");
    exp.finish();
    return 0;
}
