// [X7] Probabilistic competencies — the §6 unification with Halpern et
// al.'s model.
//
// The paper's analysis fixes the competency vector; Halpern et al. draw it
// from a distribution and ask for gain in expectation over draws.  §6 asks
// for the two views to be unified: "Extending our model and analysis to
// account for probabilistic competencies in addition to classes of graphs
// would be an interesting and important step."  This bench does the
// empirical version: expected gain over competency *distributions* ×
// graph families, with per-draw worst cases (the probabilistic DNH).

#include "graph/generators.hpp"
#include "ld/election/distributional.hpp"
#include "ld/experiments/harness.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/model/competency_gen.hpp"

int main() {
    using namespace ld;
    experiments::Experiment exp(
        "X7", "Probabilistic competencies (Halpern-style): E[gain] over draws",
        {"graph", "distribution", "E[P^D]", "E[P^M]", "E[gain]", "worst_draw",
         "best_draw"});
    auto rng = exp.make_rng();

    constexpr std::size_t kN = 301;
    constexpr double kAlpha = 0.05;
    const mech::ApprovalSizeThreshold mechanism(2);

    election::EvalOptions eval;
    eval.replications = 40;
    constexpr std::size_t kDraws = 24;

    struct Dist {
        std::string name;
        election::CompetencySampler sampler;
    };
    const std::vector<Dist> distributions{
        {"uniform(0.3,0.7)",
         [](std::size_t n, rng::Rng& r) {
             return model::uniform_competencies(r, n, 0.3, 0.7);
         }},
        {"pc(a=0.02)",
         [](std::size_t n, rng::Rng& r) {
             return model::pc_competencies(r, n, 0.02, 0.25);
         }},
        {"beta(8,8.3)",
         [](std::size_t n, rng::Rng& r) {
             return model::beta_competencies(r, n, 8.0, 8.3);
         }},
        {"tnormal(0.48,0.12)",
         [](std::size_t n, rng::Rng& r) {
             return model::truncated_normal_competencies(r, n, 0.48, 0.12, 0.05, 0.95);
         }},
    };

    struct Topo {
        std::string name;
        graph::Graph graph;
    };
    std::vector<Topo> topologies;
    topologies.push_back({"complete", graph::make_complete(kN)});
    topologies.push_back({"dregular(12)", graph::make_random_d_regular(rng, kN + 1, 12)});
    topologies.push_back({"barabasi(4)", graph::make_barabasi_albert(rng, kN, 4)});

    for (const auto& topo : topologies) {
        for (const auto& dist : distributions) {
            const auto report = election::estimate_gain_over_distribution(
                mechanism, topo.graph, kAlpha, dist.sampler, rng, kDraws, eval);
            exp.add_row({topo.name, dist.name, report.pd.value, report.pm.value,
                         report.gain.value, report.worst_gain, report.best_gain});
        }
    }
    exp.add_note("expected gain is positive for every (graph, distribution) pair tested");
    exp.add_note("worst_draw stays above -0.02: the probabilistic do-no-harm analogue");
    exp.finish();
    return 0;
}
