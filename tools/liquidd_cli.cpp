// `liquidd` — the command-line experiment runner.  All logic lives in
// ld::cli (src/ld/cli/) so it is unit-tested; this file only adapts argv
// and reports errors.

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "ld/cli/runner.hpp"

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        return ld::cli::dispatch(args, std::cout);
    } catch (const std::exception& e) {
        std::cerr << "liquidd: " << e.what() << '\n'
                  << "run 'liquidd --help' for usage\n";
        return 2;
    }
}
