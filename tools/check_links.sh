#!/usr/bin/env bash
# Dead-link check for the repo's markdown: every relative link target in a
# git-tracked *.md file must exist on disk.  External links (http/https/
# mailto) and pure in-page anchors are skipped; a `path#anchor` link is
# checked for `path` only.  Exits nonzero listing every dead link.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
while IFS= read -r file; do
  # Inline markdown links: capture the (target) of every [text](target).
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;;
    esac
    target="${target%%#*}"
    # Links resolve relative to the file; repo-root-relative also accepted.
    if [ ! -e "$(dirname "$file")/$target" ] && [ ! -e "$target" ]; then
      echo "dead link in $file: $target"
      status=1
    fi
  done < <(awk '/^[[:space:]]*```/ { fenced = !fenced; next } !fenced' "$file" \
             | sed -E 's/`[^`]*`//g' \
             | grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//; s/ .*//' || true)
done < <(git ls-files '*.md')

if [ "$status" -eq 0 ]; then
  echo "markdown links OK"
fi
exit "$status"
