// `bench_diff` — the CI perf gate: compare two google-benchmark JSON
// snapshots (e.g. the committed BENCH_1.json baseline vs a fresh
// bench-smoke run), print a per-benchmark delta table, and exit nonzero
// when any shared benchmark slowed down past the threshold.
//
//   bench_diff <baseline.json> <candidate.json>
//              [--threshold <frac>]   fail when delta > frac (default 0.20)
//              [--metric cpu_time|real_time]   compared field (default cpu_time)
//
// Benchmarks present in only one snapshot are listed as added/removed but
// never fail the gate — renames must not break CI.  Exit codes: 0 ok,
// 1 regression past threshold, 2 usage or parse error.

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/table_printer.hpp"

namespace {

namespace json = ld::support::json;

struct Args {
    std::string baseline;
    std::string candidate;
    double threshold = 0.20;
    std::string metric = "cpu_time";
};

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "bench_diff: " << message << "\n"
              << "usage: bench_diff <baseline.json> <candidate.json>"
                 " [--threshold <frac>] [--metric cpu_time|real_time]\n";
    std::exit(2);
}

Args parse_args(int argc, char** argv) {
    Args args;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage_error(flag + ": missing value");
            return argv[++i];
        };
        if (flag == "--threshold") {
            try {
                args.threshold = std::stod(next());
            } catch (const std::exception&) {
                usage_error("--threshold: expected a number");
            }
            if (args.threshold <= 0.0) usage_error("--threshold: must be positive");
        } else if (flag == "--metric") {
            args.metric = next();
            if (args.metric != "cpu_time" && args.metric != "real_time") {
                usage_error("--metric: expected cpu_time or real_time");
            }
        } else if (flag == "--help" || flag == "-h") {
            std::cout << "bench_diff — google-benchmark JSON regression gate\n"
                         "usage: bench_diff <baseline.json> <candidate.json>"
                         " [--threshold <frac>] [--metric cpu_time|real_time]\n";
            std::exit(0);
        } else if (!flag.empty() && flag[0] == '-') {
            usage_error("unknown flag '" + flag + "'");
        } else {
            positional.push_back(flag);
        }
    }
    if (positional.size() != 2) usage_error("expected exactly two snapshot paths");
    args.baseline = positional[0];
    args.candidate = positional[1];
    return args;
}

double unit_to_ns(const std::string& unit) {
    if (unit == "ns") return 1.0;
    if (unit == "us") return 1e3;
    if (unit == "ms") return 1e6;
    if (unit == "s") return 1e9;
    throw json::Error("unknown time_unit '" + unit + "'");
}

/// name → time in ns for every per-iteration benchmark entry (aggregate
/// rows like mean/median/stddev from --benchmark_repetitions are skipped).
std::map<std::string, double> load_times(const std::string& path,
                                         const std::string& metric) {
    const json::Value doc = json::parse_file(path);
    std::map<std::string, double> times;
    for (const json::Value& entry : doc.at("benchmarks").as_array()) {
        if (const json::Value* run_type = entry.find("run_type")) {
            if (run_type->as_string() != "iteration") continue;
        }
        const double scale = unit_to_ns(entry.at("time_unit").as_string());
        times[entry.at("name").as_string()] = entry.at(metric).as_number() * scale;
    }
    return times;
}

std::string format_delta(double delta) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.1f%%", delta * 100.0);
    return buf;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args = parse_args(argc, argv);
    std::map<std::string, double> base, cand;
    try {
        base = load_times(args.baseline, args.metric);
        cand = load_times(args.candidate, args.metric);
    } catch (const std::exception& e) {
        std::cerr << "bench_diff: " << e.what() << '\n';
        return 2;
    }

    ld::support::TablePrinter table(
        {"benchmark", "base_ms", "cand_ms", "delta", "status"}, 4);
    std::size_t compared = 0, regressions = 0, added = 0, removed = 0;
    for (const auto& [name, base_ns] : base) {
        const auto it = cand.find(name);
        if (it == cand.end()) {
            ++removed;
            table.add_row({name, base_ns / 1e6, std::string("-"), std::string("-"),
                           std::string("removed")});
            continue;
        }
        ++compared;
        const double cand_ns = it->second;
        const double delta = base_ns > 0.0 ? (cand_ns - base_ns) / base_ns : 0.0;
        std::string status = "ok";
        if (delta > args.threshold) {
            status = "SLOW";
            ++regressions;
        } else if (delta < -args.threshold) {
            status = "fast";
        }
        table.add_row({name, base_ns / 1e6, cand_ns / 1e6, format_delta(delta), status});
    }
    for (const auto& [name, cand_ns] : cand) {
        if (base.count(name)) continue;
        ++added;
        table.add_row({name, std::string("-"), cand_ns / 1e6, std::string("-"),
                       std::string("added")});
    }

    table.print(std::cout);
    std::cout << compared << " compared (" << args.metric << "), " << regressions
              << " regression" << (regressions == 1 ? "" : "s") << " past +"
              << args.threshold * 100.0 << "%, " << added << " added, " << removed
              << " removed\n";
    if (regressions > 0) {
        std::cout << "FAIL: candidate is slower than baseline past the threshold\n";
        return 1;
    }
    return 0;
}
