// `bench_diff` — the CI perf gate: compare two google-benchmark JSON
// snapshots (e.g. the committed BENCH_2.json baseline vs a fresh
// bench-smoke run), print a per-benchmark delta table, and exit nonzero
// when any shared benchmark slowed down past the threshold.
//
//   bench_diff <baseline.json> <candidate.json>
//              [--threshold <frac>]   fail when delta > frac (default 0.20)
//              [--metric cpu_time|real_time]   compared field (default cpu_time)
//              [--strict]   also fail on build-type mismatch between snapshots
//
// Snapshots record the producing build type (`context.liquidd_build_type`,
// with google-benchmark's `library_build_type` as a legacy fallback);
// comparing a debug snapshot against a release one produces meaningless
// deltas, so a mismatch always warns and, under --strict, fails the gate.
//
// Benchmarks present in only one snapshot are listed as added/removed but
// never fail the gate — renames must not break CI.  Exit codes: 0 ok,
// 1 regression (or strict-mode mismatch), 2 usage or parse error.

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/table_printer.hpp"

namespace {

namespace json = ld::support::json;

struct Args {
    std::string baseline;
    std::string candidate;
    double threshold = 0.20;
    std::string metric = "cpu_time";
    bool strict = false;
};

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "bench_diff: " << message << "\n"
              << "usage: bench_diff <baseline.json> <candidate.json>"
                 " [--threshold <frac>] [--metric cpu_time|real_time] [--strict]\n";
    std::exit(2);
}

Args parse_args(int argc, char** argv) {
    Args args;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage_error(flag + ": missing value");
            return argv[++i];
        };
        if (flag == "--threshold") {
            try {
                args.threshold = std::stod(next());
            } catch (const std::exception&) {
                usage_error("--threshold: expected a number");
            }
            if (args.threshold <= 0.0) usage_error("--threshold: must be positive");
        } else if (flag == "--metric") {
            args.metric = next();
            if (args.metric != "cpu_time" && args.metric != "real_time") {
                usage_error("--metric: expected cpu_time or real_time");
            }
        } else if (flag == "--strict") {
            args.strict = true;
        } else if (flag == "--help" || flag == "-h") {
            std::cout << "bench_diff — google-benchmark JSON regression gate\n"
                         "usage: bench_diff <baseline.json> <candidate.json>"
                         " [--threshold <frac>] [--metric cpu_time|real_time]"
                         " [--strict]\n";
            std::exit(0);
        } else if (!flag.empty() && flag[0] == '-') {
            usage_error("unknown flag '" + flag + "'");
        } else {
            positional.push_back(flag);
        }
    }
    if (positional.size() != 2) usage_error("expected exactly two snapshot paths");
    args.baseline = positional[0];
    args.candidate = positional[1];
    return args;
}

double unit_to_ns(const std::string& unit) {
    if (unit == "ns") return 1.0;
    if (unit == "us") return 1e3;
    if (unit == "ms") return 1e6;
    if (unit == "s") return 1e9;
    throw json::Error("unknown time_unit '" + unit + "'");
}

/// One parsed snapshot: per-benchmark times plus the build type the
/// binary was compiled with.
struct Snapshot {
    std::map<std::string, double> times;
    std::string build_type;  // "" when the snapshot predates the field
};

/// name → time in ns for every per-iteration benchmark entry (aggregate
/// rows like mean/median/stddev from --benchmark_repetitions are skipped).
Snapshot load_snapshot(const std::string& path, const std::string& metric) {
    const json::Value doc = json::parse_file(path);
    Snapshot snap;
    if (const json::Value* context = doc.find("context")) {
        // Prefer the repo's own stamp (`liquidd_build_type`, added by
        // bench_perf_micro's main); `library_build_type` describes the
        // installed google-benchmark .so, kept only as a legacy fallback
        // for snapshots that predate the custom context.
        if (const json::Value* build = context->find("liquidd_build_type")) {
            snap.build_type = build->as_string();
        } else if (const json::Value* build = context->find("library_build_type")) {
            snap.build_type = build->as_string();
        }
    }
    for (const json::Value& entry : doc.at("benchmarks").as_array()) {
        if (const json::Value* run_type = entry.find("run_type")) {
            if (run_type->as_string() != "iteration") continue;
        }
        const double scale = unit_to_ns(entry.at("time_unit").as_string());
        snap.times[entry.at("name").as_string()] = entry.at(metric).as_number() * scale;
    }
    return snap;
}

std::string format_delta(double delta) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.1f%%", delta * 100.0);
    return buf;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args = parse_args(argc, argv);
    Snapshot base, cand;
    try {
        base = load_snapshot(args.baseline, args.metric);
        cand = load_snapshot(args.candidate, args.metric);
    } catch (const std::exception& e) {
        std::cerr << "bench_diff: " << e.what() << '\n';
        return 2;
    }

    const bool build_mismatch = base.build_type != cand.build_type;
    if (build_mismatch) {
        std::cerr << "bench_diff: WARNING: build-type mismatch — baseline is '"
                  << (base.build_type.empty() ? "unknown" : base.build_type)
                  << "', candidate is '"
                  << (cand.build_type.empty() ? "unknown" : cand.build_type)
                  << "'; deltas between different build types are meaningless"
                  << (args.strict ? "" : " (pass --strict to fail on this)") << "\n";
    }

    ld::support::TablePrinter table(
        {"benchmark", "base_ms", "cand_ms", "delta", "status"}, 4);
    std::size_t compared = 0, regressions = 0, added = 0, removed = 0;
    for (const auto& [name, base_ns] : base.times) {
        const auto it = cand.times.find(name);
        if (it == cand.times.end()) {
            ++removed;
            table.add_row({name, base_ns / 1e6, std::string("-"), std::string("-"),
                           std::string("removed")});
            continue;
        }
        ++compared;
        const double cand_ns = it->second;
        const double delta = base_ns > 0.0 ? (cand_ns - base_ns) / base_ns : 0.0;
        std::string status = "ok";
        if (delta > args.threshold) {
            status = "SLOW";
            ++regressions;
        } else if (delta < -args.threshold) {
            status = "fast";
        }
        table.add_row({name, base_ns / 1e6, cand_ns / 1e6, format_delta(delta), status});
    }
    for (const auto& [name, cand_ns] : cand.times) {
        if (base.times.count(name)) continue;
        ++added;
        table.add_row({name, std::string("-"), cand_ns / 1e6, std::string("-"),
                       std::string("added")});
    }

    table.print(std::cout);
    std::cout << compared << " compared (" << args.metric << "), " << regressions
              << " regression" << (regressions == 1 ? "" : "s") << " past +"
              << args.threshold * 100.0 << "%, " << added << " added, " << removed
              << " removed\n";
    if (regressions > 0) {
        std::cout << "FAIL: candidate is slower than baseline past the threshold\n";
        return 1;
    }
    if (args.strict && build_mismatch) {
        std::cout << "FAIL: --strict build-type mismatch between snapshots\n";
        return 1;
    }
    return 0;
}
