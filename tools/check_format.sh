#!/usr/bin/env bash
# Check-only clang-format gate: lines *changed since the base ref* must
# conform to .clang-format; the legacy tree is never mass-reformatted.
#
#   tools/check_format.sh [<base-ref>]     (default: origin/main)
#
# Exits nonzero and prints the offending diff when changed lines are
# misformatted.  Requires clang-format and git-clang-format.

set -euo pipefail

base="${1:-origin/main}"
if ! git rev-parse --verify --quiet "$base" >/dev/null; then
    echo "check_format: base ref '$base' not found; skipping" >&2
    exit 0
fi
merge_base=$(git merge-base "$base" HEAD)

diff_output=$(git clang-format --diff --quiet "$merge_base" -- \
    src tests bench tools examples 2>/dev/null || true)
case "$diff_output" in
    ""|*"no modified files to format"*|*"did not modify any files"*)
        echo "check_format: changed lines are clang-format clean"
        ;;
    *)
        echo "$diff_output"
        echo
        echo "check_format: FAIL — run 'git clang-format $merge_base' and commit" >&2
        exit 1
        ;;
esac
