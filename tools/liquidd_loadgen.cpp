// liquidd_loadgen — QPS replay client for `liquidd serve`.
//
// Reads a JSON-lines file of liquidd.rpc.v1 request templates (ids are
// assigned here, sequentially), connects over a Unix-domain socket or
// TCP loopback, and replays the file at a target rate with pipelined
// writer/reader pairs: writers pace sends against the wall clock, the
// readers match responses back to send timestamps.  The summary reports
// achieved throughput, latency percentiles, and a per-error-code
// breakdown — `overloaded` counts here are the admission controller
// working, not a failure.
//
//   liquidd_loadgen --socket /tmp/liquidd.sock --requests reqs.jsonl \
//       --qps 200 --repeat 10
//
// `--connections N` opens N concurrent sockets; request i is owned by
// connection i mod N, but all sends pace against one global schedule
// (request i goes out at start + i/qps regardless of which connection
// carries it), so the server sees the target aggregate rate spread over
// N live connections.  Ids stay globally unique and latencies are
// merged before the percentile report.
//
// `--preload '<instance.load params>'` loads an instance first and
// substitutes its fingerprint for the string "@instance" in templates,
// so request files can exercise the micro-batched cached-eval path
// without knowing fingerprints up front.
//
// `--slo-p99-ms <t>` and `--min-qps <q>` turn the summary into a CI
// gate: after a complete replay the observed p99 latency and achieved
// throughput are checked against the bounds and the exit status is 1 on
// any breach, with a printed verdict per bound.  Walkthrough:
// docs/SERVING.md.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/net.hpp"

namespace json = ld::support::json;
namespace net = ld::support::net;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
    std::string unix_socket;
    int tcp_port = -1;
    std::string requests_path;
    double qps = 0.0;          ///< 0 = as fast as the sockets allow
    std::size_t repeat = 1;    ///< replay the file this many times
    std::size_t connections = 1;  ///< concurrent sockets
    std::string preload;       ///< instance.load params JSON ("" = none)
    std::size_t churn = 0;     ///< synthesize this many patch/state requests
    std::uint64_t churn_seed = 1;  ///< op-stream seed (replayable)
    std::size_t state_every = 8;   ///< every k-th churn request is instance.state
    bool fail_on_error = false;  ///< exit 1 if any response has ok=false
    double slo_p99_ms = 0.0;   ///< 0 = no latency gate
    double min_qps = 0.0;      ///< 0 = no throughput gate
    bool help = false;
};

constexpr const char* kUsage = R"(liquidd_loadgen — QPS replay client for `liquidd serve`

usage: liquidd_loadgen (--socket <path> | --tcp <port>)
                       (--requests <file.jsonl> | --churn <n>)
                       [--qps <rate>] [--repeat <n>] [--connections <n>]
                       [--preload <params-json>] [--fail-on-error]
                       [--slo-p99-ms <ms>] [--min-qps <rate>]

  --socket <path>      connect to a Unix-domain server socket
  --tcp <port>         connect to 127.0.0.1:<port>
  --requests <file>    JSON-lines request templates (ids assigned here)
  --churn <n>          synthesize n delegation-churn requests instead of
                       reading --requests: a deterministic stream of
                       single-op instance.patch requests (delegate / vote /
                       abstain / competency) with every k-th request an
                       instance.state readback; requires --preload
                       (docs/CHURN.md)
  --churn-seed <s>     seed for the synthesized op stream (default 1; the
                       same seed replays the same ops)
  --state-every <k>    instance.state readback cadence in churn mode
                       (default 8; 0 = never)
  --qps <rate>         target aggregate send rate (default 0 = unpaced)
  --repeat <n>         replay the file n times (default 1)
  --connections <n>    spread the replay over n concurrent sockets
                       (default 1; pacing stays global)
  --preload <params>   instance.load with these params first; the returned
                       fingerprint replaces "@instance" in templates
  --fail-on-error      exit 1 when any response has ok=false (CI smoke;
                       per-op "applied": false inside an ok patch response
                       is not an error)
  --slo-p99-ms <ms>    exit 1 when observed p99 latency exceeds this bound
  --min-qps <rate>     exit 1 when achieved throughput falls below this
  --help               show this text

Exit status: 0 on a complete replay (every request answered, every
response well-formed, every SLO bound met); 1 on transport failure,
malformed responses, missing responses, --fail-on-error with error
responses, or an SLO breach; 2 on usage errors.
)";

[[noreturn]] void usage_error(const std::string& what) {
    std::cerr << "liquidd_loadgen: " << what << "\n" << kUsage;
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options options;
    const std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& flag = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size()) usage_error(flag + ": missing value");
            return args[++i];
        };
        if (flag == "--socket") options.unix_socket = next();
        else if (flag == "--tcp") options.tcp_port = std::stoi(next());
        else if (flag == "--requests") options.requests_path = next();
        else if (flag == "--qps") options.qps = std::stod(next());
        else if (flag == "--repeat") options.repeat = std::stoul(next());
        else if (flag == "--connections") options.connections = std::stoul(next());
        else if (flag == "--preload") options.preload = next();
        else if (flag == "--churn") options.churn = std::stoul(next());
        else if (flag == "--churn-seed") options.churn_seed = std::stoull(next());
        else if (flag == "--state-every") options.state_every = std::stoul(next());
        else if (flag == "--fail-on-error") options.fail_on_error = true;
        else if (flag == "--slo-p99-ms") options.slo_p99_ms = std::stod(next());
        else if (flag == "--min-qps") options.min_qps = std::stod(next());
        else if (flag == "--help" || flag == "-h") options.help = true;
        else usage_error("unknown flag '" + flag + "'");
    }
    if (options.help) return options;
    if (options.unix_socket.empty() && options.tcp_port < 0) {
        usage_error("need --socket or --tcp");
    }
    if (options.tcp_port > 65535) usage_error("--tcp: port must be <= 65535");
    if (options.churn > 0) {
        if (!options.requests_path.empty()) {
            usage_error("--churn and --requests are mutually exclusive");
        }
        if (options.preload.empty()) {
            usage_error("--churn needs --preload (patches target the "
                        "preloaded instance)");
        }
    } else if (options.requests_path.empty()) {
        usage_error("need --requests <file.jsonl> or --churn <n>");
    }
    if (options.repeat == 0) usage_error("--repeat: must be >= 1");
    if (options.connections == 0) usage_error("--connections: must be >= 1");
    if (options.slo_p99_ms < 0) usage_error("--slo-p99-ms: must be >= 0");
    if (options.min_qps < 0) usage_error("--min-qps: must be >= 0");
    return options;
}

/// Request templates: parsed once, re-rendered per send with the
/// assigned id (and the preloaded fingerprint substituted).
std::vector<json::Value> load_templates(const std::string& path) {
    std::ifstream in(path);
    if (!in) usage_error("cannot open requests file '" + path + "'");
    std::vector<json::Value> templates;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        json::Value value;
        try {
            value = json::parse(line);
        } catch (const json::Error& e) {
            usage_error(path + ":" + std::to_string(line_no) + ": " + e.what());
        }
        if (!value.is_object() || !value.contains("method")) {
            usage_error(path + ":" + std::to_string(line_no) +
                        ": templates must be objects with a \"method\"");
        }
        templates.push_back(std::move(value));
    }
    if (templates.empty()) usage_error("'" + path + "' holds no requests");
    return templates;
}

/// SplitMix64 — the synthesized churn stream must be replayable from
/// --churn-seed alone (the CI smoke compares two runs), and the tool
/// stays standalone, so the tiny generator lives here.
std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d4a4a2f8ed22c3ULL;
    return z ^ (z >> 31);
}

/// Synthesize the churn-mode request stream: single-op instance.patch
/// templates (delegate-heavy, with vote / abstain / competency mixed in)
/// against "@instance", plus an instance.state readback every
/// `state_every` requests.  Cycle-rejected delegations are expected and
/// arrive as per-op "applied": false inside ok responses.
std::vector<json::Value> synthesize_churn(std::size_t count, std::size_t voters,
                                          std::uint64_t seed,
                                          std::size_t state_every) {
    if (voters == 0) usage_error("--churn: preloaded instance has no voters");
    std::uint64_t state = seed;
    std::vector<json::Value> templates;
    templates.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        json::Object request;
        json::Object params;
        params.emplace("instance", json::Value(std::string("@instance")));
        if (state_every > 0 && (i + 1) % state_every == 0) {
            request.emplace("method", json::Value(std::string("instance.state")));
            request.emplace("params", json::Value(std::move(params)));
            templates.emplace_back(std::move(request));
            continue;
        }
        json::Object op;
        const std::uint64_t voter = splitmix64(state) % voters;
        op.emplace("voter", json::Value(static_cast<double>(voter)));
        const std::uint64_t pick = splitmix64(state) % 8;
        if (pick < 4 && voters > 1) {  // half the ops: retarget an edge
            std::uint64_t to = splitmix64(state) % (voters - 1);
            if (to >= voter) ++to;
            op.emplace("op", json::Value(std::string("delegate")));
            op.emplace("to", json::Value(static_cast<double>(to)));
        } else if (pick < 6) {
            op.emplace("op", json::Value(std::string("vote")));
        } else if (pick == 6) {
            op.emplace("op", json::Value(std::string("abstain")));
        } else {
            op.emplace("op", json::Value(std::string("competency")));
            const double p =
                static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
            op.emplace("p", json::Value(p));
        }
        json::Array ops;
        ops.emplace_back(std::move(op));
        params.emplace("ops", json::Value(std::move(ops)));
        request.emplace("method", json::Value(std::string("instance.patch")));
        request.emplace("params", json::Value(std::move(params)));
        templates.emplace_back(std::move(request));
    }
    return templates;
}

/// Deep-copy `value` replacing every string "@instance" with
/// `fingerprint` (no-op when fingerprint is empty).
json::Value substitute(const json::Value& value, const std::string& fingerprint) {
    if (fingerprint.empty()) return value;
    if (value.is_string() && value.as_string() == "@instance") {
        return json::Value(fingerprint);
    }
    if (value.is_object()) {
        json::Object out;
        for (const auto& [key, member] : value.as_object()) {
            out.emplace(key, substitute(member, fingerprint));
        }
        return json::Value(std::move(out));
    }
    if (value.is_array()) {
        json::Array out;
        for (const auto& member : value.as_array()) {
            out.push_back(substitute(member, fingerprint));
        }
        return json::Value(std::move(out));
    }
    return value;
}

std::string render_request(const json::Value& tmpl, std::size_t id,
                           const std::string& fingerprint) {
    json::Object request;
    request.emplace("id", json::Value(static_cast<double>(id)));
    for (const auto& [key, member] : tmpl.as_object()) {
        if (key == "id") continue;  // template ids are ignored
        request.emplace(key, substitute(member, fingerprint));
    }
    return json::dump(json::Value(std::move(request)));
}

double percentile(const std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// One socket plus its line reader; the constructor checks the
/// liquidd.rpc.v1 handshake.
struct Connection {
    net::Socket socket;
    net::LineReader reader;

    explicit Connection(net::Socket s) : socket(std::move(s)), reader(socket) {
        std::string line;
        if (!reader.read_line(line)) {
            throw std::runtime_error("server closed before the handshake");
        }
        const json::Value handshake = json::parse(line);
        if (handshake.at("schema").as_string() != "liquidd.rpc.v1") {
            throw std::runtime_error("unexpected schema '" +
                                     handshake.at("schema").as_string() + "'");
        }
    }
};

std::unique_ptr<Connection> open_connection(const Options& options) {
    return std::make_unique<Connection>(
        options.unix_socket.empty()
            ? net::connect_tcp_loopback(static_cast<std::uint16_t>(options.tcp_port))
            : net::connect_unix(options.unix_socket));
}

}  // namespace

int main(int argc, char** argv) {
    const Options options = parse_args(argc, argv);
    if (options.help) {
        std::cout << kUsage;
        return 0;
    }

    try {
        std::vector<json::Value> templates;
        if (options.churn == 0) templates = load_templates(options.requests_path);

        std::vector<std::unique_ptr<Connection>> conns;
        conns.reserve(options.connections);
        for (std::size_t c = 0; c < options.connections; ++c) {
            conns.push_back(open_connection(options));
        }
        std::cout << "connected: " << options.connections << " connection(s)\n";

        // Optional instance preload over connection 0, before the clock
        // starts: its fingerprint patches "@instance" placeholders.
        std::string fingerprint;
        if (!options.preload.empty()) {
            json::Object load;
            load.emplace("id", json::Value(0.0));
            load.emplace("method", json::Value(std::string("instance.load")));
            load.emplace("params", json::parse(options.preload));
            net::write_line(conns[0]->socket, json::dump(json::Value(std::move(load))));
            std::string line;
            if (!conns[0]->reader.read_line(line)) {
                std::cerr << "liquidd_loadgen: no response to --preload\n";
                return 1;
            }
            const json::Value response = json::parse(line);
            if (!response.at("ok").as_bool()) {
                std::cerr << "liquidd_loadgen: --preload failed: " << line << "\n";
                return 1;
            }
            fingerprint = response.at("result").at("instance").as_string();
            std::cout << "preloaded instance " << fingerprint << "\n";
            if (options.churn > 0) {
                const auto voters = static_cast<std::size_t>(
                    response.at("result").at("voters").as_number());
                templates = synthesize_churn(options.churn, voters,
                                             options.churn_seed,
                                             options.state_every);
                std::cout << "churn mode: " << templates.size()
                          << " synthesized request(s), seed "
                          << options.churn_seed << "\n";
            }
        }

        const std::size_t total = templates.size() * options.repeat;
        std::vector<Clock::time_point> sent_at(total);
        std::vector<double> latencies_ms;
        latencies_ms.reserve(total);
        std::map<std::string, std::size_t> outcomes;  // "ok" or an error code
        std::size_t malformed = 0;
        std::mutex mutex;  // guards sent_at reads vs writes, and the tallies

        // Request i is owned by connection i mod N, so per-connection
        // response counts are known up front and every id stays unique.
        const auto owned_count = [&](std::size_t c) {
            return total / options.connections +
                   (c < total % options.connections ? 1 : 0);
        };

        const auto period =
            options.qps > 0
                ? std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(1.0 / options.qps))
                : Clock::duration::zero();
        const Clock::time_point start = Clock::now();

        std::vector<std::thread> collectors;
        std::vector<std::thread> writers;
        collectors.reserve(options.connections);
        writers.reserve(options.connections);
        for (std::size_t c = 0; c < options.connections; ++c) {
            collectors.emplace_back([&, c] {
                Connection& conn = *conns[c];
                std::string response_line;
                const std::size_t expected = owned_count(c);
                for (std::size_t received = 0; received < expected; ++received) {
                    if (!conn.reader.read_line(response_line)) break;
                    const Clock::time_point now = Clock::now();
                    std::lock_guard<std::mutex> lock(mutex);
                    try {
                        const json::Value response = json::parse(response_line);
                        const std::size_t id =
                            static_cast<std::size_t>(response.at("id").as_number());
                        if (id < 1 || id > total) throw json::Error("id out of range");
                        latencies_ms.push_back(
                            std::chrono::duration<double, std::milli>(
                                now - sent_at[id - 1])
                                .count());
                        if (response.at("ok").as_bool()) {
                            ++outcomes["ok"];
                        } else {
                            ++outcomes[response.at("error").at("code").as_string()];
                        }
                    } catch (const json::Error&) {
                        ++malformed;
                    }
                }
            });
            writers.emplace_back([&, c] {
                Connection& conn = *conns[c];
                for (std::size_t i = c; i < total; i += options.connections) {
                    // Pace against the *global* schedule: request i goes
                    // out at start + period*i no matter which connection
                    // carries it.
                    if (period.count() > 0) {
                        std::this_thread::sleep_until(start + period * i);
                    }
                    const std::string request = render_request(
                        templates[i % templates.size()], i + 1, fingerprint);
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        sent_at[i] = Clock::now();
                    }
                    net::write_line(conn.socket, request);
                }
            });
        }
        for (auto& writer : writers) writer.join();
        for (auto& collector : collectors) collector.join();
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();

        std::size_t answered = 0;
        std::size_t errors = 0;
        std::ostringstream breakdown;
        for (const auto& [code, count] : outcomes) {
            answered += count;
            if (code != "ok") errors += count;
            breakdown << "  " << code << ": " << count;
        }
        std::sort(latencies_ms.begin(), latencies_ms.end());
        const double achieved_qps = elapsed > 0 ? answered / elapsed : 0.0;
        const double p99 = percentile(latencies_ms, 0.99);

        std::cout << "loadgen: " << answered << "/" << total << " answered in "
                  << elapsed << " s (" << achieved_qps << " req/s, "
                  << options.connections << " connection(s))\n"
                  << breakdown.str() << "\n"
                  << "  latency ms: p50 " << percentile(latencies_ms, 0.50) << "  p90 "
                  << percentile(latencies_ms, 0.90) << "  p99 " << p99 << "  max "
                  << (latencies_ms.empty() ? 0.0 : latencies_ms.back()) << "\n";

        if (malformed > 0) {
            std::cerr << "liquidd_loadgen: " << malformed << " malformed response(s)\n";
            return 1;
        }
        if (answered != total) {
            std::cerr << "liquidd_loadgen: " << (total - answered)
                      << " request(s) unanswered (server drained early?)\n";
            return 1;
        }
        if (options.fail_on_error && errors > 0) {
            std::cerr << "liquidd_loadgen: " << errors
                      << " error response(s) with --fail-on-error\n";
            return 1;
        }

        // SLO gates run only after a complete replay, so a breach is a
        // latency/throughput verdict, never a masked transport failure.
        bool slo_failed = false;
        if (options.slo_p99_ms > 0) {
            const bool ok = p99 <= options.slo_p99_ms;
            std::cout << "slo p99: " << (ok ? "OK" : "FAIL") << " (observed " << p99
                      << " ms, bound " << options.slo_p99_ms << " ms)\n";
            slo_failed = slo_failed || !ok;
        }
        if (options.min_qps > 0) {
            const bool ok = achieved_qps >= options.min_qps;
            std::cout << "slo qps: " << (ok ? "OK" : "FAIL") << " (achieved "
                      << achieved_qps << " req/s, bound " << options.min_qps
                      << " req/s)\n";
            slo_failed = slo_failed || !ok;
        }
        if (slo_failed) {
            std::cerr << "liquidd_loadgen: SLO breach\n";
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "liquidd_loadgen: " << e.what() << "\n";
        return 1;
    }
}
