// Configuration for the streaming graph-generation subsystem (KaGen-style
// facade, see docs/GENERATORS.md): one config object names a family plus
// its parameters, a seed, and the execution shape (chunk size, shard,
// threads, memory budget).  Generation is *cell-deterministic*: every
// family partitions its work into fixed cells whose RNG streams are
// derived from (seed, cell index) alone, so the resulting CSR is
// byte-identical for any chunk size, shard partition, or thread count.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ld::gen {

/// Graph families the streaming facade can produce.
enum class Family {
    Complete,        ///< K_n (paper §4.1); quadratic — small n only
    Star,            ///< vertex 0 is the centre (Figure 1)
    Gnp,             ///< Erdős–Rényi G(n,p), per-row Batagelj–Brandes skip
    Gnm,             ///< G(n,m)-style: m uniform draws, deduplicated
    DOut,            ///< each vertex samples d distinct targets (Algorithm 2)
    DRegular,        ///< configuration model (legacy bridge, not streaming)
    BarabasiAlbert,  ///< preferential attachment via hash-resolved edge copies
    WattsStrogatz,   ///< ring lattice with independent rewiring
    ChungLu,         ///< prescribed power-law expected degrees (Thm 4/5 regime)
    Hyperbolic,      ///< 1-D threshold GIRG: power law + geometric locality
    Rmat,            ///< Kronecker/R-MAT quadrant recursion
};

/// Canonical lowercase family name ("chunglu", "hyperbolic", ...).
std::string_view family_name(Family family) noexcept;

/// Parse a family name; throws support::ContractViolation on junk.
Family parse_family(std::string_view name);

/// Shard slice: generate only cells with index % count == index, exactly
/// like the sweep engine's --shard i/k.  The union of all shards' edge
/// sets equals the unsharded run's edge set.
struct ShardSpec {
    std::size_t index = 0;
    std::size_t count = 1;
};

/// Full description of one generation task.
struct GeneratorConfig {
    Family family = Family::Gnp;
    std::size_t n = 0;            ///< vertex count (>= 1, fits graph::Vertex)
    std::uint64_t seed = 1;       ///< root seed for per-cell derivation

    // Execution shape.  None of these affect the generated edge set.
    std::size_t chunk_edges = 1 << 16;  ///< edges per flush into the sink
    ShardSpec shard;
    std::size_t threads = 1;      ///< worker threads (0 = auto: pool size)
    /// Peak-byte cap on the chunked-CSR pipeline (0 = unlimited); the
    /// builder estimates its footprint after the degree pass and refuses
    /// to allocate past this.  Env override: LIQUIDD_GEN_BUDGET_MB.
    std::size_t memory_budget_bytes = 0;

    // Family parameters (each family reads the fields it needs).
    double p = 0.0;               ///< gnp: edge probability
    std::size_t edges = 0;        ///< gnm / rmat: number of edge draws
    std::size_t degree = 0;       ///< dout: d; dregular: d; ba: m; ws: k
    double beta = 0.0;            ///< ws: rewiring probability
    double gamma = 2.5;           ///< chunglu / hyperbolic: power-law exponent
    double avg_degree = 8.0;      ///< chunglu / hyperbolic: target mean degree
    double max_weight = 0.0;      ///< chunglu / hyperbolic: cap on expected
                                  ///< degree of any vertex (0 = natural
                                  ///< sqrt-cutoff for chunglu, uncapped
                                  ///< for hyperbolic)
    double rmat_a = 0.57;         ///< rmat quadrant probabilities
    double rmat_b = 0.19;         ///< (d = 1 - a - b - c)
    double rmat_c = 0.19;

    /// Validate the family-independent fields (n, shard, chunk size) and
    /// the family parameters; throws support::ContractViolation.
    void validate() const;

    /// One-line human-readable description for logs.
    std::string describe() const;
};

/// Per-cell seed derivation — the sweep engine's SplitMix64 pattern
/// (`experiments::derive_cell_seed`), reused so any cell regenerates
/// byte-identically in isolation.
std::uint64_t derive_cell_seed(std::uint64_t graph_seed, std::size_t cell_index);

/// Stateless 64-bit hash of (seed, tag, index): a random-access stream for
/// families that must re-derive another cell's draw on demand (the
/// Barabási–Albert edge-copy resolution, positions/weights in the
/// geometric families).  Tags keep the streams disjoint from cell seeds.
std::uint64_t hash_draw(std::uint64_t seed, std::uint64_t tag,
                        std::uint64_t index) noexcept;

}  // namespace ld::gen
