#include "gen/factory.hpp"

#include <string>

#include "gen/families.hpp"
#include "support/expect.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"

namespace ld::gen {

std::unique_ptr<StreamingGenerator> Factory::create(GeneratorConfig config) {
    switch (config.family) {
        case Family::Complete:
            return std::make_unique<CompleteGen>(std::move(config));
        case Family::Star:
            return std::make_unique<StarGen>(std::move(config));
        case Family::Gnp:
            return std::make_unique<GnpGen>(std::move(config));
        case Family::Gnm:
            return std::make_unique<GnmGen>(std::move(config));
        case Family::DOut:
            return std::make_unique<DOutGen>(std::move(config));
        case Family::DRegular:
            return std::make_unique<DRegularGen>(std::move(config));
        case Family::BarabasiAlbert:
            return std::make_unique<BarabasiAlbertGen>(std::move(config));
        case Family::WattsStrogatz:
            return std::make_unique<WattsStrogatzGen>(std::move(config));
        case Family::ChungLu:
            return std::make_unique<ChungLuGen>(std::move(config));
        case Family::Hyperbolic:
            return std::make_unique<HyperbolicGen>(std::move(config));
        case Family::Rmat:
            return std::make_unique<RmatGen>(std::move(config));
    }
    support::expects(false, "gen: unknown family");
    return nullptr;  // unreachable
}

graph::Graph generate_graph(const GeneratorConfig& config, BuildStats* stats) {
    auto& registry = support::MetricsRegistry::global();
    auto& latency = registry.histogram(
        "gen." + std::string(family_name(config.family)) + ".generate_seconds");

    const support::Stopwatch timer;
    auto generator = Factory::create(config);
    BuildStats local;
    graph::Graph graph = build_chunked_csr(*generator, &local);
    latency.record(timer.elapsed_seconds());

    registry.counter("gen.edges_emitted").add(local.edges_emitted);
    registry.counter("gen.chunks").add(local.chunks);
    registry.gauge("gen.csr_peak_bytes")
        .set(static_cast<std::int64_t>(local.peak_bytes));
    if (stats != nullptr) *stats = local;
    return graph;
}

}  // namespace ld::gen
