#include "gen/config.hpp"

#include <limits>
#include <sstream>

#include "graph/graph.hpp"
#include "rng/rng.hpp"
#include "support/expect.hpp"

namespace ld::gen {

using support::expects;

std::string_view family_name(Family family) noexcept {
    switch (family) {
        case Family::Complete: return "complete";
        case Family::Star: return "star";
        case Family::Gnp: return "gnp";
        case Family::Gnm: return "gnm";
        case Family::DOut: return "dout";
        case Family::DRegular: return "dregular";
        case Family::BarabasiAlbert: return "ba";
        case Family::WattsStrogatz: return "ws";
        case Family::ChungLu: return "chunglu";
        case Family::Hyperbolic: return "hyperbolic";
        case Family::Rmat: return "rmat";
    }
    return "unknown";
}

Family parse_family(std::string_view name) {
    for (Family family :
         {Family::Complete, Family::Star, Family::Gnp, Family::Gnm, Family::DOut,
          Family::DRegular, Family::BarabasiAlbert, Family::WattsStrogatz,
          Family::ChungLu, Family::Hyperbolic, Family::Rmat}) {
        if (name == family_name(family)) return family;
    }
    expects(false, "parse_family: unknown family '" + std::string(name) + "'");
    return Family::Gnp;  // unreachable
}

void GeneratorConfig::validate() const {
    expects(n >= 1, "gen: n must be >= 1");
    expects(n <= std::numeric_limits<graph::Vertex>::max(),
            "gen: n exceeds the vertex id range");
    expects(chunk_edges >= 1, "gen: chunk_edges must be >= 1");
    expects(shard.count >= 1, "gen: shard count must be >= 1");
    expects(shard.index < shard.count, "gen: shard index must be < shard count");
    switch (family) {
        case Family::Complete:
        case Family::Star:
            break;
        case Family::Gnp:
            expects(p >= 0.0 && p <= 1.0, "gen: gnp p out of [0,1]");
            break;
        case Family::Gnm:
        case Family::Rmat:
            expects(edges >= 1, "gen: need edges >= 1");
            if (family == Family::Rmat) {
                expects(rmat_a > 0.0 && rmat_b >= 0.0 && rmat_c >= 0.0 &&
                            rmat_a + rmat_b + rmat_c < 1.0,
                        "gen: rmat probabilities must be positive with a+b+c < 1");
            }
            break;
        case Family::DOut:
        case Family::DRegular:
            expects(degree >= 1 && degree < n, "gen: need 1 <= d < n");
            if (family == Family::DRegular) {
                expects(n % 2 == 0 || degree % 2 == 0, "gen: dregular needs n*d even");
            }
            break;
        case Family::BarabasiAlbert:
            expects(degree >= 1 && degree < n, "gen: ba needs 1 <= m < n");
            break;
        case Family::WattsStrogatz:
            expects(degree >= 2 && degree % 2 == 0 && degree < n,
                    "gen: ws needs even 2 <= k < n");
            expects(beta >= 0.0 && beta <= 1.0, "gen: ws beta out of [0,1]");
            break;
        case Family::ChungLu:
        case Family::Hyperbolic:
            expects(gamma > 2.0, "gen: power-law exponent must be > 2");
            expects(avg_degree > 0.0, "gen: avg_degree must be > 0");
            expects(max_weight >= 0.0, "gen: max_weight must be >= 0");
            break;
    }
}

std::string GeneratorConfig::describe() const {
    std::ostringstream os;
    os << family_name(family) << " n=" << n << " seed=" << seed;
    switch (family) {
        case Family::Gnp: os << " p=" << p; break;
        case Family::Gnm: os << " m=" << edges; break;
        case Family::Rmat:
            os << " m=" << edges << " abc=" << rmat_a << ',' << rmat_b << ','
               << rmat_c;
            break;
        case Family::DOut:
        case Family::DRegular:
        case Family::BarabasiAlbert: os << " d=" << degree; break;
        case Family::WattsStrogatz: os << " k=" << degree << " beta=" << beta; break;
        case Family::ChungLu:
        case Family::Hyperbolic:
            os << " gamma=" << gamma << " avgdeg=" << avg_degree;
            if (max_weight > 0.0) os << " maxw=" << max_weight;
            break;
        default: break;
    }
    if (shard.count > 1) os << " shard=" << shard.index << '/' << shard.count;
    return os.str();
}

std::uint64_t derive_cell_seed(std::uint64_t graph_seed, std::size_t cell_index) {
    rng::SplitMix64 base(graph_seed);
    rng::SplitMix64 cell(base.next() ^
                         (0x9e3779b97f4a7c15ULL *
                          (static_cast<std::uint64_t>(cell_index) + 1)));
    return cell.next();
}

std::uint64_t hash_draw(std::uint64_t seed, std::uint64_t tag,
                        std::uint64_t index) noexcept {
    // One SplitMix64 step over a mixed word: statistically strong enough
    // for positions/weights and the BA copy-resolution, and O(1) random
    // access — no stream state to replay.
    rng::SplitMix64 mix(seed ^ (tag * 0xbf58476d1ce4e5b9ULL) ^
                        (index * 0x94d049bb133111ebULL));
    return mix.next();
}

}  // namespace ld::gen
