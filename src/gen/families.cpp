#include "gen/families.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/rng.hpp"
#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::gen {

using graph::Vertex;
using support::expects;

namespace {

// hash_draw stream tags; any distinct constants keep the streams disjoint.
constexpr std::uint64_t kBaTag = 0x1bab1ed6e5ULL;
constexpr std::uint64_t kPosTag = 0x6e0c00cdULL;

/// Map a 64-bit hash onto [0, bound) by fixed-point multiply — the
/// deterministic cousin of Rng::next_below for stateless draws.
std::uint64_t bounded(std::uint64_t h, std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(h) * bound) >> 64);
}

/// Geometric skip length for probability `p` in (0, 1) from uniform `r`:
/// the number of misses before the next hit in a Bernoulli(p) row.
/// Returned as double so callers can range-check before casting.
double geometric_skip(double r, double log1mp) noexcept {
    return std::floor(std::log1p(-r) / log1mp);
}

}  // namespace

// ---------------------------------------------------------------- complete

CompleteGen::CompleteGen(GeneratorConfig config)
    : StreamingGenerator(std::move(config)) {}

void CompleteGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const auto u = static_cast<Vertex>(cell);
    const std::size_t n = config().n;
    for (std::size_t v = cell + 1; v < n; ++v) {
        out.emit(u, static_cast<Vertex>(v));
    }
}

double CompleteGen::edge_estimate() const {
    const double n = static_cast<double>(config().n);
    return n * (n - 1.0) / 2.0;
}

// -------------------------------------------------------------------- star

StarGen::StarGen(GeneratorConfig config) : StreamingGenerator(std::move(config)) {}

void StarGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    if (cell == 0) return;
    out.emit(0, static_cast<Vertex>(cell));
}

double StarGen::edge_estimate() const {
    return static_cast<double>(config().n) - 1.0;
}

// --------------------------------------------------------------------- gnp

GnpGen::GnpGen(GeneratorConfig config) : StreamingGenerator(std::move(config)) {}

void GnpGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const double p = config().p;
    if (cell == 0 || p <= 0.0) return;
    const auto v = static_cast<Vertex>(cell);
    if (p >= 1.0) {
        for (std::size_t u = 0; u < cell; ++u) out.emit(static_cast<Vertex>(u), v);
        return;
    }
    // Batagelj–Brandes: geometric skips over the partners u < v.
    rng::Rng row(derive_cell_seed(config().seed, cell));
    const double log1mp = std::log1p(-p);
    std::size_t u = 0;
    while (u < cell) {
        const double skip = geometric_skip(row.next_double(), log1mp);
        if (skip >= static_cast<double>(cell - u)) break;
        u += static_cast<std::size_t>(skip);
        out.emit(static_cast<Vertex>(u), v);
        ++u;
    }
}

double GnpGen::edge_estimate() const {
    const double n = static_cast<double>(config().n);
    return config().p * n * (n - 1.0) / 2.0;
}

// --------------------------------------------------------------------- gnm

GnmGen::GnmGen(GeneratorConfig config) : StreamingGenerator(std::move(config)) {}

std::size_t GnmGen::cell_count() const {
    return (config().edges + kEdgeCellDraws - 1) / kEdgeCellDraws;
}

void GnmGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const std::size_t n = config().n;
    const std::size_t begin = cell * kEdgeCellDraws;
    const std::size_t end = std::min(config().edges, begin + kEdgeCellDraws);
    rng::Rng block(derive_cell_seed(config().seed, cell));
    for (std::size_t draw = begin; draw < end; ++draw) {
        const auto u = static_cast<Vertex>(block.next_below(n));
        const auto v = static_cast<Vertex>(block.next_below(n));
        out.emit(u, v);  // self-loops dropped, duplicates collapse in the sink
    }
}

double GnmGen::edge_estimate() const {
    const double n = static_cast<double>(config().n);
    return std::min(static_cast<double>(config().edges), n * (n - 1.0) / 2.0);
}

// -------------------------------------------------------------------- dout

DOutGen::DOutGen(GeneratorConfig config) : StreamingGenerator(std::move(config)) {}

void DOutGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const auto v = static_cast<Vertex>(cell);
    rng::Rng row(derive_cell_seed(config().seed, cell));
    // Sample d distinct targets from the n-1 other vertices.
    for (std::size_t t :
         rng::sample_without_replacement(row, config().n - 1, config().degree)) {
        const std::size_t target = t < cell ? t : t + 1;
        out.emit(v, static_cast<Vertex>(target));
    }
}

double DOutGen::edge_estimate() const {
    return static_cast<double>(config().n) * static_cast<double>(config().degree);
}

// ---------------------------------------------------------------- dregular

namespace {

constexpr std::uint64_t kDregTag = 0xd4e60157ab5ULL;

/// One forward pass of the 4-round Feistel network over 2·half_bits bits.
/// Keyed by (seed, round) through hash_draw, so the permutation is a
/// pure function of the graph seed — no state, random access per stub.
std::uint64_t feistel_pass(std::uint64_t x, std::uint64_t seed,
                           std::uint32_t half_bits) noexcept {
    const std::uint64_t mask = (std::uint64_t{1} << half_bits) - 1;
    std::uint64_t left = x >> half_bits;
    std::uint64_t right = x & mask;
    for (std::uint64_t round = 0; round < 4; ++round) {
        const std::uint64_t next =
            left ^ (hash_draw(seed, kDregTag + round, right) & mask);
        left = right;
        right = next;
    }
    return (left << half_bits) | right;
}

}  // namespace

DRegularGen::DRegularGen(GeneratorConfig config)
    : StreamingGenerator(std::move(config)) {
    stub_count_ = static_cast<std::uint64_t>(this->config().n) *
                  static_cast<std::uint64_t>(this->config().degree);
    // Smallest balanced Feistel domain 2^(2·half_bits) >= stub_count_;
    // cycle-walking shrinks it onto [0, stub_count_) below.
    while ((std::uint64_t{1} << (2 * half_bits_)) < stub_count_) ++half_bits_;
}

std::uint64_t DRegularGen::permuted_stub(std::uint64_t index) const {
    // Cycle-walking: re-apply the domain permutation until the image
    // lands inside [0, stub_count_).  Expected < 4 passes (the domain is
    // less than 4x the stub count); each intermediate value outside the
    // range is visited by exactly one walk, so σ stays a permutation.
    std::uint64_t x = feistel_pass(index, config().seed, half_bits_);
    while (x >= stub_count_) x = feistel_pass(x, config().seed, half_bits_);
    return x;
}

std::size_t DRegularGen::cell_count() const {
    const std::uint64_t pairs = stub_count_ / 2;
    return static_cast<std::size_t>((pairs + kEdgeCellDraws - 1) / kEdgeCellDraws);
}

void DRegularGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const std::uint64_t d = config().degree;
    if (d == 0) return;
    const std::uint64_t pairs = stub_count_ / 2;
    const std::uint64_t begin = static_cast<std::uint64_t>(cell) * kEdgeCellDraws;
    const std::uint64_t end = std::min(pairs, begin + kEdgeCellDraws);
    for (std::uint64_t k = begin; k < end; ++k) {
        const auto u = static_cast<Vertex>(permuted_stub(2 * k) / d);
        const auto v = static_cast<Vertex>(permuted_stub(2 * k + 1) / d);
        out.emit(u, v);  // loops dropped, duplicates collapse: erased model
    }
}

double DRegularGen::edge_estimate() const {
    return static_cast<double>(config().n) * static_cast<double>(config().degree) / 2.0;
}

// ---------------------------------------------------------------------- ba

namespace {

/// Resolve the target of Barabási–Albert edge slot `j` (m edges per
/// vertex, source(j) = j / m).  Slot j's draw is uniform over the 2j + 1
/// endpoint positions written before it plus its own source; an odd
/// position k refers to the target of earlier slot k/2, which we resolve
/// by re-hashing — the chain strictly decreases, O(log) expected length.
/// Choosing an endpoint uniformly is exactly degree-proportional choice,
/// so the degree tail is the classic tau = 3 power law.
Vertex ba_target(std::uint64_t seed, std::size_t m, std::uint64_t j) {
    while (true) {
        const std::uint64_t k = bounded(hash_draw(seed, kBaTag, j), 2 * j + 1);
        if ((k & 1) == 0) return static_cast<Vertex>((k / 2) / m);
        j = k / 2;
    }
}

}  // namespace

BarabasiAlbertGen::BarabasiAlbertGen(GeneratorConfig config)
    : StreamingGenerator(std::move(config)) {}

void BarabasiAlbertGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const auto v = static_cast<Vertex>(cell);
    const std::size_t m = config().degree;
    const std::uint64_t seed = config().seed;
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t j = static_cast<std::uint64_t>(cell) * m + i;
        out.emit(v, ba_target(seed, m, j));  // self-copies drop as loops
    }
}

double BarabasiAlbertGen::edge_estimate() const {
    return static_cast<double>(config().n) * static_cast<double>(config().degree);
}

// ---------------------------------------------------------------------- ws

WattsStrogatzGen::WattsStrogatzGen(GeneratorConfig config)
    : StreamingGenerator(std::move(config)) {}

void WattsStrogatzGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const auto v = static_cast<Vertex>(cell);
    const std::size_t n = config().n;
    const std::size_t half_k = config().degree / 2;
    rng::Rng row(derive_cell_seed(config().seed, cell));
    for (std::size_t i = 1; i <= half_k; ++i) {
        const std::size_t lattice = (cell + i) % n;
        const std::size_t target =
            row.next_bernoulli(config().beta)
                ? static_cast<std::size_t>(row.next_below(n))
                : lattice;
        out.emit(v, static_cast<Vertex>(target));
    }
}

double WattsStrogatzGen::edge_estimate() const {
    return static_cast<double>(config().n) * static_cast<double>(config().degree) / 2.0;
}

// ----------------------------------------------------------------- weights

std::pair<std::vector<double>, double> power_law_weights(std::size_t n, double gamma,
                                                         double avg_degree,
                                                         double cap) {
    expects(gamma > 2.0, "power_law_weights: gamma must exceed 2");
    std::vector<double> w(n);
    const double exponent = -1.0 / (gamma - 1.0);
    double sum = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
        w[v] = std::pow(static_cast<double>(v + 1), exponent);
        sum += w[v];
    }
    const double scale = avg_degree * static_cast<double>(n) / sum;
    sum = 0.0;
    for (double& x : w) {
        x *= scale;
        if (cap > 0.0 && x > cap) x = cap;
        sum += x;
    }
    return {std::move(w), sum};
}

// ----------------------------------------------------------------- chunglu

ChungLuGen::ChungLuGen(GeneratorConfig config)
    : StreamingGenerator(std::move(config)) {}

void ChungLuGen::prepare() {
    if (!weights_.empty()) return;
    auto [w, sum] = power_law_weights(config().n, config().gamma,
                                      config().avg_degree, config().max_weight);
    // The sqrt(S) ceiling keeps w_u * w_v / S a probability for every pair.
    const double ceiling = std::sqrt(sum);
    bool clipped = false;
    for (double& x : w) {
        if (x > ceiling) {
            x = ceiling;
            clipped = true;
        }
    }
    if (clipped) sum = std::accumulate(w.begin(), w.end(), 0.0);
    weights_ = std::move(w);
    weight_sum_ = sum;
}

void ChungLuGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const std::size_t n = config().n;
    if (cell + 1 >= n) return;
    const auto u = static_cast<Vertex>(cell);
    const double wu = weights_[u];
    if (wu <= 0.0 || weight_sum_ <= 0.0) return;
    // Miller–Hagberg: partners v > u have non-increasing weights, so the
    // probability at the current position bounds all later ones — skip
    // geometrically at that bound, then thin to the exact probability.
    rng::Rng row(derive_cell_seed(config().seed, cell));
    std::size_t v = cell + 1;
    double p = std::min(1.0, wu * weights_[v] / weight_sum_);
    while (v < n && p > 0.0) {
        if (p < 1.0) {
            const double skip = geometric_skip(row.next_double(), std::log1p(-p));
            if (skip >= static_cast<double>(n - v)) break;
            v += static_cast<std::size_t>(skip);
        }
        const double q = std::min(1.0, wu * weights_[v] / weight_sum_);
        if (row.next_double() * p < q) {
            out.emit(u, static_cast<Vertex>(v));
        }
        p = q;
        ++v;
    }
}

double ChungLuGen::edge_estimate() const {
    return static_cast<double>(config().n) * config().avg_degree / 2.0;
}

std::size_t ChungLuGen::prepared_bytes() const {
    return weights_.size() * sizeof(double);
}

// -------------------------------------------------------------- hyperbolic

HyperbolicGen::HyperbolicGen(GeneratorConfig config)
    : StreamingGenerator(std::move(config)) {}

double HyperbolicGen::position(Vertex v) const {
    return static_cast<double>(hash_draw(config().seed, kPosTag, v) >> 11) *
           0x1.0p-53;
}

void HyperbolicGen::prepare() {
    if (prepared_) return;
    const std::size_t n = config().n;
    auto [w, sum] = power_law_weights(n, config().gamma, config().avg_degree,
                                      config().max_weight);
    weights_ = std::move(w);
    weight_sum_ = sum;

    // Dyadic weight layers.  Weights descend with vertex index, so each
    // layer is a run of consecutive indices; empty layers are possible
    // (large weight jumps at the top ranks) and simply spawn no tasks.
    const double w_min = weights_.back();
    const auto layer_of = [&](Vertex v) {
        return static_cast<std::size_t>(
            std::max(0.0, std::floor(std::log2(weights_[v] / w_min))));
    };
    layers_.assign(layer_of(0) + 1, Layer{});
    std::vector<std::vector<std::pair<double, Vertex>>> members(layers_.size());
    for (std::size_t v = 0; v < n; ++v) {
        const auto vert = static_cast<Vertex>(v);
        members[layer_of(vert)].emplace_back(position(vert), vert);
    }
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        std::sort(members[l].begin(), members[l].end());
        Layer& layer = layers_[l];
        layer.ids.reserve(members[l].size());
        layer.positions.reserve(members[l].size());
        for (const auto& [pos, id] : members[l]) {
            layer.positions.push_back(pos);
            layer.ids.push_back(id);
            layer.max_weight = std::max(layer.max_weight, weights_[id]);
        }
    }

    // One task per (layer pair, block of the smaller layer's members).
    // The pair radius bound uses the layers' max weights, so every true
    // edge falls inside some task's scan window.
    for (std::uint32_t a = 0; a < layers_.size(); ++a) {
        if (layers_[a].ids.empty()) continue;
        for (std::uint32_t b = a; b < layers_.size(); ++b) {
            if (layers_[b].ids.empty()) continue;
            const std::uint32_t iter =
                layers_[a].ids.size() <= layers_[b].ids.size() ? a : b;
            const std::uint32_t scan = iter == a ? b : a;
            const double radius =
                layers_[a].max_weight * layers_[b].max_weight / (2.0 * weight_sum_);
            const std::size_t count = layers_[iter].ids.size();
            for (std::size_t begin = 0; begin < count; begin += kGeoCellMembers) {
                tasks_.push_back(PairTask{iter, scan, begin,
                                          std::min(count, begin + kGeoCellMembers),
                                          radius, a == b});
            }
        }
    }
    prepared_ = true;
}

std::size_t HyperbolicGen::cell_count() const {
    expects(prepared_, "hyperbolic: cell_count before prepare()");
    return tasks_.size();
}

void HyperbolicGen::scan_window(const PairTask& task, std::size_t member,
                                ChunkBuffer& out) const {
    const Layer& it = layers_[task.iter_layer];
    const Layer& sc = layers_[task.scan_layer];
    const Vertex u = it.ids[member];
    const double xu = it.positions[member];
    const double wu = weights_[u];

    const auto try_pair = [&](std::size_t idx) {
        const Vertex v = sc.ids[idx];
        if (v == u) return;
        if (task.same_layer && v < u) return;  // each intra-layer pair once
        double d = std::abs(xu - sc.positions[idx]);
        d = std::min(d, 1.0 - d);
        if (d <= wu * weights_[v] / (2.0 * weight_sum_)) {
            out.emit(u, v);
        }
    };

    if (task.radius * 2.0 >= 1.0) {
        for (std::size_t idx = 0; idx < sc.ids.size(); ++idx) try_pair(idx);
        return;
    }
    const auto scan_range = [&](double lo, double hi) {
        const auto begin = std::lower_bound(sc.positions.begin(),
                                            sc.positions.end(), lo) -
                           sc.positions.begin();
        for (std::size_t idx = static_cast<std::size_t>(begin);
             idx < sc.positions.size() && sc.positions[idx] <= hi; ++idx) {
            try_pair(idx);
        }
    };
    const double lo = xu - task.radius;
    const double hi = xu + task.radius;
    if (lo < 0.0) {
        scan_range(0.0, hi);
        scan_range(lo + 1.0, 1.0);
    } else if (hi > 1.0) {
        scan_range(lo, 1.0);
        scan_range(0.0, hi - 1.0);
    } else {
        scan_range(lo, hi);
    }
}

void HyperbolicGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const PairTask& task = tasks_[cell];
    for (std::size_t member = task.member_begin; member < task.member_end;
         ++member) {
        scan_window(task, member, out);
    }
}

double HyperbolicGen::edge_estimate() const {
    return static_cast<double>(config().n) * config().avg_degree / 2.0;
}

std::size_t HyperbolicGen::prepared_bytes() const {
    std::size_t bytes = weights_.size() * sizeof(double);
    for (const Layer& layer : layers_) {
        bytes += layer.ids.size() * sizeof(Vertex) +
                 layer.positions.size() * sizeof(double);
    }
    return bytes + tasks_.size() * sizeof(PairTask);
}

// -------------------------------------------------------------------- rmat

RmatGen::RmatGen(GeneratorConfig config) : StreamingGenerator(std::move(config)) {}

std::size_t RmatGen::cell_count() const {
    return (config().edges + kEdgeCellDraws - 1) / kEdgeCellDraws;
}

void RmatGen::emit_cell(std::size_t cell, ChunkBuffer& out) const {
    const std::size_t n = config().n;
    std::size_t scale = 0;
    while ((std::size_t{1} << scale) < n) ++scale;
    const double a = config().rmat_a;
    const double ab = a + config().rmat_b;
    const double abc = ab + config().rmat_c;

    const std::size_t begin = cell * kEdgeCellDraws;
    const std::size_t end = std::min(config().edges, begin + kEdgeCellDraws);
    rng::Rng block(derive_cell_seed(config().seed, cell));
    for (std::size_t draw = begin; draw < end; ++draw) {
        std::size_t u = 0;
        std::size_t v = 0;
        for (std::size_t level = 0; level < scale; ++level) {
            const double r = block.next_double();
            u = (u << 1) | static_cast<std::size_t>(r >= ab);
            v = (v << 1) |
                static_cast<std::size_t>(r >= abc || (r >= a && r < ab));
        }
        // Draws on the padded 2^scale grid outside [0, n)^2 are dropped.
        if (u < n && v < n) {
            out.emit(static_cast<Vertex>(u), static_cast<Vertex>(v));
        }
    }
}

double RmatGen::edge_estimate() const {
    return static_cast<double>(config().edges);
}

}  // namespace ld::gen
