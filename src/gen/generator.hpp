// Streaming generator core: generators partition their work into fixed
// *cells* (a vertex row, a block of edge draws, a geometry tile) and emit
// each cell's edges into a chunked sink.  Cell boundaries and per-cell RNG
// streams depend only on (config, cell index) — never on chunk size,
// shard, or thread count — so the deduplicated CSR a sink accumulates is
// byte-identical however the work is sliced.  See docs/GENERATORS.md.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gen/config.hpp"
#include "graph/graph.hpp"

namespace ld::gen {

/// Consumer of edge chunks.  `accept` MUST be thread-safe: generate()
/// calls it concurrently from worker threads when config.threads > 1.
/// Edges arrive canonicalised (u < v, no self-loops) but possibly
/// duplicated across chunks; sinks that build graphs deduplicate.
class EdgeSink {
public:
    virtual ~EdgeSink() = default;
    virtual void accept(std::span<const graph::Edge> chunk) = 0;
};

/// Per-worker staging buffer between a generator cell and the sink:
/// filters self-loops, canonicalises endpoint order, and flushes to the
/// sink every `capacity` edges.
class ChunkBuffer {
public:
    ChunkBuffer(EdgeSink& sink, std::size_t capacity);

    void emit(graph::Vertex u, graph::Vertex v) {
        if (u == v) return;  // simple graphs only
        if (u > v) std::swap(u, v);
        buffer_.push_back(graph::Edge{u, v});
        if (buffer_.size() >= capacity_) flush();
    }

    /// Push any buffered edges to the sink (possibly a short chunk).
    void flush();

    std::uint64_t edges_emitted() const noexcept { return edges_; }
    std::uint64_t chunks_flushed() const noexcept { return chunks_; }

private:
    EdgeSink& sink_;
    std::size_t capacity_;
    std::vector<graph::Edge> buffer_;
    std::uint64_t edges_ = 0;
    std::uint64_t chunks_ = 0;
};

/// Edge/chunk totals for one streaming pass over a shard's cells.
struct PassTotals {
    std::uint64_t edges = 0;   ///< edges accepted by the sink
    std::uint64_t chunks = 0;  ///< accept() calls
};

/// Base class for every streaming family.  Implementations are immutable
/// after prepare(): emit_cell is const, re-runnable, and called from
/// multiple threads concurrently (on distinct ChunkBuffers).
class StreamingGenerator {
public:
    explicit StreamingGenerator(GeneratorConfig config);
    virtual ~StreamingGenerator() = default;

    StreamingGenerator(const StreamingGenerator&) = delete;
    StreamingGenerator& operator=(const StreamingGenerator&) = delete;

    const GeneratorConfig& config() const noexcept { return config_; }

    /// Number of deterministic work cells.  Valid after prepare().
    virtual std::size_t cell_count() const = 0;

    /// Emit cell `cell`'s edges.  Deterministic given (config, cell);
    /// any RNG use must come from derive_cell_seed(config.seed, cell) or
    /// hash_draw so the cell regenerates byte-identically in isolation.
    virtual void emit_cell(std::size_t cell, ChunkBuffer& out) const = 0;

    /// Build derived indexes (weights, geometry tiles).  Idempotent;
    /// generate() calls it before the first cell.
    virtual void prepare() {}

    /// Expected number of distinct edges (double: some families exceed
    /// 2^64 at absurd parameters).  Used for memory-budget pre-checks.
    virtual double edge_estimate() const = 0;

    /// Bytes of generator-owned derived state after prepare() (weight /
    /// geometry arrays); counted against the memory budget.
    virtual std::size_t prepared_bytes() const { return 0; }

    /// Stream every cell of this config's shard into `sink`, chunked to
    /// config.chunk_edges, on config.threads workers.  Re-runnable: each
    /// pass emits the identical edge stream per cell.
    PassTotals generate(EdgeSink& sink);

private:
    GeneratorConfig config_;
};

}  // namespace ld::gen
