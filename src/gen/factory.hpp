// The facade: one call turns a GeneratorConfig into a streaming generator
// or straight into a finished graph, KaGen-style.  All callers (CLI graph
// specs, sweep realisation, serve's instance.load, benches, tests) go
// through here; nobody names a family class directly.

#pragma once

#include <memory>

#include "gen/chunked_csr.hpp"
#include "gen/config.hpp"
#include "gen/generator.hpp"
#include "graph/graph.hpp"

namespace ld::gen {

class Factory {
public:
    /// Instantiate the streaming generator for `config.family`.  Validates
    /// the config (throws support::ContractViolation on bad parameters).
    static std::unique_ptr<StreamingGenerator> create(GeneratorConfig config);
};

/// Convenience: create + build_chunked_csr + gen.* metrics in one call —
/// the path `liquidd run/gen` and Instance realisation use.  Records
/// gen.edges_emitted, gen.chunks, gen.csr_peak_bytes, and the per-family
/// gen.<family>.generate_seconds histogram in the global registry.
graph::Graph generate_graph(const GeneratorConfig& config,
                            BuildStats* stats = nullptr);

}  // namespace ld::gen
