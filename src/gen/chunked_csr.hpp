// Chunked CSR emission: turns a streaming generator's edge chunks into an
// immutable graph::Graph without ever materialising a GraphBuilder edge
// list.  Two deterministic passes over the cell stream — count degrees,
// then scatter into the final CSR arrays — followed by a per-vertex
// sort + dedup + compact.  Peak memory is the final CSR plus one chunk
// buffer per worker (and a counts/cursor array), instead of the builder's
// full edge vector + CSR copy; an optional byte budget caps the pipeline.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "gen/generator.hpp"
#include "graph/graph.hpp"

namespace ld::gen {

/// Observability for one build (mirrored into the gen.* metrics by
/// generate_graph).
struct BuildStats {
    std::uint64_t edges_emitted = 0;  ///< sink-accepted edges (scatter pass)
    std::uint64_t chunks = 0;         ///< sink chunks (scatter pass)
    std::uint64_t unique_edges = 0;   ///< edges after dedup (== graph.edge_count())
    std::size_t peak_bytes = 0;       ///< estimated pipeline high-water mark
};

/// Resolve the effective memory budget: the config's value, else the
/// LIQUIDD_GEN_BUDGET_MB environment variable, else 0 (unlimited).
std::size_t effective_memory_budget(const GeneratorConfig& config);

/// Run the two-pass pipeline over `generator` (its configured shard) and
/// return the finished graph.  Throws support::ContractViolation when the
/// estimated or measured footprint exceeds the memory budget.
graph::Graph build_chunked_csr(StreamingGenerator& generator,
                               BuildStats* stats = nullptr);

/// Sink that counts per-vertex degrees (duplicates included) — pass 1.
class DegreeCountSink final : public EdgeSink {
public:
    explicit DegreeCountSink(std::size_t n) : counts_(n) {}

    void accept(std::span<const graph::Edge> chunk) override {
        for (const graph::Edge& e : chunk) {
            counts_[e.u].fetch_add(1, std::memory_order_relaxed);
            counts_[e.v].fetch_add(1, std::memory_order_relaxed);
        }
    }

    std::span<const std::atomic<std::uint32_t>> counts() const noexcept {
        return counts_;
    }

private:
    std::vector<std::atomic<std::uint32_t>> counts_;
};

/// Sink that scatters half-edges into a pre-sized CSR array — pass 2.
/// Slot claims go through per-vertex atomic cursors, so concurrent chunks
/// never collide; the slot order they produce is interleaving-dependent,
/// which the final per-vertex sort erases.
class ScatterSink final : public EdgeSink {
public:
    ScatterSink(std::span<const std::size_t> offsets, std::span<graph::Vertex> slots);

    void accept(std::span<const graph::Edge> chunk) override {
        for (const graph::Edge& e : chunk) {
            slots_[cursors_[e.u].fetch_add(1, std::memory_order_relaxed)] = e.v;
            slots_[cursors_[e.v].fetch_add(1, std::memory_order_relaxed)] = e.u;
        }
    }

private:
    std::vector<std::atomic<std::size_t>> cursors_;
    std::span<graph::Vertex> slots_;
};

/// Sink that collects raw chunks into one vector (tests, edge dumps of
/// tiny graphs).  Thread-safe via a mutex; not for large n.
class CollectSink final : public EdgeSink {
public:
    void accept(std::span<const graph::Edge> chunk) override;
    const std::vector<graph::Edge>& edges() const noexcept { return edges_; }

private:
    std::mutex mutex_;
    std::vector<graph::Edge> edges_;
};

}  // namespace ld::gen
