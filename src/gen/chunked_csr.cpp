#include "gen/chunked_csr.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "support/expect.hpp"
#include "support/thread_pool.hpp"

namespace ld::gen {

using support::expects;

ScatterSink::ScatterSink(std::span<const std::size_t> offsets,
                         std::span<graph::Vertex> slots)
    : cursors_(offsets.size() - 1), slots_(slots) {
    for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
        cursors_[v].store(offsets[v], std::memory_order_relaxed);
    }
}

void CollectSink::accept(std::span<const graph::Edge> chunk) {
    std::lock_guard lock(mutex_);
    edges_.insert(edges_.end(), chunk.begin(), chunk.end());
}

std::size_t effective_memory_budget(const GeneratorConfig& config) {
    if (config.memory_budget_bytes > 0) return config.memory_budget_bytes;
    if (const char* env = std::getenv("LIQUIDD_GEN_BUDGET_MB")) {
        char* end = nullptr;
        const unsigned long long mb = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && mb > 0) {
            return static_cast<std::size_t>(mb) << 20;
        }
    }
    return 0;
}

namespace {

/// Footprint of the pipeline for `half_edges` CSR entries: offsets +
/// counts + cursors + neighbour slots + per-worker chunk buffers.
double pipeline_bytes(const GeneratorConfig& config, double half_edges,
                      std::size_t prepared) {
    const double n = static_cast<double>(config.n);
    const std::size_t threads = config.threads == 0
                                    ? support::ThreadPool::global().worker_count()
                                    : config.threads;
    return 8.0 * (n + 1)                                       // offsets
           + 4.0 * n                                           // degree counts
           + 8.0 * n                                           // scatter cursors
           + 4.0 * half_edges                                  // neighbour slots
           + 8.0 * static_cast<double>(threads * config.chunk_edges)  // buffers
           + static_cast<double>(prepared);                    // generator state
}

void check_budget(std::size_t budget, double need_bytes, const char* phase) {
    if (budget == 0) return;
    expects(need_bytes <= static_cast<double>(budget),
            std::string("gen: memory budget exceeded (") + phase + ": need ~" +
                std::to_string(static_cast<std::size_t>(need_bytes / (1 << 20))) +
                " MB, budget " + std::to_string(budget >> 20) + " MB)");
}

}  // namespace

graph::Graph build_chunked_csr(StreamingGenerator& generator, BuildStats* stats) {
    const GeneratorConfig& config = generator.config();
    const std::size_t n = config.n;
    const std::size_t budget = effective_memory_budget(config);

    // Fail fast on configs whose *expected* footprint already busts the
    // budget (complete at n = 10^7 never even starts the degree pass).
    generator.prepare();
    check_budget(budget,
                 pipeline_bytes(config, 2.0 * generator.edge_estimate(),
                                generator.prepared_bytes()),
                 "estimate");

    // Pass 1: count half-edges per vertex (duplicates included).
    DegreeCountSink degrees(n);
    generator.generate(degrees);

    std::vector<std::size_t> offsets(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
        offsets[v + 1] =
            offsets[v] + degrees.counts()[v].load(std::memory_order_relaxed);
    }
    const std::size_t half_edges = offsets[n];
    expects(half_edges % 2 == 0, "gen: half-edge count must be even");
    check_budget(budget,
                 pipeline_bytes(config, static_cast<double>(half_edges),
                                generator.prepared_bytes()),
                 "measured");

    // Pass 2: regenerate the identical cell stream and scatter into the
    // final array.  Cursor interleaving under threads is arbitrary; the
    // per-vertex sort below restores a canonical order.
    std::vector<graph::Vertex> neighbours(half_edges);
    {
        ScatterSink scatter(offsets, neighbours);
        const PassTotals totals = generator.generate(scatter);
        if (stats != nullptr) {
            stats->edges_emitted = totals.edges;
            stats->chunks = totals.chunks;
            stats->peak_bytes = static_cast<std::size_t>(pipeline_bytes(
                config, static_cast<double>(half_edges), generator.prepared_bytes()));
        }
    }

    // Sort + dedup each adjacency range in parallel, recording the unique
    // count per vertex, then compact sequentially (write offsets depend on
    // every predecessor).
    std::vector<std::uint32_t> unique(n, 0);
    {
        const std::size_t threads = config.threads == 0
                                        ? support::ThreadPool::global().worker_count()
                                        : std::max<std::size_t>(config.threads, 1);
        const std::size_t block = std::max<std::size_t>(1, (n + threads - 1) / threads);
        support::TaskGroup group(support::ThreadPool::global());
        for (std::size_t begin = 0; begin < n; begin += block) {
            const std::size_t end = std::min(n, begin + block);
            group.submit([&, begin, end] {
                for (std::size_t v = begin; v < end; ++v) {
                    const auto first =
                        neighbours.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
                    const auto last =
                        neighbours.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
                    std::sort(first, last);
                    unique[v] = static_cast<std::uint32_t>(
                        std::distance(first, std::unique(first, last)));
                }
            });
        }
        group.wait();
    }
    std::size_t write = 0;
    for (std::size_t v = 0; v < n; ++v) {
        const std::size_t begin = offsets[v];
        offsets[v] = write;
        if (begin != write) {
            std::copy_n(neighbours.begin() + static_cast<std::ptrdiff_t>(begin),
                        unique[v],
                        neighbours.begin() + static_cast<std::ptrdiff_t>(write));
        }
        write += unique[v];
    }
    offsets[n] = write;
    neighbours.resize(write);

    if (stats != nullptr) stats->unique_edges = write / 2;
    return graph::Graph::from_csr(std::move(offsets), std::move(neighbours));
}

}  // namespace ld::gen
