#include "gen/generator.hpp"

#include "support/expect.hpp"
#include "support/thread_pool.hpp"

namespace ld::gen {

ChunkBuffer::ChunkBuffer(EdgeSink& sink, std::size_t capacity)
    : sink_(sink), capacity_(capacity) {
    support::expects(capacity >= 1, "ChunkBuffer: capacity must be >= 1");
    buffer_.reserve(capacity);
}

void ChunkBuffer::flush() {
    if (buffer_.empty()) return;
    sink_.accept(buffer_);
    edges_ += buffer_.size();
    ++chunks_;
    buffer_.clear();
}

StreamingGenerator::StreamingGenerator(GeneratorConfig config)
    : config_(std::move(config)) {
    config_.validate();
}

PassTotals StreamingGenerator::generate(EdgeSink& sink) {
    prepare();
    const std::size_t cells = cell_count();
    const ShardSpec shard = config_.shard;
    // This shard owns cells shard.index, shard.index + count, ... — the
    // same index % count == shard partition the sweep engine uses.
    const std::size_t owned =
        cells > shard.index ? (cells - shard.index - 1) / shard.count + 1 : 0;

    std::size_t threads = config_.threads == 0
                              ? support::ThreadPool::global().worker_count()
                              : config_.threads;
    if (threads > owned) threads = owned == 0 ? 1 : owned;

    PassTotals totals;
    if (threads <= 1) {
        ChunkBuffer buffer(sink, config_.chunk_edges);
        for (std::size_t c = shard.index; c < cells; c += shard.count) {
            emit_cell(c, buffer);
        }
        buffer.flush();
        totals.edges = buffer.edges_emitted();
        totals.chunks = buffer.chunks_flushed();
        return totals;
    }

    // Contiguous slices of the owned-cell progression, one buffer per
    // worker.  Slicing only affects emission order, which no sink's
    // final CSR depends on.
    std::vector<PassTotals> worker_totals(threads);
    support::TaskGroup group(support::ThreadPool::global());
    for (std::size_t w = 0; w < threads; ++w) {
        const std::size_t begin = owned * w / threads;
        const std::size_t end = owned * (w + 1) / threads;
        if (begin == end) continue;
        group.submit([this, &sink, &worker_totals, w, begin, end, shard] {
            ChunkBuffer buffer(sink, config_.chunk_edges);
            for (std::size_t i = begin; i < end; ++i) {
                emit_cell(shard.index + i * shard.count, buffer);
            }
            buffer.flush();
            worker_totals[w].edges = buffer.edges_emitted();
            worker_totals[w].chunks = buffer.chunks_flushed();
        });
    }
    group.wait();
    for (const PassTotals& t : worker_totals) {
        totals.edges += t.edges;
        totals.chunks += t.chunks;
    }
    return totals;
}

}  // namespace ld::gen
