// Streaming implementations of every generator family behind the facade.
// Vertex-centric families use one cell per vertex (row); edge-centric
// families (gnm, rmat) use fixed 64 Ki-draw blocks; the geometric family
// tiles (layer-pair, member-block) tasks.  Cell boundaries are constants
// of the family — never functions of chunk size, shard, or threads — which
// is what makes the emitted edge set reproducible slice by slice.
//
// Family → paper mapping (docs/GENERATORS.md has the full table):
//   chunglu / hyperbolic / rmat are the degree-heterogeneous regime for
//   the max-degree mechanism (Theorem 4), the min-degree mechanism
//   (Theorem 5), and the Lemma 5 max-sink-weight check (condition X3);
//   ba is the §6 "real-world networks" family; gnp/gnm/dout/ws/dregular
//   port the §4–5 topologies onto the streaming facade.

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gen/generator.hpp"

namespace ld::gen {

/// K_n.  Cell u emits (u, v) for v > u.  Quadratic: budget-guard fodder.
class CompleteGen final : public StreamingGenerator {
public:
    explicit CompleteGen(GeneratorConfig config);
    std::size_t cell_count() const override { return config().n; }
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;
};

/// Star with centre 0.  Cell v >= 1 emits (0, v).
class StarGen final : public StreamingGenerator {
public:
    explicit StarGen(GeneratorConfig config);
    std::size_t cell_count() const override { return config().n; }
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;
};

/// Erdős–Rényi G(n, p): cell v Batagelj–Brandes-skips over partners
/// u < v, so every row is an independent seedable stream.
class GnpGen final : public StreamingGenerator {
public:
    explicit GnpGen(GeneratorConfig config);
    std::size_t cell_count() const override { return config().n; }
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;
};

/// G(n, m)-style: `edges` uniform pair draws in fixed blocks; the sink
/// deduplicates, so the realised edge count is m minus collisions
/// (vanishing for sparse graphs).
class GnmGen final : public StreamingGenerator {
public:
    explicit GnmGen(GeneratorConfig config);
    std::size_t cell_count() const override;
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;
};

/// Algorithm 2's d-out graph: cell v samples d distinct targets.
class DOutGen final : public StreamingGenerator {
public:
    explicit DOutGen(GeneratorConfig config);
    std::size_t cell_count() const override { return config().n; }
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;
};

/// Random d-regular via the *erased configuration model* with a
/// stateless stub permutation: the n·d half-edge stubs are paired as
/// σ(2k) ↔ σ(2k+1) where σ is a seed-keyed 4-round Feistel permutation
/// of [0, n·d) (cycle-walking over the enclosing power of two), and stub
/// s belongs to vertex s / d.  Because σ is a *permutation*, every stub
/// is used exactly once — a global matching with no shared state, so
/// cells of kEdgeCellDraws pairs regenerate independently and the family
/// is streaming-scalable (the old bridge materialized the whole graph in
/// one cell).  Self-loops are dropped and duplicate pairs collapse in
/// the sink, so realized degrees are ≤ d with the classic O(d²/n)
/// erasure deficit — the same distributional-variant precedent as the
/// independent-rewiring Watts–Strogatz (docs/GENERATORS.md).
class DRegularGen final : public StreamingGenerator {
public:
    explicit DRegularGen(GeneratorConfig config);
    std::size_t cell_count() const override;
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;

    /// σ(index): the permuted stub, exposed for the determinism tests.
    std::uint64_t permuted_stub(std::uint64_t index) const;

private:
    std::uint64_t stub_count_ = 0;
    std::uint32_t half_bits_ = 1;  ///< Feistel halves; domain = 2^(2·half_bits)
};

/// Barabási–Albert via hash-resolved edge copies (Sanders & Schulz): the
/// target of global edge slot j is a uniform draw over the virtual
/// endpoint array E[0..2j), resolved on demand by re-hashing earlier
/// slots' draws — O(log) expected chain, no shared state, so cell v
/// (slots vm..vm+m-1) regenerates in isolation.  Degree tail τ = 3.
class BarabasiAlbertGen final : public StreamingGenerator {
public:
    explicit BarabasiAlbertGen(GeneratorConfig config);
    std::size_t cell_count() const override { return config().n; }
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;
};

/// Watts–Strogatz with *independent* rewiring: cell v owns its k/2
/// clockwise lattice edges and rewires each with probability beta to a
/// uniform endpoint (duplicates collapse in the sink).  Distributionally
/// the standard small-world variant; differs from the legacy generator's
/// sequential collision-avoiding rewires.
class WattsStrogatzGen final : public StreamingGenerator {
public:
    explicit WattsStrogatzGen(GeneratorConfig config);
    std::size_t cell_count() const override { return config().n; }
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;
};

/// Chung–Lu with rank-based power-law expected degrees w_v ∝ (v+1)^(-1/(γ-1)),
/// scaled to `avg_degree` and capped at min(max_weight, sqrt(S)) so
/// P(u ~ v) = w_u w_v / S stays a probability.  Cell u Miller–Hagberg
/// skip-samples partners v > u in O(row edges) expected.
class ChungLuGen final : public StreamingGenerator {
public:
    explicit ChungLuGen(GeneratorConfig config);
    std::size_t cell_count() const override { return config().n; }
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    void prepare() override;
    double edge_estimate() const override;
    std::size_t prepared_bytes() const override;

    double weight(graph::Vertex v) const { return weights_[v]; }
    double weight_sum() const { return weight_sum_; }

private:
    std::vector<double> weights_;  // descending in vertex index
    double weight_sum_ = 0.0;
};

/// 1-D threshold GIRG ("random hyperbolic" regime): power-law weights as
/// Chung–Lu plus a hash-derived position x_v on the unit torus; u ~ v iff
/// dist(x_u, x_v) <= w_u w_v / (2 S).  Same expected degrees as Chung–Lu
/// but with geometric locality (triangles, community structure) — the
/// social-topology stress case for Lemma 5.  Pairs are enumerated per
/// weight-layer pair over position-sorted layer arrays; no RNG at emit
/// time, so determinism is structural.
class HyperbolicGen final : public StreamingGenerator {
public:
    explicit HyperbolicGen(GeneratorConfig config);
    std::size_t cell_count() const override;
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    void prepare() override;
    double edge_estimate() const override;
    std::size_t prepared_bytes() const override;

    double weight(graph::Vertex v) const { return weights_[v]; }
    double position(graph::Vertex v) const;

private:
    struct Layer {
        std::vector<graph::Vertex> ids;   // members sorted by position
        std::vector<double> positions;    // parallel to ids, ascending
        double max_weight = 0.0;
    };
    struct PairTask {
        std::uint32_t iter_layer = 0;    // the smaller layer: iterate members
        std::uint32_t scan_layer = 0;    // window-search this layer
        std::size_t member_begin = 0;    // block of iter_layer members
        std::size_t member_end = 0;
        double radius = 0.0;             // upper bound on r_uv for the pair
        bool same_layer = false;
    };

    void scan_window(const PairTask& task, std::size_t member,
                     ChunkBuffer& out) const;

    std::vector<double> weights_;
    double weight_sum_ = 0.0;
    std::vector<Layer> layers_;
    std::vector<PairTask> tasks_;
    bool prepared_ = false;
};

/// Kronecker / R-MAT: `edges` quadrant-recursion draws in fixed blocks
/// over the 2^ceil(log2 n) grid; draws landing outside [0,n)² or on the
/// diagonal are dropped, duplicates collapse in the sink.
class RmatGen final : public StreamingGenerator {
public:
    explicit RmatGen(GeneratorConfig config);
    std::size_t cell_count() const override;
    void emit_cell(std::size_t cell, ChunkBuffer& out) const override;
    double edge_estimate() const override;
};

/// Number of draws per edge-centric cell (gnm, rmat) — a constant of the
/// subsystem: changing it would change cell boundaries and therefore the
/// generated graphs.
inline constexpr std::size_t kEdgeCellDraws = 1 << 16;

/// Members per geometric pair-task cell (hyperbolic).
inline constexpr std::size_t kGeoCellMembers = 2048;

/// Power-law weight sequence shared by chunglu/hyperbolic: w_v ∝
/// (v+1)^(-1/(gamma-1)) scaled so the mean is `avg_degree`, then capped
/// (cap <= 0 means uncapped).  Returns the weights and their sum.
std::pair<std::vector<double>, double> power_law_weights(std::size_t n, double gamma,
                                                         double avg_degree,
                                                         double cap);

}  // namespace ld::gen
