#include "rng/rng.hpp"

namespace ld::rng {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
    // Guard against the (astronomically unlikely) all-zero state, which is
    // the one fixed point of the xoshiro transition.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
        state_[0] = 0x9e3779b97f4a7c15ULL;
    }
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
    // Lemire 2019: multiply-shift with rejection to remove modulo bias.
    if (bound == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (l < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

void Rng::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                              0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (1ULL << b)) {
                s0 ^= state_[0];
                s1 ^= state_[1];
                s2 ^= state_[2];
                s3 ^= state_[3];
            }
            next();
        }
    }
    state_ = {s0, s1, s2, s3};
}

Rng Rng::split() noexcept {
    Rng child = *this;
    child.jump();
    jump();
    jump();  // keep parent ahead of the child stream
    return child;
}

}  // namespace ld::rng
