// Deterministic pseudo-random number generation for all stochastic code in
// the library.  Every stochastic API in liquidd takes an `Rng&` so that
// experiments are reproducible from a single seed.
//
// The engine is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 as its
// authors recommend.  It satisfies the C++ UniformRandomBitGenerator
// requirements, so it composes with <random> distributions, but the helpers
// in sampling.hpp avoid libstdc++ distributions where cross-platform
// reproducibility of the exact stream matters.

#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ld::rng {

/// SplitMix64: a tiny, statistically strong 64-bit generator used to expand
/// a single seed into the xoshiro state (and useful on its own for hashing).
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    /// Next 64-bit value.
    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256++ engine.  Period 2^256 − 1; passes BigCrush.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seed the 256-bit state from a single 64-bit seed via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept;

    /// UniformRandomBitGenerator interface.
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }
    result_type operator()() noexcept { return next(); }

    /// Next raw 64-bit value.
    std::uint64_t next() noexcept;

    /// Uniform double in [0, 1).  Uses the top 53 bits.
    double next_double() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound).  `bound` must be nonzero.
    /// Lemire's nearly-divisionless method; unbiased.
    std::uint64_t next_below(std::uint64_t bound) noexcept;

    /// Bernoulli trial with success probability `p` (clamped to [0,1]).
    bool next_bernoulli(double p) noexcept { return next_double() < p; }

    /// Jump function: advances the state by 2^128 steps, giving a stream
    /// that will not overlap the original for 2^128 draws.  Used to derive
    /// independent per-thread / per-replication streams from one seed.
    void jump() noexcept;

    /// Derive an independent child generator: copy + jump, then jump self.
    Rng split() noexcept;

private:
    std::array<std::uint64_t, 4> state_;
};

}  // namespace ld::rng
