// Sampling primitives built on `ld::rng::Rng`.  These implement the random
// choices the paper's mechanisms make: uniform choice from an approval set,
// d random neighbours (Algorithm 2), random k-subsets, shuffles, and
// weighted choice (alias method) for general delegation plans.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/rng.hpp"

namespace ld::rng {

/// Uniformly random element index in [0, n).  Precondition: n > 0.
std::size_t uniform_index(Rng& rng, std::size_t n);

/// Uniformly random element of a non-empty span.
template <typename T>
const T& uniform_choice(Rng& rng, std::span<const T> items) {
    return items[uniform_index(rng, items.size())];
}

/// Uniform double in [lo, hi).
double uniform_real(Rng& rng, double lo, double hi);

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(Rng& rng, std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
        using std::swap;
        swap(items[i - 1], items[j]);
    }
}

/// Sample `k` distinct values from {0, …, n−1}, uniformly over k-subsets,
/// returned in ascending order.  Uses Floyd's algorithm (O(k) expected) for
/// small k and a partial shuffle for k close to n.
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n, std::size_t k);

/// Sample `k` values from {0, …, n−1} *with* replacement.
std::vector<std::size_t> sample_with_replacement(Rng& rng, std::size_t n, std::size_t k);

/// Walker's alias method for repeated sampling from a fixed discrete
/// distribution.  Construction is O(n); each draw is O(1).
class AliasTable {
public:
    /// Build from (unnormalised, non-negative) weights; at least one weight
    /// must be strictly positive.
    explicit AliasTable(std::span<const double> weights);

    /// Draw an index distributed proportionally to the weights.
    std::size_t sample(Rng& rng) const;

    std::size_t size() const noexcept { return prob_.size(); }

    /// Normalised probability of index `i` (for testing).
    double probability(std::size_t i) const noexcept { return normalised_[i]; }

private:
    std::vector<double> prob_;          // acceptance thresholds
    std::vector<std::size_t> alias_;    // alias targets
    std::vector<double> normalised_;    // normalised input weights
};

/// Reservoir sampling: uniformly sample `k` items from a stream presented
/// via repeated `offer()` calls, without knowing the stream length upfront.
class ReservoirSampler {
public:
    explicit ReservoirSampler(std::size_t k) : k_(k) {}

    /// Offer the next stream element (identified by its index/value).
    void offer(Rng& rng, std::size_t value);

    /// Items currently held (k of them once ≥ k elements were offered).
    const std::vector<std::size_t>& sample() const noexcept { return reservoir_; }

    std::size_t stream_size() const noexcept { return seen_; }

private:
    std::size_t k_;
    std::size_t seen_ = 0;
    std::vector<std::size_t> reservoir_;
};

}  // namespace ld::rng
