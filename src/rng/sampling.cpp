#include "rng/sampling.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/expect.hpp"

namespace ld::rng {

using support::expects;

std::size_t uniform_index(Rng& rng, std::size_t n) {
    expects(n > 0, "uniform_index: empty range");
    return static_cast<std::size_t>(rng.next_below(n));
}

double uniform_real(Rng& rng, double lo, double hi) {
    expects(lo <= hi, "uniform_real: inverted range");
    return lo + (hi - lo) * rng.next_double();
}

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n, std::size_t k) {
    expects(k <= n, "sample_without_replacement: k exceeds population");
    std::vector<std::size_t> out;
    out.reserve(k);
    if (k == 0) return out;
    if (k * 3 >= n) {
        // Dense case: partial Fisher–Yates over the whole population.
        std::vector<std::size_t> pop(n);
        for (std::size_t i = 0; i < n; ++i) pop[i] = i;
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t j = i + static_cast<std::size_t>(rng.next_below(n - i));
            std::swap(pop[i], pop[j]);
        }
        out.assign(pop.begin(), pop.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
        // Sparse case: Floyd's algorithm — k expected-O(1) insertions.
        std::unordered_set<std::size_t> chosen;
        chosen.reserve(k * 2);
        for (std::size_t j = n - k; j < n; ++j) {
            const std::size_t t = static_cast<std::size_t>(rng.next_below(j + 1));
            if (!chosen.insert(t).second) chosen.insert(j);
        }
        out.assign(chosen.begin(), chosen.end());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::size_t> sample_with_replacement(Rng& rng, std::size_t n, std::size_t k) {
    expects(n > 0 || k == 0, "sample_with_replacement: empty population");
    std::vector<std::size_t> out(k);
    for (auto& v : out) v = static_cast<std::size_t>(rng.next_below(n));
    return out;
}

AliasTable::AliasTable(std::span<const double> weights) {
    expects(!weights.empty(), "AliasTable: empty weights");
    double total = 0.0;
    for (double w : weights) {
        expects(w >= 0.0, "AliasTable: negative weight");
        total += w;
    }
    expects(total > 0.0, "AliasTable: all weights zero");

    const std::size_t n = weights.size();
    normalised_.resize(n);
    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    std::vector<double> scaled(n);
    std::vector<std::size_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        normalised_[i] = weights[i] / total;
        scaled[i] = normalised_[i] * static_cast<double>(n);
        (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
        const std::size_t s = small.back();
        small.pop_back();
        const std::size_t l = large.back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if (scaled[l] < 1.0) {
            large.pop_back();
            small.push_back(l);
        }
    }
    for (std::size_t i : large) prob_[i] = 1.0;
    for (std::size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const {
    const std::size_t column = static_cast<std::size_t>(rng.next_below(prob_.size()));
    return rng.next_double() < prob_[column] ? column : alias_[column];
}

void ReservoirSampler::offer(Rng& rng, std::size_t value) {
    ++seen_;
    if (reservoir_.size() < k_) {
        reservoir_.push_back(value);
        return;
    }
    const std::size_t j = static_cast<std::size_t>(rng.next_below(seen_));
    if (j < k_) reservoir_[j] = value;
}

}  // namespace ld::rng
