// Predicates for the paper's graph restrictions (Definition 1):
//   K_n            — the graph is complete,
//   Rand(n, d)     — (checked as) d-regularity,
//   Δ ≤ k          — maximum degree at most k,
//   δ ≥ k          — minimum degree at least k.
//
// The competency-side restrictions (PC = a, p ∈ (β, 1−β)) live with
// `ld::model::CompetencyVector`; `ld::model::Instance::satisfies` combines
// both sides.

#pragma once

#include <cstddef>
#include <string>

#include "graph/graph.hpp"

namespace ld::graph {

/// True iff every pair of distinct vertices is adjacent.
bool is_complete(const Graph& g);

/// True iff every vertex has degree exactly d.
bool is_d_regular(const Graph& g, std::size_t d);

/// True iff the maximum degree is at most k (restriction Δ ≤ k).
bool max_degree_at_most(const Graph& g, std::size_t k);

/// True iff the minimum degree is at least k (restriction δ ≥ k).
bool min_degree_at_least(const Graph& g, std::size_t k);

/// A graph-side restriction as a small value type, so experiment configs
/// can carry lists of restrictions and print them.
class GraphRestriction {
public:
    enum class Kind { Complete, Regular, MaxDegree, MinDegree };

    static GraphRestriction complete() { return {Kind::Complete, 0}; }
    static GraphRestriction regular(std::size_t d) { return {Kind::Regular, d}; }
    static GraphRestriction max_degree(std::size_t k) { return {Kind::MaxDegree, k}; }
    static GraphRestriction min_degree(std::size_t k) { return {Kind::MinDegree, k}; }

    Kind kind() const noexcept { return kind_; }
    std::size_t parameter() const noexcept { return parameter_; }

    /// Evaluate this restriction on a graph.
    bool satisfied_by(const Graph& g) const;

    /// Human-readable form, e.g. "Δ ≤ 8".
    std::string to_string() const;

private:
    GraphRestriction(Kind k, std::size_t p) : kind_(k), parameter_(p) {}
    Kind kind_;
    std::size_t parameter_;
};

}  // namespace ld::graph
