#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::graph {

using support::expects;

namespace {

/// Vertex ids are 32-bit; a size that cannot index them would silently
/// wrap in the id arithmetic below.
void check_vertex_range(std::size_t n, const std::string& context) {
    expects(n <= static_cast<std::size_t>(std::numeric_limits<Vertex>::max()) + 1,
            context + ": size exceeds the 32-bit vertex id range");
}

}  // namespace

Graph make_complete(std::size_t n) {
    GraphBuilder b(n);
    for (Vertex u = 0; u < n; ++u) {
        for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
    }
    return b.build();
}

Graph make_star(std::size_t n) {
    expects(n >= 1, "make_star: need at least one vertex");
    GraphBuilder b(n);
    for (Vertex v = 1; v < n; ++v) b.add_edge(0, v);
    return b.build();
}

Graph make_path(std::size_t n) {
    GraphBuilder b(n);
    for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
    return b.build();
}

Graph make_cycle(std::size_t n) {
    expects(n >= 3, "make_cycle: need at least 3 vertices");
    GraphBuilder b(n);
    for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
    b.add_edge(static_cast<Vertex>(n - 1), 0);
    return b.build();
}

Graph make_grid(std::size_t rows, std::size_t cols) {
    expects(rows >= 1 && cols >= 1, "make_grid: rows and cols must be >= 1");
    expects(rows <= std::numeric_limits<std::size_t>::max() / cols,
            "make_grid: rows * cols overflows");
    check_vertex_range(rows * cols, "make_grid");
    GraphBuilder b(rows * cols);
    const auto id = [cols](std::size_t r, std::size_t c) {
        return static_cast<Vertex>(r * cols + c);
    };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
            if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
        }
    }
    return b.build();
}

Graph make_erdos_renyi_gnp(rng::Rng& rng, std::size_t n, double p) {
    expects(p >= 0.0 && p <= 1.0, "make_erdos_renyi_gnp: p out of [0,1]");
    GraphBuilder b(n);
    if (p == 0.0 || n < 2) return b.build();
    if (p == 1.0) return make_complete(n);
    // Geometric skipping (Batagelj–Brandes): expected O(n + m).
    const double log1mp = std::log1p(-p);
    std::size_t v = 1;
    std::ptrdiff_t w = -1;
    while (v < n) {
        const double r = rng.next_double();
        w += 1 + static_cast<std::ptrdiff_t>(std::floor(std::log1p(-r) / log1mp));
        while (w >= static_cast<std::ptrdiff_t>(v) && v < n) {
            w -= static_cast<std::ptrdiff_t>(v);
            ++v;
        }
        if (v < n) b.add_edge(static_cast<Vertex>(v), static_cast<Vertex>(w));
    }
    return b.build();
}

Graph make_erdos_renyi_gnm(rng::Rng& rng, std::size_t n, std::size_t m) {
    check_vertex_range(n, "make_erdos_renyi_gnm");  // n*(n-1) then fits 64 bits
    const std::size_t max_edges = n == 0 ? 0 : n * (n - 1) / 2;
    expects(m <= max_edges, "make_erdos_renyi_gnm: too many edges requested");
    GraphBuilder b(n);
    std::set<Edge> chosen;
    while (chosen.size() < m) {
        const auto u = static_cast<Vertex>(rng.next_below(n));
        const auto v = static_cast<Vertex>(rng.next_below(n));
        if (u == v) continue;
        const Edge e = u < v ? Edge{u, v} : Edge{v, u};
        if (chosen.insert(e).second) b.add_edge(e.u, e.v);
    }
    return b.build();
}

namespace {

/// One configuration-model attempt: pair half-edges, return the (possibly
/// non-simple) multiset of pairings as vertex pairs.
std::vector<std::pair<Vertex, Vertex>> pair_half_edges(rng::Rng& rng, std::size_t n,
                                                       std::size_t d) {
    std::vector<Vertex> stubs(n * d);
    std::size_t k = 0;
    for (Vertex v = 0; v < n; ++v) {
        for (std::size_t i = 0; i < d; ++i) stubs[k++] = v;
    }
    rng::shuffle(rng, stubs);
    std::vector<std::pair<Vertex, Vertex>> pairs;
    pairs.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        pairs.emplace_back(stubs[i], stubs[i + 1]);
    }
    return pairs;
}

}  // namespace

Graph make_random_d_regular(rng::Rng& rng, std::size_t n, std::size_t d) {
    expects(d < n, "make_random_d_regular: d must be < n");
    check_vertex_range(n, "make_random_d_regular");
    expects(d == 0 || n <= std::numeric_limits<std::size_t>::max() / d,
            "make_random_d_regular: n * d overflows");
    expects((n * d) % 2 == 0, "make_random_d_regular: n*d must be even");
    if (d == 0) return Graph::empty(n);

    // Configuration model with local edge-swap repair: defective pairings
    // (self-loops or duplicates) are re-wired by swapping with a random
    // accepted edge.  For d = o(sqrt(n)) this terminates quickly and the
    // conditioned distribution is asymptotically uniform over simple
    // d-regular graphs — the regime all paper experiments use.
    constexpr int kMaxRestarts = 64;
    for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
        auto pairs = pair_half_edges(rng, n, d);
        std::set<Edge> accepted;
        std::vector<std::pair<Vertex, Vertex>> defective;
        const auto canon = [](Vertex a, Vertex b) {
            return a < b ? Edge{a, b} : Edge{b, a};
        };
        for (const auto& [a, bv] : pairs) {
            if (a == bv || accepted.contains(canon(a, bv))) {
                defective.emplace_back(a, bv);
            } else {
                accepted.insert(canon(a, bv));
            }
        }
        std::vector<Edge> pool(accepted.begin(), accepted.end());
        bool failed = false;
        std::size_t stall = 0;
        const std::size_t stall_limit = 200 * (defective.size() + 1);
        while (!defective.empty()) {
            if (++stall > stall_limit || pool.empty()) {
                failed = true;
                break;
            }
            auto [a, bv] = defective.back();
            // Swap with a random accepted edge (x, y):
            //   (a, b), (x, y)  →  (a, x), (b, y)
            const std::size_t idx = rng::uniform_index(rng, pool.size());
            const Edge exy = pool[idx];
            const Vertex x = exy.u, y = exy.v;
            const Edge e1 = canon(a, x);
            const Edge e2 = canon(bv, y);
            if (a == x || bv == y || accepted.contains(e1) || accepted.contains(e2) ||
                e1 == e2) {
                continue;  // try another partner edge
            }
            defective.pop_back();
            accepted.erase(exy);
            pool[idx] = pool.back();
            pool.pop_back();
            accepted.insert(e1);
            accepted.insert(e2);
            pool.push_back(e1);
            pool.push_back(e2);
            stall = 0;
        }
        if (failed) continue;
        GraphBuilder b(n);
        for (const Edge& e : accepted) b.add_edge(e.u, e.v);
        Graph g = b.build();
        // Verify regularity (the repair preserves the degree sequence, but
        // keep the check as a cheap postcondition).
        bool regular = true;
        for (Vertex v = 0; v < n; ++v) {
            if (g.degree(v) != d) {
                regular = false;
                break;
            }
        }
        if (regular) return g;
    }
    throw std::runtime_error("make_random_d_regular: failed to produce a simple graph");
}

Graph make_d_out(rng::Rng& rng, std::size_t n, std::size_t d) {
    expects(d < n, "make_d_out: d must be < n");
    GraphBuilder b(n);
    for (Vertex v = 0; v < n; ++v) {
        for (std::size_t t : rng::sample_without_replacement(rng, n - 1, d)) {
            // Map {0..n-2} onto {0..n-1} \ {v}.
            const auto u = static_cast<Vertex>(t < v ? t : t + 1);
            b.add_edge(v, u);
        }
    }
    return b.build();
}

Graph make_bounded_degree(rng::Rng& rng, std::size_t n, std::size_t max_deg,
                          std::size_t target_edges) {
    expects(max_deg >= 1, "make_bounded_degree: max_deg must be >= 1");
    check_vertex_range(n, "make_bounded_degree");
    // 128-bit compare: either product can overflow 64 bits on its own.
    expects(static_cast<unsigned __int128>(target_edges) * 2 <=
                static_cast<unsigned __int128>(n) * max_deg,
            "make_bounded_degree: target infeasible");
    GraphBuilder b(n);
    std::vector<std::size_t> deg(n, 0);
    std::set<Edge> chosen;
    std::size_t placed = 0;
    const std::size_t proposal_budget = 50 * (target_edges + n) + 1000;
    for (std::size_t tries = 0; placed < target_edges && tries < proposal_budget; ++tries) {
        const auto u = static_cast<Vertex>(rng.next_below(n));
        const auto v = static_cast<Vertex>(rng.next_below(n));
        if (u == v || deg[u] >= max_deg || deg[v] >= max_deg) continue;
        const Edge e = u < v ? Edge{u, v} : Edge{v, u};
        if (!chosen.insert(e).second) continue;
        b.add_edge(e.u, e.v);
        ++deg[u];
        ++deg[v];
        ++placed;
    }
    return b.build();
}

Graph make_min_degree_at_least(rng::Rng& rng, std::size_t n, std::size_t min_deg) {
    expects(min_deg < n, "make_min_degree_at_least: min_deg must be < n");
    expects(n >= 3, "make_min_degree_at_least: need at least 3 vertices");
    GraphBuilder b(n);
    // Random Hamiltonian cycle for a connected degree-2 base.
    std::vector<Vertex> perm(n);
    for (Vertex v = 0; v < n; ++v) perm[v] = v;
    rng::shuffle(rng, perm);
    std::set<Edge> chosen;
    std::vector<std::size_t> deg(n, 0);
    const auto add = [&](Vertex u, Vertex v) {
        const Edge e = u < v ? Edge{u, v} : Edge{v, u};
        if (chosen.insert(e).second) {
            b.add_edge(e.u, e.v);
            ++deg[u];
            ++deg[v];
            return true;
        }
        return false;
    };
    for (std::size_t i = 0; i < n; ++i) add(perm[i], perm[(i + 1) % n]);
    // Raise deficient vertices to the floor by attaching random partners.
    for (Vertex v = 0; v < n; ++v) {
        std::size_t guard = 0;
        while (deg[v] < min_deg && guard < 100 * n) {
            const auto u = static_cast<Vertex>(rng.next_below(n));
            ++guard;
            if (u == v) continue;
            add(v, u);
        }
        expects(deg[v] >= min_deg, "make_min_degree_at_least: could not satisfy floor");
    }
    return b.build();
}

Graph make_barabasi_albert(rng::Rng& rng, std::size_t n, std::size_t m) {
    expects(m >= 1 && n > m, "make_barabasi_albert: need n > m >= 1");
    check_vertex_range(n, "make_barabasi_albert");
    expects(n <= std::numeric_limits<std::size_t>::max() / (2 * m),
            "make_barabasi_albert: 2 * n * m overflows");
    GraphBuilder b(n);
    // `targets` holds each vertex once per incident edge, so a uniform draw
    // from it is a degree-proportional draw.
    std::vector<Vertex> targets;
    targets.reserve(2 * n * m);
    for (Vertex u = 0; u <= m; ++u) {
        for (Vertex v = u + 1; v <= m; ++v) {
            b.add_edge(u, v);
            targets.push_back(u);
            targets.push_back(v);
        }
    }
    for (Vertex newcomer = static_cast<Vertex>(m + 1); newcomer < n; ++newcomer) {
        std::unordered_set<Vertex> picked;
        std::size_t guard = 0;
        while (picked.size() < m && guard < 1000 * m) {
            ++guard;
            const Vertex t = targets[rng::uniform_index(rng, targets.size())];
            picked.insert(t);
        }
        for (Vertex t : picked) {
            b.add_edge(newcomer, t);
            targets.push_back(newcomer);
            targets.push_back(t);
        }
    }
    return b.build();
}

Graph make_watts_strogatz(rng::Rng& rng, std::size_t n, std::size_t k, double beta) {
    expects(k % 2 == 0, "make_watts_strogatz: k must be even");
    expects(k < n, "make_watts_strogatz: k must be < n");
    expects(beta >= 0.0 && beta <= 1.0, "make_watts_strogatz: beta out of [0,1]");
    std::set<Edge> chosen;
    const auto canon = [](Vertex a, Vertex b) { return a < b ? Edge{a, b} : Edge{b, a}; };
    for (Vertex v = 0; v < n; ++v) {
        for (std::size_t j = 1; j <= k / 2; ++j) {
            chosen.insert(canon(v, static_cast<Vertex>((v + j) % n)));
        }
    }
    // Rewire each lattice edge's far endpoint w.p. beta.
    std::vector<Edge> lattice(chosen.begin(), chosen.end());
    for (const Edge& e : lattice) {
        if (!rng.next_bernoulli(beta)) continue;
        std::size_t guard = 0;
        while (guard++ < 100) {
            const auto w = static_cast<Vertex>(rng.next_below(n));
            if (w == e.u || w == e.v) continue;
            const Edge candidate = canon(e.u, w);
            if (chosen.contains(candidate)) continue;
            chosen.erase(e);
            chosen.insert(candidate);
            break;
        }
    }
    GraphBuilder b(n);
    for (const Edge& e : chosen) b.add_edge(e.u, e.v);
    return b.build();
}

Graph make_two_tier(rng::Rng& rng, std::size_t n, std::size_t hub_count,
                    std::size_t spokes_per_leaf) {
    expects(hub_count >= 1 && hub_count <= n, "make_two_tier: bad hub_count");
    expects(spokes_per_leaf >= 1 && spokes_per_leaf <= hub_count,
            "make_two_tier: bad spokes_per_leaf");
    GraphBuilder b(n);
    for (Vertex u = 0; u < hub_count; ++u) {
        for (Vertex v = u + 1; v < hub_count; ++v) b.add_edge(u, v);
    }
    for (Vertex leaf = static_cast<Vertex>(hub_count); leaf < n; ++leaf) {
        for (std::size_t h : rng::sample_without_replacement(rng, hub_count, spokes_per_leaf)) {
            b.add_edge(leaf, static_cast<Vertex>(h));
        }
    }
    return b.build();
}

}  // namespace ld::graph
