#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/expect.hpp"

namespace ld::graph {

using support::expects;

void write_edge_list(std::ostream& os, const Graph& g) {
    os << g.vertex_count() << ' ' << g.edge_count() << '\n';
    for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& is) {
    std::size_t n = 0, m = 0;
    if (!(is >> n >> m)) throw std::runtime_error("read_edge_list: missing header");
    GraphBuilder b(n);
    for (std::size_t i = 0; i < m; ++i) {
        std::size_t u = 0, v = 0;
        if (!(is >> u >> v)) throw std::runtime_error("read_edge_list: truncated edge list");
        if (u >= n || v >= n) throw std::runtime_error("read_edge_list: vertex out of range");
        b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
    return b.build();
}

void write_dot(std::ostream& os, const Graph& g, const std::string& name) {
    os << "graph " << name << " {\n";
    for (const Edge& e : g.edges()) {
        os << "  " << e.u << " -- " << e.v << ";\n";
    }
    os << "}\n";
}

void write_dot(std::ostream& os, const Digraph& g, std::span<const std::string> labels,
               const std::string& name) {
    expects(labels.empty() || labels.size() == g.vertex_count(),
            "write_dot: label count must match vertex count");
    os << "digraph " << name << " {\n";
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
        if (!labels.empty()) {
            os << "  " << v << " [label=\"" << labels[v] << "\"];\n";
        }
    }
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
        for (Vertex w : g.successors(v)) {
            os << "  " << v << " -> " << w << ";\n";
        }
    }
    os << "}\n";
}

}  // namespace ld::graph
