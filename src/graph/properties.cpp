#include "graph/properties.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "support/expect.hpp"

namespace ld::graph {

using support::expects;

DegreeStats degree_stats(const Graph& g) {
    DegreeStats s;
    const std::size_t n = g.vertex_count();
    if (n == 0) return s;
    s.min = std::numeric_limits<std::size_t>::max();
    double sum = 0.0, sum_sq = 0.0;
    for (Vertex v = 0; v < n; ++v) {
        const std::size_t d = g.degree(v);
        s.min = std::min(s.min, d);
        s.max = std::max(s.max, d);
        sum += static_cast<double>(d);
        sum_sq += static_cast<double>(d) * static_cast<double>(d);
    }
    s.mean = sum / static_cast<double>(n);
    s.variance = sum_sq / static_cast<double>(n) - s.mean * s.mean;
    s.asymmetry = s.mean > 0.0 ? static_cast<double>(s.max) / s.mean : 0.0;
    return s;
}

std::vector<std::size_t> bfs_distances(const Graph& g, Vertex source) {
    expects(source < g.vertex_count(), "bfs_distances: source out of range");
    constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> dist(g.vertex_count(), kUnreached);
    std::vector<Vertex> queue;
    queue.reserve(g.vertex_count());
    dist[source] = 0;
    queue.push_back(source);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const Vertex v = queue[head];
        for (Vertex w : g.neighbours(v)) {
            if (dist[w] == kUnreached) {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return dist;
}

std::vector<std::size_t> connected_components(const Graph& g) {
    constexpr auto kNone = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> comp(g.vertex_count(), kNone);
    std::size_t next_id = 0;
    std::vector<Vertex> queue;
    for (Vertex s = 0; s < g.vertex_count(); ++s) {
        if (comp[s] != kNone) continue;
        comp[s] = next_id;
        queue.clear();
        queue.push_back(s);
        for (std::size_t head = 0; head < queue.size(); ++head) {
            for (Vertex w : g.neighbours(queue[head])) {
                if (comp[w] == kNone) {
                    comp[w] = next_id;
                    queue.push_back(w);
                }
            }
        }
        ++next_id;
    }
    return comp;
}

std::size_t component_count(const Graph& g) {
    const auto comp = connected_components(g);
    return comp.empty() ? 0 : 1 + *std::max_element(comp.begin(), comp.end());
}

bool is_connected(const Graph& g) { return component_count(g) <= 1; }

std::size_t diameter(const Graph& g) {
    if (g.vertex_count() <= 1) return 0;
    if (!is_connected(g)) throw std::invalid_argument("diameter: graph is disconnected");
    std::size_t best = 0;
    for (Vertex s = 0; s < g.vertex_count(); ++s) {
        const auto dist = bfs_distances(g, s);
        for (std::size_t d : dist) best = std::max(best, d);
    }
    return best;
}

std::size_t triangle_count(const Graph& g) {
    // Count ordered triples u < v < w with all edges present, using sorted
    // adjacency intersections on the two smaller endpoints.
    std::size_t triangles = 0;
    for (Vertex u = 0; u < g.vertex_count(); ++u) {
        const auto nu = g.neighbours(u);
        for (Vertex v : nu) {
            if (v <= u) continue;
            const auto nv = g.neighbours(v);
            // Merge-count common neighbours w with w > v.
            auto it_u = std::lower_bound(nu.begin(), nu.end(), v + 1);
            auto it_v = std::lower_bound(nv.begin(), nv.end(), v + 1);
            while (it_u != nu.end() && it_v != nv.end()) {
                if (*it_u < *it_v) ++it_u;
                else if (*it_v < *it_u) ++it_v;
                else {
                    ++triangles;
                    ++it_u;
                    ++it_v;
                }
            }
        }
    }
    return triangles;
}

double global_clustering_coefficient(const Graph& g) {
    std::size_t open_triads = 0;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
        const std::size_t d = g.degree(v);
        open_triads += d * (d - 1) / 2;
    }
    if (open_triads == 0) return 0.0;
    return 3.0 * static_cast<double>(triangle_count(g)) / static_cast<double>(open_triads);
}

}  // namespace ld::graph
