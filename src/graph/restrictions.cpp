#include "graph/restrictions.hpp"

#include "graph/properties.hpp"

namespace ld::graph {

bool is_complete(const Graph& g) {
    const std::size_t n = g.vertex_count();
    if (n <= 1) return true;
    for (Vertex v = 0; v < n; ++v) {
        if (g.degree(v) != n - 1) return false;
    }
    return true;
}

bool is_d_regular(const Graph& g, std::size_t d) {
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
        if (g.degree(v) != d) return false;
    }
    return true;
}

bool max_degree_at_most(const Graph& g, std::size_t k) {
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
        if (g.degree(v) > k) return false;
    }
    return true;
}

bool min_degree_at_least(const Graph& g, std::size_t k) {
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
        if (g.degree(v) < k) return false;
    }
    return true;
}

bool GraphRestriction::satisfied_by(const Graph& g) const {
    switch (kind_) {
        case Kind::Complete:
            return is_complete(g);
        case Kind::Regular:
            return is_d_regular(g, parameter_);
        case Kind::MaxDegree:
            return max_degree_at_most(g, parameter_);
        case Kind::MinDegree:
            return min_degree_at_least(g, parameter_);
    }
    return false;
}

std::string GraphRestriction::to_string() const {
    switch (kind_) {
        case Kind::Complete:
            return "K_n";
        case Kind::Regular:
            return "Rand(n," + std::to_string(parameter_) + ")";
        case Kind::MaxDegree:
            return "maxdeg<=" + std::to_string(parameter_);
        case Kind::MinDegree:
            return "mindeg>=" + std::to_string(parameter_);
    }
    return "?";
}

}  // namespace ld::graph
