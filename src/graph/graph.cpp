#include "graph/graph.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::graph {

using support::expects;

Graph Graph::empty(std::size_t n) {
    return Graph(std::vector<std::size_t>(n + 1, 0), {});
}

Graph Graph::from_csr(std::vector<std::size_t> offsets, std::vector<Vertex> neighbours) {
    expects(!offsets.empty(), "from_csr: offsets must have size n + 1");
    expects(offsets.front() == 0 && offsets.back() == neighbours.size(),
            "from_csr: offsets must span the neighbour array");
    const std::size_t n = offsets.size() - 1;
    expects(neighbours.size() % 2 == 0, "from_csr: half-edge count must be even");
    for (std::size_t v = 0; v < n; ++v) {
        expects(offsets[v] <= offsets[v + 1], "from_csr: offsets must be monotone");
        for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
            expects(neighbours[i] < n, "from_csr: neighbour out of range");
            expects(neighbours[i] != v, "from_csr: self-loops are not allowed");
            expects(i == offsets[v] || neighbours[i - 1] < neighbours[i],
                    "from_csr: adjacency must be ascending and deduplicated");
        }
    }
    Graph g(std::move(offsets), std::move(neighbours));
    // Symmetry: every half-edge must have its mirror.
    for (Vertex v = 0; v < n; ++v) {
        for (Vertex u : g.neighbours(v)) {
            expects(g.has_edge(u, v), "from_csr: adjacency must be symmetric");
        }
    }
    return g;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
    if (u >= vertex_count() || v >= vertex_count()) return false;
    // Search the smaller adjacency list.
    if (degree(u) > degree(v)) std::swap(u, v);
    const auto nbrs = neighbours(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
    std::vector<Edge> out;
    out.reserve(edge_count());
    for (Vertex u = 0; u < vertex_count(); ++u) {
        for (Vertex v : neighbours(u)) {
            if (u < v) out.push_back(Edge{u, v});
        }
    }
    return out;
}

GraphBuilder::GraphBuilder(std::size_t n) : n_(n) {}

GraphBuilder& GraphBuilder::add_edge(Vertex u, Vertex v) {
    expects(u < n_ && v < n_, "add_edge: vertex out of range");
    expects(u != v, "add_edge: self-loops are not allowed");
    if (u > v) std::swap(u, v);
    raw_.push_back(Edge{u, v});
    return *this;
}

Graph GraphBuilder::build() const {
    std::vector<Edge> edges = raw_;
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    std::vector<std::size_t> offsets(n_ + 1, 0);
    for (const Edge& e : edges) {
        ++offsets[e.u + 1];
        ++offsets[e.v + 1];
    }
    for (std::size_t i = 1; i <= n_; ++i) offsets[i] += offsets[i - 1];

    std::vector<Vertex> neighbours(edges.size() * 2);
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) {
        neighbours[cursor[e.u]++] = e.v;
        neighbours[cursor[e.v]++] = e.u;
    }
    // Per-vertex adjacency is ascending because edges were processed in
    // sorted order for `u` but not for `v`; sort each range to make the
    // invariant unconditional.
    for (std::size_t v = 0; v < n_; ++v) {
        std::sort(neighbours.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                  neighbours.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    }
    return Graph(std::move(offsets), std::move(neighbours));
}

}  // namespace ld::graph
