// Directed graph used for delegation graphs: an arc (u → v) means voter u
// delegates their vote to voter v (paper §2.2).  Unlike the undirected
// voting graph, out-degree here is at most 1 for single-delegate mechanisms,
// but the type supports general out-degree for the weighted-majority
// extension (§6).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"  // Vertex

namespace ld::graph {

/// A directed arc.
struct Arc {
    Vertex from;
    Vertex to;
    friend bool operator==(const Arc&, const Arc&) = default;
    friend auto operator<=>(const Arc&, const Arc&) = default;
};

/// Immutable directed graph in CSR form (out-adjacency).
class Digraph {
public:
    /// Build from an arc list over `n` vertices.  Duplicate arcs collapse;
    /// self-arcs are allowed (a voter "delegating to themselves" is voting).
    Digraph(std::size_t n, std::vector<Arc> arcs);

    /// A digraph with n vertices and no arcs.
    static Digraph empty(std::size_t n) { return Digraph(n, {}); }

    std::size_t vertex_count() const noexcept { return offsets_.size() - 1; }
    std::size_t arc_count() const noexcept { return heads_.size(); }

    /// Out-neighbours of `v`, ascending.
    std::span<const Vertex> successors(Vertex v) const {
        return {heads_.data() + offsets_[v], heads_.data() + offsets_[v + 1]};
    }

    std::size_t out_degree(Vertex v) const noexcept { return offsets_[v + 1] - offsets_[v]; }

    /// In-degrees of all vertices (computed on demand, O(n + m)).
    std::vector<std::size_t> in_degrees() const;

    /// True if the digraph has no directed cycle (self-arcs are ignored, as
    /// in the paper's "acyclic up to self cycles").
    bool is_acyclic_up_to_self_loops() const;

    /// Length (in arcs) of the longest directed path, ignoring self-arcs.
    /// Precondition: acyclic up to self-loops.  This is the paper's
    /// "partition complexity" of a delegation outcome.
    std::size_t longest_path_length() const;

    /// Vertices in a topological order (self-arcs ignored).
    /// Precondition: acyclic up to self-loops.
    std::vector<Vertex> topological_order() const;

private:
    std::vector<std::size_t> offsets_;
    std::vector<Vertex> heads_;
};

}  // namespace ld::graph
