// Textual graph interchange: whitespace edge lists (one "u v" pair per
// line) and GraphViz DOT emission, including a DOT renderer for delegation
// digraphs annotated with competencies — used to regenerate Figure 2.

#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace ld::graph {

/// Write `g` as an edge list ("u v" per line) preceded by a header line
/// "n m".
void write_edge_list(std::ostream& os, const Graph& g);

/// Parse the format produced by `write_edge_list`.
/// Throws `std::runtime_error` on malformed input.
Graph read_edge_list(std::istream& is);

/// Emit an undirected DOT graph.
void write_dot(std::ostream& os, const Graph& g, const std::string& name = "G");

/// Emit a directed DOT graph of a delegation outcome; if `labels` is
/// non-empty it must have one entry per vertex (e.g. "v3 p=0.5").
void write_dot(std::ostream& os, const Digraph& g, std::span<const std::string> labels,
               const std::string& name = "D");

}  // namespace ld::graph
