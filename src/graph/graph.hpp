// Immutable undirected simple graph in compressed-sparse-row form, plus a
// mutable builder.  This is the voting-graph substrate: vertices are voters,
// an edge means the two voters are aware of each other (paper §2.1).

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ld::graph {

/// Vertex identifier.  Vertices are always 0..n-1.
using Vertex = std::uint32_t;

/// An undirected edge as an (ordered) vertex pair with u <= v.
struct Edge {
    Vertex u;
    Vertex v;
    friend bool operator==(const Edge&, const Edge&) = default;
    friend auto operator<=>(const Edge&, const Edge&) = default;
};

class GraphBuilder;

/// Immutable undirected simple graph (no self-loops, no parallel edges).
///
/// Stored in CSR form: `offsets_[v] .. offsets_[v+1]` indexes into
/// `neighbours_`, which lists each vertex's neighbours in ascending order.
/// Construction is only possible through `GraphBuilder`, which deduplicates
/// and validates.
class Graph {
public:
    /// An empty graph with `n` vertices and no edges.
    static Graph empty(std::size_t n);

    /// Adopt an already-assembled CSR (offsets size n+1, neighbours size
    /// 2m with each vertex's range ascending, deduplicated, loop-free,
    /// and symmetric).  Validates the invariants in O(n + m) and throws
    /// ContractViolation on any breach — the escape hatch for builders
    /// (the streaming generation subsystem) that assemble CSR directly
    /// instead of buffering an edge list through GraphBuilder.
    static Graph from_csr(std::vector<std::size_t> offsets,
                          std::vector<Vertex> neighbours);

    std::size_t vertex_count() const noexcept { return offsets_.size() - 1; }
    std::size_t edge_count() const noexcept { return neighbours_.size() / 2; }

    /// Neighbours of `v`, ascending.  O(1).
    std::span<const Vertex> neighbours(Vertex v) const {
        return {neighbours_.data() + offsets_[v], neighbours_.data() + offsets_[v + 1]};
    }

    /// Degree of `v`.  O(1).
    std::size_t degree(Vertex v) const noexcept { return offsets_[v + 1] - offsets_[v]; }

    /// Whether edge {u, v} exists.  O(log deg).
    bool has_edge(Vertex u, Vertex v) const;

    /// All edges with u < v, in ascending (u, v) order.
    std::vector<Edge> edges() const;

    friend bool operator==(const Graph&, const Graph&) = default;

private:
    friend class GraphBuilder;
    Graph(std::vector<std::size_t> offsets, std::vector<Vertex> neighbours)
        : offsets_(std::move(offsets)), neighbours_(std::move(neighbours)) {}

    std::vector<std::size_t> offsets_;   // size n+1
    std::vector<Vertex> neighbours_;     // size 2m, sorted per vertex
};

/// Accumulates edges and produces a validated `Graph`.
///
/// Duplicate edge insertions are tolerated and collapsed; self-loops are
/// rejected (the model is a simple graph).
class GraphBuilder {
public:
    /// Builder over `n` vertices (ids 0..n-1).
    explicit GraphBuilder(std::size_t n);

    std::size_t vertex_count() const noexcept { return n_; }

    /// Add undirected edge {u, v}.  Precondition: u != v, both < n.
    /// Returns *this for chaining.
    GraphBuilder& add_edge(Vertex u, Vertex v);

    /// Number of (possibly duplicated) edge insertions so far.
    std::size_t pending_edge_count() const noexcept { return raw_.size(); }

    /// Finalize into an immutable Graph.  The builder may be reused after.
    Graph build() const;

private:
    std::size_t n_;
    std::vector<Edge> raw_;
};

}  // namespace ld::graph
