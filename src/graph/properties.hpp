// Structural measurements over voting graphs: degree statistics, traversal,
// connectivity, diameter, and clustering.  The benches use these to audit
// whether generated instances satisfy the paper's graph restrictions and to
// characterise "structural asymmetry" (§6).

#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace ld::graph {

/// Summary of a graph's degree sequence.
struct DegreeStats {
    std::size_t min = 0;
    std::size_t max = 0;
    double mean = 0.0;
    double variance = 0.0;   // population variance of the degree sequence
    /// Max degree divided by mean degree — a crude structural-asymmetry
    /// index (1 for regular graphs, ~n/2·mean for stars).
    double asymmetry = 0.0;
};

/// Compute degree statistics.  O(n).
DegreeStats degree_stats(const Graph& g);

/// Breadth-first distances from `source` (SIZE_MAX for unreachable).  O(n+m).
std::vector<std::size_t> bfs_distances(const Graph& g, Vertex source);

/// Connected-component id per vertex (ids are 0-based, assigned in order of
/// lowest-numbered member).  O(n+m).
std::vector<std::size_t> connected_components(const Graph& g);

/// Number of connected components.
std::size_t component_count(const Graph& g);

/// True if the graph is connected (vacuously true for n <= 1).
bool is_connected(const Graph& g);

/// Exact diameter via BFS from every vertex.  O(n·(n+m)); intended for
/// test-sized graphs.  Throws if the graph is disconnected.
std::size_t diameter(const Graph& g);

/// Global clustering coefficient: 3·triangles / open-triads.  O(sum deg²).
double global_clustering_coefficient(const Graph& g);

/// Number of triangles.  O(m · max_deg) with sorted-adjacency merges.
std::size_t triangle_count(const Graph& g);

}  // namespace ld::graph
