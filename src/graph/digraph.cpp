#include "graph/digraph.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::graph {

using support::expects;
using support::invariant;

Digraph::Digraph(std::size_t n, std::vector<Arc> arcs) {
    for (const Arc& a : arcs) {
        expects(a.from < n && a.to < n, "Digraph: arc endpoint out of range");
    }
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

    offsets_.assign(n + 1, 0);
    for (const Arc& a : arcs) ++offsets_[a.from + 1];
    for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
    heads_.resize(arcs.size());
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const Arc& a : arcs) heads_[cursor[a.from]++] = a.to;
}

std::vector<std::size_t> Digraph::in_degrees() const {
    std::vector<std::size_t> in(vertex_count(), 0);
    for (Vertex v = 0; v < vertex_count(); ++v) {
        for (Vertex w : successors(v)) ++in[w];
    }
    return in;
}

namespace {

/// Kahn's algorithm over the digraph with self-arcs dropped.  Returns the
/// topological order if complete, or an empty vector if a cycle exists.
std::vector<Vertex> kahn_order(const Digraph& g) {
    const std::size_t n = g.vertex_count();
    std::vector<std::size_t> in(n, 0);
    for (Vertex v = 0; v < n; ++v) {
        for (Vertex w : g.successors(v)) {
            if (w != v) ++in[w];
        }
    }
    std::vector<Vertex> queue;
    queue.reserve(n);
    for (Vertex v = 0; v < n; ++v) {
        if (in[v] == 0) queue.push_back(v);
    }
    std::vector<Vertex> order;
    order.reserve(n);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const Vertex v = queue[head];
        order.push_back(v);
        for (Vertex w : g.successors(v)) {
            if (w != v && --in[w] == 0) queue.push_back(w);
        }
    }
    if (order.size() != n) return {};
    return order;
}

}  // namespace

bool Digraph::is_acyclic_up_to_self_loops() const {
    if (vertex_count() == 0) return true;
    return kahn_order(*this).size() == vertex_count();
}

std::vector<Vertex> Digraph::topological_order() const {
    auto order = kahn_order(*this);
    expects(order.size() == vertex_count(),
            "topological_order: digraph has a directed cycle");
    return order;
}

std::size_t Digraph::longest_path_length() const {
    const auto order = topological_order();
    std::vector<std::size_t> dist(vertex_count(), 0);
    std::size_t best = 0;
    // Process in reverse topological order: dist[v] = 1 + max over succ.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const Vertex v = *it;
        for (Vertex w : successors(v)) {
            if (w == v) continue;
            dist[v] = std::max(dist[v], dist[w] + 1);
        }
        best = std::max(best, dist[v]);
    }
    return best;
}

}  // namespace ld::graph
