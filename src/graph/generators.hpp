// Generators for every graph family the paper analyses or names:
//
//  * complete graphs `K_n` (§4.1),
//  * star graphs (Figure 1 counterexample),
//  * random d-regular graphs `Rand(n, d)` (§4.2) — configuration model with
//    edge-swap repair, plus the "d-out" sampling view Algorithm 2 uses,
//  * bounded-degree / bounded-minimum-degree random graphs (§5),
//  * Erdős–Rényi, Barabási–Albert (§6 "real-world networks"), Watts–Strogatz,
//    paths/cycles/grids for tests,
//  * deliberately asymmetric "two-tier" graphs used to stress the variance
//    conditions.

#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace ld::graph {

/// Complete graph on n vertices.
Graph make_complete(std::size_t n);

/// Star: vertex 0 is the centre, vertices 1..n-1 are leaves.  n >= 1.
Graph make_star(std::size_t n);

/// Simple path 0-1-…-(n-1).
Graph make_path(std::size_t n);

/// Cycle 0-1-…-(n-1)-0.  n >= 3.
Graph make_cycle(std::size_t n);

/// rows × cols 4-neighbour grid.
Graph make_grid(std::size_t rows, std::size_t cols);

/// Erdős–Rényi G(n, p): each possible edge present independently w.p. p.
Graph make_erdos_renyi_gnp(rng::Rng& rng, std::size_t n, double p);

/// Erdős–Rényi G(n, m): m distinct edges uniform over all edge sets.
Graph make_erdos_renyi_gnm(rng::Rng& rng, std::size_t n, std::size_t m);

/// Random d-regular simple graph via the configuration model.  Pairs up
/// n*d half-edges uniformly, then repairs self-loops / multi-edges by
/// random edge swaps (uniformly random conditioned on simplicity for the
/// asymptotic regime we simulate).  Requires n*d even and d < n.
Graph make_random_d_regular(rng::Rng& rng, std::size_t n, std::size_t d);

/// The "d-out" random graph of Algorithm 2: each vertex samples d uniform
/// distinct targets; the union of the sampled (undirected) edges.  Vertex
/// degrees concentrate around 2d.  Requires d < n.
Graph make_d_out(rng::Rng& rng, std::size_t n, std::size_t d);

/// Random graph with maximum degree at most `max_deg`: repeatedly proposes
/// uniform random edges and keeps those not violating the cap, until
/// `target_edges` are placed or proposals are exhausted.
Graph make_bounded_degree(rng::Rng& rng, std::size_t n, std::size_t max_deg,
                          std::size_t target_edges);

/// Random graph with minimum degree at least `min_deg`: starts from a
/// random Hamiltonian cycle (guaranteeing connectivity), then adds uniform
/// random edges until every vertex has degree >= min_deg.
Graph make_min_degree_at_least(rng::Rng& rng, std::size_t n, std::size_t min_deg);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m + 1` vertices; each newcomer attaches to `m` existing vertices chosen
/// proportionally to degree.  Requires n > m >= 1.
Graph make_barabasi_albert(rng::Rng& rng, std::size_t n, std::size_t m);

/// Watts–Strogatz small world: ring lattice where each vertex connects to
/// `k/2` neighbours on each side, each edge rewired w.p. `beta`.
/// Requires k even, k < n.
Graph make_watts_strogatz(rng::Rng& rng, std::size_t n, std::size_t k, double beta);

/// Two-tier asymmetric graph: a clique of `hub_count` hubs, every other
/// vertex attached to `spokes_per_leaf` random hubs.  Models extreme
/// structural asymmetry (generalised star) for DNH stress tests.
Graph make_two_tier(rng::Rng& rng, std::size_t n, std::size_t hub_count,
                    std::size_t spokes_per_leaf);

}  // namespace ld::graph
