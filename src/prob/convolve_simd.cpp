// Runtime-dispatched SIMD specializations of the two-point convolution
// and the batched lockstep step (see prob/convolve.hpp for the contract,
// prob/batch_tally.hpp for the lane layout).
//
// Bit-identity across tiers is a hard invariant here: every kernel —
// scalar, AVX2, AVX-512, single-lane and batched — evaluates exactly
// `in[s]·q + in[s−w]·p` as two IEEE multiplies and one add in that
// order.  Vector mul/add round each lane exactly like their scalar
// counterparts, so lane width never changes results; the only thing a
// wider tier changes is speed.  To keep that promise this translation
// unit is compiled with -ffp-contract=off (src/CMakeLists.txt), which
// forbids the compiler from re-fusing the mul/add pairs into FMAs.
//
// Masked-lane arithmetic relies on one numerical fact: every pmf value
// is a finite non-negative double, so `x + 0.0` and `x * 1.0` are
// bit-exact identities and a masked-off term contributes exactly +0.0 —
// the same "term outside [0, n) is 0" rule the scalar region loops
// implement by not touching those terms at all.

#include "prob/convolve.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/cpu_features.hpp"
#include "support/metrics.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define LIQUIDD_SIMD_X86 1
#include <immintrin.h>
#else
#define LIQUIDD_SIMD_X86 0
#endif

namespace ld::prob {

namespace detail {

namespace {

void convolve_scalar_entry(const double* __restrict in, double* __restrict out,
                           std::size_t n, std::size_t w, double p) {
    convolve_two_point_scalar(in, out, n, w, p);
}

}  // namespace

void batch_step_scalar(const double* __restrict in, double* __restrict out,
                       std::size_t smax, const std::int64_t* n,
                       const std::int64_t* w, const double* p) {
    constexpr std::size_t K = kBatchLanes;
    for (std::size_t k = 0; k < K; ++k) {
        const auto nk = static_cast<std::size_t>(n[k]);
        const auto wk = static_cast<std::size_t>(w[k]);
        const double pk = p[k];
        if (wk == 0) {
            // Idle lane: identity copy of the live entries, zero beyond.
            for (std::size_t s = 0; s < nk && s < smax; ++s)
                out[s * K + k] = in[s * K + k];
            for (std::size_t s = nk; s < smax; ++s) out[s * K + k] = 0.0;
            continue;
        }
        // The scalar reference's region loops, at stride K, padded with
        // zeros up to smax (rows other lanes still need).
        const double qk = 1.0 - pk;
        const std::size_t head = std::min(wk, nk);
        for (std::size_t s = 0; s < head; ++s) out[s * K + k] = in[s * K + k] * qk;
        for (std::size_t s = head; s < wk; ++s) out[s * K + k] = 0.0;
        for (std::size_t s = wk; s < nk; ++s)
            out[s * K + k] = in[s * K + k] * qk + in[(s - wk) * K + k] * pk;
        for (std::size_t s = std::max(nk, wk); s < nk + wk; ++s)
            out[s * K + k] = in[(s - wk) * K + k] * pk;
        for (std::size_t s = nk + wk; s < smax; ++s) out[s * K + k] = 0.0;
    }
}

void batch_fused_scalar(const double* __restrict in, double* __restrict out,
                        std::size_t n0, std::size_t steps, const double* p) {
    constexpr std::size_t K = kBatchLanes;
    for (std::size_t k = 0; k < K; ++k) {
        // Carried registers: prev[f] holds level f's value at row s − 1.
        double prev[kMaxFusedSteps] = {};
        for (std::size_t s = 0; s < n0 + steps; ++s) {
            double v = s < n0 ? in[s * K + k] : 0.0;
            for (std::size_t f = 0; f < steps; ++f) {
                const double pf = p[f * K + k];
                const double nv = v * (1.0 - pf) + prev[f] * pf;
                prev[f] = v;
                v = nv;
            }
            out[s * K + k] = v;
        }
    }
}

#if LIQUIDD_SIMD_X86

// ---------------------------------------------------------------- AVX2

__attribute__((target("avx2")))
void convolve_avx2(const double* __restrict in, double* __restrict out,
                   std::size_t n, std::size_t w, double p) {
    const double q = 1.0 - p;
    const __m256d vq = _mm256_set1_pd(q);
    const __m256d vp = _mm256_set1_pd(p);
    const std::size_t head = std::min(w, n);
    std::size_t s = 0;
    for (; s + 4 <= head; s += 4)
        _mm256_storeu_pd(out + s, _mm256_mul_pd(_mm256_loadu_pd(in + s), vq));
    for (; s < head; ++s) out[s] = in[s] * q;
    for (s = head; s < w; ++s) out[s] = 0.0;
    s = w;
    for (; s + 4 <= n; s += 4) {
        const __m256d a = _mm256_mul_pd(_mm256_loadu_pd(in + s), vq);
        const __m256d b = _mm256_mul_pd(_mm256_loadu_pd(in + s - w), vp);
        _mm256_storeu_pd(out + s, _mm256_add_pd(a, b));
    }
    for (; s < n; ++s) out[s] = in[s] * q + in[s - w] * p;
    s = std::max(n, w);
    for (; s + 4 <= n + w; s += 4)
        _mm256_storeu_pd(out + s, _mm256_mul_pd(_mm256_loadu_pd(in + s - w), vp));
    for (; s < n + w; ++s) out[s] = in[s - w] * p;
}

/// One 4-lane half of a batched AVX2 row: lanes [k0, k0+4).
__attribute__((target("avx2"))) inline void batch_step_avx2_half(
    const double* __restrict in, double* __restrict out, std::size_t smax,
    const std::int64_t* n, const std::int64_t* w, const double* p, std::size_t k0) {
    constexpr std::size_t K = kBatchLanes;
    const __m256i vn = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(n + k0));
    const __m256i vw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + k0));
    const __m256d vp = _mm256_loadu_pd(p + k0);
    const __m256d vq = _mm256_sub_pd(_mm256_set1_pd(1.0), vp);
    const __m256i vnw = _mm256_add_epi64(vn, vw);
    // Gather element offsets relative to the current row base `in + s*K`:
    // lane j reads element (s − w)·K + k0 + j, i.e. offset j − w·K.
    const __m256i viota = _mm256_set_epi64x(3, 2, 1, 0);
    const __m256i vidx = _mm256_sub_epi64(
        viota, _mm256_mul_epi32(vw, _mm256_set1_epi64x(static_cast<long long>(K))));
    const __m256d vzero = _mm256_setzero_pd();
    for (std::size_t s = 0; s < smax; ++s) {
        const __m256i vs = _mm256_set1_epi64x(static_cast<long long>(s));
        // mask_a: s < n; mask_b: w ≤ s < n + w (compare results are
        // all-ones / all-zero 64-bit lanes, usable as both AND masks and
        // gather masks).
        const __m256i ma = _mm256_cmpgt_epi64(vn, vs);
        const __m256i mb =
            _mm256_andnot_si256(_mm256_cmpgt_epi64(vw, vs), _mm256_cmpgt_epi64(vnw, vs));
        const double* row = in + s * K + k0;
        const __m256d vin =
            _mm256_and_pd(_mm256_loadu_pd(row), _mm256_castsi256_pd(ma));
        const __m256d a = _mm256_mul_pd(vin, vq);
        const __m256d g = _mm256_mask_i64gather_pd(vzero, row, vidx,
                                                   _mm256_castsi256_pd(mb), 8);
        const __m256d b = _mm256_mul_pd(g, vp);
        _mm256_storeu_pd(out + s * K + k0, _mm256_add_pd(a, b));
    }
}

/// Uniform-weight fast path: all lanes share w > 0, so the shifted
/// operand of lanes [k0, k0+4) is the contiguous row `in + (s−w)·K` —
/// no gather needed.
__attribute__((target("avx2"))) inline void batch_step_avx2_half_uniform(
    const double* __restrict in, double* __restrict out, std::size_t smax,
    const std::int64_t* n, std::size_t w, const double* p, std::size_t k0) {
    constexpr std::size_t K = kBatchLanes;
    const __m256i vn = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(n + k0));
    const __m256d vp = _mm256_loadu_pd(p + k0);
    const __m256d vq = _mm256_sub_pd(_mm256_set1_pd(1.0), vp);
    const __m256i vnw = _mm256_add_epi64(vn, _mm256_set1_epi64x(static_cast<long long>(w)));
    for (std::size_t s = 0; s < smax; ++s) {
        const __m256i vs = _mm256_set1_epi64x(static_cast<long long>(s));
        const __m256i ma = _mm256_cmpgt_epi64(vn, vs);
        const double* row = in + s * K + k0;
        const __m256d vin =
            _mm256_and_pd(_mm256_loadu_pd(row), _mm256_castsi256_pd(ma));
        __m256d sum = _mm256_mul_pd(vin, vq);
        if (s >= w) {
            const __m256i mb = _mm256_cmpgt_epi64(vnw, vs);
            const __m256d shifted = _mm256_and_pd(_mm256_loadu_pd(row - w * K),
                                                  _mm256_castsi256_pd(mb));
            sum = _mm256_add_pd(sum, _mm256_mul_pd(shifted, vp));
        }
        // s < w: the shifted term is identically +0.0; x + 0.0 is a
        // bit-exact identity on the non-negative pmf values, so skip it.
        _mm256_storeu_pd(out + s * K + k0, sum);
    }
}

/// Fully-uniform fast path: every lane shares the same width n0 and step
/// weight w0, so the four scalar region loops lift verbatim to whole
/// rows — no per-row masks or gathers at all.  This is the hot shape:
/// same-length lanes advancing in lockstep (and the driver mirrors
/// unstaged lanes onto lane 0 to keep partial batches on this path).
__attribute__((target("avx2"))) inline void batch_step_avx2_uniform_rows(
    const double* __restrict in, double* __restrict out, std::size_t smax,
    std::size_t n0, std::size_t w0, const double* p) {
    constexpr std::size_t K = kBatchLanes;
    const __m256d vp0 = _mm256_loadu_pd(p);
    const __m256d vp1 = _mm256_loadu_pd(p + 4);
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d vq0 = _mm256_sub_pd(one, vp0);
    const __m256d vq1 = _mm256_sub_pd(one, vp1);
    const __m256d vzero = _mm256_setzero_pd();
    const std::size_t head = std::min(w0, n0);
    std::size_t s = 0;
    for (; s < head; ++s) {
        const double* row = in + s * K;
        _mm256_storeu_pd(out + s * K, _mm256_mul_pd(_mm256_loadu_pd(row), vq0));
        _mm256_storeu_pd(out + s * K + 4,
                         _mm256_mul_pd(_mm256_loadu_pd(row + 4), vq1));
    }
    for (; s < w0; ++s) {
        _mm256_storeu_pd(out + s * K, vzero);
        _mm256_storeu_pd(out + s * K + 4, vzero);
    }
    for (s = w0; s < n0; ++s) {
        const double* row = in + s * K;
        const double* shifted = row - w0 * K;
        const __m256d a0 = _mm256_mul_pd(_mm256_loadu_pd(row), vq0);
        const __m256d b0 = _mm256_mul_pd(_mm256_loadu_pd(shifted), vp0);
        _mm256_storeu_pd(out + s * K, _mm256_add_pd(a0, b0));
        const __m256d a1 = _mm256_mul_pd(_mm256_loadu_pd(row + 4), vq1);
        const __m256d b1 = _mm256_mul_pd(_mm256_loadu_pd(shifted + 4), vp1);
        _mm256_storeu_pd(out + s * K + 4, _mm256_add_pd(a1, b1));
    }
    for (s = std::max(n0, w0); s < n0 + w0; ++s) {
        const double* shifted = in + (s - w0) * K;
        _mm256_storeu_pd(out + s * K, _mm256_mul_pd(_mm256_loadu_pd(shifted), vp0));
        _mm256_storeu_pd(out + s * K + 4,
                         _mm256_mul_pd(_mm256_loadu_pd(shifted + 4), vp1));
    }
    for (s = n0 + w0; s < smax; ++s) {
        _mm256_storeu_pd(out + s * K, vzero);
        _mm256_storeu_pd(out + s * K + 4, vzero);
    }
}

__attribute__((target("avx2")))
void batch_step_avx2(const double* __restrict in, double* __restrict out,
                     std::size_t smax, const std::int64_t* n,
                     const std::int64_t* w, const double* p) {
    bool uniform = w[0] > 0;
    bool same_n = true;
    for (std::size_t k = 1; k < kBatchLanes; ++k) {
        uniform = uniform && w[k] == w[0];
        same_n = same_n && n[k] == n[0];
    }
    if (uniform && same_n) {
        batch_step_avx2_uniform_rows(in, out, smax, static_cast<std::size_t>(n[0]),
                                     static_cast<std::size_t>(w[0]), p);
    } else if (uniform) {
        const auto w0 = static_cast<std::size_t>(w[0]);
        batch_step_avx2_half_uniform(in, out, smax, n, w0, p, 0);
        batch_step_avx2_half_uniform(in, out, smax, n, w0, p, 4);
    } else {
        batch_step_avx2_half(in, out, smax, n, w, p, 0);
        batch_step_avx2_half(in, out, smax, n, w, p, 4);
    }
}

/// One 4-lane half of a fused unit-weight run, F steps deep.  Carried
/// YMM registers hold each level's previous row; every row costs one
/// 32-byte load and store per F convolution steps.
template <std::size_t F>
__attribute__((target("avx2"))) inline void batch_fused_avx2_half(
    const double* __restrict in, double* __restrict out, std::size_t n0,
    const double* p, std::size_t k0) {
    constexpr std::size_t K = kBatchLanes;
    __m256d vp[F], vq[F], prev[F];
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d vzero = _mm256_setzero_pd();
    for (std::size_t f = 0; f < F; ++f) {
        vp[f] = _mm256_loadu_pd(p + f * K + k0);
        vq[f] = _mm256_sub_pd(one, vp[f]);
        prev[f] = vzero;
    }
    for (std::size_t s = 0; s < n0; ++s) {
        __m256d v = _mm256_loadu_pd(in + s * K + k0);
        for (std::size_t f = 0; f < F; ++f) {
            const __m256d nv =
                _mm256_add_pd(_mm256_mul_pd(v, vq[f]), _mm256_mul_pd(prev[f], vp[f]));
            prev[f] = v;
            v = nv;
        }
        _mm256_storeu_pd(out + s * K + k0, v);
    }
    // Epilogue rows [n0, n0 + F): level 0 is past its width, i.e. zero.
    for (std::size_t s = n0; s < n0 + F; ++s) {
        __m256d v = vzero;
        for (std::size_t f = 0; f < F; ++f) {
            const __m256d nv =
                _mm256_add_pd(_mm256_mul_pd(v, vq[f]), _mm256_mul_pd(prev[f], vp[f]));
            prev[f] = v;
            v = nv;
        }
        _mm256_storeu_pd(out + s * K + k0, v);
    }
}

__attribute__((target("avx2")))
void batch_fused_avx2(const double* __restrict in, double* __restrict out,
                      std::size_t n0, std::size_t steps, const double* p) {
    switch (steps) {
        case 1:
            batch_fused_avx2_half<1>(in, out, n0, p, 0);
            batch_fused_avx2_half<1>(in, out, n0, p, 4);
            break;
        case 2:
            batch_fused_avx2_half<2>(in, out, n0, p, 0);
            batch_fused_avx2_half<2>(in, out, n0, p, 4);
            break;
        case 3:
            batch_fused_avx2_half<3>(in, out, n0, p, 0);
            batch_fused_avx2_half<3>(in, out, n0, p, 4);
            break;
        default:
            batch_fused_avx2_half<4>(in, out, n0, p, 0);
            batch_fused_avx2_half<4>(in, out, n0, p, 4);
            break;
    }
}

// -------------------------------------------------------------- AVX-512

__attribute__((target("avx512f,avx512dq")))
void convolve_avx512(const double* __restrict in, double* __restrict out,
                     std::size_t n, std::size_t w, double p) {
    const double q = 1.0 - p;
    const __m512d vq = _mm512_set1_pd(q);
    const __m512d vp = _mm512_set1_pd(p);
    const std::size_t head = std::min(w, n);
    std::size_t s = 0;
    for (; s + 8 <= head; s += 8)
        _mm512_storeu_pd(out + s, _mm512_mul_pd(_mm512_loadu_pd(in + s), vq));
    for (; s < head; ++s) out[s] = in[s] * q;
    for (s = head; s < w; ++s) out[s] = 0.0;
    s = w;
    for (; s + 8 <= n; s += 8) {
        const __m512d a = _mm512_mul_pd(_mm512_loadu_pd(in + s), vq);
        const __m512d b = _mm512_mul_pd(_mm512_loadu_pd(in + s - w), vp);
        _mm512_storeu_pd(out + s, _mm512_add_pd(a, b));
    }
    for (; s < n; ++s) out[s] = in[s] * q + in[s - w] * p;
    s = std::max(n, w);
    for (; s + 8 <= n + w; s += 8)
        _mm512_storeu_pd(out + s, _mm512_mul_pd(_mm512_loadu_pd(in + s - w), vp));
    for (; s < n + w; ++s) out[s] = in[s - w] * p;
}

__attribute__((target("avx512f,avx512dq")))
void batch_step_avx512(const double* __restrict in, double* __restrict out,
                       std::size_t smax, const std::int64_t* n,
                       const std::int64_t* w, const double* p) {
    constexpr std::size_t K = kBatchLanes;
    static_assert(K == 8, "one ZMM register per interleaved row");
    const __m512i vn = _mm512_loadu_si512(n);
    const __m512i vw = _mm512_loadu_si512(w);
    const __m512d vp = _mm512_loadu_pd(p);
    const __m512d vq = _mm512_sub_pd(_mm512_set1_pd(1.0), vp);
    const __m512i vnw = _mm512_add_epi64(vn, vw);

    bool uniform = w[0] > 0;
    bool same_n = true;
    for (std::size_t k = 1; k < K; ++k) {
        uniform = uniform && w[k] == w[0];
        same_n = same_n && n[k] == n[0];
    }
    if (uniform && same_n) {
        // Fully-uniform fast path: the scalar region loops lifted to
        // whole rows — one ZMM per row, no masks (see the AVX2 variant
        // for the rationale).
        const auto n0 = static_cast<std::size_t>(n[0]);
        const auto w0 = static_cast<std::size_t>(w[0]);
        const __m512d vzero = _mm512_setzero_pd();
        const std::size_t head = std::min(w0, n0);
        std::size_t s = 0;
        for (; s < head; ++s)
            _mm512_storeu_pd(out + s * K,
                             _mm512_mul_pd(_mm512_loadu_pd(in + s * K), vq));
        for (; s < w0; ++s) _mm512_storeu_pd(out + s * K, vzero);
        for (s = w0; s < n0; ++s) {
            const double* row = in + s * K;
            const __m512d a = _mm512_mul_pd(_mm512_loadu_pd(row), vq);
            const __m512d b = _mm512_mul_pd(_mm512_loadu_pd(row - w0 * K), vp);
            _mm512_storeu_pd(out + s * K, _mm512_add_pd(a, b));
        }
        for (s = std::max(n0, w0); s < n0 + w0; ++s)
            _mm512_storeu_pd(out + s * K,
                             _mm512_mul_pd(_mm512_loadu_pd(in + (s - w0) * K), vp));
        for (s = n0 + w0; s < smax; ++s) _mm512_storeu_pd(out + s * K, vzero);
        return;
    }
    if (uniform) {
        const auto w0 = static_cast<std::size_t>(w[0]);
        for (std::size_t s = 0; s < smax; ++s) {
            const __m512i vs = _mm512_set1_epi64(static_cast<long long>(s));
            const __mmask8 ma = _mm512_cmplt_epi64_mask(vs, vn);
            const double* row = in + s * K;
            __m512d sum = _mm512_maskz_mul_pd(ma, _mm512_loadu_pd(row), vq);
            if (s >= w0) {
                const __mmask8 mb = _mm512_cmplt_epi64_mask(vs, vnw);
                sum = _mm512_add_pd(
                    sum, _mm512_maskz_mul_pd(mb, _mm512_loadu_pd(row - w0 * K), vp));
            }
            _mm512_storeu_pd(out + s * K, sum);
        }
        return;
    }

    // Mixed weights: masked gather of the shifted operand.  The element
    // offsets (relative to the row base) are constant across s: lane k
    // reads offset k − w[k]·K.  Masked-off lanes never touch memory, so
    // negative offsets on idle/short lanes are safe.
    const __m512i viota = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
    const __m512i vidx = _mm512_sub_epi64(
        viota, _mm512_mullo_epi64(vw, _mm512_set1_epi64(static_cast<long long>(K))));
    for (std::size_t s = 0; s < smax; ++s) {
        const __m512i vs = _mm512_set1_epi64(static_cast<long long>(s));
        const __mmask8 ma = _mm512_cmplt_epi64_mask(vs, vn);
        const __mmask8 mb = _mm512_cmplt_epi64_mask(vs, vnw) &
                            _mm512_cmple_epi64_mask(vw, vs);
        const double* row = in + s * K;
        const __m512d a = _mm512_maskz_mul_pd(ma, _mm512_loadu_pd(row), vq);
        const __m512d g =
            _mm512_mask_i64gather_pd(_mm512_setzero_pd(), mb, vidx, row, 8);
        const __m512d b = _mm512_maskz_mul_pd(mb, g, vp);
        _mm512_storeu_pd(out + s * K, _mm512_add_pd(a, b));
    }
}

/// Fused unit-weight run, F steps deep, one ZMM row per iteration.
template <std::size_t F>
__attribute__((target("avx512f,avx512dq"))) inline void batch_fused_avx512_impl(
    const double* __restrict in, double* __restrict out, std::size_t n0,
    const double* p) {
    constexpr std::size_t K = kBatchLanes;
    __m512d vp[F], vq[F], prev[F];
    const __m512d one = _mm512_set1_pd(1.0);
    const __m512d vzero = _mm512_setzero_pd();
    for (std::size_t f = 0; f < F; ++f) {
        vp[f] = _mm512_loadu_pd(p + f * K);
        vq[f] = _mm512_sub_pd(one, vp[f]);
        prev[f] = vzero;
    }
    for (std::size_t s = 0; s < n0; ++s) {
        __m512d v = _mm512_loadu_pd(in + s * K);
        for (std::size_t f = 0; f < F; ++f) {
            const __m512d nv =
                _mm512_add_pd(_mm512_mul_pd(v, vq[f]), _mm512_mul_pd(prev[f], vp[f]));
            prev[f] = v;
            v = nv;
        }
        _mm512_storeu_pd(out + s * K, v);
    }
    for (std::size_t s = n0; s < n0 + F; ++s) {
        __m512d v = vzero;
        for (std::size_t f = 0; f < F; ++f) {
            const __m512d nv =
                _mm512_add_pd(_mm512_mul_pd(v, vq[f]), _mm512_mul_pd(prev[f], vp[f]));
            prev[f] = v;
            v = nv;
        }
        _mm512_storeu_pd(out + s * K, v);
    }
}

__attribute__((target("avx512f,avx512dq")))
void batch_fused_avx512(const double* __restrict in, double* __restrict out,
                        std::size_t n0, std::size_t steps, const double* p) {
    // F = 8 needs 3·8 + 4 ZMM registers — fits the 32-register file.
    switch (steps) {
        case 1: batch_fused_avx512_impl<1>(in, out, n0, p); break;
        case 2: batch_fused_avx512_impl<2>(in, out, n0, p); break;
        case 3: batch_fused_avx512_impl<3>(in, out, n0, p); break;
        case 4: batch_fused_avx512_impl<4>(in, out, n0, p); break;
        case 5: batch_fused_avx512_impl<5>(in, out, n0, p); break;
        case 6: batch_fused_avx512_impl<6>(in, out, n0, p); break;
        case 7: batch_fused_avx512_impl<7>(in, out, n0, p); break;
        default: batch_fused_avx512_impl<8>(in, out, n0, p); break;
    }
}

#endif  // LIQUIDD_SIMD_X86

// ------------------------------------------------------------- dispatch

namespace {

struct KernelTable {
    support::SimdTier tier;
    ConvolveFn convolve;
    BatchStepFn batch_step;
    BatchFusedFn batch_fused;
    std::size_t fused_depth;  ///< deepest fused run (register-file bound)
};

constexpr KernelTable kScalarTable{support::SimdTier::kScalar,
                                   &convolve_scalar_entry, &batch_step_scalar,
                                   &batch_fused_scalar, kMaxFusedSteps};
#if LIQUIDD_SIMD_X86
// AVX2 fuses shallower: F = 8 would need 24 carried YMM registers per
// 4-lane half against a 16-register file.
constexpr KernelTable kAvx2Table{support::SimdTier::kAvx2, &convolve_avx2,
                                 &batch_step_avx2, &batch_fused_avx2, 4};
constexpr KernelTable kAvx512Table{support::SimdTier::kAvx512, &convolve_avx512,
                                   &batch_step_avx512, &batch_fused_avx512,
                                   kMaxFusedSteps};
#endif

const KernelTable* table_for(support::SimdTier tier) {
#if LIQUIDD_SIMD_X86
    if (tier == support::SimdTier::kAvx512) return &kAvx512Table;
    if (tier == support::SimdTier::kAvx2) return &kAvx2Table;
#endif
    (void)tier;
    return &kScalarTable;
}

std::atomic<const KernelTable*> g_table{nullptr};

void publish(const KernelTable* table) {
    support::MetricsRegistry::global()
        .gauge("tally.kernel")
        .set(static_cast<std::int64_t>(table->tier));
    g_table.store(table, std::memory_order_release);
}

/// First-use resolution: LIQUIDD_SIMD if set and runnable, else the
/// widest supported tier.  An unknown or unsupported env value warns
/// once and falls back to auto-detection (the CLI flag, by contrast,
/// errors out — see cli/runner.cpp).
const KernelTable* resolve() {
    support::SimdTier tier = support::best_simd_tier();
    if (const char* env = std::getenv("LIQUIDD_SIMD"); env != nullptr) {
        const auto parsed = support::parse_simd_tier(env);
        if (!parsed.has_value()) {
            std::fprintf(stderr,
                         "liquidd: ignoring unknown LIQUIDD_SIMD=%s "
                         "(expected auto|scalar|avx2|avx512)\n",
                         env);
        } else if (!support::simd_tier_supported(*parsed)) {
            std::fprintf(stderr,
                         "liquidd: LIQUIDD_SIMD=%s not supported on this host; "
                         "using %s\n",
                         env, support::simd_tier_name(tier));
        } else {
            tier = *parsed;
        }
    }
    return table_for(tier);
}

const KernelTable& active_table() {
    const KernelTable* table = g_table.load(std::memory_order_acquire);
    if (table != nullptr) return *table;
    static std::once_flag once;
    std::call_once(once, [] { publish(resolve()); });
    return *g_table.load(std::memory_order_acquire);
}

}  // namespace

BatchStepFn batch_step_kernel() { return active_table().batch_step; }

BatchFusedFn batch_fused_kernel() { return active_table().batch_fused; }

std::size_t batch_fused_depth() { return active_table().fused_depth; }

ConvolveFn convolve_kernel() { return active_table().convolve; }

}  // namespace detail

void convolve_two_point(const double* __restrict in, double* __restrict out,
                        std::size_t n, std::size_t w, double p) {
    detail::active_table().convolve(in, out, n, w, p);
}

support::SimdTier kernel_tier() { return detail::active_table().tier; }

bool set_kernel_tier(support::SimdTier tier) {
    if (!support::simd_tier_supported(tier)) return false;
    detail::publish(detail::table_for(tier));
    return true;
}

}  // namespace ld::prob
