// The shared inner loop of every Poisson-binomial-style DP in this repo:
// convolving a pmf with the two-point distribution {0 ↦ 1−p, w ↦ p}.
//
// The historical implementation iterated the pmf *downwards in place*
// (`pmf[s+w] += pmf[s]·p; pmf[s] *= 1−p`), which carries a loop
// dependence of distance w and defeats auto-vectorization for the
// common w = 1 case.  This kernel instead ping-pongs between two
// restrict-qualified buffers and walks forwards, so the hot interior is
// the FMA-shaped stream `out[s] = in[s]·q + in[s−w]·p` — independent
// lanes that GCC/Clang vectorize at -O2.  Per-entry arithmetic (values
// *and* rounding order) is identical to the in-place loop, so results
// are bit-compatible with the pre-rewrite kernels.
//
// Shared by the exact kernels (`PoissonBinomial`,
// `WeightedBernoulliSum`) and the windowed ε-truncated kernels
// (`prob/truncated.hpp`).

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace ld::prob {

/// Ping-pong DP buffers for the two-point convolution.  One per worker;
/// reused across tallies (and across replications when owned by a
/// `TallyScratch`).
struct ConvolveScratch {
    std::vector<double> front;  ///< current pmf (input of the next step)
    std::vector<double> back;   ///< output of the next step
};

namespace detail {

/// One convolution step: given `in[0, n)` — the pmf of a partial sum —
/// write the pmf after adding w·Bernoulli(p) into `out[0, n + w)`:
///
///   out[s] = in[s]·(1−p) + in[s−w]·p      (terms outside [0, n) are 0)
///
/// Requires w ≥ 1, n ≥ 1, and in/out non-overlapping (the __restrict
/// qualification is a promise, not a check).
inline void convolve_two_point(const double* __restrict in, double* __restrict out,
                               std::size_t n, std::size_t w, double p) {
    const double q = 1.0 - p;
    const std::size_t head = std::min(w, n);
    for (std::size_t s = 0; s < head; ++s) out[s] = in[s] * q;
    // w > n only: the gap [n, w) is reachable by neither term.
    for (std::size_t s = head; s < w; ++s) out[s] = 0.0;
    // The vectorizable interior: two independent streams, one FMA each.
    for (std::size_t s = w; s < n; ++s) out[s] = in[s] * q + in[s - w] * p;
    for (std::size_t s = std::max(n, w); s < n + w; ++s) out[s] = in[s - w] * p;
}

}  // namespace detail

}  // namespace ld::prob
