// The shared inner loop of every Poisson-binomial-style DP in this repo:
// convolving a pmf with the two-point distribution {0 ↦ 1−p, w ↦ p}.
//
// The historical implementation iterated the pmf *downwards in place*
// (`pmf[s+w] += pmf[s]·p; pmf[s] *= 1−p`), which carries a loop
// dependence of distance w and defeats auto-vectorization for the
// common w = 1 case.  The scalar kernel below instead ping-pongs between
// two restrict-qualified buffers and walks forwards, so the hot interior
// is the stream `out[s] = in[s]·q + in[s−w]·p` — independent lanes.
//
// On top of the scalar reference sit explicit AVX2 / AVX-512
// specializations (`prob/convolve_simd.cpp`), selected once at runtime
// from CPU features (`support/cpu_features`) or pinned via `--simd` /
// LIQUIDD_SIMD.  Every tier evaluates the *same* mul/mul/add expression
// per element — no FMA contraction anywhere — so all tiers, and the
// batched lockstep kernels built from them, are bit-identical to the
// scalar loop.  The tier choice is a pure performance/attribution knob;
// determinism contracts and the certified ε accounting of the truncated
// kernels are unaffected.
//
// Shared by the exact kernels (`PoissonBinomial`,
// `WeightedBernoulliSum`), the windowed ε-truncated kernels
// (`prob/truncated.hpp`), and the batched SoA tally
// (`prob/batch_tally.hpp`).

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/cpu_features.hpp"

namespace ld::prob {

/// Ping-pong DP buffers for the two-point convolution.  One per worker;
/// reused across tallies (and across replications when owned by a
/// `TallyScratch`).
struct ConvolveScratch {
    std::vector<double> front;  ///< current pmf (input of the next step)
    std::vector<double> back;   ///< output of the next step
};

namespace detail {

/// One convolution step: given `in[0, n)` — the pmf of a partial sum —
/// write the pmf after adding w·Bernoulli(p) into `out[0, n + w)`:
///
///   out[s] = in[s]·(1−p) + in[s−w]·p      (terms outside [0, n) are 0)
///
/// Requires w ≥ 1, n ≥ 1, and in/out non-overlapping (the __restrict
/// qualification is a promise, not a check).  This is the portable
/// reference all SIMD tiers must match bit-for-bit.
inline void convolve_two_point_scalar(const double* __restrict in,
                                      double* __restrict out,
                                      std::size_t n, std::size_t w, double p) {
    const double q = 1.0 - p;
    const std::size_t head = std::min(w, n);
    for (std::size_t s = 0; s < head; ++s) out[s] = in[s] * q;
    // w > n only: the gap [n, w) is reachable by neither term.
    for (std::size_t s = head; s < w; ++s) out[s] = 0.0;
    // The vectorizable interior: two independent streams.
    for (std::size_t s = w; s < n; ++s) out[s] = in[s] * q + in[s - w] * p;
    for (std::size_t s = std::max(n, w); s < n + w; ++s) out[s] = in[s - w] * p;
}

/// Single-pmf convolution step, any tier.
using ConvolveFn = void (*)(const double* __restrict in, double* __restrict out,
                            std::size_t n, std::size_t w, double p);

/// Number of interleaved pmf lanes advanced per batched step.  Fixed at
/// compile time so element (s, k) lives at `[s * kBatchLanes + k]` and one
/// AVX-512 vector (or two AVX2 vectors) covers a full row.
inline constexpr std::size_t kBatchLanes = 8;

/// One lockstep convolution step over kBatchLanes interleaved pmfs.
/// Lane k convolves its current pmf `in[· * kBatchLanes + k]` of width
/// n[k] with {0 ↦ 1−p[k], w[k] ↦ p[k]}, writing rows [0, smax).  A lane
/// with w[k] == 0 performs an identity copy of its live entries (used to
/// idle lanes that ran out of terms).  `smax` must cover every lane's
/// output width (max over k of n[k] + w[k]).
using BatchStepFn = void (*)(const double* __restrict in, double* __restrict out,
                             std::size_t smax, const std::int64_t* n,
                             const std::int64_t* w, const double* p);

/// Reference batched step: per-lane scalar region loops with the exact
/// arithmetic of `convolve_two_point_scalar` at stride kBatchLanes.
void batch_step_scalar(const double* __restrict in, double* __restrict out,
                       std::size_t smax, const std::int64_t* n,
                       const std::int64_t* w, const double* p);

/// Active batched-step kernel for the current tier.
BatchStepFn batch_step_kernel();

/// Upper bound on the number of consecutive unit-weight steps a fused
/// pass advances at once (bounded by how many carried row registers fit;
/// tiers with fewer vector registers fuse shallower — see
/// `batch_fused_depth`).
inline constexpr std::size_t kMaxFusedSteps = 8;

/// Fused run of `steps` ∈ [1, kMaxFusedSteps] consecutive batched
/// convolution steps where every lane has the same width `n0` and every
/// step convolves every lane with a unit-weight term (w = 1).
/// `p[f * kBatchLanes + k]` is lane k's probability at fused step f.
/// Writes rows [0, n0 + steps).  The DP ping-pongs once for the whole
/// run — one read and one write per row per `steps` convolution steps,
/// which is what makes the batched tally compute-bound instead of
/// L2-bandwidth-bound.  Each intermediate level evaluates the exact
/// mul/mul/add of the scalar reference (terms outside a level's width
/// contribute exactly +0.0), so fused results stay bit-identical.
using BatchFusedFn = void (*)(const double* __restrict in, double* __restrict out,
                              std::size_t n0, std::size_t steps, const double* p);

/// Active fused unit-weight kernel for the current tier.
BatchFusedFn batch_fused_kernel();

/// Deepest fused run the active tier supports (≤ kMaxFusedSteps).
std::size_t batch_fused_depth();

/// Active single-pmf kernel for the current tier.  DP drivers hoist this
/// out of their step loops so the per-step cost is one indirect call,
/// not a dispatch lookup per convolution.
ConvolveFn convolve_kernel();

}  // namespace detail

/// Runtime-dispatched two-point convolution step.  Same contract as
/// `detail::convolve_two_point_scalar`; bit-identical on every tier.
void convolve_two_point(const double* __restrict in, double* __restrict out,
                        std::size_t n, std::size_t w, double p);

/// Tier the dispatched kernels currently run at.  First use resolves the
/// tier once: LIQUIDD_SIMD if set and valid, otherwise the widest tier
/// the host supports.
support::SimdTier kernel_tier();

/// Pin the kernel tier (CLI `--simd`, tests).  Returns false — leaving
/// the active tier unchanged — when the host cannot execute `tier`.
bool set_kernel_tier(support::SimdTier tier);

}  // namespace ld::prob
