// Segmented product tree over weighted-Bernoulli sink factors — the tally
// half of the incremental churn engine (docs/CHURN.md).
//
// The exact tally of a realized delegation graph is the distribution of
// S = Σ w_i X_i over the voting sinks, a weighted Poisson binomial built
// by convolving one two-point factor {0 ↦ 1−p_i, w_i ↦ p_i} per sink.
// Rebuilding that product after a single-sink change costs O(#sinks · W);
// *dividing out* the old factor is numerically unstable (the deconvolution
// error amplifies by 1/(1−2p) per step, unbounded at p ≈ ½).  Instead we
// keep the partial products: a complete binary tree whose leaf `slot` holds
// voter slot's factor and whose internal nodes hold the convolution of
// their children, so one leaf change re-convolves only the O(log n) nodes
// on its root path.
//
// Certified truncation: each internal node stores a *windowed* pmf — after
// convolving its children it may drop leading/trailing tail mass up to a
// per-node budget τ = ε / #internal-nodes, and records exactly how much it
// dropped.  `error_bound()` returns Σ dropped over the current tree, a
// rigorous bound on |reported − exact| for any tail query (mass is only
// ever removed, never misplaced), and it never exceeds ε no matter how
// many updates have been applied, because recomputing a node *replaces*
// its dropped mass rather than accumulating it.  ε = 0 keeps every node
// exact (identical support to the full DP).
//
// Determinism: plain double loops, no SIMD dispatch — results are
// bit-identical across kernel tiers and across any update order that
// produces the same leaf state *per node shape*; tests compare against the
// tier-dispatched reference tally within error_bound().

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ld::prob {

/// Windowed pmf of a partial sum: mass[i] = P[S = lo + i].
struct FactorWindow {
    std::uint64_t lo = 0;
    std::vector<double> mass;
};

class FactorTree {
public:
    FactorTree() = default;

    /// Rebuild for `slots` leaf positions with total certified clip budget
    /// `epsilon` (>= 0).  All leaves start as identity (no factor).
    void reset(std::size_t slots, double epsilon);

    std::size_t slots() const noexcept { return slots_; }
    double epsilon() const noexcept { return epsilon_; }

    /// Set leaf `slot` to the two-point factor {0 ↦ 1−p, weight ↦ p} and
    /// recompute its root path (deferred in bulk mode).  weight may be 0
    /// (a sink holding no votes contributes nothing but stays "active").
    void set_factor(std::size_t slot, std::uint64_t weight, double p);

    /// Clear leaf `slot` back to identity (the voter is no longer a sink).
    void clear_factor(std::size_t slot);

    bool has_factor(std::size_t slot) const;
    std::uint64_t factor_weight(std::size_t slot) const;
    double factor_p(std::size_t slot) const;

    /// Defer path recomputation across a batch of set/clear calls;
    /// end_bulk() rebuilds every touched subtree bottom-up (one combine
    /// per node, the O(n) build path — use for initial population).
    void begin_bulk();
    void end_bulk();

    /// Σ weights of active factors (the total cast weight W).
    std::uint64_t total_weight() const noexcept { return total_weight_; }

    /// P[S > threshold] over the active factors.
    double tail_above(std::uint64_t threshold) const;

    /// P[2S > W] — the strict weighted-majority tally.  0 when W == 0
    /// (no votes cast can never be a correct decision).
    double majority_probability() const;

    /// Certified bound on |reported − exact| for tail queries: the total
    /// tail mass currently dropped across all nodes (<= epsilon).
    double error_bound() const;

    /// Approximate resident bytes of all node windows (capacity-based).
    std::size_t resident_bytes() const;

private:
    struct Leaf {
        std::uint64_t weight = 0;
        double p = 0.0;
        bool active = false;
    };

    void combine(std::size_t node);
    void recompute_path(std::size_t slot);

    std::size_t slots_ = 0;
    std::size_t cap_ = 0;  ///< leaf capacity, power of two >= max(slots, 1)
    double epsilon_ = 0.0;
    double clip_tau_ = 0.0;  ///< per-node drop budget
    std::uint64_t total_weight_ = 0;
    double dropped_total_ = 0.0;  ///< running Σ dropped_ (== error_bound())
    bool bulk_ = false;
    std::vector<Leaf> leaves_;
    std::vector<std::uint8_t> bulk_dirty_;  ///< per-leaf, consumed by end_bulk
    std::vector<FactorWindow> nodes_;       ///< heap layout, root = 1
    std::vector<double> dropped_;           ///< mass clipped at each node
    std::vector<double> scratch_;           ///< combine staging buffer
};

}  // namespace ld::prob
