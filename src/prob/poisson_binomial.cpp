#include "prob/poisson_binomial.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace ld::prob {

using support::expects;

PoissonBinomial::PoissonBinomial(std::span<const double> probabilities) {
    pmf_.assign(probabilities.size() + 1, 0.0);
    pmf_[0] = 1.0;
    std::size_t used = 0;
    for (double p : probabilities) {
        expects(p >= 0.0 && p <= 1.0, "PoissonBinomial: probability out of [0,1]");
        // In-place convolution with {1-p, p}; iterate downwards so each
        // entry is read before being overwritten.
        for (std::size_t k = used + 1; k-- > 0;) {
            pmf_[k + 1] += pmf_[k] * p;
            pmf_[k] *= (1.0 - p);
        }
        ++used;
        mean_ += p;
        variance_ += p * (1.0 - p);
    }
}

double PoissonBinomial::pmf(std::size_t k) const {
    expects(k < pmf_.size(), "pmf: k out of range");
    return pmf_[k];
}

double PoissonBinomial::cdf(std::size_t k) const {
    expects(k < pmf_.size(), "cdf: k out of range");
    double acc = 0.0;
    for (std::size_t i = 0; i <= k; ++i) acc += pmf_[i];
    return std::min(acc, 1.0);
}

double PoissonBinomial::tail_above(double t) const {
    double acc = 0.0;
    for (std::size_t k = 0; k < pmf_.size(); ++k) {
        if (static_cast<double>(k) > t) acc += pmf_[k];
    }
    return std::min(acc, 1.0);
}

double direct_majority_probability(std::span<const double> probabilities) {
    return PoissonBinomial(probabilities).majority_probability();
}

}  // namespace ld::prob
