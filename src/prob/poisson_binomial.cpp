#include "prob/poisson_binomial.hpp"

#include <algorithm>
#include <cmath>

#include "prob/convolve.hpp"
#include "support/expect.hpp"
#include "support/fpu.hpp"

namespace ld::prob {

using support::expects;

namespace {

/// Kahan-compensated running sum: `acc.add(x)` loses no low-order mass to
/// cancellation across the ~n additions of a prefix/suffix sweep.
struct CompensatedSum {
    double sum = 0.0;
    double carry = 0.0;
    void add(double x) noexcept {
        const double y = x - carry;
        const double t = sum + y;
        carry = (t - sum) - y;
        sum = t;
    }
};

}  // namespace

PoissonBinomial::PoissonBinomial(std::span<const double> probabilities) {
    const std::size_t n = probabilities.size();
    std::vector<double> front(n + 1), back(n + 1);
    front[0] = 1.0;
    // Flush subnormals for the DP — see support/fpu.hpp.  Flushed mass
    // < (n+1)·2⁻¹⁰²² total, far below the compensated-sum noise floor.
    const support::ScopedFlushDenormals ftz;
    const detail::ConvolveFn kern = detail::convolve_kernel();
    std::size_t width = 1;
    for (double p : probabilities) {
        expects(p >= 0.0 && p <= 1.0, "PoissonBinomial: probability out of [0,1]");
        kern(front.data(), back.data(), width, 1, p);
        front.swap(back);
        ++width;
        mean_ += p;
        variance_ += p * (1.0 - p);
    }
    pmf_ = std::move(front);

    // Compensated prefix/suffix sums make cdf() and tail_above() O(1).
    cdf_.resize(n + 1);
    CompensatedSum prefix;
    for (std::size_t k = 0; k <= n; ++k) {
        prefix.add(pmf_[k]);
        cdf_[k] = prefix.sum;
    }
    suffix_.resize(n + 2);
    suffix_[n + 1] = 0.0;
    CompensatedSum tail;
    for (std::size_t k = n + 1; k-- > 0;) {
        tail.add(pmf_[k]);
        suffix_[k] = tail.sum;
    }
}

double PoissonBinomial::pmf(std::size_t k) const {
    expects(k < pmf_.size(), "pmf: k out of range");
    return pmf_[k];
}

double PoissonBinomial::cdf(std::size_t k) const {
    expects(k < pmf_.size(), "cdf: k out of range");
    return std::min(cdf_[k], 1.0);
}

double PoissonBinomial::tail_above(double t) const {
    // P[X > t] = Σ_{k ≥ k0} pmf_[k] with k0 the smallest integer > t.
    if (!(t >= 0.0)) return std::min(suffix_[0], 1.0);
    const double k0 = std::floor(t) + 1.0;
    if (k0 >= static_cast<double>(suffix_.size())) return 0.0;
    return std::min(suffix_[static_cast<std::size_t>(k0)], 1.0);
}

double direct_majority_probability(std::span<const double> probabilities) {
    return PoissonBinomial(probabilities).majority_probability();
}

}  // namespace ld::prob
