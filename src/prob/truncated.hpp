// Windowed ε-truncated Poisson-binomial kernels.
//
// The exact DP (`PoissonBinomial`, `WeightedBernoulliSum`) carries the
// full pmf over {0, …, W} through every convolution step — O(#terms·W)
// work — even though, by Chernoff/Bernstein tails (`prob/bounds.hpp`),
// only an O(σ·√log(1/ε)) window around the running mean holds mass
// above ε.  These kernels track a live support window `[lo, hi]` during
// the same two-point convolution (`prob/convolve.hpp`), drop edge
// entries once their cumulative mass fits inside a configurable budget
// ε, and return a *certified* error bound alongside every tail query:
// the truncated pmf is a pointwise lower bound on the exact pmf whose
// total deficit equals exactly the dropped mass, so for any event A,
//
//   0 ≤ P(A) − Q(A) ≤ dropped ≤ ε   ⇒   |ΔP| ≤ ε, proven, not assumed.
//
// The weighted majority variant additionally knows its threshold
// t = W/2 up front and *retires* mass exactly (zero error) as soon as
// its side of the threshold is decided: window entries above t can only
// move up (weights are non-negative) and are banked into the tail sum;
// entries that cannot reach t even if every remaining vote succeeds are
// banked as settled non-tail mass.  Only the ε-trimmed remainder is
// uncertain, so the certified bound stays ≤ ε/2 of the reported value.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "prob/convolve.hpp"

namespace ld::prob {

/// ε-truncated law of Σ Bernoulli(p_i): the exact windowed sub-pmf over
/// `[window_lo, window_hi]`, with everything outside certified to hold
/// at most `certified_error()` total mass.  Cost O(n · window) instead
/// of O(n²); the window is O(σ·√log(1/ε)) wide in the regimes the
/// Chernoff bounds cover.  ε = 0 degenerates to the exact distribution.
class TruncatedPoissonBinomial {
public:
    TruncatedPoissonBinomial(std::span<const double> probabilities, double epsilon);

    std::size_t trial_count() const noexcept { return trials_; }

    /// Inclusive live support window after truncation.
    std::size_t window_lo() const noexcept { return lo_; }
    std::size_t window_hi() const noexcept { return lo_ + pmf_.size() - 1; }
    std::size_t window_width() const noexcept { return pmf_.size(); }

    /// Truncated P[X = k]; zero outside the window.  Underestimates the
    /// exact pmf by at most `certified_error()` in total.
    double pmf(std::size_t k) const noexcept;

    /// Windowed sub-pmf, index 0 ↦ window_lo().
    std::span<const double> pmf_span() const noexcept { return pmf_; }

    /// Truncated P[X > t].  The exact tail lies within
    /// [tail_above(t), tail_above(t) + certified_error()].
    double tail_above(double t) const noexcept;

    /// Total mass dropped by the truncation — the proven bound on
    /// |exact − truncated| for any event probability.  Always ≤ ε.
    double certified_error() const noexcept { return dropped_; }

    /// E[X] = Σ p_i (exact, not truncated).
    double mean() const noexcept { return mean_; }

    /// Var[X] = Σ p_i(1−p_i) (exact, not truncated).
    double variance() const noexcept { return variance_; }

    /// Truncated P[X > n/2]; exact value within certified_error().
    double majority_probability() const noexcept {
        return tail_above(static_cast<double>(trials_) / 2.0);
    }

private:
    std::vector<double> pmf_;  ///< window entries, pmf_[j] = Q[X = lo_ + j]
    std::size_t trials_ = 0;
    std::size_t lo_ = 0;
    double dropped_ = 0.0;
    double mean_ = 0.0;
    double variance_ = 0.0;
};

/// Result of one ε-truncated weighted-majority tally.
struct TruncatedTally {
    /// Estimate of P[S > W/2] — the midpoint of the certified interval.
    double tail = 0.0;
    /// Proven bound: |exact − tail| ≤ error_bound ≤ ε/2.
    double error_bound = 0.0;
    /// Peak live window width over the DP — the effective per-term cost
    /// (the exact kernel's equivalent is W + 1).
    std::size_t max_window = 0;
    /// W = Σ w_i.
    std::uint64_t total_weight = 0;
};

/// ε-truncated replacement for `weighted_majority_probability`: the
/// probability that Σ w_i · Bernoulli(p_i) strictly exceeds W/2, within
/// a certified error of ε/2, in ~O(#terms · window) time.  Buffers come
/// from `scratch` — the zero-allocation inner step of the replication
/// loop.  ε = 0 keeps the threshold-retirement fast path but performs
/// no lossy truncation (error_bound == 0, result exact).
TruncatedTally truncated_weighted_majority(std::span<const std::uint64_t> weights,
                                           std::span<const double> probs,
                                           double epsilon, ConvolveScratch& scratch);

}  // namespace ld::prob
