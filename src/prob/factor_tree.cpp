#include "prob/factor_tree.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::prob {

using support::expects;

namespace {

bool is_identity(const FactorWindow& w) noexcept {
    return w.lo == 0 && w.mass.size() == 1 && w.mass[0] == 1.0;
}

void make_identity(FactorWindow& w) {
    w.lo = 0;
    w.mass.assign(1, 1.0);
}

}  // namespace

void FactorTree::reset(std::size_t slots, double epsilon) {
    expects(epsilon >= 0.0 && epsilon < 1.0, "FactorTree: epsilon must be in [0, 1)");
    slots_ = slots;
    cap_ = 1;
    while (cap_ < std::max<std::size_t>(slots, 1)) cap_ <<= 1;
    epsilon_ = epsilon;
    const std::size_t internal = cap_ > 1 ? cap_ - 1 : 1;
    clip_tau_ = epsilon > 0.0 ? epsilon / static_cast<double>(internal) : 0.0;
    total_weight_ = 0;
    dropped_total_ = 0.0;
    bulk_ = false;
    leaves_.assign(slots_, Leaf{});
    bulk_dirty_.assign(slots_, 0);
    nodes_.assign(2 * cap_, FactorWindow{});
    for (auto& node : nodes_) make_identity(node);
    dropped_.assign(2 * cap_, 0.0);
}

bool FactorTree::has_factor(std::size_t slot) const {
    expects(slot < slots_, "FactorTree: slot out of range");
    return leaves_[slot].active;
}

std::uint64_t FactorTree::factor_weight(std::size_t slot) const {
    expects(slot < slots_, "FactorTree: slot out of range");
    return leaves_[slot].weight;
}

double FactorTree::factor_p(std::size_t slot) const {
    expects(slot < slots_, "FactorTree: slot out of range");
    return leaves_[slot].p;
}

void FactorTree::set_factor(std::size_t slot, std::uint64_t weight, double p) {
    expects(slot < slots_, "FactorTree: slot out of range");
    expects(p >= 0.0 && p <= 1.0, "FactorTree: p must be a probability");
    Leaf& leaf = leaves_[slot];
    if (leaf.active && leaf.weight == weight && leaf.p == p) return;
    total_weight_ -= leaf.active ? leaf.weight : 0;
    leaf = Leaf{weight, p, true};
    total_weight_ += weight;

    FactorWindow& window = nodes_[cap_ + slot];
    if (weight == 0 || p <= 0.0) {
        make_identity(window);  // point mass at 0 correct weight
    } else if (p >= 1.0) {
        window.lo = weight;
        window.mass.assign(1, 1.0);
    } else {
        window.lo = 0;
        window.mass.assign(weight + 1, 0.0);
        window.mass.front() = 1.0 - p;
        window.mass.back() = p;
    }
    if (bulk_) {
        bulk_dirty_[slot] = 1;
    } else {
        recompute_path(slot);
    }
}

void FactorTree::clear_factor(std::size_t slot) {
    expects(slot < slots_, "FactorTree: slot out of range");
    Leaf& leaf = leaves_[slot];
    if (!leaf.active) return;
    total_weight_ -= leaf.weight;
    leaf = Leaf{};
    make_identity(nodes_[cap_ + slot]);
    if (bulk_) {
        bulk_dirty_[slot] = 1;
    } else {
        recompute_path(slot);
    }
}

void FactorTree::begin_bulk() { bulk_ = true; }

void FactorTree::end_bulk() {
    bulk_ = false;
    if (cap_ == 1) {
        std::fill(bulk_dirty_.begin(), bulk_dirty_.end(), 0);
        return;
    }
    // Mark every internal ancestor of a touched leaf, then combine each
    // marked node exactly once, bottom-up — the O(n) build path.
    std::vector<std::uint8_t> node_dirty(cap_, 0);
    bool any = false;
    for (std::size_t slot = 0; slot < slots_; ++slot) {
        if (!bulk_dirty_[slot]) continue;
        bulk_dirty_[slot] = 0;
        any = true;
        for (std::size_t node = (cap_ + slot) / 2; node >= 1; node /= 2) {
            if (node_dirty[node]) break;  // the rest of the path is marked
            node_dirty[node] = 1;
        }
    }
    if (!any) return;
    for (std::size_t node = cap_ - 1; node >= 1; --node) {
        if (node_dirty[node]) combine(node);
    }
}

void FactorTree::combine(std::size_t node) {
    const FactorWindow& a = nodes_[2 * node];
    const FactorWindow& b = nodes_[2 * node + 1];
    FactorWindow& out = nodes_[node];
    dropped_total_ -= dropped_[node];
    dropped_[node] = 0.0;
    if (is_identity(a)) {
        out.lo = b.lo;
        out.mass.assign(b.mass.begin(), b.mass.end());
        dropped_total_ += dropped_[node];
        return;
    }
    if (is_identity(b)) {
        out.lo = a.lo;
        out.mass.assign(a.mass.begin(), a.mass.end());
        dropped_total_ += dropped_[node];
        return;
    }
    const std::size_t width = a.mass.size() + b.mass.size() - 1;
    scratch_.assign(width, 0.0);
    // Dense window convolution; iterate the smaller factor on the outside
    // so the inner loop is a long contiguous axpy the compiler vectorises.
    const FactorWindow& outer = a.mass.size() <= b.mass.size() ? a : b;
    const FactorWindow& inner = a.mass.size() <= b.mass.size() ? b : a;
    for (std::size_t j = 0; j < outer.mass.size(); ++j) {
        const double f = outer.mass[j];
        if (f == 0.0) continue;
        double* __restrict dst = scratch_.data() + j;
        const double* __restrict src = inner.mass.data();
        for (std::size_t i = 0; i < inner.mass.size(); ++i) dst[i] += f * src[i];
    }
    // Clip: trim tail entries (leading and trailing) while the total mass
    // dropped at this node stays within its budget; exact zeros are free.
    std::size_t first = 0;
    std::size_t last = width;  // one past the end
    double dropped = 0.0;
    while (last - first > 1 && dropped + scratch_[first] <= clip_tau_) {
        dropped += scratch_[first];
        ++first;
    }
    while (last - first > 1 && dropped + scratch_[last - 1] <= clip_tau_) {
        dropped += scratch_[last - 1];
        --last;
    }
    out.lo = a.lo + b.lo + first;
    out.mass.assign(scratch_.begin() + static_cast<std::ptrdiff_t>(first),
                    scratch_.begin() + static_cast<std::ptrdiff_t>(last));
    dropped_[node] = dropped;
    dropped_total_ += dropped;
}

void FactorTree::recompute_path(std::size_t slot) {
    for (std::size_t node = (cap_ + slot) / 2; node >= 1; node /= 2) {
        combine(node);
    }
}

double FactorTree::tail_above(std::uint64_t threshold) const {
    const FactorWindow& root = nodes_[1];
    double tail = 0.0;
    // Sum high-to-low so tiny tail terms accumulate before the big ones.
    for (std::size_t i = root.mass.size(); i-- > 0;) {
        if (root.lo + i > threshold) {
            tail += root.mass[i];
        } else {
            break;
        }
    }
    return tail;
}

double FactorTree::majority_probability() const {
    const std::uint64_t w = total_weight_;
    if (w == 0) return 0.0;
    return tail_above(w / 2);  // strict majority: 2S > W  <=>  S > floor(W/2)
}

double FactorTree::error_bound() const { return dropped_total_; }

std::size_t FactorTree::resident_bytes() const {
    std::size_t bytes = 0;
    for (const auto& node : nodes_) bytes += node.mass.capacity() * sizeof(double);
    return bytes;
}

}  // namespace ld::prob
