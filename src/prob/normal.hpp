// Normal-distribution utilities.  The paper's Lemma 4 (quoted from Kahng et
// al.) justifies approximating the direct-voting outcome by a normal with
// matched mean/variance; Lemma 3's anti-concentration argument is an erf
// bound we evaluate with these functions.

#pragma once

namespace ld::prob {

/// Standard normal density φ(x).
double normal_pdf(double x);

/// Standard normal CDF Φ(x), via std::erfc for accuracy in the tails.
double normal_cdf(double x);

/// General normal CDF with mean mu, standard deviation sigma > 0.
double normal_cdf(double x, double mu, double sigma);

/// Inverse standard normal CDF (quantile).  Acklam's rational approximation
/// refined with one Halley step; |error| < 1e-13 over (0, 1).
double normal_quantile(double p);

/// P[|Z| <= r] for standard normal Z — the two-sided window mass
/// erf(r / √2).  This is the quantity bounded in Lemma 3: the probability
/// that the direct-voting sum lands within ±r·σ of its mean, i.e. the
/// probability a small number of flipped votes can change the outcome.
double central_window_mass(double r);

/// Probability mass of the interval (lo, hi) under N(mu, sigma²).
double interval_mass(double lo, double hi, double mu, double sigma);

}  // namespace ld::prob
