#include "prob/truncated.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"
#include "support/fpu.hpp"

namespace ld::prob {

using support::expects;

namespace {

void check_epsilon(double epsilon) {
    expects(epsilon >= 0.0 && epsilon < 1.0,
            "truncated kernel: epsilon must be in [0, 1)");
}

}  // namespace

TruncatedPoissonBinomial::TruncatedPoissonBinomial(std::span<const double> probabilities,
                                                   double epsilon) {
    check_epsilon(epsilon);
    trials_ = probabilities.size();
    std::vector<double> front(trials_ + 1), back(trials_ + 1);
    front[0] = 1.0;
    std::size_t base = 0;   // window = front[base, base + width)
    std::size_t width = 1;  // live entries
    std::size_t done = 0;
    const auto m = static_cast<double>(trials_ == 0 ? 1 : trials_);
    // Flush subnormals for the DP (support/fpu.hpp).  The flushed mass
    // is < (n+1)·2⁻¹⁰²² in total — absorbed by the certified ε budget
    // (and by double rounding noise when ε = 0).
    const support::ScopedFlushDenormals ftz;
    const detail::ConvolveFn kern = detail::convolve_kernel();
    for (double p : probabilities) {
        expects(p >= 0.0 && p <= 1.0,
                "TruncatedPoissonBinomial: probability out of [0,1]");
        mean_ += p;
        variance_ += p * (1.0 - p);
        kern(front.data() + base, back.data(), width, 1, p);
        front.swap(back);
        base = 0;
        ++width;
        ++done;
        // Trim edge entries while the cumulative dropped mass stays inside
        // the budget ε·(done/m) — a linear schedule, so later (wider)
        // steps always have headroom and the total can never exceed ε.
        const double allowed = epsilon * static_cast<double>(done) / m;
        while (width > 1 && dropped_ + front[base] <= allowed) {
            dropped_ += front[base];
            ++base;
            ++lo_;
            --width;
        }
        while (width > 1 && dropped_ + front[base + width - 1] <= allowed) {
            dropped_ += front[base + width - 1];
            --width;
        }
    }
    pmf_.assign(front.begin() + static_cast<std::ptrdiff_t>(base),
                front.begin() + static_cast<std::ptrdiff_t>(base + width));
}

double TruncatedPoissonBinomial::pmf(std::size_t k) const noexcept {
    if (k < lo_ || k >= lo_ + pmf_.size()) return 0.0;
    return pmf_[k - lo_];
}

double TruncatedPoissonBinomial::tail_above(double t) const noexcept {
    double acc = 0.0;
    for (std::size_t j = pmf_.size(); j-- > 0;) {
        if (static_cast<double>(lo_ + j) > t) acc += pmf_[j];
        else break;
    }
    return std::min(acc, 1.0);
}

TruncatedTally truncated_weighted_majority(std::span<const std::uint64_t> weights,
                                           std::span<const double> probs,
                                           double epsilon, ConvolveScratch& scratch) {
    expects(weights.size() == probs.size(),
            "truncated_weighted_majority: weights/probs length mismatch");
    check_epsilon(epsilon);
    std::uint64_t total = 0;
    std::size_t terms = 0;  // non-zero-weight entries, for the ε schedule
    for (std::size_t i = 0; i < weights.size(); ++i) {
        expects(probs[i] >= 0.0 && probs[i] <= 1.0,
                "truncated_weighted_majority: probability out of [0,1]");
        total += weights[i];
        if (weights[i] != 0) ++terms;
    }
    const double threshold = static_cast<double>(total) / 2.0;

    auto& front = scratch.front;
    auto& back = scratch.back;
    front.resize(static_cast<std::size_t>(total) + 1);
    back.resize(static_cast<std::size_t>(total) + 1);
    front[0] = 1.0;

    // Flush subnormals for the DP (support/fpu.hpp); flushed mass
    // < (W+1)·2⁻¹⁰²² rides inside the certified error budget.
    const support::ScopedFlushDenormals ftz;
    const detail::ConvolveFn kern = detail::convolve_kernel();
    std::size_t base = 0;   // window = front[base, base + width)
    std::size_t width = 1;  // live entries
    std::uint64_t lo = 0;   // absolute value of front[base]
    std::uint64_t remaining = total;
    double retired_tail = 0.0;  // mass certainly > threshold (exact)
    double retired_low = 0.0;   // mass certainly ≤ threshold (exact)
    double dropped = 0.0;       // ε-trimmed mass — the only uncertainty
    TruncatedTally result;
    result.total_weight = total;
    result.max_window = 1;

    std::size_t done = 0;
    for (std::size_t i = 0; i < weights.size() && width > 0; ++i) {
        const std::size_t w = static_cast<std::size_t>(weights[i]);
        if (w == 0) continue;
        const double p = probs[i];
        kern(front.data() + base, back.data(), width, w, p);
        front.swap(back);
        base = 0;
        width += w;
        remaining -= w;
        ++done;
        result.max_window = std::max(result.max_window, width);
        // Exact retirement, zero error: weights are non-negative, so a
        // window entry above the threshold can only stay above it, and
        // one that cannot reach it even if every remaining vote succeeds
        // is settled below.  Both sides bank their mass and leave the
        // window — this is what clamps the window at the threshold.
        while (width > 0 &&
               static_cast<double>(lo + static_cast<std::uint64_t>(width) - 1) > threshold) {
            retired_tail += front[base + width - 1];
            --width;
        }
        while (width > 0 && static_cast<double>(lo + remaining) <= threshold) {
            retired_low += front[base];
            ++base;
            ++lo;
            --width;
        }
        // ε-trim the undecided edges inside the linear budget schedule.
        const double allowed =
            epsilon * static_cast<double>(done) / static_cast<double>(terms);
        while (width > 1 && dropped + front[base] <= allowed) {
            dropped += front[base];
            ++base;
            ++lo;
            --width;
        }
        while (width > 1 && dropped + front[base + width - 1] <= allowed) {
            dropped += front[base + width - 1];
            --width;
        }
    }
    // Settle any leftover window (only reachable when no non-zero weight
    // was processed, e.g. everyone abstained): remaining == 0, so each
    // entry is decided by its own position.
    for (std::size_t j = 0; j < width; ++j) {
        if (static_cast<double>(lo + j) > threshold) retired_tail += front[base + j];
        else retired_low += front[base + j];
    }

    // The exact tail lies in [retired_tail, retired_tail + dropped];
    // report the midpoint so the certified radius is dropped/2 ≤ ε/2.
    result.tail = std::min(retired_tail + 0.5 * dropped, 1.0);
    result.error_bound = 0.5 * dropped;
    return result;
}

}  // namespace ld::prob
