// Batched struct-of-arrays weighted-majority tally: advance up to
// kBatchLanes replications' DP vectors in lockstep — one instruction
// stream, K independent pmfs.
//
// Layout: element (s, k) of lane k's pmf lives at `buf[s * kBatchLanes
// + k]`, so one interleaved "row" holds the same pmf index of every
// lane and maps onto one AVX-512 vector (or two AVX2 vectors).  Each
// lockstep step convolves lane k's pmf with its next non-zero-weight
// term {0 ↦ 1−p, w ↦ p}; lanes that run out of terms idle with w = 0
// (an exact identity step) until the longest lane finishes.
//
// Bit-identity contract: lane k's result equals
// `weighted_majority_probability(weights_k, probs_k, scratch)` bit for
// bit, on every kernel tier and for every batch composition — batching
// 8 tallies, 3 tallies, or running them one by one can never change a
// published number.  See prob/convolve_simd.cpp for why the masked
// lockstep arithmetic preserves this.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "prob/convolve.hpp"

namespace ld::prob {

/// Lanes advanced per batched tally.  Re-exported from the kernel layer
/// so callers size their staging buffers without reaching into detail.
inline constexpr std::size_t kBatchTallyLanes = detail::kBatchLanes;

/// One lane's tally input: sink weights and matching competencies.
/// Spans must have equal length; zero weights are skipped exactly like
/// the sequential DP.  Empty lanes (nobody voted) tally to 0.
struct BatchTallyLane {
    std::span<const std::uint64_t> weights;
    std::span<const double> probs;
};

/// Reusable buffers for `batch_weighted_majority` — one per worker,
/// alongside its `ConvolveScratch`.
struct BatchTallyScratch {
    std::vector<double> front;  ///< interleaved pmfs, stride kBatchTallyLanes
    std::vector<double> back;
    std::array<std::int64_t, kBatchTallyLanes> width{};   ///< live pmf rows per lane
    std::array<std::int64_t, kBatchTallyLanes> step_w{};  ///< this step's weight per lane
    std::array<double, kBatchTallyLanes> step_p{};
    std::array<std::uint64_t, kBatchTallyLanes> total{};  ///< W_k = Σ weights
    std::array<std::size_t, kBatchTallyLanes> cursor{};   ///< next term index per lane
    /// Probabilities of a fused unit-weight run, `[f * lanes + k]`.
    std::array<double, detail::kMaxFusedSteps * kBatchTallyLanes> fused_p{};
};

/// P[S_k > W_k / 2] for every lane, written to `out[k]` in lane order.
/// Requires 1 ≤ lanes.size() ≤ kBatchTallyLanes and out.size() ≥
/// lanes.size().  Probabilities must lie in [0, 1] (checked).
void batch_weighted_majority(std::span<const BatchTallyLane> lanes,
                             std::span<double> out, BatchTallyScratch& scratch);

}  // namespace ld::prob
