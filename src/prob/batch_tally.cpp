#include "prob/batch_tally.hpp"

#include <algorithm>

#include "support/expect.hpp"
#include "support/fpu.hpp"

namespace ld::prob {

using support::expects;

void batch_weighted_majority(std::span<const BatchTallyLane> lanes,
                             std::span<double> out, BatchTallyScratch& scratch) {
    constexpr std::size_t K = kBatchTallyLanes;
    expects(!lanes.empty() && lanes.size() <= K,
            "batch_weighted_majority: lane count out of [1, kBatchTallyLanes]");
    expects(out.size() >= lanes.size(),
            "batch_weighted_majority: output span too short");

    // Per-lane totals (and input validation, mirroring the sequential DP).
    std::uint64_t cap = 0;
    for (std::size_t k = 0; k < K; ++k) {
        std::uint64_t total = 0;
        if (k < lanes.size()) {
            const BatchTallyLane& lane = lanes[k];
            expects(lane.weights.size() == lane.probs.size(),
                    "batch_weighted_majority: weights/probs length mismatch");
            for (std::size_t i = 0; i < lane.weights.size(); ++i) {
                expects(lane.probs[i] >= 0.0 && lane.probs[i] <= 1.0,
                        "batch_weighted_majority: probability out of [0,1]");
                total += lane.weights[i];
            }
        }
        scratch.total[k] = total;
        scratch.cursor[k] = 0;
        scratch.width[k] = 1;
        cap = std::max(cap, total);
    }

    const std::size_t rows = static_cast<std::size_t>(cap) + 1;
    // Rows are fully written before they are read (every step writes
    // rows [0, smax) and reads only rows live at the previous, smaller
    // smax), so neither buffer needs zeroing — only row 0, the initial
    // point mass, carries state.
    scratch.front.resize(rows * K);
    scratch.back.resize(rows * K);
    for (std::size_t k = 0; k < K; ++k) scratch.front[k] = 1.0;

    // Lockstep DP: each iteration feeds every lane its next non-zero
    // term; exhausted lanes idle on w = 0 identity steps until the
    // longest lane drains.  Subnormals are flushed exactly as in the
    // sequential drivers (support/fpu.hpp), so batched results stay
    // bit-identical to `weighted_majority_probability`.
    const support::ScopedFlushDenormals ftz;
    const detail::BatchStepFn step = detail::batch_step_kernel();
    const detail::BatchFusedFn fused_step = detail::batch_fused_kernel();
    const std::size_t fuse_depth = detail::batch_fused_depth();
    for (;;) {
        // Fused fast path: while every lane sits at the same width and
        // every lane's next term is unit-weight, advance up to
        // kMaxFusedSteps steps in one pass over the rows — the common
        // shape for liquid-democracy tallies, where most sinks carry
        // weight 1.  Unstaged lanes mirror lane 0, so partial batches
        // qualify too.
        bool same_width = true;
        for (std::size_t k = 1; k < K; ++k)
            same_width = same_width && scratch.width[k] == scratch.width[0];
        std::size_t fused = 0;
        while (same_width && fused < fuse_depth) {
            bool all_unit = true;
            for (std::size_t k = 0; k < lanes.size() && all_unit; ++k) {
                const BatchTallyLane& lane = lanes[k];
                std::size_t& cur = scratch.cursor[k];
                while (cur < lane.weights.size() && lane.weights[cur] == 0) ++cur;
                all_unit = cur < lane.weights.size() && lane.weights[cur] == 1;
            }
            if (!all_unit) break;
            for (std::size_t k = 0; k < K; ++k) {
                scratch.fused_p[fused * K + k] =
                    k < lanes.size() ? lanes[k].probs[scratch.cursor[k]++]
                                     : scratch.fused_p[fused * K];
            }
            ++fused;
        }
        if (fused > 0) {
            fused_step(scratch.front.data(), scratch.back.data(),
                       static_cast<std::size_t>(scratch.width[0]), fused,
                       scratch.fused_p.data());
            scratch.front.swap(scratch.back);
            for (std::size_t k = 0; k < K; ++k)
                scratch.width[k] += static_cast<std::int64_t>(fused);
            continue;
        }

        bool any_active = false;
        std::size_t smax = 0;
        for (std::size_t k = 0; k < K; ++k) {
            std::int64_t w = 0;
            double p = 0.0;
            if (k < lanes.size()) {
                const BatchTallyLane& lane = lanes[k];
                std::size_t& cur = scratch.cursor[k];
                while (cur < lane.weights.size() && lane.weights[cur] == 0) ++cur;
                if (cur < lane.weights.size()) {
                    w = static_cast<std::int64_t>(lane.weights[cur]);
                    p = lane.probs[cur];
                    ++cur;
                    any_active = true;
                }
            } else {
                // Unstaged lane: mirror lane 0's step so a partial batch
                // keeps the kernels' uniform fast path.  The mirrored
                // lane computes a copy of lane 0's pmf that the tail sum
                // below never reads.
                w = scratch.step_w[0];
                p = scratch.step_p[0];
            }
            scratch.step_w[k] = w;
            scratch.step_p[k] = p;
            smax = std::max(smax, static_cast<std::size_t>(scratch.width[k] + w));
        }
        if (!any_active) break;
        step(scratch.front.data(), scratch.back.data(), smax,
             scratch.width.data(), scratch.step_w.data(), scratch.step_p.data());
        scratch.front.swap(scratch.back);
        for (std::size_t k = 0; k < K; ++k) scratch.width[k] += scratch.step_w[k];
    }

    // Per-lane strict-majority tails, summed top-down in exactly the
    // order of `weighted_majority_probability` so results stay
    // bit-identical to the sequential tally.
    for (std::size_t k = 0; k < lanes.size(); ++k) {
        const std::uint64_t total = scratch.total[k];
        const double threshold = static_cast<double>(total) / 2.0;
        double acc = 0.0;
        for (std::size_t s = static_cast<std::size_t>(total) + 1; s-- > 0;) {
            if (static_cast<double>(s) > threshold) acc += scratch.front[s * K + k];
            else break;
        }
        out[k] = std::min(acc, 1.0);
    }
}

}  // namespace ld::prob
