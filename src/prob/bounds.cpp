#include "prob/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace ld::prob {

using support::expects;

double chernoff_lower_tail(double mu, double delta) {
    expects(mu >= 0.0, "chernoff_lower_tail: mean must be non-negative");
    expects(delta >= 0.0 && delta <= 1.0, "chernoff_lower_tail: delta out of [0,1]");
    return std::exp(-delta * delta * mu / 2.0);
}

double chernoff_upper_tail(double mu, double delta) {
    expects(mu >= 0.0, "chernoff_upper_tail: mean must be non-negative");
    expects(delta >= 0.0, "chernoff_upper_tail: delta must be non-negative");
    return std::exp(-delta * delta * mu / (2.0 + delta));
}

double hoeffding_two_sided(double t, double sum_sq_ranges) {
    expects(t >= 0.0, "hoeffding_two_sided: t must be non-negative");
    expects(sum_sq_ranges > 0.0, "hoeffding_two_sided: ranges must be positive");
    return std::min(1.0, 2.0 * std::exp(-2.0 * t * t / sum_sq_ranges));
}

double lemma6_deviation_bound(double t, double total_weight, double max_weight) {
    expects(total_weight > 0.0 && max_weight > 0.0, "lemma6: weights must be positive");
    // At least total_weight / max_weight sinks, each contributing at most
    // max_weight² to Σ (b_i − a_i)² — hence the bound below.
    return hoeffding_two_sided(t, total_weight * max_weight);
}

double lemma5_radius(std::size_t n, double eps, double max_weight, double c) {
    expects(c > 0.0, "lemma5_radius: c must be positive");
    return std::sqrt(std::pow(static_cast<double>(n), 1.0 + eps)) * max_weight / c;
}

double lemma5_failure_bound(std::size_t n, double eps, double c) {
    expects(c > 0.0, "lemma5_failure_bound: c must be positive");
    // Plugging t = radius into Lemma 6's 2·exp(−2t²/(n·w·w_max)) with the
    // conservative total_weight = n, max_weight = w:
    //   2·exp(−2·n^{1+eps}·w² / (c²·n·w²)) = 2·exp(−2·n^{eps}/c²).
    return std::min(1.0, 2.0 * std::exp(-2.0 * std::pow(static_cast<double>(n), eps) / (c * c)));
}

double lemma3_flip_probability(std::size_t n, double beta, double flipped_votes) {
    expects(beta > 0.0 && beta < 0.5, "lemma3: beta must be in (0, 1/2)");
    expects(flipped_votes >= 0.0, "lemma3: flipped_votes must be non-negative");
    const double sigma = std::sqrt(static_cast<double>(n) * beta * (1.0 - beta));
    // P[X^D within ±flipped_votes of the threshold] <= mass of a window of
    // half-width `flipped_votes` anywhere under N(mu, sigma²), which is at
    // most the central window mass erf(r/(σ√2)).
    return std::erf(flipped_votes / (sigma * 1.4142135623730951));
}

std::size_t lemma3_delegation_budget(std::size_t n, double eps) {
    expects(eps >= 0.0 && eps < 0.5, "lemma3_delegation_budget: eps out of [0, 1/2)");
    return static_cast<std::size_t>(std::floor(std::pow(static_cast<double>(n), 0.5 - eps)));
}

}  // namespace ld::prob
