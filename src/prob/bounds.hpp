// Concentration-inequality calculators used throughout the paper's proofs:
// Chernoff multiplicative bounds (Lemma 1), Hoeffding's inequality
// (Theorem 1 / Lemma 6), and the Lemma 3 erf anti-concentration bound.
// Benches print these alongside measured tail frequencies so the "paper
// bound vs measured" comparison is explicit.

#pragma once

#include <cstddef>

namespace ld::prob {

/// Chernoff multiplicative lower-tail bound for a sum X of independent
/// Bernoullis with mean mu:  P[X <= (1 − delta)·mu] <= exp(−delta²·mu / 2).
double chernoff_lower_tail(double mu, double delta);

/// Chernoff multiplicative upper-tail bound:
/// P[X >= (1 + delta)·mu] <= exp(−delta²·mu / (2 + delta)).
double chernoff_upper_tail(double mu, double delta);

/// Hoeffding two-sided bound for S = Σ X_i, a_i <= X_i <= b_i:
/// P[|S − E S| >= t] <= 2 exp(−2 t² / Σ (b_i − a_i)²).
/// `sum_sq_ranges` = Σ (b_i − a_i)².
double hoeffding_two_sided(double t, double sum_sq_ranges);

/// Specialisation of Hoeffding for `sink_count` sinks of weight at most
/// `max_weight` (Lemma 6): ranges are (b−a) = w_i <= max_weight, and there
/// are at least total_weight / max_weight sinks, so
/// Σ (b_i−a_i)² <= total_weight · max_weight.
double lemma6_deviation_bound(double t, double total_weight, double max_weight);

/// The deviation radius from Lemma 5: (1/c)·sqrt(n^{1+eps})·w per the paper
/// statement — with failure probability at most `lemma5_failure_bound`.
double lemma5_radius(std::size_t n, double eps, double max_weight, double c);

/// Failure probability e^{−Ω(n^{eps})} instantiated as exp(−n^{eps}·/(c²))
/// matching the Lemma 6 proof's `2 exp(−2 t²/(n·w²))` at t = radius.
double lemma5_failure_bound(std::size_t n, double eps, double c);

/// Lemma 3's flip-probability bound: the probability that the direct-vote
/// sum X^D falls within ±`flipped_votes` of the majority threshold, upper
/// bounded by erf(flipped_votes / (σ √2)) with σ >= sqrt(n·beta·(1−beta)).
double lemma3_flip_probability(std::size_t n, double beta, double flipped_votes);

/// Number of delegations allowed by Lemma 3: floor(n^{1/2 − eps}).
std::size_t lemma3_delegation_budget(std::size_t n, double eps);

}  // namespace ld::prob
