#include "prob/weighted_bernoulli_sum.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::prob {

using support::expects;

WeightedBernoulliSum::WeightedBernoulliSum(std::span<const std::uint64_t> weights,
                                           std::span<const double> probs) {
    expects(weights.size() == probs.size(),
            "WeightedBernoulliSum: weights/probs length mismatch");
    for (std::size_t i = 0; i < weights.size(); ++i) {
        expects(probs[i] >= 0.0 && probs[i] <= 1.0,
                "WeightedBernoulliSum: probability out of [0,1]");
        total_weight_ += weights[i];
    }
    pmf_.assign(static_cast<std::size_t>(total_weight_) + 1, 0.0);
    pmf_[0] = 1.0;
    std::uint64_t used = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const std::uint64_t w = weights[i];
        if (w == 0) continue;
        const double p = probs[i];
        // Convolve with the two-point distribution {0 ↦ 1−p, w ↦ p},
        // iterating downwards to avoid overwriting unread entries.
        for (std::size_t s = static_cast<std::size_t>(used) + 1; s-- > 0;) {
            const double mass = pmf_[s];
            if (mass == 0.0) continue;
            pmf_[s] = mass * (1.0 - p);
            pmf_[s + static_cast<std::size_t>(w)] += mass * p;
        }
        used += w;
        mean_ += static_cast<double>(w) * p;
        variance_ += static_cast<double>(w) * static_cast<double>(w) * p * (1.0 - p);
    }
}

double WeightedBernoulliSum::pmf(std::uint64_t s) const {
    expects(s < pmf_.size(), "pmf: value out of range");
    return pmf_[static_cast<std::size_t>(s)];
}

double WeightedBernoulliSum::tail_above(double t) const {
    double acc = 0.0;
    for (std::size_t s = pmf_.size(); s-- > 0;) {
        if (static_cast<double>(s) > t) acc += pmf_[s];
        else break;  // pmf indices below t contribute nothing
    }
    return std::min(acc, 1.0);
}

}  // namespace ld::prob
