#include "prob/weighted_bernoulli_sum.hpp"

#include <algorithm>

#include "support/expect.hpp"
#include "support/fpu.hpp"

namespace ld::prob {

using support::expects;

namespace {

/// Shared DP core: fills `scratch.front` with the law of
/// Σ w_i · Bernoulli(p_i) over [0, W] and returns the total weight W.
std::uint64_t convolve_weighted_sum(std::span<const std::uint64_t> weights,
                                    std::span<const double> probs,
                                    ConvolveScratch& scratch) {
    expects(weights.size() == probs.size(),
            "WeightedBernoulliSum: weights/probs length mismatch");
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        expects(probs[i] >= 0.0 && probs[i] <= 1.0,
                "WeightedBernoulliSum: probability out of [0,1]");
        total += weights[i];
    }
    scratch.front.resize(static_cast<std::size_t>(total) + 1);
    scratch.back.resize(static_cast<std::size_t>(total) + 1);
    scratch.front[0] = 1.0;
    // Flush subnormals for the DP: the spreading pmf front underflows
    // fresh subnormals every step, and the per-op assists cost more than
    // the convolution itself (support/fpu.hpp).  Total flushed mass
    // < (W+1)·2⁻¹⁰²² — invisible at the majority threshold.
    const support::ScopedFlushDenormals ftz;
    const detail::ConvolveFn kern = detail::convolve_kernel();
    std::size_t width = 1;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const auto w = static_cast<std::size_t>(weights[i]);
        if (w == 0) continue;
        kern(scratch.front.data(), scratch.back.data(), width, w, probs[i]);
        scratch.front.swap(scratch.back);
        width += w;
    }
    return total;
}

}  // namespace

WeightedBernoulliSum::WeightedBernoulliSum(std::span<const std::uint64_t> weights,
                                           std::span<const double> probs) {
    ConvolveScratch scratch;
    total_weight_ = convolve_weighted_sum(weights, probs, scratch);
    pmf_ = std::move(scratch.front);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const auto w = static_cast<double>(weights[i]);
        const double p = probs[i];
        mean_ += w * p;
        variance_ += w * w * p * (1.0 - p);
    }
}

double weighted_majority_probability(std::span<const std::uint64_t> weights,
                                     std::span<const double> probs,
                                     ConvolveScratch& scratch) {
    const std::uint64_t total = convolve_weighted_sum(weights, probs, scratch);
    const double threshold = static_cast<double>(total) / 2.0;
    const auto& pmf = scratch.front;
    double acc = 0.0;
    for (std::size_t s = static_cast<std::size_t>(total) + 1; s-- > 0;) {
        if (static_cast<double>(s) > threshold) acc += pmf[s];
        else break;  // pmf indices below the threshold contribute nothing
    }
    return std::min(acc, 1.0);
}

double WeightedBernoulliSum::pmf(std::uint64_t s) const {
    expects(s < pmf_.size(), "pmf: value out of range");
    return pmf_[static_cast<std::size_t>(s)];
}

double WeightedBernoulliSum::tail_above(double t) const {
    double acc = 0.0;
    for (std::size_t s = pmf_.size(); s-- > 0;) {
        if (static_cast<double>(s) > t) acc += pmf_[s];
        else break;  // pmf indices below t contribute nothing
    }
    return std::min(acc, 1.0);
}

}  // namespace ld::prob
