#include "prob/weighted_bernoulli_sum.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::prob {

using support::expects;

namespace {

/// Shared DP core: fills `pmf` with the law of Σ w_i · Bernoulli(p_i) and
/// returns the total weight W.  `pmf` is resized to W + 1.
std::uint64_t convolve_weighted_sum(std::span<const std::uint64_t> weights,
                                    std::span<const double> probs,
                                    std::vector<double>& pmf) {
    expects(weights.size() == probs.size(),
            "WeightedBernoulliSum: weights/probs length mismatch");
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        expects(probs[i] >= 0.0 && probs[i] <= 1.0,
                "WeightedBernoulliSum: probability out of [0,1]");
        total += weights[i];
    }
    pmf.assign(static_cast<std::size_t>(total) + 1, 0.0);
    pmf[0] = 1.0;
    std::uint64_t used = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const std::uint64_t w = weights[i];
        if (w == 0) continue;
        const double p = probs[i];
        // Convolve with the two-point distribution {0 ↦ 1−p, w ↦ p},
        // iterating downwards to avoid overwriting unread entries.
        for (std::size_t s = static_cast<std::size_t>(used) + 1; s-- > 0;) {
            const double mass = pmf[s];
            if (mass == 0.0) continue;
            pmf[s] = mass * (1.0 - p);
            pmf[s + static_cast<std::size_t>(w)] += mass * p;
        }
        used += w;
    }
    return total;
}

}  // namespace

WeightedBernoulliSum::WeightedBernoulliSum(std::span<const std::uint64_t> weights,
                                           std::span<const double> probs) {
    total_weight_ = convolve_weighted_sum(weights, probs, pmf_);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const auto w = static_cast<double>(weights[i]);
        const double p = probs[i];
        mean_ += w * p;
        variance_ += w * w * p * (1.0 - p);
    }
}

double weighted_majority_probability(std::span<const std::uint64_t> weights,
                                     std::span<const double> probs,
                                     std::vector<double>& pmf_scratch) {
    const std::uint64_t total = convolve_weighted_sum(weights, probs, pmf_scratch);
    const double threshold = static_cast<double>(total) / 2.0;
    double acc = 0.0;
    for (std::size_t s = pmf_scratch.size(); s-- > 0;) {
        if (static_cast<double>(s) > threshold) acc += pmf_scratch[s];
        else break;  // pmf indices below the threshold contribute nothing
    }
    return std::min(acc, 1.0);
}

double WeightedBernoulliSum::pmf(std::uint64_t s) const {
    expects(s < pmf_.size(), "pmf: value out of range");
    return pmf_[static_cast<std::size_t>(s)];
}

double WeightedBernoulliSum::tail_above(double t) const {
    double acc = 0.0;
    for (std::size_t s = pmf_.size(); s-- > 0;) {
        if (static_cast<double>(s) > t) acc += pmf_[s];
        else break;  // pmf indices below t contribute nothing
    }
    return std::min(acc, 1.0);
}

}  // namespace ld::prob
