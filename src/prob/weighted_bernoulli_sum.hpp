// Exact law of a weighted sum of independent Bernoulli variables with
// non-negative integer weights.  This is the law of the number of correct
// *votes* after delegation: each sink v_i holds w_i accumulated votes and
// contributes w_i correct votes with probability p_i (paper §2.2, the
// weighted-majority tally).  Computing P[Σ w_i x_i > W/2] exactly removes
// one layer of Monte-Carlo noise from every gain estimate.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "prob/convolve.hpp"

namespace ld::prob {

/// Distribution of S = Σ w_i · Bernoulli(p_i) over {0, …, Σ w_i}.
/// DP cost O(n · Σ w_i); for delegation graphs Σ w_i = n (total votes), so
/// the cost is O(#sinks · n).
class WeightedBernoulliSum {
public:
    /// `weights[i]` votes succeed together with probability `probs[i]`.
    /// Spans must have equal length; weights may be zero (ignored).
    WeightedBernoulliSum(std::span<const std::uint64_t> weights,
                         std::span<const double> probs);

    /// Total weight W = Σ w_i.
    std::uint64_t total_weight() const noexcept { return total_weight_; }

    /// P[S = s].
    double pmf(std::uint64_t s) const;

    /// P[S > t].
    double tail_above(double t) const;

    /// E[S] = Σ w_i p_i.
    double mean() const noexcept { return mean_; }

    /// Var[S] = Σ w_i² p_i (1 − p_i).
    double variance() const noexcept { return variance_; }

    /// P[S > W/2]: probability the weighted majority is correct.  Ties
    /// count as incorrect (strict majority), matching `PoissonBinomial`.
    double majority_probability() const {
        return tail_above(static_cast<double>(total_weight_) / 2.0);
    }

private:
    std::vector<double> pmf_;
    std::uint64_t total_weight_ = 0;
    double mean_ = 0.0;
    double variance_ = 0.0;
};

/// P[Σ w_i x_i > W/2] computed with the same DP as WeightedBernoulliSum
/// but into caller-owned ping-pong buffers — the zero-allocation inner
/// step of the replication loop.  Bit-identical to
/// `WeightedBernoulliSum(weights, probs).majority_probability()`.
double weighted_majority_probability(std::span<const std::uint64_t> weights,
                                     std::span<const double> probs,
                                     ConvolveScratch& scratch);

}  // namespace ld::prob
