// Poisson-binomial distribution: the law of a sum of independent Bernoulli
// variables with heterogeneous success probabilities.  This is exactly the
// law of the number of correct votes under *direct voting* (paper §2.1), so
// `P^D(G)` is computed exactly here instead of by Monte-Carlo.

#pragma once

#include <span>
#include <vector>

namespace ld::prob {

/// Exact Poisson-binomial distribution over {0, …, n} computed by the
/// standard O(n²) convolution DP (shared SIMD-friendly kernel in
/// `prob/convolve.hpp`).  Numerically stable for the n ≤ ~20k range used
/// in exact evaluations; larger n should use the normal approximation
/// (`ld::prob::normal_*`, justified by the paper's Lemma 4) or the
/// ε-truncated kernel (`ld::prob::TruncatedPoissonBinomial`).
class PoissonBinomial {
public:
    /// Build from success probabilities, each in [0, 1].  Also
    /// precomputes compensated (Kahan) prefix/suffix sums of the pmf, so
    /// `cdf` and `tail_above` are O(1) per call.
    explicit PoissonBinomial(std::span<const double> probabilities);

    std::size_t trial_count() const noexcept { return pmf_.size() - 1; }

    /// P[X = k].
    double pmf(std::size_t k) const;

    /// P[X <= k].  O(1): reads the precomputed compensated prefix sum.
    double cdf(std::size_t k) const;

    /// P[X > t] for a real threshold t (votes strictly above t, matching
    /// the paper's strict weighted-majority rule).  O(1): reads the
    /// precomputed compensated suffix sum.
    double tail_above(double t) const;

    /// E[X] = Σ p_i.
    double mean() const noexcept { return mean_; }

    /// Var[X] = Σ p_i (1 − p_i).
    double variance() const noexcept { return variance_; }

    /// Probability that a strict majority of the n trials succeeds,
    /// i.e. P[X > n/2].  Ties (even n, X = n/2) count as failure, the
    /// conservative reading of the paper's majority rule.
    double majority_probability() const { return tail_above(static_cast<double>(trial_count()) / 2.0); }

    /// Full pmf for inspection/testing.
    std::span<const double> pmf_span() const noexcept { return pmf_; }

private:
    std::vector<double> pmf_;     // pmf_[k] = P[X = k]
    std::vector<double> cdf_;     // cdf_[k] = Σ_{i<=k} pmf_[i]  (Kahan)
    std::vector<double> suffix_;  // suffix_[k] = Σ_{i>=k} pmf_[i] (Kahan); size n+2
    double mean_ = 0.0;
    double variance_ = 0.0;
};

/// Convenience: P[Σ Bernoulli(p_i) > n/2] without keeping the object.
double direct_majority_probability(std::span<const double> probabilities);

}  // namespace ld::prob
