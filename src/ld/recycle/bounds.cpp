#include "ld/recycle/bounds.hpp"

#include "ld/recycle/recycle_graph.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace ld::recycle {

using support::expects;

double lemma1_failure_bound(std::size_t j, std::size_t n, double eps, double mean_rate) {
    expects(j >= 1 && j <= n, "lemma1_failure_bound: need 1 <= j <= n");
    expects(eps > 0.0, "lemma1_failure_bound: eps must be positive");
    expects(mean_rate > 0.0 && mean_rate <= 1.0, "lemma1_failure_bound: bad mean rate");
    const double delta = eps / std::cbrt(static_cast<double>(j));
    if (delta >= 1.0) return 1.0;  // Chernoff form needs delta < 1
    // Σ_{i=j}^{n} exp(−a·i) with a = δ²·mean_rate/2 — geometric series.
    const double a = delta * delta * mean_rate / 2.0;
    if (a <= 0.0) return 1.0;
    const double first = std::exp(-a * static_cast<double>(j));
    const double ratio = std::exp(-a);
    const double sum = first * (1.0 - std::pow(ratio, static_cast<double>(n - j + 1))) /
                       (1.0 - ratio);
    return std::min(1.0, sum);
}

double lemma2_deviation(std::size_t n, std::size_t j, double eps, std::size_t c) {
    expects(j >= 1, "lemma2_deviation: j must be >= 1");
    expects(c >= 1, "lemma2_deviation: c must be >= 1");
    return static_cast<double>(c) * eps * static_cast<double>(n) /
           std::cbrt(static_cast<double>(j));
}

double lemma2_failure_bound(std::size_t j, std::size_t n, double eps, double mean_rate,
                            std::size_t c) {
    return std::min(1.0, static_cast<double>(c) *
                             lemma1_failure_bound(j, n, eps, mean_rate));
}

std::vector<double> decorrelated_parameters(const RecycleGraph& graph, double eps) {
    expects(eps > 0.0, "decorrelated_parameters: eps must be positive");
    const std::size_t j = std::max<std::size_t>(graph.j(), 1);
    const double deficit_unit = eps / std::cbrt(static_cast<double>(j));
    const auto& mu = graph.expectations();
    std::vector<double> modified(graph.size());
    for (std::size_t i = 0; i < graph.size(); ++i) {
        const auto level = static_cast<double>(graph.partition_level(i));
        modified[i] = std::clamp(mu[i] - (level - 1.0) * deficit_unit, 0.0, 1.0);
    }
    return modified;
}

double lemma7_lower_bound(double direct_mean, std::size_t n, std::size_t k, double alpha,
                          double eps, std::size_t j) {
    expects(alpha > 0.0, "lemma7_lower_bound: alpha must be positive");
    expects(j >= 1, "lemma7_lower_bound: j must be >= 1");
    expects(k <= n, "lemma7_lower_bound: k cannot exceed n");
    return direct_mean + static_cast<double>(n - k) * alpha -
           eps * static_cast<double>(n) / (alpha * std::cbrt(static_cast<double>(j)));
}

}  // namespace ld::recycle
