// Closed-form evaluations of the Lemma 1 / Lemma 2 bounds so the benches
// can print "paper bound vs measured tail frequency".

#pragma once

#include <cstddef>
#include <vector>

namespace ld::recycle {

/// Lemma 1's failure bound: P[∃ i >= j : X_i < (1 − ε/j^{1/3}) μ(X_i)]
/// <= Σ_{i >= j} exp(−(ε/j^{1/3})²·μ(X_i)/2), evaluated with the linear
/// mean model μ(X_i) ≈ mean_rate · i.  Closed geometric-sum form.
double lemma1_failure_bound(std::size_t j, std::size_t n, double eps, double mean_rate);

/// Lemma 2's deviation radius c·ε·n / j^{1/3}.
double lemma2_deviation(std::size_t n, std::size_t j, double eps, std::size_t c);

/// Lemma 2's failure bound e^{−Ω(j^{1/3})}, instantiated (consistently with
/// lemma1_failure_bound's constants) as c · that bound.
double lemma2_failure_bound(std::size_t j, std::size_t n, double eps, double mean_rate,
                            std::size_t c);

/// The Lemma 2 proof's Steps 2–3 as an executable construction: the
/// *modified independent sequence* X̃.  Each vertex of partition level t
/// becomes an independent Bernoulli with parameter
///   p̃_i = μ_i − (t − 1)·ε / j^{1/3}     (clamped to [0, 1]),
/// i.e. its true marginal expectation lowered by the worst-case deficit
/// the proof charges per peeled partition.  The proof shows Σ x̃_i is
/// (w.h.p.) a stochastic lower envelope for the dependent sum X_n; because
/// X̃ is an independent Poisson-binomial, Chernoff applies to it directly.
/// `test_recycle` / `bench_recycle_concentration` verify the envelope
/// empirically.
class RecycleGraph;  // fwd (defined in recycle_graph.hpp)

std::vector<double> decorrelated_parameters(const RecycleGraph& graph, double eps);

/// Lemma 7's expectation lower bound for Algorithm 1:
/// μ(X_n) + (n − k)·α − ε·n/(α·j^{1/3}), where k voters do not delegate.
double lemma7_lower_bound(double direct_mean, std::size_t n, std::size_t k, double alpha,
                          double eps, std::size_t j);

}  // namespace ld::recycle
