// Recycle sampling (paper Definition 6): the dependency model behind
// delegated voting.  Vertices v_1, …, v_n are processed in order; vertex i
// either draws a fresh Bernoulli(p_i) (with probability z_i) or *recycles*
// the realized value of a uniformly random successor — a vertex among its
// predecessor window [0, successor_prefix_i).  In the delegation reading,
// vertices are voters sorted by descending competency, z_i is the
// probability of voting directly, and the window is the approval set
// (voters at least α more competent).
//
// The "partition complexity" c is the longest directed path; the paper
// upper-bounds it by ⌈1/α⌉ because recycling always jumps across an
// α-width competency band.

#pragma once

#include <cstddef>
#include <vector>

#include "ld/mech/mechanism.hpp"
#include "ld/model/instance.hpp"

namespace ld::recycle {

/// One vertex of a recycle-sampling graph.
struct RecycleNode {
    /// Probability of drawing a fresh Bernoulli instead of recycling.
    double z = 1.0;
    /// Fresh-draw success probability.
    double p = 0.5;
    /// Recycling window: successors are indices [0, successor_prefix).
    /// Must be 0 (never recycles) or <= own index.
    std::size_t successor_prefix = 0;
};

/// A (j, c, n)-recycle-sampling graph (Definition 6).
class RecycleGraph {
public:
    /// Build and validate.  Node i with successor_prefix > 0 must have
    /// successor_prefix <= i (edges point to strictly earlier vertices) and
    /// z < 1 is only meaningful when the window is non-empty.
    explicit RecycleGraph(std::vector<RecycleNode> nodes);

    std::size_t size() const noexcept { return nodes_.size(); }
    const RecycleNode& node(std::size_t i) const { return nodes_[i]; }
    const std::vector<RecycleNode>& nodes() const noexcept { return nodes_; }

    /// The parameter j: the length of the leading block of vertices that
    /// never recycle (successor_prefix == 0 or z == 1).
    std::size_t j() const noexcept { return j_; }

    /// Partition complexity: length (in edges) of the longest possible
    /// recycling chain, + 1 for the fresh draw at its end — the paper's c.
    /// Computed exactly in O(n) via prefix maxima.
    std::size_t partition_complexity() const noexcept { return partition_complexity_; }

    /// Partition level of vertex i (1 = can only draw fresh / recycle from
    /// nothing earlier; t = depends on vertices up to level t − 1).  This
    /// is the partition index the Lemma 2 proof peels off recursively.
    std::size_t partition_level(std::size_t i) const { return levels_[i]; }

    /// Exact expectations μ_i = E[x_i] and the prefix sums μ(X_i); O(n).
    const std::vector<double>& expectations() const noexcept { return mu_; }
    const std::vector<double>& prefix_means() const noexcept { return mu_prefix_; }

    /// μ(X_n) — the expected total.
    double total_expectation() const noexcept {
        return mu_prefix_.empty() ? 0.0 : mu_prefix_.back();
    }

    /// Construct the recycle graph induced by a threshold-style local
    /// mechanism on an instance: voters sorted by descending competency;
    /// z_i = the mechanism's exact direct-voting probability (must be
    /// available); window = voters at least α more competent.  This is the
    /// Lemma 7 construction generalized to any closed-form mechanism.
    static RecycleGraph from_instance(const model::Instance& instance,
                                      const mech::Mechanism& mechanism);

    /// Synthetic family used by the recycle-sampling benches: the first j
    /// vertices are fresh Bernoulli(p_fresh); each later vertex recycles
    /// with probability 1 − z over the window [0, i), with fresh parameter
    /// p_fresh, chained into `bands` equal partitions (vertex windows stop
    /// at the previous band boundary, giving partition complexity ~bands).
    static RecycleGraph synthetic(std::size_t n, std::size_t j, double z, double p_fresh,
                                  std::size_t bands);

private:
    void compute_derived();

    std::vector<RecycleNode> nodes_;
    std::size_t j_ = 0;
    std::size_t partition_complexity_ = 0;
    std::vector<std::size_t> levels_;
    std::vector<double> mu_;         // E[x_i]
    std::vector<double> mu_prefix_;  // μ(X_i) = Σ_{k<=i} E[x_k]
};

}  // namespace ld::recycle
