// Realizing a recycle-sampling graph (Definition 6's "outcome of realizing
// G") and the trajectory statistics Lemmas 1 and 2 are about.

#pragma once

#include <cstdint>
#include <vector>

#include "ld/recycle/recycle_graph.hpp"
#include "rng/rng.hpp"

namespace ld::recycle {

/// One realization of the recycle-sampled sequence.
struct Realization {
    std::vector<std::uint8_t> values;   ///< x_i ∈ {0, 1}
    std::vector<std::uint64_t> prefix;  ///< X_i = Σ_{k<=i} x_k
    std::uint64_t total = 0;            ///< X_n

    /// min over i >= j of X_i / μ(X_i) — the statistic Lemma 1 lower
    /// bounds.  Indices with μ(X_i) = 0 are skipped.
    double min_prefix_ratio(const RecycleGraph& g, std::size_t from) const;
};

/// Sample one realization: for increasing i, x_i is fresh Bernoulli(p_i)
/// with probability z_i, else a copy of a uniform window element.
Realization sample(const RecycleGraph& g, rng::Rng& rng);

/// Monte-Carlo check of Lemma 2: fraction of `replications` realizations
/// with X_n < μ(X_n) − deviation.
double tail_frequency_below(const RecycleGraph& g, rng::Rng& rng, double deviation,
                            std::size_t replications);

}  // namespace ld::recycle
