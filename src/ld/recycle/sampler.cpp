#include "ld/recycle/sampler.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::recycle {

using support::expects;

double Realization::min_prefix_ratio(const RecycleGraph& g, std::size_t from) const {
    expects(g.size() == values.size(), "min_prefix_ratio: graph/realization mismatch");
    double best = 1e300;
    const auto& mu_prefix = g.prefix_means();
    for (std::size_t i = from; i < values.size(); ++i) {
        if (mu_prefix[i] <= 0.0) continue;
        best = std::min(best, static_cast<double>(prefix[i]) / mu_prefix[i]);
    }
    return best;
}

Realization sample(const RecycleGraph& g, rng::Rng& rng) {
    const std::size_t n = g.size();
    Realization r;
    r.values.resize(n);
    r.prefix.resize(n);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const RecycleNode& nd = g.node(i);
        std::uint8_t x;
        if (nd.successor_prefix == 0 || rng.next_bernoulli(nd.z)) {
            x = rng.next_bernoulli(nd.p) ? 1 : 0;
        } else {
            const auto k = static_cast<std::size_t>(rng.next_below(nd.successor_prefix));
            x = r.values[k];
        }
        r.values[i] = x;
        running += x;
        r.prefix[i] = running;
    }
    r.total = running;
    return r;
}

double tail_frequency_below(const RecycleGraph& g, rng::Rng& rng, double deviation,
                            std::size_t replications) {
    expects(replications > 0, "tail_frequency_below: need replications");
    const double threshold = g.total_expectation() - deviation;
    std::size_t hits = 0;
    for (std::size_t rep = 0; rep < replications; ++rep) {
        const auto r = sample(g, rng);
        if (static_cast<double>(r.total) < threshold) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(replications);
}

}  // namespace ld::recycle
