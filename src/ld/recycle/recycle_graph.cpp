#include "ld/recycle/recycle_graph.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace ld::recycle {

using support::expects;

RecycleGraph::RecycleGraph(std::vector<RecycleNode> nodes) : nodes_(std::move(nodes)) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const RecycleNode& nd = nodes_[i];
        expects(nd.z >= 0.0 && nd.z <= 1.0, "RecycleGraph: z out of [0,1]");
        expects(nd.p >= 0.0 && nd.p <= 1.0, "RecycleGraph: p out of [0,1]");
        expects(nd.successor_prefix <= i, "RecycleGraph: window must precede vertex");
        if (nd.z < 1.0) {
            expects(nd.successor_prefix > 0,
                    "RecycleGraph: recycling vertex needs a non-empty window");
        }
    }
    compute_derived();
}

void RecycleGraph::compute_derived() {
    const std::size_t n = nodes_.size();
    // j = leading vertices that can never recycle.
    j_ = 0;
    while (j_ < n && (nodes_[j_].z >= 1.0 || nodes_[j_].successor_prefix == 0)) ++j_;

    // Longest chain: len[i] = 1 if fresh-only; else 1 + max_{k < prefix} len[k].
    // prefix_max[i] = max(len[0..i]) lets this run in O(n).
    std::vector<std::size_t> len(n, 1), prefix_max(n, 0);
    partition_complexity_ = n == 0 ? 0 : 1;
    for (std::size_t i = 0; i < n; ++i) {
        if (nodes_[i].z < 1.0 && nodes_[i].successor_prefix > 0) {
            len[i] = 1 + prefix_max[nodes_[i].successor_prefix - 1];
        }
        prefix_max[i] = i == 0 ? len[0] : std::max(prefix_max[i - 1], len[i]);
        partition_complexity_ = std::max(partition_complexity_, len[i]);
    }
    levels_ = len;

    // Exact expectations: E[x_i] = z p_i + (1−z)·mean_{k<prefix} E[x_k].
    mu_.assign(n, 0.0);
    mu_prefix_.assign(n, 0.0);
    double running = 0.0;  // Σ_{k < i} μ_k
    for (std::size_t i = 0; i < n; ++i) {
        const RecycleNode& nd = nodes_[i];
        double mu = nd.z * nd.p;
        if (nd.z < 1.0 && nd.successor_prefix > 0) {
            const double window_sum = mu_prefix_[nd.successor_prefix - 1];
            mu += (1.0 - nd.z) * window_sum / static_cast<double>(nd.successor_prefix);
        }
        mu_[i] = mu;
        running += mu;
        mu_prefix_[i] = running;
    }
}

RecycleGraph RecycleGraph::from_instance(const model::Instance& instance,
                                         const mech::Mechanism& mechanism) {
    const std::size_t n = instance.voter_count();
    const auto& p = instance.competencies();

    // Voters sorted by descending competency (the paper's v_1 = best).
    std::vector<std::size_t> order(p.ascending_order().begin(),
                                   p.ascending_order().end());
    std::reverse(order.begin(), order.end());

    std::vector<RecycleNode> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto voter = static_cast<graph::Vertex>(order[i]);
        RecycleNode& nd = nodes[i];
        nd.p = p[voter];
        const auto z = mechanism.vote_directly_probability(instance, voter);
        expects(z.has_value(),
                "RecycleGraph::from_instance: mechanism lacks a closed-form "
                "direct-voting probability");
        nd.z = *z;
        // Window: earlier (more competent) voters at least α above.
        std::size_t prefix = 0;
        while (prefix < i && p[static_cast<graph::Vertex>(order[prefix])] >=
                                 p[voter] + instance.alpha()) {
            ++prefix;
        }
        nd.successor_prefix = prefix;
        if (prefix == 0) nd.z = 1.0;  // nobody to recycle from — fresh draw
    }
    return RecycleGraph(std::move(nodes));
}

RecycleGraph RecycleGraph::synthetic(std::size_t n, std::size_t j, double z,
                                     double p_fresh, std::size_t bands) {
    expects(j >= 1 && j <= n, "RecycleGraph::synthetic: need 1 <= j <= n");
    expects(bands >= 1, "RecycleGraph::synthetic: need at least one band");
    std::vector<RecycleNode> nodes(n);
    // Band b covers indices [band_start(b), band_start(b+1)); band 0 is the
    // fresh block of length j, later bands split the rest evenly.
    const std::size_t rest = n - j;
    const auto band_start = [&](std::size_t b) {
        if (b == 0) return std::size_t{0};
        return j + (rest * (b - 1)) / bands;
    };
    for (std::size_t i = 0; i < n; ++i) {
        nodes[i].p = p_fresh;
        if (i < j) {
            nodes[i].z = 1.0;
            nodes[i].successor_prefix = 0;
            continue;
        }
        // Find this vertex's band and recycle only into earlier bands.
        std::size_t b = 1;
        while (b <= bands && band_start(b + 1) <= i && b < bands) ++b;
        // window = everything before this band's start
        std::size_t prefix = band_start(b);
        if (prefix == 0) prefix = j;
        nodes[i].z = z;
        nodes[i].successor_prefix = prefix;
    }
    return RecycleGraph(std::move(nodes));
}

}  // namespace ld::recycle
