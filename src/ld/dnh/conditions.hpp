// The paper's two sufficient conditions for Do-No-Harm (§3.2), packaged as
// *audits* that can be run against any (instance, mechanism) pair:
//
//  * Lemma 3 — bounded competencies p ∈ (β, 1−β) and fewer than n^{1/2−ε}
//    delegations: the direct-voting outcome keeps Ω(√n) standard deviation,
//    so the probability that the delegated votes can flip the decision is
//    at most an erf term that vanishes asymptotically.
//
//  * Lemma 5 — every sink's weight at most w: at least n/w sinks exist, so
//    Hoeffding keeps the delegated outcome within (1/c)·√(n^{1+ε})·w of its
//    mean with probability 1 − e^{−Ω(n^ε)}.
//
// Each audit returns both the *verdict* (condition satisfied?) and the
// quantitative bound, so benches can print paper-bound vs measured.

#pragma once

#include <cstddef>

#include "ld/mech/mechanism.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"

namespace ld::dnh {

/// Result of checking Lemma 3's hypotheses on an (instance, mechanism).
struct Lemma3Audit {
    bool bounded_competency = false;  ///< all p_i ∈ (β, 1−β) for reported β
    double beta = 0.0;                ///< largest valid β (0 if unbounded)
    std::size_t delegation_budget = 0;  ///< floor(n^{1/2−ε})
    double mean_delegators = 0.0;       ///< E[#delegators] (exact if closed form)
    bool within_budget = false;         ///< mean_delegators < budget
    double flip_probability_bound = 0.0;  ///< erf bound on outcome flip
    bool hypotheses_hold = false;         ///< both conditions met
};

/// Audit Lemma 3 with exponent slack `eps`.  The expected delegation count
/// uses the mechanism's closed form when available, otherwise `replications`
/// Monte-Carlo realizations.
Lemma3Audit audit_lemma3(const model::Instance& instance,
                         const mech::Mechanism& mechanism, rng::Rng& rng, double eps,
                         std::size_t replications = 64);

/// Result of checking Lemma 5's max-weight condition.
struct Lemma5Audit {
    double mean_max_weight = 0.0;  ///< E[max sink weight] over realizations
    double worst_max_weight = 0.0; ///< max observed
    double weight_cap = 0.0;       ///< the paper's requirement scale n^{1−ε}
    double deviation_radius = 0.0; ///< (1/c)·√(n^{1+ε})·w at w = worst observed
    double failure_bound = 0.0;    ///< 2·e^{−2 n^ε / c²}
    double mean_margin = 0.0;  ///< E[μ(X|G) − W/2]: the delegated majority margin
    double mean_sigma = 0.0;   ///< √E[Var(X|G)]: conditional outcome stddev
    /// Lemma 5's spirit as a finite-n verdict: the delegated margin must
    /// dominate the conditional fluctuation scale (margin >= 2σ), which is
    /// exactly what the max-weight cap buys — heavier sinks inflate σ
    /// until the margin no longer protects the outcome.
    bool weight_small_enough = false;
};

/// Audit Lemma 5 with exponent `eps` and constant `c` over `replications`
/// delegation realizations.
Lemma5Audit audit_lemma5(const model::Instance& instance,
                         const mech::Mechanism& mechanism, rng::Rng& rng, double eps,
                         double c, std::size_t replications = 64);

}  // namespace ld::dnh
