// Empirical desiderata checks (paper §2.3) over *instance families*: a
// family maps a size n (plus randomness) to an instance; we sweep sizes,
// estimate the gain at each, and judge:
//
//  * DNH  (Definition 3): losses must shrink towards 0 as n grows — we
//    check gain >= −tolerance at the largest sizes and a non-worsening
//    trend;
//  * SPG  (Definition 5): gain >= γ > 0 at *every* size past a burn-in,
//    provided the delegate restriction Delegate(n) >= f(n) held.
//
// These are statistical verdicts on finite sweeps, not proofs; the benches
// print the underlying per-size numbers alongside.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ld/election/evaluator.hpp"
#include "ld/mech/mechanism.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"

namespace ld::dnh {

/// A sized family of problem instances.
using InstanceFamily = std::function<model::Instance(std::size_t n, rng::Rng& rng)>;

/// One sweep point of a desideratum check.
struct SweepPoint {
    std::size_t n = 0;
    double gain = 0.0;
    double gain_ci_lo = 0.0;
    double gain_ci_hi = 0.0;
    double pd = 0.0;
    double pm = 0.0;
    double mean_delegators = 0.0;
    double mean_max_weight = 0.0;
    /// Certified-mode fields (eval.certify enabled): the anytime-valid
    /// gain interval and how the point's replication loop stopped.
    bool certified = false;
    double cert_gain_lo = 0.0;
    double cert_gain_hi = 0.0;
    stats::CertStop cert_stop = stats::CertStop::BudgetExhausted;
};

/// Verdict over a size sweep.
struct DesideratumVerdict {
    bool satisfied = false;
    double worst_gain = 0.0;       ///< min gain over considered sizes
    double gamma = 0.0;            ///< for SPG: the certified uniform gain
    std::vector<SweepPoint> sweep; ///< all measured points
    std::string detail;            ///< human-readable reasoning
    /// Certified-mode verdict label: "certified_dnh" / "certified_spg"
    /// when every judged point's confidence sequence decided in favour,
    /// "certified_violation" when some judged point decided against, and
    /// "inconclusive(budget_exhausted)" when a point hit its replication
    /// cap undecided.  Empty when certification was not requested.
    std::string certification;
    /// Family-wise statistical error of the certified verdict: the
    /// per-point δ summed over judged points (union bound) — see
    /// docs/STATISTICS.md §6.
    double certified_delta = 0.0;
};

/// Options shared by the checks.
struct VerdictOptions {
    election::EvalOptions eval{};
    double dnh_tolerance = 0.02;   ///< allowed loss at the largest sizes
    double spg_gamma_floor = 0.0;  ///< SPG requires gain > this at all sizes
    std::size_t spg_burn_in = 0;   ///< ignore the first k sweep sizes for SPG
};

/// Measure the gain of `mechanism` over the family at each size.
std::vector<SweepPoint> sweep_gain(const InstanceFamily& family,
                                   const mech::Mechanism& mechanism,
                                   const std::vector<std::size_t>& sizes, rng::Rng& rng,
                                   const election::EvalOptions& eval = {});

/// Empirical Do-No-Harm verdict (Definition 3).
DesideratumVerdict check_dnh(const InstanceFamily& family,
                             const mech::Mechanism& mechanism,
                             const std::vector<std::size_t>& sizes, rng::Rng& rng,
                             const VerdictOptions& options = {});

/// Empirical Strong-Positive-Gain verdict (Definition 5).
DesideratumVerdict check_spg(const InstanceFamily& family,
                             const mech::Mechanism& mechanism,
                             const std::vector<std::size_t>& sizes, rng::Rng& rng,
                             const VerdictOptions& options = {});

}  // namespace ld::dnh
