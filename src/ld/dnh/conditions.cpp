#include "ld/dnh/conditions.hpp"

#include <algorithm>
#include <cmath>

#include "ld/delegation/realize.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "prob/bounds.hpp"
#include "stats/running_stats.hpp"
#include "support/expect.hpp"

namespace ld::dnh {

using support::expects;

Lemma3Audit audit_lemma3(const model::Instance& instance,
                         const mech::Mechanism& mechanism, rng::Rng& rng, double eps,
                         std::size_t replications) {
    expects(eps >= 0.0 && eps < 0.5, "audit_lemma3: eps out of [0, 1/2)");
    Lemma3Audit audit;
    const std::size_t n = instance.voter_count();
    const auto& p = instance.competencies();

    audit.beta = p.bounding_beta();
    audit.bounded_competency = audit.beta > 0.0;
    audit.delegation_budget = prob::lemma3_delegation_budget(n, eps);

    // Expected delegation count: prefer the closed form.
    const double expected_direct =
        delegation::expected_direct_voter_count(mechanism, instance);
    if (expected_direct >= 0.0) {
        audit.mean_delegators = static_cast<double>(n) - expected_direct;
    } else {
        stats::RunningStats acc;
        for (std::size_t r = 0; r < replications; ++r) {
            const auto outcome = delegation::realize(mechanism, instance, rng);
            acc.add(static_cast<double>(outcome.stats().delegator_count));
        }
        audit.mean_delegators = acc.mean();
    }
    audit.within_budget =
        audit.mean_delegators < static_cast<double>(audit.delegation_budget);

    if (audit.bounded_competency) {
        // Worst-case flipped mass per the Lemma 3 proof: 2 × #delegators.
        audit.flip_probability_bound = prob::lemma3_flip_probability(
            n, std::min(audit.beta, 0.49), 2.0 * audit.mean_delegators);
    } else {
        audit.flip_probability_bound = 1.0;
    }
    audit.hypotheses_hold = audit.bounded_competency && audit.within_budget;
    return audit;
}

Lemma5Audit audit_lemma5(const model::Instance& instance,
                         const mech::Mechanism& mechanism, rng::Rng& rng, double eps,
                         double c, std::size_t replications) {
    expects(eps > 0.0, "audit_lemma5: eps must be positive");
    expects(c > 0.0, "audit_lemma5: c must be positive");
    expects(replications > 0, "audit_lemma5: need replications");
    Lemma5Audit audit;
    const std::size_t n = instance.voter_count();

    stats::RunningStats max_weight, margin, sigma;
    double worst = 0.0;
    for (std::size_t r = 0; r < replications; ++r) {
        const auto outcome = delegation::realize(mechanism, instance, rng);
        const auto w = static_cast<double>(outcome.stats().max_weight);
        max_weight.add(w);
        worst = std::max(worst, w);
        const double mu =
            election::conditional_vote_mean(outcome, instance.competencies());
        const double var =
            election::conditional_vote_variance(outcome, instance.competencies());
        margin.add(mu - static_cast<double>(outcome.stats().cast_weight) / 2.0);
        sigma.add(var);
    }
    audit.mean_max_weight = max_weight.mean();
    audit.worst_max_weight = worst;
    audit.weight_cap = std::pow(static_cast<double>(n), 1.0 - eps);
    audit.deviation_radius = prob::lemma5_radius(n, eps, worst, c);
    audit.failure_bound = prob::lemma5_failure_bound(n, eps, c);
    audit.mean_margin = margin.mean();
    audit.mean_sigma = std::sqrt(std::max(0.0, sigma.mean()));

    // Finite-n verdict in the lemma's spirit: the max-weight cap is "small
    // enough" when the conditional fluctuations it permits stay well below
    // the delegated majority margin.
    audit.weight_small_enough =
        worst <= 1.0 || audit.mean_margin >= 2.0 * audit.mean_sigma;
    return audit;
}

}  // namespace ld::dnh
