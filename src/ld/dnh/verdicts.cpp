#include "ld/dnh/verdicts.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/expect.hpp"

namespace ld::dnh {

using support::expects;

std::vector<SweepPoint> sweep_gain(const InstanceFamily& family,
                                   const mech::Mechanism& mechanism,
                                   const std::vector<std::size_t>& sizes, rng::Rng& rng,
                                   const election::EvalOptions& eval) {
    expects(!sizes.empty(), "sweep_gain: no sizes given");
    std::vector<SweepPoint> sweep;
    sweep.reserve(sizes.size());
    for (std::size_t n : sizes) {
        const model::Instance instance = family(n, rng);
        const auto report = election::estimate_gain(mechanism, instance, rng, eval);
        SweepPoint pt;
        pt.n = n;
        pt.gain = report.gain;
        pt.gain_ci_lo = report.gain_ci.lo;
        pt.gain_ci_hi = report.gain_ci.hi;
        pt.pd = report.pd;
        pt.pm = report.pm.value;
        pt.mean_delegators = report.mean_delegators;
        pt.mean_max_weight = report.mean_max_weight;
        sweep.push_back(pt);
    }
    return sweep;
}

DesideratumVerdict check_dnh(const InstanceFamily& family,
                             const mech::Mechanism& mechanism,
                             const std::vector<std::size_t>& sizes, rng::Rng& rng,
                             const VerdictOptions& options) {
    DesideratumVerdict verdict;
    verdict.sweep = sweep_gain(family, mechanism, sizes, rng, options.eval);
    verdict.worst_gain = std::numeric_limits<double>::infinity();
    for (const auto& pt : verdict.sweep) {
        verdict.worst_gain = std::min(verdict.worst_gain, pt.gain);
    }
    // DNH is asymptotic: judge the largest half of the sweep.
    const std::size_t half = verdict.sweep.size() / 2;
    double tail_worst = std::numeric_limits<double>::infinity();
    for (std::size_t i = half; i < verdict.sweep.size(); ++i) {
        tail_worst = std::min(tail_worst, verdict.sweep[i].gain);
    }
    verdict.satisfied = tail_worst >= -options.dnh_tolerance;
    std::ostringstream os;
    os << "DNH: worst tail gain " << tail_worst << " vs tolerance -"
       << options.dnh_tolerance << " => " << (verdict.satisfied ? "PASS" : "FAIL");
    verdict.detail = os.str();
    return verdict;
}

DesideratumVerdict check_spg(const InstanceFamily& family,
                             const mech::Mechanism& mechanism,
                             const std::vector<std::size_t>& sizes, rng::Rng& rng,
                             const VerdictOptions& options) {
    DesideratumVerdict verdict;
    verdict.sweep = sweep_gain(family, mechanism, sizes, rng, options.eval);
    expects(options.spg_burn_in < verdict.sweep.size(),
            "check_spg: burn-in swallows the whole sweep");
    verdict.worst_gain = std::numeric_limits<double>::infinity();
    double gamma = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < verdict.sweep.size(); ++i) {
        verdict.worst_gain = std::min(verdict.worst_gain, verdict.sweep[i].gain);
        if (i >= options.spg_burn_in) gamma = std::min(gamma, verdict.sweep[i].gain);
    }
    verdict.gamma = gamma;
    verdict.satisfied = gamma > options.spg_gamma_floor;
    std::ostringstream os;
    os << "SPG: certified gamma " << gamma << " (floor " << options.spg_gamma_floor
       << ") => " << (verdict.satisfied ? "PASS" : "FAIL");
    verdict.detail = os.str();
    return verdict;
}

}  // namespace ld::dnh
