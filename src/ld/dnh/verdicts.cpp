#include "ld/dnh/verdicts.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/expect.hpp"

namespace ld::dnh {

using support::expects;

std::vector<SweepPoint> sweep_gain(const InstanceFamily& family,
                                   const mech::Mechanism& mechanism,
                                   const std::vector<std::size_t>& sizes, rng::Rng& rng,
                                   const election::EvalOptions& eval) {
    expects(!sizes.empty(), "sweep_gain: no sizes given");
    std::vector<SweepPoint> sweep;
    sweep.reserve(sizes.size());
    for (std::size_t n : sizes) {
        const model::Instance instance = family(n, rng);
        const auto report = election::estimate_gain(mechanism, instance, rng, eval);
        SweepPoint pt;
        pt.n = n;
        pt.gain = report.gain;
        pt.gain_ci_lo = report.gain_ci.lo;
        pt.gain_ci_hi = report.gain_ci.hi;
        pt.pd = report.pd;
        pt.pm = report.pm.value;
        pt.mean_delegators = report.mean_delegators;
        pt.mean_max_weight = report.mean_max_weight;
        if (report.certified_gain && report.pm.certified) {
            pt.certified = true;
            pt.cert_gain_lo = report.certified_gain->lo;
            pt.cert_gain_hi = report.certified_gain->hi;
            pt.cert_stop = report.pm.certified->stop;
        }
        sweep.push_back(pt);
    }
    return sweep;
}

namespace {

/// Fold the judged points' certificates into a verdict label.  The claim
/// each point certifies is "gain ≥ γ" at per-point error δ; the verdict
/// over k judged points holds at family-wise error k·δ (union bound).
void certify_verdict(DesideratumVerdict& verdict, std::size_t first_judged,
                     double per_point_delta, const char* pass_label) {
    std::size_t decided_above = 0, decided_below = 0, judged = 0;
    for (std::size_t i = first_judged; i < verdict.sweep.size(); ++i) {
        const auto& pt = verdict.sweep[i];
        if (!pt.certified) return;  // certification not requested
        ++judged;
        if (pt.cert_stop == stats::CertStop::DecidedAbove) ++decided_above;
        if (pt.cert_stop == stats::CertStop::DecidedBelow) ++decided_below;
    }
    if (judged == 0) return;
    verdict.certified_delta = per_point_delta * static_cast<double>(judged);
    if (decided_below > 0) {
        // At least one judged point certifiably fails the claim: the
        // desideratum is refuted at the family-wise level.
        verdict.certification = "certified_violation";
        verdict.satisfied = false;
    } else if (decided_above == judged) {
        verdict.certification = pass_label;
        verdict.satisfied = true;
    } else {
        verdict.certification = "inconclusive(budget_exhausted)";
    }
}

}  // namespace

DesideratumVerdict check_dnh(const InstanceFamily& family,
                             const mech::Mechanism& mechanism,
                             const std::vector<std::size_t>& sizes, rng::Rng& rng,
                             const VerdictOptions& options) {
    DesideratumVerdict verdict;
    // Certified mode decides each point against the DNH claim itself:
    // "gain ≥ −tolerance" — the caller's certify.gamma is overridden so
    // the confidence sequence stops as soon as *this* claim is settled.
    election::EvalOptions eval = options.eval;
    if (eval.certify.enabled()) eval.certify.gamma = -options.dnh_tolerance;
    verdict.sweep = sweep_gain(family, mechanism, sizes, rng, eval);
    verdict.worst_gain = std::numeric_limits<double>::infinity();
    for (const auto& pt : verdict.sweep) {
        verdict.worst_gain = std::min(verdict.worst_gain, pt.gain);
    }
    // DNH is asymptotic: judge the largest half of the sweep.
    const std::size_t half = verdict.sweep.size() / 2;
    double tail_worst = std::numeric_limits<double>::infinity();
    for (std::size_t i = half; i < verdict.sweep.size(); ++i) {
        tail_worst = std::min(tail_worst, verdict.sweep[i].gain);
    }
    verdict.satisfied = tail_worst >= -options.dnh_tolerance;
    certify_verdict(verdict, half, eval.certify.delta, "certified_dnh");
    std::ostringstream os;
    os << "DNH: worst tail gain " << tail_worst << " vs tolerance -"
       << options.dnh_tolerance << " => " << (verdict.satisfied ? "PASS" : "FAIL");
    if (!verdict.certification.empty()) {
        os << " [" << verdict.certification << ", family-wise delta "
           << verdict.certified_delta << "]";
    }
    verdict.detail = os.str();
    return verdict;
}

DesideratumVerdict check_spg(const InstanceFamily& family,
                             const mech::Mechanism& mechanism,
                             const std::vector<std::size_t>& sizes, rng::Rng& rng,
                             const VerdictOptions& options) {
    DesideratumVerdict verdict;
    // Certified mode decides "gain ≥ floor" at every judged size.
    election::EvalOptions eval = options.eval;
    if (eval.certify.enabled()) eval.certify.gamma = options.spg_gamma_floor;
    verdict.sweep = sweep_gain(family, mechanism, sizes, rng, eval);
    expects(options.spg_burn_in < verdict.sweep.size(),
            "check_spg: burn-in swallows the whole sweep");
    verdict.worst_gain = std::numeric_limits<double>::infinity();
    double gamma = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < verdict.sweep.size(); ++i) {
        verdict.worst_gain = std::min(verdict.worst_gain, verdict.sweep[i].gain);
        if (i >= options.spg_burn_in) gamma = std::min(gamma, verdict.sweep[i].gain);
    }
    verdict.gamma = gamma;
    verdict.satisfied = gamma > options.spg_gamma_floor;
    certify_verdict(verdict, options.spg_burn_in, eval.certify.delta,
                    "certified_spg");
    if (verdict.certification == "certified_spg") {
        // A certified uniform gain: every judged point's anytime-valid
        // lower endpoint, minimised — the γ the verdict actually certifies.
        double certified_gamma = std::numeric_limits<double>::infinity();
        for (std::size_t i = options.spg_burn_in; i < verdict.sweep.size(); ++i) {
            certified_gamma =
                std::min(certified_gamma, verdict.sweep[i].cert_gain_lo);
        }
        verdict.gamma = certified_gamma;
    }
    std::ostringstream os;
    os << "SPG: certified gamma " << verdict.gamma << " (floor "
       << options.spg_gamma_floor << ") => "
       << (verdict.satisfied ? "PASS" : "FAIL");
    if (!verdict.certification.empty()) {
        os << " [" << verdict.certification << ", family-wise delta "
           << verdict.certified_delta << "]";
    }
    verdict.detail = os.str();
    return verdict;
}

}  // namespace ld::dnh
