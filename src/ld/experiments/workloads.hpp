// Named instance families used across benches, tests, and examples — the
// concrete workloads behind each experiment id in DESIGN.md §4.

#pragma once

#include <cstddef>

#include "ld/dnh/verdicts.hpp"  // InstanceFamily
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"

namespace ld::experiments {

/// K_n with PC = a competencies drawn uniform around 1/2 + a (E-T2).
model::Instance complete_pc_instance(rng::Rng& rng, std::size_t n, double alpha, double a,
                                     double spread);

/// Figure 1's star: centre 0 at competency `centre`, leaves at `leaf`.
model::Instance star_instance(std::size_t n, double centre, double leaf, double alpha);

/// The fixed 9-voter instance of Figure 2 (complete awareness graph,
/// α = 0.01).
model::Instance figure2_instance();

/// Random d-regular graph with PC = a competencies (E-T3).
model::Instance d_regular_instance(rng::Rng& rng, std::size_t n, std::size_t d,
                                   double alpha, double a, double spread);

/// Bounded-maximum-degree random graph with uniform competencies (E-T4).
model::Instance bounded_degree_instance(rng::Rng& rng, std::size_t n,
                                        std::size_t max_degree, double alpha, double lo,
                                        double hi);

/// Bounded-minimum-degree random graph with uniform competencies (E-T5).
model::Instance min_degree_instance(rng::Rng& rng, std::size_t n, std::size_t min_degree,
                                    double alpha, double lo, double hi);

/// Barabási–Albert graph with uniform competencies (X3).
model::Instance barabasi_instance(rng::Rng& rng, std::size_t n, std::size_t m,
                                  double alpha, double lo, double hi);

/// Two-tier hub/leaf graph: hubs highly competent, leaves mediocre —
/// the generalized star used in variance-collapse demos (E-VAR).
model::Instance two_tier_instance(rng::Rng& rng, std::size_t n, std::size_t hubs,
                                  double hub_p, double leaf_p, double alpha);

/// Families (size ↦ instance) wrapping the factories above with fixed
/// parameters, for the desiderata checks in ld/dnh/verdicts.hpp.
dnh::InstanceFamily complete_pc_family(double alpha, double a, double spread);
dnh::InstanceFamily star_family(double centre, double leaf, double alpha);
dnh::InstanceFamily d_regular_family(std::size_t d, double alpha, double a, double spread);
dnh::InstanceFamily bounded_degree_family(double degree_exponent, double alpha, double lo,
                                          double hi);
dnh::InstanceFamily min_degree_family(double degree_exponent, double alpha, double lo,
                                      double hi);
dnh::InstanceFamily barabasi_family(std::size_t m, double alpha, double lo, double hi);

}  // namespace ld::experiments
