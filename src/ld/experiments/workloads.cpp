#include "ld/experiments/workloads.hpp"

#include <cmath>

#include "graph/generators.hpp"
#include "ld/model/competency_gen.hpp"

namespace ld::experiments {

model::Instance complete_pc_instance(rng::Rng& rng, std::size_t n, double alpha, double a,
                                     double spread) {
    return model::Instance(graph::make_complete(n),
                           model::pc_competencies(rng, n, a, spread), alpha);
}

model::Instance star_instance(std::size_t n, double centre, double leaf, double alpha) {
    return model::Instance(graph::make_star(n),
                           model::star_competencies(n, centre, leaf), alpha);
}

model::Instance figure2_instance() {
    return model::Instance(graph::make_complete(9), model::figure2_competencies(), 0.01);
}

model::Instance d_regular_instance(rng::Rng& rng, std::size_t n, std::size_t d,
                                   double alpha, double a, double spread) {
    return model::Instance(graph::make_random_d_regular(rng, n, d),
                           model::pc_competencies(rng, n, a, spread), alpha);
}

model::Instance bounded_degree_instance(rng::Rng& rng, std::size_t n,
                                        std::size_t max_degree, double alpha, double lo,
                                        double hi) {
    // Aim for a dense-as-allowed graph under the cap: n·max_degree/4 edges.
    const std::size_t target_edges = n * max_degree / 4;
    return model::Instance(graph::make_bounded_degree(rng, n, max_degree, target_edges),
                           model::uniform_competencies(rng, n, lo, hi), alpha);
}

model::Instance min_degree_instance(rng::Rng& rng, std::size_t n, std::size_t min_degree,
                                    double alpha, double lo, double hi) {
    return model::Instance(graph::make_min_degree_at_least(rng, n, min_degree),
                           model::uniform_competencies(rng, n, lo, hi), alpha);
}

model::Instance barabasi_instance(rng::Rng& rng, std::size_t n, std::size_t m,
                                  double alpha, double lo, double hi) {
    return model::Instance(graph::make_barabasi_albert(rng, n, m),
                           model::uniform_competencies(rng, n, lo, hi), alpha);
}

model::Instance two_tier_instance(rng::Rng& rng, std::size_t n, std::size_t hubs,
                                  double hub_p, double leaf_p, double alpha) {
    std::vector<double> p(n, leaf_p);
    for (std::size_t h = 0; h < hubs && h < n; ++h) p[h] = hub_p;
    return model::Instance(graph::make_two_tier(rng, n, hubs, 1),
                           model::CompetencyVector(std::move(p)), alpha);
}

dnh::InstanceFamily complete_pc_family(double alpha, double a, double spread) {
    return [=](std::size_t n, rng::Rng& rng) {
        return complete_pc_instance(rng, n, alpha, a, spread);
    };
}

dnh::InstanceFamily star_family(double centre, double leaf, double alpha) {
    return [=](std::size_t n, rng::Rng&) { return star_instance(n, centre, leaf, alpha); };
}

dnh::InstanceFamily d_regular_family(std::size_t d, double alpha, double a,
                                     double spread) {
    return [=](std::size_t n, rng::Rng& rng) {
        // Keep n·d even so the configuration model is well defined.
        const std::size_t n_adj = (n * d) % 2 == 0 ? n : n + 1;
        return d_regular_instance(rng, n_adj, d, alpha, a, spread);
    };
}

dnh::InstanceFamily bounded_degree_family(double degree_exponent, double alpha, double lo,
                                          double hi) {
    return [=](std::size_t n, rng::Rng& rng) {
        const auto cap = std::max<std::size_t>(
            2, static_cast<std::size_t>(
                   std::floor(std::pow(static_cast<double>(n), degree_exponent))));
        return bounded_degree_instance(rng, n, cap, alpha, lo, hi);
    };
}

dnh::InstanceFamily min_degree_family(double degree_exponent, double alpha, double lo,
                                      double hi) {
    return [=](std::size_t n, rng::Rng& rng) {
        const auto floor_deg = std::max<std::size_t>(
            2, static_cast<std::size_t>(
                   std::floor(std::pow(static_cast<double>(n), degree_exponent))));
        return min_degree_instance(rng, n, floor_deg, alpha, lo, hi);
    };
}

dnh::InstanceFamily barabasi_family(std::size_t m, double alpha, double lo, double hi) {
    return [=](std::size_t n, rng::Rng& rng) {
        return barabasi_instance(rng, n, m, alpha, lo, hi);
    };
}

}  // namespace ld::experiments
