#include "ld/experiments/sweep.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>

#include "ld/cli/specs.hpp"
#include "ld/experiments/harness.hpp"  // stable_seed
#include "ld/election/evaluator.hpp"
#include "ld/model/instance.hpp"
#include "prob/convolve.hpp"
#include "support/build_info.hpp"
#include "support/cpu_features.hpp"
#include "support/csv_writer.hpp"
#include "support/expect.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace ld::experiments {

namespace json = support::json;

namespace {

// Spec parsing ------------------------------------------------------------

[[noreturn]] void spec_error(const std::string& where, const std::string& what) {
    throw SweepError("sweep spec: " + where + ": " + what);
}

double require_number(const json::Value& v, const std::string& where) {
    if (!v.is_number()) spec_error(where, "expected a number");
    return v.as_number();
}

std::size_t require_count(const json::Value& v, const std::string& where) {
    const double d = require_number(v, where);
    if (d < 0 || d != static_cast<double>(static_cast<std::size_t>(d))) {
        spec_error(where, "expected a non-negative integer");
    }
    return static_cast<std::size_t>(d);
}

/// An axis accepts either a scalar or a non-empty array of scalars.
std::vector<json::Value> axis_values(const json::Value& axes, const std::string& key) {
    const json::Value* v = axes.find(key);
    if (!v) spec_error("axes." + key, "missing");
    if (v->is_array()) {
        if (v->as_array().empty()) spec_error("axes." + key, "must not be empty");
        return v->as_array();
    }
    return {*v};
}

std::vector<std::string> string_axis(const json::Value& axes, const std::string& key) {
    std::vector<std::string> out;
    for (const auto& v : axis_values(axes, key)) {
        if (!v.is_string()) spec_error("axes." + key, "expected spec strings");
        out.push_back(v.as_string());
    }
    return out;
}

// Row formatting ----------------------------------------------------------

/// One field, rendered exactly as support::CsvWriter renders it — the
/// single formatting used for CSV rows, JSONL rows, and the values stored
/// in (and replayed from) checkpoints, so every path is byte-stable.
std::string render_field(const support::Cell& cell) {
    std::ostringstream os;
    if (const auto* s = std::get_if<std::string>(&cell)) {
        os << *s;
    } else if (const auto* i = std::get_if<long long>(&cell)) {
        os << *i;
    } else {
        os << std::setprecision(17) << std::get<double>(cell);
    }
    return os.str();
}

json::Value cell_to_json(const support::Cell& cell) {
    if (const auto* s = std::get_if<std::string>(&cell)) return json::Value(*s);
    if (const auto* i = std::get_if<long long>(&cell)) {
        return json::Value(static_cast<double>(*i));
    }
    return json::Value(std::get<double>(cell));
}

support::Cell cell_from_json(const json::Value& v, const std::string& where) {
    if (v.is_string()) return v.as_string();
    if (v.is_number()) return v.as_number();
    throw SweepError("sweep checkpoint: " + where + ": row fields must be strings or numbers");
}

std::string hex_seed(std::uint64_t seed) {
    std::ostringstream os;
    os << "0x" << std::hex << seed;
    return os.str();
}

/// Streams rows to either CSV (with header) or JSON lines, chosen by the
/// output path's extension.
class RowWriter {
public:
    RowWriter(const std::string& path, const std::vector<std::string>& headers) {
        const bool jsonl = std::string_view(path).ends_with(".jsonl") ||
                           std::string_view(path).ends_with(".ndjson");
        if (jsonl) {
            headers_ = headers;
            out_.open(path, std::ios::binary | std::ios::trunc);
            if (!out_) throw SweepError("sweep: cannot open output '" + path + "'");
        } else {
            csv_ = std::make_unique<support::CsvWriter>(path, headers);
        }
    }

    void write(const std::vector<support::Cell>& row) {
        if (csv_) {
            // Pre-render so CSV always sees strings: one formatting path
            // shared with checkpoints regardless of the Cell alternative.
            std::vector<support::Cell> fields;
            fields.reserve(row.size());
            for (const auto& cell : row) fields.emplace_back(render_field(cell));
            csv_->add_row(fields);
            return;
        }
        json::Object object;
        for (std::size_t i = 0; i < row.size(); ++i) {
            object.emplace(headers_[i], cell_to_json(row[i]));
        }
        out_ << json::dump(json::Value(std::move(object))) << '\n';
    }

    void close() {
        if (csv_) csv_->close();
        if (out_.is_open()) out_.close();
    }

private:
    std::unique_ptr<support::CsvWriter> csv_;
    std::ofstream out_;
    std::vector<std::string> headers_;
};

}  // namespace

SweepSpec SweepSpec::from_json(const json::Value& doc) {
    if (!doc.is_object()) throw SweepError("sweep spec: document must be a JSON object");
    if (const json::Value* schema = doc.find("schema")) {
        if (!schema->is_string() || schema->as_string() != "liquidd.sweep-spec.v1") {
            spec_error("schema", "expected \"liquidd.sweep-spec.v1\"");
        }
    }
    SweepSpec spec;
    const json::Value* name = doc.find("name");
    if (!name || !name->is_string() || name->as_string().empty()) {
        spec_error("name", "required non-empty string");
    }
    spec.name = name->as_string();
    if (const json::Value* seed = doc.find("seed")) {
        spec.seed = static_cast<std::uint64_t>(require_count(*seed, "seed"));
    }
    if (const json::Value* reps = doc.find("replications")) {
        spec.replications = require_count(*reps, "replications");
    }
    if (spec.replications == 0) spec_error("replications", "must be >= 1");

    const json::Value* axes = doc.find("axes");
    if (!axes || !axes->is_object()) spec_error("axes", "required object");
    for (const auto& [key, value] : axes->as_object()) {
        (void)value;
        if (key != "n" && key != "alpha" && key != "graph" && key != "competencies" &&
            key != "mechanism") {
            spec_error("axes." + key, "unknown axis (n, alpha, graph, competencies, mechanism)");
        }
    }
    for (const auto& v : axis_values(*axes, "n")) {
        const std::size_t n = require_count(v, "axes.n");
        if (n < 1) spec_error("axes.n", "voter counts must be >= 1");
        spec.ns.push_back(n);
    }
    for (const auto& v : axis_values(*axes, "alpha")) {
        const double alpha = require_number(v, "axes.alpha");
        if (alpha <= 0) spec_error("axes.alpha", "approval margins must be > 0");
        spec.alphas.push_back(alpha);
    }
    spec.graphs = string_axis(*axes, "graph");
    spec.competencies = string_axis(*axes, "competencies");
    spec.mechanisms = string_axis(*axes, "mechanism");

    if (const json::Value* options = doc.find("options")) {
        if (!options->is_object()) spec_error("options", "expected object");
        for (const auto& [key, value] : options->as_object()) {
            if (key == "threads") spec.threads = require_count(value, "options.threads");
            else if (key == "inner_samples") {
                spec.inner_samples = require_count(value, "options.inner_samples");
                if (spec.inner_samples == 0) spec_error("options.inner_samples", "must be >= 1");
            } else if (key == "discard_cycles") {
                if (!value.is_bool()) spec_error("options.discard_cycles", "expected bool");
                spec.discard_cycles = value.as_bool();
            } else if (key == "approximate") {
                if (!value.is_bool()) spec_error("options.approximate", "expected bool");
                spec.approximate = value.as_bool();
            } else if (key == "target_se") {
                spec.target_std_error = require_number(value, "options.target_se");
                if (spec.target_std_error < 0) {
                    spec_error("options.target_se", "must be >= 0");
                }
            } else if (key == "adaptive_batch") {
                spec.adaptive_batch = require_count(value, "options.adaptive_batch");
                if (spec.adaptive_batch == 0) {
                    spec_error("options.adaptive_batch", "must be >= 1");
                }
            } else if (key == "max_reps") {
                spec.max_replications = require_count(value, "options.max_reps");
                if (spec.max_replications == 0) {
                    spec_error("options.max_reps", "must be >= 1");
                }
            } else if (key == "tally_eps") {
                spec.tally_epsilon = require_number(value, "options.tally_eps");
                if (spec.tally_epsilon < 0 || spec.tally_epsilon >= 1) {
                    spec_error("options.tally_eps", "must be in [0, 1)");
                }
            } else if (key == "certify_gamma") {
                spec.certify_gamma = require_number(value, "options.certify_gamma");
            } else if (key == "certify_delta") {
                spec.certify_delta = require_number(value, "options.certify_delta");
                if (spec.certify_delta < 0 || spec.certify_delta >= 1) {
                    spec_error("options.certify_delta", "must be in [0, 1)");
                }
            } else if (key == "certify_boundary") {
                if (!value.is_string()) {
                    spec_error("options.certify_boundary", "expected string");
                }
                spec.certify_boundary = value.as_string();
                try {
                    stats::parse_cs_boundary(spec.certify_boundary);
                } catch (const support::ContractViolation& e) {
                    spec_error("options.certify_boundary", e.what());
                }
            } else {
                spec_error("options." + key, "unknown option");
            }
        }
    }
    return spec;
}

SweepSpec SweepSpec::load(const std::string& path) {
    try {
        return from_json(json::parse_file(path));
    } catch (const json::Error& e) {
        throw SweepError(std::string("sweep spec '") + path + "': " + e.what());
    }
}

std::size_t SweepSpec::cell_count() const noexcept {
    return ns.size() * alphas.size() * graphs.size() * competencies.size() *
           mechanisms.size();
}

std::uint64_t SweepSpec::fingerprint() const {
    // Canonical text over every result-affecting field, FNV-1a hashed
    // (stable_seed).  '\x1f' separates fields so concatenation is
    // unambiguous.
    std::ostringstream canon;
    const char sep = '\x1f';
    canon << "liquidd.sweep-spec.v1" << sep << name << sep << seed << sep
          << replications << sep << inner_samples << sep << discard_cycles << sep
          << approximate << sep << json::format_number(target_std_error) << sep
          << adaptive_batch << sep << max_replications << sep
          << json::format_number(tally_epsilon) << sep
          << json::format_number(certify_gamma) << sep
          << json::format_number(certify_delta) << sep << certify_boundary << sep;
    for (std::size_t n : ns) canon << 'n' << n << sep;
    for (double a : alphas) canon << 'a' << json::format_number(a) << sep;
    for (const auto& g : graphs) canon << 'g' << g << sep;
    for (const auto& c : competencies) canon << 'c' << c << sep;
    for (const auto& m : mechanisms) canon << 'm' << m << sep;
    return stable_seed(canon.str());
}

std::uint64_t derive_cell_seed(std::uint64_t sweep_seed, std::size_t cell_index) {
    rng::SplitMix64 base(sweep_seed);
    rng::SplitMix64 cell(base.next() ^
                         (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(cell_index) + 1)));
    return cell.next();
}

SweepEngine::SweepEngine(SweepSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
    if (spec_.name.empty()) throw SweepError("sweep: spec has no name");
    if (spec_.cell_count() == 0) throw SweepError("sweep: spec has an empty axis");
    if (options_.shard.count == 0) throw SweepError("sweep: shard count must be >= 1");
    if (options_.shard.index >= options_.shard.count) {
        throw SweepError("sweep: shard index must be < shard count");
    }
    const std::size_t requested = options_.threads.value_or(spec_.threads);
    resolved_threads_ =
        requested == 0 ? support::ThreadPool::global().worker_count() : requested;
}

const std::vector<std::string>& SweepEngine::row_headers() {
    // New columns go at the end: downstream tooling (and the progress log)
    // indexes rows by position.
    static const std::vector<std::string> headers = {
        "cell",         "n",       "alpha",      "graph",
        "competencies", "mechanism", "replications", "seed",
        "pd",           "pm",      "pm_stderr",  "gain",
        "gain_ci_lo",   "gain_ci_hi", "mean_delegators", "mean_sinks",
        "mean_max_weight", "mean_longest_path",
        "cert_gain_lo", "cert_gain_hi", "cert_stop"};
    return headers;
}

std::vector<SweepCell> SweepEngine::cells() const {
    std::vector<SweepCell> out;
    out.reserve(spec_.cell_count());
    std::size_t index = 0;
    for (std::size_t n : spec_.ns) {
        for (double alpha : spec_.alphas) {
            for (const auto& graph : spec_.graphs) {
                for (const auto& competency : spec_.competencies) {
                    for (const auto& mechanism : spec_.mechanisms) {
                        SweepCell cell;
                        cell.index = index;
                        cell.n = n;
                        cell.alpha = alpha;
                        cell.graph = graph;
                        cell.competency = competency;
                        cell.mechanism = mechanism;
                        cell.seed = derive_cell_seed(spec_.seed, index);
                        out.push_back(std::move(cell));
                        ++index;
                    }
                }
            }
        }
    }
    return out;
}

SweepEngine::Row SweepEngine::run_cell(const SweepCell& cell) const {
    rng::Rng rng(cell.seed);
    auto graph = cli::make_graph(cell.graph, cell.n, rng);
    auto competencies = cli::make_competencies(cell.competency, graph.vertex_count(), rng);
    model::Instance instance(std::move(graph), std::move(competencies), cell.alpha);
    const auto mechanism = cli::make_mechanism(cell.mechanism);
    if (!mechanism->approval_respecting() && !spec_.discard_cycles) {
        throw cli::SpecError("mechanism '" + cell.mechanism +
                             "' can create delegation cycles; set options.discard_cycles");
    }

    election::EvalOptions eval;
    eval.replications = spec_.replications;
    eval.target_std_error = spec_.target_std_error;
    eval.adaptive_batch = spec_.adaptive_batch;
    eval.max_replications = spec_.max_replications;
    eval.tally_epsilon = spec_.tally_epsilon;
    eval.inner_samples = spec_.inner_samples;
    eval.threads = resolved_threads_;
    eval.approximate_tally = spec_.approximate;
    if (spec_.discard_cycles) eval.cycle_policy = delegation::CyclePolicy::Discard;
    if (spec_.certify_delta > 0.0) {
        eval.certify.gamma = spec_.certify_gamma;
        eval.certify.delta = spec_.certify_delta;
        eval.certify.boundary = stats::parse_cs_boundary(spec_.certify_boundary);
    }
    const auto report = election::estimate_gain(*mechanism, instance, rng, eval);

    // Certified columns: empty strings when certification is off, so
    // fixed/adaptive sweeps keep byte-stable rows.
    support::Cell cert_lo{std::string()}, cert_hi{std::string()},
        cert_stop{std::string()};
    if (report.certified_gain && report.pm.certified) {
        cert_lo = report.certified_gain->lo;
        cert_hi = report.certified_gain->hi;
        cert_stop = std::string(stats::cert_stop_name(report.pm.certified->stop));
    }

    return Row{static_cast<long long>(cell.index),
               static_cast<long long>(cell.n),
               cell.alpha,
               cell.graph,
               cell.competency,
               cell.mechanism,
               // Actual replication count: equals spec_.replications in
               // fixed mode, the adaptive stopping point otherwise.
               static_cast<long long>(report.pm.replications),
               hex_seed(cell.seed),
               report.pd,
               report.pm.value,
               report.pm.std_error,
               report.gain,
               report.gain_ci.lo,
               report.gain_ci.hi,
               report.mean_delegators,
               report.mean_sinks,
               report.mean_max_weight,
               report.mean_longest_path,
               cert_lo,
               cert_hi,
               cert_stop};
}

void SweepEngine::write_checkpoint(const std::map<std::size_t, Row>& done) const {
    json::Object manifest;
    manifest.emplace("schema", json::Value(std::string("liquidd.sweep.v1")));
    manifest.emplace("build", support::build_info_json());
    manifest.emplace("simd", json::Value(std::string(support::simd_tier_name(
                                 prob::kernel_tier()))));
    manifest.emplace("sweep", json::Value(spec_.name));
    manifest.emplace("spec_fingerprint", json::Value(hex_seed(spec_.fingerprint())));
    json::Object shard;
    shard.emplace("index", json::Value(static_cast<double>(options_.shard.index)));
    shard.emplace("count", json::Value(static_cast<double>(options_.shard.count)));
    manifest.emplace("shard", json::Value(std::move(shard)));
    manifest.emplace("threads", json::Value(static_cast<double>(resolved_threads_)));
    manifest.emplace("cell_count", json::Value(static_cast<double>(spec_.cell_count())));
    json::Array headers;
    for (const auto& h : row_headers()) headers.emplace_back(h);
    manifest.emplace("headers", json::Value(std::move(headers)));
    json::Object cells;
    for (const auto& [index, row] : done) {
        json::Array fields;
        fields.reserve(row.size());
        for (const auto& cell : row) fields.push_back(cell_to_json(cell));
        cells.emplace(std::to_string(index), json::Value(std::move(fields)));
    }
    manifest.emplace("cells", json::Value(std::move(cells)));

    // Atomic publish: finished manifests only.  A kill between cells
    // leaves the previous manifest; a kill mid-write leaves the previous
    // manifest plus a stale .tmp that the next write overwrites.
    const std::string tmp = options_.checkpoint_path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw SweepError("sweep: cannot open checkpoint '" + tmp + "'");
        json::write(out, json::Value(std::move(manifest)), 2);
        out << '\n';
        out.flush();
        if (!out) throw SweepError("sweep: failed writing checkpoint '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), options_.checkpoint_path.c_str()) != 0) {
        throw SweepError("sweep: cannot publish checkpoint '" + options_.checkpoint_path +
                         "'");
    }
}

std::map<std::size_t, SweepEngine::Row> SweepEngine::load_checkpoint() const {
    std::map<std::size_t, Row> done;
    std::ifstream probe(options_.checkpoint_path);
    if (!probe.good()) return done;  // nothing to resume from: fresh run
    probe.close();

    const json::Value doc = json::parse_file(options_.checkpoint_path);
    const auto check = [&](bool ok, const std::string& what) {
        if (!ok) {
            throw SweepError("sweep: checkpoint '" + options_.checkpoint_path +
                             "' does not match this run: " + what);
        }
    };
    check(doc.at("schema").as_string() == "liquidd.sweep.v1", "schema");
    check(doc.at("spec_fingerprint").as_string() == hex_seed(spec_.fingerprint()),
          "spec changed since the checkpoint was written");
    check(static_cast<std::size_t>(doc.at("shard").at("index").as_number()) ==
                  options_.shard.index &&
              static_cast<std::size_t>(doc.at("shard").at("count").as_number()) ==
                  options_.shard.count,
          "shard assignment differs");
    check(static_cast<std::size_t>(doc.at("threads").as_number()) == resolved_threads_,
          "thread count differs (the replication split depends on it)");

    const std::size_t width = row_headers().size();
    for (const auto& [key, fields] : doc.at("cells").as_object()) {
        const std::size_t index = static_cast<std::size_t>(std::stoull(key));
        const json::Array& array = fields.as_array();
        check(array.size() == width, "cell " + key + " has wrong width");
        Row row;
        row.reserve(width);
        for (const auto& field : array) row.push_back(cell_from_json(field, "cell " + key));
        done.emplace(index, std::move(row));
    }
    return done;
}

SweepResult SweepEngine::run(std::ostream& log) {
    if (options_.output_path.empty()) throw SweepError("sweep: no output path");
    if (options_.checkpoint_path.empty()) {
        options_.checkpoint_path = options_.output_path + ".ckpt.json";
    }

    auto& registry = support::MetricsRegistry::global();
    support::Counter& completed_metric = registry.counter("sweep.cells_completed");
    support::Counter& skipped_metric = registry.counter("sweep.cells_skipped");
    support::Counter& failed_metric = registry.counter("sweep.cells_failed");
    support::LatencyHistogram& latency = registry.histogram("sweep.cell_latency");

    const std::vector<SweepCell> grid = cells();
    std::vector<const SweepCell*> mine;
    for (const auto& cell : grid) {
        if (cell.index % options_.shard.count == options_.shard.index) {
            mine.push_back(&cell);
        }
    }

    std::map<std::size_t, Row> done =
        options_.resume ? load_checkpoint() : std::map<std::size_t, Row>{};

    SweepResult result;
    result.cells_total = mine.size();
    if (!options_.quiet) {
        log << "sweep " << spec_.name << ": " << grid.size() << " cells";
        if (options_.shard.count > 1) {
            log << ", shard " << options_.shard.index << "/" << options_.shard.count
                << " -> " << mine.size() << " cells";
        }
        log << ", " << resolved_threads_ << " thread(s), resume "
            << (options_.resume ? "on" : "off") << "\n";
    }

    RowWriter writer(options_.output_path, row_headers());
    bool interrupted = false;
    for (const SweepCell* cell : mine) {
        if (const auto it = done.find(cell->index); it != done.end()) {
            writer.write(it->second);
            skipped_metric.add(1);
            ++result.cells_skipped;
            continue;
        }
        if (options_.max_cells != 0 && result.cells_completed >= options_.max_cells) {
            interrupted = true;
            break;
        }
        if (options_.cancel && options_.cancel()) {
            // The previous cell's checkpoint is already published, so
            // stopping here loses no work.
            interrupted = true;
            result.cancelled = true;
            break;
        }
        const support::Stopwatch clock;
        Row row;
        try {
            row = run_cell(*cell);
        } catch (const std::exception& e) {
            failed_metric.add(1);
            throw SweepError("sweep cell #" + std::to_string(cell->index) + " (n=" +
                             std::to_string(cell->n) + ", graph=" + cell->graph +
                             ", competencies=" + cell->competency + ", mechanism=" +
                             cell->mechanism + "): " + e.what());
        }
        latency.record(clock.elapsed_seconds());
        completed_metric.add(1);
        ++result.cells_completed;
        if (!options_.quiet) {
            log << "  cell " << cell->index << "/" << grid.size() << "  n=" << cell->n
                << " alpha=" << cell->alpha << " graph=" << cell->graph
                << " mech=" << cell->mechanism
                << "  gain=" << render_field(row[11]) << "\n";  // row[11]: "gain"
        }
        writer.write(row);
        done.emplace(cell->index, std::move(row));
        write_checkpoint(done);
    }
    writer.close();

    result.finished = !interrupted;
    if (!options_.quiet) {
        log << "sweep " << spec_.name << ": " << result.cells_completed << " run, "
            << result.cells_skipped << " resumed"
            << (result.finished
                    ? ""
                    : (result.cancelled ? " (interrupted; checkpoint saved, rerun with --resume)"
                                        : " (stopped early; rerun with --resume)"))
            << " -> " << options_.output_path << "\n";
    }
    return result;
}

}  // namespace ld::experiments
