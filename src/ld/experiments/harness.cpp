#include "ld/experiments/harness.hpp"

#include <cstdlib>
#include <iostream>

#include "support/expect.hpp"
#include "support/thread_pool.hpp"

namespace ld::experiments {

using support::expects;

std::uint64_t stable_seed(const std::string& key) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char ch : key) {
        hash ^= ch;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

Experiment::Experiment(std::string id, std::string title,
                       std::vector<std::string> headers, int precision)
    : id_(std::move(id)), title_(std::move(title)),
      table_(headers, precision), seed_(stable_seed(id_)) {
    if (const char* dir = std::getenv("LIQUIDD_CSV_DIR")) {
        csv_ = std::make_unique<support::CsvWriter>(std::string(dir) + "/" + id_ + ".csv",
                                                    std::move(headers));
    }
    if (support::metrics_env_enabled()) {
        metrics_baseline_ = support::MetricsRegistry::global().snapshot();
    }
}

void Experiment::add_row(std::vector<support::Cell> cells) {
    if (csv_) csv_->add_row(cells);
    table_.add_row(std::move(cells));
}

void Experiment::add_note(std::string note) { notes_.push_back(std::move(note)); }

rng::Rng Experiment::make_row_rng(std::size_t row) const {
    return rng::Rng(stable_seed(id_ + "#" + std::to_string(row)));
}

void Experiment::finish() {
    std::cout << "\n=== [" << id_ << "] " << title_ << " ===\n";
    table_.print(std::cout);
    for (const auto& note : notes_) std::cout << "  * " << note << '\n';
    std::cout << "  (" << table_.row_count() << " rows, "
              << stopwatch_.elapsed_seconds() << " s, seed 0x" << std::hex << seed_
              << std::dec << ")\n";
    if (csv_) csv_->close();
    if (metrics_baseline_) {
        // Engine/pool/harness activity attributable to this experiment:
        // the registry delta since construction, as a table block and —
        // when CSV mirroring is on — a <id>.metrics.csv alongside the data.
        const auto delta =
            support::MetricsRegistry::global().snapshot().since(*metrics_baseline_);
        std::cout << "  -- metrics (this experiment) --\n";
        support::print_metrics_table(std::cout, delta);
        if (const char* dir = std::getenv("LIQUIDD_CSV_DIR")) {
            support::CsvWriter metrics_csv(std::string(dir) + "/" + id_ + ".metrics.csv",
                                           support::metrics_table_headers());
            for (const auto& row : support::metrics_table_rows(delta)) {
                metrics_csv.add_row(row);
            }
        }
    }
    std::cout.flush();
}

void parallel_rows(std::size_t count, const std::function<void(std::size_t)>& body) {
    support::Counter& rows = support::MetricsRegistry::global().counter("harness.rows");
    support::LatencyHistogram& row_latency =
        support::MetricsRegistry::global().histogram("harness.row_latency");
    support::TaskGroup group(support::ThreadPool::global());
    for (std::size_t row = 0; row < count; ++row) {
        group.submit([&body, row, &rows, &row_latency] {
            const support::Stopwatch clock;
            body(row);
            row_latency.record(clock.elapsed_seconds());
            rows.add(1);
        });
    }
    group.wait();
}

std::vector<std::size_t> size_ladder(std::size_t start, double factor,
                                     std::size_t limit, std::size_t max_points) {
    expects(start >= 1, "size_ladder: start must be >= 1");
    expects(factor > 1.0, "size_ladder: factor must exceed 1");
    std::vector<std::size_t> sizes;
    double value = static_cast<double>(start);
    while (sizes.size() < max_points && static_cast<std::size_t>(value) <= limit) {
        const auto v = static_cast<std::size_t>(value);
        if (sizes.empty() || v != sizes.back()) sizes.push_back(v);
        value *= factor;
    }
    return sizes;
}

}  // namespace ld::experiments
