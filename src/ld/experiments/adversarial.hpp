// Adversarial instance search: a falsification harness for the paper's
// universally-quantified claims.
//
// Strong positive gain (Definition 5) asserts gain >= γ for *all* large
// instances in a class satisfying the delegate restriction; do-no-harm
// bounds the loss over *all* instances.  A simulator can never prove a
// ∀-statement, but it can attack it: this module hill-climbs over
// competency vectors (and optionally re-randomises the graph) to find the
// instance with the *worst* gain for a given mechanism and graph class.
// The benches report the worst instance found; surviving the attack is
// evidence for the theorem, a counterexample is a red flag (as it is for
// the star, which this harness finds immediately).

#pragma once

#include <functional>
#include <string>

#include "graph/graph.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/mech/mechanism.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"

namespace ld::experiments {

/// Search configuration.
struct AdversaryOptions {
    std::size_t restarts = 4;         ///< independent random restarts
    std::size_t steps = 60;           ///< hill-climbing steps per restart
    std::size_t batch = 8;            ///< voters perturbed per step
    double step_size = 0.15;          ///< max per-voter competency nudge
    double competency_lo = 0.02;      ///< competency box lower bound
    double competency_hi = 0.98;      ///< competency box upper bound
    /// Optional predicate the perturbed competency vector must satisfy
    /// (e.g. the PC restriction, bounded competency).  Rejecting moves
    /// keeps the search inside the theorem's instance class.
    std::function<bool(const model::CompetencyVector&)> constraint;
    election::EvalOptions eval{};     ///< evaluation per candidate
};

/// The worst instance found.
struct AdversaryResult {
    double worst_gain = 1.0;
    double pd = 0.0;
    double pm = 0.0;
    model::CompetencyVector worst_competencies;
    std::size_t evaluations = 0;
};

/// Minimise gain(M, (graph, p, alpha)) over competency vectors p by
/// random-restart hill climbing.  The graph is fixed; the initial point of
/// each restart is uniform in the competency box (projected through the
/// constraint by resampling).
AdversaryResult find_worst_competencies(const mech::Mechanism& mechanism,
                                        const graph::Graph& graph, double alpha,
                                        rng::Rng& rng,
                                        const AdversaryOptions& options = {});

}  // namespace ld::experiments
