// Declarative parameter sweeps: a JSON spec describing a cartesian grid
// over (n, alpha, graph, competencies, mechanism) expands into an ordered
// list of cells, each evaluated through the replication execution engine
// (estimate_gain) and streamed to CSV or JSON-lines output as one row.
//
// The engine is built for batch workloads that outlive a single process:
//
//   * Determinism — each cell's seed derives from (sweep seed, cell
//     index) only, never from wall clock or scheduling, so any subset of
//     cells run on any machine in any order reproduces bit-for-bit.
//   * Checkpoint/resume — after every completed cell the engine
//     atomically rewrites a checkpoint manifest (schema
//     "liquidd.sweep.v1": spec fingerprint, shard, finished rows).  A
//     killed sweep rerun with `resume = true` replays finished rows from
//     the manifest and continues, producing byte-identical output to an
//     uninterrupted run.
//   * Sharding — `shard i/k` deterministically partitions cells by
//     `index % k == i` for multi-machine runs; the union of all k shard
//     outputs equals the unsharded run.
//
// CLI front end: `liquidd sweep <spec.json>` (src/ld/cli/runner.cpp);
// spec reference and worked examples: docs/SWEEPS.md.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/table_printer.hpp"  // for Cell

namespace ld::experiments {

/// Thrown on a malformed sweep spec, an inconsistent checkpoint, or a
/// cell whose evaluation fails (wrapped with the cell's coordinates).
class SweepError : public std::runtime_error {
public:
    explicit SweepError(const std::string& what) : std::runtime_error(what) {}
};

/// A parsed sweep spec: the axes of the cartesian grid plus fixed
/// evaluation options shared by every cell.  Axis values are the same
/// spec strings the CLI accepts (ld/cli/specs.hpp grammar).
struct SweepSpec {
    std::string name;                       ///< required; seeds and reports use it
    std::uint64_t seed = 1;                 ///< sweep master seed
    std::size_t replications = 200;         ///< Monte-Carlo replications per cell
    std::size_t inner_samples = 8;          ///< EvalOptions::inner_samples
    std::size_t threads = 1;                ///< replication workers (0 = auto)
    bool discard_cycles = false;            ///< CyclePolicy::Discard for all cells
    bool approximate = false;               ///< Lemma-4 normal-approximation tally
    double target_std_error = 0.0;          ///< options.target_se: adaptive stopping
                                            ///< (0 = fixed replication count)
    std::size_t adaptive_batch = 64;        ///< options.adaptive_batch
    std::size_t max_replications = 100'000; ///< options.max_reps: adaptive ceiling
    double tally_epsilon = 0.0;             ///< options.tally_eps: certified
                                            ///< ε-truncated tally (0 = exact)
    double certify_gamma = 0.0;             ///< options.certify_gamma: gain threshold
    double certify_delta = 0.0;             ///< options.certify_delta: error budget
                                            ///< (> 0 enables certified stopping)
    std::string certify_boundary = "empirical_bernstein";  ///< options.certify_boundary
    std::vector<std::size_t> ns;            ///< axis "n"
    std::vector<double> alphas;             ///< axis "alpha"
    std::vector<std::string> graphs;        ///< axis "graph"
    std::vector<std::string> competencies;  ///< axis "competencies"
    std::vector<std::string> mechanisms;    ///< axis "mechanism"

    /// Parse a spec document (schema optional; when present it must be
    /// "liquidd.sweep-spec.v1").  Throws SweepError with the offending
    /// key on anything malformed.
    static SweepSpec from_json(const support::json::Value& doc);

    /// Parse the spec file at `path`.
    static SweepSpec load(const std::string& path);

    /// Total cells in the grid (product of axis lengths).
    std::size_t cell_count() const noexcept;

    /// Stable FNV-1a fingerprint over every field that affects results;
    /// stored in checkpoints so `resume` refuses a changed spec.
    std::uint64_t fingerprint() const;
};

/// One grid point, in expansion order: n is the outermost axis, then
/// alpha, graph, competencies, mechanism (innermost).
struct SweepCell {
    std::size_t index = 0;  ///< position in expansion order, 0-based
    std::size_t n = 0;
    double alpha = 0.0;
    std::string graph;
    std::string competency;
    std::string mechanism;
    std::uint64_t seed = 0;  ///< derive_cell_seed(spec.seed, index)
};

/// The cell seed: two SplitMix64 rounds over (sweep_seed, cell_index).
/// Pure function of its arguments — the heart of the resume/shard
/// bit-identity guarantee.
std::uint64_t derive_cell_seed(std::uint64_t sweep_seed, std::size_t cell_index);

/// Deterministic cell partition for multi-machine runs: this process
/// executes the cells with `cell.index % count == index`.
struct ShardAssignment {
    std::size_t index = 0;
    std::size_t count = 1;
};

/// Per-run knobs that do not change results (except `threads`, whose
/// effective value is recorded in the checkpoint and must match on
/// resume, because the replication split depends on it).
struct SweepOptions {
    ShardAssignment shard{};
    bool resume = false;              ///< replay finished cells from the checkpoint
    std::size_t max_cells = 0;        ///< stop after N *new* cells (0 = unlimited);
                                      ///< simulates interruption in tests/CI
    std::optional<std::size_t> threads{};  ///< override SweepSpec::threads
    std::string output_path;          ///< rows; ".jsonl"/".ndjson" selects JSON lines
    std::string checkpoint_path;      ///< empty: `<output_path>.ckpt.json`
    bool quiet = false;               ///< suppress per-cell progress lines
    /// Polled between cells: return true to stop before starting the
    /// next one (the checkpoint for every finished cell is already on
    /// disk, so a rerun with `resume` continues seamlessly).  The CLI
    /// wires this to support::SignalDrain so SIGINT/SIGTERM finish the
    /// current cell, persist the manifest, and exit cleanly.
    std::function<bool()> cancel{};
};

/// What a run did.
struct SweepResult {
    std::size_t cells_total = 0;      ///< cells assigned to this shard
    std::size_t cells_completed = 0;  ///< newly evaluated this run
    std::size_t cells_skipped = 0;    ///< replayed from the checkpoint
    bool finished = false;            ///< every shard cell is in the output
    bool cancelled = false;           ///< stopped by SweepOptions::cancel
};

/// Expands the grid and runs it.  Construction validates the spec; run()
/// does the work and may be called once per engine.
class SweepEngine {
public:
    SweepEngine(SweepSpec spec, SweepOptions options);

    /// Output column names, in row order.
    static const std::vector<std::string>& row_headers();

    /// Every cell of the grid in expansion order (unsharded; exposed for
    /// tests and tooling).
    std::vector<SweepCell> cells() const;

    /// Execute this shard's cells in index order, streaming rows to
    /// `options.output_path` and checkpointing after each cell.
    /// Progress goes to `log`.  Throws SweepError on a failed cell or an
    /// inconsistent resume.
    SweepResult run(std::ostream& log);

    /// Replication workers cells will actually use (0-auto resolved).
    std::size_t resolved_threads() const noexcept { return resolved_threads_; }

    const SweepSpec& spec() const noexcept { return spec_; }
    const SweepOptions& options() const noexcept { return options_; }

private:
    using Row = std::vector<support::Cell>;

    Row run_cell(const SweepCell& cell) const;
    void write_checkpoint(const std::map<std::size_t, Row>& done) const;
    std::map<std::size_t, Row> load_checkpoint() const;

    SweepSpec spec_;
    SweepOptions options_;
    std::size_t resolved_threads_ = 1;
};

}  // namespace ld::experiments
