// Shared infrastructure for the experiment binaries in bench/: every
// experiment prints a titled, aligned table of sweep results (the
// regenerated paper figure/claim) and can mirror the rows to CSV when
// LIQUIDD_CSV_DIR is set.  Seeding is explicit so every run is
// reproducible bit-for-bit.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rng/rng.hpp"
#include "support/csv_writer.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/table_printer.hpp"

namespace ld::experiments {

/// One experiment's result table, CSV mirror, and timing.
class Experiment {
public:
    /// `id` — the DESIGN.md experiment id (e.g. "F1", "E-T2"); `title` —
    /// what the table shows; `headers` — column names.
    Experiment(std::string id, std::string title, std::vector<std::string> headers,
               int precision = 4);

    /// Append one row (width must match the headers).
    void add_row(std::vector<support::Cell> cells);

    /// Free-form annotation printed under the table (paper claim, verdict).
    void add_note(std::string note);

    /// Print everything to stdout (and flush the CSV mirror, if any).
    void finish();

    /// Deterministic per-experiment master seed.
    std::uint64_t seed() const noexcept { return seed_; }

    /// Fresh generator derived from the experiment id (stable across runs).
    rng::Rng make_rng() const { return rng::Rng(seed_); }

    /// Independent generator for sweep row `row`, derived from the
    /// experiment id and the row index only.  Rows seeded this way can run
    /// in any order — or concurrently via `parallel_rows` — and still
    /// reproduce bit-for-bit.
    rng::Rng make_row_rng(std::size_t row) const;

private:
    std::string id_;
    std::string title_;
    support::TablePrinter table_;
    std::unique_ptr<support::CsvWriter> csv_;
    std::vector<std::string> notes_;
    support::Stopwatch stopwatch_;
    std::uint64_t seed_;
    /// Registry state at construction, captured when LIQUIDD_METRICS is
    /// set so finish() can print this experiment's metric deltas only.
    std::optional<support::MetricsSnapshot> metrics_baseline_;
};

/// FNV-1a hash of a string — the deterministic experiment-id → seed map.
std::uint64_t stable_seed(const std::string& key);

/// Run `body(row)` for every row index in [0, count) on the shared thread
/// pool and wait for all of them.  Bodies must not touch shared mutable
/// state except their own row's result slot; use `Experiment::make_row_rng`
/// for per-row generators so the sweep stays deterministic regardless of
/// scheduling.  Add rows to the Experiment *after* this returns, in row
/// order, so tables and CSV mirrors are stable.
void parallel_rows(std::size_t count, const std::function<void(std::size_t)>& body);

/// Geometric size ladder: start, start·factor, … capped at `limit`
/// (inclusive), at most `max_points` entries.
std::vector<std::size_t> size_ladder(std::size_t start, double factor,
                                     std::size_t limit, std::size_t max_points = 16);

}  // namespace ld::experiments
