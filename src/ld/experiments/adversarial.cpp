#include "ld/experiments/adversarial.hpp"

#include <algorithm>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::experiments {

using support::expects;

namespace {

/// Evaluate the gain of a candidate competency vector.
double gain_of(const mech::Mechanism& mechanism, const graph::Graph& graph,
               double alpha, const model::CompetencyVector& p, rng::Rng& rng,
               const election::EvalOptions& eval) {
    model::Instance instance(graph, p, alpha);
    const auto report = election::estimate_gain(mechanism, instance, rng, eval);
    return report.gain;
}

/// Draw a uniform competency vector inside the box, resampling until the
/// constraint (if any) accepts it.  Gives up after a bounded number of
/// tries to avoid hanging on infeasible constraints.
std::vector<double> initial_point(const AdversaryOptions& options, std::size_t n,
                                  rng::Rng& rng) {
    for (int attempt = 0; attempt < 200; ++attempt) {
        std::vector<double> p(n);
        for (auto& x : p) {
            x = rng::uniform_real(rng, options.competency_lo, options.competency_hi);
        }
        if (!options.constraint || options.constraint(model::CompetencyVector(p))) {
            return p;
        }
    }
    throw support::ContractViolation(
        "find_worst_competencies: constraint rejected 200 random starts");
}

}  // namespace

AdversaryResult find_worst_competencies(const mech::Mechanism& mechanism,
                                        const graph::Graph& graph, double alpha,
                                        rng::Rng& rng,
                                        const AdversaryOptions& options) {
    expects(graph.vertex_count() >= 1, "find_worst_competencies: empty graph");
    expects(options.restarts >= 1 && options.steps >= 1,
            "find_worst_competencies: need at least one restart and step");
    expects(options.competency_lo >= 0.0 && options.competency_hi <= 1.0 &&
                options.competency_lo < options.competency_hi,
            "find_worst_competencies: bad competency box");

    const std::size_t n = graph.vertex_count();
    AdversaryResult result;
    result.worst_gain = 2.0;  // above any feasible gain

    for (std::size_t restart = 0; restart < options.restarts; ++restart) {
        std::vector<double> current = initial_point(options, n, rng);
        double current_gain = gain_of(mechanism, graph, alpha,
                                      model::CompetencyVector(current), rng,
                                      options.eval);
        ++result.evaluations;

        for (std::size_t step = 0; step < options.steps; ++step) {
            std::vector<double> candidate = current;
            // Three move types.  Besides local batch nudges, two
            // structured "variance manipulation" moves mirror the paper's
            // failure modes: contracting the crowd towards its mean (kills
            // the direct-voting margin) and boosting the current best
            // voter (builds a dictator).
            const std::uint64_t move = rng.next_below(4);
            if (move == 0) {
                // Contraction: p_i ← m + λ(p_i − m).
                double mean = 0.0;
                for (double x : candidate) mean += x;
                mean /= static_cast<double>(n);
                const double lambda = rng::uniform_real(rng, 0.3, 0.9);
                for (double& x : candidate) {
                    x = std::clamp(mean + lambda * (x - mean), options.competency_lo,
                                   options.competency_hi);
                }
            } else if (move == 1) {
                // Leader boost: push the current maximum towards the box top.
                const auto best_it = std::max_element(candidate.begin(), candidate.end());
                *best_it = std::clamp(*best_it + rng::uniform_real(rng, 0.0, 0.3),
                                      options.competency_lo, options.competency_hi);
            } else if (move == 2) {
                // Global shift: slide the whole electorate's mean — the
                // direct-voting margin knob.
                const double shift =
                    rng::uniform_real(rng, -options.step_size, options.step_size);
                for (double& x : candidate) {
                    x = std::clamp(x + shift, options.competency_lo,
                                   options.competency_hi);
                }
            } else {
                // Local nudge of a random batch of voters.
                const std::size_t batch = std::min(options.batch, n);
                for (std::size_t idx :
                     rng::sample_without_replacement(rng, n, batch)) {
                    const double nudge =
                        rng::uniform_real(rng, -options.step_size, options.step_size);
                    candidate[idx] = std::clamp(candidate[idx] + nudge,
                                                options.competency_lo,
                                                options.competency_hi);
                }
            }
            model::CompetencyVector candidate_vec(candidate);
            if (options.constraint && !options.constraint(candidate_vec)) continue;
            const double candidate_gain =
                gain_of(mechanism, graph, alpha, candidate_vec, rng, options.eval);
            ++result.evaluations;
            if (candidate_gain < current_gain) {  // descending on gain
                current = std::move(candidate);
                current_gain = candidate_gain;
            }
        }
        if (current_gain < result.worst_gain) {
            result.worst_gain = current_gain;
            result.worst_competencies = model::CompetencyVector(current);
        }
    }
    // Final precise evaluation of the winner.
    model::Instance worst(graph, result.worst_competencies, alpha);
    auto precise = options.eval;
    precise.replications = std::max<std::size_t>(precise.replications * 4, 64);
    rng::Rng fresh = rng.split();
    const auto report = election::estimate_gain(mechanism, worst, fresh, precise);
    result.worst_gain = report.gain;
    result.pd = report.pd;
    result.pm = report.pm.value;
    return result;
}

}  // namespace ld::experiments
