// Competency vectors (paper §2.1): p_i ∈ [0,1] is voter v_i's probability
// of voting for the correct outcome.  The paper orders voters so that
// p_i <= p_j for i <= j ("wlog"); this type maintains a *sorted view*
// alongside the raw vector so both the paper's index convention and
// graph-aligned indexing are available.
//
// Also hosts the two competency-side restrictions of Definition 1:
//   PC = a           — plausible changeability: 3/4 >= mean(p) >= 1/2 + a,
//   p ∈ (β, 1−β)     — bounded competency.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ld::model {

/// Value type holding one competency per voter, indexed by vertex id.
class CompetencyVector {
public:
    CompetencyVector() = default;

    /// Build from per-vertex probabilities; each must lie in [0, 1].
    explicit CompetencyVector(std::vector<double> values);

    std::size_t size() const noexcept { return values_.size(); }
    bool empty() const noexcept { return values_.empty(); }

    /// Competency of voter (vertex) `i`.
    double operator[](std::size_t i) const { return values_[i]; }

    /// All competencies, vertex-indexed.
    std::span<const double> values() const noexcept { return values_; }

    /// Vertex ids sorted by ascending competency (ties by id) — the
    /// paper's canonical ordering p_1 <= p_2 <= … <= p_n.
    std::span<const std::size_t> ascending_order() const noexcept { return order_; }

    /// Competency of the k-th *least* competent voter (paper index k+1).
    double kth_smallest(std::size_t k) const;

    /// Mean competency.
    double mean() const noexcept { return mean_; }

    /// Sum of Bernoulli variances Σ p_i (1 − p_i) — the direct-voting
    /// outcome variance the paper's DNH conditions manipulate.
    double outcome_variance() const noexcept { return variance_sum_; }

    /// The deficit 1/2 − mean(p) when the mean lies at or below 1/2
    /// (0 otherwise).  PC = a (Definition 1) captures instances whose mean
    /// competency is "sufficiently close to 1/2" *from below*: direct
    /// voting is not already winning, but a mechanism that boosts each
    /// delegated vote by >= α can move the expected outcome across the
    /// majority line — this is what makes the outcome plausibly
    /// changeable, and it is the regime where Theorem 2's strong positive
    /// gain is achievable at all (with mean > 1/2 both P^M and P^D tend
    /// to 1 and no uniform γ > 0 can exist).
    double plausible_changeability() const noexcept;

    /// True iff mean(p) ∈ [1/2 − a, 1/2] — the PC = a restriction.
    bool satisfies_pc(double a) const noexcept;

    /// True iff every p_i ∈ (beta, 1 − beta) — bounded competency.
    bool bounded_away(double beta) const noexcept;

    /// Largest beta ∈ [0, 1/2) such that bounded_away(beta) holds
    /// (0 if some p_i is 0 or 1; returned value is exclusive).
    double bounding_beta() const noexcept;

private:
    std::vector<double> values_;
    std::vector<std::size_t> order_;
    double mean_ = 0.0;
    double variance_sum_ = 0.0;
};

}  // namespace ld::model
