#include "ld/model/competency.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace ld::model {

using support::expects;

CompetencyVector::CompetencyVector(std::vector<double> values)
    : values_(std::move(values)) {
    for (double p : values_) {
        expects(p >= 0.0 && p <= 1.0, "CompetencyVector: competency out of [0,1]");
        mean_ += p;
        variance_sum_ += p * (1.0 - p);
    }
    if (!values_.empty()) mean_ /= static_cast<double>(values_.size());
    order_.resize(values_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(), [this](std::size_t a, std::size_t b) {
        return values_[a] < values_[b];
    });
}

double CompetencyVector::kth_smallest(std::size_t k) const {
    expects(k < order_.size(), "kth_smallest: index out of range");
    return values_[order_[k]];
}

double CompetencyVector::plausible_changeability() const noexcept {
    if (values_.empty()) return 0.0;
    if (mean_ > 0.5) return 0.0;
    return 0.5 - mean_;
}

bool CompetencyVector::satisfies_pc(double a) const noexcept {
    if (values_.empty()) return false;
    return mean_ >= 0.5 - a && mean_ <= 0.5;
}

bool CompetencyVector::bounded_away(double beta) const noexcept {
    if (beta < 0.0 || beta >= 0.5) return false;
    for (double p : values_) {
        if (p <= beta || p >= 1.0 - beta) return false;
    }
    return true;
}

double CompetencyVector::bounding_beta() const noexcept {
    double beta = 0.5;
    for (double p : values_) {
        beta = std::min(beta, std::min(p, 1.0 - p));
    }
    return std::max(0.0, beta);
}

}  // namespace ld::model
