// Approval sets (paper §2.1, "Available Information"): given the approval
// margin α > 0, voter i approves of voter j iff p_i + α <= p_j.  Local
// mechanisms may only use (a) a voter's neighbourhood and (b) which of its
// neighbours are approved — never the raw competency values.

#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "ld/model/competency.hpp"

namespace ld::model {

/// True iff voter `i` approves voter `j` under margin `alpha`:
/// p_i + alpha <= p_j.
bool approves(const CompetencyVector& p, std::size_t i, std::size_t j, double alpha);

/// The approved *neighbours* of vertex `v` in graph `g` — the information a
/// local mechanism may see.  Returned ascending by vertex id.
std::vector<graph::Vertex> approved_neighbours(const graph::Graph& g,
                                               const CompetencyVector& p,
                                               graph::Vertex v, double alpha);

/// Sizes |J(i) ∩ N(i)| for every voter, in one O(n + m) pass.
std::vector<std::size_t> approved_neighbour_counts(const graph::Graph& g,
                                                   const CompetencyVector& p,
                                                   double alpha);

/// The global approval set J(i) over *all* voters (not just neighbours) —
/// used by theory-side computations (e.g. partition complexity ⌈1/α⌉
/// reasoning), not by local mechanisms.
std::vector<std::size_t> global_approval_set(const CompetencyVector& p, std::size_t i,
                                             double alpha);

}  // namespace ld::model
