#include "ld/model/competency_gen.hpp"

#include <algorithm>
#include <cmath>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::model {

using support::expects;

CompetencyVector uniform_competencies(rng::Rng& rng, std::size_t n, double lo, double hi) {
    expects(0.0 <= lo && lo < hi && hi <= 1.0, "uniform_competencies: bad interval");
    std::vector<double> p(n);
    for (auto& x : p) x = rng::uniform_real(rng, lo, hi);
    return CompetencyVector(std::move(p));
}

CompetencyVector pc_competencies(rng::Rng& rng, std::size_t n, double a, double spread,
                                 double beta_floor) {
    expects(a > 0.0 && a <= 0.25, "pc_competencies: a must be in (0, 1/4]");
    expects(spread >= 0.0, "pc_competencies: spread must be non-negative");
    const double centre = 0.5 - a;
    double lo = centre - spread;
    double hi = centre + spread;
    lo = std::max(lo, beta_floor);
    hi = std::min(hi, 1.0 - beta_floor);
    expects(lo < hi || spread == 0.0, "pc_competencies: interval collapsed");
    std::vector<double> p(n);
    if (spread == 0.0) {
        std::fill(p.begin(), p.end(), centre);
    } else {
        for (auto& x : p) x = rng::uniform_real(rng, lo, hi);
        // Recentre the sample mean onto `centre` so PC = a holds exactly,
        // then clip back into the bounded-competency box.
        double mean = 0.0;
        for (double x : p) mean += x;
        mean /= static_cast<double>(n);
        const double shift = centre - mean;
        for (auto& x : p) x = std::clamp(x + shift, beta_floor, 1.0 - beta_floor);
    }
    return CompetencyVector(std::move(p));
}

CompetencyVector two_point_competencies(rng::Rng& rng, std::size_t n, double low,
                                        double high, double high_fraction) {
    expects(0.0 <= low && low <= high && high <= 1.0, "two_point: bad levels");
    expects(high_fraction >= 0.0 && high_fraction <= 1.0, "two_point: bad fraction");
    const auto high_count =
        static_cast<std::size_t>(std::floor(high_fraction * static_cast<double>(n)));
    std::vector<double> p(n, low);
    for (std::size_t i = 0; i < high_count; ++i) p[i] = high;
    rng::shuffle(rng, p);
    return CompetencyVector(std::move(p));
}

CompetencyVector star_competencies(std::size_t n, double centre, double leaf) {
    expects(n >= 1, "star_competencies: need at least one voter");
    std::vector<double> p(n, leaf);
    p[0] = centre;
    return CompetencyVector(std::move(p));
}

CompetencyVector figure2_competencies() {
    return CompetencyVector({0.8, 0.6, 0.5, 0.4, 0.3, 0.3, 0.2, 0.2, 0.1});
}

namespace {

/// Marsaglia–Tsang gamma sampler for shape >= 1 (boosted for shape < 1).
double sample_gamma(rng::Rng& rng, double shape) {
    if (shape < 1.0) {
        const double u = rng.next_double();
        return sample_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        // Box–Muller standard normal.
        const double u1 = std::max(rng.next_double(), 1e-300);
        const double u2 = rng.next_double();
        const double z =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
        const double v = 1.0 + c * z;
        if (v <= 0.0) continue;
        const double v3 = v * v * v;
        const double u = rng.next_double();
        if (u < 1.0 - 0.0331 * z * z * z * z) return d * v3;
        if (std::log(u) < 0.5 * z * z + d * (1.0 - v3 + std::log(v3))) return d * v3;
    }
}

}  // namespace

CompetencyVector beta_competencies(rng::Rng& rng, std::size_t n, double a, double b) {
    expects(a > 0.0 && b > 0.0, "beta_competencies: shape parameters must be positive");
    std::vector<double> p(n);
    for (auto& x : p) {
        const double ga = sample_gamma(rng, a);
        const double gb = sample_gamma(rng, b);
        x = ga / (ga + gb);
    }
    return CompetencyVector(std::move(p));
}

CompetencyVector truncated_normal_competencies(rng::Rng& rng, std::size_t n, double mu,
                                               double sigma, double lo, double hi) {
    expects(sigma > 0.0, "truncated_normal: sigma must be positive");
    expects(0.0 <= lo && lo < hi && hi <= 1.0, "truncated_normal: bad interval");
    std::vector<double> p(n);
    for (auto& x : p) {
        for (;;) {
            const double u1 = std::max(rng.next_double(), 1e-300);
            const double u2 = rng.next_double();
            const double z =
                std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
            const double candidate = mu + sigma * z;
            if (candidate > lo && candidate < hi) {
                x = candidate;
                break;
            }
        }
    }
    return CompetencyVector(std::move(p));
}

}  // namespace ld::model
