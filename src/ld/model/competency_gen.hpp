// Competency-vector generators for the paper's instance families:
//
//  * uniform on an interval (β, 1−β)         — bounded-competency instances,
//  * uniform shifted to satisfy PC = a       — SPG workloads,
//  * two-point mixtures                      — Theorem 2's case analysis,
//  * star profile (centre 3/4, leaves ~1/2)  — Figure 1,
//  * the fixed 9-voter vector of Figure 2,
//  * beta / truncated-normal profiles        — "probabilistic competencies"
//                                              future-work direction (§6).

#pragma once

#include <cstddef>
#include <vector>

#include "ld/model/competency.hpp"
#include "rng/rng.hpp"

namespace ld::model {

/// i.i.d. uniform competencies on (lo, hi).  Requires 0 <= lo < hi <= 1.
CompetencyVector uniform_competencies(rng::Rng& rng, std::size_t n, double lo, double hi);

/// Uniform on an interval of half-width `spread` recentred so that the
/// sample mean is exactly 1/2 − a (the bottom of the PC = a band: direct
/// voting loses, delegation can flip the outcome), clipped to stay within
/// (beta_floor, 1 − beta_floor).
CompetencyVector pc_competencies(rng::Rng& rng, std::size_t n, double a, double spread,
                                 double beta_floor = 0.02);

/// Two-point mixture: fraction `high_fraction` of voters at `high`, the
/// rest at `low`.  Deterministic counts (floor), positions shuffled.
CompetencyVector two_point_competencies(rng::Rng& rng, std::size_t n, double low,
                                        double high, double high_fraction);

/// Figure 1 star profile for a star graph with vertex 0 as the centre:
/// centre competency 3/4, each leaf slightly above 1/2 so that direct
/// voting converges to correct w.p. → 1 while delegation to the centre
/// stays at 3/4.
CompetencyVector star_competencies(std::size_t n, double centre = 0.75,
                                   double leaf = 0.55);

/// The fixed 9-voter competency vector from Figure 2:
/// {0.8, 0.6, 0.5, 0.4, 0.3, 0.3, 0.2, 0.2, 0.1} for v1..v9 (vertex 0 = v1).
CompetencyVector figure2_competencies();

/// Beta(a, b) distributed competencies (rejection-free via Jöhnk/gamma).
CompetencyVector beta_competencies(rng::Rng& rng, std::size_t n, double a, double b);

/// Normal(mu, sigma) truncated to (lo, hi) by rejection.
CompetencyVector truncated_normal_competencies(rng::Rng& rng, std::size_t n, double mu,
                                               double sigma, double lo, double hi);

}  // namespace ld::model
