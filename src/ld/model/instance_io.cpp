#include "ld/model/instance_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "graph/io.hpp"

namespace ld::model {

namespace {
constexpr int kVersion = 1;
}

void write_instance(std::ostream& os, const Instance& instance) {
    os << "liquidd-instance " << kVersion << '\n';
    os << std::setprecision(17);
    os << "alpha " << instance.alpha() << '\n';
    os << "graph ";
    graph::write_edge_list(os, instance.graph());
    os << "competencies";
    for (double p : instance.competencies().values()) os << ' ' << p;
    os << '\n';
}

Instance read_instance(std::istream& is) {
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != "liquidd-instance") {
        throw std::runtime_error("read_instance: not a liquidd instance file");
    }
    if (version != kVersion) {
        throw std::runtime_error("read_instance: unsupported version " +
                                 std::to_string(version));
    }
    std::string keyword;
    double alpha = 0.0;
    if (!(is >> keyword >> alpha) || keyword != "alpha") {
        throw std::runtime_error("read_instance: missing alpha");
    }
    if (!(is >> keyword) || keyword != "graph") {
        throw std::runtime_error("read_instance: missing graph section");
    }
    graph::Graph g = graph::read_edge_list(is);
    if (!(is >> keyword) || keyword != "competencies") {
        throw std::runtime_error("read_instance: missing competencies section");
    }
    std::vector<double> p(g.vertex_count());
    for (double& x : p) {
        if (!(is >> x)) throw std::runtime_error("read_instance: truncated competencies");
    }
    return Instance(std::move(g), CompetencyVector(std::move(p)), alpha);
}

void save_instance(const std::string& path, const Instance& instance) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("save_instance: cannot open " + path);
    write_instance(out, instance);
    if (!out) throw std::runtime_error("save_instance: write failed for " + path);
}

Instance load_instance(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_instance: cannot open " + path);
    return read_instance(in);
}

}  // namespace ld::model
