#include "ld/model/instance.hpp"

#include <cmath>
#include <sstream>

#include "support/expect.hpp"

namespace ld::model {

using support::expects;

Instance::Instance(graph::Graph g, CompetencyVector p, double alpha)
    : graph_(std::move(g)), competencies_(std::move(p)), alpha_(alpha) {
    expects(graph_.vertex_count() == competencies_.size(),
            "Instance: graph/competency size mismatch");
    expects(alpha_ > 0.0, "Instance: alpha must be positive (acyclicity requires it)");
    // Precompute the approval CSR: one O(n + m) pass at construction buys
    // allocation-free approved_neighbours_view() in the replication loop.
    const std::size_t n = graph_.vertex_count();
    approved_offsets_.assign(n + 1, 0);
    for (graph::Vertex v = 0; v < n; ++v) {
        std::size_t count = 0;
        for (graph::Vertex w : graph_.neighbours(v)) {
            if (competencies_[v] + alpha_ <= competencies_[w]) ++count;
        }
        approved_offsets_[v + 1] = approved_offsets_[v] + count;
    }
    approved_flat_.resize(approved_offsets_[n]);
    for (graph::Vertex v = 0; v < n; ++v) {
        std::size_t at = approved_offsets_[v];
        for (graph::Vertex w : graph_.neighbours(v)) {
            if (competencies_[v] + alpha_ <= competencies_[w]) approved_flat_[at++] = w;
        }
    }
}

std::vector<graph::Vertex> Instance::approved_neighbours(graph::Vertex v) const {
    const auto view = approved_neighbours_view(v);
    return {view.begin(), view.end()};
}

std::vector<std::size_t> Instance::approved_neighbour_counts() const {
    std::vector<std::size_t> counts(voter_count());
    for (graph::Vertex v = 0; v < voter_count(); ++v) {
        counts[v] = approved_offsets_[v + 1] - approved_offsets_[v];
    }
    return counts;
}

std::size_t Instance::partition_complexity_bound() const {
    return static_cast<std::size_t>(std::ceil(1.0 / alpha_));
}

std::string Instance::describe() const {
    std::ostringstream os;
    os << "Instance(n=" << voter_count() << ", m=" << graph_.edge_count()
       << ", alpha=" << alpha_ << ", mean_p=" << competencies_.mean() << ")";
    return os.str();
}

}  // namespace ld::model
