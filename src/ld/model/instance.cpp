#include "ld/model/instance.hpp"

#include <cmath>
#include <sstream>

#include "ld/model/approval.hpp"
#include "support/expect.hpp"

namespace ld::model {

using support::expects;

Instance::Instance(graph::Graph g, CompetencyVector p, double alpha)
    : graph_(std::move(g)), competencies_(std::move(p)), alpha_(alpha) {
    expects(graph_.vertex_count() == competencies_.size(),
            "Instance: graph/competency size mismatch");
    expects(alpha_ > 0.0, "Instance: alpha must be positive (acyclicity requires it)");
}

std::vector<graph::Vertex> Instance::approved_neighbours(graph::Vertex v) const {
    return model::approved_neighbours(graph_, competencies_, v, alpha_);
}

std::vector<std::size_t> Instance::approved_neighbour_counts() const {
    return model::approved_neighbour_counts(graph_, competencies_, alpha_);
}

std::size_t Instance::partition_complexity_bound() const {
    return static_cast<std::size_t>(std::ceil(1.0 / alpha_));
}

std::string Instance::describe() const {
    std::ostringstream os;
    os << "Instance(n=" << voter_count() << ", m=" << graph_.edge_count()
       << ", alpha=" << alpha_ << ", mean_p=" << competencies_.mean() << ")";
    return os.str();
}

}  // namespace ld::model
