// Versioned text serialization for problem instances, so experiments can
// be pinned, shared, and replayed (e.g. an adversarially-found worst-case
// instance, or a real-world graph with measured competencies).
//
// Format (whitespace-separated):
//   liquidd-instance 1
//   alpha <alpha>
//   graph <n> <m>
//   <m edge lines: "u v">
//   competencies <n values>

#pragma once

#include <iosfwd>
#include <string>

#include "ld/model/instance.hpp"

namespace ld::model {

/// Serialize `instance` to `os`.
void write_instance(std::ostream& os, const Instance& instance);

/// Parse the format produced by `write_instance`.
/// Throws `std::runtime_error` on malformed input or version mismatch.
Instance read_instance(std::istream& is);

/// Convenience file wrappers; throw `std::runtime_error` on I/O failure.
void save_instance(const std::string& path, const Instance& instance);
Instance load_instance(const std::string& path);

}  // namespace ld::model
