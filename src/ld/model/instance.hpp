// A problem instance G = (V, E, p) plus the approval margin α (paper §2.1).
// Instances are immutable; mechanisms, evaluators, and condition checkers
// all consume `const Instance&`.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/restrictions.hpp"
#include "ld/model/competency.hpp"

namespace ld::model {

/// Immutable voting-problem instance.
class Instance {
public:
    /// Graph and competencies must agree on the voter count; alpha > 0.
    Instance(graph::Graph g, CompetencyVector p, double alpha);

    std::size_t voter_count() const noexcept { return graph_.vertex_count(); }
    const graph::Graph& graph() const noexcept { return graph_; }
    const CompetencyVector& competencies() const noexcept { return competencies_; }
    double alpha() const noexcept { return alpha_; }

    /// Competency of voter v.
    double competency(graph::Vertex v) const { return competencies_[v]; }

    /// Approved neighbours of `v` (the local mechanism's view).
    std::vector<graph::Vertex> approved_neighbours(graph::Vertex v) const;

    /// Approved neighbours of `v` as a view into the per-instance CSR
    /// cache, ascending.  O(1), no allocation — instances are immutable,
    /// so the approval structure is computed once at construction.  This
    /// is the hot-path variant mechanisms use inside the replication loop.
    std::span<const graph::Vertex> approved_neighbours_view(graph::Vertex v) const {
        return {approved_flat_.data() + approved_offsets_[v],
                approved_flat_.data() + approved_offsets_[v + 1]};
    }

    /// |approved neighbours| for all voters in one pass.
    std::vector<std::size_t> approved_neighbour_counts() const;

    /// Graph-side restriction check (Definition 1).
    bool satisfies(const graph::GraphRestriction& r) const { return r.satisfied_by(graph_); }

    /// Upper bound ⌈1/α⌉ on the partition complexity of any approval-
    /// respecting delegation process on this instance (paper §3.1:
    /// "a simple upper bound for any mechanism is 1/α <= c").
    std::size_t partition_complexity_bound() const;

    /// Short human-readable description for experiment logs.
    std::string describe() const;

private:
    graph::Graph graph_;
    CompetencyVector competencies_;
    double alpha_;
    std::vector<std::size_t> approved_offsets_;  // size n+1 (CSR)
    std::vector<graph::Vertex> approved_flat_;   // approved neighbours, ascending per voter
};

}  // namespace ld::model
