#include "ld/model/approval.hpp"

#include "support/expect.hpp"

namespace ld::model {

using support::expects;

bool approves(const CompetencyVector& p, std::size_t i, std::size_t j, double alpha) {
    expects(i < p.size() && j < p.size(), "approves: voter out of range");
    expects(alpha > 0.0, "approves: alpha must be positive");
    return p[i] + alpha <= p[j];
}

std::vector<graph::Vertex> approved_neighbours(const graph::Graph& g,
                                               const CompetencyVector& p,
                                               graph::Vertex v, double alpha) {
    expects(g.vertex_count() == p.size(), "approved_neighbours: size mismatch");
    expects(v < g.vertex_count(), "approved_neighbours: vertex out of range");
    std::vector<graph::Vertex> out;
    for (graph::Vertex w : g.neighbours(v)) {
        if (p[v] + alpha <= p[w]) out.push_back(w);
    }
    return out;
}

std::vector<std::size_t> approved_neighbour_counts(const graph::Graph& g,
                                                   const CompetencyVector& p,
                                                   double alpha) {
    expects(g.vertex_count() == p.size(), "approved_neighbour_counts: size mismatch");
    std::vector<std::size_t> counts(g.vertex_count(), 0);
    for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
        for (graph::Vertex w : g.neighbours(v)) {
            if (p[v] + alpha <= p[w]) ++counts[v];
        }
    }
    return counts;
}

std::vector<std::size_t> global_approval_set(const CompetencyVector& p, std::size_t i,
                                             double alpha) {
    expects(i < p.size(), "global_approval_set: voter out of range");
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < p.size(); ++j) {
        if (j != i && p[i] + alpha <= p[j]) out.push_back(j);
    }
    return out;
}

}  // namespace ld::model
