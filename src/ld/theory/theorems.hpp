// One place for the paper's theorem-level parameter regimes, so benches,
// tests, and examples all agree on what "the Theorem 4 setting" means.
// Each struct bundles the restrictions a theorem needs; `*_regime(n, …)`
// factories compute the concrete parameters for a given size.

#pragma once

#include <cstddef>

namespace ld::theory {

/// Theorem 2 (complete graphs, Algorithm 1): SPG for {K_n, PC = α/k} with
/// Delegate(n) >= n/k; DNH for {K_n} assuming j(n) <= n/3.
struct Theorem2Regime {
    std::size_t n = 0;
    double alpha = 0.0;
    double k = 0.0;          ///< PC = α/k and delegate restriction n/k
    double pc = 0.0;         ///< the required plausible changeability α/k
    std::size_t delegate_floor = 0;  ///< f(n) = n/k
    std::size_t max_threshold = 0;   ///< j(n) must stay <= n/3 for DNH
};

Theorem2Regime theorem2_regime(std::size_t n, double alpha, double k);

/// Theorem 3 (random d-regular, Algorithm 2): same shape as Theorem 2 with
/// the d-sample threshold j(d).
struct Theorem3Regime {
    std::size_t n = 0;
    std::size_t d = 0;
    double alpha = 0.0;
    double pc = 0.0;
    std::size_t delegate_floor = 0;
    std::size_t threshold = 0;  ///< j(d)
};

Theorem3Regime theorem3_regime(std::size_t n, std::size_t d, double alpha, double k,
                               double threshold_fraction);

/// Theorem 4 (bounded degree): SPG for Δ <= t^{ε/(1+ε)} with
/// Delegate(n) >= t; DNH for Δ <= n^{ε/(2+ε)} with bounded competency.
struct Theorem4Regime {
    std::size_t n = 0;
    double eps = 0.0;
    std::size_t spg_max_degree = 0;  ///< t^{ε/(1+ε)} at t = delegate floor
    std::size_t dnh_max_degree = 0;  ///< n^{ε/(2+ε)}
    std::size_t delegate_floor = 0;  ///< t
};

Theorem4Regime theorem4_regime(std::size_t n, double eps, std::size_t t);

/// Theorem 5 (bounded minimum degree): the 1/3-fraction mechanism; SPG for
/// δ >= n^c with Delegate(n) >= h, h >= √n; DNH adds bounded competency.
struct Theorem5Regime {
    std::size_t n = 0;
    double c = 0.0;
    std::size_t min_degree = 0;      ///< n^c
    std::size_t delegate_floor = 0;  ///< h = max(√n, requested)
};

Theorem5Regime theorem5_regime(std::size_t n, double c);

/// Figure 1 asymptotics: on the star with centre competency p_c and leaf
/// competency p_l > 1/2, direct voting is correct w.p. → 1 while
/// concentrating delegation is correct w.p. p_c, so the loss → 1 − p_c
/// (= 1/4 for the paper's p_c = 3/4).
double figure1_asymptotic_loss(double centre_competency);

}  // namespace ld::theory
