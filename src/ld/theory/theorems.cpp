#include "ld/theory/theorems.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace ld::theory {

using support::expects;

Theorem2Regime theorem2_regime(std::size_t n, double alpha, double k) {
    expects(n >= 1, "theorem2_regime: empty instance");
    expects(alpha > 0.0 && alpha < 1.0, "theorem2_regime: alpha out of (0,1)");
    expects(k >= 1.0, "theorem2_regime: k must be >= 1");
    Theorem2Regime r;
    r.n = n;
    r.alpha = alpha;
    r.k = k;
    r.pc = alpha / k;
    r.delegate_floor = static_cast<std::size_t>(
        std::ceil(static_cast<double>(n) / k));
    r.max_threshold = n / 3;
    return r;
}

Theorem3Regime theorem3_regime(std::size_t n, std::size_t d, double alpha, double k,
                               double threshold_fraction) {
    expects(d >= 1 && d < n, "theorem3_regime: need 1 <= d < n");
    expects(threshold_fraction > 0.0 && threshold_fraction <= 1.0,
            "theorem3_regime: fraction out of (0,1]");
    Theorem3Regime r;
    r.n = n;
    r.d = d;
    r.alpha = alpha;
    r.pc = alpha / k;
    r.delegate_floor =
        static_cast<std::size_t>(std::ceil(static_cast<double>(n) / k));
    r.threshold = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(threshold_fraction * static_cast<double>(d))));
    return r;
}

Theorem4Regime theorem4_regime(std::size_t n, double eps, std::size_t t) {
    expects(eps > 0.0, "theorem4_regime: eps must be positive");
    expects(t >= 1 && t <= n, "theorem4_regime: need 1 <= t <= n");
    Theorem4Regime r;
    r.n = n;
    r.eps = eps;
    r.delegate_floor = t;
    r.spg_max_degree = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(std::pow(static_cast<double>(t), eps / (1.0 + eps)))));
    r.dnh_max_degree = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(std::pow(static_cast<double>(n), eps / (2.0 + eps)))));
    return r;
}

Theorem5Regime theorem5_regime(std::size_t n, double c) {
    expects(c > 0.0 && c < 1.0, "theorem5_regime: exponent out of (0,1)");
    Theorem5Regime r;
    r.n = n;
    r.c = c;
    r.min_degree = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::floor(std::pow(static_cast<double>(n), c))));
    r.delegate_floor = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    return r;
}

double figure1_asymptotic_loss(double centre_competency) {
    expects(centre_competency >= 0.0 && centre_competency <= 1.0,
            "figure1_asymptotic_loss: competency out of [0,1]");
    return 1.0 - centre_competency;
}

}  // namespace ld::theory
