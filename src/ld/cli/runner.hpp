// Argument parsing and orchestration for the `liquidd` command-line tool:
// build an instance from spec strings, run a mechanism, print the gain
// report and (optionally) the DNH audits and a DOT rendering of one
// delegation realization.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ld::cli {

/// Parsed command line.
struct Options {
    std::string graph_spec = "complete";
    std::string competency_spec = "uniform:0.3,0.7";
    std::string mechanism_spec = "threshold:1";
    std::size_t n = 100;
    double alpha = 0.05;
    std::size_t replications = 200;
    std::uint64_t seed = 1;
    bool audit = false;            ///< run the Lemma 3 / Lemma 5 audits
    bool discard_cycles = false;   ///< CyclePolicy::Discard (noisy mechanisms)
    std::size_t threads = 1;       ///< replication workers (0 = auto: pool size)
    bool approximate = false;      ///< Lemma-4 normal-approximation tallies
    double target_se = 0.0;        ///< --target-se: adaptive stopping (0 = fixed reps)
    std::size_t max_replications = 100'000;  ///< --max-reps: adaptive ceiling
    double tally_eps = 0.0;        ///< --tally-eps: certified truncated tally (0 = exact)
    double certify_gamma = 0.0;    ///< --certify <gamma> <delta>: gain threshold
    double certify_delta = 0.0;    ///< --certify: error budget (0 = off)
    std::string cs_boundary = "empirical_bernstein";  ///< --cs-boundary
    std::optional<std::string> dot_path;  ///< write one realization as DOT
    std::optional<std::string> load_path; ///< load instance (overrides graph/competencies/n/alpha)
    std::optional<std::string> save_path; ///< save the built instance
    std::optional<std::string> metrics_out; ///< end-of-run metrics report (JSON)
    std::string simd = "auto";     ///< --simd: pin the tally kernel tier
    bool help = false;
};

/// Parse argv (excluding argv[0]).  Throws SpecError on bad flags.
Options parse_options(const std::vector<std::string>& args);

/// One-page usage text.
std::string usage();

/// Execute: build, evaluate, print.  Returns a process exit code.
int run(const Options& options, std::ostream& out);

/// Parsed `liquidd sweep` command line (see docs/SWEEPS.md).
struct SweepOptions {
    std::string spec_path;                  ///< positional: the sweep spec JSON
    std::size_t shard_index = 0;            ///< --shard i/k
    std::size_t shard_count = 1;
    bool resume = false;                    ///< --resume
    std::size_t max_cells = 0;              ///< --max-cells (0 = unlimited)
    std::optional<std::size_t> threads{};   ///< --threads overrides the spec
    std::optional<std::string> output_path; ///< --out (default: <spec stem>.csv)
    std::optional<std::string> checkpoint_path;  ///< --ckpt
    std::optional<std::string> metrics_out; ///< --metrics-out (JSON report)
    std::string simd = "auto";              ///< --simd: pin the tally kernel tier
    bool help = false;
};

/// Parse the args after the `sweep` subcommand.  Throws SpecError.
SweepOptions parse_sweep_options(const std::vector<std::string>& args);

/// Usage text for `liquidd sweep`.
std::string sweep_usage();

/// Load the spec, run the sweep, stream rows/checkpoints.  SIGINT and
/// SIGTERM finish the current cell, persist the checkpoint, and exit
/// cleanly (rerun with --resume).  Returns a process exit code.
int run_sweep(const SweepOptions& options, std::ostream& out);

/// Parsed `liquidd serve` command line (see docs/SERVING.md).
struct ServeOptions {
    std::optional<std::string> unix_socket;  ///< --socket <path>
    std::optional<std::size_t> tcp_port;     ///< --tcp <port> (0 = ephemeral)
    std::size_t queue_capacity = 128;        ///< --queue-capacity
    std::size_t batch_max = 16;              ///< --batch-max
    std::size_t threads = 0;                 ///< --threads (0 = auto)
    double tally_eps = 0.0;                  ///< --tally-eps: default ε for eval requests
    std::size_t deadline_ms = 0;             ///< --deadline-ms (0 = none)
    std::size_t write_timeout_ms = 5000;     ///< --write-timeout-ms (0 = block)
    std::optional<std::string> metrics_out;  ///< --metrics-out (flushed on drain)
    std::string simd = "auto";               ///< --simd: pin the tally kernel tier
    /// --route b1,b2,...: shard-router mode — forward requests to these
    /// backend liquidds instead of evaluating locally.  Each entry is
    /// "unix:/path", "tcp:PORT", a bare path, or a bare port.
    std::vector<std::string> route;
    std::size_t health_interval_ms = 1000;   ///< --health-interval-ms (router mode)
    std::optional<std::string> ready_file;   ///< --ready-file: write "ready\n" once listening
    std::optional<int> ready_fd;             ///< --ready-fd: write "ready\n" + close once listening
    bool help = false;
};

/// Parse the args after the `serve` subcommand.  Throws SpecError.
ServeOptions parse_serve_options(const std::vector<std::string>& args);

/// Usage text for `liquidd serve`.
std::string serve_usage();

/// Run the evaluation server until SIGTERM/SIGINT or a `shutdown` RPC
/// drains it.  Returns a process exit code (0 on a clean drain).
int run_serve(const ServeOptions& options, std::ostream& out);

/// Parsed `liquidd gen` command line (standalone streaming generation;
/// see docs/GENERATORS.md).
struct GenOptions {
    std::string graph_spec = "cl:2.5,8";  ///< --graph (facade specs only)
    std::size_t n = 100'000;              ///< --n
    std::uint64_t seed = 1;               ///< --seed
    std::size_t shard_index = 0;          ///< --shard i/k
    std::size_t shard_count = 1;
    std::size_t chunk_edges = 1 << 16;    ///< --chunk-edges
    std::size_t threads = 0;              ///< --threads (0 = auto)
    std::size_t budget_mb = 0;            ///< --budget-mb (0 = env/unlimited)
    std::optional<std::string> out_path;  ///< --out: dump the generated graph
    std::string format = "edges";         ///< --format edges|csr
    std::optional<std::string> metrics_out;  ///< --metrics-out (JSON report)
    bool help = false;
};

/// Parse the args after the `gen` subcommand.  Throws SpecError.
GenOptions parse_gen_options(const std::vector<std::string>& args);

/// Usage text for `liquidd gen`.
std::string gen_usage();

/// Generate the configured (shard of a) graph through the streaming
/// facade, print stats, optionally dump it.  Returns a process exit code.
int run_gen(const GenOptions& options, std::ostream& out);

/// Parsed `liquidd game` command line (best-response trajectory workload
/// over the incremental churn engine; see docs/CHURN.md).
struct GameCliOptions {
    std::string graph_spec = "complete";
    std::string competency_spec = "uniform:0.3,0.7";
    std::size_t n = 100;
    double alpha = 0.05;
    std::uint64_t seed = 1;
    std::string utility = "selfish";   ///< --utility selfish|coop
    std::size_t max_rounds = 64;       ///< --max-rounds
    double viscosity = 1.0;            ///< --viscosity: selfish chain decay
    double tally_eps = 0.0;            ///< --tally-eps: cooperative probe budget
    std::optional<std::uint64_t> shuffle_seed;  ///< --shuffle-seed: replayable order
    bool fixed_order = false;          ///< --fixed-order: id order, no shuffle
    std::optional<std::string> load_path;       ///< --load-instance
    std::optional<std::string> trajectory_out;  ///< --trajectory-out (CSV)
    std::optional<std::string> metrics_out;     ///< --metrics-out (JSON report)
    std::string simd = "auto";         ///< --simd: pin the tally kernel tier
    bool help = false;
};

/// Parse the args after the `game` subcommand.  Throws SpecError.
GameCliOptions parse_game_options(const std::vector<std::string>& args);

/// Usage text for `liquidd game`.
std::string game_usage();

/// Run best-response dynamics, print the equilibrium report, optionally
/// stream the gain-along-the-path trajectory as CSV.  Returns a process
/// exit code.
int run_game(const GameCliOptions& options, std::ostream& out);

/// Top-level argv dispatch shared by the binary and the tests:
/// subcommands (`run`, `sweep`, `serve`), `--version`, and the bare-flag
/// single-evaluation form.  Throws SpecError on an unknown subcommand,
/// naming every valid one.
int dispatch(const std::vector<std::string>& args, std::ostream& out);

}  // namespace ld::cli
