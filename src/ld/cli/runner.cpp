#include "ld/cli/runner.hpp"

#include <chrono>
#include <fstream>
#include <ostream>
#include <string_view>

#include <unistd.h>

#include "gen/factory.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "ld/cli/specs.hpp"
#include "ld/delegation/realize.hpp"
#include "ld/dnh/conditions.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/experiments/sweep.hpp"
#include "ld/game/delegation_game.hpp"
#include "ld/model/instance.hpp"
#include "ld/model/instance_io.hpp"
#include "ld/serve/server.hpp"
#include "ld/serve/shard_router.hpp"
#include "prob/convolve.hpp"
#include "stats/confidence_sequence.hpp"
#include "support/build_info.hpp"
#include "support/expect.hpp"
#include "support/cpu_features.hpp"
#include "support/metrics.hpp"
#include "support/signal_drain.hpp"
#include "support/table_printer.hpp"
#include "support/thread_pool.hpp"

namespace ld::cli {

namespace {

double parse_double(const std::string& value, const std::string& flag) {
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        throw SpecError(flag + ": cannot parse '" + value + "'");
    }
}

std::size_t parse_size(const std::string& value, const std::string& flag) {
    const double parsed = parse_double(value, flag);
    if (parsed < 0 || parsed != static_cast<double>(static_cast<std::size_t>(parsed))) {
        throw SpecError(flag + ": expected a non-negative integer");
    }
    return static_cast<std::size_t>(parsed);
}

/// Apply a `--simd` value (run/sweep/serve all accept it).  "auto" keeps
/// or resolves the widest supported tier; naming a tier the host cannot
/// execute is a hard error — silently downgrading would make published
/// numbers unattributable to a lane width.
void apply_simd_override(const std::string& value) {
    if (value == "auto") {
        // Force first-use resolution now — LIQUIDD_SIMD if set and
        // runnable (warning + fallback otherwise), else the widest
        // supported tier — so --version / handshakes / manifests report
        // the tier the run will actually use.  Pinning best_simd_tier()
        // here instead would silently override a valid env request.
        prob::kernel_tier();
        return;
    }
    const auto tier = support::parse_simd_tier(value);
    if (!tier.has_value()) {
        throw SpecError("--simd: expected auto|scalar|avx2|avx512, got '" + value +
                        "'");
    }
    if (!prob::set_kernel_tier(*tier)) {
        throw SpecError("--simd: tier '" + value +
                        "' is not supported on this host (best: " +
                        support::simd_tier_name(support::best_simd_tier()) + ")");
    }
}

}  // namespace

std::string usage() {
    return R"(liquidd — liquid democracy experiment runner

usage: liquidd [run] [flags]
       liquidd sweep <spec.json> [flags]   (declarative parameter sweeps;
                                            see `liquidd sweep --help`
                                            and docs/SWEEPS.md)
       liquidd serve [flags]               (long-running evaluation server;
                                            see `liquidd serve --help`
                                            and docs/SERVING.md)
       liquidd gen [flags]                 (standalone streaming graph
                                            generation; see `liquidd gen
                                            --help` and docs/GENERATORS.md)
       liquidd game [flags]                (best-response trajectory workload
                                            over the incremental churn
                                            engine; see `liquidd game --help`
                                            and docs/CHURN.md)
       liquidd --version                   (git describe, build type, compiler)

  --graph <spec>         topology (default complete)
  --competencies <spec>  competency profile (default uniform:0.3,0.7)
  --mechanism <spec>     delegation mechanism (default threshold:1)
  --n <count>            number of voters (default 100)
  --alpha <margin>       approval margin alpha > 0 (default 0.05)
  --reps <count>         Monte-Carlo replications (default 200)
  --target-se <se>       adaptive stopping: replicate in batches until the
                         P^M standard error reaches <se> (overrides --reps;
                         deterministic for a fixed seed/threads pair)
  --max-reps <count>     ceiling on adaptive replications (default 100000)
  --tally-eps <eps>      certified ε-truncated inner tally: each
                         per-realization P^M term is within eps/2 of the
                         exact DP, at a fraction of the cost (default 0 =
                         exact; try 1e-12)
  --certify <gamma> <delta>
                         certified anytime-valid stopping: replicate until
                         a confidence sequence decides "gain >= gamma"
                         either way with statistical error <= delta, or
                         --max-reps is exhausted (overrides --reps and
                         --target-se; the reported interval also folds in
                         the eps/2 tally bound — docs/STATISTICS.md; the
                         stop point is bit-identical across thread counts)
  --cs-boundary <name>   certify boundary: empirical_bernstein (default,
                         variance-adaptive) | hoeffding (variance-free)
  --seed <value>         RNG seed (default 1)
  --audit                also run the Lemma 3 / Lemma 5 DNH audits
  --threads <count>      replication worker threads (default 1;
                         0 = auto, one per hardware thread)
  --approx               use the Lemma-4 normal-approximation tally (big n)
  --load-instance <path> load a saved instance (overrides --graph/--competencies)
  --save-instance <path> save the built instance for replay
  --discard-cycles       discard votes trapped in delegation cycles
                         (required for noisy:* mechanisms)
  --dot <path>           write one delegation realization as GraphViz DOT
  --metrics-out <path>   write the end-of-run metrics report as JSON
                         (pool utilisation, replication throughput,
                         per-estimate latency histograms); set
                         LIQUIDD_METRICS=1 for a console table instead
  --simd <tier>          pin the tally kernel tier: auto | scalar | avx2
                         | avx512 (default auto = widest the host runs;
                         every tier is bit-identical, so this is a pure
                         performance/attribution knob; env: LIQUIDD_SIMD)
  --help                 show this text

specs (see src/ld/cli/specs.hpp for the full grammar):
  graph:        complete | star | dregular:16 | ba:8 | ws:12,0.2 | er:0.05
                | twotier:10,2 | mindeg:8 | maxdeg:6 | file:edges.txt
                | cl:2.5,8 | hyper:2.7,12 | rmat:800000 | gen:<family>:...
                (cl/hyper/rmat/gen route through the chunked-CSR streaming
                facade — docs/GENERATORS.md) | ...
  competencies: uniform:0.3,0.7 | pc:0.02,0.25 | beta:8,8.3 | const:0.6
                | star:0.75,0.55 | twopoint:0.3,0.8,0.2 | figure2 | ...
  mechanism:    direct | threshold:2 | alg1:sqrt | alg1:lin,0.25
                | alg2:16,2,nbr | fraction:0.333 | best | noisy:1,0.2
                | multi:3,1 | abstain:0.5/threshold:2

example:
  liquidd --graph ba:8 --competencies pc:0.02,0.25 --mechanism threshold:2 \
          --n 2000 --reps 400 --audit
)";
}

Options parse_options(const std::vector<std::string>& args) {
    Options options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& flag = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size()) throw SpecError(flag + ": missing value");
            return args[++i];
        };
        if (flag == "--graph") options.graph_spec = next();
        else if (flag == "--competencies") options.competency_spec = next();
        else if (flag == "--mechanism") options.mechanism_spec = next();
        else if (flag == "--n") options.n = parse_size(next(), flag);
        else if (flag == "--alpha") options.alpha = parse_double(next(), flag);
        else if (flag == "--reps") options.replications = parse_size(next(), flag);
        else if (flag == "--target-se") {
            options.target_se = parse_double(next(), flag);
            if (options.target_se < 0.0) throw SpecError("--target-se: must be >= 0");
        }
        else if (flag == "--max-reps") {
            options.max_replications = parse_size(next(), flag);
            if (options.max_replications == 0) throw SpecError("--max-reps: must be >= 1");
        }
        else if (flag == "--tally-eps") {
            options.tally_eps = parse_double(next(), flag);
            if (options.tally_eps < 0.0 || options.tally_eps >= 1.0) {
                throw SpecError("--tally-eps: must be in [0, 1)");
            }
        }
        else if (flag == "--certify") {
            options.certify_gamma = parse_double(next(), "--certify <gamma>");
            options.certify_delta = parse_double(next(), "--certify <delta>");
            if (options.certify_delta <= 0.0 || options.certify_delta >= 1.0) {
                throw SpecError("--certify: delta must be in (0, 1)");
            }
        }
        else if (flag == "--cs-boundary") {
            options.cs_boundary = next();
            try {
                stats::parse_cs_boundary(options.cs_boundary);
            } catch (const support::ContractViolation& e) {
                throw SpecError(std::string("--cs-boundary: ") + e.what());
            }
        }
        else if (flag == "--seed") options.seed = parse_size(next(), flag);
        else if (flag == "--audit") options.audit = true;
        else if (flag == "--threads") options.threads = parse_size(next(), flag);
        else if (flag == "--approx") options.approximate = true;
        else if (flag == "--load-instance") options.load_path = next();
        else if (flag == "--save-instance") options.save_path = next();
        else if (flag == "--discard-cycles") options.discard_cycles = true;
        else if (flag == "--dot") options.dot_path = next();
        else if (flag == "--metrics-out") options.metrics_out = next();
        else if (flag == "--simd") options.simd = next();
        else if (flag == "--help" || flag == "-h") options.help = true;
        else throw SpecError("unknown flag '" + flag + "' (try --help)");
    }
    return options;
}

int run(const Options& options, std::ostream& out) {
    if (options.help) {
        out << usage();
        return 0;
    }
    apply_simd_override(options.simd);
    rng::Rng rng(options.seed);
    const model::Instance instance = [&] {
        if (options.load_path.has_value()) return model::load_instance(*options.load_path);
        auto graph = make_graph(options.graph_spec, options.n, rng);
        auto competencies =
            make_competencies(options.competency_spec, graph.vertex_count(), rng);
        return model::Instance(std::move(graph), std::move(competencies), options.alpha);
    }();
    if (options.save_path.has_value()) {
        model::save_instance(*options.save_path, instance);
        out << "saved instance to " << *options.save_path << "\n";
    }
    const auto mechanism = make_mechanism(options.mechanism_spec);

    if (!mechanism->approval_respecting() && !options.discard_cycles) {
        throw SpecError("mechanism '" + options.mechanism_spec +
                        "' can create delegation cycles; pass --discard-cycles");
    }

    out << instance.describe() << "\n";
    const auto deg = graph::degree_stats(instance.graph());
    out << "degrees: min " << deg.min << ", max " << deg.max << ", mean " << deg.mean
        << ", asymmetry " << deg.asymmetry << "\n";
    out << "mechanism: " << mechanism->name() << "\n\n";

    election::EvalOptions eval;
    eval.replications = options.replications;
    eval.target_std_error = options.target_se;
    eval.max_replications = options.max_replications;
    eval.tally_epsilon = options.tally_eps;
    eval.threads = options.threads == 0 ? support::ThreadPool::global().worker_count()
                                        : options.threads;
    eval.approximate_tally = options.approximate;
    if (options.discard_cycles) eval.cycle_policy = delegation::CyclePolicy::Discard;
    if (options.certify_delta > 0.0) {
        eval.certify.gamma = options.certify_gamma;
        eval.certify.delta = options.certify_delta;
        eval.certify.boundary = stats::parse_cs_boundary(options.cs_boundary);
    }
    const auto report = election::estimate_gain(*mechanism, instance, rng, eval);

    support::TablePrinter table({"metric", "value"}, 5);
    table.add_row({std::string("P^D (exact)"), report.pd});
    table.add_row({std::string("P^M (estimated)"), report.pm.value});
    table.add_row({std::string("P^M std error"), report.pm.std_error});
    table.add_row({std::string("P^M replications"),
                   static_cast<double>(report.pm.replications)});
    table.add_row({std::string("gain"), report.gain});
    table.add_row({std::string("gain CI lo"), report.gain_ci.lo});
    table.add_row({std::string("gain CI hi"), report.gain_ci.hi});
    table.add_row({std::string("mean delegators"), report.mean_delegators});
    table.add_row({std::string("mean voting sinks"), report.mean_sinks});
    table.add_row({std::string("mean max weight"), report.mean_max_weight});
    table.add_row({std::string("mean longest path"), report.mean_longest_path});
    if (report.pm.certified && report.certified_gain) {
        const auto& cert = *report.pm.certified;
        table.add_row({std::string("certified gain lo"), report.certified_gain->lo});
        table.add_row({std::string("certified gain hi"), report.certified_gain->hi});
        table.add_row({std::string("certified delta"), cert.delta});
        table.add_row({std::string("certified looks"),
                       static_cast<double>(cert.looks)});
    }
    table.print(out);

    if (report.pm.certified && report.certified_gain) {
        // The certificate in words: what was decided, at what error, and
        // where the loop stopped.  "inconclusive" keeps the interval —
        // it is valid at δ even when the threshold was not cleared.
        const auto& cert = *report.pm.certified;
        out << "\ncertified verdict: ";
        switch (cert.stop) {
            case stats::CertStop::DecidedAbove:
                out << "gain >= " << options.certify_gamma;
                break;
            case stats::CertStop::DecidedBelow:
                out << "gain < " << options.certify_gamma;
                break;
            case stats::CertStop::BudgetExhausted:
                out << "inconclusive (budget exhausted at " << cert.replications
                    << " replications)";
                break;
        }
        out << " [statistical error <= " << cert.delta
            << ", tally error <= " << cert.numerical_error
            << " folded into the interval; stopped after " << cert.replications
            << " replications, " << cert.looks << " looks, boundary "
            << stats::cs_boundary_name(eval.certify.boundary) << "]\n";
    }

    if (options.audit) {
        const auto l3 = dnh::audit_lemma3(instance, *mechanism, rng, 0.1);
        const auto l5 = dnh::audit_lemma5(instance, *mechanism, rng, 0.2, 2.0, 24);
        out << "\nLemma 3 audit (bounded competency + delegation budget):\n"
            << "  bounded competency: " << (l3.bounded_competency ? "yes" : "NO")
            << " (beta " << l3.beta << ")\n"
            << "  delegations " << l3.mean_delegators << " vs budget n^{1/2-eps} = "
            << l3.delegation_budget << " => "
            << (l3.within_budget ? "within" : "EXCEEDED") << "\n"
            << "  erf flip-probability bound: " << l3.flip_probability_bound << "\n"
            << "  hypotheses hold: " << (l3.hypotheses_hold ? "yes" : "NO") << "\n";
        out << "Lemma 5 audit (max sink weight / variance):\n"
            << "  mean max weight " << l5.mean_max_weight << ", worst "
            << l5.worst_max_weight << "\n"
            << "  delegated margin " << l5.mean_margin << " vs sigma " << l5.mean_sigma
            << " => " << (l5.weight_small_enough ? "safe (margin >= 2 sigma)"
                                                 : "AT RISK (margin < 2 sigma)")
            << "\n";
    }

    if (options.dot_path.has_value()) {
        const auto outcome = delegation::realize_weighted(
            *mechanism, instance, rng, {},
            options.discard_cycles ? delegation::CyclePolicy::Discard
                                   : delegation::CyclePolicy::Throw);
        std::ofstream dot(*options.dot_path);
        if (!dot) throw SpecError("--dot: cannot open '" + *options.dot_path + "'");
        std::vector<std::string> labels;
        labels.reserve(instance.voter_count());
        for (graph::Vertex v = 0; v < instance.voter_count(); ++v) {
            std::string label = "v";
            label += std::to_string(v);
            label += " p=";
            label += std::to_string(instance.competency(v)).substr(0, 5);
            labels.push_back(std::move(label));
        }
        graph::write_dot(dot, outcome.as_digraph(), labels, "delegation");
        out << "\nwrote one delegation realization to " << *options.dot_path << "\n";
    }

    if (options.metrics_out || support::metrics_env_enabled()) {
        const auto snapshot = support::MetricsRegistry::global().snapshot();
        if (support::metrics_env_enabled()) {
            out << "\n-- metrics --\n";
            support::print_metrics_table(out, snapshot);
        }
        if (options.metrics_out) {
            std::ofstream metrics(*options.metrics_out);
            if (!metrics) {
                throw SpecError("--metrics-out: cannot open '" + *options.metrics_out +
                                "'");
            }
            support::write_metrics_json(metrics, snapshot);
            out << "\nwrote metrics report to " << *options.metrics_out << "\n";
        }
    }
    return 0;
}

std::string sweep_usage() {
    return R"(liquidd sweep — declarative, checkpointed parameter sweeps

usage: liquidd sweep <spec.json> [flags]

The spec describes a cartesian grid over n × alpha × graph ×
competencies × mechanism (axis values use the same spec grammar as the
single-run flags); every grid cell is evaluated with a seed derived from
(sweep seed, cell index), so runs reproduce bit-for-bit.  Rows stream to
CSV (or JSON lines when the output ends in .jsonl) and a checkpoint
manifest is rewritten atomically after every cell.

  --out <path>        row output (default <spec stem>.csv in the current
                      directory; sharded runs get .shard<i>of<k> added)
  --ckpt <path>       checkpoint manifest (default <out>.ckpt.json)
  --resume            replay finished cells from the checkpoint, then
                      continue; output is byte-identical to an
                      uninterrupted run
  --shard <i>/<k>     run only cells with index % k == i (multi-machine
                      partition; the union of all shards equals the
                      unsharded run)
  --threads <count>   override the spec's replication workers (0 = auto)
  --max-cells <count> stop after this many new cells (interruption drill)
  --metrics-out <path> end-of-run metrics report as JSON
  --simd <tier>       pin the tally kernel tier (auto|scalar|avx2|avx512;
                      recorded in the manifest, bit-identical across tiers)
  --help              show this text

Spec reference, worked examples, and the checkpoint/shard semantics:
docs/SWEEPS.md.  Ready-made specs: examples/sweeps/.
)";
}

SweepOptions parse_sweep_options(const std::vector<std::string>& args) {
    SweepOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& flag = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size()) throw SpecError(flag + ": missing value");
            return args[++i];
        };
        if (flag == "--out") options.output_path = next();
        else if (flag == "--ckpt") options.checkpoint_path = next();
        else if (flag == "--resume") options.resume = true;
        else if (flag == "--shard") {
            const std::string& value = next();
            const auto slash = value.find('/');
            if (slash == std::string::npos) {
                throw SpecError("--shard: expected <index>/<count>, got '" + value + "'");
            }
            options.shard_index = parse_size(value.substr(0, slash), "--shard");
            options.shard_count = parse_size(value.substr(slash + 1), "--shard");
            if (options.shard_count == 0 || options.shard_index >= options.shard_count) {
                throw SpecError("--shard: need index < count, got '" + value + "'");
            }
        }
        else if (flag == "--threads") options.threads = parse_size(next(), flag);
        else if (flag == "--max-cells") options.max_cells = parse_size(next(), flag);
        else if (flag == "--metrics-out") options.metrics_out = next();
        else if (flag == "--simd") options.simd = next();
        else if (flag == "--help" || flag == "-h") options.help = true;
        else if (!flag.empty() && flag[0] == '-') {
            throw SpecError("unknown flag '" + flag + "' (try `liquidd sweep --help`)");
        }
        else if (options.spec_path.empty()) options.spec_path = flag;
        else throw SpecError("unexpected argument '" + flag + "'");
    }
    if (!options.help && options.spec_path.empty()) {
        throw SpecError("sweep: missing <spec.json> (try `liquidd sweep --help`)");
    }
    return options;
}

namespace {

/// `examples/sweeps/alpha_grid.json` -> `alpha_grid` (current directory).
std::string spec_stem(const std::string& path) {
    const auto dir = path.find_last_of("/\\");
    std::string stem = dir == std::string::npos ? path : path.substr(dir + 1);
    if (std::string_view(stem).ends_with(".json")) stem.resize(stem.size() - 5);
    if (stem.empty()) stem = "sweep";
    return stem;
}

}  // namespace

int run_sweep(const SweepOptions& options, std::ostream& out) {
    if (options.help) {
        out << sweep_usage();
        return 0;
    }
    apply_simd_override(options.simd);
    const auto spec = experiments::SweepSpec::load(options.spec_path);

    experiments::SweepOptions engine_options;
    engine_options.shard.index = options.shard_index;
    engine_options.shard.count = options.shard_count;
    engine_options.resume = options.resume;
    engine_options.max_cells = options.max_cells;
    engine_options.threads = options.threads;
    if (options.output_path) {
        engine_options.output_path = *options.output_path;
    } else {
        engine_options.output_path = spec_stem(options.spec_path);
        if (options.shard_count > 1) {
            engine_options.output_path += ".shard" + std::to_string(options.shard_index) +
                                          "of" + std::to_string(options.shard_count);
        }
        engine_options.output_path += ".csv";
    }
    if (options.checkpoint_path) engine_options.checkpoint_path = *options.checkpoint_path;
    // SIGINT/SIGTERM: finish the cell in flight, keep the published
    // checkpoint, and exit 0 so supervisors see a clean stop; the user
    // reruns with --resume to continue.
    engine_options.cancel = [] { return support::SignalDrain::requested(); };

    support::SignalDrain drain_on_signal;
    experiments::SweepEngine engine(spec, engine_options);
    engine.run(out);

    if (options.metrics_out || support::metrics_env_enabled()) {
        const auto snapshot = support::MetricsRegistry::global().snapshot();
        if (support::metrics_env_enabled()) {
            out << "\n-- metrics --\n";
            support::print_metrics_table(out, snapshot);
        }
        if (options.metrics_out) {
            std::ofstream metrics(*options.metrics_out);
            if (!metrics) {
                throw SpecError("--metrics-out: cannot open '" + *options.metrics_out +
                                "'");
            }
            support::write_metrics_json(metrics, snapshot);
            out << "wrote metrics report to " << *options.metrics_out << "\n";
        }
    }
    return 0;
}

std::string serve_usage() {
    return R"(liquidd serve — long-running evaluation server (liquidd.rpc.v1)

usage: liquidd serve [flags]

Listens on a Unix-domain socket and/or a TCP loopback port and answers
newline-delimited JSON requests: eval, instance.load, instance.info,
metrics, health, shutdown.  Evals against a cached instance are
micro-batched onto the shared replication engine; results are
bit-identical to the one-shot CLI with the same (params, seed, threads).
SIGTERM/SIGINT (or a `shutdown` request) drains gracefully: stop
accepting, finish admitted work, flush metrics, exit 0.

  --socket <path>        Unix-domain socket to listen on
  --tcp <port>           TCP loopback port (0 picks an ephemeral port,
                         printed on startup); at least one of
                         --socket/--tcp is required
  --queue-capacity <n>   admission bound: evals queued beyond this are
                         rejected with `overloaded` (default 128)
  --batch-max <n>        evals coalesced per dispatcher pass when they
                         target the same cached instance (default 16)
  --threads <count>      default eval threads for requests that name
                         none (default 0 = auto, one per hardware thread)
  --tally-eps <eps>      default certified truncation ε applied to eval
                         requests that name no tally_eps (default 0 = exact)
  --deadline-ms <ms>     default per-request deadline when a request
                         carries no deadline_ms (default 0 = none)
  --write-timeout-ms <ms>  bound on any single response write; a client
                         that stops reading this long is dropped
                         (default 5000, 0 = block indefinitely)
  --metrics-out <path>   flush a liquidd.metrics.v1 report here as the
                         last drain step
  --simd <tier>          pin the tally kernel tier (auto|scalar|avx2|avx512;
                         reported in the handshake, bit-identical results)
  --route <b1,b2,...>    shard-router mode: forward requests to these
                         backend liquidd servers (hashed by instance
                         fingerprint) instead of evaluating locally.
                         Each backend is unix:/path, tcp:PORT, a bare
                         socket path, or a bare port
  --health-interval-ms <ms>  router backend health-probe cadence
                         (default 1000; a probe unanswered for 3
                         intervals marks the backend down)
  --ready-file <path>    write "ready\n" here once the listeners accept
                         (works with a FIFO: `mkfifo` + read replaces
                         connect-polling loops in supervisors/CI)
  --ready-fd <fd>        write "ready\n" to this inherited fd and close
                         it once the listeners accept
  --help                 show this text

Protocol reference, backpressure semantics, and a load-generator
walkthrough: docs/SERVING.md.  Load generator: liquidd_loadgen.
)";
}

ServeOptions parse_serve_options(const std::vector<std::string>& args) {
    ServeOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& flag = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size()) throw SpecError(flag + ": missing value");
            return args[++i];
        };
        if (flag == "--socket") options.unix_socket = next();
        else if (flag == "--tcp") {
            const std::size_t port = parse_size(next(), flag);
            if (port > 65535) throw SpecError("--tcp: port must be <= 65535");
            options.tcp_port = port;
        }
        else if (flag == "--queue-capacity") options.queue_capacity = parse_size(next(), flag);
        else if (flag == "--batch-max") {
            options.batch_max = parse_size(next(), flag);
            if (options.batch_max == 0) throw SpecError("--batch-max: must be >= 1");
        }
        else if (flag == "--threads") options.threads = parse_size(next(), flag);
        else if (flag == "--tally-eps") {
            options.tally_eps = parse_double(next(), flag);
            if (options.tally_eps < 0.0 || options.tally_eps >= 1.0) {
                throw SpecError("--tally-eps: must be in [0, 1)");
            }
        }
        else if (flag == "--deadline-ms") options.deadline_ms = parse_size(next(), flag);
        else if (flag == "--write-timeout-ms") options.write_timeout_ms = parse_size(next(), flag);
        else if (flag == "--metrics-out") options.metrics_out = next();
        else if (flag == "--simd") options.simd = next();
        else if (flag == "--route") {
            // Comma-separated backend list; validate each spec eagerly so
            // a typo fails at the command line, not mid-serve.
            const std::string& list = next();
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string item =
                    list.substr(start, comma == std::string::npos ? std::string::npos
                                                                  : comma - start);
                if (!item.empty()) {
                    try {
                        serve::parse_backend_spec(item);
                    } catch (const support::net::NetError& e) {
                        throw SpecError(std::string("--route: ") + e.what());
                    }
                    options.route.push_back(item);
                }
                if (comma == std::string::npos) break;
                start = comma + 1;
            }
            if (options.route.empty()) {
                throw SpecError("--route: need at least one backend");
            }
        }
        else if (flag == "--health-interval-ms") {
            options.health_interval_ms = parse_size(next(), flag);
            if (options.health_interval_ms == 0) {
                throw SpecError("--health-interval-ms: must be >= 1");
            }
        }
        else if (flag == "--ready-file") options.ready_file = next();
        else if (flag == "--ready-fd") {
            options.ready_fd = static_cast<int>(parse_size(next(), flag));
        }
        else if (flag == "--help" || flag == "-h") options.help = true;
        else throw SpecError("unknown flag '" + flag + "' (try `liquidd serve --help`)");
    }
    if (!options.help && !options.unix_socket && !options.tcp_port) {
        throw SpecError("serve: need --socket <path> and/or --tcp <port>");
    }
    return options;
}

int run_serve(const ServeOptions& options, std::ostream& out) {
    if (options.help) {
        out << serve_usage();
        return 0;
    }
    apply_simd_override(options.simd);

    if (!options.route.empty()) {
        // Shard-router mode: no local evaluation — hash instance
        // fingerprints across the named backend liquidds.
        serve::ShardRouterConfig config;
        if (options.unix_socket) config.unix_socket = *options.unix_socket;
        if (options.tcp_port) config.tcp_port = static_cast<std::uint16_t>(*options.tcp_port);
        for (const std::string& spec : options.route) {
            config.backends.push_back(serve::parse_backend_spec(spec));
        }
        config.health_interval = std::chrono::milliseconds(options.health_interval_ms);
        config.write_timeout = std::chrono::milliseconds(options.write_timeout_ms);
        config.drain_on_signal = true;
        if (options.metrics_out) config.metrics_out = *options.metrics_out;

        support::SignalDrain drain_on_signal;  // SIGINT/SIGTERM -> graceful drain
        serve::ShardRouter router(std::move(config));
        router.start();

        out << support::version_line() << "\n";
        if (options.unix_socket) out << "listening on unix:" << *options.unix_socket << "\n";
        if (options.tcp_port) {
            out << "listening on tcp:127.0.0.1:" << router.tcp_port() << "\n";
        }
        out << "routing to " << options.route.size() << " backend(s)\n";
        out << "serving (SIGTERM/SIGINT or a shutdown request drains)\n" << std::flush;
        const int ready_keep = serve::signal_ready(
            options.ready_file.value_or(""), options.ready_fd.value_or(-1));

        const int code = router.wait();
        if (ready_keep >= 0) ::close(ready_keep);
        out << "drained cleanly";
        if (options.metrics_out) out << "; metrics flushed to " << *options.metrics_out;
        out << "\n";
        return code;
    }

    serve::ServerConfig config;
    if (options.unix_socket) config.unix_socket = *options.unix_socket;
    if (options.tcp_port) config.tcp_port = static_cast<std::uint16_t>(*options.tcp_port);
    config.queue_capacity = options.queue_capacity;
    config.batch_max = options.batch_max;
    config.eval_threads = options.threads;
    config.tally_epsilon = options.tally_eps;
    config.default_deadline = std::chrono::milliseconds(options.deadline_ms);
    config.write_timeout = std::chrono::milliseconds(options.write_timeout_ms);
    config.drain_on_signal = true;
    if (options.metrics_out) config.metrics_out = *options.metrics_out;

    support::SignalDrain drain_on_signal;  // SIGINT/SIGTERM -> graceful drain
    serve::Server server(std::move(config));
    server.start();

    out << support::version_line() << "\n";
    if (options.unix_socket) out << "listening on unix:" << *options.unix_socket << "\n";
    if (options.tcp_port) {
        out << "listening on tcp:127.0.0.1:" << server.tcp_port() << "\n";
    }
    out << "serving (SIGTERM/SIGINT or a shutdown request drains)\n" << std::flush;
    const int ready_keep = serve::signal_ready(options.ready_file.value_or(""),
                                               options.ready_fd.value_or(-1));

    const int code = server.wait();
    if (ready_keep >= 0) ::close(ready_keep);
    out << "drained cleanly";
    if (options.metrics_out) out << "; metrics flushed to " << *options.metrics_out;
    out << "\n";
    return code;
}

std::string gen_usage() {
    return R"(liquidd gen — standalone streaming graph generation

usage: liquidd gen [flags]

Generates a graph (or one shard of it) through the chunked-CSR streaming
facade and prints size/degree/latency stats.  The emitted edge set depends
only on (--graph, --n, --seed): chunk size, shard partition, and thread
count never change it, so shards generated on different machines union to
exactly the unsharded graph.  See docs/GENERATORS.md.

  --graph <spec>      facade graph spec: cl:<gamma>,<avgdeg>[,<maxw>]
                      | hyper:... | girg:... | rmat:<m>[,<a>,<b>,<c>]
                      | gen:<family>[:<params>] (gnp, gnm, dout, dregular,
                      ba, ws, complete, star, ...); bare family specs such
                      as gnp:0.01 are accepted as shorthand for gen:...
                      (default cl:2.5,8)
  --n <count>         number of vertices (default 100000)
  --seed <value>      root seed for per-cell derivation (default 1)
  --shard <i>/<k>     generate only cells with index % k == i; the union
                      of all k shards' edge sets equals the unsharded run
  --chunk-edges <c>   edges per sink flush (default 65536; output-invariant)
  --threads <count>   generation workers (default 0 = auto; output-invariant)
  --budget-mb <mb>    refuse to exceed this pipeline footprint (default 0 =
                      LIQUIDD_GEN_BUDGET_MB env, else unlimited)
  --out <path>        write the generated graph ("-" for stdout)
  --format <fmt>      dump format: edges (sorted "u v" lines, the
                      canonical byte-comparable form) | csr (offset and
                      neighbour arrays; default edges)
  --metrics-out <path> write the end-of-run metrics report as JSON
  --help              show this text

examples:
  liquidd gen --graph hyper:2.7,12 --n 10000000 --budget-mb 2048
  liquidd gen --graph gen:gnp:0.001 --n 100000 --shard 0/4 --out shard0.txt
)";
}

GenOptions parse_gen_options(const std::vector<std::string>& args) {
    GenOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& flag = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size()) throw SpecError(flag + ": missing value");
            return args[++i];
        };
        if (flag == "--graph") options.graph_spec = next();
        else if (flag == "--n") options.n = parse_size(next(), flag);
        else if (flag == "--seed") options.seed = parse_size(next(), flag);
        else if (flag == "--shard") {
            const std::string& value = next();
            const auto slash = value.find('/');
            if (slash == std::string::npos) {
                throw SpecError("--shard: expected <index>/<count>, got '" + value + "'");
            }
            options.shard_index = parse_size(value.substr(0, slash), "--shard");
            options.shard_count = parse_size(value.substr(slash + 1), "--shard");
            if (options.shard_count == 0 || options.shard_index >= options.shard_count) {
                throw SpecError("--shard: need index < count, got '" + value + "'");
            }
        }
        else if (flag == "--chunk-edges") {
            options.chunk_edges = parse_size(next(), flag);
            if (options.chunk_edges == 0) throw SpecError("--chunk-edges: must be >= 1");
        }
        else if (flag == "--threads") options.threads = parse_size(next(), flag);
        else if (flag == "--budget-mb") options.budget_mb = parse_size(next(), flag);
        else if (flag == "--out") options.out_path = next();
        else if (flag == "--format") {
            options.format = next();
            if (options.format != "edges" && options.format != "csr") {
                throw SpecError("--format: expected edges|csr, got '" + options.format +
                                "'");
            }
        }
        else if (flag == "--metrics-out") options.metrics_out = next();
        else if (flag == "--help" || flag == "-h") options.help = true;
        else throw SpecError("unknown flag '" + flag + "' (try --help)");
    }
    return options;
}

int run_gen(const GenOptions& options, std::ostream& out) {
    if (options.help) {
        out << gen_usage();
        return 0;
    }
    const std::string spec = is_generator_spec(options.graph_spec)
                                 ? options.graph_spec
                                 : "gen:" + options.graph_spec;
    gen::GeneratorConfig config = parse_generator_spec(spec, options.n, options.seed);
    config.chunk_edges = options.chunk_edges;
    config.shard.index = options.shard_index;
    config.shard.count = options.shard_count;
    config.threads = options.threads;
    config.memory_budget_bytes = options.budget_mb << 20;

    const support::Stopwatch timer;
    gen::BuildStats stats;
    const graph::Graph graph = gen::generate_graph(config, &stats);
    const double elapsed = timer.elapsed_seconds();

    out << "generated " << config.describe() << "\n";
    out << "vertices " << graph.vertex_count() << ", edges " << graph.edge_count()
        << " (emitted " << stats.edges_emitted << " in " << stats.chunks
        << " chunks)\n";
    const auto deg = graph::degree_stats(graph);
    out << "degrees: min " << deg.min << ", max " << deg.max << ", mean " << deg.mean
        << "\n";
    out << "elapsed " << elapsed << " s, pipeline peak ~" << (stats.peak_bytes >> 20)
        << " MB\n";

    if (options.out_path.has_value()) {
        std::ofstream file;
        const bool to_stdout = *options.out_path == "-";
        if (!to_stdout) {
            file.open(*options.out_path);
            if (!file) {
                throw SpecError("--out: cannot open '" + *options.out_path + "'");
            }
        }
        std::ostream& dump = to_stdout ? out : file;
        if (options.format == "edges") {
            graph::write_edge_list(dump, graph);
        } else {
            // CSR dump: one offsets line, then one adjacency line per vertex.
            dump << "csr " << graph.vertex_count() << " " << graph.edge_count() << "\n";
            for (graph::Vertex v = 0; v < graph.vertex_count(); ++v) {
                dump << v << ":";
                for (graph::Vertex u : graph.neighbours(v)) dump << " " << u;
                dump << "\n";
            }
        }
        if (!to_stdout) out << "wrote " << options.format << " dump to "
                            << *options.out_path << "\n";
    }

    if (options.metrics_out || support::metrics_env_enabled()) {
        const auto snapshot = support::MetricsRegistry::global().snapshot();
        if (support::metrics_env_enabled()) {
            out << "\n-- metrics --\n";
            support::print_metrics_table(out, snapshot);
        }
        if (options.metrics_out) {
            std::ofstream metrics(*options.metrics_out);
            if (!metrics) {
                throw SpecError("--metrics-out: cannot open '" + *options.metrics_out +
                                "'");
            }
            support::write_metrics_json(metrics, snapshot);
            out << "wrote metrics report to " << *options.metrics_out << "\n";
        }
    }
    return 0;
}

std::string game_usage() {
    return R"(liquidd game — best-response trajectory workload

usage: liquidd game [flags]

Runs best-response dynamics (selfish or cooperative utility) from the
all-vote profile over the incremental churn engine: the evolving profile
lives in a DynamicResolution and candidate deviations are probed against
the live product-tree tally instead of re-resolving from scratch.  With
--trajectory-out every applied deviation is streamed with the group
correct-probability after it — the gain-along-the-path measurement of
docs/CHURN.md.

  --graph <spec>         topology (default complete; same grammar as run)
  --competencies <spec>  competency profile (default uniform:0.3,0.7)
  --n <count>            number of voters (default 100)
  --alpha <margin>       approval margin alpha > 0 (default 0.05)
  --seed <value>         RNG seed (default 1)
  --utility <name>       selfish (sink competency, viscosity-decayed) |
                         coop (group correct probability; default selfish)
  --max-rounds <count>   passes over the voters before giving up (default 64)
  --viscosity <v>        viscous-democracy decay in (0, 1]: a selfish sink
                         at delegation depth d is worth v^d * competency
                         (default 1 = classic selfish utility)
  --tally-eps <eps>      certified clip budget for cooperative probes /
                         trajectory points (default 0 = exact windows; the
                         final equilibrium P is always the exact DP)
  --shuffle-seed <value> seed the per-round update-order shuffle so the
                         trajectory replays byte-identically (default:
                         drawn from --seed)
  --fixed-order          visit voters in id order every round (no shuffle)
  --load-instance <path> load a saved instance (overrides --graph/--competencies)
  --trajectory-out <path> write the deviation trajectory as CSV
                         ("-" for stdout)
  --metrics-out <path>   write the end-of-run metrics report as JSON
  --simd <tier>          pin the tally kernel tier (auto|scalar|avx2|avx512)
  --help                 show this text

examples:
  liquidd game --graph dregular:16 --n 2000 --utility selfish --viscosity 0.9
  liquidd game --n 500 --utility coop --shuffle-seed 7 --trajectory-out path.csv
)";
}

GameCliOptions parse_game_options(const std::vector<std::string>& args) {
    GameCliOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& flag = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size()) throw SpecError(flag + ": missing value");
            return args[++i];
        };
        if (flag == "--graph") options.graph_spec = next();
        else if (flag == "--competencies") options.competency_spec = next();
        else if (flag == "--n") options.n = parse_size(next(), flag);
        else if (flag == "--alpha") options.alpha = parse_double(next(), flag);
        else if (flag == "--seed") options.seed = parse_size(next(), flag);
        else if (flag == "--utility") {
            options.utility = next();
            if (options.utility != "selfish" && options.utility != "coop") {
                throw SpecError("--utility: expected selfish|coop, got '" +
                                options.utility + "'");
            }
        }
        else if (flag == "--max-rounds") {
            options.max_rounds = parse_size(next(), flag);
            if (options.max_rounds == 0) throw SpecError("--max-rounds: must be >= 1");
        }
        else if (flag == "--viscosity") {
            options.viscosity = parse_double(next(), flag);
            if (options.viscosity <= 0.0 || options.viscosity > 1.0) {
                throw SpecError("--viscosity: expected a value in (0, 1]");
            }
        }
        else if (flag == "--tally-eps") options.tally_eps = parse_double(next(), flag);
        else if (flag == "--shuffle-seed") options.shuffle_seed = parse_size(next(), flag);
        else if (flag == "--fixed-order") options.fixed_order = true;
        else if (flag == "--load-instance") options.load_path = next();
        else if (flag == "--trajectory-out") options.trajectory_out = next();
        else if (flag == "--metrics-out") options.metrics_out = next();
        else if (flag == "--simd") options.simd = next();
        else if (flag == "--help" || flag == "-h") options.help = true;
        else throw SpecError("unknown flag '" + flag + "' (try --help)");
    }
    return options;
}

int run_game(const GameCliOptions& options, std::ostream& out) {
    if (options.help) {
        out << game_usage();
        return 0;
    }
    apply_simd_override(options.simd);
    rng::Rng rng(options.seed);
    const model::Instance instance = [&] {
        if (options.load_path.has_value()) return model::load_instance(*options.load_path);
        auto graph = make_graph(options.graph_spec, options.n, rng);
        auto competencies =
            make_competencies(options.competency_spec, graph.vertex_count(), rng);
        return model::Instance(std::move(graph), std::move(competencies), options.alpha);
    }();

    game::GameOptions game;
    game.utility = options.utility == "coop" ? game::Utility::Cooperative
                                             : game::Utility::Selfish;
    game.max_rounds = options.max_rounds;
    game.random_order = !options.fixed_order;
    game.shuffle_seed = options.shuffle_seed;
    game.viscosity = options.viscosity;
    game.tally_epsilon = options.tally_eps;
    game.record_trajectory = true;

    out << instance.describe() << "\n";
    out << "utility: " << options.utility << ", viscosity " << options.viscosity
        << ", max rounds " << options.max_rounds << "\n\n";

    const support::Stopwatch timer;
    const auto result = game::best_response_dynamics(instance, rng, game);
    const double elapsed = timer.elapsed_seconds();

    support::TablePrinter table({"metric", "value"}, 5);
    table.add_row({std::string("converged"), result.converged ? 1.0 : 0.0});
    table.add_row({std::string("rounds"), static_cast<double>(result.rounds)});
    table.add_row({std::string("deviations"), static_cast<double>(result.deviations)});
    table.add_row({std::string("P (equilibrium, exact)"),
                   result.group_correct_probability});
    table.add_row({std::string("gain vs direct"), result.gain_vs_direct});
    table.add_row({std::string("delegators"),
                   static_cast<double>(result.stats.delegator_count)});
    table.add_row({std::string("voting sinks"),
                   static_cast<double>(result.stats.voting_sink_count)});
    table.add_row({std::string("max weight"),
                   static_cast<double>(result.stats.max_weight)});
    table.add_row({std::string("longest path"),
                   static_cast<double>(result.stats.longest_path)});
    table.add_row({std::string("elapsed s"), elapsed});
    table.print(out);

    if (options.trajectory_out.has_value()) {
        std::ofstream file;
        const bool to_stdout = *options.trajectory_out == "-";
        if (!to_stdout) {
            file.open(*options.trajectory_out);
            if (!file) {
                throw SpecError("--trajectory-out: cannot open '" +
                                *options.trajectory_out + "'");
            }
        }
        std::ostream& dump = to_stdout ? out : file;
        dump << "round,voter,from,to,correct_probability,gain\n";
        dump.precision(17);
        for (const auto& point : result.trajectory) {
            dump << point.round << "," << point.voter << "," << point.from << ","
                 << point.to << "," << point.correct_probability << ","
                 << point.gain << "\n";
        }
        if (!to_stdout) {
            out << "wrote " << result.trajectory.size() << " trajectory points to "
                << *options.trajectory_out << "\n";
        }
    }

    if (options.metrics_out || support::metrics_env_enabled()) {
        const auto snapshot = support::MetricsRegistry::global().snapshot();
        if (support::metrics_env_enabled()) {
            out << "\n-- metrics --\n";
            support::print_metrics_table(out, snapshot);
        }
        if (options.metrics_out) {
            std::ofstream metrics(*options.metrics_out);
            if (!metrics) {
                throw SpecError("--metrics-out: cannot open '" + *options.metrics_out +
                                "'");
            }
            support::write_metrics_json(metrics, snapshot);
            out << "wrote metrics report to " << *options.metrics_out << "\n";
        }
    }
    return 0;
}

int dispatch(const std::vector<std::string>& args, std::ostream& out) {
    if (!args.empty() && (args[0] == "--version" || args[0] == "-V")) {
        out << support::version_line() << "\n";
        // Active kernel tier (resolving LIQUIDD_SIMD, exactly as a run
        // would) plus the host's widest, so results are attributable to
        // a lane width from the version string alone.
        out << "simd: " << support::simd_tier_name(prob::kernel_tier())
            << " (best supported: "
            << support::simd_tier_name(support::best_simd_tier()) << ")\n";
        return 0;
    }
    if (!args.empty() && !args[0].empty() && args[0][0] != '-') {
        const std::vector<std::string> rest(args.begin() + 1, args.end());
        if (args[0] == "run") return run(parse_options(rest), out);
        if (args[0] == "sweep") return run_sweep(parse_sweep_options(rest), out);
        if (args[0] == "serve") return run_serve(parse_serve_options(rest), out);
        if (args[0] == "gen") return run_gen(parse_gen_options(rest), out);
        if (args[0] == "game") return run_game(parse_game_options(rest), out);
        throw SpecError("unknown subcommand '" + args[0] +
                        "'; valid subcommands: run, sweep, serve, gen, game "
                        "(bare flags run a single evaluation; try --help)");
    }
    return run(parse_options(args), out);
}

}  // namespace ld::cli
