// Spec-string factories for the command-line front end (and for anyone
// scripting experiments): compact textual descriptions of graphs,
// competency profiles, and mechanisms.
//
//   graphs      : complete | star | cycle | path | dregular:<d> | dout:<d>
//                 | er:<p> | gnm:<m> | ba:<m> | ws:<k>,<beta>
//                 | twotier:<hubs>,<spokes> | mindeg:<d> | maxdeg:<cap>
//                 | file:<path>            (edge-list format, see graph/io)
//                 streaming facade (chunked CSR, docs/GENERATORS.md):
//                 | cl:<gamma>,<avgdeg>[,<maxw>]     (Chung–Lu power law)
//                 | hyper:<gamma>,<avgdeg>[,<maxw>]  (1-D GIRG; alias girg:)
//                 | rmat:<m>[,<a>,<b>,<c>]           (Kronecker/R-MAT)
//                 | gen:<family>[:<params>]          (any facade family)
//   competencies: uniform:<lo>,<hi> | pc:<a>,<spread> | beta:<a>,<b>
//                 | twopoint:<low>,<high>,<frac> | star:<centre>,<leaf>
//                 | tnormal:<mu>,<sigma>,<lo>,<hi> | const:<p> | figure2
//   mechanisms  : direct | threshold:<j> | alg1:log | alg1:sqrt
//                 | alg1:lin,<frac> | alg2:<d>,<j>,pop | alg2:<d>,<j>,nbr
//                 | fraction:<f> | best | capped:<degree-cap>
//                 | noisy:<j>,<eta> | multi:<m>,<j>
//                 | abstain:<q>/<inner-spec>

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "gen/config.hpp"
#include "graph/graph.hpp"
#include "ld/mech/mechanism.hpp"
#include "ld/model/competency.hpp"
#include "rng/rng.hpp"

namespace ld::cli {

/// Thrown on an unknown or malformed spec.
class SpecError : public std::runtime_error {
public:
    explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// Build a graph on `n` vertices from a graph spec.
graph::Graph make_graph(const std::string& spec, std::size_t n, rng::Rng& rng);

/// Whether `spec` routes through the streaming generation facade
/// (`gen:<family>` or one of the cl:/hyper:/girg:/rmat: shorthands).
bool is_generator_spec(const std::string& spec);

/// Parse a streaming-facade graph spec into a GeneratorConfig with the
/// given size and seed (execution-shape fields keep their defaults except
/// threads = 0, auto).  Throws SpecError on malformed specs and
/// support::ContractViolation on out-of-range parameters.
gen::GeneratorConfig parse_generator_spec(const std::string& spec, std::size_t n,
                                          std::uint64_t seed);

/// Build a competency vector for `n` voters from a competency spec.
model::CompetencyVector make_competencies(const std::string& spec, std::size_t n,
                                          rng::Rng& rng);

/// Build a mechanism from a mechanism spec.  The returned object owns any
/// wrapped inner mechanism.
std::unique_ptr<mech::Mechanism> make_mechanism(const std::string& spec);

}  // namespace ld::cli
