#include "ld/cli/specs.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <vector>

#include "gen/factory.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "ld/mech/abstaining.hpp"
#include "ld/mech/approval_size_threshold.hpp"
#include "ld/mech/best_neighbour.hpp"
#include "ld/mech/capped_target.hpp"
#include "ld/mech/complete_graph_threshold.hpp"
#include "ld/mech/d_out_sampling.hpp"
#include "ld/mech/direct.hpp"
#include "ld/mech/fraction_approved.hpp"
#include "ld/mech/multi_delegate.hpp"
#include "ld/mech/noisy_threshold.hpp"
#include "ld/model/competency_gen.hpp"
#include "support/expect.hpp"

namespace ld::cli {

namespace {

/// Split "head:rest" (rest may be empty).
std::pair<std::string, std::string> split_head(const std::string& spec, char sep = ':') {
    const auto pos = spec.find(sep);
    if (pos == std::string::npos) return {spec, ""};
    return {spec.substr(0, pos), spec.substr(pos + 1)};
}

/// Parse comma-separated doubles; throws SpecError on junk or wrong count.
std::vector<double> parse_numbers(const std::string& text, std::size_t expected,
                                  const std::string& context) {
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= text.size() && !text.empty()) {
        const auto comma = text.find(',', start);
        const std::string token =
            text.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        try {
            std::size_t used = 0;
            values.push_back(std::stod(token, &used));
            if (used != token.size()) throw std::invalid_argument(token);
        } catch (const std::exception&) {
            throw SpecError(context + ": cannot parse number '" + token + "'");
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (values.size() != expected) {
        throw SpecError(context + ": expected " + std::to_string(expected) +
                        " parameter(s), got " + std::to_string(values.size()));
    }
    return values;
}

std::size_t as_count(double value, const std::string& context) {
    if (value < 0.0 || value != static_cast<double>(static_cast<std::size_t>(value))) {
        throw SpecError(context + ": expected a non-negative integer");
    }
    return static_cast<std::size_t>(value);
}

/// Abstaining wrapper that owns its inner mechanism (the library wrapper
/// borrows; factories must own).
class OwningAbstaining final : public mech::Mechanism {
public:
    OwningAbstaining(std::unique_ptr<mech::Mechanism> inner, double q)
        : inner_(std::move(inner)), wrapper_(*inner_, q) {}

    std::string name() const override { return wrapper_.name(); }
    mech::Action act(const model::Instance& instance, graph::Vertex v,
                     rng::Rng& rng) const override {
        return wrapper_.act(instance, v, rng);
    }
    bool may_abstain() const override { return true; }
    bool multi_delegation() const override { return wrapper_.multi_delegation(); }
    bool approval_respecting() const override { return inner_->approval_respecting(); }

private:
    std::unique_ptr<mech::Mechanism> inner_;
    mech::Abstaining wrapper_;
};

/// Number of comma-separated fields ("" has zero).
std::size_t field_count(const std::string& text) {
    if (text.empty()) return 0;
    return static_cast<std::size_t>(std::count(text.begin(), text.end(), ',')) + 1;
}

}  // namespace

bool is_generator_spec(const std::string& spec) {
    const auto head = split_head(spec).first;
    return head == "gen" || head == "cl" || head == "hyper" || head == "girg" ||
           head == "rmat";
}

gen::GeneratorConfig parse_generator_spec(const std::string& spec, std::size_t n,
                                          std::uint64_t seed) {
    const auto [head, rest] = split_head(spec);
    std::string family;
    std::string params;
    if (head == "gen") {
        std::tie(family, params) = split_head(rest);
    } else if (head == "cl") {
        family = "chunglu";
        params = rest;
    } else if (head == "hyper" || head == "girg") {
        family = "hyperbolic";
        params = rest;
    } else if (head == "rmat") {
        family = "rmat";
        params = rest;
    } else {
        throw SpecError("not a generator spec '" + spec + "'");
    }
    if (family == "er") family = "gnp";  // accept the legacy head's name

    gen::GeneratorConfig config;
    config.n = n;
    config.seed = seed;
    config.threads = 0;  // auto: the generated edge set is thread-invariant
    try {
        config.family = gen::parse_family(family);
    } catch (const support::ContractViolation&) {
        throw SpecError("unknown generator family '" + family + "' in '" + spec + "'");
    }

    const std::size_t fields = field_count(params);
    switch (config.family) {
        case gen::Family::Complete:
        case gen::Family::Star:
            if (fields != 0) throw SpecError(spec + ": takes no parameters");
            break;
        case gen::Family::Gnp:
            config.p = parse_numbers(params, 1, spec)[0];
            break;
        case gen::Family::Gnm:
            config.edges = as_count(parse_numbers(params, 1, spec)[0], spec);
            break;
        case gen::Family::DOut:
        case gen::Family::DRegular:
        case gen::Family::BarabasiAlbert:
            config.degree = as_count(parse_numbers(params, 1, spec)[0], spec);
            break;
        case gen::Family::WattsStrogatz: {
            const auto v = parse_numbers(params, 2, spec);
            config.degree = as_count(v[0], spec);
            config.beta = v[1];
            break;
        }
        case gen::Family::ChungLu:
        case gen::Family::Hyperbolic: {
            if (fields < 2 || fields > 3) {
                throw SpecError(spec + ": expected <gamma>,<avgdeg>[,<maxw>]");
            }
            const auto v = parse_numbers(params, fields, spec);
            config.gamma = v[0];
            config.avg_degree = v[1];
            if (fields == 3) config.max_weight = v[2];
            break;
        }
        case gen::Family::Rmat: {
            if (fields != 1 && fields != 4) {
                throw SpecError(spec + ": expected <m>[,<a>,<b>,<c>]");
            }
            const auto v = parse_numbers(params, fields, spec);
            config.edges = as_count(v[0], spec);
            if (fields == 4) {
                config.rmat_a = v[1];
                config.rmat_b = v[2];
                config.rmat_c = v[3];
            }
            break;
        }
    }
    config.validate();
    return config;
}

graph::Graph make_graph(const std::string& spec, std::size_t n, rng::Rng& rng) {
    if (is_generator_spec(spec)) {
        // One seed draw keeps the surrounding rng stream position
        // independent of how many cells the facade generates.
        return gen::generate_graph(parse_generator_spec(spec, n, rng.next()));
    }
    const auto [head, rest] = split_head(spec);
    if (head == "complete") return graph::make_complete(n);
    if (head == "star") return graph::make_star(n);
    if (head == "cycle") return graph::make_cycle(n);
    if (head == "path") return graph::make_path(n);
    if (head == "dregular") {
        const auto v = parse_numbers(rest, 1, spec);
        return graph::make_random_d_regular(rng, n, as_count(v[0], spec));
    }
    if (head == "dout") {
        const auto v = parse_numbers(rest, 1, spec);
        return graph::make_d_out(rng, n, as_count(v[0], spec));
    }
    if (head == "er") {
        const auto v = parse_numbers(rest, 1, spec);
        return graph::make_erdos_renyi_gnp(rng, n, v[0]);
    }
    if (head == "gnm") {
        const auto v = parse_numbers(rest, 1, spec);
        return graph::make_erdos_renyi_gnm(rng, n, as_count(v[0], spec));
    }
    if (head == "ba") {
        const auto v = parse_numbers(rest, 1, spec);
        return graph::make_barabasi_albert(rng, n, as_count(v[0], spec));
    }
    if (head == "ws") {
        const auto v = parse_numbers(rest, 2, spec);
        return graph::make_watts_strogatz(rng, n, as_count(v[0], spec), v[1]);
    }
    if (head == "twotier") {
        const auto v = parse_numbers(rest, 2, spec);
        return graph::make_two_tier(rng, n, as_count(v[0], spec), as_count(v[1], spec));
    }
    if (head == "mindeg") {
        const auto v = parse_numbers(rest, 1, spec);
        return graph::make_min_degree_at_least(rng, n, as_count(v[0], spec));
    }
    if (head == "maxdeg") {
        const auto v = parse_numbers(rest, 1, spec);
        const std::size_t cap = as_count(v[0], spec);
        return graph::make_bounded_degree(rng, n, cap, n * cap / 4);
    }
    if (head == "file") {
        std::ifstream in(rest);
        if (!in) throw SpecError("file: cannot open '" + rest + "'");
        return graph::read_edge_list(in);
    }
    throw SpecError("unknown graph spec '" + spec + "'");
}

model::CompetencyVector make_competencies(const std::string& spec, std::size_t n,
                                          rng::Rng& rng) {
    const auto [head, rest] = split_head(spec);
    if (head == "uniform") {
        const auto v = parse_numbers(rest, 2, spec);
        return model::uniform_competencies(rng, n, v[0], v[1]);
    }
    if (head == "pc") {
        const auto v = parse_numbers(rest, 2, spec);
        return model::pc_competencies(rng, n, v[0], v[1]);
    }
    if (head == "beta") {
        const auto v = parse_numbers(rest, 2, spec);
        return model::beta_competencies(rng, n, v[0], v[1]);
    }
    if (head == "twopoint") {
        const auto v = parse_numbers(rest, 3, spec);
        return model::two_point_competencies(rng, n, v[0], v[1], v[2]);
    }
    if (head == "star") {
        const auto v = parse_numbers(rest, 2, spec);
        return model::star_competencies(n, v[0], v[1]);
    }
    if (head == "tnormal") {
        const auto v = parse_numbers(rest, 4, spec);
        return model::truncated_normal_competencies(rng, n, v[0], v[1], v[2], v[3]);
    }
    if (head == "const") {
        const auto v = parse_numbers(rest, 1, spec);
        return model::CompetencyVector(std::vector<double>(n, v[0]));
    }
    if (head == "figure2") {
        if (n != 9) throw SpecError("figure2 competencies require n = 9");
        return model::figure2_competencies();
    }
    throw SpecError("unknown competency spec '" + spec + "'");
}

std::unique_ptr<mech::Mechanism> make_mechanism(const std::string& spec) {
    const auto [head, rest] = split_head(spec);
    if (head == "direct") return std::make_unique<mech::DirectVoting>();
    if (head == "threshold") {
        const auto v = parse_numbers(rest, 1, spec);
        return std::make_unique<mech::ApprovalSizeThreshold>(as_count(v[0], spec));
    }
    if (head == "alg1") {
        const auto [kind, param] = split_head(rest, ',');
        if (kind == "log") {
            return std::make_unique<mech::CompleteGraphThreshold>(
                mech::CompleteGraphThreshold::with_log_threshold());
        }
        if (kind == "sqrt") {
            return std::make_unique<mech::CompleteGraphThreshold>(
                mech::CompleteGraphThreshold::with_sqrt_threshold());
        }
        if (kind == "lin") {
            const auto v = parse_numbers(param, 1, spec);
            return std::make_unique<mech::CompleteGraphThreshold>(
                mech::CompleteGraphThreshold::with_linear_threshold(v[0]));
        }
        throw SpecError("alg1 expects log | sqrt | lin,<frac>");
    }
    if (head == "alg2") {
        // alg2:<d>,<j>,pop|nbr
        const auto last_comma = rest.rfind(',');
        if (last_comma == std::string::npos) {
            throw SpecError("alg2 expects <d>,<j>,pop|nbr");
        }
        const std::string mode = rest.substr(last_comma + 1);
        const auto v = parse_numbers(rest.substr(0, last_comma), 2, spec);
        mech::SampleSource source;
        if (mode == "pop") source = mech::SampleSource::Population;
        else if (mode == "nbr") source = mech::SampleSource::Neighbourhood;
        else throw SpecError("alg2 mode must be pop or nbr");
        return std::make_unique<mech::DOutSampling>(as_count(v[0], spec),
                                                    as_count(v[1], spec), source);
    }
    if (head == "fraction") {
        const auto v = parse_numbers(rest, 1, spec);
        return std::make_unique<mech::FractionApproved>(v[0]);
    }
    if (head == "best") return std::make_unique<mech::BestNeighbour>();
    if (head == "capped") {
        const auto v = parse_numbers(rest, 1, spec);
        return std::make_unique<mech::CappedTarget>(as_count(v[0], spec));
    }
    if (head == "noisy") {
        const auto v = parse_numbers(rest, 2, spec);
        return std::make_unique<mech::NoisyThreshold>(as_count(v[0], spec), v[1]);
    }
    if (head == "multi") {
        const auto v = parse_numbers(rest, 2, spec);
        return std::make_unique<mech::MultiDelegate>(as_count(v[0], spec),
                                                     as_count(v[1], spec));
    }
    if (head == "abstain") {
        // abstain:<q>/<inner-spec>
        const auto slash = rest.find('/');
        if (slash == std::string::npos) throw SpecError("abstain expects <q>/<inner>");
        const auto v = parse_numbers(rest.substr(0, slash), 1, spec);
        auto inner = make_mechanism(rest.substr(slash + 1));
        return std::make_unique<OwningAbstaining>(std::move(inner), v[0]);
    }
    throw SpecError("unknown mechanism spec '" + spec + "'");
}

}  // namespace ld::cli
